// Kernel benchmark: throughput of the dispatched linalg::kernels layer
// (dot, matvec, score_block, batched popcount) for the scalar and AVX2
// tables side by side, plus the headline batched-brute-force number the
// BatchQuery redesign is judged on: tiled BlockTopK over a 4096-query
// batch against the per-query scalar baseline (one ScalarOps dot per
// (row, query) pair, per-query partial sort — the pre-batching shape).
// Writes BENCH_kernels.json.
//
// Gate: with the AVX2 table active, the tiled batched path must be at
// least 4x the per-query scalar baseline (ISSUE 5 acceptance). Under
// IPS_FORCE_SCALAR (or off x86) the speedup is reported but not gated —
// there the win is cache reuse alone, not cache reuse plus SIMD.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "rng/random.h"
#include "util/table.h"
#include "util/timer.h"

namespace ips {
namespace {

constexpr std::size_t kHeadlineRows = 4096;
constexpr std::size_t kHeadlineQueries = 4096;
constexpr std::size_t kHeadlineDim = 128;
constexpr std::size_t kHeadlineK = 10;

struct KernelRate {
  std::string kernel;
  std::size_t n = 0;
  double scalar_gflops = 0.0;
  double avx2_gflops = 0.0;  // 0 when AVX2 is unavailable
};

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix out(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (double& v : out.Row(i)) v = rng->NextGaussian();
  }
  return out;
}

// GFLOP/s of `ops.dot` on length-n vectors (2 flops per element).
double DotRate(const kernels::KernelOps& ops, std::size_t n, Rng* rng) {
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng->NextGaussian();
    y[i] = rng->NextGaussian();
  }
  const std::size_t iters = std::max<std::size_t>(1, (1u << 27) / n);
  double sink = 0.0;
  sink += ops.dot(x.data(), y.data(), n);  // warm
  WallTimer timer;
  for (std::size_t it = 0; it < iters; ++it) {
    sink += ops.dot(x.data(), y.data(), n);
  }
  const double seconds = timer.Seconds();
  if (sink == 12345.6789) std::abort();  // defeat dead-code elimination
  return 2.0 * static_cast<double>(n * iters) / seconds * 1e-9;
}

// GFLOP/s of `ops.matvec` over a rows x cols matrix.
double MatVecRate(const kernels::KernelOps& ops, std::size_t rows,
                  std::size_t cols, Rng* rng) {
  const Matrix data = RandomMatrix(rows, cols, rng);
  std::vector<double> q(cols), out(rows);
  for (double& v : q) v = rng->NextGaussian();
  const std::size_t iters = std::max<std::size_t>(1, (1u << 25) / (rows * cols));
  ops.matvec(data.Row(0).data(), rows, cols, q.data(), out.data());  // warm
  WallTimer timer;
  for (std::size_t it = 0; it < iters; ++it) {
    ops.matvec(data.Row(0).data(), rows, cols, q.data(), out.data());
  }
  const double seconds = timer.Seconds();
  return 2.0 * static_cast<double>(rows * cols * iters) / seconds * 1e-9;
}

// GFLOP/s of `ops.score_block` on a 64-row x 8-query tile (the shape
// BlockTopK feeds it).
double ScoreBlockRate(const kernels::KernelOps& ops, std::size_t cols,
                      Rng* rng) {
  constexpr std::size_t kRows = 64, kQ = 8;
  const Matrix data = RandomMatrix(kRows, cols, rng);
  const Matrix queries = RandomMatrix(kQ, cols, rng);
  std::vector<double> out(kRows * kQ);
  const std::size_t work = kRows * kQ * cols;
  const std::size_t iters = std::max<std::size_t>(1, (1u << 27) / work);
  ops.score_block(data.Row(0).data(), kRows, cols, queries.Row(0).data(), kQ,
                  cols, out.data(), kRows);  // warm
  WallTimer timer;
  for (std::size_t it = 0; it < iters; ++it) {
    ops.score_block(data.Row(0).data(), kRows, cols, queries.Row(0).data(),
                    kQ, cols, out.data(), kRows);
  }
  const double seconds = timer.Seconds();
  return 2.0 * static_cast<double>(work * iters) / seconds * 1e-9;
}

KernelRate MeasureKernel(const std::string& name, std::size_t n, Rng* rng,
                         double (*measure)(const kernels::KernelOps&,
                                           std::size_t, Rng*)) {
  KernelRate rate;
  rate.kernel = name;
  rate.n = n;
  rate.scalar_gflops = measure(kernels::ScalarOps(), n, rng);
  if (kernels::Avx2Available()) {
    rate.avx2_gflops = measure(kernels::Avx2Ops(), n, rng);
  }
  return rate;
}

// Billions of packed {0,1} bit-products per second via AndPopcountMany.
double PopcountRate(Rng* rng) {
  constexpr std::size_t kRows = 4096, kWords = 4;  // 256-bit rows
  std::vector<std::uint64_t> rows(kRows * kWords);
  std::vector<std::uint64_t> q(kWords);
  for (auto& w : rows) w = rng->NextUint64();
  for (auto& w : q) w = rng->NextUint64();
  std::vector<std::uint32_t> out(kRows);
  constexpr std::size_t kIters = 4096;
  kernels::AndPopcountMany(q.data(), rows.data(), kWords, kRows, out.data());
  WallTimer timer;
  for (std::size_t it = 0; it < kIters; ++it) {
    kernels::AndPopcountMany(q.data(), rows.data(), kWords, kRows,
                             out.data());
  }
  const double seconds = timer.Seconds();
  return static_cast<double>(kRows * kWords * 64 * kIters) / seconds * 1e-9;
}

struct HeadlineResult {
  double baseline_ms = 0.0;  // per-query scalar dots + partial sort
  double tiled_ms = 0.0;     // BlockTopK with the active table
  double speedup = 0.0;
  bool results_agree = false;
};

// The pre-batching per-query shape: for every query, one scalar dot per
// data row into a materialized score vector, then a top-k partial sort
// with the project ordering (score desc, index asc).
std::vector<std::vector<kernels::ScoredIndex>> PerQueryScalarBaseline(
    const Matrix& data, const Matrix& queries, std::size_t k) {
  const kernels::KernelOps& ops = kernels::ScalarOps();
  std::vector<std::vector<kernels::ScoredIndex>> out(queries.rows());
  std::vector<kernels::ScoredIndex> scored(data.rows());
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    const double* q = queries.Row(qi).data();
    for (std::size_t r = 0; r < data.rows(); ++r) {
      scored[r].index = r;
      scored[r].value = ops.dot(data.Row(r).data(), q, data.cols());
    }
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      [](const kernels::ScoredIndex& a,
                         const kernels::ScoredIndex& b) {
                        if (a.value != b.value) return a.value > b.value;
                        return a.index < b.index;
                      });
    out[qi].assign(scored.begin(), scored.begin() + k);
  }
  return out;
}

HeadlineResult MeasureHeadline(Rng* rng) {
  std::cout << "headline: " << kHeadlineRows << " rows x "
            << kHeadlineQueries << " queries, dim " << kHeadlineDim
            << ", k=" << kHeadlineK << " (active ISA: "
            << kernels::ActiveIsaName() << ")\n";
  const Matrix data = RandomMatrix(kHeadlineRows, kHeadlineDim, rng);
  const Matrix queries = RandomMatrix(kHeadlineQueries, kHeadlineDim, rng);

  HeadlineResult result;
  WallTimer timer;
  const auto baseline =
      PerQueryScalarBaseline(data, queries, kHeadlineK);
  result.baseline_ms = timer.Millis();

  timer.Restart();
  std::vector<kernels::TopKHeap> heaps(kHeadlineQueries,
                                       kernels::TopKHeap(kHeadlineK));
  kernels::BlockTopK(data, queries, /*absolute=*/false, heaps);
  std::vector<std::vector<kernels::ScoredIndex>> tiled(kHeadlineQueries);
  for (std::size_t qi = 0; qi < kHeadlineQueries; ++qi) {
    tiled[qi] = heaps[qi].TakeSorted();
  }
  result.tiled_ms = timer.Millis();

  result.speedup =
      result.tiled_ms > 0.0 ? result.baseline_ms / result.tiled_ms : 0.0;
  result.results_agree = true;
  for (std::size_t qi = 0; qi < kHeadlineQueries; ++qi) {
    for (std::size_t j = 0; j < kHeadlineK; ++j) {
      if (tiled[qi][j].index != baseline[qi][j].index) {
        result.results_agree = false;
      }
    }
  }
  return result;
}

void WriteJson(const std::vector<KernelRate>& rates, double popcount_gbits,
               const HeadlineResult& headline, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"kernels\",\n  \"active_isa\": \""
      << kernels::ActiveIsaName() << "\",\n  \"avx2_available\": "
      << (kernels::Avx2Available() ? "true" : "false") << ",\n"
      << "  \"rates\": [\n";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    out << "    {\"kernel\": \"" << rates[i].kernel << "\", \"n\": "
        << rates[i].n << ", \"scalar_gflops\": " << rates[i].scalar_gflops
        << ", \"avx2_gflops\": " << rates[i].avx2_gflops << "}"
        << (i + 1 < rates.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"popcount_gbits_per_s\": " << popcount_gbits << ",\n"
      << "  \"batched_topk\": {\"rows\": " << kHeadlineRows
      << ", \"queries\": " << kHeadlineQueries << ", \"dim\": "
      << kHeadlineDim << ", \"k\": " << kHeadlineK
      << ", \"per_query_scalar_ms\": " << headline.baseline_ms
      << ", \"tiled_ms\": " << headline.tiled_ms << ", \"speedup\": "
      << headline.speedup << ", \"results_agree\": "
      << (headline.results_agree ? "true" : "false") << "}\n}\n";
}

int Run() {
  Rng rng(2026);
  std::cout << "kernels bench (active ISA: " << kernels::ActiveIsaName()
            << ", AVX2 " << (kernels::Avx2Available() ? "available" : "absent")
            << ")\n\n";

  std::vector<KernelRate> rates;
  rates.push_back(MeasureKernel("dot", 128, &rng, DotRate));
  rates.push_back(MeasureKernel("dot", 1024, &rng, DotRate));
  rates.push_back(MeasureKernel(
      "matvec", 128, &rng,
      [](const kernels::KernelOps& ops, std::size_t cols, Rng* r) {
        return MatVecRate(ops, 2048, cols, r);
      }));
  rates.push_back(MeasureKernel("score_block", 128, &rng, ScoreBlockRate));

  TablePrinter table({"kernel", "n", "scalar GFLOP/s", "avx2 GFLOP/s"});
  for (const KernelRate& rate : rates) {
    table.AddRow({rate.kernel, Format(rate.n),
                  FormatFixed(rate.scalar_gflops, 2),
                  rate.avx2_gflops > 0.0 ? FormatFixed(rate.avx2_gflops, 2)
                                         : std::string("-")});
  }
  table.PrintMarkdown(std::cout);

  const double popcount_gbits = PopcountRate(&rng);
  std::cout << "popcount: " << FormatFixed(popcount_gbits, 1)
            << " Gbit-products/s\n\n";

  const HeadlineResult headline = MeasureHeadline(&rng);
  std::cout << "per-query scalar baseline: "
            << FormatFixed(headline.baseline_ms, 1) << "ms, tiled BlockTopK: "
            << FormatFixed(headline.tiled_ms, 1) << "ms, speedup "
            << FormatFixed(headline.speedup, 2) << "x, results "
            << (headline.results_agree ? "agree" : "DISAGREE") << "\n";

  WriteJson(rates, popcount_gbits, headline, "BENCH_kernels.json");
  std::cout << "wrote BENCH_kernels.json\n";

  if (!headline.results_agree) {
    std::cerr << "FAIL: tiled and baseline top-k disagree\n";
    return 1;
  }
  const bool gated = std::string(kernels::ActiveIsaName()) == "avx2";
  if (gated && headline.speedup < 4.0) {
    std::cerr << "FAIL: batched speedup " << headline.speedup
              << "x below the 4x acceptance bar\n";
    return 1;
  }
  if (!gated) {
    std::cout << "scalar table active: speedup reported, 4x bar not gated\n";
  }
  return 0;
}

}  // namespace
}  // namespace ips

int main() { return ips::Run(); }
