// Experiment F2 -- reproduces Figure 2 of the paper: the rho value
// (query exponent) of three MIPS LSH constructions as a function of the
// normalized threshold s, for several approximation factors c:
//   DATA-DEP -- this paper's Section 4.1 bound, equation (3),
//   SIMP     -- Neyshabur-Srebro Simple-LSH [39],
//   MH-ALSH  -- Shrivastava-Li asymmetric minwise hashing [46]
//               (binary data only).
//
// Besides the analytic curves, we *measure* rho for DATA-DEP and SIMP by
// Monte-Carlo-estimating collision probabilities of the actual
// implemented hash functions (dual-ball + SimHash, simple-mips +
// SimHash) on vector pairs constructed at inner products s and cs, and
// print analytic vs measured side by side. The shape to reproduce:
// DATA-DEP <= SIMP everywhere, and DATA-DEP < MH-ALSH once s is large
// (the paper quotes s >= d/3, c >= 0.83 for binary data).

#include <algorithm>
#include <cmath>
#include <iostream>

#include "linalg/kernels.h"
#include "lsh/lsh_family.h"
#include "lsh/rho.h"
#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "util/table.h"

namespace ips {
namespace {

std::vector<double> RandomUnit(std::size_t dim, Rng* rng) {
  std::vector<double> v(dim);
  for (double& x : v) x = rng->NextGaussian();
  kernels::NormalizeInPlace(v);
  return v;
}

// Unit vector with prescribed inner product `target` against unit x.
std::vector<double> UnitAtInnerProduct(std::span<const double> x,
                                       double target, Rng* rng) {
  std::vector<double> noise = RandomUnit(x.size(), rng);
  const double along = kernels::Dot(noise, x);
  for (std::size_t i = 0; i < x.size(); ++i) noise[i] -= along * x[i];
  kernels::NormalizeInPlace(noise);
  std::vector<double> y(x.size());
  const double sine = std::sqrt(std::max(0.0, 1.0 - target * target));
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = target * x[i] + sine * noise[i];
  }
  return y;
}

// Measured rho of SimHash composed with `transform`, probing pairs at
// inner products s and cs (unit-ball data, unit-ball queries, U = 1).
double MeasureRho(const VectorTransform& transform, double s, double c,
                  Rng* rng) {
  const std::size_t dim = transform.input_dim();
  const SimHashFamily base(transform.output_dim());
  const TransformedLshFamily family(&transform, &base);
  constexpr std::size_t kTrials = 6000;
  double p[2];
  for (int which = 0; which < 2; ++which) {
    const double target = which == 0 ? s : c * s;
    // Average over several pair geometries.
    std::size_t collisions = 0;
    std::size_t trials = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto x = RandomUnit(dim, rng);
      const auto y = UnitAtInnerProduct(x, target, rng);
      const BernoulliEstimate estimate =
          EstimateCollisionProbability(family, x, y, kTrials / 3, rng);
      collisions +=
          static_cast<std::size_t>(estimate.p_hat * (kTrials / 3.0));
      trials += kTrials / 3;
    }
    p[which] = static_cast<double>(collisions) / static_cast<double>(trials);
  }
  if (p[0] <= 0.0 || p[0] >= 1.0 || p[1] <= 0.0 || p[1] >= 1.0) return 1.0;
  return RhoFromProbabilities(p[0], p[1]);
}

void Run() {
  std::cout << "=== Experiment F2: Figure 2 -- rho of DATA-DEP (eq. 3) vs "
               "SIMP [39] vs MH-ALSH [46] ===\n";
  constexpr std::size_t kDim = 24;
  Rng rng(42);
  for (double c : {0.5, 0.7, 0.9}) {
    std::cout << "\n--- approximation factor c = " << c << " ---\n";
    TablePrinter table({"s", "rho DATA-DEP", "rho SIMP", "rho MH-ALSH",
                        "rho L2-ALSH*", "measured DATA-DEP",
                        "measured SIMP", "winner"});
    for (double s : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
      const double rho_data_dep = RhoDataDep(s, c);
      const double rho_simp = RhoSimpleLsh(s, c);
      const double rho_mh = RhoMhAlsh(s, c);
      const double rho_l2 = RhoL2AlshNumeric(s, c);
      const DualBallTransform dual(kDim, 1.0);
      const SimpleMipsTransform simple(kDim, 1.0);
      const double measured_dual = MeasureRho(dual, s, c, &rng);
      const double measured_simple = MeasureRho(simple, s, c, &rng);
      const double best = std::min({rho_data_dep, rho_simp, rho_mh});
      const char* winner = best == rho_data_dep ? "DATA-DEP"
                           : best == rho_simp   ? "SIMP"
                                                : "MH-ALSH";
      table.AddRow({FormatFixed(s, 2), FormatFixed(rho_data_dep, 4),
                    FormatFixed(rho_simp, 4), FormatFixed(rho_mh, 4),
                    FormatFixed(rho_l2, 4), FormatFixed(measured_dual, 4),
                    FormatFixed(measured_simple, 4), winner});
    }
    table.PrintMarkdown(std::cout);
    MaybeExportCsv(table, "fig2_rho_c" + FormatFixed(c, 1));
  }
  std::cout
      << "\nShape checks (Figure 2): DATA-DEP <= SIMP at every grid point;\n"
         "MH-ALSH wins at small s (binary-tailored) but DATA-DEP overtakes\n"
         "it as s grows -- the paper quotes the crossover near s ~ 1/3,\n"
         "c >= 0.83 for binary data. Measured columns estimate rho from\n"
         "actual SimHash collisions through each reduction; they track the\n"
         "analytic SIMP column (both reductions hash with SimHash here;\n"
         "the analytic DATA-DEP column assumes the optimal sphere LSH [9]\n"
         "and is correspondingly lower). The L2-ALSH* column is the\n"
         "parameter-optimized exponent of the original ALSH [45]; SIMP\n"
         "was introduced in [39] precisely because it dominates it.\n";
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
