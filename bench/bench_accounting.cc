// Experiment F1b -- the Lemma 4 proof, executed: the shared / partially
// shared / proper mass decomposition of a real ALSH family on a
// staircase, aggregated per square of the Figure 1 partition, with every
// inequality of the proof checked numerically.

#include <cmath>
#include <iostream>

#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "theory/hard_sequences.h"
#include "theory/lemma4.h"
#include "theory/lemma4_accounting.h"
#include "util/table.h"

namespace ips {
namespace {

void Run() {
  std::cout << "=== Experiment F1b: Lemma 4 mass accounting on a real ALSH "
               "===\n";
  HardSequences sequences = MakeCase1Sequences(8, 100.0, 0.25, 0.7);
  sequences = TrimSequences(sequences, 31);  // n = 2^5 - 1
  const SequenceCheck check = VerifyHardSequences(sequences);
  IPS_CHECK(check.staircase_ok && check.norms_ok);

  Rng rng(3);
  const DualBallTransform transform(sequences.data.cols(), sequences.U);
  const SimHashFamily base(transform.output_dim());
  const TransformedLshFamily family(&transform, &base);
  constexpr std::size_t kSamples = 4000;
  const MassAccounting accounting =
      ComputeLemma4Accounting(family, sequences, kSamples, &rng);

  std::cout << "family: " << family.Name() << ", staircase n = "
            << accounting.n << ", samples = " << kSamples << "\n"
            << "empirical P1 = " << FormatFixed(accounting.p1_hat, 4)
            << ", P2 = " << FormatFixed(accounting.p2_hat, 4) << "\n\n";

  TablePrinter table({"square (r,s)", "side", "total mass M",
                      "proper M^p", "part.shared", "shared",
                      "shared bound 2^2r P2", "ps bound 2^(r+1) M^p"});
  for (const SquareMasses& entry : accounting.squares) {
    const double side = static_cast<double>(entry.square.side);
    std::string square_label = "(";
    square_label += Format(entry.square.r);
    square_label += ",";
    square_label += Format(entry.square.s);
    square_label += ")";
    table.AddRow(
        {std::move(square_label),
         Format(entry.square.side), FormatFixed(entry.total, 3),
         FormatFixed(entry.proper, 3),
         FormatFixed(entry.partially_shared, 3),
         FormatFixed(entry.shared, 3),
         FormatFixed(side * side * accounting.p2_hat, 3),
         FormatFixed(2.0 * side * entry.proper, 3)});
  }
  table.PrintMarkdown(std::cout);

  const double slack = 5.0 / std::sqrt(static_cast<double>(kSamples));
  std::cout << "\nproof inequalities (slack " << FormatFixed(slack, 4)
            << " per node for sampling error):\n"
            << "  (a) sum of proper masses "
            << FormatFixed(accounting.total_proper_mass, 2) << " <= 2n = "
            << 2 * accounting.n << " : "
            << (accounting.ProperMassBoundHolds(0.0) ? "HOLDS" : "VIOLATED")
            << "\n"
            << "  (b) per-square shared <= 2^{2r} P2 : "
            << (accounting.SharedMassBoundsHold(slack * 31) ? "HOLDS"
                                                            : "VIOLATED")
            << "\n"
            << "  (c) per-square part.shared <= 2^{r+1} M^p : "
            << (accounting.PartiallySharedBoundsHold(slack * 31) ? "HOLDS"
                                                                 : "VIOLATED")
            << "\n"
            << "  (d) per-square total >= 2^{2r} P1 : "
            << (accounting.TotalMassLowerBoundsHold(slack * 31) ? "HOLDS"
                                                                : "VIOLATED")
            << "\n"
            << "  => chaining (a)-(d) gives P1 - P2 <= 1/(8 log n) = "
            << FormatFixed(Lemma4GapBound(accounting.n), 4)
            << " (Lemma 4).\n";
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
