// Experiment T3 -- Theorem 3's three closed-form upper bounds on the
// collision gap P1 - P2, evaluated over sweeps of (d, U, s, c), with the
// hard sequences behind each bound constructed and re-verified against
// their staircase promise. Demonstrates that all three bounds vanish as
// the query radius U grows: no asymmetric LSH for unbounded queries.

#include <cmath>
#include <iostream>

#include "theory/gap_bounds.h"
#include "theory/hard_sequences.h"
#include "util/table.h"

namespace ips {
namespace {

void SweepCase1() {
  std::cout << "--- Theorem 3 case 1: gap <= O(1/log(d log_{1/c}(U/s))), "
               "signed & unsigned ---\n";
  TablePrinter table({"d", "U", "s", "c", "sequence n", "verified",
                      "gap bound"});
  struct P {
    std::size_t d;
    double U, s, c;
  };
  for (const auto& [d, U, s, c] :
       {P{1, 10, 0.5, 0.5}, P{2, 10, 0.5, 0.5}, P{4, 100, 0.5, 0.5},
        P{8, 100, 0.5, 0.7}, P{16, 1000, 1.0, 0.7}, P{16, 10000, 1.0, 0.7},
        P{32, 10000, 1.0, 0.9}}) {
    const HardSequences sequences = MakeCase1Sequences(d, U, s, c);
    const SequenceCheck check = VerifyHardSequences(sequences);
    table.AddRow({Format(d), Format(U), Format(s), Format(c),
                  Format(sequences.data.rows()),
                  check.staircase_ok && check.norms_ok && check.unsigned_ok
                      ? "yes"
                      : "NO",
                  FormatFixed(Case1GapBound(d, U, s, c), 5)});
  }
  table.PrintMarkdown(std::cout);
}

void SweepCase2() {
  std::cout << "\n--- Theorem 3 case 2: gap <= O(1/log(dU/(s(1-c)))), "
               "signed only ---\n";
  TablePrinter table({"d", "U", "s", "c", "sequence n", "verified",
                      "gap bound"});
  struct P {
    std::size_t d;
    double U, s, c;
  };
  for (const auto& [d, U, s, c] :
       {P{2, 10, 1.0, 0.5}, P{2, 100, 1.0, 0.5}, P{4, 100, 1.0, 0.7},
        P{4, 1000, 1.0, 0.9}, P{8, 1000, 1.0, 0.9}, P{8, 10000, 1.0, 0.9}}) {
    const HardSequences sequences = MakeCase2Sequences(d, U, s, c);
    const SequenceCheck check = VerifyHardSequences(sequences);
    table.AddRow({Format(d), Format(U), Format(s), Format(c),
                  Format(sequences.data.rows()),
                  check.staircase_ok && check.norms_ok ? "yes" : "NO",
                  FormatFixed(Case2GapBound(d, U, s, c), 5)});
  }
  table.PrintMarkdown(std::cout);
}

void SweepCase3() {
  std::cout << "\n--- Theorem 3 case 3: gap <= O(sqrt(s/U)), signed & "
               "unsigned (d = Omega(U^5/(c^2 s^5))) ---\n";
  TablePrinter table(
      {"U", "s", "c", "levels", "sequence n", "verified", "gap bound"});
  struct P {
    double U, s, c;
  };
  // The sequence length (and ambient dimension) is exponential in
  // sqrt(U/8s), so U is capped to keep the O(n^2 dim) verification fast.
  for (const auto& [U, s, c] :
       {P{80, 1, 0.5}, P{128, 1, 0.5}, P{200, 1, 0.5}, P{392, 1, 0.5},
        P{512, 1, 0.8}}) {
    const HardSequences sequences =
        MakeCase3Sequences(U, s, c, IncoherentKind::kOrthonormal);
    const SequenceCheck check = VerifyHardSequences(sequences);
    table.AddRow({Format(U), Format(s), Format(c),
                  Format(static_cast<std::size_t>(
                      std::floor(std::sqrt(U / (8.0 * s))))),
                  Format(sequences.data.rows()),
                  check.staircase_ok && check.norms_ok && check.unsigned_ok
                      ? "yes"
                      : "NO",
                  FormatFixed(Case3GapBound(U, s), 5)});
  }
  table.PrintMarkdown(std::cout);

  std::cout << "\n--- All three bounds vanish as U -> infinity ---\n";
  TablePrinter decay({"U", "case 1 bound", "case 2 bound", "case 3 bound"});
  for (double U : {1e2, 1e3, 1e4, 1e6, 1e8, 1e10}) {
    decay.AddRow({FormatSci(U, 0),
                  FormatFixed(Case1GapBound(4, U, 0.5, 0.5), 6),
                  FormatFixed(Case2GapBound(4, U, 0.5, 0.5), 6),
                  FormatFixed(Case3GapBound(U, 0.5), 6)});
  }
  decay.PrintMarkdown(std::cout);
}

}  // namespace
}  // namespace ips

int main() {
  std::cout << "=== Experiment T3: Theorem 3 gap upper bounds ===\n";
  ips::SweepCase1();
  ips::SweepCase2();
  ips::SweepCase3();
  return 0;
}
