// Experiment F1 -- reproduces Figure 1 / Lemma 4: the exponential square
// partition of the collision grid's lower triangle, and the empirical
// verification that the collision gap P1 - P2 of real (A)LSH families on
// the Theorem 3 staircase sequences stays below 1/(8 log n) and decays
// as the sequences grow.

#include <cmath>
#include <iostream>

#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "theory/hard_sequences.h"
#include "theory/lemma4.h"
#include "util/table.h"

namespace ips {
namespace {

void PrintPartitionSummary() {
  std::cout << "--- Figure 1: square partition of the lower triangle ---\n";
  TablePrinter table({"ell", "n = 2^ell-1", "squares", "nodes covered",
                      "lower-triangle nodes", "exact cover"});
  for (std::size_t ell = 1; ell <= 7; ++ell) {
    const std::size_t n = (1ULL << ell) - 1;
    const auto squares = LowerTrianglePartition(ell);
    std::size_t covered = 0;
    for (const auto& square : squares) covered += square.side * square.side;
    const std::size_t triangle = n * (n + 1) / 2;
    table.AddRow({Format(ell), Format(n), Format(squares.size()),
                  Format(covered), Format(triangle),
                  covered == triangle ? "yes" : "NO"});
  }
  table.PrintMarkdown(std::cout);
}

void MeasureGaps() {
  std::cout << "\n--- Lemma 4 empirically: measured P1 - P2 of dual-ball + "
               "SimHash on Theorem 3 staircases ---\n";
  Rng rng(7);
  TablePrinter table({"construction", "params", "n", "measured P1",
                      "measured P2", "gap", "bound 1/(8 log n)",
                      "within bound"});
  struct Row {
    const char* name;
    const char* params;
    HardSequences sequences;
  };
  std::vector<Row> rows;
  rows.push_back({"case 1", "d=2, U=20, s=0.25, c=0.5",
                  MakeCase1Sequences(2, 20.0, 0.25, 0.5)});
  rows.push_back({"case 1", "d=4, U=50, s=0.25, c=0.7",
                  MakeCase1Sequences(4, 50.0, 0.25, 0.7)});
  rows.push_back({"case 1", "d=8, U=100, s=0.5, c=0.8",
                  MakeCase1Sequences(8, 100.0, 0.5, 0.8)});
  rows.push_back({"case 2", "d=4, U=64, s=1, c=0.5",
                  MakeCase2Sequences(4, 64.0, 1.0, 0.5)});
  rows.push_back({"case 2", "d=2, U=128, s=1, c=0.8",
                  MakeCase2Sequences(2, 128.0, 1.0, 0.8)});
  rows.push_back({"case 3", "U=100, s=1, c=0.5 (orthonormal Z)",
                  MakeCase3Sequences(100.0, 1.0, 0.5,
                                     IncoherentKind::kOrthonormal)});
  rows.push_back({"case 3", "U=300, s=1, c=0.5 (orthonormal Z)",
                  MakeCase3Sequences(300.0, 1.0, 0.5,
                                     IncoherentKind::kOrthonormal)});
  constexpr std::size_t kSamples = 3000;
  for (const Row& row : rows) {
    const SequenceCheck check = VerifyHardSequences(row.sequences);
    if (!check.staircase_ok || !check.norms_ok) {
      std::cerr << "construction " << row.name
                << " violates its own promise!\n";
      continue;
    }
    const std::size_t n = row.sequences.data.rows();
    const DualBallTransform transform(row.sequences.data.cols(),
                                      row.sequences.U);
    const SimHashFamily base(transform.output_dim());
    const TransformedLshFamily family(&transform, &base);
    const CollisionMatrix matrix(family, row.sequences, kSamples, &rng);
    const double bound = Lemma4GapBound(n);
    const double gap = matrix.EmpiricalGap();
    const double slack = 3.0 * std::sqrt(0.25 / kSamples);
    table.AddRow({row.name, row.params, Format(n),
                  FormatFixed(matrix.EmpiricalP1(), 4),
                  FormatFixed(matrix.EmpiricalP2(), 4), FormatFixed(gap, 4),
                  FormatFixed(bound, 4),
                  gap <= bound + 2 * slack ? "yes" : "NO"});
  }
  table.PrintMarkdown(std::cout);
  std::cout << "\nReading: P1 is the *smallest* collision probability over "
               "staircase pairs promised >= s,\nP2 the largest over pairs "
               "promised <= cs. Lemma 4 caps P1 - P2 by 1/(8 log n); the\n"
               "bound shrinks as the constructions admit longer staircases "
               "(larger U/s), which is the\nTheorem 3 impossibility of "
               "asymmetric LSH for unbounded query domains.\n";
}

}  // namespace
}  // namespace ips

int main() {
  ips::PrintPartitionSummary();
  ips::MeasureGaps();
  return 0;
}
