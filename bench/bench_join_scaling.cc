// Experiment J1 -- the sub-quadratic join claim of Section 4.1: LSH join
// versus the exact quadratic scan and the exact ball-tree baseline on
// planted high-similarity instances of growing size. We report wall
// time, exact inner products evaluated (machine-independent work), and
// recall of the (cs, s) contract; the shape to observe is the LSH work
// curve bending away from the quadratic baseline while recall stays
// high, with the crossover at moderate n.

#include <cmath>
#include <iostream>

#include "core/dataset.h"
#include "core/mips_index.h"
#include "core/similarity_join.h"
#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "util/table.h"
#include "util/timer.h"

namespace ips {
namespace {

void Run() {
  std::cout << "=== Experiment J1: join scaling -- LSH vs brute force vs "
               "ball tree ===\n";
  Rng rng(3);
  const std::size_t kDim = 24;
  JoinSpec spec;
  spec.s = 0.8;
  spec.c = 0.75;
  spec.is_signed = true;

  TablePrinter table({"n", "method", "join ms", "inner products",
                      "products/query", "recall"});
  for (std::size_t n : {500u, 1000u, 2000u, 4000u, 8000u}) {
    const std::size_t num_queries = 50;
    const PlantedInstance planted =
        MakePlantedInstance(n, num_queries, kDim, 0.9, 1.0, &rng);
    const JoinResult truth =
        ExactJoin(planted.data, planted.queries, spec, nullptr);

    // Brute force.
    {
      const BruteForceIndex index(planted.data);
      WallTimer timer;
      const JoinResult result = IndexJoin(index, planted.queries, spec);
      double recall = 0.0;
      VerifyJoinContract(result, truth, spec, &recall);
      table.AddRow({Format(n), "brute-force",
                    FormatFixed(timer.Millis(), 2),
                    Format(result.inner_products),
                    Format(result.inner_products / num_queries),
                    FormatFixed(recall, 3)});
    }
    // Ball tree (exact, prunes).
    {
      const TreeMipsIndex index(planted.data, 16, &rng);
      WallTimer timer;
      const JoinResult result = IndexJoin(index, planted.queries, spec);
      double recall = 0.0;
      VerifyJoinContract(result, truth, spec, &recall);
      table.AddRow({Format(n), "ball-tree", FormatFixed(timer.Millis(), 2),
                    Format(result.inner_products),
                    Format(result.inner_products / num_queries),
                    FormatFixed(recall, 3)});
    }
    // LSH (dual-ball + SimHash, Section 4.1 reduction).
    {
      const DualBallTransform transform(kDim, 1.0);
      const SimHashFamily base(transform.output_dim());
      // Theory-driven amplification: k grows with log n so per-table
      // false-positive mass stays O(1) and candidate counts sublinear.
      LshTableParams params;
      params.k = static_cast<std::size_t>(
          std::ceil(std::log2(static_cast<double>(n)))) - 2;
      params.l = 48;
      const LshMipsIndex index(planted.data, &transform, base, params,
                               &rng);
      WallTimer timer;
      const JoinResult result = IndexJoin(index, planted.queries, spec);
      double recall = 0.0;
      VerifyJoinContract(result, truth, spec, &recall);
      table.AddRow({Format(n), "lsh(dual-ball+simhash)",
                    FormatFixed(timer.Millis(), 2),
                    Format(result.inner_products),
                    Format(result.inner_products / num_queries),
                    FormatFixed(recall, 3)});
    }
  }
  table.PrintMarkdown(std::cout);
  MaybeExportCsv(table, "join_scaling");
  std::cout
      << "\nShape checks: brute-force products/query equal n (quadratic\n"
         "join); with k = Theta(log n) the LSH candidate count per query\n"
         "grows far slower than n (sublinear work) at recall ~1, and the\n"
         "ball tree prunes in between. LSH hashing time is amortized over\n"
         "the query set; its wall-time advantage appears once n outgrows\n"
         "the fixed hashing overhead -- the crossover the paper's theory\n"
         "predicts for subquadratic joins.\n";
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
