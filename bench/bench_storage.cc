// Storage benchmark (DESIGN.md §12): time-to-first-answer of the three
// ways to stand up a serving engine — cold rebuild (Create + calibrate
// + index builds), heap snapshot load, and mmap zero-copy warm start —
// plus the out-of-core blocked join's block-size sweep. Writes
// BENCH_storage.json.
//
// Acceptance gate (ISSUE 7): the mmap warm start must reach its first
// answer >= 10x faster than the cold rebuild; a miss exits nonzero so
// CI fails loudly instead of shipping a regressed startup path.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/query.h"
#include "lsh/simhash.h"
#include "rng/random.h"
#include "serve/engine.h"
#include "storage/blocked_join.h"
#include "storage/snapshot.h"
#include "util/table.h"
#include "util/timer.h"

namespace ips {
namespace {

constexpr std::size_t kN = 20000;
constexpr std::size_t kDim = 48;
constexpr int kReps = 5;

struct WarmStartResult {
  double cold_ms = 0.0;
  double heap_ms = 0.0;
  double mmap_ms = 0.0;
  double speedup_heap = 0.0;
  double speedup_mmap = 0.0;
  bool gate_pass = false;
};

struct SweepPoint {
  std::size_t block_rows = 0;
  std::size_t block_pairs = 0;
  double ms = 0.0;
  double mb_per_s = 0.0;
};

[[noreturn]] void Die(const std::string& what, const Status& status) {
  std::cerr << what << ": " << status.ToString() << "\n";
  std::exit(1);
}

// One planner-routed query, the "first answer" being timed.
void FirstQuery(const Engine& engine) {
  QueryOptions options;
  options.k = 5;
  const auto result = engine.Query({engine.data().Row(0), options});
  if (!result.ok()) Die("first query", result.status());
}

// Cold path: build everything from the raw dataset (calibration probes
// plus the tree and LSH indexes a warm snapshot would carry).
double ColdStartMs(const Matrix& data) {
  WallTimer timer;
  auto engine = Engine::Create(data);
  if (!engine.ok()) Die("cold create", engine.status());
  for (QueryAlgo algo : {QueryAlgo::kBallTree, QueryAlgo::kLsh}) {
    const Status built = (*engine)->EnsureIndex(algo);
    if (!built.ok()) Die("cold build", built);
  }
  FirstQuery(**engine);
  return timer.Millis();
}

double WarmStartMs(const std::string& dir, bool use_mmap) {
  SnapshotLoadOptions load;
  load.use_mmap = use_mmap;
  WallTimer timer;
  auto engine = Engine::CreateFromSnapshot(dir, load);
  if (!engine.ok()) Die("warm load", engine.status());
  FirstQuery(**engine);
  return timer.Millis();
}

WarmStartResult RunWarmStartSection(Rng* rng) {
  std::cout << "=== warm start (n=" << kN << ", dim=" << kDim << ", "
            << kReps << " reps, best-of) ===\n";
  const Matrix data = MakeUnitBallGaussian(kN, kDim, /*min_norm=*/0.3, rng);

  // Author the snapshot once from a fully built engine.
  const std::string dir = "build/bench_storage_snapshot";
  {
    auto engine = Engine::Create(data);
    if (!engine.ok()) Die("snapshot author", engine.status());
    for (QueryAlgo algo : {QueryAlgo::kBallTree, QueryAlgo::kLsh}) {
      const Status built = (*engine)->EnsureIndex(algo);
      if (!built.ok()) Die("snapshot author build", built);
    }
    const Status saved = (*engine)->SaveSnapshot(dir);
    if (!saved.ok()) Die("snapshot save", saved);
  }

  WarmStartResult result;
  result.cold_ms = std::numeric_limits<double>::infinity();
  result.heap_ms = std::numeric_limits<double>::infinity();
  result.mmap_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    result.cold_ms = std::min(result.cold_ms, ColdStartMs(data));
    result.heap_ms = std::min(result.heap_ms, WarmStartMs(dir, false));
    result.mmap_ms = std::min(result.mmap_ms, WarmStartMs(dir, true));
  }
  result.speedup_heap =
      result.heap_ms > 0.0 ? result.cold_ms / result.heap_ms : 0.0;
  result.speedup_mmap =
      result.mmap_ms > 0.0 ? result.cold_ms / result.mmap_ms : 0.0;
  result.gate_pass = result.speedup_mmap >= 10.0;

  TablePrinter table({"path", "first answer (ms)", "vs cold"});
  table.AddRow({"cold rebuild", FormatFixed(result.cold_ms, 2), "1.00x"});
  table.AddRow({"snapshot (heap)", FormatFixed(result.heap_ms, 2),
                FormatFixed(result.speedup_heap, 2) + "x"});
  table.AddRow({"snapshot (mmap)", FormatFixed(result.mmap_ms, 2),
                FormatFixed(result.speedup_mmap, 2) + "x"});
  table.PrintMarkdown(std::cout);
  std::cout << "\n";
  return result;
}

// Out-of-core sweep: the same join at several block sizes. Small blocks
// pay per-pair hashing of the data side repeatedly (the data side is
// rehashed once per query block); big blocks approach the monolithic
// join's memory. The sweet spot is the fastest block size.
std::vector<SweepPoint> RunBlockSweep(Rng* rng) {
  constexpr std::size_t kRows = 32768;
  constexpr std::size_t kSweepDim = 32;
  constexpr std::size_t kQueryRows = 256;
  std::cout << "=== out-of-core block sweep (" << kRows << " x " << kSweepDim
            << " data, " << kQueryRows << " queries) ===\n";

  const std::string data_path = "build/bench_storage_data.ips";
  const std::string queries_path = "build/bench_storage_queries.ips";
  {
    auto writer = storage::MatrixSnapshotWriter::Create(data_path, kSweepDim);
    if (!writer.ok()) Die("sweep writer", writer.status());
    std::vector<double> chunk(4096 * kSweepDim);
    for (std::size_t written = 0; written < kRows; written += 4096) {
      for (double& v : chunk) v = rng->NextGaussian();
      const Status appended = writer->AppendRows(chunk);
      if (!appended.ok()) Die("sweep append", appended);
    }
    const Status finished = writer->Finish();
    if (!finished.ok()) Die("sweep finish", finished);
  }
  {
    Matrix queries(kQueryRows, kSweepDim);
    for (std::size_t i = 0; i < kQueryRows; ++i) {
      for (std::size_t j = 0; j < kSweepDim; ++j) {
        queries.At(i, j) = rng->NextGaussian();
      }
    }
    const Status saved = storage::SaveMatrixSnapshot(queries, queries_path);
    if (!saved.ok()) Die("sweep queries", saved);
  }

  const SimHashFamily family(kSweepDim);
  std::vector<SweepPoint> points;
  TablePrinter table({"block rows", "pairs", "ms", "MB/s"});
  for (std::size_t block_rows : {1024u, 4096u, 16384u, 32768u}) {
    storage::BlockedJoinOptions options;
    options.block_rows = block_rows;
    // A budget large enough for the biggest block keeps the sweep about
    // block geometry, not budget clamping.
    options.memory_budget_bytes = 256u << 20;
    options.params = {.k = 8, .l = 4};
    options.s_threshold = 32.0;
    options.cs_threshold = 24.0;
    options.seed = 7;
    // The files were just written and verified once below; skip the
    // re-verification inside the timed region.
    options.verify_checksums = false;

    storage::BlockedJoinStats stats;
    WallTimer timer;
    const auto result = storage::BlockedBucketJoin(
        family, data_path, queries_path, options, &stats);
    const double ms = timer.Millis();
    if (!result.ok()) Die("sweep join", result.status());

    SweepPoint point;
    point.block_rows = block_rows;
    point.block_pairs = stats.block_pairs;
    point.ms = ms;
    point.mb_per_s =
        ms > 0.0 ? static_cast<double>(stats.bytes_read) / 1e6 / (ms / 1e3)
                 : 0.0;
    points.push_back(point);
    table.AddRow({Format(point.block_rows), Format(point.block_pairs),
                  FormatFixed(point.ms, 1), FormatFixed(point.mb_per_s, 1)});
  }
  table.PrintMarkdown(std::cout);
  std::cout << "\n";
  return points;
}

void WriteJson(const WarmStartResult& warm,
               const std::vector<SweepPoint>& sweep,
               const std::string& path) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].ms < sweep[best].ms) best = i;
  }
  std::ofstream out(path);
  out << "{\n  \"bench\": \"storage\",\n  \"n\": " << kN
      << ",\n  \"dim\": " << kDim << ",\n  \"warm_start\": {"
      << "\"cold_ms\": " << warm.cold_ms
      << ", \"heap_load_ms\": " << warm.heap_ms
      << ", \"mmap_load_ms\": " << warm.mmap_ms
      << ", \"speedup_heap\": " << warm.speedup_heap
      << ", \"speedup_mmap\": " << warm.speedup_mmap
      << ", \"gate_threshold\": 10.0"
      << ", \"gate_pass\": " << (warm.gate_pass ? "true" : "false")
      << "},\n  \"block_sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    out << "    {\"block_rows\": " << sweep[i].block_rows
        << ", \"block_pairs\": " << sweep[i].block_pairs
        << ", \"ms\": " << sweep[i].ms
        << ", \"mb_per_s\": " << sweep[i].mb_per_s << "}"
        << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"sweet_spot_block_rows\": "
      << (sweep.empty() ? 0 : sweep[best].block_rows) << "\n}\n";
}

int Run() {
  Rng rng(2026);
  const WarmStartResult warm = RunWarmStartSection(&rng);
  const std::vector<SweepPoint> sweep = RunBlockSweep(&rng);
  WriteJson(warm, sweep, "BENCH_storage.json");
  std::cout << "wrote BENCH_storage.json\n";

  if (!warm.gate_pass) {
    std::cerr << "FAIL: mmap warm start " << warm.speedup_mmap
              << "x over cold rebuild, below the 10x acceptance bar\n";
    return 1;
  }
  std::cout << "OK: mmap warm start reaches its first answer "
            << FormatFixed(warm.speedup_mmap, 1)
            << "x faster than a cold rebuild\n";
  return 0;
}

}  // namespace
}  // namespace ips

int main() { return ips::Run(); }
