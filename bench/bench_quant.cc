// Quantized two-stage scoring benchmark (DESIGN.md §13): exact brute
// force against the int8 quantized-rerank path and the CountSketch
// filtered-rerank path on a small-norm-spread workload (unit-ball
// Gaussian) and a large-norm-spread workload (Zipf latent factors, the
// recommender shape where quantization shines). For each approximate
// mode the survivor budget is swept, producing a throughput/recall
// curve; results land in BENCH_quant.json.
//
// Acceptance gate (ISSUE 8): on the large-norm-spread workload the
// quantized path must reach >= 2x the exact brute-force throughput at
// >= 0.95 mean top-k recall for at least one survivor budget.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/query.h"
#include "core/top_k.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/quantized.h"
#include "rng/random.h"
#include "sketch/filter.h"
#include "util/table.h"
#include "util/timer.h"

namespace ips {
namespace {

constexpr std::size_t kN = 8000;
constexpr std::size_t kDim = 64;
constexpr std::size_t kQueries = 200;
constexpr std::size_t kK = 10;
constexpr int kReps = 3;  // timing repetitions; best-of to damp jitter

// One measured point of a mode's throughput/recall curve.
struct CurvePoint {
  std::size_t budget = 0;  // survivor budget (0 = the mode's default policy)
  double qps = 0.0;
  double recall = 0.0;
  double speedup = 0.0;       // vs the exact scan on the same workload
  double mean_survivors = 0.0;
};

struct ModeResult {
  std::string name;
  std::vector<CurvePoint> points;
};

struct WorkloadResult {
  std::string name;
  double exact_qps = 0.0;
  std::vector<ModeResult> modes;
  bool gated = false;      // whether the 2x/0.95 gate applies here
  bool gate_pass = false;
};

// Exact ground-truth top-k for every query (also the recall denominator).
std::vector<std::vector<SearchMatch>> GroundTruth(const Matrix& data,
                                                  const Matrix& queries) {
  std::vector<std::vector<SearchMatch>> truth;
  truth.reserve(queries.rows());
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    truth.push_back(TopKBruteForce(data, queries.Row(qi), kK, true));
  }
  return truth;
}

double MeanRecall(const std::vector<std::vector<SearchMatch>>& truth,
                  const std::vector<std::vector<SearchMatch>>& got) {
  std::size_t hits = 0;
  std::size_t total = 0;
  for (std::size_t qi = 0; qi < truth.size(); ++qi) {
    total += truth[qi].size();
    for (const auto& t : truth[qi]) {
      for (const auto& match : got[qi]) {
        if (match.index == t.index) {
          ++hits;
          break;
        }
      }
    }
  }
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
}

// Times `run` over every query, best-of-kReps, returning qps and the
// answers of the last rep.
template <typename Fn>
double TimeLoop(const Matrix& queries, Fn run,
                std::vector<std::vector<SearchMatch>>* answers) {
  double best_seconds = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    answers->clear();
    answers->reserve(queries.rows());
    WallTimer timer;
    for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
      answers->push_back(run(queries.Row(qi)));
    }
    best_seconds = std::min(best_seconds, timer.Seconds());
  }
  return best_seconds > 0.0
             ? static_cast<double>(queries.rows()) / best_seconds
             : 0.0;
}

WorkloadResult RunWorkload(const std::string& name, const Matrix& data,
                           bool gated, Rng* rng) {
  std::cout << "=== workload: " << name << " (n=" << kN << ", dim=" << kDim
            << ", " << kQueries << " queries, k=" << kK << ", isa "
            << kernels::ActiveIsaName() << ") ===\n";
  WorkloadResult result;
  result.name = name;
  result.gated = gated;

  Matrix queries(kQueries, kDim);
  for (std::size_t qi = 0; qi < kQueries; ++qi) {
    for (std::size_t j = 0; j < kDim; ++j) {
      queries.At(qi, j) = rng->NextGaussian();
    }
  }
  const auto truth = GroundTruth(data, queries);

  const QuantizedMatrix qdata = QuantizedMatrix::Quantize(data);
  SketchFilterParams filter_params;
  filter_params.copies = 4;  // the variance that makes survivors recover
  Rng build_rng(17);
  const InnerProductFilter filter(data, filter_params, &build_rng);

  QueryOptions exact_options;
  exact_options.k = kK;
  std::vector<std::vector<SearchMatch>> answers;
  result.exact_qps = TimeLoop(
      queries,
      [&](std::span<const double> q) {
        return QueryBruteForce(data, q, exact_options);
      },
      &answers);
  std::cout << "exact: " << FormatFixed(result.exact_qps, 1) << " qps\n";

  // Survivor-budget sweep: 0 = the mode's own default policy
  // (multiplier/floor), then explicit caps through candidate_budget.
  const std::size_t budgets[] = {0, 20, 40, 80, 160, 320};

  TablePrinter table({"mode", "budget", "qps", "recall", "speedup",
                      "survivors"});
  for (const bool quant : {true, false}) {
    ModeResult mode;
    mode.name = quant ? "quantized_rerank" : "sketch_filter";
    for (const std::size_t budget : budgets) {
      QueryOptions options;
      options.k = kK;
      options.candidate_budget = budget;
      options.precision = quant ? QueryPrecision::kQuantizedRerank
                                : QueryPrecision::kSketchFilter;
      CurvePoint point;
      point.budget = budget;
      std::size_t survivor_sum = 0;
      point.qps = TimeLoop(
          queries,
          [&](std::span<const double> q) {
            QueryStats stats;
            auto matches =
                quant ? QueryQuantizedRerank(data, qdata, q, options, &stats)
                      : QueryFilteredRerank(data, filter, q, options, &stats);
            survivor_sum += stats.rerank_exact_dots;
            return matches;
          },
          &answers);
      point.recall = MeanRecall(truth, answers);
      point.speedup =
          result.exact_qps > 0.0 ? point.qps / result.exact_qps : 0.0;
      point.mean_survivors = static_cast<double>(survivor_sum) /
                             static_cast<double>(kReps * kQueries);
      table.AddRow({mode.name,
                    budget == 0 ? std::string("default")
                                : std::to_string(budget),
                    FormatFixed(point.qps, 1), FormatFixed(point.recall, 3),
                    FormatFixed(point.speedup, 2),
                    FormatFixed(point.mean_survivors, 1)});
      mode.points.push_back(point);
    }
    result.modes.push_back(std::move(mode));
  }
  table.PrintMarkdown(std::cout);

  if (gated) {
    for (const auto& point : result.modes.front().points) {
      if (point.speedup >= 2.0 && point.recall >= 0.95) {
        result.gate_pass = true;
        break;
      }
    }
    std::cout << "gate (quantized >= 2x at >= 0.95 recall): "
              << (result.gate_pass ? "pass" : "FAIL") << "\n";
  }
  std::cout << "\n";
  return result;
}

void WriteJson(const std::vector<WorkloadResult>& workloads,
               const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"quant\",\n  \"n\": " << kN
      << ",\n  \"dim\": " << kDim << ",\n  \"queries\": " << kQueries
      << ",\n  \"k\": " << kK << ",\n  \"isa\": \""
      << kernels::ActiveIsaName() << "\",\n  \"workloads\": [\n";
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const WorkloadResult& wl = workloads[w];
    out << "    {\n      \"name\": \"" << wl.name << "\",\n"
        << "      \"exact_qps\": " << wl.exact_qps << ",\n"
        << "      \"gated\": " << (wl.gated ? "true" : "false") << ",\n"
        << "      \"gate_pass\": " << (wl.gate_pass ? "true" : "false")
        << ",\n      \"modes\": [\n";
    for (std::size_t m = 0; m < wl.modes.size(); ++m) {
      const ModeResult& mode = wl.modes[m];
      out << "        {\"name\": \"" << mode.name << "\", \"points\": [\n";
      for (std::size_t p = 0; p < mode.points.size(); ++p) {
        const CurvePoint& point = mode.points[p];
        out << "          {\"budget\": " << point.budget
            << ", \"qps\": " << point.qps << ", \"recall\": " << point.recall
            << ", \"speedup\": " << point.speedup
            << ", \"mean_survivors\": " << point.mean_survivors << "}"
            << (p + 1 < mode.points.size() ? "," : "") << "\n";
      }
      out << "        ]}" << (m + 1 < wl.modes.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (w + 1 < workloads.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int Run() {
  Rng rng(2026);
  std::vector<WorkloadResult> workloads;
  workloads.push_back(RunWorkload(
      "small_norm_spread",
      MakeUnitBallGaussian(kN, kDim, /*min_norm=*/0.9, &rng),
      /*gated=*/false, &rng));
  workloads.push_back(RunWorkload(
      "large_norm_spread",
      MakeLatentFactorVectors(kN, kDim, /*skew=*/1.0, &rng),
      /*gated=*/true, &rng));

  WriteJson(workloads, "BENCH_quant.json");
  std::cout << "wrote BENCH_quant.json\n";

  for (const auto& wl : workloads) {
    if (wl.gated && !wl.gate_pass) {
      std::cerr << "FAIL: quantized path never reached 2x exact throughput "
                   "at 0.95 recall on "
                << wl.name << "\n";
      return 1;
    }
  }
  std::cout << "OK: quantized two-stage scoring passes the 2x / 0.95 gate\n";
  return 0;
}

}  // namespace
}  // namespace ips

int main() { return ips::Run(); }
