// Ablation A1 -- the (K, L) amplification trade-off of the LSH index:
// sweeping concatenation depth K and table count L against recall and
// verification work on a planted MIPS workload. This is the knob behind
// every rho claim: K controls selectivity (P^K), L controls success
// probability (1 - (1-P^K)^L); the table shows the standard ridge where
// recall is bought with tables once K filters hard enough.

#include <iostream>

#include "core/dataset.h"
#include "core/mips_index.h"
#include "core/similarity_join.h"
#include "lsh/multiprobe.h"
#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "util/table.h"

namespace ips {
namespace {

void Run() {
  std::cout << "=== Ablation A1: LSH amplification (K, L) sweep ===\n";
  Rng rng(3);
  const std::size_t kDim = 24;
  const std::size_t kData = 3000;
  const std::size_t kQueries = 60;
  const PlantedInstance planted =
      MakePlantedInstance(kData, kQueries, kDim, 0.9, 1.0, &rng);
  JoinSpec spec;
  spec.s = 0.8;
  spec.c = 0.75;
  spec.is_signed = true;
  const JoinResult truth =
      ExactJoin(planted.data, planted.queries, spec, nullptr);
  const DualBallTransform transform(kDim, 1.0);
  const SimHashFamily base(transform.output_dim());

  TablePrinter table({"K", "L", "recall", "products/query",
                      "work vs brute (%)"});
  for (std::size_t k : {4u, 8u, 12u, 16u}) {
    for (std::size_t l : {8u, 32u, 128u}) {
      LshTableParams params;
      params.k = k;
      params.l = l;
      const LshMipsIndex index(planted.data, &transform, base, params,
                               &rng);
      const JoinResult result = IndexJoin(index, planted.queries, spec);
      double recall = 0.0;
      VerifyJoinContract(result, truth, spec, &recall);
      const double per_query =
          static_cast<double>(result.inner_products) / kQueries;
      table.AddRow({Format(k), Format(l), FormatFixed(recall, 3),
                    FormatFixed(per_query, 1),
                    FormatFixed(100.0 * per_query / kData, 1)});
    }
  }
  table.PrintMarkdown(std::cout);
  std::cout
      << "\nShape checks: at fixed L, raising K cuts candidates sharply\n"
         "(selectivity P^K) and eventually recall; at fixed K, raising L\n"
         "restores recall at linear cost in work. The efficient frontier\n"
         "-- large K with L scaled as n^rho -- is exactly what the rho\n"
         "formulas of Figure 2 quantify.\n";

  // Second dial: multiprobe -- buy recall with probes instead of tables.
  std::cout << "\n--- multiprobe: probes vs tables at fixed memory ---\n";
  TablePrinter probe_table({"tables L", "probes T", "recall of plant",
                            "mean candidates/query"});
  const Matrix& queries = planted.queries;
  for (const auto& [l, probes] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 0}, {1, 8}, {1, 32}, {4, 0}, {4, 8}, {16, 0}}) {
    MultiprobeParams mp;
    mp.k = 16;
    mp.l = l;
    mp.probes = probes;
    Rng local(99);
    // Hash in the lifted space so inner products become cosines.
    const Matrix lifted_data = transform.TransformDataset(planted.data);
    const Matrix lifted_queries = transform.TransformQueries(queries);
    const MultiprobeSimHashTables tables(lifted_data, mp, &local);
    std::size_t hits = 0;
    std::size_t candidates = 0;
    for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
      const auto found = tables.Query(lifted_queries.Row(qi));
      candidates += found.size();
      for (std::size_t index : found) {
        if (index == planted.plants[qi]) {
          ++hits;
          break;
        }
      }
    }
    probe_table.AddRow(
        {Format(l), Format(probes),
         FormatFixed(static_cast<double>(hits) / queries.rows(), 3),
         FormatFixed(static_cast<double>(candidates) / queries.rows(), 1)});
  }
  probe_table.PrintMarkdown(std::cout);
  std::cout << "\nOne table probed 32 times matches the recall of four\n"
               "tables probed once, at a quarter of the memory -- the\n"
               "multiprobe trade-off, orthogonal to the paper's theory but\n"
               "the standard practical complement to it.\n";
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
