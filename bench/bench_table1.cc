// Experiment T1 -- reproduces Table 1 of the paper: the ranges of
// approximation factors c (and log(s/d)/log(cs/d) ratios) for which
// subquadratic (cs, s) IPS join is OVP-hard, as *realized* by the three
// gap embeddings of Lemma 3.
//
// For each embedding we sweep the input dimension d (and the embedding's
// own knob q / k), instantiate the construction, and report the achieved
// (c, log-ratio, output dimension). The hard ranges printed here are the
// constructive side of Table 1's second/fourth columns; the permissible
// column entries are known upper bounds quoted from [29] and Section 4.3
// for context.

#include <cmath>
#include <tuple>
#include <vector>
#include <iostream>

#include "embed/binary_embedding.h"
#include "embed/chebyshev_embedding.h"
#include "embed/sign_embedding.h"
#include "hardness/ovp.h"
#include "lsh/bit_sample.h"
#include "hardness/reduction.h"
#include "rng/random.h"
#include "util/table.h"

namespace ips {
namespace {

// log(s/d2) / log(cs/d2): the normalized-threshold ratio of Theorem 2.
double LogRatio(double s, double cs, double d2) {
  return std::log(s / d2) / std::log(cs / d2);
}

// Empirically confirm the embedding's gap on a planted OVP instance and
// return whether the planted pair was recovered by the join.
bool ConfirmOnPlantedInstance(const GapEmbedding& embedding,
                              std::uint64_t seed) {
  Rng rng(seed);
  OvpOptions options;
  options.size_a = 24;
  options.size_b = 24;
  options.dim = embedding.input_dim();
  options.density = 0.5;
  options.plant_orthogonal_pair = true;
  const OvpInstance instance = GenerateOvpInstance(options, &rng);
  const ReductionResult result = SolveOvpViaEmbedding(instance, embedding);
  return result.pair.has_value();
}

void RunSignedRows(TablePrinter* table) {
  for (std::size_t d : {8, 16, 32, 64, 128}) {
    const SignedGapEmbedding embedding(d);
    table->AddRow({"signed {-1,1} (emb.1)", Format(d),
                   Format(embedding.output_dim()), "4", "0",
                   FormatFixed(embedding.c(), 4), "any c > 0",
                   ConfirmOnPlantedInstance(embedding, 100 + d) ? "yes"
                                                                : "NO"});
  }
}

void RunChebyshevRows(TablePrinter* table) {
  struct Case {
    std::size_t d;
    unsigned q;
  };
  for (const auto [d, q] :
       {Case{8, 2}, Case{8, 3}, Case{16, 2}, Case{16, 3}, Case{32, 2}}) {
    const ChebyshevGapEmbedding embedding(d, q);
    const double ratio = LogRatio(embedding.s(), embedding.cs(),
                                  static_cast<double>(embedding.output_dim()));
    table->AddRow(
        {"unsigned {-1,1} (emb.2)",
         Format(d) + ",q=" + Format(q), Format(embedding.output_dim()),
         FormatSci(embedding.s(), 2), FormatSci(embedding.cs(), 2),
         FormatFixed(embedding.c(), 4),
         "ratio=" + FormatFixed(ratio, 4) + " -> 1-o(1/sqrt(log n))",
         ConfirmOnPlantedInstance(embedding, 200 + d + q) ? "yes" : "NO"});
  }
}

void RunBinaryRows(TablePrinter* table) {
  struct Case {
    std::size_t d;
    std::size_t k;
  };
  for (const auto [d, k] : {Case{16, 4}, Case{16, 8}, Case{16, 16},
                            Case{24, 8}, Case{24, 24}, Case{32, 16}}) {
    const BinaryChunkEmbedding embedding(d, k);
    const double ratio = LogRatio(embedding.s(), embedding.cs(),
                                  static_cast<double>(embedding.output_dim()));
    table->AddRow(
        {"unsigned {0,1} (emb.3)", Format(d) + ",k=" + Format(k),
         Format(embedding.output_dim()), Format(embedding.s()),
         Format(embedding.cs()), FormatFixed(embedding.c(), 4),
         "ratio=" + FormatFixed(ratio, 4) + " -> 1-o(1/log n)",
         ConfirmOnPlantedInstance(embedding, 300 + d + k) ? "yes" : "NO"});
  }
}

void Run() {
  std::cout << "=== Experiment T1: Table 1 -- hard approximation ranges "
               "realized by the Lemma 3 gap embeddings ===\n\n";
  TablePrinter table({"problem / embedding", "d (,knob)", "d2'", "s", "cs",
                      "c = cs/s", "hard range (paper)", "OVP pair found"});
  RunSignedRows(&table);
  RunChebyshevRows(&table);
  RunBinaryRows(&table);
  table.PrintMarkdown(std::cout);

  // The permissible side for {0,1}: the bit-sampling LSH achieving
  // rho = log(s/d)/log(cs/d) (Table 1, fourth column for {0,1}).
  std::cout << "\n--- the {0,1} data structure on the permissible side: "
               "bit-sampling LSH ---\n";
  TablePrinter permissible({"d", "s", "cs", "rho = log(s/d)/log(cs/d)",
                            "measured P1", "measured P2"});
  Rng rng(7);
  for (const auto& [d, s_int, cs_int] :
       std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
           {64, 16, 4}, {64, 16, 8}, {128, 32, 8}, {128, 8, 2}}) {
    const BitSampleFamily family(d);
    // Build binary vectors with the exact prescribed inner products.
    std::vector<double> p(d, 0.0);
    std::vector<double> q_near(d, 0.0);
    std::vector<double> q_far(d, 0.0);
    for (std::size_t i = 0; i < d / 2; ++i) p[i] = 1.0;
    for (std::size_t i = 0; i < s_int; ++i) q_near[i] = 1.0;
    for (std::size_t i = 0; i < cs_int; ++i) q_far[i] = 1.0;
    const BernoulliEstimate near =
        EstimateCollisionProbability(family, p, q_near, 20000, &rng);
    const BernoulliEstimate far =
        EstimateCollisionProbability(family, p, q_far, 20000, &rng);
    permissible.AddRow(
        {Format(d), Format(s_int), Format(cs_int),
         FormatFixed(BitSampleFamily::Rho(static_cast<double>(s_int),
                                          static_cast<double>(cs_int), d),
                     4),
         FormatFixed(near.p_hat, 4), FormatFixed(far.p_hat, 4)});
  }
  permissible.PrintMarkdown(std::cout);

  std::cout << "\nHow to read this against Table 1 of the paper:\n"
               "  * emb.1 realizes cs = 0, so signed join over {-1,1} is\n"
               "    hard for EVERY c > 0 (row 1 of Table 1).\n"
               "  * emb.2's c = 1/T_q(1+1/d) decays like e^(-q/sqrt(d)),\n"
               "    giving hardness for c >= e^(-o(sqrt(log n/log log n)))\n"
               "    and log-ratio -> 1 - o(1/sqrt(log n)) (row 2).\n"
               "  * emb.3 realizes c = (k-1)/k = 1 - o(1) with k = omega(1)\n"
               "    and log-ratio -> 1 - o(1/log n) (row 3).\n"
               "  Permissible (non-hard) ranges quoted by Table 1: c < n^-eps\n"
               "  via the Section 4.3 sketch (no FMM), and log-ratio = 1-eps\n"
               "  via Karppa et al. [29] (uses fast matrix multiplication).\n";
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
