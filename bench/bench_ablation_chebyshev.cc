// Ablation A3 -- the Chebyshev gap amplifier's cost curve: how the
// approximation factor c = 1/T_q(1 + 1/d) bought by order q compares to
// the dimension (9d)^q it costs, across d; and a head-to-head of all
// three embeddings at matched input dimension, the constructive content
// of Theorems 1 and 2.

#include <cmath>
#include <iostream>

#include "embed/binary_embedding.h"
#include "embed/chebyshev.h"
#include "embed/chebyshev_embedding.h"
#include "embed/sign_embedding.h"
#include "util/table.h"

namespace ips {
namespace {

void ChebyshevCurve() {
  std::cout << "=== Ablation A3: Chebyshev amplification cost curve ===\n";
  TablePrinter table({"d", "q", "c = 1/T_q(1+1/d)", "e^(-q/sqrt(d)) ref",
                      "output dim", "dim bound (9d)^q"});
  for (std::size_t d : {8u, 16u, 32u}) {
    for (unsigned q : {1u, 2u, 3u, 4u}) {
      if (d >= 32 && q >= 4) continue;  // keep dimensions printable
      const ChebyshevGapEmbedding embedding(d, q);
      table.AddRow(
          {Format(d), Format(q), FormatSci(embedding.c(), 3),
           FormatSci(std::exp(-static_cast<double>(q) /
                              std::sqrt(static_cast<double>(d))),
                     3),
           Format(embedding.output_dim()),
           FormatSci(std::pow(9.0 * static_cast<double>(d), q), 2)});
    }
  }
  table.PrintMarkdown(std::cout);
  std::cout << "\nShape checks: c decays like e^(-q/sqrt(d)) (the rate\n"
               "behind Theorem 1's e^(-o(sqrt(log n / log log n))) hard\n"
               "range) while the dimension multiplies by ~9d per order --\n"
               "the exponential-vs-polynomial trade Lemma 2 exploits by\n"
               "keeping q = o(d / log d).\n";
}

void HeadToHead() {
  std::cout << "\n--- all three embeddings at input dimension d = 16 ---\n";
  TablePrinter table({"embedding", "signed?", "domain", "output dim",
                      "c", "paper's hard range"});
  const SignedGapEmbedding e1(16);
  table.AddRow({e1.Name(), "yes", "{-1,1}", Format(e1.output_dim()),
                Format(e1.c()), "any c > 0"});
  for (unsigned q : {1u, 2u, 3u}) {
    const ChebyshevGapEmbedding e2(16, q);
    table.AddRow({e2.Name() + " q=" + Format(q), "no", "{-1,1}",
                  Format(e2.output_dim()), FormatFixed(e2.c(), 4),
                  "c >= e^(-o(sqrt(log n/log log n)))"});
  }
  for (std::size_t k : {2u, 4u, 8u, 16u}) {
    const BinaryChunkEmbedding e3(16, k);
    table.AddRow({e3.Name() + " k=" + Format(k), "no", "{0,1}",
                  Format(e3.output_dim()), FormatFixed(e3.c(), 4),
                  "c = 1 - o(1)"});
  }
  table.PrintMarkdown(std::cout);
  std::cout << "\nThe {0,1} domain pays very low dimension but can only\n"
               "reach c = 1 - 1/k (the paper conjectures constant-c\n"
               "hardness for {0,1} needs fundamentally new techniques);\n"
               "the {-1,1} Chebyshev route reaches much smaller c at\n"
               "exponentially growing dimension; the signed gadget gets\n"
               "c = 0 outright but only for signed joins.\n";
}

}  // namespace
}  // namespace ips

int main() {
  ips::ChebyshevCurve();
  ips::HeadToHead();
  return 0;
}
