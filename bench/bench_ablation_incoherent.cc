// Ablation A2 -- incoherent-family engineering behind Section 4.2 and
// Theorem 3 case 3: the deterministic Reed-Solomon family vs randomized
// Gaussian vectors vs the trivial orthonormal basis, compared on
// ambient dimension, realized coherence, and construction time; plus
// the dimension the Section 4.2 symmetric transform pays as a function
// of the inner-product error epsilon.

#include <iostream>

#include "codes/incoherent.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "util/table.h"
#include "util/timer.h"

namespace ips {
namespace {

void CompareFamilies() {
  std::cout << "=== Ablation A2: incoherent vector families ===\n";
  TablePrinter table({"family", "vectors", "epsilon", "dimension",
                      "realized coherence", "build ms", "deterministic"});
  Rng rng(11);
  for (const auto& [n, eps] : std::vector<std::pair<std::size_t, double>>{
           {64, 0.5}, {64, 0.2}, {256, 0.2}, {1024, 0.1}}) {
    {
      WallTimer timer;
      const RsIncoherentFamily rs(n, eps);
      // Realized coherence: max agreement over a sample of pairs.
      double coherence = 0.0;
      for (std::size_t i = 0; i < std::min<std::size_t>(n, 32); ++i) {
        for (std::size_t j = i + 1; j < std::min<std::size_t>(n, 32); ++j) {
          coherence = std::max(coherence, rs.Dot(i, j));
        }
      }
      table.AddRow({"reed-solomon", Format(n), Format(eps),
                    Format(rs.dim()), FormatFixed(coherence, 4),
                    FormatFixed(timer.Millis(), 2), "yes"});
    }
    {
      WallTimer timer;
      const RandomIncoherentFamily random(n, eps, &rng);
      table.AddRow({"gaussian (JL)", Format(n), Format(eps),
                    Format(random.dim()),
                    FormatFixed(random.realized_coherence(), 4),
                    FormatFixed(timer.Millis(), 2), "no"});
    }
    table.AddRow({"orthonormal basis", Format(n), "0", Format(n),
                  "0.0000", "0.00", "yes"});
  }
  table.PrintMarkdown(std::cout);
  std::cout << "\nShape checks: Reed-Solomon needs dimension q^2 with\n"
               "q ~ k/eps (quadratic in 1/eps, but *strongly explicit*:\n"
               "vector u is computable from the bit string u alone, the\n"
               "property Section 4.2 requires); the JL family gets\n"
               "dimension O(log(n)/eps^2) but is randomized; the basis is\n"
               "free but its dimension equals the family size, useless\n"
               "when 2^(dk) vectors are needed.\n";
}

void TransformDimension() {
  std::cout << "\n--- Section 4.2 transform: output dimension vs epsilon "
               "---\n";
  TablePrinter table({"epsilon", "fingerprint bits", "lift dimension",
                      "total output dim (d=32)"});
  for (double eps : {0.3, 0.2, 0.1, 0.05}) {
    const SymmetricIncoherentTransform transform(32, eps, 24);
    table.AddRow({Format(eps), "24", Format(transform.family().dim()),
                  Format(transform.output_dim())});
  }
  table.PrintMarkdown(std::cout);
  std::cout << "\nThe additive inner-product error eps is paid for in the\n"
               "lift dimension O(kd/eps^2) -- the paper's trade-off for\n"
               "making the LSH symmetric while keeping Definition 2's\n"
               "guarantees on all distinct pairs.\n";
}

}  // namespace
}  // namespace ips

int main() {
  ips::CompareFamilies();
  ips::TransformDimension();
  return 0;
}
