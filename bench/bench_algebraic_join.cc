// Experiment J2 -- the algebraic route to exact joins: per-pair scan vs
// blocked matrix product vs Strassen on equal workloads, the classical
// backdrop for the fast-matmul upper bounds of Valiant [51] and Karppa
// et al. [29] quoted in Table 1's "permissible" column.

#include <iostream>

#include "core/algebraic_join.h"
#include "core/dataset.h"
#include "core/similarity_join.h"
#include "linalg/matmul.h"
#include "rng/random.h"
#include "util/table.h"
#include "util/timer.h"

namespace ips {
namespace {

void JoinComparison() {
  std::cout << "=== Experiment J2: exact join engines ===\n";
  Rng rng(3);
  JoinSpec spec;
  spec.s = 0.8;
  spec.c = 0.75;
  spec.is_signed = true;
  TablePrinter table(
      {"n (data=queries)", "d", "engine", "ms", "agrees"});
  for (std::size_t n : {256u, 512u, 1024u}) {
    const std::size_t d = 32;
    const Matrix data = MakeUnitBallGaussian(n, d, 0.3, &rng);
    const Matrix queries = MakeUnitBallGaussian(n, d, 0.9, &rng);

    WallTimer timer;
    const JoinResult scan = ExactJoin(data, queries, spec, nullptr);
    const double scan_ms = timer.Millis();
    table.AddRow({Format(n), Format(d), "pairwise scan",
                  FormatFixed(scan_ms, 1), "-"});

    timer.Restart();
    const JoinResult blocked = MatmulJoin(data, queries, spec, false);
    const double blocked_ms = timer.Millis();
    bool agrees = true;
    for (std::size_t qi = 0; qi < n; ++qi) {
      if (scan.per_query[qi].has_value() !=
          blocked.per_query[qi].has_value()) {
        agrees = false;
      }
    }
    table.AddRow({Format(n), Format(d), "blocked matmul",
                  FormatFixed(blocked_ms, 1), agrees ? "yes" : "NO"});

    timer.Restart();
    const JoinResult strassen = MatmulJoin(data, queries, spec, true);
    const double strassen_ms = timer.Millis();
    agrees = true;
    for (std::size_t qi = 0; qi < n; ++qi) {
      if (scan.per_query[qi].has_value() !=
          strassen.per_query[qi].has_value()) {
        agrees = false;
      }
    }
    table.AddRow({Format(n), Format(d), "strassen matmul",
                  FormatFixed(strassen_ms, 1), agrees ? "yes" : "NO"});
  }
  table.PrintMarkdown(std::cout);
}

void StrassenScaling() {
  std::cout << "\n--- Strassen vs blocked on square products (the\n"
               "asymptotic story behind the fast-matmul joins) ---\n";
  Rng rng(7);
  TablePrinter table({"n", "blocked ms", "strassen ms", "ratio"});
  for (std::size_t n : {128u, 256u, 512u}) {
    Matrix a(n, n);
    Matrix b(n, n);
    for (double& v : a.data()) v = rng.NextGaussian();
    for (double& v : b.data()) v = rng.NextGaussian();
    WallTimer timer;
    const Matrix blocked = Multiply(a, b);
    const double blocked_ms = timer.Millis();
    timer.Restart();
    const Matrix strassen = MultiplyStrassen(a, b, 64);
    const double strassen_ms = timer.Millis();
    table.AddRow({Format(n), FormatFixed(blocked_ms, 1),
                  FormatFixed(strassen_ms, 1),
                  FormatFixed(strassen_ms / blocked_ms, 2)});
  }
  table.PrintMarkdown(std::cout);
  std::cout << "\nShape checks: all engines agree on the join output.\n"
               "Strassen saves multiplications (n^2.807) but pays in\n"
               "temporaries and memory traffic, so at these sizes it does\n"
               "not beat the cache-blocked classical kernel -- precisely\n"
               "the paper's remark that fast-matmul approaches 'do not\n"
               "seem to lead to practical algorithms' on realistic input\n"
               "sizes, despite their superior asymptotics.\n";
}

}  // namespace
}  // namespace ips

int main() {
  ips::JoinComparison();
  ips::StrassenScaling();
  return 0;
}
