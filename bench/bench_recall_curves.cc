// Experiment R1 -- recall/work operating curves of the approximate MIPS
// engines on a latent-factor workload (ANN-benchmarks style): recall@1
// versus exact inner products evaluated per query, sweeping each
// engine's main knob. The curve a practitioner actually reads before
// picking an index.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/dataset.h"
#include "core/mips_index.h"
#include "core/norm_range_index.h"
#include "core/top_k.h"
#include "linalg/kernels.h"
#include "lsh/multiprobe.h"
#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "util/table.h"

namespace ips {
namespace {

void Run() {
  std::cout << "=== Experiment R1: recall@1 vs work (latent-factor MIPS) "
               "===\n";
  Rng rng(3);
  const std::size_t kDim = 32;
  const std::size_t kItems = 4000;
  const std::size_t kUsers = 100;
  const Matrix items = MakeLatentFactorVectors(kItems, kDim, 0.35, &rng);
  const Matrix users = MakeUnitBallGaussian(kUsers, kDim, 0.8, &rng);

  std::vector<std::size_t> truth(kUsers);
  for (std::size_t u = 0; u < kUsers; ++u) {
    truth[u] = TopKBruteForce(items, users.Row(u), 1, true)[0].index;
  }

  TablePrinter table({"engine", "knob", "recall@1", "products/query"});

  // Dual-ball + SimHash, sweeping table count L.
  const SimpleMipsTransform transform(kDim, 1.0);
  const SimHashFamily base(transform.output_dim());
  for (std::size_t l : {8u, 16u, 32u, 64u, 128u}) {
    LshTableParams params;
    params.k = 10;
    params.l = l;
    Rng local(7);
    const LshMipsIndex index(items, &transform, base, params, &local);
    std::size_t hits = 0;
    std::size_t products = 0;
    for (std::size_t u = 0; u < kUsers; ++u) {
      const auto candidates = index.Candidates(users.Row(u));
      products += candidates.size();
      const auto top =
          TopKFromCandidates(items, users.Row(u), candidates, 1, true);
      if (!top.empty() && top[0].index == truth[u]) ++hits;
    }
    table.AddRow({"simple-mips+simhash", "L=" + Format(l),
                  FormatFixed(static_cast<double>(hits) / kUsers, 3),
                  FormatFixed(static_cast<double>(products) / kUsers, 1)});
  }

  // Multiprobe (key width 12, 8 tables), sweeping probes.
  {
    const Matrix lifted = transform.TransformDataset(items);
    const Matrix lifted_users = transform.TransformQueries(users);
    for (std::size_t probes : {0u, 8u, 32u, 128u}) {
      MultiprobeParams params;
      params.k = 12;
      params.l = 8;
      params.probes = probes;
      Rng local(11);
      const MultiprobeSimHashTables tables(lifted, params, &local);
      std::size_t hits = 0;
      std::size_t products = 0;
      for (std::size_t u = 0; u < kUsers; ++u) {
        const auto candidates = tables.Query(lifted_users.Row(u));
        products += candidates.size();
        const auto top =
            TopKFromCandidates(items, users.Row(u), candidates, 1, true);
        if (!top.empty() && top[0].index == truth[u]) ++hits;
      }
      table.AddRow({"multiprobe(k=12,l=8)", "T=" + Format(probes),
                    FormatFixed(static_cast<double>(hits) / kUsers, 3),
                    FormatFixed(static_cast<double>(products) / kUsers, 1)});
    }
  }

  // Norm-range (LEMP), sweeping bucket size.
  for (std::size_t bucket : {64u, 128u, 512u}) {
    NormRangeParams params;
    params.bucket_size = bucket;
    Rng local(13);
    const NormRangeIndex index(items, params, &local);
    JoinSpec spec;
    spec.s = 0.0;
    spec.c = 0.999;
    spec.is_signed = true;
    std::size_t hits = 0;
    const std::size_t before = index.InnerProductsEvaluated();
    for (std::size_t u = 0; u < kUsers; ++u) {
      const auto match = index.Search(users.Row(u), spec);
      if (match.has_value() && match->index == truth[u]) ++hits;
    }
    table.AddRow(
        {"norm-range(lemp)", "B=" + Format(bucket),
         FormatFixed(static_cast<double>(hits) / kUsers, 3),
         FormatFixed(static_cast<double>(index.InnerProductsEvaluated() -
                                         before) /
                         kUsers,
                     1)});
  }

  table.PrintMarkdown(std::cout);
  MaybeExportCsv(table, "recall_curves");
  std::cout
      << "\nShape checks: every engine trades recall against verified\n"
         "candidates monotonically along its knob; on norm-skewed data\n"
         "the LEMP-style index reaches exact recall with the least work\n"
         "(its pruning is norm-aware), while the reductions pay for\n"
         "treating all norms through one sphere lift -- the practical\n"
         "context for the paper's asymmetry discussion.\n";
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
