// Serving benchmark: the planner against every fixed single-algorithm
// policy on two mixed-recall-target workloads, throughput/latency of
// the BatchScheduler under concurrent load, and the overhead of the
// observability layer (instrumented QueryBruteForce vs the plain
// TopKBruteForce baseline). Writes BENCH_serve.json, embedding the key
// process-registry counters alongside the workload results.
//
// Per ISSUE.md the headline claim is that the per-request planner beats
// the best fixed algorithm that still meets every recall target --
// fewer exact dot products at equal (or better) recall -- on at least
// one workload. With mixed targets (0.7 / 0.9 / 1.0), a fixed
// approximate policy misses the exact-recall requests while fixed brute
// force overpays for the cheap ones, so the planner wins by routing.

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "core/query.h"
#include "core/top_k.h"
#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "rng/random.h"
#include "serve/batch_scheduler.h"
#include "serve/engine.h"
#include "serve/feedback.h"
#include "serve/query_engine.h"
#include "serve/request.h"
#include "serve/serve_stats.h"
#include "serve/sharded_engine.h"
#include "util/failpoint.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ips {
namespace {

constexpr std::size_t kN = 4000;
constexpr std::size_t kDim = 24;
constexpr std::size_t kQueries = 300;
constexpr std::size_t kK = 5;

struct PolicyResult {
  std::string name;
  double recall_mean = 0.0;
  double targets_met_fraction = 0.0;
  std::size_t dot_products_total = 0;
  std::size_t answered = 0;
  bool meets_all_targets = false;
};

struct WorkloadResult {
  std::string name;
  std::vector<PolicyResult> policies;
  std::vector<std::size_t> planner_selection;  // indexed by QueryAlgo
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct OverheadResult {
  double baseline_ms = 0.0;
  double instrumented_ms = 0.0;
  double ratio = 0.0;
};

// The recall target of request i: a fixed 0.7/0.9/1.0 rotation.
double TargetFor(std::size_t i) {
  switch (i % 3) {
    case 0: return 0.7;
    case 1: return 0.9;
    default: return 1.0;
  }
}

// The request shape of request i: three quarters signed top-5 (the
// workload of PRs 2-7), one quarter unsigned argmax (the recommender
// shape the §4.3 sketch answers natively). Mixing shapes is what lets
// the planner's (sketch, argmax) variant surface — an all-signed
// workload never routes there.
QueryOptions RequestFor(std::size_t i) {
  QueryOptions request;
  request.recall_target = TargetFor(i);
  if (i % 4 == 3) {
    request.k = 1;
    request.is_signed = false;
  } else {
    request.k = kK;
  }
  return request;
}

// Runs every request of the workload through `engine` under one policy
// and scores recall per request against exact ground truth. `forced`
// empty = planner routing; `precision` kAuto = the path's native mode.
PolicyResult ScoreStream(const Engine& engine, const Matrix& data,
                         const Matrix& queries, const std::string& name,
                         std::optional<QueryAlgo> forced,
                         QueryPrecision precision, ServeMetrics* metrics) {
  PolicyResult result;
  result.name = name;
  double recall_sum = 0.0;
  std::size_t targets_met = 0;
  // Per-target-group recall: a recall target is a statistical contract,
  // so a policy satisfies target t when the *mean* recall over the
  // requests that asked for t reaches t.
  std::map<double, std::pair<double, std::size_t>> by_target;
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    QueryOptions request = RequestFor(qi);
    request.force_algorithm = forced;
    request.precision = precision;
    const auto exact = TopKBruteForce(data, queries.Row(qi), request.k,
                                      request.is_signed);
    const auto response = engine.Query({queries.Row(qi), request});
    if (!response.ok()) continue;  // forced path can't answer this request
    ++result.answered;
    result.dot_products_total += response->stats.dot_products;
    if (metrics != nullptr) metrics->Record(response->stats);
    std::size_t hits = 0;
    for (const auto& truth : exact) {
      for (const auto& match : response->matches) {
        if (match.index == truth.index) {
          ++hits;
          break;
        }
      }
    }
    const double recall =
        static_cast<double>(hits) / static_cast<double>(exact.size());
    recall_sum += recall;
    auto& group = by_target[request.recall_target];
    group.first += recall;
    group.second += 1;
    if (recall >= request.recall_target - 1e-12) ++targets_met;
  }
  if (result.answered > 0) {
    result.recall_mean = recall_sum / static_cast<double>(result.answered);
  }
  result.targets_met_fraction =
      static_cast<double>(targets_met) / static_cast<double>(queries.rows());
  // A policy meets the workload's targets when it answered every
  // request and every target group's mean recall reaches its target.
  result.meets_all_targets = result.answered == queries.rows();
  for (const auto& [target, group] : by_target) {
    const double group_mean = group.first / static_cast<double>(group.second);
    if (group_mean < target - 1e-9) result.meets_all_targets = false;
  }
  return result;
}

PolicyResult RunPolicy(const Engine& engine, const Matrix& data,
                       const Matrix& queries, std::optional<QueryAlgo> forced,
                       ServeMetrics* metrics) {
  const std::string name = forced.has_value()
                               ? std::string(QueryAlgoName(*forced))
                               : std::string("planner");
  return ScoreStream(engine, data, queries, name, forced,
                     QueryPrecision::kAuto, metrics);
}

// Pushes the workload through the BatchScheduler concurrently and
// measures throughput and end-to-end latency percentiles.
void RunConcurrent(const Engine& engine, const Matrix& queries,
                   WorkloadResult* out) {
  BatchScheduler scheduler(&engine);
  std::vector<std::future<BatchScheduler::Result>> futures;
  futures.reserve(queries.rows());
  WallTimer timer;
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    const QueryOptions request = RequestFor(qi);
    RequestContext context;
    context.deadline_seconds = 30.0;
    const auto row = queries.Row(qi);
    futures.push_back(scheduler.Submit(
        {std::vector<double>(row.begin(), row.end()), request, context}));
  }
  std::vector<double> latencies_ms;
  std::size_t ok_count = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    if (!result.ok()) continue;
    ++ok_count;
    latencies_ms.push_back(result->stats.TotalSeconds() * 1e3);
  }
  const double elapsed = timer.Seconds();
  scheduler.Drain();
  out->qps = elapsed > 0.0 ? static_cast<double>(ok_count) / elapsed : 0.0;
  const Summary summary = Summarize(std::move(latencies_ms));
  out->p50_ms = summary.p50;
  out->p99_ms = summary.p99;
}

WorkloadResult RunWorkload(const std::string& name, const Matrix& data,
                           Rng* rng) {
  std::cout << "=== workload: " << name << " ===\n";
  EngineOptions options;
  options.seed = 31;
  // kappa trades the sketch descent's approximation for cost
  // (n^(1 - 2/kappa) sketch rows per query): at the default 4.0 the
  // descent prices above the quantized brute scan and can never win.
  // 3.0 is the serving-tuned point — calibration still measures its
  // real recall, so the planner only routes to it where that recall
  // clears the request's target.
  options.sketch_params.kappa = 3.0;
  auto engine = Engine::Create(data, options);
  if (!engine.ok()) {
    std::cerr << "engine: " << engine.status().ToString() << "\n";
    std::exit(1);
  }
  // Build all indexes up front so policies compare serving cost only.
  for (QueryAlgo algo :
       {QueryAlgo::kBallTree, QueryAlgo::kLsh, QueryAlgo::kSketch}) {
    const Status built = (*engine)->EnsureIndex(algo);
    if (!built.ok()) {
      std::cerr << "build: " << built.ToString() << "\n";
      std::exit(1);
    }
  }

  Matrix queries(kQueries, kDim);
  for (std::size_t qi = 0; qi < kQueries; ++qi) {
    for (std::size_t j = 0; j < kDim; ++j) {
      queries.At(qi, j) = rng->NextGaussian();
    }
  }

  WorkloadResult result;
  result.name = name;
  ServeMetrics planner_metrics;
  result.policies.push_back(
      RunPolicy(**engine, data, queries, std::nullopt, &planner_metrics));
  for (QueryAlgo algo : {QueryAlgo::kBruteForce, QueryAlgo::kBallTree,
                         QueryAlgo::kLsh, QueryAlgo::kSketch}) {
    result.policies.push_back(
        RunPolicy(**engine, data, queries, algo, nullptr));
  }
  result.planner_selection.resize(kNumQueryAlgos);
  for (std::size_t a = 0; a < kNumQueryAlgos; ++a) {
    result.planner_selection[a] =
        planner_metrics.SelectionCount(static_cast<QueryAlgo>(a));
  }
  RunConcurrent(**engine, queries, &result);

  TablePrinter table({"policy", "recall", "targets met", "dot products",
                      "meets all"});
  for (const auto& policy : result.policies) {
    table.AddRow({policy.name, FormatFixed(policy.recall_mean, 3),
                  FormatFixed(policy.targets_met_fraction, 3),
                  Format(policy.dot_products_total),
                  policy.meets_all_targets ? "yes" : "no"});
  }
  table.PrintMarkdown(std::cout);
  std::cout << "concurrent: qps=" << FormatFixed(result.qps, 1)
            << " p50=" << FormatFixed(result.p50_ms, 3) << "ms"
            << " p99=" << FormatFixed(result.p99_ms, 3) << "ms\n\n";
  return result;
}

// ---------------------------------------------------------------------
// Batched execution A/B (PR 5): Engine::BatchQuery against the
// coalesced-but-sequential path (one Engine::Query per member, the PR 2
// scheduler behavior), plus the scheduler-level toggle for context.
// ---------------------------------------------------------------------

struct BatchedResult {
  std::size_t n = 0;
  std::size_t dim = 0;
  std::size_t queries = 0;
  double sequential_ms = 0.0;
  double batched_ms = 0.0;
  double speedup = 0.0;
  bool results_agree = false;
  double scheduler_sequential_qps = 0.0;
  double scheduler_batched_qps = 0.0;
};

// QPS of the full scheduler path with batch execution on or off.
double SchedulerQps(const Engine& engine, const Matrix& queries,
                    const QueryOptions& request, bool use_batch) {
  BatchSchedulerOptions options;
  options.use_batch_execution = use_batch;
  BatchScheduler scheduler(&engine, options);
  std::vector<std::future<BatchScheduler::Result>> futures;
  futures.reserve(queries.rows());
  WallTimer timer;
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto row = queries.Row(qi);
    futures.push_back(scheduler.Submit(
        {std::vector<double>(row.begin(), row.end()), request}));
  }
  std::size_t ok_count = 0;
  for (auto& future : futures) {
    if (future.get().ok()) ++ok_count;
  }
  const double elapsed = timer.Seconds();
  scheduler.Drain();
  return elapsed > 0.0 ? static_cast<double>(ok_count) / elapsed : 0.0;
}

BatchedResult RunBatchedSection(Rng* rng) {
  BatchedResult result;
  result.n = 4096;
  result.dim = 64;
  result.queries = 256;
  std::cout << "=== batched execution (n=" << result.n << ", dim="
            << result.dim << ", " << result.queries << " queries) ===\n";
  const Matrix data =
      MakeUnitBallGaussian(result.n, result.dim, /*min_norm=*/0.3, rng);
  auto engine = Engine::Create(data);
  if (!engine.ok()) {
    std::cerr << "engine: " << engine.status().ToString() << "\n";
    std::exit(1);
  }
  const Status built = (*engine)->EnsureIndex(QueryAlgo::kBruteForce);
  if (!built.ok()) {
    std::cerr << "build: " << built.ToString() << "\n";
    std::exit(1);
  }
  Matrix queries(result.queries, result.dim);
  for (std::size_t qi = 0; qi < result.queries; ++qi) {
    for (std::size_t j = 0; j < result.dim; ++j) {
      queries.At(qi, j) = rng->NextGaussian();
    }
  }
  QueryOptions request;
  request.k = kK;
  // Force brute so both paths answer with identical exact recall and
  // the A/B measures execution alone, not planner routing.
  request.force_algorithm = QueryAlgo::kBruteForce;

  // Warm both paths (index pinned, metric cells, caches).
  if (!(*engine)->Query({queries.Row(0), request}).ok() ||
      !(*engine)->BatchQuery(queries, request, {}).ok()) {
    std::cerr << "warmup query failed\n";
    std::exit(1);
  }

  WallTimer timer;
  std::vector<QueryResult> sequential;
  sequential.reserve(result.queries);
  for (std::size_t qi = 0; qi < result.queries; ++qi) {
    auto response = (*engine)->Query({queries.Row(qi), request});
    if (!response.ok()) {
      std::cerr << "query: " << response.status().ToString() << "\n";
      std::exit(1);
    }
    sequential.push_back(*std::move(response));
  }
  result.sequential_ms = timer.Millis();

  timer.Restart();
  auto batched = (*engine)->BatchQuery(queries, request, {});
  result.batched_ms = timer.Millis();
  if (!batched.ok()) {
    std::cerr << "batch query: " << batched.status().ToString() << "\n";
    std::exit(1);
  }
  result.speedup = result.batched_ms > 0.0
                       ? result.sequential_ms / result.batched_ms
                       : 0.0;
  result.results_agree = batched->size() == sequential.size();
  for (std::size_t qi = 0; result.results_agree && qi < sequential.size();
       ++qi) {
    const auto& a = sequential[qi].matches;
    const auto& b = (*batched)[qi].matches;
    result.results_agree = a.size() == b.size();
    for (std::size_t j = 0; result.results_agree && j < a.size(); ++j) {
      result.results_agree = a[j].index == b[j].index;
    }
  }

  result.scheduler_sequential_qps =
      SchedulerQps(**engine, queries, request, /*use_batch=*/false);
  result.scheduler_batched_qps =
      SchedulerQps(**engine, queries, request, /*use_batch=*/true);

  std::cout << "engine: sequential " << FormatFixed(result.sequential_ms, 1)
            << "ms, batched " << FormatFixed(result.batched_ms, 1)
            << "ms, speedup " << FormatFixed(result.speedup, 2)
            << "x, results " << (result.results_agree ? "agree" : "DISAGREE")
            << "\nscheduler: sequential "
            << FormatFixed(result.scheduler_sequential_qps, 1)
            << " qps, batched "
            << FormatFixed(result.scheduler_batched_qps, 1) << " qps\n\n";
  return result;
}

// ---------------------------------------------------------------------
// Sharded scatter-gather (PR 6): ShardedEngine at S=1 and S=4 against
// the single-Engine baseline on a forced-brute workload, plus the
// straggler-hedging A/B under an injected slow shard.
// ---------------------------------------------------------------------

struct ShardedResult {
  std::size_t n = 0;
  std::size_t dim = 0;
  std::size_t queries = 0;
  double baseline_qps = 0.0;
  double s1_qps = 0.0;
  double s4_qps = 0.0;
  double speedup_s4 = 0.0;
  bool results_agree = false;
  std::size_t hardware_threads = 0;
  // "parallel" (>= 4 hardware threads: the fan-out must actually win)
  // or "overhead" (serialized machine: the fan-out can only be judged
  // on its coordination cost).
  std::string gate_mode;
  double gate_threshold = 0.0;
  bool gate_pass = false;
};

struct HedgeResult {
  std::size_t queries = 0;
  double p99_unhedged_ms = 0.0;
  double p99_hedged_ms = 0.0;
  double ratio = 0.0;
  std::size_t hedged_count = 0;
  std::size_t partial_count = 0;
};

// Sequential-loop qps of any QueryEngine, collecting the match indices
// of every answer so callers can cross-check determinism.
double SequentialQps(const QueryEngine& engine, const Matrix& queries,
                     const QueryOptions& request,
                     std::vector<std::vector<std::size_t>>* indices) {
  if (indices != nullptr) indices->clear();
  WallTimer timer;
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto response = engine.Query({queries.Row(qi), request});
    if (!response.ok()) {
      std::cerr << "sharded bench query: " << response.status().ToString()
                << "\n";
      std::exit(1);
    }
    if (indices != nullptr) {
      std::vector<std::size_t> row;
      row.reserve(response->matches.size());
      for (const auto& match : response->matches) row.push_back(match.index);
      indices->push_back(std::move(row));
    }
  }
  const double elapsed = timer.Seconds();
  return elapsed > 0.0 ? static_cast<double>(queries.rows()) / elapsed : 0.0;
}

ShardedResult RunShardedSection(Rng* rng) {
  ShardedResult result;
  result.n = 8192;
  result.dim = 48;
  result.queries = 128;
  result.hardware_threads = ThreadPool::DefaultThreadCount();
  std::cout << "=== sharded scatter-gather (n=" << result.n << ", dim="
            << result.dim << ", " << result.queries << " queries, "
            << result.hardware_threads << " hw threads) ===\n";
  const Matrix data =
      MakeUnitBallGaussian(result.n, result.dim, /*min_norm=*/0.3, rng);
  Matrix queries(result.queries, result.dim);
  for (std::size_t qi = 0; qi < result.queries; ++qi) {
    for (std::size_t j = 0; j < result.dim; ++j) {
      queries.At(qi, j) = rng->NextGaussian();
    }
  }
  QueryOptions request;
  request.k = kK;
  // Forced brute: every policy answers exactly, so the comparison
  // isolates fan-out/merge cost from planner routing.
  request.force_algorithm = QueryAlgo::kBruteForce;

  auto baseline = Engine::Create(data);
  ShardedEngineOptions one_shard;
  one_shard.num_shards = 1;
  auto s1 = ShardedEngine::Create(data, one_shard);
  ShardedEngineOptions four_shards;
  four_shards.num_shards = 4;
  auto s4 = ShardedEngine::Create(data, four_shards);
  if (!baseline.ok() || !s1.ok() || !s4.ok()) {
    std::cerr << "sharded bench engine build failed\n";
    std::exit(1);
  }
  for (const Status& built : {(*baseline)->EnsureIndex(QueryAlgo::kBruteForce),
                              (*s1)->EnsureIndex(QueryAlgo::kBruteForce),
                              (*s4)->EnsureIndex(QueryAlgo::kBruteForce)}) {
    if (!built.ok()) {
      std::cerr << "sharded bench build: " << built.ToString() << "\n";
      std::exit(1);
    }
  }

  // Warm every path once (pool threads, metric cells).
  std::vector<std::vector<std::size_t>> baseline_indices;
  std::vector<std::vector<std::size_t>> sharded_indices;
  (void)SequentialQps(**baseline, queries, request, nullptr);
  (void)SequentialQps(**s4, queries, request, nullptr);

  result.baseline_qps =
      SequentialQps(**baseline, queries, request, &baseline_indices);
  result.s1_qps = SequentialQps(**s1, queries, request, nullptr);
  result.s4_qps = SequentialQps(**s4, queries, request, &sharded_indices);
  result.speedup_s4 =
      result.baseline_qps > 0.0 ? result.s4_qps / result.baseline_qps : 0.0;
  result.results_agree = baseline_indices == sharded_indices;

  // The >= 3x scatter-gather speedup is a statement about parallel
  // hardware; on a serialized machine the honest gate is that the
  // coordination layer (pool hop, budgets, breaker, merge) keeps the
  // sharded path within 2x of the baseline's cost.
  if (result.hardware_threads >= 4) {
    result.gate_mode = "parallel";
    result.gate_threshold = 3.0;
    result.gate_pass =
        result.s4_qps >= result.gate_threshold * result.baseline_qps;
  } else {
    result.gate_mode = "overhead";
    result.gate_threshold = 0.5;
    result.gate_pass =
        result.s4_qps >= result.gate_threshold * result.baseline_qps;
  }

  std::cout << "baseline " << FormatFixed(result.baseline_qps, 1)
            << " qps, S=1 " << FormatFixed(result.s1_qps, 1) << " qps, S=4 "
            << FormatFixed(result.s4_qps, 1) << " qps (speedup "
            << FormatFixed(result.speedup_s4, 2) << "x), results "
            << (result.results_agree ? "agree" : "DISAGREE") << ", gate "
            << result.gate_mode << " "
            << (result.gate_pass ? "pass" : "FAIL") << "\n\n";
  return result;
}

// One timed pass of the hedging A/B: shard 0's primary path stalls
// chaos_slow_seconds on every call; with hedging enabled the latency
// tracker predicts the budget miss after the warmup and detours through
// the forced-brute fallback.
HedgeResult RunHedgeSection(Rng* rng) {
  HedgeResult result;
  constexpr std::size_t kHedgeN = 2048;
  constexpr std::size_t kHedgeDim = 32;
  constexpr std::size_t kWarmup = 32;
  result.queries = 300;
  std::cout << "=== hedged requests (n=" << kHedgeN << ", dim=" << kHedgeDim
            << ", " << result.queries << " queries, slow shard 0) ===\n";
  const Matrix data =
      MakeUnitBallGaussian(kHedgeN, kHedgeDim, /*min_norm=*/0.3, rng);
  Matrix queries(result.queries, kHedgeDim);
  for (std::size_t qi = 0; qi < result.queries; ++qi) {
    for (std::size_t j = 0; j < kHedgeDim; ++j) {
      queries.At(qi, j) = rng->NextGaussian();
    }
  }
  QueryOptions request;
  request.k = kK;
  // Exact recall routes the planner to brute force without forcing the
  // algorithm (a forced path disables hedging by design).
  request.recall_target = 1.0;
  RequestContext context;
  context.deadline_seconds = 0.01;

  const auto run = [&](bool hedging, std::size_t* hedged,
                       std::size_t* partial) {
    ShardedEngineOptions options;
    options.num_shards = 4;
    options.hedge.enabled = hedging;
    options.hedge.min_samples = 4;
    options.hedge.chaos_slow_seconds = 0.02;
    // The stall makes shard 0 slow, not broken: keep the breaker out of
    // the measurement so the A/B isolates hedging.
    options.breaker.failure_threshold = 1000000;
    auto engine = ShardedEngine::Create(data, options);
    if (!engine.ok() || !(*engine)->EnsureIndex(QueryAlgo::kBruteForce).ok()) {
      std::cerr << "hedge bench engine build failed\n";
      std::exit(1);
    }
    Failpoints::Arm("serve/shard/slow/0", Status::Internal("straggler"),
                    FireEvery{1});
    for (std::size_t qi = 0; qi < kWarmup; ++qi) {
      const auto response =
          (*engine)->Query({queries.Row(qi % queries.rows()), request, context});
      if (!response.ok()) {
        std::cerr << "hedge warmup: " << response.status().ToString() << "\n";
        std::exit(1);
      }
    }
    std::vector<double> latencies_ms;
    latencies_ms.reserve(result.queries);
    for (std::size_t qi = 0; qi < result.queries; ++qi) {
      WallTimer timer;
      const auto response = (*engine)->Query({queries.Row(qi), request, context});
      latencies_ms.push_back(timer.Millis());
      if (!response.ok()) {
        std::cerr << "hedge query: " << response.status().ToString() << "\n";
        std::exit(1);
      }
      if (hedged != nullptr) *hedged += response->stats.shards_hedged;
      if (partial != nullptr && response->partial) ++*partial;
    }
    Failpoints::Disarm("serve/shard/slow/0");
    return Summarize(std::move(latencies_ms)).p99;
  };

  result.p99_unhedged_ms = run(false, nullptr, nullptr);
  result.p99_hedged_ms =
      run(true, &result.hedged_count, &result.partial_count);
  result.ratio = result.p99_hedged_ms > 0.0
                     ? result.p99_unhedged_ms / result.p99_hedged_ms
                     : 0.0;

  std::cout << "p99 unhedged " << FormatFixed(result.p99_unhedged_ms, 2)
            << "ms, hedged " << FormatFixed(result.p99_hedged_ms, 2)
            << "ms, ratio " << FormatFixed(result.ratio, 2) << "x, "
            << result.hedged_count << " hedged calls, "
            << result.partial_count << " partial answers\n\n";
  return result;
}

// ---------------------------------------------------------------------
// QoS section (PR 10). Two claims, both gated:
//   (a) The adaptive feedback planner beats every fixed (algo,
//       precision) policy on a stream whose character shifts mid-run:
//       the first half queries the corpus's own distribution (exactly
//       what warmup calibration probed), the second half switches to
//       Gaussian queries where the calibrated recall curves are wrong.
//       Static calibration cannot see the shift; the shadow audits can.
//   (b) Per-tenant token buckets + priority lanes hold a victim
//       tenant's p99 under a 10x overload from an aggressor tenant.
// ---------------------------------------------------------------------

constexpr std::size_t kQosQueries = 320;
constexpr std::size_t kQosShift = 160;

// The shifting corpus. Rows [0, kQosTiesStart): latent-factor rows
// confined to the first 16 dims -- the "catalog" every in-distribution
// query ranks against, where top-k margins dwarf int8 quantization
// error. Rows [kQosTiesStart, kN): high-norm near-tie rows living in
// the last 8 dims -- 4 directions x 64 rows each, perturbed by kQosEta
// (below int8 resolution), so their relative order is invisible to the
// quantized scorer. In-distribution queries (corpus rows, zero in the
// last 8 dims) never score a near-tie row above the catalog, so warmup
// calibration and the pre-shift half see quantized re-rank behaving;
// post-shift Gaussian queries have energy in the last 8 dims, rank the
// near-tie rows on top, and quantized survivor selection starts
// dropping true top-k members. That is the shift the feedback loop
// exists for: no warmup calibration can price it, only live audits.
constexpr std::size_t kQosTiesStart = 3744;  // 117 full quantizer blocks
constexpr std::size_t kQosTieDirs = 4;
constexpr double kQosTieNorm = 8.0;
constexpr double kQosEta = 5e-4;

Matrix MakeQosCorpus(Rng* rng) {
  Matrix data(kN, kDim);
  for (std::size_t i = 0; i < kQosTiesStart; ++i) {
    const auto row = data.Row(i);
    for (std::size_t j = 0; j < 16; ++j) row[j] = rng->NextGaussian();
    kernels::NormalizeInPlace(row);
    kernels::ScaleInPlace(row, std::pow(static_cast<double>(i + 1), -1.0));
  }
  double dirs[kQosTieDirs][8];
  for (auto& dir : dirs) {
    double norm_sq = 0.0;
    for (double& v : dir) {
      v = rng->NextGaussian();
      norm_sq += v * v;
    }
    for (double& v : dir) v /= std::sqrt(norm_sq);
  }
  for (std::size_t i = kQosTiesStart; i < kN; ++i) {
    const auto row = data.Row(i);
    const auto& dir = dirs[(i - kQosTiesStart) % kQosTieDirs];
    double norm_sq = 0.0;
    for (std::size_t j = 0; j < 8; ++j) {
      row[16 + j] = dir[j] + kQosEta * rng->NextGaussian();
      norm_sq += row[16 + j] * row[16 + j];
    }
    const double scale = kQosTieNorm / std::sqrt(norm_sq);
    for (std::size_t j = 0; j < 8; ++j) row[16 + j] *= scale;
  }
  return data;
}

struct QosOverloadResult {
  std::size_t victim_submitted = 0;
  std::size_t victim_completed = 0;
  std::size_t victim_shed = 0;
  double victim_p99_ms = 0.0;
  double victim_bound_ms = 0.0;
  std::size_t aggressor_submitted = 0;
  std::size_t aggressor_completed = 0;
  std::size_t aggressor_shed = 0;
  bool partition_ok = false;
  bool pass = false;
};

struct QosSectionResult {
  std::vector<PolicyResult> policies;  // [0]=adaptive, [1]=static planner
  std::size_t feedback_audits = 0;
  std::size_t feedback_evictions = 0;
  std::size_t feedback_hedged = 0;
  bool adaptive_wins = false;
  QosOverloadResult overload;
};

// 10x overload: every victim (interactive) submission rides alongside
// ten aggressor (batch) submissions; the aggressor's token bucket and
// the weighted lanes must keep the victim whole.
QosOverloadResult RunQosOverload(const Engine& engine,
                                 const Matrix& queries) {
  QosOverloadResult result;
  constexpr std::size_t kVictims = 60;
  constexpr std::size_t kOverloadFactor = 10;
  result.victim_bound_ms = 250.0;

  BatchSchedulerOptions options;
  options.max_queue = 4096;
  TenantQuota aggressor_quota;
  aggressor_quota.tokens_per_second = 25.0;
  aggressor_quota.burst = 50.0;
  options.qos.tenant_quotas["reports"] = aggressor_quota;
  BatchScheduler scheduler(&engine, options);

  QueryOptions request;
  request.k = kK;
  request.recall_target = 0.9;
  std::vector<std::future<BatchScheduler::Result>> futures;
  futures.reserve(kVictims * (kOverloadFactor + 1));
  for (std::size_t i = 0; i < kVictims; ++i) {
    for (std::size_t a = 0; a < kOverloadFactor; ++a) {
      RequestContext aggressor;
      aggressor.tenant_id = "reports";
      aggressor.priority = RequestPriority::kBatch;
      const auto row = queries.Row((i * kOverloadFactor + a) % queries.rows());
      futures.push_back(scheduler.Submit(
          {std::vector<double>(row.begin(), row.end()), request, aggressor}));
    }
    RequestContext victim;
    victim.tenant_id = "search";
    victim.priority = RequestPriority::kInteractive;
    const auto row = queries.Row(i % queries.rows());
    futures.push_back(scheduler.Submit(
        {std::vector<double>(row.begin(), row.end()), request, victim}));
  }
  for (auto& future : futures) (void)future.get();
  scheduler.Drain();

  const TenantCounters victim = scheduler.tenant_counters("search");
  const TenantCounters aggressor = scheduler.tenant_counters("reports");
  result.victim_submitted = victim.submitted;
  result.victim_completed = victim.completed;
  result.victim_shed = victim.shed;
  result.victim_p99_ms = victim.p99_seconds * 1e3;
  result.aggressor_submitted = aggressor.submitted;
  result.aggressor_completed = aggressor.completed;
  result.aggressor_shed = aggressor.shed;
  result.partition_ok =
      victim.submitted == victim.completed + victim.shed + victim.expired &&
      aggressor.submitted ==
          aggressor.completed + aggressor.shed + aggressor.expired;
  result.pass = victim.shed == 0 && victim.expired == 0 &&
                victim.completed == kVictims &&
                result.victim_p99_ms <= result.victim_bound_ms &&
                aggressor.shed > 0 && result.partition_ok;
  return result;
}

QosSectionResult RunQosSection(Rng* rng) {
  QosSectionResult result;
  std::cout << "=== qos: adaptive planner + tenant isolation (n=" << kN
            << ", dim=" << kDim << ", " << kQosQueries
            << " queries, shift at " << kQosShift << ") ===\n";
  const Matrix data = MakeQosCorpus(rng);

  const auto make_engine = [&](bool feedback_enabled) {
    EngineOptions options;
    options.seed = 31;
    options.sketch_params.kappa = 3.0;
    // More warmup probes than the default 16: the corpus's near-tie
    // rows are a 6% minority, and the calibration must sample a few of
    // them so quantized re-rank starts with an honest (sub-1.0) recall
    // estimate instead of a lucky perfect score.
    options.probe_queries = 64;
    options.feedback.enabled = feedback_enabled;
    // Serving-tuned audit cadence: every 2nd planner-routed can-miss
    // answer is shadow-audited, so the loop adapts within a few
    // requests of the shift. The audit scans are billed to the
    // adaptive policy's dot products below -- the win is net of them.
    options.feedback.audit_every = 2;
    auto engine = Engine::Create(data, options);
    if (!engine.ok()) {
      std::cerr << "qos engine: " << engine.status().ToString() << "\n";
      std::exit(1);
    }
    for (QueryAlgo algo :
         {QueryAlgo::kBallTree, QueryAlgo::kLsh, QueryAlgo::kSketch}) {
      const Status built = (*engine)->EnsureIndex(algo);
      if (!built.ok()) {
        std::cerr << "qos build: " << built.ToString() << "\n";
        std::exit(1);
      }
    }
    return std::move(engine).value();
  };
  const auto adaptive_engine = make_engine(/*feedback_enabled=*/true);
  const auto static_engine = make_engine(/*feedback_enabled=*/false);

  // The shifting stream: first half in-distribution (catalog rows --
  // the same distribution Calibrate probed, where the approximate
  // paths really deliver their calibrated recall), second half
  // Gaussian (which ranks the near-tie rows on top, where they do
  // not).
  Matrix queries(kQosQueries, kDim);
  for (std::size_t qi = 0; qi < kQosQueries; ++qi) {
    if (qi < kQosShift) {
      const auto row =
          data.Row(static_cast<std::size_t>(rng->NextBounded(kQosTiesStart)));
      std::copy(row.begin(), row.end(), queries.Row(qi).begin());
    } else {
      for (std::size_t j = 0; j < kDim; ++j) {
        queries.At(qi, j) = rng->NextGaussian();
      }
    }
  }

  result.policies.push_back(ScoreStream(*adaptive_engine, data, queries,
                                        "adaptive", std::nullopt,
                                        QueryPrecision::kAuto, nullptr));
  result.policies.push_back(ScoreStream(*static_engine, data, queries,
                                        "static", std::nullopt,
                                        QueryPrecision::kAuto, nullptr));
  const FeedbackCounters feedback = adaptive_engine->feedback().counters();
  result.feedback_audits = feedback.audits;
  result.feedback_evictions = feedback.evictions;
  result.feedback_hedged = feedback.hedged;

  // Every fixed (algo, precision) policy. Combinations an index
  // rejects (tree on unsigned requests, sketch-filter off the sketch
  // index, ...) answer fewer requests and are disqualified by the
  // answered == submitted requirement, which is the honest outcome
  // for a fixed policy that cannot serve the whole stream.
  const std::pair<QueryAlgo, QueryPrecision> kFixed[] = {
      {QueryAlgo::kBruteForce, QueryPrecision::kExact},
      {QueryAlgo::kBruteForce, QueryPrecision::kQuantizedRerank},
      {QueryAlgo::kBallTree, QueryPrecision::kExact},
      {QueryAlgo::kLsh, QueryPrecision::kExact},
      {QueryAlgo::kLsh, QueryPrecision::kQuantizedRerank},
      {QueryAlgo::kSketch, QueryPrecision::kExact},
      {QueryAlgo::kSketch, QueryPrecision::kSketchFilter},
  };
  for (const auto& [algo, precision] : kFixed) {
    const std::string name = std::string(QueryAlgoName(algo)) + "/" +
                             std::string(QueryPrecisionName(precision));
    result.policies.push_back(ScoreStream(*static_engine, data, queries, name,
                                          algo, precision, nullptr));
  }

  // Gate (a): the adaptive planner meets every target group across the
  // shift and spends fewer exact dots (audit scans included) than every
  // fixed policy that also meets them. brute/exact always qualifies, so
  // the comparison set is never empty. The static planner is reported
  // for the narrative but is not a fixed policy.
  const PolicyResult& adaptive = result.policies.front();
  result.adaptive_wins = adaptive.meets_all_targets;
  for (std::size_t p = 2; p < result.policies.size(); ++p) {
    if (result.policies[p].meets_all_targets &&
        result.policies[p].dot_products_total <= adaptive.dot_products_total) {
      result.adaptive_wins = false;
    }
  }

  TablePrinter table({"policy", "recall", "targets met", "dot products",
                      "meets all"});
  for (const auto& policy : result.policies) {
    table.AddRow({policy.name, FormatFixed(policy.recall_mean, 3),
                  FormatFixed(policy.targets_met_fraction, 3),
                  Format(policy.dot_products_total),
                  policy.meets_all_targets ? "yes" : "no"});
  }
  table.PrintMarkdown(std::cout);
  std::cout << "feedback: " << result.feedback_audits << " audits, "
            << result.feedback_evictions << " evictions, "
            << result.feedback_hedged << " hedged\n";

  result.overload = RunQosOverload(*adaptive_engine, queries);
  std::cout << "overload: victim " << result.overload.victim_completed << "/"
            << result.overload.victim_submitted << " completed, "
            << result.overload.victim_shed << " shed, p99 "
            << FormatFixed(result.overload.victim_p99_ms, 3) << "ms (bound "
            << FormatFixed(result.overload.victim_bound_ms, 0)
            << "ms); aggressor " << result.overload.aggressor_shed << "/"
            << result.overload.aggressor_submitted << " shed\n\n";
  return result;
}

// Acceptance gate for the observability layer: the instrumented
// brute-force query path (registry counters + stats, no trace) must
// stay within a few percent of the plain uninstrumented scan.
OverheadResult MeasureObsOverhead(const Matrix& data,
                                  const Matrix& queries) {
  constexpr int kReps = 8;
  QueryOptions options;
  options.k = kK;
  double sink = 0.0;
  // Warm both paths once: caches, thread-local metric cells.
  sink += TopKBruteForce(data, queries.Row(0), kK, true).front().value;
  sink += QueryBruteForce(data, queries.Row(0), options).front().value;

  OverheadResult result;
  {
    WallTimer timer;
    for (int rep = 0; rep < kReps; ++rep) {
      for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
        sink += TopKBruteForce(data, queries.Row(qi), kK, true)
                    .front()
                    .value;
      }
    }
    result.baseline_ms = timer.Millis();
  }
  {
    WallTimer timer;
    for (int rep = 0; rep < kReps; ++rep) {
      for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
        QueryStats stats;
        sink += QueryBruteForce(data, queries.Row(qi), options, &stats)
                    .front()
                    .value;
      }
    }
    result.instrumented_ms = timer.Millis();
  }
  if (sink == std::numeric_limits<double>::infinity()) std::abort();
  result.ratio = result.baseline_ms > 0.0
                     ? result.instrumented_ms / result.baseline_ms
                     : 1.0;
  return result;
}

void WriteJson(const std::vector<WorkloadResult>& workloads,
               const BatchedResult& batched, const ShardedResult& sharded,
               const HedgeResult& hedge, const QosSectionResult& qos,
               const OverheadResult& overhead, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"serve\",\n  \"n\": " << kN
      << ",\n  \"dim\": " << kDim << ",\n  \"queries\": " << kQueries
      << ",\n  \"k\": " << kK << ",\n  \"workloads\": [\n";
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const WorkloadResult& wl = workloads[w];
    out << "    {\n      \"name\": \"" << wl.name << "\",\n"
        << "      \"qps\": " << wl.qps << ",\n"
        << "      \"p50_ms\": " << wl.p50_ms << ",\n"
        << "      \"p99_ms\": " << wl.p99_ms << ",\n"
        << "      \"planner_selection\": {";
    for (std::size_t a = 0; a < kNumQueryAlgos; ++a) {
      out << (a == 0 ? "" : ", ") << "\""
          << QueryAlgoName(static_cast<QueryAlgo>(a))
          << "\": " << wl.planner_selection[a];
    }
    out << "},\n      \"policies\": [\n";
    for (std::size_t p = 0; p < wl.policies.size(); ++p) {
      const PolicyResult& policy = wl.policies[p];
      out << "        {\"name\": \"" << policy.name
          << "\", \"recall_mean\": " << policy.recall_mean
          << ", \"targets_met_fraction\": " << policy.targets_met_fraction
          << ", \"dot_products_total\": " << policy.dot_products_total
          << ", \"answered\": " << policy.answered
          << ", \"meets_all_targets\": "
          << (policy.meets_all_targets ? "true" : "false") << "}"
          << (p + 1 < wl.policies.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (w + 1 < workloads.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"batched\": {\"n\": " << batched.n
      << ", \"dim\": " << batched.dim << ", \"queries\": " << batched.queries
      << ", \"sequential_ms\": " << batched.sequential_ms
      << ", \"batched_ms\": " << batched.batched_ms
      << ", \"speedup\": " << batched.speedup
      << ", \"results_agree\": " << (batched.results_agree ? "true" : "false")
      << ", \"scheduler_sequential_qps\": " << batched.scheduler_sequential_qps
      << ", \"scheduler_batched_qps\": " << batched.scheduler_batched_qps
      << "},\n  \"sharded\": {\"n\": " << sharded.n
      << ", \"dim\": " << sharded.dim << ", \"queries\": " << sharded.queries
      << ", \"baseline_qps\": " << sharded.baseline_qps
      << ", \"s1_qps\": " << sharded.s1_qps
      << ", \"s4_qps\": " << sharded.s4_qps
      << ", \"speedup_s4\": " << sharded.speedup_s4
      << ", \"results_agree\": " << (sharded.results_agree ? "true" : "false")
      << ", \"hardware_threads\": " << sharded.hardware_threads
      << ", \"gate_mode\": \"" << sharded.gate_mode << "\""
      << ", \"gate_threshold\": " << sharded.gate_threshold
      << ", \"gate_pass\": " << (sharded.gate_pass ? "true" : "false")
      << "},\n  \"hedge\": {\"queries\": " << hedge.queries
      << ", \"p99_unhedged_ms\": " << hedge.p99_unhedged_ms
      << ", \"p99_hedged_ms\": " << hedge.p99_hedged_ms
      << ", \"ratio\": " << hedge.ratio
      << ", \"hedged_count\": " << hedge.hedged_count
      << ", \"partial_count\": " << hedge.partial_count
      << "},\n  \"qos\": {\n    \"queries\": " << kQosQueries
      << ",\n    \"shift_at\": " << kQosShift << ",\n    \"policies\": [\n";
  for (std::size_t p = 0; p < qos.policies.size(); ++p) {
    const PolicyResult& policy = qos.policies[p];
    out << "      {\"name\": \"" << policy.name
        << "\", \"recall_mean\": " << policy.recall_mean
        << ", \"targets_met_fraction\": " << policy.targets_met_fraction
        << ", \"dot_products_total\": " << policy.dot_products_total
        << ", \"answered\": " << policy.answered
        << ", \"meets_all_targets\": "
        << (policy.meets_all_targets ? "true" : "false") << "}"
        << (p + 1 < qos.policies.size() ? "," : "") << "\n";
  }
  out << "    ],\n    \"feedback\": {\"audits\": " << qos.feedback_audits
      << ", \"evictions\": " << qos.feedback_evictions
      << ", \"hedged\": " << qos.feedback_hedged
      << "},\n    \"adaptive_wins\": "
      << (qos.adaptive_wins ? "true" : "false")
      << ",\n    \"overload\": {\"victim_submitted\": "
      << qos.overload.victim_submitted
      << ", \"victim_completed\": " << qos.overload.victim_completed
      << ", \"victim_shed\": " << qos.overload.victim_shed
      << ", \"victim_p99_ms\": " << qos.overload.victim_p99_ms
      << ", \"victim_p99_bound_ms\": " << qos.overload.victim_bound_ms
      << ", \"aggressor_submitted\": " << qos.overload.aggressor_submitted
      << ", \"aggressor_completed\": " << qos.overload.aggressor_completed
      << ", \"aggressor_shed\": " << qos.overload.aggressor_shed
      << ", \"partition_ok\": "
      << (qos.overload.partition_ok ? "true" : "false")
      << ", \"pass\": " << (qos.overload.pass ? "true" : "false")
      << "}\n  },\n  \"obs_overhead\": {\"baseline_ms\": "
      << overhead.baseline_ms
      << ", \"instrumented_ms\": " << overhead.instrumented_ms
      << ", \"ratio\": " << overhead.ratio << "},\n";
  // Key process-registry counters accumulated over the whole run, so
  // regression diffs can see how much work each answer path did.
  out << "  \"registry\": {";
  const char* const kCounters[] = {
      "serve.engine.requests",     "serve.engine.selected.brute",
      "serve.engine.selected.tree", "serve.engine.selected.lsh",
      "serve.engine.selected.sketch", "serve.scheduler.submitted",
      "serve.scheduler.completed", "serve.scheduler.shed",
      "serve.scheduler.expired",   "serve.scheduler.batches",
      "serve.shard.calls",         "serve.shard.failed",
      "serve.shard.skipped",       "serve.shard.retries",
      "serve.shard.hedged",        "serve.shard.queries",
      "serve.shard.partial",       "core.brute.queries",
      "tree.queries",              "lsh.tables.queries"};
  bool first = true;
  for (const char* name : kCounters) {
    out << (first ? "" : ", ") << "\"" << name
        << "\": " << MetricsRegistry::Global().GetCounter(name)->Value();
    first = false;
  }
  out << "}\n}\n";
}

int Run() {
  Rng rng(2026);
  std::vector<WorkloadResult> workloads;
  workloads.push_back(RunWorkload(
      "small_norm_spread",
      MakeUnitBallGaussian(kN, kDim, /*min_norm=*/0.9, &rng), &rng));
  workloads.push_back(RunWorkload(
      "large_norm_spread",
      MakeLatentFactorVectors(kN, kDim, /*skew=*/1.0, &rng), &rng));

  const BatchedResult batched = RunBatchedSection(&rng);
  const ShardedResult sharded = RunShardedSection(&rng);
  const HedgeResult hedge = RunHedgeSection(&rng);
  const QosSectionResult qos = RunQosSection(&rng);

  const Matrix overhead_data =
      MakeUnitBallGaussian(kN, kDim, /*min_norm=*/0.9, &rng);
  Matrix overhead_queries(kQueries, kDim);
  for (std::size_t qi = 0; qi < kQueries; ++qi) {
    for (std::size_t j = 0; j < kDim; ++j) {
      overhead_queries.At(qi, j) = rng.NextGaussian();
    }
  }
  const OverheadResult overhead =
      MeasureObsOverhead(overhead_data, overhead_queries);
  std::cout << "obs overhead: baseline "
            << FormatFixed(overhead.baseline_ms, 1) << "ms, instrumented "
            << FormatFixed(overhead.instrumented_ms, 1) << "ms, ratio "
            << FormatFixed(overhead.ratio, 4)
            << (overhead.ratio <= 1.03 ? " (within 3% budget)"
                                       : " (WARN: above 3% budget)")
            << "\n";

  WriteJson(workloads, batched, sharded, hedge, qos, overhead,
            "BENCH_serve.json");
  std::cout << "wrote BENCH_serve.json\n";

  // Headline check: on >= 1 workload the planner meets every target with
  // strictly fewer dot products than the best fixed policy that also
  // meets every target (brute force always qualifies, so one exists).
  bool planner_wins_somewhere = false;
  for (const auto& wl : workloads) {
    const PolicyResult& planner = wl.policies.front();
    std::size_t best_fixed = std::numeric_limits<std::size_t>::max();
    for (std::size_t p = 1; p < wl.policies.size(); ++p) {
      if (wl.policies[p].meets_all_targets) {
        best_fixed = std::min(best_fixed, wl.policies[p].dot_products_total);
      }
    }
    const bool wins = planner.meets_all_targets &&
                      planner.dot_products_total < best_fixed;
    std::cout << wl.name << ": planner "
              << (wins ? "beats" : "does not beat")
              << " the best fixed policy (" << planner.dot_products_total
              << " vs " << best_fixed << " dot products)\n";
    planner_wins_somewhere = planner_wins_somewhere || wins;
  }
  if (!planner_wins_somewhere) {
    std::cerr << "FAIL: planner never beat the best fixed policy\n";
    return 1;
  }
  std::cout << "OK: planner beats the best fixed policy on >= 1 workload\n";

  // Batched-execution gate (PR 5): Engine::BatchQuery must answer the
  // coalesced workload at >= 2x the sequential per-query path, with
  // identical matches (equal recall by construction on the forced
  // exact path).
  if (!batched.results_agree) {
    std::cerr << "FAIL: batched and sequential answers disagree\n";
    return 1;
  }
  if (batched.speedup < 2.0) {
    std::cerr << "FAIL: batched speedup " << batched.speedup
              << "x below the 2x acceptance bar\n";
    return 1;
  }
  std::cout << "OK: batched execution " << FormatFixed(batched.speedup, 2)
            << "x over sequential at equal recall\n";

  // Sharded scatter-gather gates (PR 6). Determinism is unconditional;
  // the qps gate adapts to the hardware (see RunShardedSection).
  if (!sharded.results_agree) {
    std::cerr << "FAIL: sharded and baseline answers disagree\n";
    return 1;
  }
  if (!sharded.gate_pass) {
    std::cerr << "FAIL: sharded S=4 qps " << sharded.s4_qps << " misses the "
              << sharded.gate_mode << " gate (" << sharded.gate_threshold
              << "x baseline " << sharded.baseline_qps << ")\n";
    return 1;
  }
  std::cout << "OK: sharded scatter-gather passes the " << sharded.gate_mode
            << " gate (" << FormatFixed(sharded.speedup_s4, 2)
            << "x baseline, answers agree)\n";

  // Hedging gate: with a deterministic straggler on shard 0, enabling
  // hedging must cut tail latency by >= 2x.
  if (hedge.ratio < 2.0) {
    std::cerr << "FAIL: hedging p99 ratio " << hedge.ratio
              << "x below the 2x acceptance bar\n";
    return 1;
  }
  if (hedge.hedged_count == 0) {
    std::cerr << "FAIL: hedging never fired under the injected straggler\n";
    return 1;
  }
  std::cout << "OK: hedging cuts straggler p99 by "
            << FormatFixed(hedge.ratio, 2) << "x (" << hedge.hedged_count
            << " hedged calls)\n";

  // QoS gates (PR 10). (a) Across the mid-run distribution shift the
  // adaptive planner must meet every target group and beat every fixed
  // (algo, precision) policy that also meets them, net of its own
  // audit scans. (b) The 10x-overloaded aggressor must be the only
  // tenant that sheds, and the victim's p99 must hold its bound.
  if (!qos.adaptive_wins) {
    std::cerr << "FAIL: adaptive planner did not beat every fixed "
                 "(algo, precision) policy across the shift\n";
    return 1;
  }
  std::cout << "OK: adaptive planner beats every fixed policy across the "
               "shift ("
            << qos.feedback_audits << " audits, " << qos.feedback_evictions
            << " evictions)\n";
  if (!qos.overload.pass) {
    std::cerr << "FAIL: tenant isolation under 10x overload (victim p99 "
              << qos.overload.victim_p99_ms << "ms, bound "
              << qos.overload.victim_bound_ms << "ms, victim shed "
              << qos.overload.victim_shed << ")\n";
    return 1;
  }
  std::cout << "OK: victim tenant held p99 "
            << FormatFixed(qos.overload.victim_p99_ms, 3) << "ms <= "
            << FormatFixed(qos.overload.victim_bound_ms, 0)
            << "ms under 10x overload (" << qos.overload.aggressor_shed
            << " aggressor submissions shed)\n";
  return 0;
}

}  // namespace
}  // namespace ips

int main() { return ips::Run(); }
