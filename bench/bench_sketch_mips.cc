// Experiment S1 -- the Section 4.3 linear-sketch data structure for
// unsigned c-MIPS: construction/query cost versus n for a sweep of
// kappa, and the achieved approximation against the promised
// c = n^(-1/kappa). The shape to observe: query-side sketch rows grow
// like n^(1-2/kappa) (sublinear), and the recovered value stays within
// the promised factor of the true maximum.

#include <cmath>
#include <iostream>

#include "core/dataset.h"
#include "linalg/kernels.h"
#include "rng/random.h"
#include "sketch/sketch_mips.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace ips {
namespace {

void SweepKappaAndN() {
  std::cout << "=== Experiment S1: Section 4.3 sketch MIPS ===\n";
  Rng rng(3);
  TablePrinter table({"kappa", "n", "root sketch rows", "n^(1-2/kappa)",
                      "build ms", "query us", "approx ratio (worst)",
                      "promised c = n^(-1/kappa)"});
  const std::size_t kDim = 16;
  for (double kappa : {3.0, 4.0, 6.0}) {
    for (std::size_t n : {512u, 2048u, 8192u}) {
      const Matrix data = MakeUnitBallGaussian(n, kDim, 0.2, &rng);
      SketchMipsParams params;
      params.kappa = kappa;
      params.copies = 7;
      params.bucket_multiplier = 4.0;
      WallTimer timer;
      const SketchMipsIndex index(data, params, &rng);
      const double build_ms = timer.Millis();

      const Matrix queries = MakeUnitBallGaussian(20, kDim, 0.9, &rng);
      double worst_ratio = 1.0;
      timer.Restart();
      std::vector<std::size_t> recovered(queries.rows());
      for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
        recovered[qi] = index.RecoverArgmax(queries.Row(qi));
      }
      const double query_us = timer.Micros() / queries.rows();
      for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
        double truth = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          truth = std::max(truth,
                           std::abs(kernels::Dot(data.Row(i), queries.Row(qi))));
        }
        const double got =
            std::abs(kernels::Dot(data.Row(recovered[qi]), queries.Row(qi)));
        worst_ratio = std::min(worst_ratio, got / truth);
      }
      table.AddRow(
          {Format(kappa), Format(n), Format(index.RootSketchRows()),
           FormatFixed(std::pow(n, 1.0 - 2.0 / kappa), 0),
           FormatFixed(build_ms, 1), FormatFixed(query_us, 1),
           FormatFixed(worst_ratio, 3),
           FormatFixed(std::pow(static_cast<double>(n), -1.0 / kappa), 4)});
    }
  }
  table.PrintMarkdown(std::cout);
  MaybeExportCsv(table, "sketch_mips");
  std::cout
      << "\nShape checks: root sketch rows track n^(1-2/kappa) (the\n"
         "sublinear query cost of the paper); the worst recovered/true\n"
         "ratio sits far ABOVE the promised c = n^(-1/kappa) -- the\n"
         "guarantee is conservative, random instances are much easier.\n";
}

void JoinViaSketch() {
  std::cout << "\n--- unsigned (cs, s) join via the sketch index ---\n";
  Rng rng(11);
  TablePrinter table({"n", "planted pairs", "recovered", "violations"});
  for (std::size_t n : {256u, 1024u, 4096u}) {
    // Dimension 64 keeps background inner products (~sqrt(2 ln n / d))
    // well below the planted 0.9 so the promise of Definition 1 holds.
    const PlantedInstance planted =
        MakePlantedInstance(n, 24, 64, 0.9, 1.0, &rng);
    SketchMipsParams params;
    params.kappa = 4.0;
    params.copies = 9;
    params.bucket_multiplier = 6.0;
    const SketchMipsIndex index(planted.data, params, &rng);
    std::size_t recovered = 0;
    std::size_t violations = 0;
    for (std::size_t qi = 0; qi < planted.queries.rows(); ++qi) {
      const std::size_t result =
          index.UnsignedSearch(planted.queries.Row(qi), 0.7, 0.8);
      if (result == index.num_points()) {
        ++violations;  // promise held (planted pair >= s) but no answer
      } else {
        ++recovered;
      }
    }
    table.AddRow({Format(n), Format(planted.queries.rows()),
                  Format(recovered), Format(violations)});
  }
  table.PrintMarkdown(std::cout);
}

}  // namespace
}  // namespace ips

int main() {
  ips::SweepKappaAndN();
  ips::JoinViaSketch();
  return 0;
}
