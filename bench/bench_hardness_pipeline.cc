// Experiment H1 -- the Lemma 2 / Theorem 1 reduction pipeline measured
// end to end: OVP instance -> gap embedding -> (cs, s) join ->
// orthogonal pair. Reports the dimension blow-up d -> d2', embedding
// time (linear in the output dimension, as the lemma requires), and join
// time, over sweeps of n and d for each of the three embeddings.

#include <algorithm>
#include <iostream>
#include <memory>

#include "embed/binary_embedding.h"
#include "embed/chebyshev_embedding.h"
#include "embed/sign_embedding.h"
#include "hardness/ovp.h"
#include "hardness/sign_pipeline.h"
#include "hardness/reduction.h"
#include "rng/random.h"
#include "util/table.h"
#include "util/timer.h"

namespace ips {
namespace {

void RunPipeline(const GapEmbedding& embedding, std::size_t n,
                 TablePrinter* table, Rng* rng) {
  OvpOptions options;
  options.size_a = n;
  options.size_b = n;
  options.dim = embedding.input_dim();
  options.density = 0.5;
  options.plant_orthogonal_pair = true;
  const OvpInstance instance = GenerateOvpInstance(options, rng);

  // Baseline: exact bit-parallel OVP.
  WallTimer timer;
  const auto exact = SolveOvpExact(instance);
  const double exact_seconds = timer.Seconds();

  const ReductionResult result = SolveOvpViaEmbedding(instance, embedding);
  table->AddRow(
      {embedding.Name(), Format(n), Format(embedding.input_dim()),
       Format(result.embedded_dim),
       FormatFixed(static_cast<double>(result.embedded_dim) /
                       static_cast<double>(embedding.input_dim()),
                   1),
       FormatFixed(result.embed_seconds * 1e3, 3),
       FormatFixed(result.join_seconds * 1e3, 3),
       FormatFixed(exact_seconds * 1e3, 3),
       result.pair.has_value() == exact.has_value() ? "yes" : "NO"});
}

void Run() {
  std::cout << "=== Experiment H1: OVP -> gap embedding -> join pipeline "
               "===\n";
  Rng rng(5);
  TablePrinter table({"embedding", "n", "d1", "d2'", "blow-up",
                      "embed ms", "join ms", "exact-OVP ms",
                      "agrees with exact"});
  for (std::size_t n : {32, 64, 128}) {
    RunPipeline(SignedGapEmbedding(32), n, &table, &rng);
  }
  for (std::size_t n : {32, 64}) {
    RunPipeline(ChebyshevGapEmbedding(8, 2), n, &table, &rng);
    RunPipeline(ChebyshevGapEmbedding(8, 3), n, &table, &rng);
  }
  for (std::size_t n : {32, 64, 128}) {
    RunPipeline(BinaryChunkEmbedding(24, 6), n, &table, &rng);
  }
  table.PrintMarkdown(std::cout);

  // Bit-parallel fast path for {-1,1} embeddings: same results, packed
  // XOR/popcount kernel.
  std::cout << "\n--- dense vs packed sign-domain join on the embedded sets "
               "---\n";
  TablePrinter packed_table({"embedding", "n", "dense join ms",
                             "packed join ms", "speedup", "same answer"});
  for (std::size_t n : {64u, 128u, 256u}) {
    OvpOptions options;
    options.size_a = n;
    options.size_b = n;
    options.dim = 32;
    options.density = 0.5;
    options.plant_orthogonal_pair = true;
    const OvpInstance instance = GenerateOvpInstance(options, &rng);
    const SignedGapEmbedding embedding(32);
    const ReductionResult dense = SolveOvpViaEmbedding(instance, embedding);
    const ReductionResult packed =
        SolveOvpViaSignEmbedding(instance, embedding);
    packed_table.AddRow(
        {embedding.Name(), Format(n),
         FormatFixed(dense.join_seconds * 1e3, 3),
         FormatFixed(packed.join_seconds * 1e3, 3),
         FormatFixed(dense.join_seconds /
                         std::max(packed.join_seconds, 1e-9),
                     1),
         dense.pair.has_value() == packed.pair.has_value() ? "yes" : "NO"});
  }
  packed_table.PrintMarkdown(std::cout);

  // Embedding evaluation time should be linear in the output dimension
  // (the efficiency requirement of Definition 4 / Lemma 2).
  std::cout << "\n--- embedding cost is linear in the output dimension ---\n";
  TablePrinter linearity({"embedding", "d2'", "microseconds / vector",
                          "ns per output coordinate"});
  Rng gen(17);
  for (unsigned q : {1u, 2u, 3u}) {
    const ChebyshevGapEmbedding embedding(8, q);
    std::vector<double> x(8);
    for (double& v : x) v = gen.NextBernoulli(0.5) ? 1.0 : 0.0;
    constexpr int kReps = 50;
    WallTimer timer;
    for (int rep = 0; rep < kReps; ++rep) {
      volatile double sink = embedding.EmbedLeft(x)[0];
      (void)sink;
    }
    const double micros = timer.Micros() / kReps;
    linearity.AddRow(
        {"chebyshev q=" + Format(q), Format(embedding.output_dim()),
         FormatFixed(micros, 2),
         FormatFixed(1e3 * micros / embedding.output_dim(), 2)});
  }
  linearity.PrintMarkdown(std::cout);
  std::cout << "\nShape check: ns/coordinate stays flat across q while d2'\n"
               "grows by ~two orders of magnitude -> the dynamic-programming\n"
               "construction is linear-time in the output dimension, as\n"
               "Lemma 2 requires for the reduction to preserve n^(1+alpha-eps)\n"
               "total time.\n";
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
