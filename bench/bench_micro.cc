// Experiment M1 -- google-benchmark microbenchmarks of the primitives
// every experiment rests on: inner-product kernels (dense / packed sign
// / packed binary), hash-function evaluation for each LSH family, the
// three gap embeddings, and the sketch apply path.

#include <benchmark/benchmark.h>

#include <vector>

#include "embed/binary_embedding.h"
#include "embed/chebyshev_embedding.h"
#include "embed/sign_embedding.h"
#include "linalg/bit_matrix.h"
#include "linalg/sign_matrix.h"
#include "linalg/kernels.h"
#include "lsh/cross_polytope.h"
#include "lsh/e2lsh.h"
#include "lsh/minhash.h"
#include "lsh/simhash.h"
#include "rng/random.h"
#include "sketch/max_stability.h"

namespace ips {
namespace {

void BM_DenseDot(benchmark::State& state) {
  const std::size_t dim = state.range(0);
  Rng rng(1);
  std::vector<double> x(dim), y(dim);
  for (double& v : x) v = rng.NextGaussian();
  for (double& v : y) v = rng.NextGaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::Dot(x, y));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_DenseDot)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SignDot(benchmark::State& state) {
  const std::size_t dim = state.range(0);
  Rng rng(2);
  SignMatrix m(2, dim);
  for (std::size_t j = 0; j < dim; ++j) {
    m.Set(0, j, rng.NextSign());
    m.Set(1, j, rng.NextSign());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.DotRows(0, m, 1));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_SignDot)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BinaryDot(benchmark::State& state) {
  const std::size_t dim = state.range(0);
  Rng rng(3);
  BitMatrix m(2, dim);
  for (std::size_t j = 0; j < dim; ++j) {
    if (rng.NextBernoulli(0.5)) m.Set(0, j, true);
    if (rng.NextBernoulli(0.5)) m.Set(1, j, true);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.DotRows(0, m, 1));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_BinaryDot)->Arg(64)->Arg(1024)->Arg(16384);

template <typename Family>
void HashFamilyBench(benchmark::State& state, const Family& family,
                     std::size_t dim) {
  Rng rng(4);
  std::vector<double> x(dim);
  for (double& v : x) v = rng.NextGaussian();
  const auto h = family.Sample(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h->HashData(x));
  }
}

void BM_SimHash(benchmark::State& state) {
  const std::size_t dim = state.range(0);
  HashFamilyBench(state, SimHashFamily(dim), dim);
}
BENCHMARK(BM_SimHash)->Arg(64)->Arg(256);

void BM_CrossPolytope(benchmark::State& state) {
  const std::size_t dim = state.range(0);
  HashFamilyBench(state, CrossPolytopeFamily(dim), dim);
}
BENCHMARK(BM_CrossPolytope)->Arg(16)->Arg(64);

void BM_E2Lsh(benchmark::State& state) {
  const std::size_t dim = state.range(0);
  HashFamilyBench(state, E2LshFamily(dim, 4.0), dim);
}
BENCHMARK(BM_E2Lsh)->Arg(64)->Arg(256);

void BM_MinHash(benchmark::State& state) {
  const std::size_t dim = state.range(0);
  Rng rng(5);
  const MinHashFamily family(dim);
  std::vector<double> x(dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i) {
    if (rng.NextBernoulli(0.2)) x[i] = 1.0;
  }
  const auto h = family.Sample(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h->HashData(x));
  }
}
BENCHMARK(BM_MinHash)->Arg(64)->Arg(1024);

void BM_SignedEmbedding(benchmark::State& state) {
  const std::size_t d = state.range(0);
  const SignedGapEmbedding embedding(d);
  Rng rng(6);
  std::vector<double> x(d);
  for (double& v : x) v = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedding.EmbedLeft(x));
  }
  state.SetItemsProcessed(state.iterations() * embedding.output_dim());
}
BENCHMARK(BM_SignedEmbedding)->Arg(32)->Arg(256);

void BM_ChebyshevEmbedding(benchmark::State& state) {
  const unsigned q = static_cast<unsigned>(state.range(0));
  const ChebyshevGapEmbedding embedding(8, q);
  Rng rng(7);
  std::vector<double> x(8);
  for (double& v : x) v = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedding.EmbedLeft(x));
  }
  state.SetItemsProcessed(state.iterations() * embedding.output_dim());
}
BENCHMARK(BM_ChebyshevEmbedding)->Arg(1)->Arg(2)->Arg(3);

void BM_BinaryEmbedding(benchmark::State& state) {
  const std::size_t k = state.range(0);
  const BinaryChunkEmbedding embedding(24, k);
  Rng rng(8);
  std::vector<double> x(24);
  for (double& v : x) v = rng.NextBernoulli(0.3) ? 1.0 : 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedding.EmbedLeft(x));
  }
  state.SetItemsProcessed(state.iterations() * embedding.output_dim());
}
BENCHMARK(BM_BinaryEmbedding)->Arg(4)->Arg(8)->Arg(24);

void BM_MaxStabilityApply(benchmark::State& state) {
  const std::size_t dim = state.range(0);
  Rng rng(9);
  MaxStabilityParams params;
  params.kappa = 4.0;
  params.copies = 5;
  const MaxStabilitySketch sketch(dim, params, &rng);
  std::vector<double> x(dim);
  for (double& v : x) v = rng.NextGaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Apply(x));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_MaxStabilityApply)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace ips

BENCHMARK_MAIN();
