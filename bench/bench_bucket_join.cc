// Ablation A4 -- join execution strategy: per-query index probing
// (LshMipsIndex) versus the bucket join (hash both sides into shared
// tables and enumerate colliding pairs), at equal amplification
// parameters. The bucket join amortizes table construction over the
// whole query set and verifies each distinct pair once.

#include <iostream>

#include "core/dataset.h"
#include "core/mips_index.h"
#include "core/similarity_join.h"
#include "lsh/bucket_join.h"
#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "util/table.h"
#include "util/timer.h"

namespace ips {
namespace {

void Run() {
  std::cout << "=== Ablation A4: per-query probing vs bucket join ===\n";
  Rng rng(3);
  const std::size_t kDim = 24;
  JoinSpec spec;
  spec.s = 0.8;
  spec.c = 0.75;
  spec.is_signed = true;

  TablePrinter table({"n", "queries", "strategy", "total ms", "recall",
                      "pairs verified"});
  for (std::size_t n : {1000u, 4000u}) {
    for (std::size_t num_queries : {50u, 400u}) {
      const PlantedInstance planted =
          MakePlantedInstance(n, num_queries, kDim, 0.9, 1.0, &rng);
      const JoinResult truth =
          ExactJoin(planted.data, planted.queries, spec, nullptr);
      const DualBallTransform transform(kDim, 1.0);
      const SimHashFamily base(transform.output_dim());
      LshTableParams params;
      params.k = 10;
      params.l = 48;

      {
        WallTimer timer;
        const LshMipsIndex index(planted.data, &transform, base, params,
                                 &rng);
        const JoinResult result = IndexJoin(index, planted.queries, spec);
        double recall = 0.0;
        VerifyJoinContract(result, truth, spec, &recall);
        table.AddRow({Format(n), Format(num_queries), "per-query probe",
                      FormatFixed(timer.Millis(), 1),
                      FormatFixed(recall, 3),
                      Format(result.inner_products)});
      }
      {
        WallTimer timer;
        const Matrix hash_data = transform.TransformDataset(planted.data);
        const Matrix hash_queries =
            transform.TransformQueries(planted.queries);
        const BucketJoinResult result = LshBucketJoin(
            base, hash_data, planted.data, hash_queries, planted.queries,
            spec.s, spec.cs(), spec.is_signed, params, &rng);
        // Recall against the same truth.
        std::size_t promised = 0;
        std::size_t answered = 0;
        for (std::size_t qi = 0; qi < num_queries; ++qi) {
          if (!truth.per_query[qi].has_value() ||
              truth.per_query[qi]->value < spec.s) {
            continue;
          }
          ++promised;
          if (result.per_query[qi].has_value()) ++answered;
        }
        const double recall =
            promised == 0 ? 1.0
                          : static_cast<double>(answered) /
                                static_cast<double>(promised);
        table.AddRow({Format(n), Format(num_queries), "bucket join",
                      FormatFixed(timer.Millis(), 1),
                      FormatFixed(recall, 3),
                      Format(result.metrics.Get("lsh.join.verified_pairs"))});
      }
    }
  }
  table.PrintMarkdown(std::cout);
  std::cout << "\nShape checks: both strategies reach the same recall; the\n"
               "bucket join verifies each distinct colliding pair exactly\n"
               "once, so its advantage grows with the query-set size (the\n"
               "join workload of the paper, |Q| = n), while per-query\n"
               "probing suits the online search/indexing workload.\n";
}

}  // namespace
}  // namespace ips

int main() {
  ips::Run();
  return 0;
}
