// Tests for CSV matrix I/O (core/io.h) and edge-case robustness of the
// core indexes at degenerate sizes.

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>

#include "core/dataset.h"
#include "core/io.h"
#include "core/mips_index.h"
#include "lsh/simhash.h"
#include "lsh/tables.h"
#include "rng/random.h"
#include "sketch/sketch_mips.h"
#include "tree/mips_tree.h"

namespace ips {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CsvParseTest, BasicMatrix) {
  const auto result = ParseMatrixCsv("1,2,3\n4,5,6\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows(), 2u);
  EXPECT_EQ(result->cols(), 3u);
  EXPECT_DOUBLE_EQ(result->At(1, 2), 6.0);
}

TEST(CsvParseTest, CommentsAndBlanksSkipped) {
  const auto result = ParseMatrixCsv("# header\n\n1.5,-2\n\n# tail\n3,4\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows(), 2u);
  EXPECT_DOUBLE_EQ(result->At(0, 1), -2.0);
}

TEST(CsvParseTest, WindowsLineEndings) {
  const auto result = ParseMatrixCsv("1,2\r\n3,4\r\n");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->At(1, 0), 3.0);
}

TEST(CsvParseTest, ScientificNotation) {
  const auto result = ParseMatrixCsv("1e-3,2.5E+2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->At(0, 0), 1e-3);
  EXPECT_DOUBLE_EQ(result->At(0, 1), 250.0);
}

TEST(CsvParseTest, RaggedRowsRejected) {
  const auto result = ParseMatrixCsv("1,2\n3\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("ragged"), std::string::npos);
}

TEST(CsvParseTest, BadNumberRejected) {
  const auto result = ParseMatrixCsv("1,abc\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("abc"), std::string::npos);
}

TEST(CsvParseTest, NonFiniteValuesRejectedWithPosition) {
  for (const char* cell : {"nan", "NaN", "inf", "-inf", "INF", "1e999",
                           "-1e999"}) {
    const auto result = ParseMatrixCsv(std::string("1,2\n3,") + cell + "\n");
    ASSERT_FALSE(result.ok()) << cell;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << cell;
    // The message names the offending line and column.
    EXPECT_NE(result.status().message().find("line 2"), std::string::npos)
        << result.status().ToString();
    EXPECT_NE(result.status().message().find("column 2"), std::string::npos)
        << result.status().ToString();
  }
}

TEST(CsvParseTest, PlusPrefixedCellsParse) {
  const auto result = ParseMatrixCsv("+1.5,+2e1\n+0,3\n");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->At(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(result->At(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(result->At(1, 0), 0.0);
}

TEST(CsvParseTest, SubnormalUnderflowIsAccepted) {
  // strtod flags 1e-320 with ERANGE on some libcs, but a subnormal is a
  // legitimate finite value and must load.
  const auto result = ParseMatrixCsv("1e-320,2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->At(0, 0), 0.0);
}

TEST(CsvFileTest, SavedNonFiniteMatrixFailsToReloadCleanly) {
  // A matrix poisoned with NaN/inf round-trips into a load *error* (not
  // an abort, not a silent NaN in the index): the writer is permissive,
  // the loader is the validation gate.
  Matrix poisoned(2, 2);
  poisoned.At(0, 1) = std::numeric_limits<double>::quiet_NaN();
  poisoned.At(1, 0) = std::numeric_limits<double>::infinity();
  const std::string path = TempPath("poisoned.csv");
  IPS_CHECK_OK(SaveMatrixCsv(path, poisoned));
  const auto loaded = LoadMatrixCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("column 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvParseTest, EmptyCellRejected) {
  EXPECT_FALSE(ParseMatrixCsv("1,,3\n").ok());
  EXPECT_FALSE(ParseMatrixCsv("1,2,\n").ok());
}

TEST(CsvParseTest, EmptyInputRejected) {
  EXPECT_FALSE(ParseMatrixCsv("").ok());
  EXPECT_FALSE(ParseMatrixCsv("# only a comment\n").ok());
}

TEST(CsvFileTest, SaveLoadRoundTrip) {
  Rng rng(3);
  const Matrix original = MakeUnitBallGaussian(17, 5, 0.2, &rng);
  const std::string path = TempPath("roundtrip.csv");
  IPS_CHECK_OK(SaveMatrixCsv(path, original));
  const auto loaded = LoadMatrixCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->rows(), original.rows());
  ASSERT_EQ(loaded->cols(), original.cols());
  for (std::size_t i = 0; i < original.rows(); ++i) {
    for (std::size_t j = 0; j < original.cols(); ++j) {
      EXPECT_DOUBLE_EQ(loaded->At(i, j), original.At(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsNotFound) {
  const auto result = LoadMatrixCsv("/nonexistent/dir/file.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CsvParseTest, LoadReservesExactCapacityUpFront) {
  // The two-pass loader counts rows/cols in bounded chunks and reserves
  // the exact payload once, so loading never pays the vector-doubling
  // ~2x RSS spike. Exact capacity == size is the observable proof the
  // pre-count matched the parse (growth would overshoot capacity).
  std::string csv = "# synthetic\n";
  for (int i = 0; i < 500; ++i) {
    csv += "1,2,3,4,5,6,7\n";
  }
  const auto result = ParseMatrixCsv(csv);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows(), 500u);
  EXPECT_EQ(result->cols(), 7u);
  EXPECT_EQ(result->data().capacity(), 500u * 7u);
}

TEST(CsvParseTest, ShapeCountAgreesWithParseOnMessyInput) {
  // The pre-count must agree with the parser on every skip rule —
  // comments, blank lines, CRLF blanks, and a missing final newline —
  // or the exact-reserve would be wrong (caught here as capacity
  // overshoot or a parse mismatch).
  const std::string csv =
      "# comment\r\n\r\n1,2\n\n3,4\r\n# mid comment\n5,6\n\n7,8";
  const auto result = ParseMatrixCsv(csv);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows(), 4u);
  EXPECT_EQ(result->cols(), 2u);
  EXPECT_DOUBLE_EQ(result->At(3, 1), 8.0);
  EXPECT_EQ(result->data().capacity(), 8u);
}

TEST(CsvParseTest, InputLargerThanOneCountingChunkParses) {
  // Spans several 256 KiB counting chunks so the chunked line scan
  // exercises lines straddling chunk boundaries.
  std::string csv;
  const std::size_t rows = 40000;  // ~680 KiB of text
  csv.reserve(rows * 18);
  for (std::size_t i = 0; i < rows; ++i) {
    csv += std::to_string(i % 97);
    csv += ",1.5,-2.25\n";
  }
  const auto result = ParseMatrixCsv(csv);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows(), rows);
  EXPECT_EQ(result->cols(), 3u);
  EXPECT_EQ(result->data().capacity(), rows * 3u);
  EXPECT_DOUBLE_EQ(result->At(rows - 1, 0),
                   static_cast<double>((rows - 1) % 97));
}

// --- Degenerate-size robustness of the engines ---

TEST(EdgeCaseTest, SinglePointIndexes) {
  Rng rng(7);
  Matrix data(1, 3);
  data.At(0, 0) = 0.5;
  JoinSpec spec;
  spec.s = 0.1;
  spec.c = 0.5;
  spec.is_signed = true;
  std::vector<double> q = {1.0, 0.0, 0.0};

  const BruteForceIndex brute(data);
  EXPECT_TRUE(brute.Search(q, spec).has_value());

  const TreeMipsIndex tree(data, 4, &rng);
  EXPECT_TRUE(tree.Search(q, spec).has_value());

  SketchMipsParams sketch_params;
  const SketchMipsIndex sketch(data, sketch_params, &rng);
  EXPECT_EQ(sketch.RecoverArgmax(q), 0u);
}

TEST(EdgeCaseTest, OneDimensionalVectors) {
  Rng rng(11);
  Matrix data(10, 1);
  for (std::size_t i = 0; i < 10; ++i) {
    data.At(i, 0) = 0.1 * static_cast<double>(i + 1) - 0.5;
  }
  const MipsBallTree tree(data, 2, &rng);
  std::vector<double> q = {1.0};
  EXPECT_DOUBLE_EQ(tree.QueryMax(q).value, 0.5);
  EXPECT_DOUBLE_EQ(tree.QueryMaxAbs(q).value, 0.5);  // |-0.4| < 0.5
}

TEST(EdgeCaseTest, ZeroQueryVector) {
  Rng rng(13);
  const Matrix data = MakeUnitBallGaussian(20, 4, 0.5, &rng);
  const BruteForceIndex brute(data);
  JoinSpec spec;
  spec.s = 0.1;
  spec.c = 0.5;
  spec.is_signed = true;
  const std::vector<double> zero(4, 0.0);
  // Every inner product is 0 < cs: no match.
  EXPECT_FALSE(brute.Search(zero, spec).has_value());
}

TEST(EdgeCaseTest, LshTablesWithSingleFunctionAndTable) {
  Rng rng(17);
  const Matrix data = MakeUnitBallGaussian(30, 6, 0.5, &rng);
  const SimHashFamily family(6);
  LshTableParams params;
  params.k = 1;
  params.l = 1;
  const LshTables tables(family, data, params, &rng);
  // A single sign bit splits the data in two: querying a data point
  // returns its half (which contains it).
  const auto candidates = tables.Query(data.Row(3));
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 3u),
            candidates.end());
  EXPECT_LT(candidates.size(), 30u);
}

}  // namespace
}  // namespace ips
