// Property sweeps over all (A)LSH transforms: the documented lift
// identities must hold at every dimension, not just the ones the unit
// tests in lsh_test.cc happen to use.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/kernels.h"
#include "lsh/transforms.h"
#include "rng/random.h"

namespace ips {
namespace {

std::vector<double> RandomInBall(std::size_t dim, double radius, Rng* rng) {
  std::vector<double> v(dim);
  for (double& x : v) x = rng->NextGaussian();
  kernels::NormalizeInPlace(v);
  // Stay strictly inside the ball so sqrt complements are well defined.
  kernels::ScaleInPlace(v, radius * (0.05 + 0.9 * rng->NextDouble()));
  return v;
}

class TransformDimSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TransformDimSweep, DualBallIdentities) {
  const std::size_t dim = GetParam();
  Rng rng(dim * 31 + 1);
  for (double radius : {1.0, 3.0, 10.0}) {
    const DualBallTransform transform(dim, radius);
    EXPECT_EQ(transform.output_dim(), dim + 2);
    for (int trial = 0; trial < 8; ++trial) {
      const auto p = RandomInBall(dim, 1.0, &rng);
      const auto q = RandomInBall(dim, radius, &rng);
      const auto tp = transform.TransformData(p);
      const auto tq = transform.TransformQuery(q);
      EXPECT_NEAR(kernels::Norm(tp), 1.0, 1e-9);
      EXPECT_NEAR(kernels::Norm(tq), 1.0, 1e-9);
      EXPECT_NEAR(kernels::Dot(tp, tq), kernels::Dot(p, q) / radius, 1e-9);
    }
  }
}

TEST_P(TransformDimSweep, SimpleMipsIdentities) {
  const std::size_t dim = GetParam();
  Rng rng(dim * 37 + 2);
  const double max_norm = 2.5;
  const SimpleMipsTransform transform(dim, max_norm);
  for (int trial = 0; trial < 8; ++trial) {
    const auto p = RandomInBall(dim, max_norm, &rng);
    const auto q = RandomInBall(dim, 7.0, &rng);
    const auto tp = transform.TransformData(p);
    const auto tq = transform.TransformQuery(q);
    EXPECT_NEAR(kernels::Norm(tp), 1.0, 1e-9);
    EXPECT_NEAR(kernels::Norm(tq), 1.0, 1e-9);
    EXPECT_NEAR(kernels::Dot(tp, tq), kernels::Dot(p, q) / (max_norm * kernels::Norm(q)), 1e-9);
  }
}

TEST_P(TransformDimSweep, XboxIdentities) {
  const std::size_t dim = GetParam();
  Rng rng(dim * 41 + 3);
  const double max_norm = 4.0;
  const XboxTransform transform(dim, max_norm);
  for (int trial = 0; trial < 8; ++trial) {
    const auto p = RandomInBall(dim, max_norm, &rng);
    const auto q = RandomInBall(dim, 2.0, &rng);
    const auto tp = transform.TransformData(p);
    const auto tq = transform.TransformQuery(q);
    EXPECT_NEAR(kernels::Norm(tp), max_norm, 1e-9);        // all data equalized
    EXPECT_NEAR(kernels::Dot(tp, tq), kernels::Dot(p, q), 1e-9);    // products unchanged
    // Euclidean NN on the lift == MIPS on the originals:
    // ||tp - tq||^2 = M^2 + ||q||^2 - 2 p^T q.
    EXPECT_NEAR(kernels::SquaredDistance(tp, tq),
                max_norm * max_norm + kernels::SquaredNorm(q) - 2.0 * kernels::Dot(p, q),
                1e-9);
  }
}

TEST_P(TransformDimSweep, L2AlshDistanceIdentity) {
  const std::size_t dim = GetParam();
  Rng rng(dim * 43 + 4);
  for (std::size_t m : {1u, 2u, 4u}) {
    const double u_scale = 0.83;
    const double max_norm = 3.0;
    const L2AlshTransform transform(dim, m, u_scale, max_norm);
    for (int trial = 0; trial < 5; ++trial) {
      const auto p = RandomInBall(dim, max_norm, &rng);
      const auto q = RandomInBall(dim, 5.0, &rng);
      const auto tp = transform.TransformData(p);
      const auto tq = transform.TransformQuery(q);
      const double scaled_norm = u_scale * kernels::Norm(p) / max_norm;
      const double tail =
          std::pow(scaled_norm, std::pow(2.0, static_cast<double>(m) + 1.0));
      const double expected =
          1.0 + static_cast<double>(m) / 4.0 -
          2.0 * (u_scale / max_norm) * kernels::Dot(p, q) / kernels::Norm(q) + tail;
      EXPECT_NEAR(kernels::SquaredDistance(tp, tq), expected, 1e-9)
          << "m=" << m;
    }
  }
}

TEST_P(TransformDimSweep, SymmetricIncoherentAdditiveError) {
  const std::size_t dim = GetParam();
  Rng rng(dim * 47 + 5);
  const double epsilon = 0.2;
  const SymmetricIncoherentTransform transform(dim, epsilon, 16);
  for (int trial = 0; trial < 8; ++trial) {
    const auto x = RandomInBall(dim, 1.0, &rng);
    const auto y = RandomInBall(dim, 1.0, &rng);
    const auto tx = transform.TransformData(x);
    const auto ty = transform.TransformData(y);
    EXPECT_NEAR(kernels::Norm(tx), 1.0, 1e-9);
    EXPECT_NEAR(kernels::Dot(tx, ty), kernels::Dot(x, y), epsilon + 1e-9);
  }
}

TEST_P(TransformDimSweep, MatrixHelpersMatchPerVectorTransforms) {
  const std::size_t dim = GetParam();
  Rng rng(dim * 53 + 6);
  const DualBallTransform transform(dim, 2.0);
  Matrix points(4, dim);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto v = RandomInBall(dim, 1.0, &rng);
    for (std::size_t j = 0; j < dim; ++j) points.At(i, j) = v[j];
  }
  const Matrix lifted = transform.TransformDataset(points);
  const Matrix lifted_q = transform.TransformQueries(points);
  ASSERT_EQ(lifted.rows(), 4u);
  ASSERT_EQ(lifted.cols(), transform.output_dim());
  for (std::size_t i = 0; i < 4; ++i) {
    const auto direct = transform.TransformData(points.Row(i));
    const auto direct_q = transform.TransformQuery(points.Row(i));
    for (std::size_t j = 0; j < direct.size(); ++j) {
      EXPECT_DOUBLE_EQ(lifted.At(i, j), direct[j]);
      EXPECT_DOUBLE_EQ(lifted_q.At(i, j), direct_q[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, TransformDimSweep,
                         ::testing::Values(2, 3, 5, 16, 33, 64));

}  // namespace
}  // namespace ips
