// Tests for src/tree: the exact ball-tree MIPS baseline must agree with
// brute force on every query while pruning work.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/kernels.h"
#include "rng/random.h"
#include "tree/mips_tree.h"

namespace ips {
namespace {

Matrix RandomMatrix(std::size_t n, std::size_t d, Rng* rng) {
  Matrix m(n, d);
  for (double& v : m.data()) v = rng->NextGaussian();
  return m;
}

std::pair<std::size_t, double> BruteMax(const Matrix& data,
                                        std::span<const double> q,
                                        bool absolute) {
  std::size_t best_index = 0;
  double best = -1e300;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    double v = kernels::Dot(data.Row(i), q);
    if (absolute) v = std::abs(v);
    if (v > best) {
      best = v;
      best_index = i;
    }
  }
  return {best_index, best};
}

struct TreeCase {
  std::size_t n;
  std::size_t d;
  std::size_t leaf;
};

class BallTreeSweep : public ::testing::TestWithParam<TreeCase> {};

TEST_P(BallTreeSweep, SignedQueryMatchesBruteForce) {
  const auto [n, d, leaf] = GetParam();
  Rng rng(7);
  const Matrix data = RandomMatrix(n, d, &rng);
  const MipsBallTree tree(data, leaf, &rng);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> q(d);
    for (double& v : q) v = rng.NextGaussian();
    const MipsResult result = tree.QueryMax(q);
    const auto [truth_index, truth_value] = BruteMax(data, q, false);
    EXPECT_NEAR(result.value, truth_value, 1e-9);
    EXPECT_EQ(result.index, truth_index);
  }
}

TEST_P(BallTreeSweep, UnsignedQueryMatchesBruteForce) {
  const auto [n, d, leaf] = GetParam();
  Rng rng(11);
  const Matrix data = RandomMatrix(n, d, &rng);
  const MipsBallTree tree(data, leaf, &rng);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> q(d);
    for (double& v : q) v = rng.NextGaussian();
    const MipsResult result = tree.QueryMaxAbs(q);
    const auto [truth_index, truth_value] = BruteMax(data, q, true);
    EXPECT_NEAR(result.value, truth_value, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BallTreeSweep,
                         ::testing::Values(TreeCase{1, 4, 4},
                                           TreeCase{10, 3, 2},
                                           TreeCase{100, 8, 8},
                                           TreeCase{500, 4, 16},
                                           TreeCase{300, 32, 8},
                                           TreeCase{512, 2, 1}));

TEST(BallTreeTest, PrunesInLowDimension) {
  // In 2-d with clustered data the bound should prune most leaves.
  Rng rng(13);
  const std::size_t kN = 2000;
  Matrix data(kN, 2);
  for (double& v : data.data()) v = rng.NextGaussian();
  const MipsBallTree tree(data, 8, &rng);
  std::size_t total_evaluated = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q = {rng.NextGaussian(), rng.NextGaussian()};
    total_evaluated += tree.QueryMax(q).evaluated;
  }
  // Far fewer than 20 * 2000 full evaluations.
  EXPECT_LT(total_evaluated, 20 * kN / 2);
}

TEST(BallTreeTest, HandlesDuplicatePoints) {
  Rng rng(17);
  Matrix data(64, 4);
  // All rows identical: the degenerate-split fallback must terminate.
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 4; ++j) data.At(i, j) = 1.0;
  }
  const MipsBallTree tree(data, 4, &rng);
  std::vector<double> q = {1.0, 0.0, 0.0, 0.0};
  const MipsResult result = tree.QueryMax(q);
  EXPECT_NEAR(result.value, 1.0, 1e-12);
}

TEST(BallTreeTest, NegativeInnerProductsHandled) {
  // Unsigned search must find a strongly *negative* inner product.
  Rng rng(19);
  Matrix data(50, 6);
  for (double& v : data.data()) v = 0.01 * rng.NextGaussian();
  for (std::size_t j = 0; j < 6; ++j) data.At(31, j) = -1.0;
  const MipsBallTree tree(data, 4, &rng);
  std::vector<double> q(6, 1.0);
  const MipsResult unsigned_result = tree.QueryMaxAbs(q);
  EXPECT_EQ(unsigned_result.index, 31u);
  EXPECT_NEAR(unsigned_result.value, 6.0, 1e-9);
  // The signed maximum is some noise vector, not row 31.
  const MipsResult signed_result = tree.QueryMax(q);
  EXPECT_NE(signed_result.index, 31u);
}

}  // namespace
}  // namespace ips
