// Tests for src/codes: prime fields, Reed-Solomon distance, and the
// incoherent vector families used by Section 4.2 and Theorem 3 case 3.

#include <gtest/gtest.h>

#include <cmath>

#include "codes/incoherent.h"
#include "codes/prime_field.h"
#include "codes/reed_solomon.h"
#include "linalg/kernels.h"
#include "rng/random.h"

namespace ips {
namespace {

TEST(PrimeTest, SmallPrimes) {
  EXPECT_FALSE(IsPrime(0));
  EXPECT_FALSE(IsPrime(1));
  EXPECT_TRUE(IsPrime(2));
  EXPECT_TRUE(IsPrime(3));
  EXPECT_FALSE(IsPrime(4));
  EXPECT_TRUE(IsPrime(97));
  EXPECT_FALSE(IsPrime(91));  // 7 * 13
  EXPECT_TRUE(IsPrime(7919));
}

TEST(PrimeTest, NextPrime) {
  EXPECT_EQ(NextPrime(2), 2u);
  EXPECT_EQ(NextPrime(8), 11u);
  EXPECT_EQ(NextPrime(90), 97u);
}

TEST(PrimeFieldTest, ArithmeticAxioms) {
  const PrimeField field(101);
  EXPECT_EQ(field.Add(100, 2), 1u);
  EXPECT_EQ(field.Sub(1, 2), 100u);
  EXPECT_EQ(field.Mul(10, 11), 110 % 101);
  EXPECT_EQ(field.Pow(2, 10), 1024 % 101);
  EXPECT_EQ(field.Pow(5, 0), 1u);
}

TEST(PrimeFieldTest, InverseIsInverse) {
  const PrimeField field(97);
  for (std::uint64_t a = 1; a < 97; ++a) {
    EXPECT_EQ(field.Mul(a, field.Inv(a)), 1u) << "a=" << a;
  }
}

TEST(PrimeFieldTest, PolyEvaluation) {
  const PrimeField field(13);
  // p(x) = 3 + 2x + x^2 at x = 5: 3 + 10 + 25 = 38 = 12 mod 13.
  const std::uint64_t coeffs[] = {3, 2, 1};
  EXPECT_EQ(field.EvalPoly(coeffs, 3, 5), 12u);
}

TEST(PrimeFieldTest, RejectsComposite) {
  EXPECT_DEATH(PrimeField(100), "prime");
}

TEST(ReedSolomonTest, EncodeIsPolynomialEvaluation) {
  const ReedSolomonCode code(7, 2);  // messages are a + b x
  // Message 10 = 3 + 1*7: coefficients (3, 1), p(x) = 3 + x.
  const std::vector<std::uint64_t> codeword = code.Encode(10);
  ASSERT_EQ(codeword.size(), 7u);
  for (std::uint64_t x = 0; x < 7; ++x) {
    EXPECT_EQ(codeword[x], (3 + x) % 7);
  }
}

TEST(ReedSolomonTest, NumCodewords) {
  const ReedSolomonCode code(5, 3);
  EXPECT_EQ(code.NumCodewords(), 125u);
}

TEST(ReedSolomonTest, DistinctCodewordsAgreeRarely) {
  const std::uint64_t q = 11;
  const std::size_t k = 3;
  const ReedSolomonCode code(q, k);
  // Degree < 3 polynomials agree in at most 2 positions.
  for (std::uint64_t m1 = 0; m1 < 40; ++m1) {
    for (std::uint64_t m2 = m1 + 1; m2 < 40; ++m2) {
      EXPECT_LE(code.Agreements(m1, m2), k - 1);
    }
  }
  EXPECT_EQ(code.Agreements(17, 17), q);
}

TEST(RsIncoherentTest, MeetsRequestedCoherence) {
  const RsIncoherentFamily family(1000, 0.25);
  EXPECT_GE(family.size(), 1000u);
  EXPECT_LE(family.coherence(), 0.25);
  EXPECT_EQ(family.dim(), family.q() * family.q());
}

TEST(RsIncoherentTest, VectorsAreUnitAndIncoherent) {
  const RsIncoherentFamily family(200, 0.4);
  for (std::uint64_t i = 0; i < 20; ++i) {
    const std::vector<double> v = family.Vector(i);
    EXPECT_NEAR(kernels::Norm(v), 1.0, 1e-12);
    for (std::uint64_t j = i + 1; j < 20; ++j) {
      const std::vector<double> w = family.Vector(j);
      const double dense_dot = kernels::Dot(v, w);
      EXPECT_NEAR(dense_dot, family.Dot(i, j), 1e-12);
      EXPECT_LE(std::abs(dense_dot), family.coherence() + 1e-12);
    }
  }
}

TEST(RsIncoherentTest, SupportHasOneEntryPerEvaluationPoint) {
  const RsIncoherentFamily family(50, 0.5);
  const std::vector<std::size_t> support = family.Support(3);
  ASSERT_EQ(support.size(), family.q());
  for (std::size_t a = 0; a < support.size(); ++a) {
    // Coordinate block a covers [a q, (a+1) q).
    EXPECT_GE(support[a], a * family.q());
    EXPECT_LT(support[a], (a + 1) * family.q());
  }
}

struct CoherenceCase {
  std::size_t num_vectors;
  double epsilon;
};

class RandomIncoherentSweep
    : public ::testing::TestWithParam<CoherenceCase> {};

TEST_P(RandomIncoherentSweep, RealizedCoherenceWithinBound) {
  const CoherenceCase param = GetParam();
  Rng rng(17);
  const RandomIncoherentFamily family(param.num_vectors, param.epsilon,
                                      &rng);
  EXPECT_EQ(family.size(), param.num_vectors);
  EXPECT_LE(family.realized_coherence(), param.epsilon);
  for (std::size_t i = 0; i < family.size(); ++i) {
    EXPECT_NEAR(kernels::Norm(family.Vector(i)), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomIncoherentSweep,
                         ::testing::Values(CoherenceCase{8, 0.5},
                                           CoherenceCase{32, 0.4},
                                           CoherenceCase{64, 0.3},
                                           CoherenceCase{16, 0.2}));

TEST(RandomIncoherentTest, SuggestedDimGrowsWithPrecision) {
  EXPECT_GT(RandomIncoherentFamily::SuggestedDim(100, 0.1),
            RandomIncoherentFamily::SuggestedDim(100, 0.3));
  EXPECT_GT(RandomIncoherentFamily::SuggestedDim(10000, 0.2),
            RandomIncoherentFamily::SuggestedDim(10, 0.2));
}

}  // namespace
}  // namespace ips
