// Cross-module integration tests: the full hardness pipeline with an
// LSH join oracle, the symmetric-LSH reduction end to end, Lemma 4
// measured on every hard-sequence case with a real ALSH, and the
// (cs, s) contract of each index on a realistic workload.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dataset.h"
#include "core/mips_index.h"
#include "core/similarity_join.h"
#include "embed/binary_embedding.h"
#include "hardness/ovp.h"
#include "hardness/reduction.h"
#include "linalg/kernels.h"
#include "lsh/minhash.h"
#include "lsh/simhash.h"
#include "lsh/tables.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "theory/hard_sequences.h"
#include "theory/lemma4.h"

namespace ips {
namespace {

TEST(IntegrationTest, OvpViaBinaryEmbeddingAndMinHashJoin) {
  // The full Theorem 1 pipeline with a *sublinear-style* oracle: embed
  // into {0,1}, then find the orthogonal pair with MinHash-ALSH tables
  // instead of the quadratic scan.
  Rng rng(3);
  OvpOptions options;
  options.size_a = 48;
  options.size_b = 48;
  options.dim = 16;
  options.density = 0.5;
  options.plant_orthogonal_pair = true;
  const OvpInstance instance = GenerateOvpInstance(options, &rng);
  const BinaryChunkEmbedding embedding(16, 4);

  const JoinOracle lsh_oracle = [&rng](const Matrix& p, const Matrix& q,
                                       double s, double cs,
                                       bool is_signed) mutable
      -> std::optional<std::pair<std::size_t, std::size_t>> {
    EXPECT_FALSE(is_signed);
    // Binary embedded vectors: weight is bounded by output_dim; pad for
    // asymmetric minwise hashing.
    std::size_t max_weight = 0;
    for (std::size_t i = 0; i < p.rows(); ++i) {
      std::size_t w = 0;
      for (double v : p.Row(i)) w += v == 1.0 ? 1 : 0;
      max_weight = std::max(max_weight, w);
    }
    const MinHashAlshTransform transform(p.cols(), max_weight);
    const MinHashFamily base(transform.output_dim());
    const Matrix hashed_data = transform.TransformDataset(p);
    LshTableParams params;
    params.k = 2;
    params.l = 24;
    const LshTables tables(base, hashed_data, params, &rng);
    for (std::size_t j = 0; j < q.rows(); ++j) {
      const auto probe = transform.TransformQuery(q.Row(j));
      for (std::size_t i : tables.Query(probe)) {
        const double value = std::abs(kernels::Dot(p.Row(i), q.Row(j)));
        if (value >= cs && value >= s) return std::make_pair(i, j);
      }
    }
    return std::nullopt;
  };

  const ReductionResult result =
      SolveOvpViaEmbedding(instance, embedding, lsh_oracle);
  ASSERT_TRUE(result.pair.has_value());
  EXPECT_TRUE(instance.a.OrthogonalRows(result.pair->first, instance.b,
                                        result.pair->second));
}

TEST(IntegrationTest, SymmetricLshSolvesSignedSearch) {
  // Section 4.2 end to end: symmetric incoherent lift + SimHash tables,
  // identical hashing code path for data and queries.
  Rng rng(7);
  const std::size_t kDim = 16;
  const PlantedInstance planted =
      MakePlantedInstance(300, 20, kDim, 0.9, 1.0, &rng);
  const SymmetricIncoherentTransform transform(kDim, 0.1, 16);
  const SimHashFamily base(transform.output_dim());
  LshTableParams params;
  params.k = 10;
  params.l = 40;
  const LshMipsIndex index(planted.data, &transform, base, params, &rng);
  JoinSpec spec;
  spec.s = 0.75;
  spec.c = 0.7;
  spec.is_signed = true;
  std::size_t found = 0;
  for (std::size_t qi = 0; qi < planted.queries.rows(); ++qi) {
    const auto match = index.Search(planted.queries.Row(qi), spec);
    if (match.has_value()) ++found;
  }
  EXPECT_GE(found, 17u);
}

class Lemma4OnRealAlsh : public ::testing::TestWithParam<int> {};

TEST_P(Lemma4OnRealAlsh, MeasuredGapRespectsBound) {
  // For each Theorem 3 construction, measure a real ALSH's collision gap
  // on the staircase and check the Lemma 4 ceiling.
  Rng rng(11 + GetParam());
  HardSequences sequences;
  switch (GetParam()) {
    case 0:
      sequences = MakeCase1Sequences(4, 40.0, 0.25, 0.6);
      break;
    case 1:
      sequences = MakeCase2Sequences(4, 64.0, 1.0, 0.5);
      break;
    default:
      sequences = MakeCase3Sequences(100.0, 1.0, 0.5,
                                     IncoherentKind::kOrthonormal);
      break;
  }
  const SequenceCheck check = VerifyHardSequences(sequences);
  ASSERT_TRUE(check.staircase_ok);
  ASSERT_TRUE(check.norms_ok);
  const std::size_t n = sequences.data.rows();
  ASSERT_GE(n, 4u);

  const DualBallTransform transform(sequences.data.cols(), sequences.U);
  const SimHashFamily base(transform.output_dim());
  const TransformedLshFamily family(&transform, &base);
  constexpr std::size_t kSamples = 2000;
  const CollisionMatrix matrix(family, sequences, kSamples, &rng);
  const double slack = 3.0 * std::sqrt(0.25 / kSamples);
  EXPECT_LE(matrix.EmpiricalGap(), Lemma4GapBound(n) + 2.0 * slack)
      << "n=" << n << " P1=" << matrix.EmpiricalP1()
      << " P2=" << matrix.EmpiricalP2();
}

INSTANTIATE_TEST_SUITE_P(Cases, Lemma4OnRealAlsh, ::testing::Values(0, 1, 2));

TEST(IntegrationTest, AllIndexesHonorJoinContractOnPlantedData) {
  Rng rng(13);
  const std::size_t kDim = 16;
  const PlantedInstance planted =
      MakePlantedInstance(256, 16, kDim, 0.85, 1.0, &rng);
  JoinSpec spec;
  spec.s = 0.7;
  spec.c = 0.6;
  spec.is_signed = false;  // every index supports unsigned
  const JoinResult truth =
      ExactJoin(planted.data, planted.queries, spec, nullptr);
  ASSERT_EQ(truth.NumMatched(), planted.queries.rows());

  const BruteForceIndex brute(planted.data);
  const TreeMipsIndex tree(planted.data, 8, &rng);
  SketchMipsParams sketch_params;
  sketch_params.copies = 11;
  sketch_params.bucket_multiplier = 6.0;
  const SketchIndex sketch(planted.data, SketchConfig{sketch_params, {}},
                           &rng);
  const DualBallTransform transform(kDim, 1.0);
  const SimHashFamily base(transform.output_dim());
  LshTableParams lsh_params;
  lsh_params.k = 8;
  lsh_params.l = 48;
  const LshMipsIndex lsh(planted.data, &transform, base, lsh_params, &rng);

  struct Expectation {
    const MipsIndex* index;
    double min_recall;
  };
  const Expectation expectations[] = {
      {&brute, 1.0},   // exact
      {&tree, 1.0},    // exact
      {&sketch, 0.8},  // randomized; planted pairs dominate strongly
      {&lsh, 0.85},    // high collision probability at cosine ~0.85
  };
  for (const auto& [index, min_recall] : expectations) {
    const JoinResult result = IndexJoin(*index, planted.queries, spec);
    double recall = 0.0;
    VerifyJoinContract(result, truth, spec, &recall);
    EXPECT_GE(recall, min_recall) << index->Name();
  }
}

TEST(IntegrationTest, UnsignedJoinViaSignedJoins) {
  // The paper's observation: unsigned join = signed join of (P, Q) union
  // signed join of (P, -Q), keeping pairs with |p^T q| >= threshold.
  Rng rng(17);
  const Matrix data = MakeUnitBallGaussian(200, 8, 0.5, &rng);
  Matrix queries = MakeUnitBallGaussian(30, 8, 0.9, &rng);
  JoinSpec unsigned_spec;
  unsigned_spec.s = 0.25;
  unsigned_spec.c = 0.99;
  unsigned_spec.is_signed = false;
  const JoinResult direct = ExactJoin(data, queries, unsigned_spec, nullptr);

  JoinSpec signed_spec = unsigned_spec;
  signed_spec.is_signed = true;
  Matrix negated = queries;
  for (double& v : negated.data()) v = -v;
  const JoinResult positive = ExactJoin(data, queries, signed_spec, nullptr);
  const JoinResult negative = ExactJoin(data, negated, signed_spec, nullptr);

  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    const bool direct_hit = direct.per_query[qi].has_value();
    const bool composed_hit = positive.per_query[qi].has_value() ||
                              negative.per_query[qi].has_value();
    EXPECT_EQ(direct_hit, composed_hit) << "query " << qi;
    if (direct_hit) {
      double best_composed = 0.0;
      if (positive.per_query[qi].has_value()) {
        best_composed =
            std::max(best_composed, positive.per_query[qi]->value);
      }
      if (negative.per_query[qi].has_value()) {
        best_composed =
            std::max(best_composed, negative.per_query[qi]->value);
      }
      EXPECT_NEAR(direct.per_query[qi]->value, best_composed, 1e-9);
    }
  }
}

TEST(IntegrationTest, RecommenderScenarioLshBeatsBruteOnWork) {
  // Latent-factor vectors with popularity skew: the ALSH index should
  // evaluate far fewer exact inner products than brute force at
  // near-perfect recall for strong matches.
  Rng rng(19);
  const std::size_t kDim = 24;
  const std::size_t kItems = 800;
  const PlantedInstance planted =
      MakePlantedInstance(kItems, 30, kDim, 0.9, 1.0, &rng);
  JoinSpec spec;
  spec.s = 0.8;
  spec.c = 0.75;
  spec.is_signed = true;
  const JoinResult truth =
      ExactJoin(planted.data, planted.queries, spec, nullptr);

  const DualBallTransform transform(kDim, 1.0);
  const SimHashFamily base(transform.output_dim());
  LshTableParams params;
  params.k = 10;
  params.l = 48;
  const LshMipsIndex lsh(planted.data, &transform, base, params, &rng);
  const JoinResult result = IndexJoin(lsh, planted.queries, spec);
  double recall = 0.0;
  VerifyJoinContract(result, truth, spec, &recall);
  EXPECT_GE(recall, 0.85);
  // Work: brute force costs kItems per query; LSH should cost far less.
  EXPECT_LT(result.inner_products, truth.inner_products / 3);
}

}  // namespace
}  // namespace ips
