// Cross-engine contract sweep: every MIPS engine must uphold the
// Definition 1 (cs, s) contract across a grid of workload shapes --
// dimensions, norms, signs, and threshold placements. Exact engines
// must reach recall 1; randomized engines must clear workload-specific
// floors. This is the library's consumer-facing guarantee, so it is
// tested wholesale rather than engine by engine.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/dataset.h"
#include "core/mips_index.h"
#include "core/norm_range_index.h"
#include "core/similarity_join.h"
#include "core/symmetric_index.h"
#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"

namespace ips {
namespace {

struct Workload {
  std::size_t n;
  std::size_t dim;
  double target;      // planted inner product
  double s;           // join threshold
  double c;           // approximation
  std::uint64_t seed;
};

class ContractSweep : public ::testing::TestWithParam<Workload> {
 protected:
  void SetUp() override {
    const Workload& w = GetParam();
    rng_ = std::make_unique<Rng>(w.seed);
    planted_ = MakePlantedInstance(w.n, 12, w.dim, w.target, 1.0,
                                   rng_.get());
    spec_.s = w.s;
    spec_.c = w.c;
    spec_.is_signed = true;
    truth_ = ExactJoin(planted_.data, planted_.queries, spec_, nullptr);
  }

  double RecallOf(const MipsIndex& index) {
    const JoinResult result = IndexJoin(index, planted_.queries, spec_);
    double recall = 0.0;
    VerifyJoinContract(result, truth_, spec_, &recall);
    return recall;
  }

  std::unique_ptr<Rng> rng_;
  PlantedInstance planted_;
  JoinSpec spec_;
  JoinResult truth_;
};

TEST_P(ContractSweep, ExactEnginesReachFullRecall) {
  const BruteForceIndex brute(planted_.data);
  EXPECT_DOUBLE_EQ(RecallOf(brute), 1.0);
  const TreeMipsIndex tree(planted_.data, 8, rng_.get());
  EXPECT_DOUBLE_EQ(RecallOf(tree), 1.0);
  NormRangeParams lemp_params;
  lemp_params.bucket_size = 64;
  lemp_params.lsh_cosine_threshold = 2.0;  // always-exact bucket scans
  const NormRangeIndex lemp(planted_.data, lemp_params, rng_.get());
  EXPECT_DOUBLE_EQ(RecallOf(lemp), 1.0);
}

TEST_P(ContractSweep, AsymmetricLshClearsFloor) {
  const Workload& w = GetParam();
  const DualBallTransform transform(w.dim, 1.0);
  const SimHashFamily base(transform.output_dim());
  LshTableParams params;
  params.k = 8;
  params.l = 48;
  const LshMipsIndex index(planted_.data, &transform, base, params,
                           rng_.get());
  EXPECT_GE(RecallOf(index), 0.8) << "n=" << w.n << " dim=" << w.dim;
}

TEST_P(ContractSweep, SymmetricLshClearsFloor) {
  const Workload& w = GetParam();
  LshTableParams params;
  params.k = 8;
  params.l = 48;
  const SymmetricMipsIndex index(planted_.data, 0.1, params, rng_.get());
  EXPECT_GE(RecallOf(index), 0.8) << "n=" << w.n << " dim=" << w.dim;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ContractSweep,
    ::testing::Values(Workload{100, 8, 0.9, 0.8, 0.7, 1},
                      Workload{400, 16, 0.9, 0.8, 0.75, 2},
                      Workload{400, 32, 0.85, 0.75, 0.8, 3},
                      Workload{800, 24, 0.9, 0.85, 0.7, 4},
                      Workload{200, 48, 0.95, 0.9, 0.9, 5}));

TEST(ContractEdgeTest, NoPromisedQueriesMeansVacuousSuccess) {
  // Thresholds above every inner product: the contract holds trivially
  // and the verifier reports recall 1 with zero violations.
  Rng rng(7);
  const Matrix data = MakeUnitBallGaussian(50, 8, 0.3, &rng);
  const Matrix queries = MakeUnitBallGaussian(5, 8, 0.5, &rng);
  JoinSpec spec;
  spec.s = 10.0;
  spec.c = 0.5;
  spec.is_signed = true;
  const JoinResult truth = ExactJoin(data, queries, spec, nullptr);
  const BruteForceIndex brute(data);
  const JoinResult result = IndexJoin(brute, queries, spec);
  double recall = 0.0;
  EXPECT_EQ(VerifyJoinContract(result, truth, spec, &recall), 0u);
  EXPECT_DOUBLE_EQ(recall, 1.0);
}

TEST(ContractEdgeTest, UnsignedContractOnNegativePlants) {
  // Plant strongly *negative* pairs; the unsigned join must find them,
  // the signed join must not.
  Rng rng(11);
  const std::size_t kDim = 24;
  PlantedInstance planted = MakePlantedInstance(300, 10, kDim, 0.9, 1.0,
                                                &rng);
  // Negate the planted data rows: planted products become ~-0.9.
  for (std::size_t qi = 0; qi < 10; ++qi) {
    for (double& v : planted.data.Row(planted.plants[qi])) v = -v;
  }
  JoinSpec unsigned_spec;
  unsigned_spec.s = 0.8;
  unsigned_spec.c = 0.75;
  unsigned_spec.is_signed = false;
  const JoinResult unsigned_truth =
      ExactJoin(planted.data, planted.queries, unsigned_spec, nullptr);
  EXPECT_EQ(unsigned_truth.NumMatched(), 10u);

  JoinSpec signed_spec = unsigned_spec;
  signed_spec.is_signed = true;
  const JoinResult signed_truth =
      ExactJoin(planted.data, planted.queries, signed_spec, nullptr);
  EXPECT_EQ(signed_truth.NumMatched(), 0u);
}

}  // namespace
}  // namespace ips
