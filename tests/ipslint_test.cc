// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Tests for the project linter (tools/ipslint): rule-table parsing,
// comment/string stripping, path scoping, the allow-comment escape
// hatch, and the built-in stale-allow rule. The known-bad snippets are
// fed through LintText directly, so nothing here depends on the
// filesystem layout of the build.

#include "ipslint_lib.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace ips {
namespace lint {
namespace {

std::string Row(const std::string& name, const std::string& includes,
                const std::string& excludes, const std::string& regex,
                const std::string& message) {
  return name + "\t" + includes + "\t" + excludes + "\t" + regex + "\t" +
         message + "\n";
}

// A miniature mirror of tools/ipslint.rules exercising every feature:
// include scoping, exclude scoping, and statement-anchored regexes.
std::vector<LintRule> TestRules() {
  std::string table;
  table += Row("rng-outside-rng", "src", "src/rng",
               R"(std::(mt19937|uniform_real_distribution)\b|\brand\s*\()",
               "use ips::Rng");
  table += Row("stdout-in-lib", "src", "-", R"(std::cout\b|\bprintf\s*\()",
               "no stdout in libraries");
  table += Row("naked-thread", "src", "src/util/thread_pool",
               R"(std::j?thread\b)", "use util::ThreadPool");
  table += Row("check-in-query", "src/serve/engine.cc", "-", R"(\bIPS_CHECK)",
               "return Status in query paths");
  table += Row("status-discard", "-", "-",
               R"(^\s*(?:[A-Za-z_][A-Za-z0-9_]*(?:\.|->|::))*)"
               R"((?:Create|Submit|Validate[A-Za-z]*)\s*\([^;{}]*\)\s*;\s*$)",
               "discarded Status");
  table += Row("raw-dot", "src", "src/linalg",
               R"(^\s*\w+\s*\+=\s*[\w.>-]*\w\[[^\]]+\]\s*\*\s*)"
               R"([\w.>-]*\w\[[^\]]+\])",
               "use linalg::kernels");
  auto rules = ParseRules(table);
  EXPECT_TRUE(rules.ok()) << rules.status().ToString();
  return *std::move(rules);
}

std::vector<LintFinding> RunLint(const std::string& path,
                                 const std::string& text) {
  static const std::vector<LintRule> rules = TestRules();
  return LintText(rules, path, text);
}

TEST(ParseRules, AcceptsCommentsAndBlankLines) {
  const auto rules = ParseRules("# comment\n\n" +
                                Row("r1", "-", "-", "abc", "msg"));
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ((*rules)[0].name, "r1");
  EXPECT_TRUE((*rules)[0].include_prefixes.empty());
}

TEST(ParseRules, RejectsWrongFieldCount) {
  const auto rules = ParseRules("just\tthree\tfields\n");
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseRules, RejectsDuplicateName) {
  const auto rules = ParseRules(Row("r1", "-", "-", "a", "m") +
                                Row("r1", "-", "-", "b", "m"));
  ASSERT_FALSE(rules.ok());
  EXPECT_NE(rules.status().message().find("duplicate"), std::string::npos);
}

TEST(ParseRules, RejectsReservedStaleAllowName) {
  const auto rules =
      ParseRules(Row(std::string(kStaleAllowRule), "-", "-", "a", "m"));
  ASSERT_FALSE(rules.ok());
  EXPECT_NE(rules.status().message().find("reserved"), std::string::npos);
}

TEST(ParseRules, RejectsInvalidRegex) {
  const auto rules = ParseRules(Row("r1", "-", "-", "(unclosed", "m"));
  ASSERT_FALSE(rules.ok());
  EXPECT_NE(rules.status().message().find("invalid regex"),
            std::string::npos);
}

TEST(Lint, BannedRngFiresExactlyOnce) {
  const auto findings =
      RunLint("src/lsh/foo.cc", "void F() {\n  std::mt19937 gen(42);\n}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "rng-outside-rng");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[0].excerpt, "std::mt19937 gen(42);");
}

TEST(Lint, RngRuleScopedByPath) {
  const std::string bad = "std::mt19937 gen(42);\n";
  // src/rng is the excluded home of the RNG layer; tests/ is outside the
  // rule's include scope entirely.
  EXPECT_TRUE(RunLint("src/rng/random.cc", bad).empty());
  EXPECT_TRUE(RunLint("tests/foo_test.cc", bad).empty());
  EXPECT_EQ(RunLint("src/core/foo.cc", bad).size(), 1u);
}

TEST(Lint, StdoutInLibraryFires) {
  const auto findings =
      RunLint("src/serve/engine.cc", "  std::cout << \"debug\\n\";\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "stdout-in-lib");
}

TEST(Lint, BannedConstructInsideStringOrCommentDoesNotFire) {
  // The scanner strips string literals, character literals, raw strings
  // and comments before matching, so *talking about* a banned construct
  // never trips a rule.
  EXPECT_TRUE(
      RunLint("src/a.cc", "const char* s = \"std::mt19937 gen;\";\n").empty());
  EXPECT_TRUE(
      RunLint("src/a.cc", "const char* s = R\"(std::cout << x;)\";\n").empty());
  EXPECT_TRUE(RunLint("src/a.cc", "// std::thread t;\n").empty());
  EXPECT_TRUE(RunLint("src/a.cc", "/* std::mt19937\n   std::cout */\n").empty());
}

TEST(Lint, NakedThreadFires) {
  const auto findings =
      RunLint("src/serve/foo.cc", "  std::thread worker([] {});\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "naked-thread");
  // The ThreadPool implementation itself is the one sanctioned home.
  EXPECT_TRUE(
      RunLint("src/util/thread_pool.cc", "  std::thread worker([] {});\n")
          .empty());
  // std::this_thread is not std::thread.
  EXPECT_TRUE(
      RunLint("src/serve/foo.cc", "  std::this_thread::yield();\n").empty());
}

TEST(Lint, AllowCommentSuppressesExactlyThatRule) {
  const auto suppressed = RunLint(
      "src/serve/engine.cc",
      "  IPS_CHECK(ptr != nullptr);  // ipslint:allow(check-in-query)\n");
  EXPECT_TRUE(suppressed.empty());
  // The same allow-comment does not blanket other rules on the line.
  const auto other = RunLint(
      "src/serve/engine.cc",
      "  IPS_CHECK(x); std::cout << x;  // ipslint:allow(check-in-query)\n");
  ASSERT_EQ(other.size(), 1u);
  EXPECT_EQ(other[0].rule, "stdout-in-lib");
}

TEST(Lint, StaleAllowCommentFiresExactlyOnce) {
  const auto findings =
      RunLint("src/a.cc", "int x = 1;  // ipslint:allow(no-such-rule)\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kStaleAllowRule);
  EXPECT_NE(findings[0].message.find("no-such-rule"), std::string::npos);
}

TEST(Lint, DiscardedStatusFiresOnBareCallStatement) {
  const auto findings =
      RunLint("tests/foo_test.cc", "void F() {\n  Index::Create(data, rng);\n}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "status-discard");
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(Lint, DiscardedStatusSkipsConsumedCalls) {
  // Assigned, void-cast, and macro-wrapped calls all consume the result.
  EXPECT_TRUE(RunLint("src/a.cc", "  auto idx = Index::Create(data);\n").empty());
  EXPECT_TRUE(RunLint("src/a.cc", "  (void)Index::Create(data);\n").empty());
  EXPECT_TRUE(
      RunLint("src/a.cc", "  IPS_RETURN_IF_ERROR(ValidateDims(m, d));\n").empty());
}

TEST(Lint, DiscardedStatusSkipsContinuationLines) {
  // `^` anchors to statement starts: the wrapped second line of an
  // assignment must not look like a bare discarded call.
  const std::string wrapped =
      "  auto idx =\n      Index::Create(data, rng);\n";
  EXPECT_TRUE(RunLint("src/a.cc", wrapped).empty());
  const std::string wrapped_macro =
      "  IPS_RETURN_IF_ERROR(\n      ValidateDims(m, d, \"x\"));\n";
  EXPECT_TRUE(RunLint("src/a.cc", wrapped_macro).empty());
}

TEST(Lint, RawDotLoopFiresOutsideLinalg) {
  const std::string bad =
      "void F() {\n  for (i = 0; i < n; ++i) {\n"
      "    acc += x[i] * y[i];\n  }\n}\n";
  const auto findings = RunLint("src/tree/foo.cc", bad);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-dot");
  EXPECT_EQ(findings[0].line, 3u);
  // The kernels layer is the sanctioned home of raw accumulation.
  EXPECT_TRUE(RunLint("src/linalg/kernels.cc", bad).empty());
}

TEST(Lint, RawDotAllowsNonDotAccumulation) {
  // Scatter into an indexed destination (count-sketch style) is not a
  // dot product: the LHS is not a plain accumulator.
  EXPECT_TRUE(
      RunLint("src/sketch/f.cc", "  out[buckets_[j]] += signs_[j] * x[j];\n")
          .empty());
  // Squared-difference accumulation has no subscripted product.
  EXPECT_TRUE(RunLint("src/core/f.cc", "  sum += diff * diff;\n").empty());
  // The escape hatch works like any other rule.
  EXPECT_TRUE(
      RunLint("src/core/f.cc",
              "  acc += x[i] * y[i];  // ipslint:allow(raw-dot)\n")
          .empty());
}

TEST(Lint, FindingFormatIsFileLineRuleMessage) {
  const auto findings = RunLint("src/a.cc", "std::cout << 1;\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string formatted = FormatFinding(findings[0]);
  EXPECT_NE(formatted.find("src/a.cc:1: [stdout-in-lib]"), std::string::npos);
  EXPECT_NE(formatted.find("std::cout << 1;"), std::string::npos);
}

TEST(Lint, RealRuleTableParses) {
  // Guard the checked-in table itself: nine rules, all regexes valid.
  const auto rules =
      LoadRules(std::string(IPS_REPO_ROOT) + "/tools/ipslint.rules");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->size(), 9u);
}

TEST(SplitCodeAndComments, TracksMultiLineConstructs) {
  std::vector<std::string> code;
  std::vector<std::string> comments;
  internal::SplitCodeAndComments(
      "int a; /* span\nstill comment */ int b; // tail\n", &code, &comments);
  ASSERT_EQ(code.size(), 2u);
  EXPECT_NE(code[0].find("int a;"), std::string::npos);
  EXPECT_EQ(code[0].find("span"), std::string::npos);
  EXPECT_NE(code[1].find("int b;"), std::string::npos);
  EXPECT_EQ(code[1].find("tail"), std::string::npos);
  EXPECT_NE(comments[0].find("span"), std::string::npos);
  EXPECT_NE(comments[1].find("tail"), std::string::npos);
}

}  // namespace
}  // namespace lint
}  // namespace ips
