// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Tests for the project linter/analyzer (tools/ipslint): rule-table
// parsing, comment/string stripping, path scoping, the allow-comment
// escape hatch, the built-in stale-allow rule, and the three
// whole-program passes (layering, lock-order, failpoint-coverage) —
// each proven to fire on a planted violation and to stay quiet on the
// benign twin. The known-bad snippets are fed through LintText /
// Analyze* directly, so only the tree-wide clean-on-HEAD tests touch
// the real checkout (via IPS_REPO_ROOT).

#include "ipslint_lib.h"

#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "ipslint_analysis.h"

namespace ips {
namespace lint {
namespace {

std::string Row(const std::string& name, const std::string& includes,
                const std::string& excludes, const std::string& regex,
                const std::string& message) {
  return name + "\t" + includes + "\t" + excludes + "\t" + regex + "\t" +
         message + "\n";
}

// A miniature mirror of tools/ipslint.rules exercising every feature:
// include scoping, exclude scoping, and statement-anchored regexes.
std::vector<LintRule> TestRules() {
  std::string table;
  table += Row("rng-outside-rng", "src", "src/rng",
               R"(std::(mt19937|uniform_real_distribution)\b|\brand\s*\()",
               "use ips::Rng");
  table += Row("stdout-in-lib", "src", "-", R"(std::cout\b|\bprintf\s*\()",
               "no stdout in libraries");
  table += Row("naked-thread", "src", "src/util/thread_pool",
               R"(std::j?thread\b)", "use util::ThreadPool");
  table += Row("check-in-query", "src/serve/engine.cc", "-", R"(\bIPS_CHECK)",
               "return Status in query paths");
  table += Row("status-discard", "-", "-",
               R"(^\s*(?:[A-Za-z_][A-Za-z0-9_]*(?:\.|->|::))*)"
               R"((?:Create|Submit|Validate[A-Za-z]*)\s*\([^;{}]*\)\s*;\s*$)",
               "discarded Status");
  table += Row("raw-dot", "src", "src/linalg",
               R"(^\s*\w+\s*\+=\s*[\w.>-]*\w\[[^\]]+\]\s*\*\s*)"
               R"([\w.>-]*\w\[[^\]]+\])",
               "use linalg::kernels");
  auto rules = ParseRules(table);
  EXPECT_TRUE(rules.ok()) << rules.status().ToString();
  return *std::move(rules);
}

std::vector<LintFinding> RunLint(const std::string& path,
                                 const std::string& text) {
  static const std::vector<LintRule> rules = TestRules();
  return LintText(rules, path, text);
}

TEST(ParseRules, AcceptsCommentsAndBlankLines) {
  const auto rules = ParseRules("# comment\n\n" +
                                Row("r1", "-", "-", "abc", "msg"));
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ((*rules)[0].name, "r1");
  EXPECT_TRUE((*rules)[0].include_prefixes.empty());
}

TEST(ParseRules, RejectsWrongFieldCount) {
  const auto rules = ParseRules("just\tthree\tfields\n");
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseRules, RejectsDuplicateName) {
  const auto rules = ParseRules(Row("r1", "-", "-", "a", "m") +
                                Row("r1", "-", "-", "b", "m"));
  ASSERT_FALSE(rules.ok());
  EXPECT_NE(rules.status().message().find("duplicate"), std::string::npos);
}

TEST(ParseRules, RejectsReservedStaleAllowName) {
  const auto rules =
      ParseRules(Row(std::string(kStaleAllowRule), "-", "-", "a", "m"));
  ASSERT_FALSE(rules.ok());
  EXPECT_NE(rules.status().message().find("reserved"), std::string::npos);
}

TEST(ParseRules, RejectsInvalidRegex) {
  const auto rules = ParseRules(Row("r1", "-", "-", "(unclosed", "m"));
  ASSERT_FALSE(rules.ok());
  EXPECT_NE(rules.status().message().find("invalid regex"),
            std::string::npos);
}

TEST(Lint, BannedRngFiresExactlyOnce) {
  const auto findings =
      RunLint("src/lsh/foo.cc", "void F() {\n  std::mt19937 gen(42);\n}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "rng-outside-rng");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[0].excerpt, "std::mt19937 gen(42);");
}

TEST(Lint, RngRuleScopedByPath) {
  const std::string bad = "std::mt19937 gen(42);\n";
  // src/rng is the excluded home of the RNG layer; tests/ is outside the
  // rule's include scope entirely.
  EXPECT_TRUE(RunLint("src/rng/random.cc", bad).empty());
  EXPECT_TRUE(RunLint("tests/foo_test.cc", bad).empty());
  EXPECT_EQ(RunLint("src/core/foo.cc", bad).size(), 1u);
}

TEST(Lint, StdoutInLibraryFires) {
  const auto findings =
      RunLint("src/serve/engine.cc", "  std::cout << \"debug\\n\";\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "stdout-in-lib");
}

TEST(Lint, BannedConstructInsideStringOrCommentDoesNotFire) {
  // The scanner strips string literals, character literals, raw strings
  // and comments before matching, so *talking about* a banned construct
  // never trips a rule.
  EXPECT_TRUE(
      RunLint("src/a.cc", "const char* s = \"std::mt19937 gen;\";\n").empty());
  EXPECT_TRUE(
      RunLint("src/a.cc", "const char* s = R\"(std::cout << x;)\";\n").empty());
  EXPECT_TRUE(RunLint("src/a.cc", "// std::thread t;\n").empty());
  EXPECT_TRUE(RunLint("src/a.cc", "/* std::mt19937\n   std::cout */\n").empty());
}

TEST(Lint, NakedThreadFires) {
  const auto findings =
      RunLint("src/serve/foo.cc", "  std::thread worker([] {});\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "naked-thread");
  // The ThreadPool implementation itself is the one sanctioned home.
  EXPECT_TRUE(
      RunLint("src/util/thread_pool.cc", "  std::thread worker([] {});\n")
          .empty());
  // std::this_thread is not std::thread.
  EXPECT_TRUE(
      RunLint("src/serve/foo.cc", "  std::this_thread::yield();\n").empty());
}

TEST(Lint, AllowCommentSuppressesExactlyThatRule) {
  const auto suppressed = RunLint(
      "src/serve/engine.cc",
      "  IPS_CHECK(ptr != nullptr);  // ipslint:allow(check-in-query)\n");
  EXPECT_TRUE(suppressed.empty());
  // The same allow-comment does not blanket other rules on the line.
  const auto other = RunLint(
      "src/serve/engine.cc",
      "  IPS_CHECK(x); std::cout << x;  // ipslint:allow(check-in-query)\n");
  ASSERT_EQ(other.size(), 1u);
  EXPECT_EQ(other[0].rule, "stdout-in-lib");
}

TEST(Lint, StaleAllowCommentFiresExactlyOnce) {
  const auto findings =
      RunLint("src/a.cc", "int x = 1;  // ipslint:allow(no-such-rule)\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kStaleAllowRule);
  EXPECT_NE(findings[0].message.find("no-such-rule"), std::string::npos);
}

TEST(Lint, DiscardedStatusFiresOnBareCallStatement) {
  const auto findings =
      RunLint("tests/foo_test.cc", "void F() {\n  Index::Create(data, rng);\n}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "status-discard");
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(Lint, DiscardedStatusSkipsConsumedCalls) {
  // Assigned, void-cast, and macro-wrapped calls all consume the result.
  EXPECT_TRUE(RunLint("src/a.cc", "  auto idx = Index::Create(data);\n").empty());
  EXPECT_TRUE(RunLint("src/a.cc", "  (void)Index::Create(data);\n").empty());
  EXPECT_TRUE(
      RunLint("src/a.cc", "  IPS_RETURN_IF_ERROR(ValidateDims(m, d));\n").empty());
}

TEST(Lint, DiscardedStatusSkipsContinuationLines) {
  // `^` anchors to statement starts: the wrapped second line of an
  // assignment must not look like a bare discarded call.
  const std::string wrapped =
      "  auto idx =\n      Index::Create(data, rng);\n";
  EXPECT_TRUE(RunLint("src/a.cc", wrapped).empty());
  const std::string wrapped_macro =
      "  IPS_RETURN_IF_ERROR(\n      ValidateDims(m, d, \"x\"));\n";
  EXPECT_TRUE(RunLint("src/a.cc", wrapped_macro).empty());
}

TEST(Lint, RawDotLoopFiresOutsideLinalg) {
  const std::string bad =
      "void F() {\n  for (i = 0; i < n; ++i) {\n"
      "    acc += x[i] * y[i];\n  }\n}\n";
  const auto findings = RunLint("src/tree/foo.cc", bad);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-dot");
  EXPECT_EQ(findings[0].line, 3u);
  // The kernels layer is the sanctioned home of raw accumulation.
  EXPECT_TRUE(RunLint("src/linalg/kernels.cc", bad).empty());
}

TEST(Lint, RawDotAllowsNonDotAccumulation) {
  // Scatter into an indexed destination (count-sketch style) is not a
  // dot product: the LHS is not a plain accumulator.
  EXPECT_TRUE(
      RunLint("src/sketch/f.cc", "  out[buckets_[j]] += signs_[j] * x[j];\n")
          .empty());
  // Squared-difference accumulation has no subscripted product.
  EXPECT_TRUE(RunLint("src/core/f.cc", "  sum += diff * diff;\n").empty());
  // The escape hatch works like any other rule.
  EXPECT_TRUE(
      RunLint("src/core/f.cc",
              "  acc += x[i] * y[i];  // ipslint:allow(raw-dot)\n")
          .empty());
}

TEST(Lint, FindingFormatIsFileLineRuleMessage) {
  const auto findings = RunLint("src/a.cc", "std::cout << 1;\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string formatted = FormatFinding(findings[0]);
  EXPECT_NE(formatted.find("src/a.cc:1: [stdout-in-lib]"), std::string::npos);
  EXPECT_NE(formatted.find("std::cout << 1;"), std::string::npos);
}

TEST(Lint, RealRuleTableParses) {
  // Guard the checked-in table itself: ten rules, all regexes valid.
  const auto rules =
      LoadRules(std::string(IPS_REPO_ROOT) + "/tools/ipslint.rules");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->size(), 10u);
}

TEST(Lint, LegacySubmitSignatureIsRejectedByTheRealTable) {
  // The PR 10 API sweep removed Submit(std::vector<double>, ...) in
  // favor of Submit(const Request&); the checked-in table keeps the old
  // signature from creeping back anywhere in the tree.
  const auto rules =
      LoadRules(std::string(IPS_REPO_ROOT) + "/tools/ipslint.rules");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  const auto findings = LintText(
      *rules, "tests/some_test.cc",
      "auto f = scheduler.Submit(std::vector<double>(8, 0.1), options);\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "legacy-submit");
  // The Request form does not trip the rule.
  EXPECT_TRUE(
      LintText(
          *rules, "tests/some_test.cc",
          "auto f = scheduler.Submit({std::vector<double>(8, 0.1), opts});\n")
          .empty());
}

TEST(SplitCodeAndComments, TracksMultiLineConstructs) {
  std::vector<std::string> code;
  std::vector<std::string> comments;
  internal::SplitCodeAndComments(
      "int a; /* span\nstill comment */ int b; // tail\n", &code, &comments);
  ASSERT_EQ(code.size(), 2u);
  EXPECT_NE(code[0].find("int a;"), std::string::npos);
  EXPECT_EQ(code[0].find("span"), std::string::npos);
  EXPECT_NE(code[1].find("int b;"), std::string::npos);
  EXPECT_EQ(code[1].find("tail"), std::string::npos);
  EXPECT_NE(comments[0].find("span"), std::string::npos);
  EXPECT_NE(comments[1].find("tail"), std::string::npos);
}

TEST(SplitCodeAndComments, StringsChannelIsColumnAligned) {
  // The whole-program passes read literals (#include paths, failpoint
  // names) by merging the code line with its column-aligned string
  // contents.
  std::vector<std::string> code;
  std::vector<std::string> comments;
  std::vector<std::string> strings;
  internal::SplitCodeAndComments("IPS_FAILPOINT(\"io/read\");  // x\n", &code,
                                 &comments, &strings);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_NE(strings[0].find("io/read"), std::string::npos);
  EXPECT_EQ(code[0].find("io/read"), std::string::npos);
  const std::string merged =
      internal::MergeCodeAndStrings(code[0], strings[0]);
  // Merged text keeps the call shape with the literal readable inside.
  EXPECT_NE(merged.find("IPS_FAILPOINT"), std::string::npos);
  EXPECT_NE(merged.find("io/read"), std::string::npos);
}

TEST(ParseRules, RejectsReservedPassNames) {
  for (const std::string_view name :
       {kLayeringRule, kLockOrderRule, kFailpointCoverageRule}) {
    EXPECT_TRUE(IsBuiltinRule(name));
    const auto rules = ParseRules(Row(std::string(name), "-", "-", "a", "m"));
    ASSERT_FALSE(rules.ok());
    EXPECT_NE(rules.status().message().find("reserved"), std::string::npos);
  }
}

TEST(Lint, AllowCommentNamingAPassIsNotStale) {
  // `ipslint:allow(lock-order)` names a built-in pass, not a table rule;
  // the stale-allow check must know the pass names.
  EXPECT_TRUE(
      RunLint("src/a.cc", "int x;  // ipslint:allow(lock-order)\n").empty());
}

// --- Layering -------------------------------------------------------------

TEST(LayerTable, ParsesAndClosesTransitively) {
  const auto table = ParseLayerTable("util\t-\nrng\tutil\nlinalg\trng\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->order, (std::vector<std::string>{"util", "rng", "linalg"}));
  EXPECT_TRUE(table->closure.at("linalg").count("util"));  // via rng
  EXPECT_FALSE(table->closure.at("util").count("rng"));
}

TEST(LayerTable, RejectsForwardReferenceSoCyclesCannotBeDeclared) {
  // A dependency cycle would need at least one forward reference, which
  // the topological-order rule rejects.
  const auto table = ParseLayerTable("util\trng\nrng\tutil\n");
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("not declared above"),
            std::string::npos);
  EXPECT_FALSE(ParseLayerTable("util\tutil\n").ok());       // self-dep
  EXPECT_FALSE(ParseLayerTable("util\t-\nutil\t-\n").ok()); // duplicate
  EXPECT_FALSE(ParseLayerTable("util -\n").ok());           // no TAB
}

TEST(Layering, PlantedBackEdgeIsReportedAsCycle) {
  const auto table = ParseLayerTable("util\t-\nobs\tutil\n");
  ASSERT_TRUE(table.ok());
  const std::vector<SourceFile> files = {
      {"src/util/check.h", "#include \"obs/metrics.h\"\n"},
      {"src/obs/metrics.h", "#include \"util/check.h\"\n"},  // legal
  };
  const auto report = AnalyzeLayering(*table, files);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].file, "src/util/check.h");
  EXPECT_EQ(report.findings[0].line, 1u);
  EXPECT_EQ(report.findings[0].rule, kLayeringRule);
  EXPECT_NE(report.findings[0].message.find("cycle"), std::string::npos);
  EXPECT_EQ(report.files_checked, 2u);
}

TEST(Layering, UndeclaredDependencyIsReportedAsMissingDeclaration) {
  const auto table = ParseLayerTable("util\t-\nrng\tutil\nobs\tutil\n");
  ASSERT_TRUE(table.ok());
  // rng -> obs is no cycle (obs does not depend on rng), just undeclared.
  const std::vector<SourceFile> files = {
      {"src/rng/random.cc", "#include \"obs/metrics.h\"\n"},
  };
  const auto report = AnalyzeLayering(*table, files);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].message.find("undeclared"), std::string::npos);
  EXPECT_NE(report.findings[0].message.find("rng -> obs"), std::string::npos);
}

TEST(Layering, AllowCommentAndNonLayerIncludesAreQuiet) {
  const auto table = ParseLayerTable("util\t-\nobs\tutil\n");
  ASSERT_TRUE(table.ok());
  const std::vector<SourceFile> files = {
      {"src/util/check.h",
       "#include <vector>\n"
       "#include \"gtest/gtest.h\"\n"
       "#include \"obs/metrics.h\"  // ipslint:allow(layering)\n"},
  };
  const auto report = AnalyzeLayering(*table, files);
  EXPECT_TRUE(report.findings.empty());
}

// --- Lock order -----------------------------------------------------------

constexpr const char* kTwoMutexStruct =
    "struct S {\n"
    "  Mutex a;\n"
    "  Mutex b;\n"
    "};\n";

TEST(LockOrder, PlantedAbBaCycleIsAPotentialDeadlock) {
  const std::vector<SourceFile> files = {
      {"src/x/s.h", kTwoMutexStruct},
      {"src/x/f.cc",
       "void F(S& s) {\n"
       "  MutexLock la(s.a);\n"
       "  MutexLock lb(s.b);\n"
       "}\n"
       "void G(S& s) {\n"
       "  MutexLock lb(s.b);\n"
       "  MutexLock la(s.a);\n"
       "}\n"},
  };
  const auto report = AnalyzeLockOrder(files);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, kLockOrderRule);
  EXPECT_NE(report.findings[0].message.find("S::a -> S::b"),
            std::string::npos);
  EXPECT_NE(report.findings[0].message.find("S::b -> S::a"),
            std::string::npos);
  EXPECT_EQ(report.edges, 2u);
}

TEST(LockOrder, ConsistentNestingIsClean) {
  const std::vector<SourceFile> files = {
      {"src/x/s.h", kTwoMutexStruct},
      {"src/x/f.cc",
       "void F(S& s) { MutexLock la(s.a); MutexLock lb(s.b); }\n"
       "void G(S& s) { MutexLock la(s.a); MutexLock lb(s.b); }\n"},
  };
  const auto report = AnalyzeLockOrder(files);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.edges, 1u);  // a -> b, observed twice
}

TEST(LockOrder, ObservedNestingContradictingDeclaredOrderIsACycle) {
  const std::vector<SourceFile> files = {
      {"src/x/c.h",
       "class C {\n"
       "  Mutex a_ IPS_ACQUIRED_BEFORE(b_);\n"
       "  Mutex b_;\n"
       "};\n"},
      {"src/x/c.cc",
       "void C::F() {\n"
       "  MutexLock lb(b_);\n"
       "  MutexLock la(a_);\n"
       "}\n"},
  };
  const auto report = AnalyzeLockOrder(files);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].message.find("C::a_"), std::string::npos);
  EXPECT_NE(report.findings[0].message.find("C::b_"), std::string::npos);
}

TEST(LockOrder, AcquiredAfterDeclaresTheReverseEdge) {
  // BEFORE on one member and AFTER on the other describe the same
  // order; saying both is consistent, not a cycle.
  const std::vector<SourceFile> files = {
      {"src/x/c.h",
       "class C {\n"
       "  Mutex a_ IPS_ACQUIRED_BEFORE(b_);\n"
       "  Mutex b_ IPS_ACQUIRED_AFTER(a_);\n"
       "};\n"},
  };
  const auto report = AnalyzeLockOrder(files);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.edges, 1u);
}

TEST(LockOrder, SelfNestingIsFlagged) {
  const std::vector<SourceFile> files = {
      {"src/x/s.h", kTwoMutexStruct},
      {"src/x/f.cc",
       "void F(S& s, S& t) {\n"
       "  MutexLock ls(s.a);\n"
       "  MutexLock lt(t.a);\n"
       "}\n"},
  };
  const auto report = AnalyzeLockOrder(files);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].message.find("already"), std::string::npos);
  EXPECT_EQ(report.findings[0].line, 3u);
}

TEST(LockOrder, LambdaBodiesAreBarriers) {
  // The callback runs later, not under the enclosing lock: no a -> b
  // edge, so the observed b -> a order stands alone and is clean.
  const std::vector<SourceFile> files = {
      {"src/x/s.h", kTwoMutexStruct},
      {"src/x/f.cc",
       "void F(S& s) {\n"
       "  MutexLock la(s.a);\n"
       "  auto cb = [&s] {\n"
       "    MutexLock lb(s.b);\n"
       "  };\n"
       "  use(cb);\n"
       "}\n"
       "void G(S& s) { MutexLock lb(s.b); MutexLock la(s.a); }\n"},
  };
  const auto report = AnalyzeLockOrder(files);
  EXPECT_TRUE(report.findings.empty());
}

TEST(LockOrder, AllowCommentSuppressesTheEdge) {
  const std::vector<SourceFile> files = {
      {"src/x/s.h", kTwoMutexStruct},
      {"src/x/f.cc",
       "void F(S& s) { MutexLock la(s.a); MutexLock lb(s.b); }\n"
       "void G(S& s) {\n"
       "  MutexLock lb(s.b);\n"
       "  MutexLock la(s.a);  // ipslint:allow(lock-order)\n"
       "}\n"},
  };
  const auto report = AnalyzeLockOrder(files);
  EXPECT_TRUE(report.findings.empty());
}

TEST(LockOrder, ScopeExitReleasesBeforeTheNextAcquisition) {
  // Sequential (not nested) critical sections impose no order.
  const std::vector<SourceFile> files = {
      {"src/x/s.h", kTwoMutexStruct},
      {"src/x/f.cc",
       "void F(S& s) {\n"
       "  { MutexLock la(s.a); }\n"
       "  MutexLock lb(s.b);\n"
       "}\n"
       "void G(S& s) {\n"
       "  { MutexLock lb(s.b); }\n"
       "  MutexLock la(s.a);\n"
       "}\n"},
  };
  const auto report = AnalyzeLockOrder(files);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.edges, 0u);
}

// --- Failpoint coverage ---------------------------------------------------

TEST(FailpointCoverage, UnarmedSiteIsReported) {
  const std::vector<SourceFile> src = {
      {"src/io/f.cc",
       "Status F() {\n"
       "  IPS_FAILPOINT(\"io/read\");\n"
       "  IPS_FAILPOINT(\"io/rot\");\n"
       "  return Status::Ok();\n"
       "}\n"}};
  const std::vector<SourceFile> chaos = {
      {"tests/chaos_test.cc", "ScopedFailpoint fp(\"io/read\");\n"}};
  const auto report = AnalyzeFailpointCoverage(src, chaos);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, kFailpointCoverageRule);
  EXPECT_NE(report.findings[0].message.find("io/rot"), std::string::npos);
  EXPECT_EQ(report.findings[0].line, 3u);
  EXPECT_EQ(report.sites, 2u);
  EXPECT_EQ(report.armed, 1u);
}

TEST(FailpointCoverage, ScopedVariantArmsTheBaseSite) {
  // Arming "serve/shard/query/1" exercises the "serve/shard/query"
  // site (the per-shard helper hits base then scoped names).
  const std::vector<SourceFile> src = {
      {"src/serve/f.cc",
       "  IPS_RETURN_IF_ERROR(HitShardSite(\"serve/shard/query\", i));\n"}};
  const std::vector<SourceFile> chaos = {
      {"tests/chaos_test.cc",
       "Failpoints::Arm(\"serve/shard/query/1\", status, FireEvery{1});\n"}};
  const auto report = AnalyzeFailpointCoverage(src, chaos);
  EXPECT_TRUE(report.findings.empty());
}

TEST(FailpointCoverage, DynamicSitesAreCountedNotFlagged) {
  const std::vector<SourceFile> src = {
      {"src/util/f.cc", "  IPS_RETURN_IF_ERROR(Failpoints::Hit(name));\n"}};
  const auto report = AnalyzeFailpointCoverage(src, {});
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.dynamic_sites, 1u);
  EXPECT_EQ(report.sites, 0u);
}

TEST(FailpointCoverage, AllowCommentSuppressesTheSite) {
  const std::vector<SourceFile> src = {
      {"src/io/f.cc",
       "  IPS_FAILPOINT(\"io/unreachable\");"
       "  // ipslint:allow(failpoint-coverage)\n"}};
  const auto report = AnalyzeFailpointCoverage(src, {});
  EXPECT_TRUE(report.findings.empty());
}

// --- Tree-wide: the analyzer is clean on HEAD -----------------------------

/// Loads the real checkout with repo-relative paths, so rule prefixes
/// and the src/<layer>/ convention line up exactly as in the CLI run.
std::vector<SourceFile> LoadRepoTree(const std::vector<std::string>& dirs) {
  std::vector<std::string> roots;
  for (const std::string& dir : dirs) {
    roots.push_back(std::string(IPS_REPO_ROOT) + "/" + dir);
  }
  auto files = LoadSourceTree(roots);
  EXPECT_TRUE(files.ok()) << files.status().ToString();
  const std::string prefix = std::string(IPS_REPO_ROOT) + "/";
  for (SourceFile& file : *files) {
    EXPECT_EQ(file.path.rfind(prefix, 0), 0u) << file.path;
    file.path = file.path.substr(prefix.size());
  }
  return *std::move(files);
}

TEST(TreeWide, AnalyzerIsCleanOnHead) {
  const std::vector<SourceFile> tree =
      LoadRepoTree({"src", "tests", "examples", "bench", "tools"});
  ASSERT_GT(tree.size(), 100u);  // really scanned the checkout

  // Rules (incl. stale-allow): every allow-comment names a live rule.
  const auto rules =
      LoadRules(std::string(IPS_REPO_ROOT) + "/tools/ipslint.rules");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  for (const auto& finding : LintFiles(*rules, tree)) {
    ADD_FAILURE() << FormatFinding(finding);
  }

  // Layering: the checked-in table covers every src/ layer and edge.
  const auto table =
      LoadLayerTable(std::string(IPS_REPO_ROOT) + "/tools/ipslint.layers");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  const auto layering = AnalyzeLayering(*table, tree);
  for (const auto& finding : layering.findings) {
    ADD_FAILURE() << FormatFinding(finding);
  }
  EXPECT_GT(layering.files_checked, 50u);
  EXPECT_GT(layering.edges_checked, 100u);

  // Lock order: declared + observed edges stay acyclic.
  const auto locks = AnalyzeLockOrder(tree);
  for (const auto& finding : locks.findings) {
    ADD_FAILURE() << FormatFinding(finding);
  }
  EXPECT_GE(locks.locks, 5u);
  EXPECT_GE(locks.edges, 4u);

  // Failpoint coverage: every literal site is armed by the chaos suite.
  const std::vector<SourceFile> chaos = LoadRepoTree({"tests/chaos_test.cc"});
  const auto coverage = AnalyzeFailpointCoverage(tree, chaos);
  for (const auto& finding : coverage.findings) {
    ADD_FAILURE() << FormatFinding(finding);
  }
  EXPECT_GT(coverage.sites, 20u);
}

}  // namespace
}  // namespace lint
}  // namespace ips
