// Tests for src/sketch: CountSketch linearity, max-stability norm
// estimation, and the Section 4.3 MIPS index (value estimation, argmax
// recovery, unsigned search contract).

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/kernels.h"
#include "rng/random.h"
#include "sketch/count_sketch.h"
#include "sketch/max_stability.h"
#include "sketch/sketch_mips.h"
#include "util/stats.h"

namespace ips {
namespace {

TEST(CountSketchTest, IsLinear) {
  Rng rng(3);
  const CountSketch sketch(50, 10, &rng);
  std::vector<double> x(50), y(50);
  for (double& v : x) v = rng.NextGaussian();
  for (double& v : y) v = rng.NextGaussian();
  std::vector<double> sum(50);
  for (std::size_t i = 0; i < 50; ++i) sum[i] = 2.0 * x[i] - 3.0 * y[i];
  const auto sx = sketch.Apply(x);
  const auto sy = sketch.Apply(y);
  const auto ssum = sketch.Apply(sum);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_NEAR(ssum[b], 2.0 * sx[b] - 3.0 * sy[b], 1e-9);
  }
}

TEST(CountSketchTest, PreservesSquaredNormInExpectation) {
  Rng rng(5);
  std::vector<double> x(64);
  for (double& v : x) v = rng.NextGaussian();
  const double target = kernels::SquaredNorm(x);
  OnlineStats stats;
  for (int trial = 0; trial < 400; ++trial) {
    const CountSketch sketch(64, 16, &rng);
    stats.Add(kernels::SquaredNorm(sketch.Apply(x)));
  }
  EXPECT_NEAR(stats.Mean() / target, 1.0, 0.1);
}

TEST(CountSketchTest, SingleHeavyCoordinateSurvives) {
  Rng rng(7);
  std::vector<double> x(100, 0.0);
  x[42] = 10.0;
  for (int trial = 0; trial < 50; ++trial) {
    const CountSketch sketch(100, 20, &rng);
    const auto sx = sketch.Apply(x);
    EXPECT_DOUBLE_EQ(kernels::LInfNorm(sx), 10.0);  // alone in its bucket or not, the
                                           // only mass is x[42]
  }
}

class MaxStabilityKappaSweep : public ::testing::TestWithParam<double> {};

TEST_P(MaxStabilityKappaSweep, EstimatesLKappaNormWithinConstantFactor) {
  const double kappa = GetParam();
  Rng rng(11);
  const std::size_t kDim = 256;
  MaxStabilityParams params;
  params.kappa = kappa;
  params.copies = 9;
  params.bucket_multiplier = 6.0;
  std::vector<double> x(kDim);
  for (double& v : x) v = rng.NextGaussian();
  const double truth = kernels::LpNorm(x, kappa);
  // Median over sketches should land within a constant factor of the
  // true norm; check the typical ratio over repetitions.
  OnlineStats ratio;
  for (int trial = 0; trial < 30; ++trial) {
    const MaxStabilitySketch sketch(kDim, params, &rng);
    ratio.Add(sketch.EstimateNorm(x) / truth);
  }
  EXPECT_GT(ratio.Mean(), 0.4);
  EXPECT_LT(ratio.Mean(), 2.5);
}

INSTANTIATE_TEST_SUITE_P(Kappas, MaxStabilityKappaSweep,
                         ::testing::Values(2.0, 3.0, 4.0, 8.0));

TEST(MaxStabilityTest, SketchDimensionShrinksWithKappa) {
  Rng rng(13);
  const std::size_t kDim = 4096;
  MaxStabilityParams p2;
  p2.kappa = 2.0;
  MaxStabilityParams p8;
  p8.kappa = 8.0;
  const MaxStabilitySketch s2(kDim, p2, &rng);
  const MaxStabilitySketch s8(kDim, p8, &rng);
  // kappa = 2: m ~ n^0 (constant); kappa = 8: m ~ n^(3/4).
  EXPECT_LT(s2.buckets_per_copy(), s8.buckets_per_copy());
  EXPECT_LT(s8.buckets_per_copy(), kDim);
}

TEST(MaxStabilityTest, ApplyConcatenatesCopies) {
  Rng rng(17);
  MaxStabilityParams params;
  params.copies = 3;
  const MaxStabilitySketch sketch(32, params, &rng);
  std::vector<double> x(32, 1.0);
  EXPECT_EQ(sketch.Apply(x).size(), sketch.sketch_dim());
  EXPECT_EQ(sketch.sketch_dim(), 3 * sketch.buckets_per_copy());
}

TEST(MaxStabilityTest, SketchDataMatrixCommutesWithQuery) {
  // Pi (A q) must equal (Pi A) q -- the precomputation identity the MIPS
  // index relies on.
  Rng rng(19);
  const std::size_t kN = 40;
  const std::size_t kD = 8;
  Matrix a(kN, kD);
  for (double& v : a.data()) v = rng.NextGaussian();
  MaxStabilityParams params;
  params.copies = 2;
  const MaxStabilitySketch sketch(kN, params, &rng);
  const Matrix sketched = sketch.SketchDataMatrix(a, 0, kN);
  std::vector<double> q(kD);
  for (double& v : q) v = rng.NextGaussian();
  // Direct path: form Aq then sketch it.
  std::vector<double> aq(kN);
  for (std::size_t i = 0; i < kN; ++i) aq[i] = kernels::Dot(a.Row(i), q);
  const std::vector<double> direct = sketch.Apply(aq);
  // Precomputed path.
  ASSERT_EQ(sketched.rows(), direct.size());
  for (std::size_t r = 0; r < sketched.rows(); ++r) {
    EXPECT_NEAR(kernels::Dot(sketched.Row(r), q), direct[r], 1e-9);
  }
}

TEST(SketchMipsTest, EstimateTracksTrueMax) {
  Rng rng(23);
  const std::size_t kN = 128;
  const std::size_t kD = 16;
  Matrix data(kN, kD);
  for (double& v : data.data()) v = 0.05 * rng.NextGaussian();
  // One strong row.
  for (std::size_t j = 0; j < kD; ++j) data.At(7, j) = 1.0;
  SketchMipsParams params;
  params.kappa = 4.0;
  params.copies = 9;
  const SketchMipsIndex index(data, params, &rng);
  std::vector<double> q(kD, 1.0);
  double truth = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    truth = std::max(truth, std::abs(kernels::Dot(data.Row(i), q)));
  }
  const double estimate = index.EstimateMaxAbsInnerProduct(q);
  // ||x||_inf <= ||x||_kappa <= n^(1/kappa) ||x||_inf plus sketch noise:
  // allow a generous constant band around the truth.
  EXPECT_GT(estimate, 0.2 * truth);
  EXPECT_LT(estimate, 5.0 * truth * std::pow(kN, 1.0 / params.kappa));
}

TEST(SketchMipsTest, RecoversPlantedArgmax) {
  Rng rng(29);
  const std::size_t kN = 256;
  const std::size_t kD = 24;
  Matrix data(kN, kD);
  for (double& v : data.data()) v = 0.02 * rng.NextGaussian();
  const std::size_t kPlanted = 133;
  for (std::size_t j = 0; j < kD; ++j) data.At(kPlanted, j) = 1.0;
  SketchMipsParams params;
  params.kappa = 4.0;
  params.copies = 11;
  params.bucket_multiplier = 6.0;
  const SketchMipsIndex index(data, params, &rng);
  std::vector<double> q(kD, 1.0);
  // The planted row dominates every other |p^T q| by ~50x; the tree
  // descent must find it.
  EXPECT_EQ(index.RecoverArgmax(q), kPlanted);
}

TEST(SketchMipsTest, UnsignedSearchHonorsThreshold) {
  Rng rng(31);
  const std::size_t kN = 64;
  const std::size_t kD = 8;
  Matrix data(kN, kD);
  for (double& v : data.data()) v = 0.01 * rng.NextGaussian();
  for (std::size_t j = 0; j < kD; ++j) data.At(5, j) = -1.0;  // negative!
  SketchMipsParams params;
  params.copies = 9;
  const SketchMipsIndex index(data, params, &rng);
  std::vector<double> q(kD, 1.0);
  // |p_5^T q| = 8: unsigned search with s = 8, c = 0.5 must return 5.
  EXPECT_EQ(index.UnsignedSearch(q, 8.0, 0.5), 5u);
  // With an unreachable threshold it reports "no result".
  EXPECT_EQ(index.UnsignedSearch(q, 1000.0, 0.5), kN);
}

TEST(SketchMipsTest, TinyDatasetFallsBackToExact) {
  Rng rng(37);
  Matrix data(4, 4);
  for (double& v : data.data()) v = rng.NextGaussian();
  SketchMipsParams params;
  params.leaf_size = 8;  // root is a leaf
  const SketchMipsIndex index(data, params, &rng);
  std::vector<double> q(4, 1.0);
  double truth = 0.0;
  std::size_t arg = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const double v = std::abs(kernels::Dot(data.Row(i), q));
    if (v > truth) {
      truth = v;
      arg = i;
    }
  }
  EXPECT_EQ(index.RecoverArgmax(q), arg);
  EXPECT_DOUBLE_EQ(index.EstimateMaxAbsInnerProduct(q), truth);
}

TEST(SketchMipsTest, SketchRowsSublinearInN) {
  Rng rng(41);
  SketchMipsParams params;
  params.kappa = 4.0;
  params.copies = 3;
  params.bucket_multiplier = 1.0;
  Matrix small(256, 4);
  Matrix large(4096, 4);
  for (double& v : small.data()) v = rng.NextGaussian();
  for (double& v : large.data()) v = rng.NextGaussian();
  const SketchMipsIndex small_index(small, params, &rng);
  const SketchMipsIndex large_index(large, params, &rng);
  // The per-query cost is dominated by the root sketch, whose row count
  // grows like n^(1 - 2/kappa) = sqrt(n) at kappa = 4: a 16x larger data
  // set should cost only ~4x more per query.
  const double growth = static_cast<double>(large_index.RootSketchRows()) /
                        static_cast<double>(small_index.RootSketchRows());
  EXPECT_LT(growth, 6.0);
  EXPECT_GT(growth, 2.0);
  // Total space is superlinear in the sketch rows but each data vector
  // appears in only O(log n) node sketches.
  EXPECT_GT(large_index.TotalSketchRows(), large_index.RootSketchRows());
}

TEST(CmipsScalingTest, StepCount) {
  // gamma already >= s: no scaling needed.
  EXPECT_EQ(CmipsQueryScalingSteps(1.0, 0.5, 2.0), 0u);
  // gamma = s/8, c = 1/2: 3 doublings.
  EXPECT_EQ(CmipsQueryScalingSteps(8.0, 0.5, 1.0), 3u);
  // Matches ceil(log_{1/c}(s/gamma)).
  EXPECT_EQ(CmipsQueryScalingSteps(10.0, 0.9, 1.0),
            static_cast<std::size_t>(
                std::ceil(std::log(10.0) / std::log(1.0 / 0.9))));
}

}  // namespace
}  // namespace ips
