// Tests for the executable Lemma 4 mass accounting
// (theory/lemma4_accounting.h): classification totals, the proof's
// inequality chain on real hash families, and degenerate families.

#include <gtest/gtest.h>

#include <cmath>

#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "theory/hard_sequences.h"
#include "theory/lemma4.h"
#include "theory/lemma4_accounting.h"

namespace ips {
namespace {

// A family that hashes every vector to the same bucket: all nodes
// collide always. Useful for exact accounting checks.
class ConstantFamily : public LshFamily {
 public:
  explicit ConstantFamily(std::size_t dim) : dim_(dim) {}
  std::string Name() const override { return "constant"; }
  std::size_t dim() const override { return dim_; }
  std::unique_ptr<LshFunction> Sample(Rng*) const override {
    class F : public SymmetricLshFunction {
      std::uint64_t HashData(std::span<const double>) const override {
        return 0;
      }
    };
    return std::make_unique<F>();
  }

 private:
  std::size_t dim_;
};

// A family whose hash is unique per vector except that query i and data
// j collide iff i == j == 0 -- a single isolated collision.
class DiagonalZeroFamily : public LshFamily {
 public:
  explicit DiagonalZeroFamily(std::size_t dim) : dim_(dim) {}
  std::string Name() const override { return "diag-zero"; }
  std::size_t dim() const override { return dim_; }
  std::unique_ptr<LshFunction> Sample(Rng*) const override {
    class F : public LshFunction {
     public:
      std::uint64_t HashData(std::span<const double> p) const override {
        // Identify the data row by its content hash, except row marker 0.
        return p[0] == 0.0 ? 0 : Fingerprint(p, 0x1111);
      }
      std::uint64_t HashQuery(std::span<const double> q) const override {
        return q[0] == 0.0 ? 0 : Fingerprint(q, 0x2222);
      }

     private:
      static std::uint64_t Fingerprint(std::span<const double> x,
                                       std::uint64_t salt) {
        std::uint64_t state = salt;
        for (double v : x) {
          std::uint64_t bits;
          __builtin_memcpy(&bits, &v, sizeof(bits));
          state ^= bits;
          state = SplitMix64(state);
        }
        return state | 1;  // never the shared bucket 0
      }
    };
    return std::make_unique<F>();
  }

 private:
  std::size_t dim_;
};

HardSequences TrivialSequences(std::size_t n, std::size_t dim) {
  // Synthetic staircase container just to carry vectors; the accounting
  // only uses the vectors and the grid size.
  HardSequences sequences;
  sequences.s = 1.0;
  sequences.c = 0.5;
  sequences.U = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(dim, 0.0);
    row[0] = static_cast<double>(i);  // row 0 gets the 0 marker
    sequences.data.AppendRow(row);
    sequences.queries.AppendRow(row);
  }
  return sequences;
}

TEST(AccountingTest, ConstantFamilyMassesAreProperOrShared) {
  // Under the constant family every P1-node (i, j) has every possible
  // K-neighbor, so all nodes with both outer neighbors are shared; the
  // accounting must classify deterministically with total mass 1.
  const HardSequences sequences = TrivialSequences(7, 4);
  Rng rng(3);
  const ConstantFamily family(4);
  const MassAccounting accounting =
      ComputeLemma4Accounting(family, sequences, 10, &rng);
  EXPECT_EQ(accounting.n, 7u);
  EXPECT_EQ(accounting.ell, 3u);
  EXPECT_DOUBLE_EQ(accounting.p1_hat, 1.0);
  EXPECT_DOUBLE_EQ(accounting.p2_hat, 1.0);
  // Every P1 node's mass decomposes: proper + ps + shared == 1.
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = i; j < 7; ++j) {
      const double total = accounting.proper_mass.At(i, j) +
                           accounting.partially_shared_mass.At(i, j) +
                           accounting.shared_mass.At(i, j);
      EXPECT_DOUBLE_EQ(total, 1.0) << "(" << i << "," << j << ")";
    }
  }
  // With p2_hat = 1 the shared bound 2^{2r} p2 is trivially satisfied.
  EXPECT_TRUE(accounting.SharedMassBoundsHold(1e-9));
  EXPECT_TRUE(accounting.ProperMassBoundHolds(1e-9));
  EXPECT_TRUE(accounting.PartiallySharedBoundsHold(1e-9));
  EXPECT_TRUE(accounting.TotalMassLowerBoundsHold(1e-9));
}

TEST(AccountingTest, IsolatedCollisionIsProper) {
  // Only the node (0, 0) collides; it has no K-neighbors, so its mass
  // is entirely proper.
  const HardSequences sequences = TrivialSequences(3, 4);
  Rng rng(5);
  const DiagonalZeroFamily family(4);
  const MassAccounting accounting =
      ComputeLemma4Accounting(family, sequences, 5, &rng);
  EXPECT_DOUBLE_EQ(accounting.proper_mass.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(accounting.shared_mass.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(accounting.partially_shared_mass.At(0, 0), 0.0);
  // All other P1 nodes never collide.
  EXPECT_DOUBLE_EQ(accounting.proper_mass.At(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(accounting.p1_hat, 0.0);
}

TEST(AccountingTest, RealAlshSatisfiesInequalityChain) {
  // Dual-ball + SimHash on a case 1 staircase trimmed to 2^ell - 1.
  HardSequences sequences = MakeCase1Sequences(8, 100.0, 0.25, 0.7);
  ASSERT_GE(sequences.data.rows(), 31u);
  sequences = TrimSequences(sequences, 31);
  const SequenceCheck check = VerifyHardSequences(sequences);
  ASSERT_TRUE(check.staircase_ok);

  Rng rng(7);
  const DualBallTransform transform(sequences.data.cols(), sequences.U);
  const SimHashFamily base(transform.output_dim());
  const TransformedLshFamily family(&transform, &base);
  constexpr std::size_t kSamples = 1500;
  const MassAccounting accounting =
      ComputeLemma4Accounting(family, sequences, kSamples, &rng);
  const double slack = 5.0 / std::sqrt(static_cast<double>(kSamples));
  EXPECT_TRUE(accounting.ProperMassBoundHolds(0.0));  // structural
  EXPECT_TRUE(accounting.SharedMassBoundsHold(
      slack * 31.0));  // per-square, scaled slack
  EXPECT_TRUE(accounting.PartiallySharedBoundsHold(slack * 31.0));
  // The chained conclusion: with these masses, the lemma's final gap
  // bound applies; cross-check the direct measurement.
  const CollisionMatrix matrix(family, sequences, kSamples, &rng);
  EXPECT_LE(matrix.EmpiricalGap(), Lemma4GapBound(31) + 2.0 * slack);
}

TEST(AccountingTest, SquareAggregatesMatchNodeSums) {
  const HardSequences sequences = TrivialSequences(7, 4);
  Rng rng(11);
  const ConstantFamily family(4);
  const MassAccounting accounting =
      ComputeLemma4Accounting(family, sequences, 3, &rng);
  double total_from_squares = 0.0;
  for (const SquareMasses& entry : accounting.squares) {
    total_from_squares += entry.proper;
  }
  EXPECT_NEAR(total_from_squares, accounting.total_proper_mass, 1e-12);
  // 7x7 grid: 7 squares (ell = 3).
  EXPECT_EQ(accounting.squares.size(), 7u);
}

TEST(AccountingTest, RejectsNonPowerLengths) {
  const HardSequences sequences = TrivialSequences(6, 4);
  Rng rng(13);
  const ConstantFamily family(4);
  EXPECT_DEATH(ComputeLemma4Accounting(family, sequences, 2, &rng),
               "2\\^ell - 1");
}

}  // namespace
}  // namespace ips
