// Tests for top-k MIPS retrieval (core/top_k.h and the ball tree's
// k-best branch-and-bound).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/dataset.h"
#include "core/mips_index.h"
#include "core/top_k.h"
#include "linalg/kernels.h"
#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "tree/mips_tree.h"

namespace ips {
namespace {

struct TopKCase {
  std::size_t n;
  std::size_t dim;
  std::size_t k;
};

class TopKSweep : public ::testing::TestWithParam<TopKCase> {};

TEST_P(TopKSweep, BallTreeMatchesBruteForce) {
  const auto [n, dim, k] = GetParam();
  Rng rng(5);
  const Matrix data = MakeUnitBallGaussian(n, dim, 0.2, &rng);
  const MipsBallTree tree(data, 8, &rng);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(dim);
    for (double& v : q) v = rng.NextGaussian();
    const auto brute = TopKBruteForce(data, q, k, /*is_signed=*/true);
    const auto via_tree = TopKBallTree(tree, data, q, k);
    ASSERT_EQ(brute.size(), via_tree.size());
    for (std::size_t t = 0; t < brute.size(); ++t) {
      EXPECT_NEAR(brute[t].value, via_tree[t].value, 1e-9)
          << "rank " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TopKSweep,
                         ::testing::Values(TopKCase{50, 8, 1},
                                           TopKCase{200, 8, 5},
                                           TopKCase{200, 16, 10},
                                           TopKCase{500, 4, 3},
                                           TopKCase{64, 8, 64},
                                           TopKCase{30, 8, 100}));

TEST(TopKTest, BruteForceOrderingAndSize) {
  Rng rng(7);
  const Matrix data = MakeUnitBallGaussian(40, 6, 0.3, &rng);
  std::vector<double> q(6);
  for (double& v : q) v = rng.NextGaussian();
  const auto top = TopKBruteForce(data, q, 10, true);
  ASSERT_EQ(top.size(), 10u);
  for (std::size_t t = 1; t < top.size(); ++t) {
    EXPECT_GE(top[t - 1].value, top[t].value);
  }
  // Distinct indices.
  std::set<std::size_t> indices;
  for (const auto& match : top) indices.insert(match.index);
  EXPECT_EQ(indices.size(), top.size());
}

TEST(TopKTest, KLargerThanNReturnsAll) {
  Rng rng(11);
  const Matrix data = MakeUnitBallGaussian(7, 4, 0.3, &rng);
  std::vector<double> q(4, 1.0);
  EXPECT_EQ(TopKBruteForce(data, q, 100, true).size(), 7u);
}

TEST(TopKTest, UnsignedRanksByMagnitude) {
  Matrix data(3, 2);
  data.At(0, 0) = 0.5;    // +0.5
  data.At(1, 0) = -0.9;   // -0.9, |.| = 0.9
  data.At(2, 0) = 0.7;    // +0.7
  std::vector<double> q = {1.0, 0.0};
  const auto top = TopKBruteForce(data, q, 2, /*is_signed=*/false);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].index, 1u);  // |-0.9| wins
  EXPECT_EQ(top[1].index, 2u);
}

TEST(TopKTest, LshCandidatesRecoverPlantedTopOne) {
  Rng rng(13);
  const std::size_t kDim = 20;
  const PlantedInstance planted =
      MakePlantedInstance(500, 20, kDim, 0.9, 1.0, &rng);
  const DualBallTransform transform(kDim, 1.0);
  const SimHashFamily base(transform.output_dim());
  LshTableParams params;
  params.k = 8;
  params.l = 48;
  const LshMipsIndex index(planted.data, &transform, base, params, &rng);
  std::size_t hits = 0;
  for (std::size_t qi = 0; qi < planted.queries.rows(); ++qi) {
    const auto candidates = index.Candidates(planted.queries.Row(qi));
    const auto top = TopKFromCandidates(planted.data,
                                        planted.queries.Row(qi), candidates,
                                        5, /*is_signed=*/true);
    for (const auto& match : top) {
      if (match.index == planted.plants[qi]) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GE(hits, 18u);
}

TEST(TopKTest, TiesBreakTowardSmallerIndexDeterministically) {
  // Five identical rows plus one weaker row: every permutation of heap
  // evictions must still report indices 0..4 in ascending order.
  Matrix data(6, 3);
  for (std::size_t i = 0; i < 5; ++i) {
    data.At(i, 0) = 1.0;
  }
  data.At(5, 0) = 0.5;
  const std::vector<double> q = {1.0, 0.0, 0.0};
  const auto top = TopKBruteForce(data, q, 4, /*is_signed=*/true);
  ASSERT_EQ(top.size(), 4u);
  for (std::size_t t = 0; t < top.size(); ++t) {
    EXPECT_EQ(top[t].index, t);
    EXPECT_DOUBLE_EQ(top[t].value, 1.0);
  }
}

TEST(TopKTest, TreeTieOrderMatchesBruteForce) {
  // Duplicate rows force score ties; the tree's top-k must return the
  // same indices in the same order as the deterministic brute force,
  // regardless of tree structure.
  Rng rng(18);
  Matrix data = MakeUnitBallGaussian(100, 6, 0.2, &rng);
  for (std::size_t i = 0; i < 40; ++i) {
    const std::size_t src = i;
    const std::size_t dst = 50 + i;
    for (std::size_t j = 0; j < data.cols(); ++j) {
      data.At(dst, j) = data.At(src, j);
    }
  }
  const MipsBallTree tree(data, 8, &rng);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(6);
    for (double& v : q) v = rng.NextGaussian();
    const auto exact = TopKBruteForce(data, q, 7, /*is_signed=*/true);
    const auto via_tree = tree.QueryTopK(q, 7);
    ASSERT_EQ(via_tree.size(), exact.size());
    for (std::size_t t = 0; t < exact.size(); ++t) {
      EXPECT_EQ(via_tree[t].first, exact[t].index) << "rank " << t;
      EXPECT_NEAR(via_tree[t].second, exact[t].value, 1e-12);
    }
  }
}

TEST(TopKTest, TreeTopOneMatchesQueryMax) {
  Rng rng(17);
  const Matrix data = MakeUnitBallGaussian(300, 10, 0.2, &rng);
  const MipsBallTree tree(data, 16, &rng);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(10);
    for (double& v : q) v = rng.NextGaussian();
    const auto top1 = tree.QueryTopK(q, 1);
    const MipsResult max = tree.QueryMax(q);
    ASSERT_EQ(top1.size(), 1u);
    EXPECT_EQ(top1[0].first, max.index);
    EXPECT_NEAR(top1[0].second, max.value, 1e-12);
  }
}

}  // namespace
}  // namespace ips
