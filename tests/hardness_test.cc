// Tests for src/hardness: OVP instance generation, the exact solver,
// and the Lemma 2 reduction through each of the three gap embeddings.

#include <gtest/gtest.h>

#include "embed/binary_embedding.h"
#include "embed/chebyshev_embedding.h"
#include "embed/sign_embedding.h"
#include "hardness/ovp.h"
#include "hardness/reduction.h"
#include "rng/random.h"

namespace ips {
namespace {

TEST(OvpTest, GeneratorShapesAndDensity) {
  Rng rng(3);
  OvpOptions options;
  options.size_a = 100;
  options.size_b = 60;
  options.dim = 64;
  options.density = 0.25;
  options.plant_orthogonal_pair = false;
  const OvpInstance instance = GenerateOvpInstance(options, &rng);
  EXPECT_EQ(instance.a.rows(), 100u);
  EXPECT_EQ(instance.b.rows(), 60u);
  EXPECT_EQ(instance.a.cols(), 64u);
  EXPECT_FALSE(instance.planted.has_value());
  std::size_t ones = 0;
  for (std::size_t i = 0; i < instance.a.rows(); ++i) {
    ones += instance.a.RowPopcount(i);
  }
  const double density = ones / (100.0 * 64.0);
  EXPECT_NEAR(density, 0.25, 0.05);
}

TEST(OvpTest, PlantedPairIsOrthogonal) {
  Rng rng(5);
  OvpOptions options;
  options.plant_orthogonal_pair = true;
  const OvpInstance instance = GenerateOvpInstance(options, &rng);
  ASSERT_TRUE(instance.planted.has_value());
  const auto [pa, pb] = *instance.planted;
  EXPECT_TRUE(instance.a.OrthogonalRows(pa, instance.b, pb));
}

TEST(OvpTest, ExactSolverFindsPlantedPair) {
  Rng rng(7);
  OvpOptions options;
  options.size_a = 80;
  options.size_b = 80;
  options.dim = 48;  // dense instances: random pairs orthogonal w.p. ~0
  const OvpInstance instance = GenerateOvpInstance(options, &rng);
  const auto pair = SolveOvpExact(instance);
  ASSERT_TRUE(pair.has_value());
  EXPECT_TRUE(instance.a.OrthogonalRows(pair->first, instance.b,
                                        pair->second));
}

TEST(OvpTest, ExactSolverReportsNoneWhenNoneExists) {
  // All-ones instances have no orthogonal pair.
  OvpInstance instance;
  instance.a = BitMatrix(10, 16);
  instance.b = BitMatrix(10, 16);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      instance.a.Set(i, j, true);
      instance.b.Set(i, j, true);
    }
  }
  EXPECT_FALSE(SolveOvpExact(instance).has_value());
  EXPECT_EQ(CountOrthogonalPairs(instance), 0u);
}

TEST(OvpTest, CountMatchesSolverExistence) {
  Rng rng(11);
  OvpOptions options;
  options.size_a = 40;
  options.size_b = 40;
  options.dim = 20;
  options.density = 0.3;
  options.plant_orthogonal_pair = false;
  for (int trial = 0; trial < 5; ++trial) {
    const OvpInstance instance = GenerateOvpInstance(options, &rng);
    const bool exists = SolveOvpExact(instance).has_value();
    EXPECT_EQ(exists, CountOrthogonalPairs(instance) > 0);
  }
}

// --- Lemma 2 reduction through each embedding ---

class ReductionTest : public ::testing::Test {
 protected:
  OvpInstance MakePlanted(std::size_t n, std::size_t d, std::uint64_t seed) {
    Rng rng(seed);
    OvpOptions options;
    options.size_a = n;
    options.size_b = n;
    options.dim = d;
    options.density = 0.5;
    options.plant_orthogonal_pair = true;
    return GenerateOvpInstance(options, &rng);
  }
};

TEST_F(ReductionTest, SignedEmbeddingRecoversPlantedPair) {
  const OvpInstance instance = MakePlanted(32, 24, 13);
  const SignedGapEmbedding embedding(24);
  const ReductionResult result = SolveOvpViaEmbedding(instance, embedding);
  ASSERT_TRUE(result.pair.has_value());
  EXPECT_TRUE(instance.a.OrthogonalRows(result.pair->first, instance.b,
                                        result.pair->second));
  EXPECT_EQ(result.embedded_dim, 4u * 24 - 4);
}

TEST_F(ReductionTest, ChebyshevEmbeddingRecoversPlantedPair) {
  const OvpInstance instance = MakePlanted(24, 8, 17);
  const ChebyshevGapEmbedding embedding(8, 2);
  const ReductionResult result = SolveOvpViaEmbedding(instance, embedding);
  ASSERT_TRUE(result.pair.has_value());
  EXPECT_TRUE(instance.a.OrthogonalRows(result.pair->first, instance.b,
                                        result.pair->second));
}

TEST_F(ReductionTest, BinaryEmbeddingRecoversPlantedPair) {
  const OvpInstance instance = MakePlanted(32, 16, 19);
  const BinaryChunkEmbedding embedding(16, 4);
  const ReductionResult result = SolveOvpViaEmbedding(instance, embedding);
  ASSERT_TRUE(result.pair.has_value());
  EXPECT_TRUE(instance.a.OrthogonalRows(result.pair->first, instance.b,
                                        result.pair->second));
}

TEST_F(ReductionTest, NoOrthogonalPairMeansNoResult) {
  // All-ones instance: every pair overlaps everywhere.
  OvpInstance instance;
  instance.a = BitMatrix(8, 12);
  instance.b = BitMatrix(8, 12);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      instance.a.Set(i, j, true);
      instance.b.Set(i, j, true);
    }
  }
  const BinaryChunkEmbedding embedding(12, 3);
  const ReductionResult result = SolveOvpViaEmbedding(instance, embedding);
  EXPECT_FALSE(result.pair.has_value());
}

TEST_F(ReductionTest, EmbeddedMatricesHaveDeclaredThresholds) {
  const OvpInstance instance = MakePlanted(16, 12, 23);
  const BinaryChunkEmbedding embedding(12, 4);
  const auto [p, q] = EmbedOvpInstance(instance, embedding);
  EXPECT_EQ(p.rows(), instance.a.rows());
  EXPECT_EQ(q.rows(), instance.b.rows());
  EXPECT_EQ(p.cols(), embedding.output_dim());
  // Dot products are integers in [0, k]; planted pair reaches k.
  const auto pair = *instance.planted;
  double planted_value = 0.0;
  for (std::size_t t = 0; t < p.cols(); ++t) {
    planted_value += p.At(pair.first, t) * q.At(pair.second, t);
  }
  EXPECT_DOUBLE_EQ(planted_value, embedding.s());
}

TEST_F(ReductionTest, CustomOracleIsUsed) {
  const OvpInstance instance = MakePlanted(16, 16, 29);
  const SignedGapEmbedding embedding(16);
  bool called = false;
  const JoinOracle oracle = [&](const Matrix& p, const Matrix& q, double s,
                                double cs, bool is_signed) {
    called = true;
    return BruteForceJoinOracle(p, q, s, cs, is_signed);
  };
  const ReductionResult result =
      SolveOvpViaEmbedding(instance, embedding, oracle);
  EXPECT_TRUE(called);
  EXPECT_TRUE(result.pair.has_value());
}

}  // namespace
}  // namespace ips
