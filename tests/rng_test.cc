// Tests for src/rng: determinism and distributional sanity of the
// platform-stable generator and samplers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "rng/random.h"
#include "util/stats.h"

namespace ips {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, DoubleMeanIsHalf) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.NextDouble());
  EXPECT_NEAR(stats.Mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.Variance(), 1.0 / 12.0, 0.005);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(17);
  constexpr std::size_t kBuckets = 10;
  constexpr std::size_t kSamples = 100000;
  std::vector<std::size_t> counts(kBuckets, 0);
  for (std::size_t i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  for (std::size_t count : counts) {
    EXPECT_NEAR(static_cast<double>(count), kSamples / 10.0,
                5.0 * std::sqrt(kSamples / 10.0));
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.Mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.Variance(), 1.0, 0.02);
}

TEST(RngTest, GaussianTailFraction) {
  Rng rng(29);
  int beyond_two_sigma = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (std::abs(rng.NextGaussian()) > 2.0) ++beyond_two_sigma;
  }
  // P(|Z| > 2) is about 0.0455.
  EXPECT_NEAR(beyond_two_sigma / static_cast<double>(kSamples), 0.0455,
              0.005);
}

TEST(RngTest, ExponentialMoments) {
  Rng rng(31);
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.NextExponential());
  EXPECT_NEAR(stats.Mean(), 1.0, 0.02);
  EXPECT_NEAR(stats.Variance(), 1.0, 0.05);
  EXPECT_GE(stats.Min(), 0.0);
}

TEST(RngTest, CauchyMedianAndQuartiles) {
  Rng rng(37);
  std::vector<double> samples;
  for (int i = 0; i < 100001; ++i) samples.push_back(rng.NextCauchy());
  std::sort(samples.begin(), samples.end());
  // Median 0, quartiles at +-1 for the standard Cauchy.
  EXPECT_NEAR(samples[samples.size() / 2], 0.0, 0.05);
  EXPECT_NEAR(samples[samples.size() / 4], -1.0, 0.05);
  EXPECT_NEAR(samples[3 * samples.size() / 4], 1.0, 0.05);
}

TEST(RngTest, SignIsFair) {
  Rng rng(41);
  int sum = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextSign();
  EXPECT_LT(std::abs(sum), 5 * static_cast<int>(std::sqrt(kSamples)));
}

TEST(RngTest, BernoulliMatchesP) {
  Rng rng(43);
  int successes = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.NextBernoulli(0.3)) ++successes;
  }
  EXPECT_NEAR(successes / static_cast<double>(kSamples), 0.3, 0.01);
}

TEST(RngTest, SplitIsIndependentStream) {
  Rng parent(47);
  Rng child = parent.Split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(53);
  std::vector<std::size_t> perm;
  rng.Permutation(100, &perm);
  ASSERT_EQ(perm.size(), 100u);
  std::vector<std::size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, PermutationShuffles) {
  Rng rng(59);
  std::vector<std::size_t> perm;
  rng.Permutation(100, &perm);
  std::size_t fixed_points = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    if (perm[i] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 10u);  // expectation is 1
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = SplitMix64(state);
  const std::uint64_t second = SplitMix64(state);
  // Reference values of the SplitMix64 stream seeded with 0.
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace ips
