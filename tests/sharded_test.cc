// Tests of the scatter-gather ShardedEngine (serve/sharded_engine.h):
// merge correctness against the exact single-node answer, deterministic
// global-index tie-breaking, shard accounting, retry and hedging
// behavior, trace children, and construction validation. Heavier
// failure injection (breaker trip/recover, all-shards-down) lives in
// chaos_test.cc.

#include "serve/sharded_engine.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/top_k.h"
#include "rng/random.h"
#include "serve/batch_scheduler.h"
#include "util/failpoint.h"

namespace ips {
namespace {

class ShardedTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DisarmAll(); }
};

QueryOptions ForcedBrute(std::size_t k) {
  QueryOptions options;
  options.k = k;
  options.force_algorithm = QueryAlgo::kBruteForce;
  return options;
}

TEST_F(ShardedTest, RetryableCodeClassification) {
  EXPECT_TRUE(IsRetryableShardStatus(StatusCode::kUnavailable));
  // Shedding is deliberate back-pressure; retrying amplifies overload.
  EXPECT_FALSE(IsRetryableShardStatus(StatusCode::kResourceExhausted));
  // A late answer does not get later by retrying.
  EXPECT_FALSE(IsRetryableShardStatus(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryableShardStatus(StatusCode::kInternal));
  EXPECT_FALSE(IsRetryableShardStatus(StatusCode::kInvalidArgument));
}

TEST_F(ShardedTest, MergeMatchesExactTopKAcrossShardCounts) {
  Rng rng(21);
  const Matrix data = MakeUnitBallGaussian(97, 8, 0.9, &rng);
  const Matrix queries = MakeUnitBallGaussian(6, 8, 0.9, &rng);
  const QueryOptions options = ForcedBrute(5);
  for (const std::size_t shards : {1u, 2u, 4u}) {
    ShardedEngineOptions sharded_options;
    sharded_options.num_shards = shards;
    const auto engine = ShardedEngine::Create(data, sharded_options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ((*engine)->num_shards(), shards);
    EXPECT_EQ((*engine)->dim(), data.cols());
    for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
      const auto q = queries.Row(qi);
      const auto result = (*engine)->Query({q, options});
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      const auto exact =
          TopKBruteForce(data, q, options.k, options.is_signed);
      ASSERT_EQ(result->matches.size(), exact.size());
      for (std::size_t i = 0; i < exact.size(); ++i) {
        EXPECT_EQ(result->matches[i].index, exact[i].index);
        EXPECT_DOUBLE_EQ(result->matches[i].value, exact[i].value);
      }
      EXPECT_FALSE(result->partial);
      EXPECT_EQ(result->stats.shards_total, shards);
      EXPECT_EQ(result->stats.shards_ok, shards);
      EXPECT_EQ(result->stats.shards_failed, 0u);
      // Forced brute scans every row exactly once across the partition.
      EXPECT_EQ(result->stats.dot_products, data.rows());
    }
  }
}

TEST_F(ShardedTest, TieBreakUsesGlobalIndexAcrossShards) {
  // Every row identical: all scores tie, so the merged top-k must be
  // exactly the lowest *global* indices in order — shard-local indices
  // or gather order must never leak into the ranking.
  Matrix data(8, 4);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      data.At(r, c) = 0.25 * static_cast<double>(c + 1);
    }
  }
  ShardedEngineOptions options;
  options.num_shards = 4;
  const auto engine = ShardedEngine::Create(data, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const std::vector<double> q(4, 0.5);
  const auto result = (*engine)->Query({q, ForcedBrute(5)});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->matches.size(), 5u);
  for (std::size_t i = 0; i < result->matches.size(); ++i) {
    EXPECT_EQ(result->matches[i].index, i);
  }
}

TEST_F(ShardedTest, ShardOffsetsPartitionContiguously) {
  Rng rng(22);
  // 10 rows over 4 shards: 3, 3, 2, 2.
  const Matrix data = MakeUnitBallGaussian(10, 4, 0.9, &rng);
  ShardedEngineOptions options;
  options.num_shards = 4;
  const auto engine = ShardedEngine::Create(data, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->shard_offset(0), 0u);
  EXPECT_EQ((*engine)->shard_offset(1), 3u);
  EXPECT_EQ((*engine)->shard_offset(2), 6u);
  EXPECT_EQ((*engine)->shard_offset(3), 8u);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    covered += (*engine)->shard(i).data().rows();
  }
  EXPECT_EQ(covered, data.rows());
}

TEST_F(ShardedTest, BatchQueryMatchesSingleQueries) {
  Rng rng(23);
  const Matrix data = MakeUnitBallGaussian(64, 8, 0.9, &rng);
  const Matrix queries = MakeUnitBallGaussian(7, 8, 0.9, &rng);
  ShardedEngineOptions options;
  options.num_shards = 3;
  const auto engine = ShardedEngine::Create(data, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const QueryOptions request = ForcedBrute(4);
  const auto batched = (*engine)->BatchQuery(queries, request, {});
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_EQ(batched->size(), queries.rows());
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto single = (*engine)->Query({queries.Row(qi), request});
    ASSERT_TRUE(single.ok());
    const QueryResult& member = (*batched)[qi];
    ASSERT_EQ(member.matches.size(), single->matches.size());
    for (std::size_t i = 0; i < member.matches.size(); ++i) {
      EXPECT_EQ(member.matches[i].index, single->matches[i].index);
      EXPECT_DOUBLE_EQ(member.matches[i].value, single->matches[i].value);
    }
    EXPECT_FALSE(member.partial);
    EXPECT_EQ(member.stats.shards_total, 3u);
    EXPECT_EQ(member.stats.shards_ok, 3u);
  }
  // Empty batch short-circuits without fan-out.
  const auto empty = (*engine)->BatchQuery(Matrix(), request, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(ShardedTest, TransientUnavailableIsRetriedToSuccess) {
  Rng rng(24);
  const Matrix data = MakeUnitBallGaussian(48, 6, 0.9, &rng);
  ShardedEngineOptions options;
  options.num_shards = 2;
  const auto engine = ShardedEngine::Create(data, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // One-shot: shard 0's first attempt fails kUnavailable, its retry
  // succeeds — the query comes back whole, not partial.
  Failpoints::Arm("serve/shard/query/0", 1,
                  Status::Unavailable("transient blip"));
  const std::vector<double> q(6, 0.1);
  const auto result = (*engine)->Query({q, ForcedBrute(3)});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->partial);
  EXPECT_EQ(result->stats.shards_ok, 2u);
  EXPECT_EQ(result->stats.shards_failed, 0u);
  EXPECT_EQ(result->stats.metrics.Get("serve.shard.retries"), 1u);
}

TEST_F(ShardedTest, NonRetryableShardFailureDegradesToPartial) {
  Rng rng(25);
  const Matrix data = MakeUnitBallGaussian(40, 6, 0.9, &rng);
  ShardedEngineOptions options;
  options.num_shards = 2;
  const auto engine = ShardedEngine::Create(data, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // Internal errors are not retried: shard 1 is lost on its single
  // attempt, the survivors still answer (partial = true).
  Failpoints::Arm("serve/shard/query/1", Status::Internal("disk fault"),
                  FireEvery{1});
  const std::vector<double> q(6, 0.1);
  const auto result = (*engine)->Query({q, ForcedBrute(5)});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partial);
  EXPECT_EQ(result->stats.shards_total, 2u);
  EXPECT_EQ(result->stats.shards_ok, 1u);
  EXPECT_EQ(result->stats.shards_failed, 1u);
  EXPECT_FALSE(result->stats.metrics.Has("serve.shard.retries"));
  // Every surviving match comes from shard 0's global range.
  const std::size_t boundary = (*engine)->shard_offset(1);
  for (const SearchMatch& match : result->matches) {
    EXPECT_LT(match.index, boundary);
  }
}

TEST_F(ShardedTest, PredictedStragglerIsHedged) {
  Rng rng(26);
  const Matrix data = MakeUnitBallGaussian(48, 6, 0.9, &rng);
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.hedge.min_samples = 1;
  options.hedge.latency_factor = 0.5;
  options.hedge.chaos_slow_seconds = 0.05;
  const auto engine = ShardedEngine::Create(data, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  QueryOptions request;
  request.k = 3;
  RequestContext context;
  context.deadline_seconds = 0.01;
  const std::vector<double> q(6, 0.1);
  // Shard 0's primary path stalls 50 ms on every call; the 9 ms shard
  // budget cannot absorb that, so once the latency tracker has seen one
  // stalled call it predicts the miss and answers through the hedge.
  Failpoints::Arm("serve/shard/slow/0", Status::Internal("straggler"),
                  FireEvery{1});
  const auto first = (*engine)->Query({q, request, context});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->stats.shards_hedged, 0u);
  const auto second = (*engine)->Query({q, request, context});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->stats.shards_hedged, 1u);
  EXPECT_FALSE(second->partial);
  EXPECT_EQ(second->stats.shards_ok, 2u);
  // The hedge detoured around the stall: no 50 ms sleep on its path.
  EXPECT_LT(second->stats.exec_seconds, 0.05);
}

TEST_F(ShardedTest, TraceRecordsOneChildSpanPerShard) {
  Rng rng(27);
  const Matrix data = MakeUnitBallGaussian(32, 6, 0.9, &rng);
  ShardedEngineOptions options;
  options.num_shards = 4;
  const auto engine = ShardedEngine::Create(data, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  QueryOptions request = ForcedBrute(2);
  request.trace = true;
  const auto result = (*engine)->Query({std::vector<double>(6, 0.1), request});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->stats.trace, nullptr);
  const Trace& trace = *result->stats.trace;
  ASSERT_NE(trace.FindSpan("serve/sharded_query"), nullptr);
  for (std::size_t i = 0; i < 4; ++i) {
    const Trace::Span* span =
        trace.FindSpan("serve/shard/" + std::to_string(i));
    ASSERT_NE(span, nullptr) << "missing child span for shard " << i;
    EXPECT_EQ(span->depth, 1u);
  }
  EXPECT_EQ(trace.TotalCount("ok"), 4u);
}

TEST_F(ShardedTest, UniformFailureCodePropagatesUnchanged) {
  Rng rng(28);
  const Matrix data = MakeUnitBallGaussian(32, 6, 0.9, &rng);
  ShardedEngineOptions options;
  options.num_shards = 2;
  const auto engine = ShardedEngine::Create(data, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // A forced sketch path rejects exact-precision requests on *every*
  // shard with kInvalidArgument; the uniform code surfaces unchanged
  // rather than hiding behind a generic kUnavailable summary.
  QueryOptions request;
  request.force_algorithm = QueryAlgo::kSketch;
  request.precision = QueryPrecision::kExact;
  const auto result = (*engine)->Query({std::vector<double>(6, 0.1), request});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ShardedTest, CoordinatorValidatesRequestBeforeFanOut) {
  Rng rng(29);
  const Matrix data = MakeUnitBallGaussian(32, 6, 0.9, &rng);
  ShardedEngineOptions two_shards;
  two_shards.num_shards = 2;
  const auto engine = ShardedEngine::Create(data, two_shards);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // Wrong dimension.
  EXPECT_FALSE((*engine)->Query({std::vector<double>(5, 0.1), ForcedBrute(1)})
                   .ok());
  // NaN query.
  std::vector<double> poisoned(6, 0.1);
  poisoned[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE((*engine)->Query({poisoned, ForcedBrute(1)}).ok());
  // Invalid options (k = 0).
  QueryOptions zero_k;
  zero_k.k = 0;
  EXPECT_FALSE((*engine)->Query({std::vector<double>(6, 0.1), zero_k}).ok());
}

TEST_F(ShardedTest, CreateRejectsInvalidOptions) {
  Rng rng(30);
  const Matrix data = MakeUnitBallGaussian(16, 4, 0.9, &rng);
  {
    ShardedEngineOptions options;
    options.num_shards = 0;
    EXPECT_FALSE(ShardedEngine::Create(data, options).ok());
  }
  {
    ShardedEngineOptions options;
    options.num_shards = 17;  // more shards than rows
    EXPECT_FALSE(ShardedEngine::Create(data, options).ok());
  }
  {
    ShardedEngineOptions options;
    options.shard_budget_fraction = 0.0;
    EXPECT_FALSE(ShardedEngine::Create(data, options).ok());
    options.shard_budget_fraction = 1.5;
    EXPECT_FALSE(ShardedEngine::Create(data, options).ok());
  }
  {
    ShardedEngineOptions options;
    options.retry.max_attempts = 0;
    EXPECT_FALSE(ShardedEngine::Create(data, options).ok());
  }
  {
    ShardedEngineOptions options;
    options.retry.backoff_multiplier = 0.5;
    EXPECT_FALSE(ShardedEngine::Create(data, options).ok());
  }
  {
    ShardedEngineOptions options;
    options.breaker.failure_threshold = 0;
    EXPECT_FALSE(ShardedEngine::Create(data, options).ok());
  }
  {
    ShardedEngineOptions options;
    options.hedge.latency_factor = 0.0;
    EXPECT_FALSE(ShardedEngine::Create(data, options).ok());
  }
  EXPECT_FALSE(ShardedEngine::Create(Matrix(), ShardedEngineOptions{}).ok());
}

TEST_F(ShardedTest, BatchSchedulerDrivesShardedEngine) {
  Rng rng(31);
  const Matrix data = MakeUnitBallGaussian(64, 6, 0.9, &rng);
  ShardedEngineOptions options;
  options.num_shards = 2;
  const auto engine = ShardedEngine::Create(data, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  BatchSchedulerOptions scheduler_options;
  scheduler_options.num_threads = 2;
  scheduler_options.use_batch_execution = true;
  // The scheduler drives the sharded fleet through the same QueryEngine
  // interface as a single-node engine.
  BatchScheduler scheduler(engine->get(), scheduler_options);
  std::vector<std::future<BatchScheduler::Result>> futures;
  const Matrix queries = MakeUnitBallGaussian(12, 6, 0.9, &rng);
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto q = queries.Row(qi);
    futures.push_back(scheduler.Submit(
        {std::vector<double>(q.begin(), q.end()), ForcedBrute(3)}));
  }
  for (std::size_t qi = 0; qi < futures.size(); ++qi) {
    const auto result = futures[qi].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const auto exact = TopKBruteForce(data, queries.Row(qi), 3, true);
    ASSERT_EQ(result->matches.size(), exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(result->matches[i].index, exact[i].index);
    }
    EXPECT_EQ(result->stats.shards_total, 2u);
    EXPECT_FALSE(result->partial);
  }
}

}  // namespace
}  // namespace ips
