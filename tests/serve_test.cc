// Tests for the src/serve subsystem: planner decisions, engine
// dispatch through the serve Request envelope (query span +
// core::QueryOptions + RequestContext), trace spans and registry
// metrics of served queries, the recall contract of planner-selected
// answers against exact ground truth, the feedback planner's live
// re-fitting and eviction, and the QoS batch scheduler (admission,
// token buckets, priority lanes, shedding, expiry, drain, shutdown,
// per-tenant counter partition).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "core/dataset.h"
#include "core/query.h"
#include "core/top_k.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rng/random.h"
#include "serve/batch_scheduler.h"
#include "serve/engine.h"
#include "serve/feedback.h"
#include "serve/planner.h"
#include "serve/request.h"
#include "serve/serve_stats.h"
#include "util/status.h"

namespace ips {
namespace {

Matrix SmallSpreadData(std::size_t n, std::size_t dim, Rng* rng) {
  return MakeUnitBallGaussian(n, dim, /*min_norm=*/0.9, rng);
}

Matrix LargeSpreadData(std::size_t n, std::size_t dim, Rng* rng) {
  return MakeLatentFactorVectors(n, dim, /*skew=*/1.0, rng);
}

// --- Planner decision table ---

class PlannerTest : public ::testing::Test {
 protected:
  static Planner MakePlanner(double lsh_recall, double lsh_fraction,
                             double tree_fraction = 0.4) {
    DatasetProfile profile;
    profile.n = 10000;
    profile.dim = 32;
    profile.min_norm = 0.5;
    profile.max_norm = 1.0;
    profile.mean_norm = 0.8;
    PlannerCalibration calib;
    calib.tree_fraction = tree_fraction;
    calib.lsh_candidate_fraction = lsh_fraction;
    calib.lsh_recall = lsh_recall;
    calib.lsh_topk_recall = lsh_recall;
    calib.sketch_recall = 0.6;
    calib.sketch_cost = 500.0;
    calib.probe_queries = 16;
    return Planner(profile, calib);
  }
};

TEST_F(PlannerTest, LowTargetPicksCheapLsh) {
  const Planner planner = MakePlanner(/*lsh_recall=*/0.95,
                                      /*lsh_fraction=*/0.05);
  QueryOptions request;
  request.k = 10;
  request.recall_target = 0.8;
  const auto decision = planner.Plan(request);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->algorithm, QueryAlgo::kLsh);
  EXPECT_LT(decision->expected_dot_products, 10000.0);
}

TEST_F(PlannerTest, FullRecallPicksExactPath) {
  const Planner planner = MakePlanner(0.99, 0.05);
  QueryOptions request;
  request.recall_target = 1.0;
  const auto decision = planner.Plan(request);
  ASSERT_TRUE(decision.ok());
  // LSH recall 0.99 < 1.0 + margin: only exact paths qualify, and the
  // calibrated tree (40% scan) beats brute force.
  EXPECT_EQ(decision->algorithm, QueryAlgo::kBallTree);
}

TEST_F(PlannerTest, RecallMarginGuardsBorderlineLsh) {
  // Probe recall 0.84 fails a 0.8 target once the 0.05 margin applies.
  const Planner planner = MakePlanner(0.84, 0.05);
  QueryOptions request;
  request.recall_target = 0.8;
  const auto decision = planner.Plan(request);
  ASSERT_TRUE(decision.ok());
  EXPECT_NE(decision->algorithm, QueryAlgo::kLsh);
}

TEST_F(PlannerTest, UnsignedTopOnePrefersSketchWhenCheapest) {
  Planner planner = MakePlanner(/*lsh_recall=*/0.2, /*lsh_fraction=*/0.5,
                                /*tree_fraction=*/0.9);
  QueryOptions request;
  request.k = 1;
  request.recall_target = 0.5;
  request.is_signed = false;
  const auto decision = planner.Plan(request);
  ASSERT_TRUE(decision.ok());
  // Tree is signed-only and LSH misses the target; sketch (500 dots)
  // beats brute (10000 dots).
  EXPECT_EQ(decision->algorithm, QueryAlgo::kSketch);
}

TEST_F(PlannerTest, CandidateBudgetPrefersCheaperEligiblePath) {
  const Planner planner = MakePlanner(0.99, 0.05, /*tree_fraction=*/0.4);
  QueryOptions request;
  request.recall_target = 0.8;
  request.candidate_budget = 1000;  // tree (4000) is over, lsh (~756) fits
  const auto decision = planner.Plan(request);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->algorithm, QueryAlgo::kLsh);
  EXPECT_LE(decision->expected_dot_products, 1000.0);
}

TEST_F(PlannerTest, RejectsMalformedRequests) {
  const Planner planner = MakePlanner(0.9, 0.1);
  QueryOptions request;
  request.k = 0;
  EXPECT_FALSE(planner.Plan(request).ok());
  request.k = 1;
  request.recall_target = 0.0;
  EXPECT_FALSE(planner.Plan(request).ok());
  request.recall_target = 1.5;
  EXPECT_FALSE(planner.Plan(request).ok());
  request.recall_target = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(planner.Plan(request).ok());
}

// --- Engine basics ---

TEST(EngineTest, CreateRejectsBadData) {
  EXPECT_FALSE(Engine::Create(Matrix()).ok());
  Matrix poisoned(4, 3);
  poisoned.At(1, 2) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(Engine::Create(std::move(poisoned)).ok());
}

TEST(EngineTest, RejectsBadQueriesAndRequests) {
  Rng rng(21);
  const auto engine = Engine::Create(SmallSpreadData(200, 8, &rng));
  ASSERT_TRUE(engine.ok());
  QueryOptions request;
  const std::vector<double> wrong_dim(5, 0.1);
  EXPECT_FALSE((*engine)->Query({wrong_dim, request}).ok());
  std::vector<double> poisoned(8, 0.1);
  poisoned[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE((*engine)->Query({poisoned, request}).ok());
  const std::vector<double> good(8, 0.1);
  QueryOptions bad = request;
  bad.k = 0;
  EXPECT_FALSE((*engine)->Query({good, bad}).ok());
  bad = request;
  bad.recall_target = 2.0;
  EXPECT_FALSE((*engine)->Query({good, bad}).ok());
  EXPECT_TRUE((*engine)->Query({good, request}).ok());
}

TEST(EngineTest, ForcedAlgorithmRespectsCapabilities) {
  Rng rng(22);
  const auto engine = Engine::Create(SmallSpreadData(200, 8, &rng));
  ASSERT_TRUE(engine.ok());
  const std::vector<double> q(8, 0.2);
  QueryOptions request;
  request.k = 3;
  request.is_signed = false;
  request.force_algorithm = QueryAlgo::kBallTree;
  EXPECT_FALSE((*engine)->Query({q, request}).ok());  // tree is signed-only
  request.force_algorithm = QueryAlgo::kSketch;
  // k=3 unsigned now runs the sketch index's filtered scan; what the
  // sketch path cannot honor is exact (or quantized) precision.
  const auto filtered = (*engine)->Query({q, request});
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  EXPECT_EQ(filtered->stats.algorithm, QueryAlgo::kSketch);
  EXPECT_GT(filtered->stats.candidates_pruned, 0u);
  request.precision = QueryPrecision::kExact;
  EXPECT_FALSE((*engine)->Query({q, request}).ok());
  request.precision = QueryPrecision::kAuto;
  request.k = 1;
  const auto sketch = (*engine)->Query({q, request});
  ASSERT_TRUE(sketch.ok());
  EXPECT_EQ(sketch->stats.algorithm, QueryAlgo::kSketch);
  // Unsigned k=1 with kAuto takes the §4.3 argmax descent: no pruning
  // bookkeeping, exactly one recovered candidate re-scored.
  EXPECT_EQ(sketch->stats.candidates_pruned, 0u);
}

TEST(EngineTest, ForcedPathsAgreeWithBruteForceAtFullRecall) {
  Rng rng(23);
  const Matrix data = SmallSpreadData(300, 10, &rng);
  const auto engine = Engine::Create(data);
  ASSERT_TRUE(engine.ok());
  QueryOptions request;
  request.k = 5;
  request.recall_target = 1.0;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> q(10);
    for (double& v : q) v = rng.NextGaussian();
    const auto exact = TopKBruteForce(data, q, 5, /*is_signed=*/true);
    QueryOptions forced = request;
    forced.force_algorithm = QueryAlgo::kBallTree;
    const auto via_tree = (*engine)->Query({q, forced});
    ASSERT_TRUE(via_tree.ok());
    ASSERT_EQ(via_tree->matches.size(), exact.size());
    for (std::size_t t = 0; t < exact.size(); ++t) {
      // Deterministic tie-breaking makes this an exact index match.
      EXPECT_EQ(via_tree->matches[t].index, exact[t].index) << "rank " << t;
    }
  }
}

TEST(EngineTest, StatsAccountForWork) {
  Rng rng(24);
  const auto engine = Engine::Create(SmallSpreadData(400, 8, &rng));
  ASSERT_TRUE(engine.ok());
  std::vector<double> q(8);
  for (double& v : q) v = rng.NextGaussian();
  QueryOptions request;
  request.k = 3;
  request.recall_target = 1.0;
  request.force_algorithm = QueryAlgo::kBruteForce;
  const auto brute = (*engine)->Query({q, request});
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ(brute->stats.dot_products, 400u);
  request.force_algorithm = QueryAlgo::kBallTree;
  const auto tree = (*engine)->Query({q, request});
  ASSERT_TRUE(tree.ok());
  EXPECT_GE(tree->stats.dot_products, 3u);
  EXPECT_LE(tree->stats.dot_products, 400u);
  ServeMetrics metrics;
  metrics.Record(brute->stats);
  metrics.Record(tree->stats);
  EXPECT_EQ(metrics.TotalRequests(), 2u);
  EXPECT_EQ(metrics.SelectionCount(QueryAlgo::kBruteForce), 1u);
  EXPECT_EQ(metrics.SelectionCount(QueryAlgo::kBallTree), 1u);
  EXPECT_EQ(metrics.TotalDotProducts(),
            brute->stats.dot_products + tree->stats.dot_products);
}

TEST(EngineTest, TracedLshQueryExportsFullSpanTree) {
  Rng rng(25);
  const auto engine = Engine::Create(SmallSpreadData(600, 12, &rng));
  ASSERT_TRUE(engine.ok());
  std::vector<double> q(12);
  for (double& v : q) v = rng.NextGaussian();
  QueryOptions request;
  request.k = 3;
  request.trace = true;
  request.force_algorithm = QueryAlgo::kLsh;
  const auto served = (*engine)->Query({q, request});
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  const std::shared_ptr<const Trace> trace = served->stats.trace;
  ASSERT_NE(trace, nullptr);
  // The full hash -> bucket -> dedup -> verify -> top-k pipeline is
  // nested under the serve/query -> lsh spans.
  for (const char* name : {"serve/query", "serve/plan", "lsh", "hash",
                           "bucket", "dedup", "verify", "top-k"}) {
    EXPECT_NE(trace->FindSpan(name), nullptr) << name;
  }
  // Span counts agree with the stats returned for the same query.
  EXPECT_EQ(trace->TotalCount("candidates"), served->stats.candidates);
  EXPECT_EQ(trace->TotalCount("unique_candidates"),
            served->stats.candidates);
  EXPECT_EQ(trace->TotalCount("unique_candidates") +
                trace->TotalCount("duplicates"),
            trace->TotalCount("raw_candidates"));
  // The completed trace is published to the global ring and its JSON
  // export names every stage.
  const auto recent = TraceRing::Global().Recent(/*limit=*/1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].get(), trace.get());
  const std::string json = trace->ToJson();
  for (const char* name : {"hash", "bucket", "dedup", "verify", "top-k"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  // Tracing is opt-in: an untraced query leaves stats.trace empty.
  request.trace = false;
  const auto untraced = (*engine)->Query({q, request});
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(untraced->stats.trace, nullptr);
}

// --- Recall contract: planner-selected answers hit the target ---

struct RecallCase {
  const char* name;
  bool small_spread;
  double recall_target;
};

class RecallContract : public ::testing::TestWithParam<RecallCase> {};

TEST_P(RecallContract, PlannerSelectionAchievesRequestedRecall) {
  const RecallCase param = GetParam();
  Rng rng(31);
  const std::size_t kN = 2000, kDim = 16, kK = 5, kQueries = 50;
  const Matrix data = param.small_spread ? SmallSpreadData(kN, kDim, &rng)
                                         : LargeSpreadData(kN, kDim, &rng);
  EngineOptions options;
  options.seed = 77;
  const auto engine = Engine::Create(data, options);
  ASSERT_TRUE(engine.ok());

  QueryOptions request;
  request.k = kK;
  request.recall_target = param.recall_target;

  std::size_t hit = 0, promised = 0;
  Rng query_rng(32);
  for (std::size_t qi = 0; qi < kQueries; ++qi) {
    std::vector<double> q(kDim);
    for (double& v : q) v = query_rng.NextGaussian();
    const auto exact = TopKBruteForce(data, q, kK, /*is_signed=*/true);
    const auto served = (*engine)->Query({q, request});
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    promised += exact.size();
    for (const auto& truth : exact) {
      for (const auto& match : served->matches) {
        if (match.index == truth.index) {
          ++hit;
          break;
        }
      }
    }
  }
  const double recall =
      static_cast<double>(hit) / static_cast<double>(promised);
  EXPECT_GE(recall, param.recall_target)
      << "planner chose "
      << QueryAlgoName((*engine)
                           ->Query({std::vector<double>(kDim, 0.1), request})
                           ->stats.algorithm);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, RecallContract,
    ::testing::Values(RecallCase{"small_spread_r80", true, 0.8},
                      RecallCase{"small_spread_exact", true, 1.0},
                      RecallCase{"large_spread_r80", false, 0.8},
                      RecallCase{"large_spread_exact", false, 1.0}),
    [](const ::testing::TestParamInfo<RecallCase>& info) {
      return info.param.name;
    });

// --- Batch scheduler ---

TEST(BatchSchedulerTest, ServesConcurrentSubmissions) {
  Rng rng(41);
  const auto engine = Engine::Create(SmallSpreadData(500, 8, &rng));
  ASSERT_TRUE(engine.ok());
  BatchSchedulerOptions options;
  options.num_threads = 4;
  BatchScheduler scheduler(engine->get(), options);

  QueryOptions request;
  request.k = 3;
  std::vector<std::future<BatchScheduler::Result>> futures;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> q(8);
    for (double& v : q) v = rng.NextGaussian();
    futures.push_back(scheduler.Submit({q, request}));
  }
  std::size_t ok = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->matches.size(), 3u);
    EXPECT_GE(result->stats.queue_seconds, 0.0);
    ++ok;
  }
  EXPECT_EQ(ok, 200u);
  scheduler.Drain();  // counters are final once nothing is in flight
  const SchedulerCounters counters = scheduler.counters();
  EXPECT_EQ(counters.submitted, 200u);
  EXPECT_EQ(counters.completed, 200u);
  EXPECT_EQ(counters.shed, 0u);
  EXPECT_GE(counters.batches, 1u);
  // Partition invariant: every submission lands in exactly one bucket.
  EXPECT_EQ(counters.shed + counters.completed + counters.expired,
            counters.submitted);
}

TEST(BatchSchedulerTest, ShedsLoadBeyondQueueBound) {
  Rng rng(42);
  // A deliberately slow engine call is unnecessary: a tiny queue bound
  // with a burst of submissions forces shedding regardless of timing.
  const auto engine = Engine::Create(SmallSpreadData(2000, 16, &rng));
  ASSERT_TRUE(engine.ok());
  BatchSchedulerOptions options;
  options.num_threads = 1;
  options.max_queue = 2;
  options.max_batch = 2;
  BatchScheduler scheduler(engine->get(), options);

  // The per-scheduler counters are mirrored into the process registry;
  // snapshot it so deltas can be compared below.
  MetricsRegistry& registry = MetricsRegistry::Global();
  const std::uint64_t submitted_before =
      registry.GetCounter("serve.scheduler.submitted")->Value();
  const std::uint64_t shed_before =
      registry.GetCounter("serve.scheduler.shed")->Value();
  const std::uint64_t expired_before =
      registry.GetCounter("serve.scheduler.expired")->Value();
  const std::uint64_t completed_before =
      registry.GetCounter("serve.scheduler.completed")->Value();

  QueryOptions request;
  request.recall_target = 1.0;
  request.force_algorithm = QueryAlgo::kBruteForce;
  std::vector<std::future<BatchScheduler::Result>> futures;
  for (int i = 0; i < 300; ++i) {
    futures.push_back(
        scheduler.Submit({std::vector<double>(16, 0.1), request}));
  }
  std::size_t shed = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  scheduler.Drain();
  const SchedulerCounters counters = scheduler.counters();
  EXPECT_EQ(counters.shed, shed);
  EXPECT_GT(counters.shed, 0u);  // the burst must actually overflow
  // Shed requests are not double-counted as completed: the three
  // outcome buckets partition the submissions exactly.
  EXPECT_EQ(counters.completed, 300u - shed);
  EXPECT_EQ(counters.expired, 0u);
  EXPECT_EQ(counters.shed + counters.completed + counters.expired,
            counters.submitted);
  // The registry mirror advanced by exactly the same amounts.
  EXPECT_EQ(registry.GetCounter("serve.scheduler.submitted")->Value() -
                submitted_before,
            counters.submitted);
  EXPECT_EQ(registry.GetCounter("serve.scheduler.shed")->Value() -
                shed_before,
            counters.shed);
  EXPECT_EQ(registry.GetCounter("serve.scheduler.expired")->Value() -
                expired_before,
            counters.expired);
  EXPECT_EQ(registry.GetCounter("serve.scheduler.completed")->Value() -
                completed_before,
            counters.completed);
}

TEST(BatchSchedulerTest, ExpiredDeadlineFailsWithoutEngineWork) {
  Rng rng(43);
  const auto engine = Engine::Create(SmallSpreadData(200, 8, &rng));
  ASSERT_TRUE(engine.ok());
  BatchScheduler scheduler(engine->get());
  // A 1ns deadline is in the past by the time the batch runs.
  RequestContext tight;
  tight.deadline_seconds = 1e-9;
  auto future =
      scheduler.Submit({std::vector<double>(8, 0.1), {}, tight});
  const auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  scheduler.Drain();
  EXPECT_GE(scheduler.counters().expired, 1u);
  // The scheduler still serves the next request.
  auto good = scheduler.Submit({std::vector<double>(8, 0.1), {}});
  EXPECT_TRUE(good.get().ok());
}

TEST(BatchSchedulerTest, RejectsInvalidContexts) {
  Rng rng(44);
  const auto engine = Engine::Create(SmallSpreadData(100, 8, &rng));
  ASSERT_TRUE(engine.ok());
  BatchScheduler scheduler(engine->get());
  RequestContext zero;
  zero.deadline_seconds = 0.0;
  EXPECT_FALSE(
      scheduler.Submit({std::vector<double>(8, 0.1), {}, zero}).get().ok());
  RequestContext nan;
  nan.deadline_seconds = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(
      scheduler.Submit({std::vector<double>(8, 0.1), {}, nan}).get().ok());
  RequestContext bad_priority;
  bad_priority.priority = static_cast<RequestPriority>(17);
  EXPECT_FALSE(scheduler.Submit({std::vector<double>(8, 0.1), {}, bad_priority})
                   .get()
                   .ok());
  // Context validation failures are rejected before accounting: nothing
  // was submitted, shed, or completed on their behalf.
  scheduler.Drain();
  EXPECT_EQ(scheduler.counters().submitted, 0u);
}

TEST(BatchSchedulerTest, DrainWaitsForAllInFlightWork) {
  Rng rng(45);
  const auto engine = Engine::Create(SmallSpreadData(500, 8, &rng));
  ASSERT_TRUE(engine.ok());
  BatchScheduler scheduler(engine->get());
  std::vector<std::future<BatchScheduler::Result>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(
        scheduler.Submit({std::vector<double>(8, 0.05), {}}));
  }
  scheduler.Drain();
  for (auto& future : futures) {
    // Drain returned, so every future is already ready.
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
  EXPECT_EQ(scheduler.counters().completed, 64u);
}

TEST(BatchSchedulerTest, ShutdownAnswersEveryQueuedRequest) {
  Rng rng(46);
  const auto engine = Engine::Create(SmallSpreadData(2000, 16, &rng));
  ASSERT_TRUE(engine.ok());
  std::vector<std::future<BatchScheduler::Result>> futures;
  {
    BatchSchedulerOptions options;
    options.num_threads = 1;
    options.max_batch = 4;
    BatchScheduler scheduler(engine->get(), options);
    QueryOptions request;
    request.recall_target = 1.0;
    request.force_algorithm = QueryAlgo::kBruteForce;
    for (int i = 0; i < 128; ++i) {
      futures.push_back(
          scheduler.Submit({std::vector<double>(16, 0.1), request}));
    }
    // Scheduler destructs here with work still queued.
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const auto result = future.get();
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
    }
  }
}

// --- Stale-calibration regression (BENCH_serve targets_met 0.07) ---

TEST_F(PlannerTest, TopKRequestsPriceLshOffTopKRecall) {
  // Warmup measured recall@1 = 0.9 but recall@5 = 0.2: the bucket set
  // usually holds the argmax yet misses most of a top-5 on skewed-norm
  // data. A k=5 request must not ride the @1 number into LSH; a k=1
  // request may still use it.
  DatasetProfile profile;
  profile.n = 10000;
  profile.dim = 32;
  profile.min_norm = 0.5;
  profile.max_norm = 1.0;
  profile.mean_norm = 0.8;
  PlannerCalibration calib;
  calib.tree_fraction = 0.9;  // tree barely cheaper than brute
  calib.lsh_candidate_fraction = 0.05;
  calib.lsh_recall = 0.9;
  calib.lsh_topk_recall = 0.2;
  calib.probe_queries = 16;
  const Planner planner(profile, calib);

  QueryOptions topk;
  topk.k = 5;
  topk.recall_target = 0.8;
  const auto topk_plan = planner.Plan(topk);
  ASSERT_TRUE(topk_plan.ok());
  EXPECT_NE(topk_plan->algorithm, QueryAlgo::kLsh)
      << "k=5 routed to LSH off a recall@1-only calibration";

  QueryOptions top1;
  top1.k = 1;
  top1.recall_target = 0.8;
  const auto top1_plan = planner.Plan(top1);
  ASSERT_TRUE(top1_plan.ok());
  EXPECT_EQ(top1_plan->algorithm, QueryAlgo::kLsh);
}

TEST(EngineCalibrationTest, MeasuresTopKLshRecallSeparately) {
  Rng rng(91);
  const auto engine = Engine::Create(LargeSpreadData(1500, 16, &rng));
  ASSERT_TRUE(engine.ok());
  const PlannerCalibration& calib = (*engine)->planner().calibration();
  EXPECT_GE(calib.lsh_topk_recall, 0.0);
  EXPECT_LE(calib.lsh_topk_recall, 1.0);
  // On skewed-norm data the top-5 recall is the binding number; the
  // warmup must have measured it at all (the old calibration left it
  // implicitly equal to recall@1).
  EXPECT_GE(calib.lsh_recall, 0.0);
}

// --- Feedback planner: live re-fitting, eviction, audit cadence ---

class FeedbackTest : public ::testing::Test {
 protected:
  static Planner MakeBase() {
    DatasetProfile profile;
    profile.n = 10000;
    profile.dim = 32;
    profile.min_norm = 0.5;
    profile.max_norm = 1.0;
    profile.mean_norm = 0.8;
    PlannerCalibration calib;
    calib.tree_fraction = 0.9;
    calib.lsh_candidate_fraction = 0.05;
    calib.lsh_recall = 0.95;
    calib.lsh_topk_recall = 0.95;
    calib.probe_queries = 16;
    return Planner(profile, calib);
  }
};

TEST_F(FeedbackTest, SegmentBucketsPinKAndSignedness) {
  QueryOptions request;
  request.k = 1;
  EXPECT_EQ(FeedbackPlanner::SegmentOf(request), 0u);
  request.is_signed = false;
  EXPECT_EQ(FeedbackPlanner::SegmentOf(request), 1u);
  request.is_signed = true;
  request.k = 5;
  EXPECT_EQ(FeedbackPlanner::SegmentOf(request), 2u);
  request.is_signed = false;
  EXPECT_EQ(FeedbackPlanner::SegmentOf(request), 3u);
  request.is_signed = true;
  request.k = 9;
  EXPECT_EQ(FeedbackPlanner::SegmentOf(request), 4u);
  request.is_signed = false;
  EXPECT_EQ(FeedbackPlanner::SegmentOf(request), 5u);
}

TEST_F(FeedbackTest, AuditCadenceFollowsAuditEvery) {
  const Planner base = MakeBase();
  FeedbackOptions options;
  options.audit_every = 4;
  const FeedbackPlanner feedback(&base, options);
  QueryOptions request;
  request.k = 3;
  // First query of a segment audits, then every fourth.
  EXPECT_TRUE(feedback.BeginAudit(request));
  EXPECT_FALSE(feedback.BeginAudit(request));
  EXPECT_FALSE(feedback.BeginAudit(request));
  EXPECT_FALSE(feedback.BeginAudit(request));
  EXPECT_TRUE(feedback.BeginAudit(request));
  // A different segment has its own counter.
  QueryOptions other;
  other.k = 1;
  EXPECT_TRUE(feedback.BeginAudit(other));
}

TEST_F(FeedbackTest, ObservedMissesEvictThePathForThatSegment) {
  const Planner base = MakeBase();
  FeedbackOptions options;
  options.min_observations = 2;
  options.decay = 0.5;
  const FeedbackPlanner feedback(&base, options);

  QueryOptions request;
  request.k = 5;
  request.recall_target = 0.8;
  const auto before = feedback.Plan(request);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->algorithm, QueryAlgo::kLsh)
      << "warmup calibration was supposed to make LSH the cheap winner";

  // Two audits observe recall far below the 0.8 target: the live curve
  // replaces the warmup prior and the path is evicted for this segment.
  feedback.RecordAudit(request, QueryAlgo::kLsh, QueryPrecision::kExact,
                       /*observed_recall=*/0.1, /*observed_cost=*/600.0);
  feedback.RecordAudit(request, QueryAlgo::kLsh, QueryPrecision::kExact,
                       /*observed_recall=*/0.1, /*observed_cost=*/600.0);
  const auto after = feedback.Plan(request);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->algorithm, QueryAlgo::kLsh);
  EXPECT_GE(feedback.counters().evictions, 1u);
  EXPECT_EQ(feedback.counters().audits, 2u);
  EXPECT_LT(feedback.LiveRecall(request, QueryAlgo::kLsh,
                                QueryPrecision::kExact),
            0.8);

  // The k=1 segment never saw those audits: its plan still uses the
  // warmup numbers and may route LSH.
  QueryOptions top1;
  top1.k = 1;
  top1.recall_target = 0.8;
  const auto other = feedback.Plan(top1);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->algorithm, QueryAlgo::kLsh);
}

TEST_F(FeedbackTest, DisabledLoopForwardsToBasePlanner) {
  const Planner base = MakeBase();
  FeedbackOptions options;
  options.enabled = false;
  const FeedbackPlanner feedback(&base, options);
  QueryOptions request;
  request.k = 5;
  request.recall_target = 0.8;
  feedback.RecordAudit(request, QueryAlgo::kLsh, QueryPrecision::kExact, 0.0,
                       1.0);
  feedback.RecordAudit(request, QueryAlgo::kLsh, QueryPrecision::kExact, 0.0,
                       1.0);
  const auto decision = feedback.Plan(request);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->algorithm, QueryAlgo::kLsh);
}

TEST(FeedbackOptionsTest, ValidationRejectsBadKnobs) {
  FeedbackOptions options;
  EXPECT_TRUE(ValidateFeedbackOptions(options).ok());
  options.audit_every = 0;
  EXPECT_FALSE(ValidateFeedbackOptions(options).ok());
  options.audit_every = 16;
  options.decay = 1.0;
  EXPECT_FALSE(ValidateFeedbackOptions(options).ok());
  options.decay = -0.1;
  EXPECT_FALSE(ValidateFeedbackOptions(options).ok());
  options.decay = 0.9;
  options.min_observations = 0;
  EXPECT_FALSE(ValidateFeedbackOptions(options).ok());
}

// --- QoS: token buckets, priority lanes, per-tenant partition ---

// QueryEngine double that records the order queries reach the engine
// (marker = round(query[0] * 100)) and delegates to a real Engine.
class RecordingEngine : public QueryEngine {
 public:
  explicit RecordingEngine(const Engine* inner) : inner_(inner) {}
  std::size_t dim() const override { return inner_->dim(); }
  StatusOr<QueryResult> Query(const Request& request) const override {
    {
      MutexLock lock(mutex_);
      order_.push_back(static_cast<int>(request.query[0] * 100.0 + 0.5));
    }
    return inner_->Query(request);
  }
  StatusOr<std::vector<QueryResult>> BatchQuery(
      const Matrix& queries, const QueryOptions& options,
      const RequestContext& context) const override {
    return inner_->BatchQuery(queries, options, context);
  }
  std::vector<int> order() const {
    MutexLock lock(mutex_);
    return order_;
  }

 private:
  const Engine* inner_;
  mutable Mutex mutex_;
  mutable std::vector<int> order_;
};

TEST(QosTest, TokenBucketShedsOnlyTheOverloadedTenant) {
  Rng rng(61);
  const auto engine = Engine::Create(SmallSpreadData(300, 8, &rng));
  ASSERT_TRUE(engine.ok());
  BatchSchedulerOptions options;
  options.num_threads = 2;
  // The aggressor gets a 5-token bucket refilling at 1/s: a burst of
  // 100 sheds ~95 of them. The victim has no quota.
  options.qos.tenant_quotas["aggressor"] =
      TenantQuota{/*tokens_per_second=*/1.0, /*burst=*/5.0};
  BatchScheduler scheduler(engine->get(), options);

  RequestContext aggressor;
  aggressor.tenant_id = "aggressor";
  RequestContext victim;
  victim.tenant_id = "victim";
  std::vector<std::future<BatchScheduler::Result>> futures;
  // 10x overload: 100 aggressor submissions against 10 victim ones,
  // interleaved so the victim competes with the burst in real time.
  for (int i = 0; i < 100; ++i) {
    futures.push_back(
        scheduler.Submit({std::vector<double>(8, 0.1), {}, aggressor}));
    if (i % 10 == 0) {
      futures.push_back(
          scheduler.Submit({std::vector<double>(8, 0.2), {}, victim}));
    }
  }
  for (auto& future : futures) (void)future.get();
  scheduler.Drain();

  const TenantCounters noisy = scheduler.tenant_counters("aggressor");
  const TenantCounters quiet = scheduler.tenant_counters("victim");
  EXPECT_EQ(noisy.submitted, 100u);
  EXPECT_GE(noisy.shed, 90u);  // burst of 5 + trickle refill
  EXPECT_EQ(quiet.submitted, 10u);
  EXPECT_EQ(quiet.shed, 0u);  // the overload never touches the victim
  EXPECT_EQ(quiet.completed, 10u);
  // The victim's latency stays bounded while the aggressor floods: a
  // wildly generous ceiling that only breaks if isolation fails and
  // victim requests queue behind the full overload.
  EXPECT_GT(quiet.p99_seconds, 0.0);
  EXPECT_LT(quiet.p99_seconds, 5.0);
  // Per-tenant partition invariant.
  EXPECT_EQ(noisy.shed + noisy.expired + noisy.completed, noisy.submitted);
  EXPECT_EQ(quiet.shed + quiet.expired + quiet.completed, quiet.submitted);
  // Both tenants are enumerable and mirrored in the registry.
  const auto tenants = scheduler.tenants();
  EXPECT_NE(std::find(tenants.begin(), tenants.end(), "aggressor"),
            tenants.end());
  EXPECT_NE(std::find(tenants.begin(), tenants.end(), "victim"),
            tenants.end());
  EXPECT_GE(MetricsRegistry::Global()
                .GetCounter("serve.qos.aggressor.shed")
                ->Value(),
            noisy.shed);
}

TEST(QosTest, InteractiveLaneOvertakesEarlierBatchTraffic) {
  Rng rng(62);
  const auto engine = Engine::Create(SmallSpreadData(200, 8, &rng));
  ASSERT_TRUE(engine.ok());
  RecordingEngine recorder(engine->get());
  BatchSchedulerOptions options;
  // Inline pool + singleton groups: the recorded order IS the dispatch
  // order, deterministically.
  options.num_threads = 0;
  options.max_batch = 2;
  options.use_batch_execution = false;
  BatchScheduler scheduler(&recorder, options);

  scheduler.Pause();
  RequestContext batch_ctx;
  batch_ctx.priority = RequestPriority::kBatch;
  RequestContext interactive_ctx;
  interactive_ctx.priority = RequestPriority::kInteractive;
  std::vector<std::future<BatchScheduler::Result>> futures;
  // Four batch-priority requests enqueue FIRST (markers 1..4), then two
  // interactive ones (markers 5, 6).
  for (int marker = 1; marker <= 4; ++marker) {
    std::vector<double> q(8, 0.1);
    q[0] = 0.01 * marker;
    futures.push_back(scheduler.Submit({q, {}, batch_ctx}));
  }
  for (int marker = 5; marker <= 6; ++marker) {
    std::vector<double> q(8, 0.1);
    q[0] = 0.01 * marker;
    futures.push_back(scheduler.Submit({q, {}, interactive_ctx}));
  }
  scheduler.Resume();
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());
  scheduler.Drain();

  const std::vector<int> order = recorder.order();
  ASSERT_EQ(order.size(), 6u);
  // The first dispatched request is interactive, and every interactive
  // request runs before the batch lane's tail (markers 3 and 4) —
  // later-arriving high-priority traffic overtook the earlier batch
  // queue under weighted dispatch.
  EXPECT_EQ(order.front(), 5);
  const auto pos = [&](int marker) {
    return std::find(order.begin(), order.end(), marker) - order.begin();
  };
  EXPECT_LT(pos(5), pos(3));
  EXPECT_LT(pos(5), pos(4));
  EXPECT_LT(pos(6), pos(3));
  EXPECT_LT(pos(6), pos(4));
}

TEST(QosTest, FillLevelAdmissionShedsLowPriorityFirst) {
  Rng rng(63);
  const auto engine = Engine::Create(SmallSpreadData(200, 8, &rng));
  ASSERT_TRUE(engine.ok());
  BatchSchedulerOptions options;
  options.num_threads = 0;
  options.max_queue = 10;
  options.qos.batch_shed_fill = 0.3;  // kBatch sheds above 3 queued
  BatchScheduler scheduler(engine->get(), options);

  scheduler.Pause();  // everything queues; fill level climbs
  RequestContext batch_ctx;
  batch_ctx.priority = RequestPriority::kBatch;
  RequestContext interactive_ctx;
  interactive_ctx.priority = RequestPriority::kInteractive;
  std::vector<std::future<BatchScheduler::Result>> batch_futures;
  std::vector<std::future<BatchScheduler::Result>> interactive_futures;
  for (int i = 0; i < 8; ++i) {
    batch_futures.push_back(
        scheduler.Submit({std::vector<double>(8, 0.1), {}, batch_ctx}));
  }
  for (int i = 0; i < 6; ++i) {
    interactive_futures.push_back(scheduler.Submit(
        {std::vector<double>(8, 0.1), {}, interactive_ctx}));
  }
  scheduler.Resume();
  std::size_t batch_shed = 0;
  for (auto& future : batch_futures) {
    const auto result = future.get();
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      ++batch_shed;
    }
  }
  // The batch lane overflowed its fill bound (3 of 10) while every
  // interactive submission was admitted and served.
  EXPECT_GE(batch_shed, 4u);
  for (auto& future : interactive_futures) {
    EXPECT_TRUE(future.get().ok());
  }
  scheduler.Drain();
  const SchedulerCounters counters = scheduler.counters();
  EXPECT_EQ(counters.shed + counters.completed + counters.expired,
            counters.submitted);
}

}  // namespace
}  // namespace ips
