// Tests for the matrix-multiplication substrate (blocked + Strassen)
// and the algebraic join, plus the LEMP-style norm-range index.

#include <gtest/gtest.h>

#include <cmath>

#include "core/algebraic_join.h"
#include "core/dataset.h"
#include "core/mips_index.h"
#include "core/norm_range_index.h"
#include "core/similarity_join.h"
#include "linalg/matmul.h"
#include "linalg/kernels.h"
#include "rng/random.h"

namespace ips {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng->NextGaussian();
  return m;
}

// Reference O(n^3) multiply with no blocking tricks.
Matrix NaiveMultiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t t = 0; t < a.cols(); ++t) {
        sum += a.At(i, t) * b.At(t, j);
      }
      c.At(i, j) = sum;
    }
  }
  return c;
}

void ExpectMatrixNear(const Matrix& a, const Matrix& b, double tolerance) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a.At(i, j), b.At(i, j), tolerance)
          << "at (" << i << "," << j << ")";
    }
  }
}

struct MulShape {
  std::size_t m, k, p;
};

class MultiplySweep : public ::testing::TestWithParam<MulShape> {};

TEST_P(MultiplySweep, BlockedMatchesNaive) {
  const auto [m, k, p] = GetParam();
  Rng rng(3);
  const Matrix a = RandomMatrix(m, k, &rng);
  const Matrix b = RandomMatrix(k, p, &rng);
  ExpectMatrixNear(Multiply(a, b), NaiveMultiply(a, b), 1e-9);
}

TEST_P(MultiplySweep, StrassenMatchesNaive) {
  const auto [m, k, p] = GetParam();
  Rng rng(5);
  const Matrix a = RandomMatrix(m, k, &rng);
  const Matrix b = RandomMatrix(k, p, &rng);
  // Small cutoff exercises several recursion levels.
  ExpectMatrixNear(MultiplyStrassen(a, b, 4), NaiveMultiply(a, b), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MultiplySweep,
                         ::testing::Values(MulShape{1, 1, 1},
                                           MulShape{3, 5, 7},
                                           MulShape{16, 16, 16},
                                           MulShape{33, 47, 20},
                                           MulShape{64, 8, 64},
                                           MulShape{40, 70, 9}));

TEST(MatmulTest, IdentityIsNeutral) {
  Rng rng(7);
  const Matrix a = RandomMatrix(9, 9, &rng);
  Matrix identity(9, 9);
  for (std::size_t i = 0; i < 9; ++i) identity.At(i, i) = 1.0;
  ExpectMatrixNear(Multiply(a, identity), a, 1e-12);
  ExpectMatrixNear(MultiplyStrassen(identity, a, 2), a, 1e-12);
}

TEST(MatmulTest, TransposeRoundTrip) {
  Rng rng(11);
  const Matrix a = RandomMatrix(5, 8, &rng);
  const Matrix att = Transpose(Transpose(a));
  ExpectMatrixNear(att, a, 0.0);
  EXPECT_EQ(Transpose(a).rows(), 8u);
  EXPECT_EQ(Transpose(a).cols(), 5u);
}

TEST(MatmulTest, PairwiseInnerProductsMatchDots) {
  Rng rng(13);
  const Matrix data = RandomMatrix(20, 6, &rng);
  const Matrix queries = RandomMatrix(7, 6, &rng);
  for (const bool strassen : {false, true}) {
    const Matrix g = PairwiseInnerProducts(queries, data, strassen);
    ASSERT_EQ(g.rows(), 7u);
    ASSERT_EQ(g.cols(), 20u);
    for (std::size_t i = 0; i < 7; ++i) {
      for (std::size_t j = 0; j < 20; ++j) {
        EXPECT_NEAR(g.At(i, j), kernels::Dot(queries.Row(i), data.Row(j)), 1e-9);
      }
    }
  }
}

TEST(MatmulJoinTest, AgreesWithExactJoin) {
  Rng rng(17);
  const Matrix data = MakeUnitBallGaussian(80, 10, 0.3, &rng);
  const Matrix queries = MakeUnitBallGaussian(25, 10, 0.9, &rng);
  for (const bool is_signed : {true, false}) {
    JoinSpec spec;
    spec.s = 0.3;
    spec.c = 0.5;
    spec.is_signed = is_signed;
    const JoinResult exact = ExactJoin(data, queries, spec, nullptr);
    for (const bool strassen : {false, true}) {
      const JoinResult algebraic = MatmulJoin(data, queries, spec, strassen);
      ASSERT_EQ(algebraic.per_query.size(), exact.per_query.size());
      for (std::size_t qi = 0; qi < exact.per_query.size(); ++qi) {
        ASSERT_EQ(algebraic.per_query[qi].has_value(),
                  exact.per_query[qi].has_value());
        if (exact.per_query[qi].has_value()) {
          EXPECT_NEAR(algebraic.per_query[qi]->value,
                      exact.per_query[qi]->value, 1e-9);
        }
      }
    }
  }
}

// --- Norm-range (LEMP) index ---

TEST(NormRangeIndexTest, ExactOnSkewedData) {
  Rng rng(19);
  const std::size_t kDim = 16;
  const Matrix items = MakeLatentFactorVectors(600, kDim, 0.5, &rng);
  NormRangeParams params;
  params.bucket_size = 64;
  params.lsh_cosine_threshold = 2.0;  // never use LSH: always scan
  const NormRangeIndex index(items, params, &rng);
  const BruteForceIndex brute(items);
  JoinSpec spec;
  spec.s = 0.0;
  spec.c = 1.0 - 1e-9;
  spec.is_signed = true;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(kDim);
    for (double& v : q) v = rng.NextGaussian();
    const auto got = index.Search(q, spec);
    const auto want = brute.Search(q, spec);
    ASSERT_EQ(got.has_value(), want.has_value());
    if (want.has_value()) {
      EXPECT_NEAR(got->value, want->value, 1e-9);
    }
  }
}

TEST(NormRangeIndexTest, PrunesLowNormBuckets) {
  Rng rng(23);
  const std::size_t kDim = 12;
  // Strong skew: the top bucket dominates, later buckets prunable.
  const Matrix items = MakeLatentFactorVectors(1000, kDim, 1.0, &rng);
  NormRangeParams params;
  params.bucket_size = 50;
  const NormRangeIndex index(items, params, &rng);
  EXPECT_EQ(index.num_buckets(), 20u);
  JoinSpec spec;
  spec.s = 0.2;
  spec.c = 0.9;
  spec.is_signed = true;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(kDim);
    for (double& v : q) v = rng.NextGaussian();
    kernels::NormalizeInPlace(q);
    (void)index.Search(q, spec);
  }
  // At skew 1.0, item norms fall below 0.2 after rank ~5, so nearly all
  // buckets get pruned on every query.
  EXPECT_GT(index.BucketsPruned(), 0u);
  EXPECT_LT(index.InnerProductsEvaluated(), 10u * 1000u / 2);
}

TEST(NormRangeIndexTest, ContractOnPlantedData) {
  Rng rng(29);
  const std::size_t kDim = 20;
  const PlantedInstance planted =
      MakePlantedInstance(500, 20, kDim, 0.9, 1.0, &rng);
  NormRangeParams params;
  params.bucket_size = 64;
  params.lsh_cosine_threshold = 0.75;
  params.lsh_params.k = 6;
  params.lsh_params.l = 24;
  const NormRangeIndex index(planted.data, params, &rng);
  JoinSpec spec;
  spec.s = 0.8;
  spec.c = 0.7;
  spec.is_signed = true;
  const JoinResult truth =
      ExactJoin(planted.data, planted.queries, spec, nullptr);
  const JoinResult result = IndexJoin(index, planted.queries, spec);
  double recall = 0.0;
  VerifyJoinContract(result, truth, spec, &recall);
  EXPECT_GE(recall, 0.85);
}

TEST(NormRangeIndexTest, RejectsUnsignedQueries) {
  Rng rng(31);
  const Matrix items = MakeUnitBallGaussian(50, 8, 0.5, &rng);
  const NormRangeIndex index(items, NormRangeParams{}, &rng);
  JoinSpec spec;
  spec.is_signed = false;
  std::vector<double> q(8, 0.5);
  EXPECT_DEATH(index.Search(q, spec), "signed");
}

}  // namespace
}  // namespace ips
