// Tests for src/embed: the combinator algebra laws, Chebyshev
// polynomials, and exhaustive/randomized verification of the three
// Lemma 3 gap embeddings -- the core objects behind Theorems 1 and 2.

#include <gtest/gtest.h>

#include <cmath>

#include "embed/binary_embedding.h"
#include "embed/chebyshev.h"
#include "embed/chebyshev_embedding.h"
#include "embed/combinators.h"
#include "embed/sign_embedding.h"
#include "linalg/kernels.h"
#include "rng/random.h"

namespace ips {
namespace {

std::vector<double> RandomVector(std::size_t dim, Rng* rng) {
  std::vector<double> v(dim);
  for (double& x : v) x = rng->NextGaussian();
  return v;
}

std::vector<double> RandomBinary(std::size_t dim, double density, Rng* rng) {
  std::vector<double> v(dim, 0.0);
  for (double& x : v) x = rng->NextBernoulli(density) ? 1.0 : 0.0;
  return v;
}

std::size_t BinaryDot(const std::vector<double>& x,
                      const std::vector<double>& y) {
  std::size_t t = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] == 1.0 && y[i] == 1.0) ++t;
  }
  return t;
}

// --- Combinator laws (footnote 4: ++ / (*) are dual to + / * on inner
// products) ---

TEST(CombinatorTest, ConcatAddsInnerProducts) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto x1 = RandomVector(5, &rng);
    const auto x2 = RandomVector(7, &rng);
    const auto y1 = RandomVector(5, &rng);
    const auto y2 = RandomVector(7, &rng);
    EXPECT_NEAR(kernels::Dot(Concat(x1, x2), Concat(y1, y2)),
                kernels::Dot(x1, y1) + kernels::Dot(x2, y2), 1e-9);
  }
}

TEST(CombinatorTest, TensorMultipliesInnerProducts) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto x1 = RandomVector(4, &rng);
    const auto x2 = RandomVector(6, &rng);
    const auto y1 = RandomVector(4, &rng);
    const auto y2 = RandomVector(6, &rng);
    EXPECT_NEAR(kernels::Dot(Tensor(x1, x2), Tensor(y1, y2)),
                kernels::Dot(x1, y1) * kernels::Dot(x2, y2), 1e-9);
  }
}

TEST(CombinatorTest, RepeatScalesInnerProducts) {
  Rng rng(3);
  const auto x = RandomVector(5, &rng);
  const auto y = RandomVector(5, &rng);
  EXPECT_NEAR(kernels::Dot(Repeat(x, 9), Repeat(y, 9)), 9.0 * kernels::Dot(x, y), 1e-9);
}

TEST(CombinatorTest, NegateFlipsInnerProducts) {
  Rng rng(4);
  const auto x = RandomVector(5, &rng);
  const auto y = RandomVector(5, &rng);
  EXPECT_NEAR(kernels::Dot(Negate(x), y), -kernels::Dot(x, y), 1e-12);
}

TEST(CombinatorTest, AppendConstantTranslates) {
  Rng rng(5);
  const auto x = RandomVector(5, &rng);
  const auto y = RandomVector(5, &rng);
  // Appending 1s to one side and -1s to the other translates by -count.
  const auto xe = AppendConstant(x, 1.0, 6);
  const auto ye = AppendConstant(y, -1.0, 6);
  EXPECT_NEAR(kernels::Dot(xe, ye), kernels::Dot(x, y) - 6.0, 1e-12);
}

TEST(CombinatorTest, Dimensions) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {3, 4, 5};
  EXPECT_EQ(Concat(x, y).size(), 5u);
  EXPECT_EQ(Tensor(x, y).size(), 6u);
  EXPECT_EQ(Repeat(x, 4).size(), 8u);
  EXPECT_EQ(AppendConstant(x, 0.5, 3).size(), 5u);
}

// --- Chebyshev polynomials ---

TEST(ChebyshevTest, KnownValues) {
  // T_2(x) = 2x^2 - 1, T_3(x) = 4x^3 - 3x.
  EXPECT_DOUBLE_EQ(ChebyshevT(0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(ChebyshevT(1, 0.3), 0.3);
  EXPECT_NEAR(ChebyshevT(2, 0.3), 2 * 0.09 - 1, 1e-12);
  EXPECT_NEAR(ChebyshevT(3, 0.5), 4 * 0.125 - 1.5, 1e-12);
}

TEST(ChebyshevTest, BoundedOnUnitInterval) {
  for (unsigned q = 0; q <= 12; ++q) {
    for (double x = -1.0; x <= 1.0; x += 0.05) {
      EXPECT_LE(std::abs(ChebyshevT(q, x)), 1.0 + 1e-9) << "q=" << q;
    }
  }
}

TEST(ChebyshevTest, GrowthOutsideUnitInterval) {
  // T_q(1 + eps) = cosh(q arccosh(1 + eps)) >= e^(q sqrt(eps)) / 2 for
  // 0 < eps <= 1/2 (the 1/2 is why the paper's s carries a /2 factor).
  for (unsigned q = 1; q <= 10; ++q) {
    for (double eps : {0.05, 0.1, 0.25, 0.45}) {
      EXPECT_GE(ChebyshevT(q, 1.0 + eps),
                0.5 * std::exp(q * std::sqrt(eps)) * 0.999)
          << "q=" << q << " eps=" << eps;
      // And matches the cosh closed form exactly.
      EXPECT_NEAR(ChebyshevT(q, 1.0 + eps),
                  std::cosh(q * std::acosh(1.0 + eps)),
                  1e-9 * std::cosh(q * std::acosh(1.0 + eps)));
    }
  }
}

TEST(ChebyshevTest, ScaledMatchesDefinition) {
  for (unsigned q = 0; q <= 8; ++q) {
    for (double b : {2.0, 6.0, 16.0}) {
      for (double u : {-b, -1.0, 0.0, 2.5, b, b + 2}) {
        EXPECT_NEAR(ScaledChebyshev(q, b, u),
                    std::pow(b, q) * ChebyshevT(q, u / b),
                    1e-6 * std::abs(std::pow(b, q)) + 1e-9)
            << "q=" << q << " b=" << b << " u=" << u;
      }
    }
  }
}

// --- Embedding 1: signed (d, 4d-4, 0, 4) into {-1,1} ---

class SignedEmbeddingSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SignedEmbeddingSweep, ExactGapFormula) {
  const std::size_t d = GetParam();
  const SignedGapEmbedding embedding(d);
  EXPECT_EQ(embedding.output_dim(), 4 * d - 4);
  EXPECT_TRUE(embedding.IsSigned());
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = RandomBinary(d, 0.4, &rng);
    const auto y = RandomBinary(d, 0.4, &rng);
    const auto fx = embedding.EmbedLeft(x);
    const auto gy = embedding.EmbedRight(y);
    ASSERT_EQ(fx.size(), embedding.output_dim());
    ASSERT_EQ(gy.size(), embedding.output_dim());
    // Entries stay in {-1, +1}.
    for (double v : fx) EXPECT_TRUE(v == 1.0 || v == -1.0);
    for (double v : gy) EXPECT_TRUE(v == 1.0 || v == -1.0);
    // <f(x), g(y)> = 4 - 4 x^T y exactly.
    const double expected = 4.0 - 4.0 * static_cast<double>(BinaryDot(x, y));
    EXPECT_DOUBLE_EQ(kernels::Dot(fx, gy), expected);
    if (BinaryDot(x, y) == 0) {
      EXPECT_GE(kernels::Dot(fx, gy), embedding.s());
    } else {
      EXPECT_LE(kernels::Dot(fx, gy), embedding.cs());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SignedEmbeddingSweep,
                         ::testing::Values(4, 5, 8, 13, 32, 64));

TEST(SignedEmbeddingTest, RejectsTinyDimension) {
  EXPECT_DEATH(SignedGapEmbedding(3), "IPS_CHECK_GE");
}

// --- Embedding 2: Chebyshev into {-1,1} ---

struct ChebyshevEmbedCase {
  std::size_t d;
  unsigned q;
};

class ChebyshevEmbeddingSweep
    : public ::testing::TestWithParam<ChebyshevEmbedCase> {};

TEST_P(ChebyshevEmbeddingSweep, InnerProductIsScaledChebyshev) {
  const auto [d, q] = GetParam();
  const ChebyshevGapEmbedding embedding(d, q);
  Rng rng(202);
  for (int trial = 0; trial < 12; ++trial) {
    const auto x = RandomBinary(d, 0.35, &rng);
    const auto y = RandomBinary(d, 0.35, &rng);
    const auto fx = embedding.EmbedLeft(x);
    const auto gy = embedding.EmbedRight(y);
    ASSERT_EQ(fx.size(), embedding.output_dim());
    ASSERT_EQ(gy.size(), embedding.output_dim());
    for (double v : fx) ASSERT_TRUE(v == 1.0 || v == -1.0);
    for (double v : gy) ASSERT_TRUE(v == 1.0 || v == -1.0);
    const std::size_t t = BinaryDot(x, y);
    // <f_q(x), g_q(y)> = (2d)^q T_q((2d + 2 - 4t) / 2d) exactly.
    EXPECT_DOUBLE_EQ(kernels::Dot(fx, gy), embedding.PredictedInnerProduct(t));
  }
}

TEST_P(ChebyshevEmbeddingSweep, GapPropertyHolds) {
  const auto [d, q] = GetParam();
  const ChebyshevGapEmbedding embedding(d, q);
  EXPECT_GT(embedding.s(), embedding.cs());
  // Orthogonal pairs reach exactly s.
  EXPECT_DOUBLE_EQ(embedding.PredictedInnerProduct(0), embedding.s());
  // Any overlap t in [1, d] stays below cs in magnitude.
  for (std::size_t t = 1; t <= d; ++t) {
    EXPECT_LE(std::abs(embedding.PredictedInnerProduct(t)),
              embedding.cs() + 1e-9)
        << "t=" << t;
  }
}

TEST_P(ChebyshevEmbeddingSweep, DimensionWithinNineDToTheQ) {
  const auto [d, q] = GetParam();
  const ChebyshevGapEmbedding embedding(d, q);
  if (d >= 8) {
    EXPECT_LE(static_cast<double>(embedding.output_dim()),
              std::pow(9.0 * static_cast<double>(d), q));
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, ChebyshevEmbeddingSweep,
                         ::testing::Values(ChebyshevEmbedCase{4, 1},
                                           ChebyshevEmbedCase{4, 2},
                                           ChebyshevEmbedCase{4, 3},
                                           ChebyshevEmbedCase{8, 2},
                                           ChebyshevEmbedCase{8, 3},
                                           ChebyshevEmbedCase{12, 2},
                                           ChebyshevEmbedCase{16, 2}));

TEST(ChebyshevEmbeddingTest, ApproximationImprovesWithQ) {
  // c = cs/s = 1/T_q(1 + 1/d) shrinks as q grows.
  const ChebyshevGapEmbedding e1(8, 1);
  const ChebyshevGapEmbedding e2(8, 2);
  const ChebyshevGapEmbedding e3(8, 3);
  EXPECT_GT(e1.c(), e2.c());
  EXPECT_GT(e2.c(), e3.c());
}

// --- Embedding 3: binary chunk embedding into {0,1} ---

struct BinaryEmbedCase {
  std::size_t d;
  std::size_t k;
};

class BinaryEmbeddingSweep
    : public ::testing::TestWithParam<BinaryEmbedCase> {};

TEST_P(BinaryEmbeddingSweep, InnerProductCountsOrthogonalChunks) {
  const auto [d, k] = GetParam();
  const BinaryChunkEmbedding embedding(d, k);
  EXPECT_EQ(embedding.s(), static_cast<double>(k));
  EXPECT_EQ(embedding.cs(), static_cast<double>(k - 1));
  Rng rng(303);
  for (int trial = 0; trial < 40; ++trial) {
    const auto x = RandomBinary(d, 0.3, &rng);
    const auto y = RandomBinary(d, 0.3, &rng);
    const auto fx = embedding.EmbedLeft(x);
    const auto gy = embedding.EmbedRight(y);
    ASSERT_EQ(fx.size(), embedding.output_dim());
    for (double v : fx) ASSERT_TRUE(v == 0.0 || v == 1.0);
    for (double v : gy) ASSERT_TRUE(v == 0.0 || v == 1.0);
    const double expected =
        static_cast<double>(embedding.OrthogonalChunks(x, y));
    EXPECT_DOUBLE_EQ(kernels::Dot(fx, gy), expected);
    if (BinaryDot(x, y) == 0) {
      EXPECT_GE(kernels::Dot(fx, gy), embedding.s());  // all chunks orthogonal
    } else {
      EXPECT_LE(kernels::Dot(fx, gy), embedding.cs());  // some chunk conflicts
    }
  }
}

TEST_P(BinaryEmbeddingSweep, OutputDimMatchesFormulaWhenDivisible) {
  const auto [d, k] = GetParam();
  const BinaryChunkEmbedding embedding(d, k);
  if (d % k == 0) {
    EXPECT_EQ(embedding.output_dim(), k * (1ULL << (d / k)));
  } else {
    EXPECT_LT(embedding.output_dim(), k * (1ULL << (d / k + 1)));
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, BinaryEmbeddingSweep,
                         ::testing::Values(BinaryEmbedCase{8, 1},
                                           BinaryEmbedCase{8, 2},
                                           BinaryEmbedCase{8, 4},
                                           BinaryEmbedCase{8, 8},
                                           BinaryEmbedCase{12, 3},
                                           BinaryEmbedCase{13, 4},
                                           BinaryEmbedCase{16, 4},
                                           BinaryEmbedCase{20, 5}));

TEST(BinaryEmbeddingTest, KEqualsDGivesDimension2D) {
  // The Theorem 2 parametrization takes k = d, giving d2 = 2d.
  const BinaryChunkEmbedding embedding(10, 10);
  EXPECT_EQ(embedding.output_dim(), 20u);
}

TEST(BinaryEmbeddingTest, ExhaustiveSmallDimension) {
  // All 2^5 x 2^5 input pairs at d = 5, k = 2.
  const std::size_t d = 5;
  const BinaryChunkEmbedding embedding(d, 2);
  for (std::size_t xm = 0; xm < 32; ++xm) {
    for (std::size_t ym = 0; ym < 32; ++ym) {
      std::vector<double> x(d), y(d);
      for (std::size_t b = 0; b < d; ++b) {
        x[b] = (xm >> b) & 1 ? 1.0 : 0.0;
        y[b] = (ym >> b) & 1 ? 1.0 : 0.0;
      }
      const double value =
          kernels::Dot(embedding.EmbedLeft(x), embedding.EmbedRight(y));
      if (BinaryDot(x, y) == 0) {
        EXPECT_DOUBLE_EQ(value, embedding.s());
      } else {
        EXPECT_LE(value, embedding.cs());
      }
    }
  }
}

TEST(GapEmbeddingTest, ApproximationFactorAccessor) {
  const BinaryChunkEmbedding embedding(12, 4);
  EXPECT_DOUBLE_EQ(embedding.c(), 3.0 / 4.0);
}

}  // namespace
}  // namespace ips
