// Tests for the quantized two-stage scoring stack (DESIGN.md §13):
// bitwise scalar/AVX2 parity of the int8 kernels (the integer contract
// of kernels.h — EXPECT_EQ, no tolerance), the QuantizedMatrix /
// QuantizeVector code contract, the rigorous ErrorBound (which is what
// makes the LSH bucket-join prefilter lossless), quantized-rerank
// top-k against exact ground truth, the filter recall sweep over
// survivor oversampling, the precision support matrix of all four
// indexes, and the two-stage accounting fields.
//
// The CI quant leg runs this same binary twice: once dispatched and
// once under IPS_FORCE_SCALAR=1 (quant_test_scalar in
// tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/dataset.h"
#include "core/mips_index.h"
#include "core/query.h"
#include "core/top_k.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/quantized.h"
#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "sketch/filter.h"

namespace ips {
namespace {

// Tail coverage for the AVX2 int8 kernel: the 32-wide main loop plus
// every remainder class.
constexpr std::size_t kCodeSizes[] = {1, 2, 3, 7, 8, 15, 16, 17, 31,
                                      32, 33, 63, 64, 65, 100, 128, 257};

std::vector<std::int8_t> RandomCodes(std::size_t n, Rng* rng) {
  std::vector<std::int8_t> codes(n);
  for (auto& c : codes) {
    c = static_cast<std::int8_t>(
        static_cast<int>(rng->NextUint64() % 255) - 127);
  }
  return codes;
}

// int64 reference: exact for any code vectors, so it checks both
// implementations' int32 accumulation under the [-127, 127] contract.
std::int64_t ReferenceDotI8(const std::vector<std::int8_t>& x,
                            const std::vector<std::int8_t>& y) {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<std::int64_t>(x[i]) * static_cast<std::int64_t>(y[i]);
  }
  return acc;
}

TEST(QuantKernelTest, ScalarMatchesReferenceExactly) {
  Rng rng(11);
  for (std::size_t n : kCodeSizes) {
    for (int rep = 0; rep < 4; ++rep) {
      const auto x = RandomCodes(n, &rng);
      const auto y = RandomCodes(n, &rng);
      EXPECT_EQ(kernels::ScalarOps().dot_i8(x.data(), y.data(), n),
                ReferenceDotI8(x, y));
    }
  }
}

TEST(QuantKernelTest, Avx2MatchesScalarBitwise) {
  if (!kernels::Avx2Available()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(12);
  for (std::size_t n : kCodeSizes) {
    for (int rep = 0; rep < 8; ++rep) {
      const auto x = RandomCodes(n, &rng);
      const auto y = RandomCodes(n, &rng);
      // Integer kernels are bitwise identical across implementations —
      // no tolerance, unlike the double kernels.
      EXPECT_EQ(kernels::Avx2Ops().dot_i8(x.data(), y.data(), n),
                kernels::ScalarOps().dot_i8(x.data(), y.data(), n))
          << "n=" << n;
    }
  }
}

TEST(QuantKernelTest, ExtremeCodesDoNotSaturate) {
  // All-(-127) x all-(+127) over the largest supported length is the
  // worst case of the i16 pair-sum pipeline: 2^17 * 127^2 < 2^31.
  const std::size_t n = std::size_t{1} << 17;
  std::vector<std::int8_t> x(n, -127);
  std::vector<std::int8_t> y(n, 127);
  const std::int64_t expected = -static_cast<std::int64_t>(n) * 127 * 127;
  EXPECT_EQ(kernels::ScalarOps().dot_i8(x.data(), y.data(), n), expected);
  if (kernels::Avx2Available()) {
    EXPECT_EQ(kernels::Avx2Ops().dot_i8(x.data(), y.data(), n), expected);
  }
  // Mixed extremes: alternate signs so the maddubs pair sums straddle
  // the positive and negative i16 extremes.
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = (i % 2 == 0) ? 127 : -127;
    y[i] = 127;
  }
  const std::int64_t ref = ReferenceDotI8(x, y);
  EXPECT_EQ(kernels::ScalarOps().dot_i8(x.data(), y.data(), n), ref);
  if (kernels::Avx2Available()) {
    EXPECT_EQ(kernels::Avx2Ops().dot_i8(x.data(), y.data(), n), ref);
  }
}

TEST(QuantKernelTest, ScoreBlockI8MatchesRowwiseDot) {
  Rng rng(13);
  for (std::size_t cols : {3UL, 16UL, 33UL, 64UL}) {
    const std::size_t rows = 37;
    std::vector<std::int8_t> codes;
    for (std::size_t r = 0; r < rows; ++r) {
      const auto row = RandomCodes(cols, &rng);
      codes.insert(codes.end(), row.begin(), row.end());
    }
    const auto q = RandomCodes(cols, &rng);
    std::vector<std::int32_t> scalar_out(rows), avx2_out(rows);
    kernels::ScalarOps().score_block_i8(codes.data(), rows, cols, q.data(),
                                        scalar_out.data());
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(scalar_out[r], kernels::ScalarOps().dot_i8(
                                   codes.data() + r * cols, q.data(), cols));
    }
    if (!kernels::Avx2Available()) continue;
    kernels::Avx2Ops().score_block_i8(codes.data(), rows, cols, q.data(),
                                      avx2_out.data());
    EXPECT_EQ(scalar_out, avx2_out) << "cols=" << cols;
  }
}

TEST(QuantKernelTest, DispatchHonorsForceScalar) {
  const char* forced = std::getenv("IPS_FORCE_SCALAR");
  const bool force = forced != nullptr && std::string_view(forced) != "0" &&
                     std::string_view(forced) != "";
  if (force || !kernels::Avx2Available()) {
    EXPECT_STREQ(kernels::ActiveOps().name, "scalar");
  } else {
    EXPECT_STREQ(kernels::ActiveOps().name, "avx2");
  }
}

// ---------------------------------------------------------------------
// QuantizedMatrix / QuantizeVector contract.
// ---------------------------------------------------------------------

TEST(QuantizedMatrixTest, CodesStayInContractRange) {
  Rng rng(21);
  // Latent-factor data has the norm spread that stresses per-block
  // scales: popular rows are orders of magnitude larger than the tail.
  const Matrix data = MakeLatentFactorVectors(257, 19, 1.0, &rng);
  const QuantizedMatrix qdata = QuantizedMatrix::Quantize(data);
  ASSERT_EQ(qdata.rows(), data.rows());
  ASSERT_EQ(qdata.cols(), data.cols());
  for (std::size_t r = 0; r < qdata.rows(); ++r) {
    double l1 = 0.0;
    for (std::size_t j = 0; j < qdata.cols(); ++j) {
      const int code = qdata.RowCodes(r)[j];
      EXPECT_GE(code, -127);
      EXPECT_LE(code, 127);
      l1 += std::abs(code);
    }
    EXPECT_EQ(qdata.RowCodeL1(r), l1);
    EXPECT_GE(qdata.RowScale(r), 0.0);
  }
}

TEST(QuantizedMatrixTest, ZeroVectorQuantizesToExactZero) {
  const std::vector<double> zeros(16, 0.0);
  const QuantizedVector q = QuantizeVector(zeros);
  EXPECT_EQ(q.scale, 0.0);
  EXPECT_EQ(q.code_l1, 0.0);
  for (const auto code : q.codes) EXPECT_EQ(code, 0);
}

TEST(QuantizedMatrixTest, QuantizeVectorHitsFullCodeRange) {
  // The max-|entry| coordinate must map to ±127 exactly (symmetric
  // quantization wastes no range).
  const std::vector<double> x = {0.5, -2.0, 1.0, 0.0};
  const QuantizedVector q = QuantizeVector(x);
  EXPECT_EQ(q.codes[1], -127);
  EXPECT_NEAR(q.scale, 2.0 / 127.0, 1e-15);
}

TEST(QuantizedMatrixTest, ErrorBoundIsRigorous) {
  Rng rng(22);
  // Both workload shapes: tight norms and the skewed latent-factor
  // spread. The bound certifying |exact - est| <= ErrorBound is exactly
  // the property the LSH bucket-join prefilter relies on for
  // losslessness, so this test is its correctness certificate.
  for (const Matrix& data :
       {MakeUnitBallGaussian(200, 23, 0.3, &rng),
        MakeLatentFactorVectors(200, 23, 1.2, &rng)}) {
    const QuantizedMatrix qdata = QuantizedMatrix::Quantize(data);
    for (int rep = 0; rep < 20; ++rep) {
      std::vector<double> query(data.cols());
      for (double& v : query) v = rng.NextGaussian() * 3.0;
      const QuantizedVector qq = QuantizeVector(query);
      std::vector<double> est(data.rows());
      qdata.EstimateAll(qq, est);
      for (std::size_t r = 0; r < data.rows(); ++r) {
        const double exact = kernels::Dot(data.Row(r), query);
        const double bound = qdata.ErrorBound(r, qq);
        EXPECT_LE(std::abs(exact - est[r]), bound + 1e-12)
            << "row " << r << " rep " << rep;
      }
    }
  }
}

TEST(QuantizedMatrixTest, EstimateGatheredMatchesEstimateAll) {
  Rng rng(23);
  const Matrix data = MakeUnitBallGaussian(97, 17, 0.3, &rng);
  const QuantizedMatrix qdata = QuantizedMatrix::Quantize(data);
  std::vector<double> query(data.cols());
  for (double& v : query) v = rng.NextGaussian();
  const QuantizedVector qq = QuantizeVector(query);
  std::vector<double> all(data.rows());
  qdata.EstimateAll(qq, all);
  const std::vector<std::size_t> picks = {0, 5, 31, 32, 33, 96};
  std::vector<double> gathered(picks.size());
  qdata.EstimateGathered(qq, picks, gathered);
  for (std::size_t j = 0; j < picks.size(); ++j) {
    EXPECT_EQ(gathered[j], all[picks[j]]);
  }
}

// ---------------------------------------------------------------------
// Two-stage scoring: rerank quality, recall sweep, accounting.
// ---------------------------------------------------------------------

TEST(TwoStageTest, QuantizedRerankMatchesExactOnSeparatedData) {
  Rng rng(31);
  // Latent-factor norms separate the top-k by far more than the int8
  // rounding error, so the survivor set always contains the true
  // winners and the exact re-rank returns them in exact order.
  const Matrix data = MakeLatentFactorVectors(600, 24, 1.0, &rng);
  const QuantizedMatrix qdata = QuantizedMatrix::Quantize(data);
  QueryOptions options;
  options.k = 5;
  options.precision = QueryPrecision::kQuantizedRerank;
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<double> query(data.cols());
    for (double& v : query) v = rng.NextGaussian();
    const auto exact = TopKBruteForce(data, query, options.k, true);
    const auto reranked = QueryQuantizedRerank(data, qdata, query, options);
    ASSERT_EQ(reranked.size(), exact.size());
    for (std::size_t j = 0; j < exact.size(); ++j) {
      EXPECT_EQ(reranked[j].index, exact[j].index) << "rep " << rep;
      // Survivor scores come from the exact re-rank, not the estimate.
      EXPECT_DOUBLE_EQ(reranked[j].value, exact[j].value);
    }
  }
}

// Mean top-k recall of QueryFilteredRerank over `queries` random
// queries at the given survivor policy.
double FilterRecall(const Matrix& data, const SketchFilterParams& params,
                    std::size_t queries, Rng* rng) {
  Rng build_rng(77);
  const InnerProductFilter filter(data, params, &build_rng);
  QueryOptions options;
  options.k = 5;
  options.precision = QueryPrecision::kSketchFilter;
  std::size_t hits = 0;
  for (std::size_t qi = 0; qi < queries; ++qi) {
    std::vector<double> query(data.cols());
    for (double& v : query) v = rng->NextGaussian();
    const auto exact = TopKBruteForce(data, query, options.k, true);
    const auto approx = QueryFilteredRerank(data, filter, query, options);
    for (const auto& truth : exact) {
      for (const auto& match : approx) {
        if (match.index == truth.index) {
          ++hits;
          break;
        }
      }
    }
  }
  return static_cast<double>(hits) /
         static_cast<double>(queries * options.k);
}

TEST(TwoStageTest, FilterRecallSweepImprovesWithSurvivors) {
  Rng rng(32);
  const Matrix data = MakeLatentFactorVectors(800, 24, 1.0, &rng);
  // Same estimator (16 buckets x 4 copies) at both ends so the sweep
  // isolates the survivor oversampling knob. The copy count matters:
  // estimate noise scales with the candidate row's own norm, so on
  // skewed data a high-norm true winner can rank arbitrarily badly
  // under a noisy estimator no matter how many survivors are kept —
  // oversampling only buys recall once the estimator variance is low
  // enough that winners land inside the survivor window.
  SketchFilterParams tight;
  tight.buckets = 16;
  tight.copies = 4;
  tight.survivor_multiplier = 1.0;
  tight.survivor_floor = 5;
  SketchFilterParams wide = tight;
  wide.survivor_multiplier = 16.0;
  wide.survivor_floor = 64;
  const double tight_recall = FilterRecall(data, tight, 40, &rng);
  const double wide_recall = FilterRecall(data, wide, 40, &rng);
  // Oversampling the survivor set is what buys recall back from the
  // noisy CountSketch estimate.
  EXPECT_GE(wide_recall, tight_recall);
  EXPECT_GE(wide_recall, 0.9);
}

TEST(TwoStageTest, TwoStageStatsAndMetricsArePopulated) {
  Rng rng(33);
  const Matrix data = MakeUnitBallGaussian(500, 20, 0.3, &rng);
  const QuantizedMatrix qdata = QuantizedMatrix::Quantize(data);
  Rng build_rng(78);
  const InnerProductFilter filter(data, {}, &build_rng);
  std::vector<double> query(data.cols());
  for (double& v : query) v = rng.NextGaussian();

  QueryOptions options;
  options.k = 3;
  QueryStats quant_stats;
  (void)QueryQuantizedRerank(data, qdata, query, options, &quant_stats);
  // 500 rows, survivor set max(3*4, 32) = 32: 468 pruned, 32 reranked.
  EXPECT_GT(quant_stats.candidates_pruned, 0U);
  EXPECT_GE(quant_stats.rerank_exact_dots, options.k);
  EXPECT_EQ(quant_stats.candidates_pruned + quant_stats.rerank_exact_dots,
            data.rows());
  // Estimate pass billed at the static dot-equivalent rate.
  EXPECT_LT(quant_stats.dot_products, data.rows());
  EXPECT_EQ(quant_stats.metrics.Get("core.quant.candidates_pruned"),
            quant_stats.candidates_pruned);
  EXPECT_EQ(quant_stats.metrics.Get("core.quant.rerank_dots"),
            quant_stats.rerank_exact_dots);

  QueryStats filter_stats;
  (void)QueryFilteredRerank(data, filter, query, options, &filter_stats);
  EXPECT_GT(filter_stats.candidates_pruned, 0U);
  EXPECT_EQ(filter_stats.candidates_pruned + filter_stats.rerank_exact_dots,
            data.rows());
  EXPECT_EQ(filter_stats.metrics.Get("core.filter.candidates_pruned"),
            filter_stats.candidates_pruned);
  EXPECT_EQ(filter_stats.metrics.Get("core.filter.rerank_dots"),
            filter_stats.rerank_exact_dots);
}

TEST(TwoStageTest, SurvivorCountPolicy) {
  // max(ceil(k * multiplier), floor), capped by budget (never below k)
  // and by n.
  EXPECT_EQ(SurvivorCount(3, 1000, 0, 4.0, 32), 32U);
  EXPECT_EQ(SurvivorCount(20, 1000, 0, 4.0, 32), 80U);
  EXPECT_EQ(SurvivorCount(20, 50, 0, 4.0, 32), 50U);    // capped by n
  EXPECT_EQ(SurvivorCount(20, 1000, 40, 4.0, 32), 40U); // capped by budget
  EXPECT_EQ(SurvivorCount(20, 1000, 5, 4.0, 32), 20U);  // never below k
}

// ---------------------------------------------------------------------
// Precision support matrix across the four indexes.
// ---------------------------------------------------------------------

class PrecisionMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(41);
    data_ = MakeUnitBallGaussian(300, 16, 0.3, &rng);
    query_.resize(data_.cols());
    for (double& v : query_) v = rng.NextGaussian();
  }

  QueryOptions With(QueryPrecision precision, std::size_t k = 3,
                    bool is_signed = true) const {
    QueryOptions options;
    options.k = k;
    options.is_signed = is_signed;
    options.precision = precision;
    return options;
  }

  Matrix data_;
  std::vector<double> query_;
};

TEST_F(PrecisionMatrixTest, BruteAnswersExactAndQuantNotFilter) {
  const auto index = BruteForceIndex::Create(data_);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->Query(query_, With(QueryPrecision::kAuto)).ok());
  EXPECT_TRUE((*index)->Query(query_, With(QueryPrecision::kExact)).ok());
  const auto quant =
      (*index)->Query(query_, With(QueryPrecision::kQuantizedRerank));
  EXPECT_TRUE(quant.ok());
  const auto filtered =
      (*index)->Query(query_, With(QueryPrecision::kSketchFilter));
  ASSERT_FALSE(filtered.ok());
  EXPECT_EQ(filtered.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PrecisionMatrixTest, BruteQuantRerankEqualsExactScores) {
  const auto index = BruteForceIndex::Create(data_);
  ASSERT_TRUE(index.ok());
  const auto quant =
      (*index)->Query(query_, With(QueryPrecision::kQuantizedRerank));
  ASSERT_TRUE(quant.ok());
  ASSERT_FALSE(quant->empty());
  for (const auto& match : *quant) {
    // Whatever the selection, every returned score is an exact dot —
    // the re-rank never reports the int8 estimate.
    EXPECT_DOUBLE_EQ(match.value,
                     kernels::Dot(data_.Row(match.index), query_));
  }
}

TEST_F(PrecisionMatrixTest, TreeIsExactOnly) {
  Rng rng(42);
  const auto index = TreeMipsIndex::Create(data_, 16, &rng);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->Query(query_, With(QueryPrecision::kAuto)).ok());
  EXPECT_TRUE((*index)->Query(query_, With(QueryPrecision::kExact)).ok());
  for (const QueryPrecision rejected :
       {QueryPrecision::kQuantizedRerank, QueryPrecision::kSketchFilter}) {
    const auto result = (*index)->Query(query_, With(rejected));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(PrecisionMatrixTest, LshAnswersExactAndQuantNotFilter) {
  Rng rng(43);
  const SimpleMipsTransform transform(data_.cols(), 1.0);
  const SimHashFamily family(transform.output_dim());
  LshTableParams params;
  params.k = 6;
  params.l = 24;
  const auto index =
      LshMipsIndex::Create(data_, &transform, family, params, &rng);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->Query(query_, With(QueryPrecision::kAuto)).ok());
  EXPECT_TRUE((*index)->Query(query_, With(QueryPrecision::kExact)).ok());
  EXPECT_TRUE(
      (*index)->Query(query_, With(QueryPrecision::kQuantizedRerank)).ok());
  const auto filtered =
      (*index)->Query(query_, With(QueryPrecision::kSketchFilter));
  ASSERT_FALSE(filtered.ok());
  EXPECT_EQ(filtered.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PrecisionMatrixTest, SketchAnswersFilterAndAutoNotExactOrQuant) {
  Rng rng(44);
  const auto index = SketchIndex::Create(data_, SketchConfig{}, &rng);
  ASSERT_TRUE(index.ok());
  // kAuto: signed k=3 runs the filtered scan; unsigned k=1 descends the
  // argmax tree. Both must answer.
  EXPECT_TRUE((*index)->Query(query_, With(QueryPrecision::kAuto)).ok());
  EXPECT_TRUE(
      (*index)
          ->Query(query_, With(QueryPrecision::kAuto, 1, /*is_signed=*/false))
          .ok());
  EXPECT_TRUE(
      (*index)->Query(query_, With(QueryPrecision::kSketchFilter)).ok());
  for (const QueryPrecision rejected :
       {QueryPrecision::kExact, QueryPrecision::kQuantizedRerank}) {
    const auto result = (*index)->Query(query_, With(rejected));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(PrecisionMatrixTest, BatchQueryEnforcesTheSameMatrix) {
  Rng rng(45);
  Matrix queries(4, data_.cols());
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    for (std::size_t j = 0; j < queries.cols(); ++j) {
      queries.At(qi, j) = rng.NextGaussian();
    }
  }
  const auto brute = BruteForceIndex::Create(data_);
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(
      (*brute)->BatchQuery(queries, With(QueryPrecision::kQuantizedRerank))
          .ok());
  EXPECT_FALSE(
      (*brute)->BatchQuery(queries, With(QueryPrecision::kSketchFilter))
          .ok());
  const auto tree = TreeMipsIndex::Create(data_, 16, &rng);
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(
      (*tree)->BatchQuery(queries, With(QueryPrecision::kQuantizedRerank))
          .ok());
  const auto sketch = SketchIndex::Create(data_, SketchConfig{}, &rng);
  ASSERT_TRUE(sketch.ok());
  EXPECT_FALSE(
      (*sketch)->BatchQuery(queries, With(QueryPrecision::kExact)).ok());
  EXPECT_TRUE(
      (*sketch)->BatchQuery(queries, With(QueryPrecision::kSketchFilter))
          .ok());
}

}  // namespace
}  // namespace ips
