// Tests for the src/obs observability layer: counter/gauge/histogram
// semantics and the per-thread sharded write path (hammered from a
// ThreadPool; run under TSan via scripts/check.sh), MetricSet label
// bags, trace span nesting with counts and JSON export, and the global
// TraceRing's bounded eviction.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace ips {
namespace {

// --- MetricSet ---

TEST(MetricSetTest, SetAddGetAndInsertionOrder) {
  MetricSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.Get("missing"), 0u);
  EXPECT_FALSE(set.Has("missing"));
  set.Set("b", 2);
  set.Set("a", 1);
  set.Add("b", 3);
  set.Add("c", 4);
  EXPECT_EQ(set.Get("a"), 1u);
  EXPECT_EQ(set.Get("b"), 5u);
  EXPECT_EQ(set.Get("c"), 4u);
  ASSERT_EQ(set.items().size(), 3u);
  // Insertion order is preserved, not sorted.
  EXPECT_EQ(set.items()[0].first, "b");
  EXPECT_EQ(set.items()[1].first, "a");
  EXPECT_EQ(set.items()[2].first, "c");
  set.Set("b", 7);
  EXPECT_EQ(set.Get("b"), 7u);
  ASSERT_EQ(set.items().size(), 3u);
}

// --- Counters, gauges, histograms ---

TEST(MetricsRegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.count");
  Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->name(), "x.count");
  // Kinds are namespaced independently.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("x.count")),
            static_cast<void*>(a));
}

TEST(MetricsRegistryTest, CounterAddsAndResets) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  EXPECT_EQ(counter->Value(), 0u);
  counter->Increment();
  counter->Add(41);
  EXPECT_EQ(counter->Value(), 42u);
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0u);
}

TEST(MetricsRegistryTest, GaugeTracksValueAndMax) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("g");
  gauge->Set(3.0);
  gauge->Set(9.0);
  gauge->Set(5.0);
  EXPECT_DOUBLE_EQ(gauge->Value(), 5.0);
  EXPECT_DOUBLE_EQ(gauge->Max(), 9.0);
  gauge->Add(-2.0);
  EXPECT_DOUBLE_EQ(gauge->Value(), 3.0);
  gauge->Reset();
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
  EXPECT_DOUBLE_EQ(gauge->Max(), 0.0);
}

TEST(MetricsRegistryTest, HistogramCountsSumsAndQuantiles) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("h");
  for (int i = 0; i < 100; ++i) hist->Observe(1.0);
  EXPECT_EQ(hist->Count(), 100u);
  EXPECT_DOUBLE_EQ(hist->Sum(), 100.0);
  EXPECT_DOUBLE_EQ(hist->Mean(), 1.0);
  // Log-scale buckets: the median of all-1.0 observations lands in the
  // bucket whose upper edge is within a factor of two of the value.
  const double median = hist->ApproxQuantile(0.5);
  EXPECT_GE(median, 1.0);
  EXPECT_LE(median, 2.0);
  std::uint64_t total = 0;
  for (const std::uint64_t c : hist->BucketCounts()) total += c;
  EXPECT_EQ(total, 100u);
  hist->Reset();
  EXPECT_EQ(hist->Count(), 0u);
}

TEST(MetricsRegistryTest, ExportJsonListsEveryKind) {
  MetricsRegistry registry;
  registry.GetCounter("alpha.count")->Add(7);
  registry.GetGauge("beta.depth")->Set(2.5);
  registry.GetHistogram("gamma.seconds")->Observe(0.25);
  const auto json = registry.ExportJson();
  ASSERT_TRUE(json.ok());
  for (const char* needle :
       {"counters", "gauges", "histograms", "alpha.count", "beta.depth",
        "gamma.seconds"}) {
    EXPECT_NE(json->find(needle), std::string::npos) << needle;
  }
  // The table dashboard renders one row per metric without crashing.
  EXPECT_NO_THROW(registry.ToTable());
}

TEST(MetricsRegistryTest, ExportFailpointLeavesMetricsIntact) {
  MetricsRegistry registry;
  registry.GetCounter("kept.count")->Add(3);
  {
    ScopedFailpoint fp("obs/export");
    EXPECT_FALSE(registry.ExportJson().ok());
  }
  EXPECT_EQ(registry.GetCounter("kept.count")->Value(), 3u);
  EXPECT_TRUE(registry.ExportJson().ok());
}

// The per-thread sharded fast path: many writers, zero lost updates,
// and values that survive writer-thread exit. Run under TSan in CI.
TEST(MetricsRegistryTest, ConcurrentWritersMergeExactly) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hammer.count");
  Gauge* gauge = registry.GetGauge("hammer.gauge");
  Histogram* hist = registry.GetHistogram("hammer.hist");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20000;
  {
    ThreadPool pool(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      pool.Schedule([&] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          counter->Increment();
          gauge->Add(1.0);
          hist->Observe(0.5);
        }
      });
    }
    // Concurrent readers race the writers benignly (relaxed snapshots).
    pool.Schedule([&] {
      (void)counter->Value();
      (void)hist->Count();
      (void)registry.ExportJson();
    });
    pool.Wait();
  }
  // The pool's threads are gone; merged values are exact.
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(gauge->Value(),
                   static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(hist->Count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(hist->Sum(),
                   0.5 * static_cast<double>(kThreads * kPerThread));
}

// --- Trace spans ---

TEST(TraceTest, NestsSpansWithCountsAndFindsThem) {
  Trace trace("unit");
  {
    TraceSpan root(&trace, "root");
    {
      TraceSpan child(&trace, "child");
      child.AddCount("items", 3);
      child.AddCount("items", 2);
    }
    const std::size_t extra = trace.RecordSpan("extra", 0.5);
    trace.AddCount(extra, "items", 5);
    trace.AddCount(extra, "other", 1);
  }
  ASSERT_EQ(trace.spans().size(), 3u);
  const Trace::Span* root = trace.FindSpan("root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, Trace::kNoParent);
  EXPECT_EQ(root->depth, 0u);
  const Trace::Span* child = trace.FindSpan("child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(trace.spans()[child->parent].name, "root");
  EXPECT_EQ(child->depth, 1u);
  ASSERT_EQ(child->counts.size(), 1u);
  EXPECT_EQ(child->counts[0].second, 5u);  // 3 + 2 accumulated
  const Trace::Span* extra = trace.FindSpan("extra");
  ASSERT_NE(extra, nullptr);
  EXPECT_DOUBLE_EQ(extra->seconds, 0.5);
  EXPECT_EQ(trace.spans()[extra->parent].name, "root");
  EXPECT_EQ(trace.TotalCount("items"), 10u);
  EXPECT_EQ(trace.TotalCount("other"), 1u);
  EXPECT_EQ(trace.TotalCount("missing"), 0u);
  EXPECT_EQ(trace.FindSpan("missing"), nullptr);
  const std::string json = trace.ToJson();
  for (const char* needle : {"unit", "root", "child", "extra", "items"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  EXPECT_NO_THROW(trace.ToTable());
}

TEST(TraceTest, NullTraceSpansAreNoOps) {
  TraceSpan span(nullptr, "ghost");
  span.AddCount("items", 1);  // must not crash
}

TEST(TraceRingTest, EvictsOldestBeyondCapacity) {
  TraceRing ring(/*capacity=*/2);
  for (const char* label : {"a", "b", "c"}) {
    ring.Record(std::make_shared<const Trace>(label));
  }
  EXPECT_EQ(ring.size(), 2u);
  const auto recent = ring.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0]->label(), "c");  // most recent first
  EXPECT_EQ(recent[1]->label(), "b");
  EXPECT_EQ(ring.Recent(/*limit=*/1).size(), 1u);
  const auto json = ring.ExportJson();
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"c\""), std::string::npos);
  EXPECT_EQ(json->find("\"a\""), std::string::npos);  // evicted
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
}

// Concurrent recording into the ring (the publish path queries take
// after tracing). Run under TSan in CI.
TEST(TraceRingTest, ConcurrentRecordsStayBounded) {
  TraceRing ring(/*capacity=*/8);
  {
    ThreadPool pool(4);
    for (int t = 0; t < 4; ++t) {
      pool.Schedule([&ring, t] {
        std::string label = "t";
        label += std::to_string(t);
        for (int i = 0; i < 500; ++i) {
          auto trace = std::make_shared<Trace>(label);
          { TraceSpan span(trace.get(), "work"); }
          ring.Record(std::move(trace));
          (void)ring.Recent(/*limit=*/2);
        }
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_TRUE(ring.ExportJson().ok());
}

}  // namespace
}  // namespace ips
