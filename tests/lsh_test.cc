// Tests for src/lsh: collision probabilities of the base families
// against their closed forms, inner-product preservation of the (A)LSH
// transforms, amplification, the (K, L) table engine, and the rho
// formulas behind Figure 2.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/dataset.h"
#include "linalg/kernels.h"
#include "lsh/bucket_join.h"
#include "lsh/cross_polytope.h"
#include "lsh/bit_sample.h"
#include "lsh/e2lsh.h"
#include "lsh/lsh_family.h"
#include "lsh/minhash.h"
#include "lsh/rho.h"
#include "lsh/simhash.h"
#include "lsh/tables.h"
#include "lsh/transforms.h"
#include "rng/random.h"

namespace ips {
namespace {

std::vector<double> RandomUnit(std::size_t dim, Rng* rng) {
  std::vector<double> v(dim);
  for (double& x : v) x = rng->NextGaussian();
  kernels::NormalizeInPlace(v);
  return v;
}

// Builds a unit vector at a prescribed angle to `x`.
std::vector<double> UnitAtCosine(std::span<const double> x, double cosine,
                                 Rng* rng) {
  std::vector<double> noise = RandomUnit(x.size(), rng);
  const double along = kernels::Dot(noise, x);
  for (std::size_t i = 0; i < x.size(); ++i) noise[i] -= along * x[i];
  kernels::NormalizeInPlace(noise);
  std::vector<double> y(x.size());
  const double sine = std::sqrt(std::max(0.0, 1.0 - cosine * cosine));
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = cosine * x[i] + sine * noise[i];
  }
  return y;
}

class SimHashCosineSweep : public ::testing::TestWithParam<double> {};

TEST_P(SimHashCosineSweep, CollisionProbabilityMatchesTheory) {
  const double cosine = GetParam();
  Rng rng(11);
  const std::size_t kDim = 24;
  const SimHashFamily family(kDim);
  const auto x = RandomUnit(kDim, &rng);
  const auto y = UnitAtCosine(x, cosine, &rng);
  ASSERT_NEAR(kernels::Dot(x, y), cosine, 1e-9);
  const BernoulliEstimate estimate =
      EstimateCollisionProbability(family, x, y, 20000, &rng);
  const double expected = SimHashFamily::CollisionProbability(cosine);
  EXPECT_NEAR(estimate.p_hat, expected, estimate.HalfWidth(4.0) + 0.005);
}

INSTANTIATE_TEST_SUITE_P(Cosines, SimHashCosineSweep,
                         ::testing::Values(-0.9, -0.5, 0.0, 0.3, 0.7, 0.95));

TEST(SimHashTest, IdenticalVectorsAlwaysCollide) {
  Rng rng(13);
  const SimHashFamily family(8);
  const auto x = RandomUnit(8, &rng);
  const BernoulliEstimate estimate =
      EstimateCollisionProbability(family, x, x, 200, &rng);
  EXPECT_EQ(estimate.p_hat, 1.0);
}

TEST(SimHashTest, ClosedFormEndpoints) {
  EXPECT_DOUBLE_EQ(SimHashFamily::CollisionProbability(1.0), 1.0);
  EXPECT_DOUBLE_EQ(SimHashFamily::CollisionProbability(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(SimHashFamily::CollisionProbability(0.0), 0.5);
}

TEST(CrossPolytopeTest, CollisionDecreasesWithAngle) {
  Rng rng(17);
  const std::size_t kDim = 16;
  const CrossPolytopeFamily family(kDim);
  const auto x = RandomUnit(kDim, &rng);
  const auto close = UnitAtCosine(x, 0.95, &rng);
  const auto mid = UnitAtCosine(x, 0.5, &rng);
  const auto far = UnitAtCosine(x, 0.0, &rng);
  const double p_close =
      EstimateCollisionProbability(family, x, close, 4000, &rng).p_hat;
  const double p_mid =
      EstimateCollisionProbability(family, x, mid, 4000, &rng).p_hat;
  const double p_far =
      EstimateCollisionProbability(family, x, far, 4000, &rng).p_hat;
  EXPECT_GT(p_close, p_mid);
  EXPECT_GT(p_mid, p_far);
  EXPECT_GT(p_close, 0.5);
}

TEST(CrossPolytopeTest, MoreSelectiveThanSimHashFarApart) {
  // The cross-polytope hash has 2d buckets, so far-apart points collide
  // with probability ~1/(2d), far below SimHash's 1/2.
  Rng rng(19);
  const std::size_t kDim = 16;
  const CrossPolytopeFamily family(kDim);
  const auto x = RandomUnit(kDim, &rng);
  const auto far = UnitAtCosine(x, 0.0, &rng);
  const double p_far =
      EstimateCollisionProbability(family, x, far, 4000, &rng).p_hat;
  EXPECT_LT(p_far, 0.25);
}

class E2LshDistanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(E2LshDistanceSweep, CollisionProbabilityMatchesClosedForm) {
  const double distance = GetParam();
  Rng rng(23);
  const std::size_t kDim = 12;
  const double kWidth = 4.0;
  const E2LshFamily family(kDim, kWidth);
  const auto x = RandomUnit(kDim, &rng);
  auto y = x;
  // Move y exactly `distance` away along a random direction.
  const auto direction = RandomUnit(kDim, &rng);
  for (std::size_t i = 0; i < kDim; ++i) y[i] += distance * direction[i];
  const BernoulliEstimate estimate =
      EstimateCollisionProbability(family, x, y, 20000, &rng);
  const double expected = E2LshFamily::CollisionProbability(distance, kWidth);
  EXPECT_NEAR(estimate.p_hat, expected, estimate.HalfWidth(4.0) + 0.006);
}

INSTANTIATE_TEST_SUITE_P(Distances, E2LshDistanceSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0));

TEST(E2LshTest, ClosedFormBasics) {
  EXPECT_DOUBLE_EQ(E2LshFamily::CollisionProbability(0.0, 4.0), 1.0);
  // Monotone decreasing in distance.
  double previous = 1.0;
  for (double r = 0.5; r < 20.0; r *= 2.0) {
    const double p = E2LshFamily::CollisionProbability(r, 4.0);
    EXPECT_LT(p, previous);
    previous = p;
  }
}

TEST(MinHashTest, CollisionProbabilityIsJaccard) {
  Rng rng(29);
  const std::size_t kDim = 40;
  const MinHashFamily family(kDim);
  // |x| = 20, |y| = 20, overlap 10 -> Jaccard = 10/30.
  std::vector<double> x(kDim, 0.0);
  std::vector<double> y(kDim, 0.0);
  for (std::size_t i = 0; i < 20; ++i) x[i] = 1.0;
  for (std::size_t i = 10; i < 30; ++i) y[i] = 1.0;
  EXPECT_NEAR(MinHashFamily::Jaccard(x, y), 1.0 / 3.0, 1e-12);
  const BernoulliEstimate estimate =
      EstimateCollisionProbability(family, x, y, 20000, &rng);
  EXPECT_NEAR(estimate.p_hat, 1.0 / 3.0, estimate.HalfWidth(4.0) + 0.005);
}

TEST(MinHashTest, DisjointSetsNeverCollide) {
  Rng rng(31);
  const MinHashFamily family(10);
  std::vector<double> x = {1, 1, 1, 0, 0, 0, 0, 0, 0, 0};
  std::vector<double> y = {0, 0, 0, 1, 1, 1, 0, 0, 0, 0};
  const BernoulliEstimate estimate =
      EstimateCollisionProbability(family, x, y, 500, &rng);
  EXPECT_EQ(estimate.p_hat, 0.0);
}

TEST(ConcatenationTest, AmplifiesCollisionProbability) {
  Rng rng(37);
  const std::size_t kDim = 16;
  const SimHashFamily family(kDim);
  const auto x = RandomUnit(kDim, &rng);
  const auto y = UnitAtCosine(x, 0.8, &rng);
  const double base_p = SimHashFamily::CollisionProbability(0.8);
  constexpr std::size_t kK = 4;
  std::size_t collisions = 0;
  constexpr std::size_t kTrials = 20000;
  for (std::size_t t = 0; t < kTrials; ++t) {
    const ConcatenatedLshFunction h(family, kK, &rng);
    if (h.HashData(x) == h.HashQuery(y)) ++collisions;
  }
  const double expected = std::pow(base_p, kK);
  EXPECT_NEAR(collisions / static_cast<double>(kTrials), expected,
              4.0 * std::sqrt(expected / kTrials) + 0.01);
}

// --- Transforms ---

TEST(DualBallTransformTest, MapsToUnitSphereAndScalesInnerProduct) {
  Rng rng(41);
  const std::size_t kDim = 10;
  const double kU = 5.0;
  const DualBallTransform transform(kDim, kU);
  for (int trial = 0; trial < 30; ++trial) {
    auto p = RandomUnit(kDim, &rng);
    kernels::ScaleInPlace(p, rng.NextDouble());  // ||p|| <= 1
    auto q = RandomUnit(kDim, &rng);
    kernels::ScaleInPlace(q, kU * rng.NextDouble());  // ||q|| <= U
    const auto tp = transform.TransformData(p);
    const auto tq = transform.TransformQuery(q);
    ASSERT_EQ(tp.size(), kDim + 2);
    EXPECT_NEAR(kernels::Norm(tp), 1.0, 1e-9);
    EXPECT_NEAR(kernels::Norm(tq), 1.0, 1e-9);
    EXPECT_NEAR(kernels::Dot(tp, tq), kernels::Dot(p, q) / kU, 1e-9);
  }
}

TEST(SimpleMipsTransformTest, DataOnSphereQueryNormalized) {
  Rng rng(43);
  const std::size_t kDim = 8;
  const double kM = 3.0;
  const SimpleMipsTransform transform(kDim, kM);
  auto p = RandomUnit(kDim, &rng);
  kernels::ScaleInPlace(p, 2.0);  // ||p|| = 2 <= M
  auto q = RandomUnit(kDim, &rng);
  kernels::ScaleInPlace(q, 7.0);
  const auto tp = transform.TransformData(p);
  const auto tq = transform.TransformQuery(q);
  EXPECT_NEAR(kernels::Norm(tp), 1.0, 1e-9);
  EXPECT_NEAR(kernels::Norm(tq), 1.0, 1e-9);
  // <tp, tq> = <p, q> / (M ||q||).
  EXPECT_NEAR(kernels::Dot(tp, tq), kernels::Dot(p, q) / (kM * 7.0), 1e-9);
}

TEST(XboxTransformTest, EqualizesDataNorms) {
  Rng rng(47);
  const std::size_t kDim = 8;
  const double kM = 4.0;
  const XboxTransform transform(kDim, kM);
  for (int trial = 0; trial < 10; ++trial) {
    auto p = RandomUnit(kDim, &rng);
    kernels::ScaleInPlace(p, kM * rng.NextDouble());
    const auto tp = transform.TransformData(p);
    EXPECT_NEAR(kernels::Norm(tp), kM, 1e-9);
    auto q = RandomUnit(kDim, &rng);
    const auto tq = transform.TransformQuery(q);
    EXPECT_NEAR(kernels::Dot(tp, tq), kernels::Dot(p, q), 1e-9);  // inner product unchanged
  }
}

TEST(L2AlshTransformTest, DistanceEncodesInnerProduct) {
  Rng rng(53);
  const std::size_t kDim = 8;
  const std::size_t kM = 3;
  const double kUScale = 0.83;
  const double kMaxNorm = 2.0;
  const L2AlshTransform transform(kDim, kM, kUScale, kMaxNorm);
  auto p = RandomUnit(kDim, &rng);
  kernels::ScaleInPlace(p, 1.7);
  auto q = RandomUnit(kDim, &rng);
  const auto tp = transform.TransformData(p);
  const auto tq = transform.TransformQuery(q);
  ASSERT_EQ(tp.size(), kDim + kM);
  ASSERT_EQ(tq.size(), kDim + kM);
  // ||tp - tq||^2 = 1 + m/4 - 2 (U/M) <p, q> + ||x'||^(2^(m+1)).
  const double scaled_norm = kUScale * 1.7 / kMaxNorm;
  const double tail = std::pow(scaled_norm, std::pow(2.0, kM + 1));
  const double expected = 1.0 + kM / 4.0 -
                          2.0 * (kUScale / kMaxNorm) * kernels::Dot(p, q) + tail;
  EXPECT_NEAR(kernels::SquaredDistance(tp, tq), expected, 1e-9);
}

TEST(MinHashAlshTransformTest, PadsDataToConstantWeight) {
  const std::size_t kDim = 12;
  const std::size_t kMaxWeight = 6;
  const MinHashAlshTransform transform(kDim, kMaxWeight);
  std::vector<double> x(kDim, 0.0);
  x[0] = x[3] = x[5] = 1.0;  // weight 3
  std::vector<double> q(kDim, 0.0);
  q[3] = q[4] = 1.0;
  const auto tx = transform.TransformData(x);
  const auto tq = transform.TransformQuery(q);
  ASSERT_EQ(tx.size(), kDim + kMaxWeight);
  double weight = 0.0;
  for (double v : tx) weight += v;
  EXPECT_EQ(weight, static_cast<double>(kMaxWeight));
  // Intersection is preserved (query is zero on the padding).
  EXPECT_DOUBLE_EQ(kernels::Dot(tx, tq), 1.0);
  EXPECT_NEAR(MinHashFamily::Jaccard(tx, tq),
              1.0 / (kMaxWeight + 2.0 - 1.0), 1e-12);
}

TEST(MinHashAlshTransformTest, RejectsOverweightData) {
  const MinHashAlshTransform transform(4, 2);
  const std::vector<double> x = {1.0, 1.0, 1.0, 0.0};
  EXPECT_DEATH(transform.TransformData(x), "IPS_CHECK_LE");
}

TEST(SymmetricIncoherentTransformTest, PreservesDistinctInnerProducts) {
  Rng rng(59);
  const std::size_t kDim = 6;
  const double kEpsilon = 0.15;
  const SymmetricIncoherentTransform transform(kDim, kEpsilon, 16);
  EXPECT_TRUE(transform.IsSymmetric());
  for (int trial = 0; trial < 25; ++trial) {
    auto x = RandomUnit(kDim, &rng);
    kernels::ScaleInPlace(x, rng.NextDouble());
    auto y = RandomUnit(kDim, &rng);
    kernels::ScaleInPlace(y, rng.NextDouble());
    const auto tx = transform.TransformData(x);
    const auto ty = transform.TransformData(y);
    EXPECT_NEAR(kernels::Norm(tx), 1.0, 1e-9);
    EXPECT_NEAR(kernels::Norm(ty), 1.0, 1e-9);
    // |<tx, ty> - <x, y>| <= epsilon for x != y.
    EXPECT_NEAR(kernels::Dot(tx, ty), kernels::Dot(x, y), kEpsilon + 1e-9);
  }
}

TEST(SymmetricIncoherentTransformTest, IdenticalVectorsMapIdentically) {
  Rng rng(61);
  const SymmetricIncoherentTransform transform(5, 0.2, 16);
  auto x = RandomUnit(5, &rng);
  kernels::ScaleInPlace(x, 0.4);
  const auto t1 = transform.TransformData(x);
  const auto t2 = transform.TransformQuery(x);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) EXPECT_EQ(t1[i], t2[i]);
  // The collision-at-1 case the relaxed definition disregards.
  EXPECT_NEAR(kernels::Dot(t1, t2), 1.0, 1e-9);
}

TEST(TransformedFamilyTest, ComposesTransformAndBase) {
  Rng rng(67);
  const std::size_t kDim = 6;
  const DualBallTransform transform(kDim, 2.0);
  const SimHashFamily base(transform.output_dim());
  const TransformedLshFamily family(&transform, &base);
  EXPECT_EQ(family.dim(), kDim);
  EXPECT_FALSE(family.IsSymmetric());
  auto p = RandomUnit(kDim, &rng);
  kernels::ScaleInPlace(p, 0.9);
  // Collision probability of (p, q) should match SimHash on the lifted
  // vectors.
  auto q = RandomUnit(kDim, &rng);
  kernels::ScaleInPlace(q, 1.5);
  const auto tp = transform.TransformData(p);
  const auto tq = transform.TransformQuery(q);
  const double expected =
      SimHashFamily::CollisionProbability(kernels::Dot(tp, tq));
  const BernoulliEstimate estimate =
      EstimateCollisionProbability(family, p, q, 20000, &rng);
  EXPECT_NEAR(estimate.p_hat, expected, estimate.HalfWidth(4.0) + 0.005);
}

// --- Tables ---

TEST(LshTablesTest, FindsNearNeighborsMissesFarOnes) {
  Rng rng(71);
  const std::size_t kDim = 16;
  const std::size_t kN = 200;
  Matrix data(kN, kDim);
  for (std::size_t i = 0; i < kN; ++i) {
    const auto v = RandomUnit(kDim, &rng);
    for (std::size_t j = 0; j < kDim; ++j) data.At(i, j) = v[j];
  }
  // Plant a near-duplicate of data row 0.
  const auto near = UnitAtCosine(data.Row(0), 0.98, &rng);

  const SimHashFamily family(kDim);
  LshTableParams params;
  params.k = 6;
  params.l = 16;
  const LshTables tables(family, data, params, &rng);
  const std::vector<std::size_t> candidates = tables.Query(near);
  // Row 0 should be among the candidates with overwhelming probability:
  // per-table collision prob is p^6 with p ~ 0.94.
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 0u),
            candidates.end());
  // Candidates should be a small fraction of the data set.
  EXPECT_LT(candidates.size(), kN / 2);
}

TEST(LshTablesTest, CandidatesAreSortedAndUnique) {
  Rng rng(73);
  Matrix data(50, 8);
  for (double& v : data.data()) v = rng.NextGaussian();
  const SimHashFamily family(8);
  LshTableParams params;
  params.k = 2;
  params.l = 8;
  const LshTables tables(family, data, params, &rng);
  const auto candidates = tables.Query(data.Row(7));
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LT(candidates[i - 1], candidates[i]);
  }
  // The query equals a data point, so it must find itself (symmetric
  // family, identical hash inputs).
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 7u),
            candidates.end());
}

TEST(LshTableParamsTest, FromGapIsReasonable) {
  const LshTableParams params = LshTableParams::FromGap(10000, 0.9, 0.5);
  // k = ceil(ln 1e4 / ln 2) = 14; rho = ln .9 / ln .5 ~ 0.152.
  EXPECT_EQ(params.k, 14u);
  EXPECT_GE(params.l, static_cast<std::size_t>(
                          std::pow(10000.0, 0.152)));
  EXPECT_LT(params.l, 40u);
}

// --- Rho formulas (Figure 2) ---

TEST(RhoTest, DataDepClosedForm) {
  // rho = (1 - s) / (1 + (1 - 2c) s).
  EXPECT_NEAR(RhoDataDep(0.5, 0.5), 0.5 / 1.0, 1e-12);
  EXPECT_NEAR(RhoDataDep(0.8, 0.9), 0.2 / (1.0 - 0.8 * 0.8), 1e-12);
  EXPECT_DOUBLE_EQ(RhoDataDep(1.0, 0.5), 0.0);  // exact search is free
}

TEST(RhoTest, DataDepBeatsSimpleLshEverywhere) {
  // The paper: "our bound is always stronger than the one from [39]".
  for (double s = 0.05; s < 1.0; s += 0.05) {
    for (double c = 0.1; c < 1.0; c += 0.1) {
      EXPECT_LE(RhoDataDep(s, c), RhoSimpleLsh(s, c) + 1e-9)
          << "s=" << s << " c=" << c;
    }
  }
}

TEST(RhoTest, AllRhosInUnitInterval) {
  for (double s = 0.05; s < 1.0; s += 0.1) {
    for (double c = 0.1; c < 1.0; c += 0.1) {
      for (double rho : {RhoDataDep(s, c), RhoSimpleLsh(s, c),
                         RhoMhAlsh(s, c)}) {
        EXPECT_GT(rho, 0.0);
        EXPECT_LT(rho, 1.0 + 1e-12);
      }
    }
  }
}

TEST(RhoTest, SmallerCMakesSearchEasier) {
  // A weaker approximation requirement (smaller c) lowers every rho.
  for (double s : {0.2, 0.5, 0.8}) {
    EXPECT_LT(RhoDataDep(s, 0.3), RhoDataDep(s, 0.7));
    EXPECT_LT(RhoSimpleLsh(s, 0.3), RhoSimpleLsh(s, 0.7));
    EXPECT_LT(RhoMhAlsh(s, 0.3), RhoMhAlsh(s, 0.7));
  }
}

TEST(RhoTest, SphereAnnExponent) {
  EXPECT_DOUBLE_EQ(RhoSphereAnn(std::numbers::sqrt2), 1.0 / 3.0);
  EXPECT_NEAR(RhoSphereAnn(2.0), 1.0 / 7.0, 1e-12);
}

TEST(RhoTest, FromProbabilities) {
  EXPECT_DOUBLE_EQ(RhoFromProbabilities(0.25, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(RhoFromProbabilities(0.5, 0.25), 0.5);
}

TEST(RhoTest, L2AlshNumericIsValidAndDominatedBySimple) {
  // Neyshabur-Srebro introduced SIMPLE-LSH as dominating L2-ALSH; the
  // numerically optimized L2-ALSH exponent must be a valid rho in (0,1]
  // and never beat SIMP by more than numerical noise on this grid.
  for (double s : {0.3, 0.5, 0.7, 0.9}) {
    for (double c : {0.5, 0.7, 0.9}) {
      const double rho_l2 = RhoL2AlshNumeric(s, c);
      EXPECT_GT(rho_l2, 0.0) << "s=" << s << " c=" << c;
      EXPECT_LE(rho_l2, 1.0) << "s=" << s << " c=" << c;
      EXPECT_GE(rho_l2, RhoSimpleLsh(s, c) - 0.02)
          << "s=" << s << " c=" << c;
    }
  }
}

TEST(BitSampleTest, CollisionProbabilityIsNormalizedInnerProduct) {
  Rng rng(83);
  const std::size_t kDim = 50;
  const BitSampleFamily family(kDim);
  // |p AND q| = 15 out of 50 coordinates.
  std::vector<double> p(kDim, 0.0);
  std::vector<double> q(kDim, 0.0);
  for (std::size_t i = 0; i < 25; ++i) p[i] = 1.0;
  for (std::size_t i = 10; i < 40; ++i) q[i] = 1.0;
  const BernoulliEstimate estimate =
      EstimateCollisionProbability(family, p, q, 20000, &rng);
  EXPECT_NEAR(estimate.p_hat, 15.0 / 50.0,
              estimate.HalfWidth(4.0) + 0.005);
  EXPECT_DOUBLE_EQ(BitSampleFamily::CollisionProbability(15, 50), 0.3);
}

TEST(BitSampleTest, DisjointVectorsNeverCollide) {
  Rng rng(89);
  const BitSampleFamily family(10);
  std::vector<double> p = {1, 1, 0, 0, 0, 0, 0, 0, 0, 0};
  std::vector<double> q = {0, 0, 1, 1, 0, 0, 0, 0, 0, 0};
  const BernoulliEstimate estimate =
      EstimateCollisionProbability(family, p, q, 1000, &rng);
  EXPECT_EQ(estimate.p_hat, 0.0);
}

TEST(BitSampleTest, RhoMatchesTableOneExponent) {
  // rho = log(s/d)/log(cs/d): the {0,1} permissible range of Table 1.
  EXPECT_NEAR(BitSampleFamily::Rho(10.0, 5.0, 100),
              std::log(0.1) / std::log(0.05), 1e-12);
  // As cs -> s the exponent goes to 1 (quadratic); for cs << s it drops.
  EXPECT_GT(BitSampleFamily::Rho(10.0, 9.0, 100),
            BitSampleFamily::Rho(10.0, 1.0, 100));
}

TEST(BucketJoinTest, DeduplicatesPairsAcrossTablesBeforeVerification) {
  // Short hashes (k=2) across many tables (l=8) make the same (data,
  // query) pair collide repeatedly; the join must verify it only once.
  Rng rng(97);
  const Matrix data = MakeUnitBallGaussian(64, 6, 0.9, &rng);
  const Matrix queries = MakeUnitBallGaussian(16, 6, 0.9, &rng);
  const SimHashFamily family(6);
  LshTableParams params;
  params.k = 2;
  params.l = 8;
  const BucketJoinResult result =
      LshBucketJoin(family, data, data, queries, queries, /*s=*/0.9,
                    /*cs=*/0.0, /*is_signed=*/true, params, &rng);

  // With 8 near-identical tables, cross-table repeats are guaranteed.
  EXPECT_GT(result.metrics.Get("lsh.join.duplicate_pairs"), 0u);
  // The accounting identity of the dedup + quantized-prefilter passes:
  // every candidate pair is either a repeat, skipped by the lossless
  // int8 bound, or verified exactly.
  EXPECT_EQ(result.metrics.Get("lsh.join.candidate_pairs"),
            result.metrics.Get("lsh.join.verified_pairs") +
                result.metrics.Get("lsh.join.duplicate_pairs") +
                result.metrics.Get("lsh.join.pairs_prefiltered"));
  // Each pair verified at most once: verified count is bounded by the
  // number of distinct (query, data) pairs.
  EXPECT_LE(result.metrics.Get("lsh.join.verified_pairs"),
            data.rows() * queries.rows());
}

TEST(RhoTest, L2AlshNumericDecreasesWithS) {
  double previous = 1.0;
  for (double s : {0.2, 0.4, 0.6, 0.8}) {
    const double rho = RhoL2AlshNumeric(s, 0.5);
    EXPECT_LE(rho, previous + 1e-9);
    previous = rho;
  }
}

}  // namespace
}  // namespace ips
