// Storage subsystem tests (DESIGN.md §12): snapshot round-trips must be
// exact, corruption must surface as kDataLoss naming the damaged
// section (never as wrong answers), writes must be atomic under
// injected failures, the mmap path must serve bit-identical results to
// the heap path, and the out-of-core blocked join must equal the
// monolithic in-memory join while holding peak RSS within its budget.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "lsh/bucket_join.h"
#include "lsh/simhash.h"
#include "lsh/tables.h"
#include "rng/random.h"
#include "serve/engine.h"
#include "serve/sharded_engine.h"
#include "storage/blocked_join.h"
#include "storage/file.h"
#include "storage/format.h"
#include "storage/snapshot.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace ips {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DisarmAll(); }
};

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Matrix RandomMatrix(std::size_t rows, std::size_t cols,
                    std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m.At(i, j) = rng.NextGaussian();
    }
  }
  return m;
}

void ExpectBitwiseEqual(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(a.At(i, j), b.At(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

// Flips one byte of `path` in place (bit-rot simulation).
void FlipByte(const std::string& path, std::size_t offset) {
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.is_open());
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
  ASSERT_TRUE(file.good());
}

// Truncates `path` to `new_size` bytes via rewrite.
void Truncate(const std::string& path, std::size_t new_size) {
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::vector<char> bytes(new_size);
  in.read(bytes.data(), static_cast<std::streamsize>(new_size));
  ASSERT_EQ(static_cast<std::size_t>(in.gcount()), new_size);
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(new_size));
  ASSERT_TRUE(out.good());
}

std::size_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return static_cast<std::size_t>(in.tellg());
}

// --- Format primitives ---

TEST_F(StorageTest, Crc32ChainsAcrossChunks) {
  const std::vector<unsigned char> bytes = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::uint32_t whole = storage::Crc32(bytes);
  const std::uint32_t first =
      storage::Crc32({bytes.data(), 4});
  const std::uint32_t chained =
      storage::Crc32({bytes.data() + 4, bytes.size() - 4}, first);
  EXPECT_EQ(whole, chained);
  // Regression pin: CRC32 of "123456789" is the classic check value.
  const unsigned char check[] = {'1', '2', '3', '4', '5',
                                 '6', '7', '8', '9'};
  EXPECT_EQ(storage::Crc32({check, 9}), 0xCBF43926u);
}

TEST_F(StorageTest, SectionNamesRenderFourCcs) {
  EXPECT_EQ(storage::SectionName(storage::kSectionDataset), "DSET");
  EXPECT_EQ(storage::SectionName(storage::kSectionMeta), "META");
  // Unprintable ids fall back to hex.
  EXPECT_EQ(storage::SectionName(7)[0], '0');
}

// --- Matrix snapshot round-trips ---

TEST_F(StorageTest, MatrixRoundTripIsBitwiseExact) {
  const Matrix original = RandomMatrix(97, 13, 1);
  const std::string path = TempPath("roundtrip.ips");
  ASSERT_TRUE(storage::SaveMatrixSnapshot(original, path).ok());
  auto loaded = storage::LoadMatrixSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitwiseEqual(original, *loaded);
  EXPECT_FALSE(loaded->is_view());
}

TEST_F(StorageTest, MmapLoadMatchesHeapLoadAndIsAligned) {
  const Matrix original = RandomMatrix(64, 17, 2);
  const std::string path = TempPath("mmap.ips");
  ASSERT_TRUE(storage::SaveMatrixSnapshot(original, path).ok());
  auto mapped = storage::MapMatrixSnapshot(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->matrix.is_view());
  // The zero-copy doubles must be aligned for the SIMD kernels.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(mapped->matrix.raw()) %
                storage::kSectionAlignment,
            0u);
  ExpectBitwiseEqual(original, mapped->matrix);
}

TEST_F(StorageTest, StreamingWriterAndBlockReaderRoundTrip) {
  const std::size_t cols = 5;
  const Matrix original = RandomMatrix(100, cols, 3);
  const std::string path = TempPath("streamed.ips");
  auto writer = storage::MatrixSnapshotWriter::Create(path, cols);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  // Append in ragged chunks to exercise the running CRC.
  std::size_t row = 0;
  for (std::size_t chunk : {7u, 31u, 1u, 50u, 11u}) {
    ASSERT_TRUE(
        writer->AppendRows({original.raw() + row * cols, chunk * cols})
            .ok());
    row += chunk;
  }
  ASSERT_EQ(row, 100u);
  EXPECT_EQ(writer->rows_written(), 100u);
  ASSERT_TRUE(writer->Finish().ok());

  auto reader = storage::MatrixBlockReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->rows(), 100u);
  EXPECT_EQ(reader->cols(), cols);
  Matrix block;
  ASSERT_TRUE(reader->ReadRows(13, 20, &block).ok());
  ASSERT_EQ(block.rows(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      ASSERT_EQ(block.At(i, j), original.At(13 + i, j));
    }
  }
  EXPECT_EQ(reader->ReadRows(90, 20, &block).code(),
            StatusCode::kOutOfRange);
  // Whole-file loaders understand the streamed layout too.
  auto loaded = storage::LoadMatrixSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  ExpectBitwiseEqual(original, *loaded);
}

// --- Corruption ---

TEST_F(StorageTest, BitFlipInPayloadIsDataLossNamingTheSection) {
  const Matrix original = RandomMatrix(32, 8, 4);
  const std::string path = TempPath("bitflip.ips");
  ASSERT_TRUE(storage::SaveMatrixSnapshot(original, path).ok());
  // Header is 32 bytes, the DSET payload starts at the first aligned
  // offset (64) and its doubles after the 64-byte subheader.
  FlipByte(path, 150);
  auto loaded = storage::LoadMatrixSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("DSET"), std::string::npos)
      << loaded.status().ToString();
  // The mmap path refuses the same damage up front.
  auto mapped = storage::MapMatrixSnapshot(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kDataLoss);
}

TEST_F(StorageTest, TruncationIsRejected) {
  const Matrix original = RandomMatrix(32, 8, 5);
  const std::string path = TempPath("truncated.ips");
  ASSERT_TRUE(storage::SaveMatrixSnapshot(original, path).ok());
  Truncate(path, FileSize(path) - 10);
  auto loaded = storage::LoadMatrixSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST_F(StorageTest, BadMagicIsInvalidArgument) {
  const Matrix original = RandomMatrix(8, 4, 6);
  const std::string path = TempPath("badmagic.ips");
  ASSERT_TRUE(storage::SaveMatrixSnapshot(original, path).ok());
  FlipByte(path, 0);
  auto loaded = storage::LoadMatrixSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(StorageTest, MissingFileIsNotFound) {
  auto loaded = storage::LoadMatrixSnapshot(TempPath("nope.ips"));
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(StorageTest, FailedSaveLeavesPreviousSnapshotIntact) {
  const Matrix v1 = RandomMatrix(16, 4, 7);
  const Matrix v2 = RandomMatrix(16, 4, 8);
  const std::string path = TempPath("atomic.ips");
  ASSERT_TRUE(storage::SaveMatrixSnapshot(v1, path).ok());
  {
    ScopedFailpoint fp("storage/rename");
    EXPECT_FALSE(storage::SaveMatrixSnapshot(v2, path).ok());
  }
  {
    ScopedFailpoint fp("storage/write");
    EXPECT_FALSE(storage::SaveMatrixSnapshot(v2, path).ok());
  }
  // Both failed publishes left v1 readable and unchanged.
  auto loaded = storage::LoadMatrixSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitwiseEqual(v1, *loaded);
  // And the writer is not poisoned: the next save goes through.
  ASSERT_TRUE(storage::SaveMatrixSnapshot(v2, path).ok());
  auto reloaded = storage::LoadMatrixSnapshot(path);
  ASSERT_TRUE(reloaded.ok());
  ExpectBitwiseEqual(v2, *reloaded);
}

// --- Engine snapshots ---

EngineOptions SmallEngineOptions() {
  EngineOptions options;
  options.lsh_params = {.k = 4, .l = 8};
  options.probe_queries = 4;
  options.probe_sample = 64;
  options.seed = 42;
  return options;
}

// Queries the engine on `algo` (forced) for a few data rows and
// returns (index, score) pairs.
std::vector<std::pair<std::size_t, double>> ForcedAnswers(
    const Engine& engine, QueryAlgo algo) {
  QueryOptions options;
  options.force_algorithm = algo;
  if (algo == QueryAlgo::kSketch) {
    options.is_signed = false;
    options.k = 1;
  }
  std::vector<std::pair<std::size_t, double>> answers;
  for (std::size_t row : {0u, 17u, 63u}) {
    auto result = engine.Query({engine.data().Row(row), options});
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) continue;
    for (const SearchMatch& match : result->matches) {
      answers.emplace_back(match.index, match.value);
    }
  }
  return answers;
}

TEST_F(StorageTest, EngineSnapshotRoundTripServesIdenticalAnswers) {
  auto cold = Engine::Create(RandomMatrix(128, 12, 9), SmallEngineOptions());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  for (QueryAlgo algo : {QueryAlgo::kBruteForce, QueryAlgo::kBallTree,
                         QueryAlgo::kLsh, QueryAlgo::kSketch}) {
    ASSERT_TRUE((*cold)->EnsureIndex(algo).ok());
  }
  const std::string dir = TempPath("engine_snap");
  ASSERT_TRUE((*cold)->SaveSnapshot(dir).ok());

  for (const bool use_mmap : {false, true}) {
    SnapshotLoadOptions load;
    load.use_mmap = use_mmap;
    auto warm = Engine::CreateFromSnapshot(dir, load);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    EXPECT_EQ((*warm)->data().is_view(), use_mmap);
    ExpectBitwiseEqual((*cold)->data(), (*warm)->data());
    // The persisted calibration replaces the micro-probe warmup.
    const PlannerCalibration& a = (*cold)->planner().calibration();
    const PlannerCalibration& b = (*warm)->planner().calibration();
    EXPECT_EQ(a.tree_fraction, b.tree_fraction);
    EXPECT_EQ(a.lsh_candidate_fraction, b.lsh_candidate_fraction);
    EXPECT_EQ(a.lsh_recall, b.lsh_recall);
    EXPECT_EQ(a.sketch_recall, b.sketch_recall);
    EXPECT_EQ(a.probe_queries, b.probe_queries);
    // Every restored index answers bit-identically to the builder's.
    for (QueryAlgo algo : {QueryAlgo::kBruteForce, QueryAlgo::kBallTree,
                           QueryAlgo::kLsh, QueryAlgo::kSketch}) {
      EXPECT_EQ(ForcedAnswers(**cold, algo), ForcedAnswers(**warm, algo))
          << "algo " << QueryAlgoName(algo)
          << (use_mmap ? " (mmap)" : " (heap)");
    }
  }
}

TEST_F(StorageTest, EngineSnapshotWithoutIndexesRebuildsLazily) {
  auto cold = Engine::Create(RandomMatrix(96, 6, 10), SmallEngineOptions());
  ASSERT_TRUE(cold.ok());
  const std::string dir = TempPath("engine_lazy_snap");
  ASSERT_TRUE((*cold)->SaveSnapshot(dir).ok());
  auto warm = Engine::CreateFromSnapshot(dir);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  // No index sections were persisted; the first query builds lazily
  // and agrees with the engine that wrote the snapshot.
  QueryOptions options;
  options.force_algorithm = QueryAlgo::kBruteForce;
  auto expected = (*cold)->Query({(*cold)->data().Row(0), options});
  auto result = (*warm)->Query({(*warm)->data().Row(0), options});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(expected.ok());
  ASSERT_FALSE(result->matches.empty());
  EXPECT_EQ(result->matches[0].index, expected->matches[0].index);
  EXPECT_EQ(result->matches[0].value, expected->matches[0].value);
}

TEST_F(StorageTest, EngineSnapshotCorruptTreeSectionIsDataLoss) {
  auto cold = Engine::Create(RandomMatrix(64, 8, 11), SmallEngineOptions());
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE((*cold)->EnsureIndex(QueryAlgo::kBallTree).ok());
  const std::string dir = TempPath("engine_corrupt_snap");
  ASSERT_TRUE((*cold)->SaveSnapshot(dir).ok());
  const std::string path = dir + "/snapshot.ips";
  // Damage the TREE payload (CRC catches it at load).
  auto reader = storage::SnapshotReader::Open(path);
  ASSERT_TRUE(reader.ok());
  const storage::SectionEntry* tree = reader->Find(storage::kSectionTree);
  ASSERT_NE(tree, nullptr);
  FlipByte(path, static_cast<std::size_t>(tree->offset) + 9);
  auto warm = Engine::CreateFromSnapshot(dir);
  ASSERT_FALSE(warm.ok());
  EXPECT_EQ(warm.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(warm.status().message().find("TREE"), std::string::npos)
      << warm.status().ToString();
}

TEST_F(StorageTest, MissingSnapshotDirectoryIsNotFound) {
  auto warm = Engine::CreateFromSnapshot(TempPath("no_such_dir"));
  EXPECT_EQ(warm.status().code(), StatusCode::kNotFound);
}

// --- ShardedEngine snapshots ---

TEST_F(StorageTest, ShardedSnapshotRoundTripServesIdenticalAnswers) {
  ShardedEngineOptions options;
  options.num_shards = 3;
  options.engine = SmallEngineOptions();
  auto cold = ShardedEngine::Create(RandomMatrix(120, 8, 12), options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE((*cold)->EnsureIndex(QueryAlgo::kBallTree).ok());
  const std::string dir = TempPath("sharded_snap");
  ASSERT_TRUE((*cold)->SaveSnapshot(dir).ok());

  // Reload with a different serving policy: the partition comes from
  // the snapshot, the policy from the caller.
  ShardedEngineOptions policy;
  policy.num_shards = 999;  // ignored: the manifest dictates 3
  policy.hedge.enabled = false;
  auto warm = ShardedEngine::CreateFromSnapshot(dir, policy);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ((*warm)->num_shards(), 3u);
  EXPECT_FALSE((*warm)->options().hedge.enabled);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*warm)->shard_offset(i), (*cold)->shard_offset(i));
  }
  QueryOptions query_options;
  query_options.k = 3;
  query_options.force_algorithm = QueryAlgo::kBallTree;
  for (std::size_t row : {0u, 59u, 119u}) {
    const auto q = (*cold)->shard(0).data().Row(0);
    (void)row;
    auto a = (*cold)->Query({q, query_options});
    auto b = (*warm)->Query({q, query_options});
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->matches.size(), b->matches.size());
    for (std::size_t m = 0; m < a->matches.size(); ++m) {
      EXPECT_EQ(a->matches[m].index, b->matches[m].index);
      EXPECT_EQ(a->matches[m].value, b->matches[m].value);
    }
  }
}

// --- Out-of-core blocked join ---

TEST_F(StorageTest, BlockedJoinEqualsMonolithicJoin) {
  const std::size_t dim = 16;
  const Matrix data = RandomMatrix(512, dim, 13);
  const Matrix queries = RandomMatrix(256, dim, 14);
  const std::string data_path = TempPath("join_data.ips");
  const std::string queries_path = TempPath("join_queries.ips");
  ASSERT_TRUE(storage::SaveMatrixSnapshot(data, data_path).ok());
  ASSERT_TRUE(storage::SaveMatrixSnapshot(queries, queries_path).ok());

  const SimHashFamily family(dim);
  storage::BlockedJoinOptions options;
  options.params = {.k = 3, .l = 6};
  options.s_threshold = 2.0;
  options.cs_threshold = 0.5;
  options.is_signed = true;
  options.seed = 99;
  options.block_rows = 128;  // 4 data blocks x 2 query blocks

  storage::BlockedJoinStats stats;
  auto blocked = storage::BlockedBucketJoin(family, data_path,
                                            queries_path, options, &stats);
  ASSERT_TRUE(blocked.ok()) << blocked.status().ToString();
  EXPECT_EQ(stats.data_blocks, 4u);
  EXPECT_EQ(stats.query_blocks, 2u);
  EXPECT_EQ(stats.block_pairs, 8u);
  EXPECT_GT(stats.bytes_read, 0u);

  Rng rng(options.seed);
  const BucketJoinResult monolithic = LshBucketJoin(
      family, data, data, queries, queries, options.s_threshold,
      options.cs_threshold, options.is_signed, options.params, &rng);

  ASSERT_EQ(blocked->per_query.size(), monolithic.per_query.size());
  std::size_t matched = 0;
  for (std::size_t q = 0; q < monolithic.per_query.size(); ++q) {
    const auto& expected = monolithic.per_query[q];
    const auto& got = blocked->per_query[q];
    ASSERT_EQ(got.has_value(), expected.has_value()) << "query " << q;
    if (expected.has_value()) {
      EXPECT_EQ(got->first, expected->first) << "query " << q;
      EXPECT_EQ(got->second, expected->second) << "query " << q;
      ++matched;
    }
  }
  // The thresholds were chosen so the join actually joins something.
  EXPECT_GT(matched, 0u);
}

TEST_F(StorageTest, BlockedJoinValidatesInputs) {
  const SimHashFamily family(4);
  storage::BlockedJoinOptions options;
  options.memory_budget_bytes = 0;
  auto result = storage::BlockedBucketJoin(
      family, TempPath("a.ips"), TempPath("b.ips"), options);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(StorageTest, BlockedJoinStaysWithinMemoryBudget) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "RSS accounting is not meaningful under sanitizers";
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "RSS accounting is not meaningful under sanitizers";
#endif
#endif
  // A 64 MiB on-disk dataset joined under a 16 MiB budget: the join
  // must complete and the process peak RSS must grow by no more than
  // the budget plus a fixed slack — proof the dataset never became
  // resident at once.
  const std::size_t dim = 64;
  const std::size_t rows = 131072;  // x 64 cols x 8 B = 64 MiB
  const std::size_t budget = 16u << 20;
  const std::string data_path = TempPath("oocore_data.ips");
  {
    auto writer = storage::MatrixSnapshotWriter::Create(data_path, dim);
    ASSERT_TRUE(writer.ok());
    Rng rng(15);
    std::vector<double> chunk(4096 * dim);
    for (std::size_t written = 0; written < rows; written += 4096) {
      for (double& v : chunk) v = rng.NextGaussian();
      ASSERT_TRUE(writer->AppendRows(chunk).ok());
    }
    ASSERT_TRUE(writer->Finish().ok());
  }
  const std::string queries_path = TempPath("oocore_queries.ips");
  ASSERT_TRUE(
      storage::SaveMatrixSnapshot(RandomMatrix(256, dim, 16), queries_path)
          .ok());

  const SimHashFamily family(dim);
  storage::BlockedJoinOptions options;
  options.memory_budget_bytes = budget;
  options.params = {.k = 10, .l = 4};
  options.s_threshold = 64.0;
  options.cs_threshold = 48.0;
  options.seed = 17;

  const std::size_t rss_before = storage::PeakRssBytes();
  storage::BlockedJoinStats stats;
  auto result = storage::BlockedBucketJoin(family, data_path, queries_path,
                                           options, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::size_t rss_after = storage::PeakRssBytes();

  EXPECT_EQ(stats.data_rows, rows);
  EXPECT_EQ(result->per_query.size(), 256u);
  ASSERT_GT(rows * dim * sizeof(double), 3 * budget)
      << "dataset must exceed the budget for this test to mean anything";
  // Slack covers the allocator, the result vector, and the per-pair
  // hash tables; it is far below the 64 MiB the dataset would cost
  // resident.
  const std::size_t slack = 16u << 20;
  EXPECT_LE(rss_after - rss_before, budget + slack)
      << "peak RSS grew by " << (rss_after - rss_before) / (1 << 20)
      << " MiB during a " << budget / (1 << 20) << " MiB-budget join";
}

}  // namespace
}  // namespace ips
