// Tests for linalg/kernels: scalar/AVX2 parity of every dispatched
// primitive (dot, matvec, score_block) on random, denormal-adjacent,
// and signed-zero inputs; the TopKHeap ordering contract; the tiled
// BlockTopK driver against a naive reference; and the batched popcount
// kernels against the BitMatrix/SignMatrix scalar paths.
//
// Numerics contract under test (kernels.h header comment): the scalar
// and AVX2 implementations agree to rounding, not bitwise — every
// cross-implementation comparison here uses a relative tolerance scaled
// by the magnitude of the accumulated products. The CI scalar leg runs
// this same binary under IPS_FORCE_SCALAR=1 (see tests/CMakeLists.txt),
// where the dispatch tests below assert the pin took effect.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

#include "linalg/bit_matrix.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "rng/random.h"

namespace ips {
namespace {

// Sizes chosen to exercise every tail path of the AVX2 kernels: the
// 16-wide main loop, the 4-wide secondary loop, and the scalar tail.
constexpr std::size_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 15, 16, 17,
                                  19, 31, 32, 33, 63, 64, 100, 128};

std::vector<double> RandomVector(std::size_t n, Rng* rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->NextGaussian();
  return v;
}

// Values straddling the normal/denormal boundary plus exact signed
// zeros, stressing underflow handling and -0.0 + 0.0 behavior.
std::vector<double> DenormalAdjacentVector(std::size_t n, Rng* rng) {
  const double tiny = std::numeric_limits<double>::min();  // DBL_MIN
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 5) {
      case 0: v[i] = tiny * rng->NextDouble();             break;  // denormal
      case 1: v[i] = -tiny * (1.0 + rng->NextDouble());    break;  // near-min
      case 2: v[i] = 0.0;                               break;
      case 3: v[i] = -0.0;                              break;
      default: v[i] = rng->NextGaussian();                  break;  // normal
    }
  }
  return v;
}

// High-precision reference inner product (long double accumulator).
long double ReferenceDot(const std::vector<double>& x,
                         const std::vector<double>& y) {
  long double acc = 0.0L;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<long double>(x[i]) * static_cast<long double>(y[i]);
  }
  return acc;
}

// Magnitude scale of the accumulation, for relative tolerance: the sum
// of |x_i * y_i| bounds how much any reassociation can move the result.
double DotScale(const std::vector<double>& x, const std::vector<double>& y) {
  double scale = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) scale += std::abs(x[i] * y[i]);
  return scale;
}

// |a - b| within ~16 ULP of the accumulation magnitude (generous for
// reassociated FMA sums, tight enough to catch any real kernel bug).
void ExpectUlpClose(double a, double b, double scale) {
  const double tol =
      16.0 * std::numeric_limits<double>::epsilon() * scale +
      1e-300;  // absolute floor for all-denormal accumulations
  EXPECT_NEAR(a, b, tol) << "scale=" << scale;
}

TEST(Dispatch, ActiveTableMatchesEnvironment) {
  const char* env = std::getenv("IPS_FORCE_SCALAR");
  const bool forced =
      env != nullptr && env[0] != '\0' && std::string(env) != "0";
  EXPECT_EQ(kernels::ForceScalar(), forced);
  if (forced || !kernels::Avx2Available()) {
    EXPECT_STREQ(kernels::ActiveOps().name, "scalar");
    EXPECT_STREQ(kernels::ActiveIsaName(), "scalar");
  } else {
    EXPECT_STREQ(kernels::ActiveOps().name, "avx2");
    EXPECT_STREQ(kernels::ActiveIsaName(), "avx2");
  }
  EXPECT_STREQ(kernels::ScalarOps().name, "scalar");
}

TEST(Dispatch, WrappersUseActiveTable) {
  Rng rng(1);
  const auto x = RandomVector(33, &rng);
  const auto y = RandomVector(33, &rng);
  EXPECT_EQ(kernels::Dot(x, y),
            kernels::ActiveOps().dot(x.data(), y.data(), x.size()));
}

class DotParityTest : public ::testing::Test {
 protected:
  void CheckAllSizes(std::vector<double> (*make)(std::size_t, Rng*)) {
    Rng rng(7);
    for (const std::size_t n : kSizes) {
      const auto x = make(n, &rng);
      const auto y = make(n, &rng);
      const double scale = DotScale(x, y);
      const double reference = static_cast<double>(ReferenceDot(x, y));
      const double scalar =
          kernels::ScalarOps().dot(x.data(), y.data(), n);
      ExpectUlpClose(scalar, reference, scale);
      if (kernels::Avx2Available()) {
        const double avx2 =
            kernels::Avx2Ops().dot(x.data(), y.data(), n);
        ExpectUlpClose(avx2, reference, scale);
        ExpectUlpClose(avx2, scalar, scale);
      }
    }
  }
};

TEST_F(DotParityTest, RandomInputs) { CheckAllSizes(RandomVector); }

TEST_F(DotParityTest, DenormalAdjacentInputs) {
  CheckAllSizes(DenormalAdjacentVector);
}

TEST(DotParityTest2, SignedZeroInputs) {
  // All-zero vectors with mixed signs: every implementation must return
  // an exact zero, not a NaN or a stray sign artifact.
  for (const std::size_t n : kSizes) {
    std::vector<double> x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = (i % 2 == 0) ? 0.0 : -0.0;
      y[i] = (i % 3 == 0) ? -0.0 : 0.0;
    }
    EXPECT_EQ(kernels::ScalarOps().dot(x.data(), y.data(), n), 0.0);
    if (kernels::Avx2Available()) {
      EXPECT_EQ(kernels::Avx2Ops().dot(x.data(), y.data(), n), 0.0);
    }
  }
}

TEST(MatVecParity, AgreesAcrossImplementationsAndWithDot) {
  Rng rng(11);
  for (const std::size_t cols : {3u, 16u, 33u}) {
    const std::size_t rows = 17;
    Matrix data(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      for (double& v : data.Row(i)) v = rng.NextGaussian();
    }
    const auto q = RandomVector(cols, &rng);
    std::vector<double> scalar_out(rows), avx2_out(rows);
    kernels::ScalarOps().matvec(data.Row(0).data(), rows, cols, q.data(),
                                scalar_out.data());
    for (std::size_t i = 0; i < rows; ++i) {
      // Contract: matvec row r is that implementation's dot of row r.
      EXPECT_EQ(scalar_out[i], kernels::ScalarOps().dot(
                                   data.Row(i).data(), q.data(), cols));
    }
    if (!kernels::Avx2Available()) continue;
    kernels::Avx2Ops().matvec(data.Row(0).data(), rows, cols, q.data(),
                              avx2_out.data());
    for (std::size_t i = 0; i < rows; ++i) {
      EXPECT_EQ(avx2_out[i], kernels::Avx2Ops().dot(data.Row(i).data(),
                                                    q.data(), cols));
      std::vector<double> xi(data.Row(i).begin(), data.Row(i).end());
      ExpectUlpClose(avx2_out[i], scalar_out[i], DotScale(xi, q));
    }
  }
}

TEST(ScoreBlockParity, MatchesPerPairDotWithinTolerance) {
  Rng rng(13);
  // Rows and query counts around the 2x4 register tile: tails on both
  // axes, plus a q_stride wider than cols (queries inside a larger
  // matrix) and an out_stride wider than rows.
  for (const std::size_t rows : {1u, 2u, 3u, 8u}) {
    for (const std::size_t num_q : {1u, 3u, 4u, 5u, 9u}) {
      const std::size_t cols = 19;
      const std::size_t q_stride = cols + 5;
      const std::size_t out_stride = rows + 2;
      std::vector<double> data(rows * cols);
      std::vector<double> queries(num_q * q_stride);
      for (double& v : data) v = rng.NextGaussian();
      for (double& v : queries) v = rng.NextGaussian();

      std::vector<double> out(num_q * out_stride, -1.0);
      kernels::ScalarOps().score_block(data.data(), rows, cols,
                                       queries.data(), num_q, q_stride,
                                       out.data(), out_stride);
      for (std::size_t qi = 0; qi < num_q; ++qi) {
        for (std::size_t r = 0; r < rows; ++r) {
          // Scalar score_block is the scalar dot, bitwise (this exactness
          // is what makes BatchQuery == N x Query under IPS_FORCE_SCALAR).
          EXPECT_EQ(out[qi * out_stride + r],
                    kernels::ScalarOps().dot(data.data() + r * cols,
                                             queries.data() + qi * q_stride,
                                             cols));
        }
      }

      if (!kernels::Avx2Available()) continue;
      std::vector<double> avx2_out(num_q * out_stride, -1.0);
      kernels::Avx2Ops().score_block(data.data(), rows, cols,
                                     queries.data(), num_q, q_stride,
                                     avx2_out.data(), out_stride);
      for (std::size_t qi = 0; qi < num_q; ++qi) {
        for (std::size_t r = 0; r < rows; ++r) {
          std::vector<double> xr(data.begin() + r * cols,
                                 data.begin() + (r + 1) * cols);
          std::vector<double> yq(queries.begin() + qi * q_stride,
                                 queries.begin() + qi * q_stride + cols);
          ExpectUlpClose(avx2_out[qi * out_stride + r],
                         out[qi * out_stride + r], DotScale(xr, yq));
        }
      }
    }
  }
}

TEST(TopKHeap, KeepsBestKWithDeterministicTieBreak) {
  kernels::TopKHeap heap(3);
  heap.Push(5, 1.0);
  heap.Push(2, 2.0);
  heap.Push(9, 2.0);  // ties with index 2: larger index is worse
  heap.Push(1, 0.5);
  heap.Push(0, 3.0);
  const auto sorted = heap.TakeSorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].index, 0u);
  EXPECT_EQ(sorted[0].value, 3.0);
  EXPECT_EQ(sorted[1].index, 2u);  // tie broken toward the smaller index
  EXPECT_EQ(sorted[2].index, 9u);
  EXPECT_EQ(sorted[2].value, 2.0);
}

TEST(TopKHeap, AcceptsIsConsistentWithPush) {
  kernels::TopKHeap heap(2);
  EXPECT_TRUE(heap.Accepts(0.0, 100));  // under capacity: everything enters
  heap.Push(4, 1.0);
  heap.Push(7, 2.0);
  EXPECT_FALSE(heap.Accepts(0.5, 0));   // worse than the current 2nd best
  EXPECT_FALSE(heap.Accepts(1.0, 5));   // equal value, larger index
  EXPECT_TRUE(heap.Accepts(1.0, 3));    // equal value, smaller index
  EXPECT_TRUE(heap.Accepts(1.5, 99));
  heap.Push(3, 1.0);
  const auto sorted = heap.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].index, 7u);
  EXPECT_EQ(sorted[1].index, 3u);
}

// Naive reference for BlockTopK: score every (row, query) pair with the
// active implementation's Dot and keep top-k with the same ordering.
std::vector<std::vector<kernels::ScoredIndex>> NaiveTopK(
    const Matrix& data, std::size_t row_begin, std::size_t row_end,
    const Matrix& queries, bool absolute, std::size_t k,
    std::size_t index_offset) {
  std::vector<std::vector<kernels::ScoredIndex>> out(queries.rows());
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    kernels::TopKHeap heap(k);
    for (std::size_t r = row_begin; r < row_end; ++r) {
      double value = kernels::Dot(data.Row(r), queries.Row(qi));
      if (absolute) value = std::abs(value);
      heap.Push(r + index_offset, value);
    }
    out[qi] = heap.TakeSorted();
  }
  return out;
}

TEST(BlockTopK, MatchesNaiveReference) {
  Rng rng(17);
  // 150 rows x 11 queries: crosses the 64-row and 8-query tile
  // boundaries with ragged tails on both axes.
  const std::size_t n = 150, m = 11, d = 23, k = 5;
  Matrix data(n, d), queries(m, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (double& v : data.Row(i)) v = rng.NextGaussian();
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (double& v : queries.Row(i)) v = rng.NextGaussian();
  }
  for (const bool absolute : {false, true}) {
    std::vector<kernels::TopKHeap> heaps(m, kernels::TopKHeap(k));
    kernels::BlockTopK(data, queries, absolute, heaps);
    const auto expected = NaiveTopK(data, 0, n, queries, absolute, k, 0);
    for (std::size_t qi = 0; qi < m; ++qi) {
      const auto got = heaps[qi].TakeSorted();
      ASSERT_EQ(got.size(), expected[qi].size());
      for (std::size_t j = 0; j < got.size(); ++j) {
        EXPECT_EQ(got[j].index, expected[qi][j].index)
            << "absolute=" << absolute << " qi=" << qi << " j=" << j;
        std::vector<double> xr(data.Row(got[j].index).begin(),
                               data.Row(got[j].index).end());
        std::vector<double> yq(queries.Row(qi).begin(),
                               queries.Row(qi).end());
        ExpectUlpClose(got[j].value, expected[qi][j].value,
                       DotScale(xr, yq));
      }
    }
  }
}

TEST(BlockTopK, HonorsRowRangeAndIndexOffset) {
  Rng rng(19);
  const std::size_t n = 90, m = 3, d = 8, k = 4;
  Matrix data(n, d), queries(m, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (double& v : data.Row(i)) v = rng.NextGaussian();
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (double& v : queries.Row(i)) v = rng.NextGaussian();
  }
  // Score rows [20, 70) shifted into a global id space: row r reports
  // as r + offset (the sharded usage, where `data` is one shard of a
  // larger logical matrix).
  const std::size_t begin = 20, end = 70, offset = 1000;
  std::vector<kernels::TopKHeap> heaps(m, kernels::TopKHeap(k));
  kernels::BlockTopK(data, begin, end, queries, /*absolute=*/false,
                     heaps, offset);
  const auto expected =
      NaiveTopK(data, begin, end, queries, false, k, offset);
  for (std::size_t qi = 0; qi < m; ++qi) {
    const auto got = heaps[qi].TakeSorted();
    ASSERT_EQ(got.size(), k);
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_EQ(got[j].index, expected[qi][j].index);
      EXPECT_GE(got[j].index, offset + begin);
      EXPECT_LT(got[j].index, offset + end);
    }
  }
}

TEST(BlockTopK, ScalarPathIsBitwiseEqualToDot) {
  // Under the scalar table, the tile scorer is DotScalar itself, so the
  // tiled path must be bitwise identical to per-query scoring. This is
  // the exactness the IPS_FORCE_SCALAR equivalence leg relies on.
  if (std::string(kernels::ActiveOps().name) != "scalar") {
    GTEST_SKIP() << "active ISA is " << kernels::ActiveIsaName();
  }
  Rng rng(23);
  const std::size_t n = 100, m = 6, d = 13, k = 3;
  Matrix data(n, d), queries(m, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (double& v : data.Row(i)) v = rng.NextGaussian();
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (double& v : queries.Row(i)) v = rng.NextGaussian();
  }
  std::vector<kernels::TopKHeap> heaps(m, kernels::TopKHeap(k));
  kernels::BlockTopK(data, queries, /*absolute=*/false, heaps);
  for (std::size_t qi = 0; qi < m; ++qi) {
    const auto got = heaps[qi].TakeSorted();
    for (const auto& match : got) {
      EXPECT_EQ(match.value,
                kernels::Dot(data.Row(match.index), queries.Row(qi)));
    }
  }
}

TEST(PopcountKernels, AndPopcountManyMatchesBitMatrix) {
  Rng rng(29);
  const std::size_t rows = 37, cols = 150;  // 3 words/row, ragged tail
  BitMatrix data(rows, cols);
  BitMatrix query(1, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      data.Set(i, j, rng.NextDouble() < 0.5);
    }
  }
  for (std::size_t j = 0; j < cols; ++j) {
    query.Set(0, j, rng.NextDouble() < 0.5);
  }
  std::vector<std::uint32_t> out(rows, 0);
  kernels::AndPopcountMany(query.WordsFor(0).data(),
                           data.WordsFor(0).data(), data.words_per_row(),
                           rows, out.data());
  for (std::size_t i = 0; i < rows; ++i) {
    std::uint32_t expected = 0;
    for (std::size_t j = 0; j < cols; ++j) {
      expected += (data.Get(i, j) && query.Get(0, j)) ? 1 : 0;
    }
    EXPECT_EQ(out[i], expected) << "row " << i;
  }
}

TEST(PopcountKernels, SignDotManyMatchesBitwiseReference) {
  Rng rng(31);
  const std::size_t rows = 21, cols = 130;  // 3 words/row, ragged tail
  const std::size_t words_per_row = (cols + 63) / 64;
  // Packed {-1,+1} rows, SignMatrix convention: bit set = +1. Tail bits
  // beyond `cols` stay zero, as the kernel contract requires.
  std::vector<std::uint64_t> data(rows * words_per_row, 0);
  std::vector<std::uint64_t> query(words_per_row, 0);
  auto set_bit = [](std::vector<std::uint64_t>* words, std::size_t base,
                    std::size_t j) {
    (*words)[base + (j >> 6)] |= 1ULL << (j & 63);
  };
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (rng.NextSign() > 0) set_bit(&data, i * words_per_row, j);
    }
  }
  for (std::size_t j = 0; j < cols; ++j) {
    if (rng.NextSign() > 0) set_bit(&query, 0, j);
  }
  std::vector<std::int64_t> out(rows, 0);
  kernels::SignDotMany(query.data(), data.data(), words_per_row, rows, cols,
                       out.data());
  auto sign_at = [&](const std::vector<std::uint64_t>& words,
                     std::size_t base, std::size_t j) {
    return ((words[base + (j >> 6)] >> (j & 63)) & 1ULL) ? 1 : -1;
  };
  for (std::size_t i = 0; i < rows; ++i) {
    std::int64_t expected = 0;
    for (std::size_t j = 0; j < cols; ++j) {
      expected += sign_at(query, 0, j) * sign_at(data, i * words_per_row, j);
    }
    EXPECT_EQ(out[i], expected) << "row " << i;
  }
}

TEST(VectorOps, NormAndCosineBasics) {
  // The migrated vector-op surface still honors its old contracts.
  const std::vector<double> x = {3.0, 4.0};
  const std::vector<double> y = {4.0, -3.0};
  EXPECT_DOUBLE_EQ(kernels::Norm(x), 5.0);
  EXPECT_DOUBLE_EQ(kernels::SquaredDistance(x, y), 1.0 + 49.0);
  EXPECT_DOUBLE_EQ(kernels::CosineSimilarity(x, y), 0.0);
  EXPECT_DOUBLE_EQ(kernels::LInfNorm(y), 4.0);
  auto unit = kernels::Normalized(x);
  EXPECT_NEAR(kernels::Norm(unit), 1.0, 1e-12);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_EQ(kernels::CosineSimilarity(x, zero), 0.0);
  EXPECT_EQ(kernels::Normalized(zero), zero);
}

}  // namespace
}  // namespace ips
