// The BatchQuery contract suite: for every MipsIndex implementation —
// brute force, ball tree, LSH, sketch, symmetric, norm-range —
// BatchQuery(queries, options) must be semantically identical to
// calling Query once per row (mips_index.h). Indexes with specialized
// batch paths (brute's tiled BlockTopK, LSH's row-grouped verification)
// are held to the same equivalence as the per-query fallback.
//
// Score comparison: under IPS_FORCE_SCALAR=1 the tiled scorer is the
// scalar dot itself, so batch results are bitwise equal to per-query
// results; under AVX2 the block scorer contracts with a different FMA
// association than the per-query dot, so match indices must agree
// exactly while scores agree to a tolerance. The helper below asserts
// the strong form whenever the scalar table is active.
//
// Also covered here: the batch-aware QueryStats (batch_size, Merge),
// the shared batch trace, the "core.batch.*" traffic counters, whole-
// batch failure on invalid options, and the serve layer's batched
// execution (Engine::BatchQuery and the BatchScheduler's coalesced
// groups) against per-query ground truth.

#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "core/mips_index.h"
#include "core/norm_range_index.h"
#include "core/query.h"
#include "core/symmetric_index.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "obs/metrics.h"
#include "rng/random.h"
#include "serve/batch_scheduler.h"
#include "serve/engine.h"

namespace ips {
namespace {

bool ScalarActive() {
  return std::string(kernels::ActiveOps().name) == "scalar";
}

Matrix RandomGaussian(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix out(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (double& v : out.Row(i)) v = rng->NextGaussian();
  }
  return out;
}

// The equivalence oracle: BatchQuery == N x Query, match-for-match.
// Indices must agree exactly; scores bitwise under the scalar table,
// else to a rounding tolerance (see the file comment).
void ExpectBatchEqualsPerQuery(const MipsIndex& index, const Matrix& queries,
                               const QueryOptions& options) {
  SCOPED_TRACE("index=" + index.Name());
  auto batch = index.BatchQuery(queries, options);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), queries.rows());
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    QueryStats single_stats;
    auto single = index.Query(queries.Row(i), options, &single_stats);
    ASSERT_TRUE(single.ok()) << single.status().ToString();
    const QueryResult& got = (*batch)[i];
    ASSERT_EQ(got.matches.size(), single->size());
    for (std::size_t j = 0; j < got.matches.size(); ++j) {
      EXPECT_EQ(got.matches[j].index, (*single)[j].index) << "rank " << j;
      if (ScalarActive()) {
        EXPECT_EQ(got.matches[j].value, (*single)[j].value) << "rank " << j;
      } else {
        EXPECT_NEAR(got.matches[j].value, (*single)[j].value, 1e-9)
            << "rank " << j;
      }
    }
    EXPECT_EQ(got.stats.algorithm, single_stats.algorithm);
    EXPECT_EQ(got.stats.batch_size, 1u);  // per-member stats, not merged
  }
}

class BatchEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(41);
    data_ = MakeUnitBallGaussian(300, 12, 0.3, &rng);
    queries_ = MakeUnitBallGaussian(17, 12, 0.7, &rng);
  }
  Matrix data_;
  Matrix queries_;
};

TEST_F(BatchEquivalenceTest, BruteForceSignedAndUnsigned) {
  const BruteForceIndex index(data_);
  for (const bool is_signed : {true, false}) {
    QueryOptions options;
    options.k = 5;
    options.is_signed = is_signed;
    ExpectBatchEqualsPerQuery(index, queries_, options);
  }
}

TEST_F(BatchEquivalenceTest, BruteForceBatchOfOneAndKPastN) {
  const BruteForceIndex index(data_);
  QueryOptions options;
  options.k = data_.rows() + 10;  // k > n: every row comes back, ranked
  Rng rng(43);
  const Matrix one = RandomGaussian(1, data_.cols(), &rng);
  ExpectBatchEqualsPerQuery(index, one, options);
}

TEST_F(BatchEquivalenceTest, BallTree) {
  Rng rng(47);
  const TreeMipsIndex index(data_, 8, &rng);
  QueryOptions options;
  options.k = 4;
  options.is_signed = true;
  ExpectBatchEqualsPerQuery(index, queries_, options);
}

TEST_F(BatchEquivalenceTest, Lsh) {
  Rng rng(53);
  const PlantedInstance planted =
      MakePlantedInstance(400, 20, 16, 0.9, 1.0, &rng);
  const DualBallTransform transform(16, 1.0);
  const SimHashFamily base(transform.output_dim());
  LshTableParams params;
  params.k = 6;
  params.l = 16;
  const LshMipsIndex index(planted.data, &transform, base, params, &rng);
  QueryOptions options;
  options.k = 3;
  options.is_signed = true;
  ExpectBatchEqualsPerQuery(index, planted.queries, options);
}

TEST_F(BatchEquivalenceTest, Sketch) {
  Rng rng(59);
  SketchMipsParams params;
  const SketchIndex index(data_, SketchConfig{params, {}}, &rng);
  QueryOptions options;
  options.k = 1;
  options.is_signed = false;  // the Section 4.3 argmax path is unsigned
  ExpectBatchEqualsPerQuery(index, queries_, options);
}

TEST_F(BatchEquivalenceTest, SymmetricViaDefaultFallback) {
  Rng rng(61);
  LshTableParams params;
  params.k = 6;
  params.l = 16;
  const auto index = SymmetricMipsIndex::Create(data_, 0.25, params, &rng);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  QueryOptions options;
  options.k = 3;
  options.is_signed = true;
  ExpectBatchEqualsPerQuery(**index, queries_, options);
}

TEST_F(BatchEquivalenceTest, NormRangeViaDefaultFallback) {
  Rng rng(67);
  NormRangeParams params;
  params.bucket_size = 64;
  const NormRangeIndex index(data_, params, &rng);
  QueryOptions options;
  options.k = 4;
  options.is_signed = true;
  ExpectBatchEqualsPerQuery(index, queries_, options);
}

// ---------------------------------------------------------------------
// Contract edges: empty batches, whole-batch failure, traces, stats.
// ---------------------------------------------------------------------

TEST_F(BatchEquivalenceTest, EmptyBatchYieldsEmptyVector) {
  const BruteForceIndex index(data_);
  const Matrix empty(0, 0);
  const QueryOptions options;
  auto result = index.BatchQuery(empty, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());
}

TEST_F(BatchEquivalenceTest, InvalidOptionsFailTheWholeBatch) {
  const BruteForceIndex index(data_);
  QueryOptions options;
  options.k = 0;  // ValidateQueryOptions rejects this
  auto result = index.BatchQuery(queries_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BatchEquivalenceTest, DimensionMismatchFailsTheWholeBatch) {
  const BruteForceIndex index(data_);
  Rng rng(71);
  const Matrix wrong = RandomGaussian(3, data_.cols() + 1, &rng);
  const QueryOptions options;
  EXPECT_FALSE(index.BatchQuery(wrong, options).ok());
}

TEST_F(BatchEquivalenceTest, PathRestrictionsMatchPerQueryBehavior) {
  Rng rng(73);
  const TreeMipsIndex tree(data_, 8, &rng);
  QueryOptions unsigned_options;
  unsigned_options.is_signed = false;
  auto tree_result = tree.BatchQuery(queries_, unsigned_options);
  ASSERT_FALSE(tree_result.ok());  // tree is signed-only
  EXPECT_EQ(tree_result.status().code(), StatusCode::kInvalidArgument);

  SketchMipsParams params;
  const SketchIndex sketch(data_, SketchConfig{params, {}}, &rng);
  // Signed and k>1 shapes now run the filtered scan; what the sketch
  // index rejects are the precisions it cannot honor.
  QueryOptions exact;
  exact.precision = QueryPrecision::kExact;
  EXPECT_FALSE(sketch.BatchQuery(queries_, exact).ok());
  QueryOptions quant;
  quant.precision = QueryPrecision::kQuantizedRerank;
  EXPECT_FALSE(sketch.BatchQuery(queries_, quant).ok());
  QueryOptions top5;
  top5.is_signed = false;
  top5.k = 5;
  EXPECT_TRUE(sketch.BatchQuery(queries_, top5).ok());
  ExpectBatchEqualsPerQuery(sketch, queries_, top5);
}

TEST_F(BatchEquivalenceTest, BatchSharesOneTrace) {
  const BruteForceIndex brute(data_);
  QueryOptions options;
  options.k = 2;
  options.trace = true;
  auto traced = brute.BatchQuery(queries_, options);
  ASSERT_TRUE(traced.ok());
  ASSERT_NE((*traced)[0].stats.trace, nullptr);
  for (const QueryResult& result : *traced) {
    EXPECT_EQ(result.stats.trace, (*traced)[0].stats.trace);
  }
  // The fallback path shares its batch trace the same way.
  Rng rng(79);
  NormRangeParams params;
  const NormRangeIndex norm_range(data_, params, &rng);
  auto fallback = norm_range.BatchQuery(queries_, options);
  ASSERT_TRUE(fallback.ok());
  ASSERT_NE((*fallback)[0].stats.trace, nullptr);
  EXPECT_EQ((*fallback)[1].stats.trace, (*fallback)[0].stats.trace);

  options.trace = false;
  auto untraced = brute.BatchQuery(queries_, options);
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ((*untraced)[0].stats.trace, nullptr);
}

TEST_F(BatchEquivalenceTest, BatchTrafficCountersAdvance) {
  Counter* const calls =
      MetricsRegistry::Global().GetCounter("core.batch.calls");
  Counter* const queries =
      MetricsRegistry::Global().GetCounter("core.batch.queries");
  Counter* const fallback =
      MetricsRegistry::Global().GetCounter("core.batch.fallback_queries");
  const auto calls0 = calls->Value();
  const auto queries0 = queries->Value();
  const auto fallback0 = fallback->Value();

  const BruteForceIndex brute(data_);
  const QueryOptions options;
  ASSERT_TRUE(brute.BatchQuery(queries_, options).ok());
  EXPECT_EQ(calls->Value(), calls0 + 1);
  EXPECT_EQ(queries->Value(), queries0 + queries_.rows());
  EXPECT_EQ(fallback->Value(), fallback0);  // specialized path, no fallback

  Rng rng(83);
  NormRangeParams params;
  const NormRangeIndex norm_range(data_, params, &rng);
  ASSERT_TRUE(norm_range.BatchQuery(queries_, options).ok());
  EXPECT_EQ(calls->Value(), calls0 + 2);
  EXPECT_EQ(fallback->Value(), fallback0 + queries_.rows());
}

TEST(QueryStatsMerge, SumsCountersAndsDeadlineKeepsIdentity) {
  QueryStats a;
  a.algorithm = QueryAlgo::kLsh;
  a.candidates = 10;
  a.dot_products = 12;
  a.exec_seconds = 0.5;
  a.queue_seconds = 0.25;
  a.metrics.Set("lsh.tables.buckets_hit", 3);
  QueryStats b;
  b.algorithm = QueryAlgo::kBruteForce;
  b.candidates = 7;
  b.dot_products = 7;
  b.exec_seconds = 1.0;
  b.deadline_met = false;
  b.metrics.Set("lsh.tables.buckets_hit", 2);
  b.metrics.Set("core.brute.points_scored", 7);

  a.Merge(b);
  EXPECT_EQ(a.algorithm, QueryAlgo::kLsh);  // identity of `this` kept
  EXPECT_EQ(a.candidates, 17u);
  EXPECT_EQ(a.dot_products, 19u);
  EXPECT_DOUBLE_EQ(a.exec_seconds, 1.5);
  EXPECT_DOUBLE_EQ(a.queue_seconds, 0.25);
  EXPECT_FALSE(a.deadline_met);
  EXPECT_EQ(a.batch_size, 2u);
  EXPECT_EQ(a.metrics.Get("lsh.tables.buckets_hit"), 5u);
  EXPECT_EQ(a.metrics.Get("core.brute.points_scored"), 7u);

  // Merging a batch's per-query stats accumulates the member count.
  QueryStats c;
  a.Merge(c);
  EXPECT_EQ(a.batch_size, 3u);
  EXPECT_TRUE(c.deadline_met);
}

// ---------------------------------------------------------------------
// Serve layer: Engine::BatchQuery and the scheduler's coalesced groups.
// ---------------------------------------------------------------------

class ServeBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(89);
    Matrix data = MakeUnitBallGaussian(400, 10, 0.3, &rng);
    queries_ = MakeUnitBallGaussian(12, 10, 0.7, &rng);
    auto engine = Engine::Create(std::move(data));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).value();
  }
  std::unique_ptr<Engine> engine_;
  Matrix queries_;
};

TEST_F(ServeBatchTest, EngineBatchMatchesPerQueryOnEveryForcedPath) {
  for (const QueryAlgo algo :
       {QueryAlgo::kBruteForce, QueryAlgo::kBallTree, QueryAlgo::kLsh}) {
    SCOPED_TRACE(std::string(QueryAlgoName(algo)));
    QueryOptions options;
    options.k = 3;
    options.is_signed = true;
    options.force_algorithm = algo;
    auto batch = engine_->BatchQuery(queries_, options, {});
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->size(), queries_.rows());
    for (std::size_t i = 0; i < queries_.rows(); ++i) {
      auto single = engine_->Query({queries_.Row(i), options});
      ASSERT_TRUE(single.ok()) << single.status().ToString();
      const QueryResult& got = (*batch)[i];
      ASSERT_EQ(got.matches.size(), single->matches.size());
      for (std::size_t j = 0; j < got.matches.size(); ++j) {
        EXPECT_EQ(got.matches[j].index, single->matches[j].index);
        EXPECT_NEAR(got.matches[j].value, single->matches[j].value, 1e-9);
      }
      EXPECT_EQ(got.plan.algorithm, algo);
      EXPECT_GT(got.stats.exec_seconds, 0.0);  // amortized batch time
    }
  }
}

TEST_F(ServeBatchTest, EngineBatchEdgeCases) {
  QueryOptions options;
  auto empty = engine_->BatchQuery(Matrix(0, 0), options, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  options.k = 0;
  EXPECT_FALSE(engine_->BatchQuery(queries_, options, {}).ok());

  QueryOptions unsigned_tree;
  unsigned_tree.is_signed = false;
  unsigned_tree.force_algorithm = QueryAlgo::kBallTree;
  auto forced = engine_->BatchQuery(queries_, unsigned_tree, {});
  ASSERT_FALSE(forced.ok());  // same forced-path validation as Query
  EXPECT_EQ(forced.status().code(), StatusCode::kInvalidArgument);
}

// Collects the scheduler answers for every row of `queries`.
std::vector<BatchScheduler::Result> RunThroughScheduler(
    const Engine& engine, const Matrix& queries, const QueryOptions& options,
    const BatchSchedulerOptions& scheduler_options,
    SchedulerCounters* counters) {
  BatchScheduler scheduler(&engine, scheduler_options);
  std::vector<std::future<BatchScheduler::Result>> futures;
  futures.reserve(queries.rows());
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    futures.push_back(scheduler.Submit(
        {std::vector<double>(queries.Row(i).begin(), queries.Row(i).end()),
         options}));
  }
  std::vector<BatchScheduler::Result> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  scheduler.Drain();
  *counters = scheduler.counters();
  return results;
}

TEST_F(ServeBatchTest, SchedulerBatchedExecutionMatchesSequential) {
  QueryOptions options;
  options.k = 3;
  options.force_algorithm = QueryAlgo::kBruteForce;
  ASSERT_TRUE(engine_->EnsureIndex(QueryAlgo::kBruteForce).ok());

  BatchSchedulerOptions batched;
  batched.use_batch_execution = true;
  BatchSchedulerOptions sequential;
  sequential.use_batch_execution = false;

  SchedulerCounters batched_counters, sequential_counters;
  const auto batched_results = RunThroughScheduler(
      *engine_, queries_, options, batched, &batched_counters);
  const auto sequential_results = RunThroughScheduler(
      *engine_, queries_, options, sequential, &sequential_counters);

  // Both modes must agree with direct per-query engine answers.
  for (std::size_t i = 0; i < queries_.rows(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    auto truth = engine_->Query({queries_.Row(i), options});
    ASSERT_TRUE(truth.ok());
    for (const auto* results : {&batched_results, &sequential_results}) {
      ASSERT_TRUE((*results)[i].ok()) << (*results)[i].status().ToString();
      const QueryResult& got = (*results)[i].value();
      ASSERT_EQ(got.matches.size(), truth->matches.size());
      for (std::size_t j = 0; j < got.matches.size(); ++j) {
        EXPECT_EQ(got.matches[j].index, truth->matches[j].index);
        EXPECT_NEAR(got.matches[j].value, truth->matches[j].value, 1e-9);
      }
      EXPECT_TRUE(got.stats.deadline_met);
      EXPECT_GE(got.stats.queue_seconds, 0.0);
    }
  }

  // Partition invariant holds in both modes; the sequential mode never
  // issues a batched call.
  for (const auto* counters : {&batched_counters, &sequential_counters}) {
    EXPECT_EQ(counters->submitted, queries_.rows());
    EXPECT_EQ(counters->completed + counters->shed + counters->expired,
              counters->submitted);
  }
  EXPECT_EQ(sequential_counters.batch_groups, 0u);
  EXPECT_EQ(sequential_counters.batched_queries, 0u);
  EXPECT_LE(batched_counters.batched_queries, batched_counters.completed);
}

TEST_F(ServeBatchTest, SchedulerCoalescesCompatibleRequests) {
  QueryOptions options;
  options.k = 2;
  options.force_algorithm = QueryAlgo::kBruteForce;
  ASSERT_TRUE(engine_->EnsureIndex(QueryAlgo::kBruteForce).ok());

  // The dispatcher drains the queue into one batch per wakeup, so
  // requests that pile up while a batch executes coalesce into groups.
  // Scheduling is timing-dependent; retry a few rounds until a batched
  // group is observed (the first round nearly always suffices).
  BatchSchedulerOptions scheduler_options;
  scheduler_options.num_threads = 0;  // inline execution in the dispatcher
  bool saw_batched_group = false;
  for (int round = 0; round < 5 && !saw_batched_group; ++round) {
    SchedulerCounters counters;
    const auto results = RunThroughScheduler(*engine_, queries_, options,
                                             scheduler_options, &counters);
    for (const auto& result : results) ASSERT_TRUE(result.ok());
    saw_batched_group = counters.batch_groups > 0;
  }
  EXPECT_TRUE(saw_batched_group)
      << "no compatible group was ever coalesced in 5 rounds";
}

}  // namespace
}  // namespace ips
