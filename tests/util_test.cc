// Tests for src/util: status, stats, table printing, thread pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/failpoint.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace ips {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FAILED_PRECONDITION");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "UNIMPLEMENTED");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DEADLINE_EXCEEDED");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDataLoss), "DATA_LOSS");
  // A code outside the enum range falls through to the default name.
  EXPECT_EQ(StatusCodeToString(static_cast<StatusCode>(99)), "UNKNOWN");
}

TEST(StatusTest, EveryFactoryMatchesItsCode) {
  EXPECT_EQ(Status::InvalidArgument("m").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("m").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("m").code(), StatusCode::kInternal);
  const Status exhausted = Status::ResourceExhausted("pool saturated");
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(exhausted.ToString(), "RESOURCE_EXHAUSTED: pool saturated");
  EXPECT_EQ(Status::DeadlineExceeded("m").code(),
            StatusCode::kDeadlineExceeded);
  const Status unavailable = Status::Unavailable("shard down");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.ToString(), "UNAVAILABLE: shard down");
  const Status data_loss = Status::DataLoss("bad checksum");
  EXPECT_EQ(data_loss.code(), StatusCode::kDataLoss);
  EXPECT_EQ(data_loss.ToString(), "DATA_LOSS: bad checksum");
}

// --- Failpoint firing modes (one-shot basics live in chaos_test) ---

TEST(FailpointTest, FireEveryNthFiresPeriodically) {
  Failpoints::Arm("util-test/every", Status::Unavailable("periodic"),
                  FireEvery{2});
  // Hits 2, 4, 6 fire; odd hits pass.
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(Failpoints::Hit("util-test/every").ok());
    const Status fired = Failpoints::Hit("util-test/every");
    EXPECT_EQ(fired.code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(Failpoints::HitCount("util-test/every"), 6u);
  Failpoints::DisarmAll();
  EXPECT_TRUE(Failpoints::Hit("util-test/every").ok());
}

TEST(FailpointTest, FireWithProbIsDeterministicPerSeed) {
  auto pattern = [](std::uint64_t seed) {
    Failpoints::Arm("util-test/prob",
                    Status::Unavailable("coin flip"),
                    FireWithProb{0.25, seed});
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!Failpoints::Hit("util-test/prob").ok());
    }
    Failpoints::Disarm("util-test/prob");
    return fired;
  };
  const auto first = pattern(7);
  EXPECT_EQ(first, pattern(7));       // replayable: same seed, same firing
  EXPECT_NE(first, pattern(8));       // and seed-sensitive
  const std::size_t fired_count =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired_count, 0u);   // p = 0.25 over 64 hits fires some...
  EXPECT_LT(fired_count, 64u);  // ...but not all
}

TEST(FailpointTest, FireWithProbExtremesNeverAndAlways) {
  Failpoints::Arm("util-test/p0", Status::Internal("never"),
                  FireWithProb{0.0});
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(Failpoints::Hit("util-test/p0").ok());
  }
  Failpoints::Arm("util-test/p1", Status::Internal("always"),
                  FireWithProb{1.0});
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(Failpoints::Hit("util-test/p1").ok());
  }
  Failpoints::DisarmAll();
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, ValueOnErrorDies) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_DEATH(result.value(), "NOT_FOUND");
}

TEST(CheckTest, FailureAborts) {
  EXPECT_DEATH(IPS_CHECK(1 == 2) << "custom context", "custom context");
  EXPECT_DEATH(IPS_CHECK_EQ(3, 4), "3 == 4");
}

TEST(OnlineStatsTest, MeanAndVariance) {
  OnlineStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_NEAR(stats.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.Mean(), 0.0);
  EXPECT_EQ(stats.Variance(), 0.0);
  EXPECT_EQ(stats.StdError(), 0.0);
}

TEST(OnlineStatsTest, SingleSampleHasZeroVariance) {
  OnlineStats stats;
  stats.Add(3.5);
  EXPECT_DOUBLE_EQ(stats.Mean(), 3.5);
  EXPECT_EQ(stats.Variance(), 0.0);
}

TEST(PercentileTest, InterpolatesLinearly) {
  const std::vector<double> sorted = {0.0, 10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(Percentile(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(sorted, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(sorted, 0.5), 15.0);
}

TEST(SummarizeTest, ComputesOrderStatistics) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(i);
  const Summary summary = Summarize(samples);
  EXPECT_EQ(summary.count, 100u);
  EXPECT_DOUBLE_EQ(summary.mean, 50.5);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
  EXPECT_NEAR(summary.p50, 50.5, 1e-9);
  EXPECT_NEAR(summary.p90, 90.1, 1e-9);
  EXPECT_FALSE(summary.ToString().empty());
}

TEST(BernoulliTest, EstimateAndHalfWidth) {
  const BernoulliEstimate estimate = EstimateBernoulli(25, 100);
  EXPECT_DOUBLE_EQ(estimate.p_hat, 0.25);
  EXPECT_NEAR(estimate.HalfWidth(2.0), 2.0 * std::sqrt(0.25 * 0.75 / 100.0),
              1e-12);
}

TEST(BernoulliTest, ZeroTrials) {
  const BernoulliEstimate estimate = EstimateBernoulli(0, 0);
  EXPECT_EQ(estimate.p_hat, 0.0);
  EXPECT_EQ(estimate.HalfWidth(3.0), 0.0);
}

TEST(TablePrinterTest, MarkdownAligned) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream out;
  table.PrintMarkdown(out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(rendered.find("|-------|"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, RowArityMismatchDies) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only one"}), "IPS_CHECK_EQ");
}

TEST(TablePrinterTest, CsvExportHonorsEnvironment) {
  TablePrinter table({"x", "y"});
  table.AddRow({"1", "2"});
  // Without the variable: no file is written.
  unsetenv("IPS_BENCH_CSV_DIR");
  EXPECT_FALSE(MaybeExportCsv(table, "probe"));
  // With it: the CSV lands in the directory.
  const std::string dir = ::testing::TempDir();
  setenv("IPS_BENCH_CSV_DIR", dir.c_str(), 1);
  EXPECT_TRUE(MaybeExportCsv(table, "probe"));
  std::ifstream file(dir + "/probe.csv");
  ASSERT_TRUE(file.is_open());
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "x,y");
  unsetenv("IPS_BENCH_CSV_DIR");
  std::remove((dir + "/probe.csv").c_str());
}

TEST(FormatTest, FixedAndScientific) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatSci(12345.0, 2), "1.23e+04");
  EXPECT_EQ(Format(7), "7");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  int value = 0;
  pool.Schedule([&value] { value = 7; });
  EXPECT_EQ(value, 7);
  pool.Wait();  // no-op
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForTest, NullPoolIsSequential) {
  std::vector<int> hits(64, 0);
  ParallelFor(nullptr, hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i] += 1;
  });
  for (int hit : hits) EXPECT_EQ(hit, 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  ParallelFor(&pool, 0, [&](std::size_t, std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Schedule([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
    // No Wait(): destruction runs the still-queued tasks before joining.
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ConcurrentWaitCallersAllReturn) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&pool] { pool.Wait(); });
  }
  pool.Wait();
  for (auto& waiter : waiters) waiter.join();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ThrowingTaskSurfacesAtWaitNotTerminate) {
  ThreadPool pool(2);
  pool.Schedule([] { throw std::runtime_error("task exploded"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The exception was consumed; the pool keeps working.
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitStatusConvertsExceptionToInternal) {
  ThreadPool pool(2);
  pool.Schedule([] { throw std::runtime_error("task exploded"); });
  const Status status = pool.WaitStatus();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("task exploded"), std::string::npos);
  EXPECT_TRUE(pool.WaitStatus().ok());
}

TEST(ThreadPoolTest, InlinePoolCapturesThrowingTask) {
  ThreadPool pool(0);
  pool.Schedule([] { throw std::runtime_error("inline explosion"); });
  const Status status = pool.WaitStatus();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("inline explosion"), std::string::npos);
}

TEST(ParallelForTest, FewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(&pool, hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForTest, BodyExceptionPropagatesOnce) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(&pool, 512,
                           [](std::size_t, std::size_t) {
                             throw std::runtime_error("chunk failed");
                           }),
               std::runtime_error);
  // A second job on the same pool runs to completion.
  std::atomic<int> covered{0};
  ParallelFor(&pool, 128, [&covered](std::size_t begin, std::size_t end) {
    covered += static_cast<int>(end - begin);
  });
  EXPECT_EQ(covered.load(), 128);
}

TEST(ParallelForStatusTest, PropagatesFirstError) {
  ThreadPool pool(4);
  const Status status = ParallelForStatus(
      &pool, 1000, [](std::size_t begin, std::size_t) {
        if (begin == 0) return Status::InvalidArgument("bad chunk");
        return Status::Ok();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ParallelForStatusTest, InlineExecutionAndOkPath) {
  EXPECT_TRUE(ParallelForStatus(nullptr, 10,
                                [](std::size_t, std::size_t) {
                                  return Status::Ok();
                                })
                  .ok());
  const Status status = ParallelForStatus(
      nullptr, 10, [](std::size_t, std::size_t) -> Status {
        throw std::runtime_error("inline body threw");
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace ips
