// Tests for src/theory: the Figure 1 grid partition, the three hard
// sequence constructions of Theorem 3 (verified exhaustively against the
// staircase promise), the collision-matrix estimator, and the gap
// bounds.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "theory/gap_bounds.h"
#include "theory/hard_sequences.h"
#include "theory/lemma4.h"

namespace ips {
namespace {

// --- Grid partition (Figure 1) ---

class GridPartitionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GridPartitionSweep, CoversLowerTriangleExactlyOnce) {
  const std::size_t ell = GetParam();
  const std::size_t n = (1ULL << ell) - 1;
  const std::vector<GridSquare> squares = LowerTrianglePartition(ell);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::size_t covering = 0;
      for (const GridSquare& square : squares) {
        if (SquareContains(square, i, j)) ++covering;
      }
      if (j >= i) {
        EXPECT_EQ(covering, 1u) << "node (" << i << "," << j << ")";
      } else {
        EXPECT_EQ(covering, 0u) << "node (" << i << "," << j << ")";
      }
    }
  }
}

TEST_P(GridPartitionSweep, SquareAreasSumToTriangle) {
  const std::size_t ell = GetParam();
  const std::size_t n = (1ULL << ell) - 1;
  std::size_t total = 0;
  for (const GridSquare& square : LowerTrianglePartition(ell)) {
    total += square.side * square.side;
  }
  EXPECT_EQ(total, n * (n + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Ells, GridPartitionSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(GridPartitionTest, SquareCountPerLevel) {
  const auto squares = LowerTrianglePartition(4);
  std::size_t at_r0 = 0;
  std::size_t at_r3 = 0;
  for (const auto& square : squares) {
    if (square.r == 0) ++at_r0;
    if (square.r == 3) ++at_r3;
  }
  EXPECT_EQ(at_r0, 8u);  // 2^(4-0-1)
  EXPECT_EQ(at_r3, 1u);  // 2^(4-3-1)
}

TEST(Lemma4BoundTest, Decreases) {
  EXPECT_DOUBLE_EQ(Lemma4GapBound(2), 1.0 / 8.0);
  EXPECT_GT(Lemma4GapBound(16), Lemma4GapBound(1024));
  EXPECT_NEAR(Lemma4GapBound(1024), 1.0 / 80.0, 1e-12);
}

// --- Case 1 sequences ---

struct Case1Params {
  std::size_t d;
  double U;
  double s;
  double c;
};

class Case1Sweep : public ::testing::TestWithParam<Case1Params> {};

TEST_P(Case1Sweep, StaircaseAndNormsHold) {
  const auto [d, U, s, c] = GetParam();
  const HardSequences sequences = MakeCase1Sequences(d, U, s, c);
  ASSERT_GT(sequences.data.rows(), 0u);
  const SequenceCheck check = VerifyHardSequences(sequences);
  EXPECT_TRUE(check.staircase_ok) << check.violations << " violations";
  EXPECT_TRUE(check.unsigned_ok);
  EXPECT_TRUE(check.norms_ok)
      << "data " << check.max_data_norm << " query " << check.max_query_norm;
  EXPECT_TRUE(sequences.unsigned_valid);
}

INSTANTIATE_TEST_SUITE_P(
    Params, Case1Sweep,
    ::testing::Values(Case1Params{1, 4.0, 0.5, 0.5},
                      Case1Params{1, 100.0, 0.1, 0.7},
                      Case1Params{2, 10.0, 0.5, 0.5},
                      Case1Params{4, 20.0, 0.5, 0.6},
                      Case1Params{8, 50.0, 1.0, 0.5},
                      Case1Params{16, 100.0, 2.0, 0.8},
                      Case1Params{6, 64.0, 0.25, 0.9}));

TEST(Case1Test, LongerForSmallerS) {
  const HardSequences coarse = MakeCase1Sequences(4, 100.0, 10.0, 0.5);
  const HardSequences fine = MakeCase1Sequences(4, 100.0, 0.1, 0.5);
  EXPECT_GT(fine.data.rows(), coarse.data.rows());
}

// --- Case 2 sequences ---

struct Case2Params {
  std::size_t d;
  double U;
  double s;
  double c;
};

class Case2Sweep : public ::testing::TestWithParam<Case2Params> {};

TEST_P(Case2Sweep, SignedStaircaseHolds) {
  const auto [d, U, s, c] = GetParam();
  const HardSequences sequences = MakeCase2Sequences(d, U, s, c);
  ASSERT_GT(sequences.data.rows(), 0u);
  const SequenceCheck check = VerifyHardSequences(sequences);
  EXPECT_TRUE(check.staircase_ok) << check.violations << " violations";
  EXPECT_TRUE(check.norms_ok)
      << "data " << check.max_data_norm << " query " << check.max_query_norm;
  EXPECT_FALSE(sequences.unsigned_valid);
}

INSTANTIATE_TEST_SUITE_P(
    Params, Case2Sweep,
    ::testing::Values(Case2Params{2, 10.0, 1.0, 0.5},
                      Case2Params{2, 100.0, 1.0, 0.9},
                      Case2Params{4, 50.0, 2.0, 0.5},
                      Case2Params{8, 100.0, 1.0, 0.7},
                      Case2Params{6, 200.0, 0.5, 0.3}));

TEST(Case2Test, LongerForMilderApproximation) {
  // c closer to 1 means smaller steps, hence longer staircases.
  const HardSequences wide = MakeCase2Sequences(2, 100.0, 1.0, 0.3);
  const HardSequences tight = MakeCase2Sequences(2, 100.0, 1.0, 0.95);
  EXPECT_GT(tight.data.rows(), wide.data.rows());
}

// --- Case 3 sequences ---

struct Case3Params {
  double U;
  double s;
  double c;
  IncoherentKind kind;
};

class Case3Sweep : public ::testing::TestWithParam<Case3Params> {};

TEST_P(Case3Sweep, StaircaseNormsAndUnsignedHold) {
  const auto [U, s, c, kind] = GetParam();
  Rng rng(7);
  const HardSequences sequences = MakeCase3Sequences(U, s, c, kind, &rng);
  const std::size_t levels =
      static_cast<std::size_t>(std::floor(std::sqrt(U / (8.0 * s))));
  EXPECT_EQ(sequences.data.rows(), (1ULL << levels) - 1);
  const SequenceCheck check = VerifyHardSequences(sequences);
  EXPECT_TRUE(check.staircase_ok) << check.violations << " violations";
  EXPECT_TRUE(check.unsigned_ok);
  EXPECT_TRUE(check.norms_ok)
      << "data " << check.max_data_norm << " query " << check.max_query_norm;
}

INSTANTIATE_TEST_SUITE_P(
    Params, Case3Sweep,
    ::testing::Values(
        Case3Params{80.0, 1.0, 0.5, IncoherentKind::kOrthonormal},
        Case3Params{200.0, 1.0, 0.5, IncoherentKind::kOrthonormal},
        Case3Params{128.0, 1.0, 0.9, IncoherentKind::kOrthonormal},
        Case3Params{80.0, 1.0, 0.8, IncoherentKind::kReedSolomon},
        Case3Params{80.0, 1.0, 0.8, IncoherentKind::kRandom},
        Case3Params{300.0, 2.0, 0.6, IncoherentKind::kOrthonormal}));

TEST(Case3Test, RequiresLargeEnoughU) {
  EXPECT_DEATH(MakeCase3Sequences(4.0, 1.0, 0.5,
                                  IncoherentKind::kOrthonormal),
               "U/8");
}

// --- Collision matrix + empirical Lemma 4 verification ---

TEST(CollisionMatrixTest, PerfectFamilyRespectsBoundViolationDetected) {
  // A family that hashes everything to one bucket has m_{i,j} = 1
  // everywhere: P1 = 1 but also P2 = 1, so the gap is 0 <= bound.
  class ConstantFamily : public LshFamily {
   public:
    explicit ConstantFamily(std::size_t dim) : dim_(dim) {}
    std::string Name() const override { return "constant"; }
    std::size_t dim() const override { return dim_; }
    std::unique_ptr<LshFunction> Sample(Rng*) const override {
      class F : public SymmetricLshFunction {
        std::uint64_t HashData(std::span<const double>) const override {
          return 0;
        }
      };
      return std::make_unique<F>();
    }

   private:
    std::size_t dim_;
  };

  const HardSequences sequences =
      MakeCase1Sequences(2, 10.0, 0.5, 0.5);
  Rng rng(11);
  const ConstantFamily family(sequences.data.cols());
  const CollisionMatrix matrix(family, sequences, 50, &rng);
  EXPECT_DOUBLE_EQ(matrix.EmpiricalP1(), 1.0);
  EXPECT_DOUBLE_EQ(matrix.EmpiricalP2(), 1.0);
  EXPECT_DOUBLE_EQ(matrix.EmpiricalGap(), 0.0);
}

TEST(CollisionMatrixTest, RealAlshGapRespectsLemma4Bound) {
  // Measure an actual ALSH (dual-ball + SimHash) on case 1 sequences:
  // Lemma 4 says its P1 - P2 gap cannot exceed 1/(8 log n).
  const HardSequences sequences = MakeCase1Sequences(4, 50.0, 0.25, 0.7);
  const std::size_t n = sequences.data.rows();
  ASSERT_GE(n, 8u);
  Rng rng(13);
  const DualBallTransform transform(sequences.data.cols(), sequences.U);
  const SimHashFamily base(transform.output_dim());
  const TransformedLshFamily family(&transform, &base);
  const CollisionMatrix matrix(family, sequences, 3000, &rng);
  // Statistical slack: 3 sigma of a Bernoulli estimate at 3000 samples.
  const double slack = 3.0 * std::sqrt(0.25 / 3000.0);
  EXPECT_LE(matrix.EmpiricalGap(), Lemma4GapBound(n) + 2.0 * slack)
      << "P1=" << matrix.EmpiricalP1() << " P2=" << matrix.EmpiricalP2();
}

// --- Gap bound formulas ---

TEST(GapBoundsTest, LengthsMatchConstructions) {
  // The closed-form lengths should be within a constant factor of the
  // actually constructed staircases.
  const HardSequences s1 = MakeCase1Sequences(4, 100.0, 0.5, 0.5);
  const double predicted1 =
      static_cast<double>(Case1SequenceLength(4, 100.0, 0.5, 0.5));
  EXPECT_GT(static_cast<double>(s1.data.rows()), predicted1 / 4.0);
  EXPECT_LT(static_cast<double>(s1.data.rows()), predicted1 * 4.0);

  const HardSequences s3 = MakeCase3Sequences(
      200.0, 1.0, 0.5, IncoherentKind::kOrthonormal);
  EXPECT_EQ(s3.data.rows(), Case3SequenceLength(200.0, 1.0));
}

TEST(GapBoundsTest, VanishAsUGrows) {
  // The impossibility of unbounded-query asymmetric LSH: all bounds -> 0.
  double previous1 = 1.0;
  double previous2 = 1.0;
  double previous3 = 1.0;
  for (double U : {1e2, 1e4, 1e6, 1e8}) {
    const double b1 = Case1GapBound(4, U, 0.5, 0.5);
    const double b2 = Case2GapBound(4, U, 0.5 / 1e3, 0.5);
    const double b3 = Case3GapBound(U, 0.5);
    EXPECT_LT(b1, previous1);
    EXPECT_LT(b2, previous2);
    EXPECT_LT(b3, previous3);
    previous1 = b1;
    previous2 = b2;
    previous3 = b3;
  }
  EXPECT_LT(previous1, 0.03);
  EXPECT_LT(previous3, 1e-3);
}

TEST(GapBoundsTest, Case3BoundScalesAsSqrtSOverU) {
  // 1/(8 log2 2^sqrt(U/8s)) = sqrt(8s/U)/8 = O(sqrt(s/U)).
  const double bound = Case3GapBound(800.0, 1.0);
  const double expected = 1.0 / (8.0 * std::floor(std::sqrt(100.0)));
  EXPECT_NEAR(bound, expected, 1e-12);
  // No overflow for astronomically large U.
  EXPECT_NEAR(Case3GapBound(1e12, 1.0),
              1.0 / (8.0 * std::floor(std::sqrt(1e12 / 8.0))), 1e-12);
}

}  // namespace
}  // namespace ips
