// Tests for the extension components: the Valiant sign-rounding
// reduction, the c-MIPS-via-search scaling reduction, the LSH bucket
// join operator, and the Section 4.2 symmetric index with its exact
// membership step.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dataset.h"
#include "core/symmetric_index.h"
#include "embed/sign_reduction.h"
#include "linalg/kernels.h"
#include "lsh/bucket_join.h"
#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "sketch/cmips_via_search.h"
#include "tree/mips_tree.h"

namespace ips {
namespace {

std::vector<double> RandomUnit(std::size_t dim, Rng* rng) {
  std::vector<double> v(dim);
  for (double& x : v) x = rng->NextGaussian();
  kernels::NormalizeInPlace(v);
  return v;
}

// --- Sign rounding reduction ---

TEST(SignReductionTest, OutputIsSignVector) {
  Rng rng(3);
  const SignRoundingReduction reduction(8, 64, &rng);
  const auto image = reduction.Apply(RandomUnit(8, &rng));
  ASSERT_EQ(image.size(), 64u);
  for (double v : image) EXPECT_TRUE(v == 1.0 || v == -1.0);
}

TEST(SignReductionTest, SymmetricMap) {
  Rng rng(5);
  const SignRoundingReduction reduction(6, 32, &rng);
  const auto x = RandomUnit(6, &rng);
  const auto a = reduction.Apply(x);
  const auto b = reduction.Apply(x);
  for (std::size_t t = 0; t < a.size(); ++t) EXPECT_EQ(a[t], b[t]);
}

class SignReductionCosineSweep : public ::testing::TestWithParam<double> {};

TEST_P(SignReductionCosineSweep, NormalizedProductConcentrates) {
  const double cosine = GetParam();
  Rng rng(7);
  const std::size_t kDim = 16;
  const std::size_t kOutput = 4096;
  const auto x = RandomUnit(kDim, &rng);
  // y at the requested cosine.
  auto noise = RandomUnit(kDim, &rng);
  const double along = kernels::Dot(noise, x);
  for (std::size_t i = 0; i < kDim; ++i) noise[i] -= along * x[i];
  kernels::NormalizeInPlace(noise);
  std::vector<double> y(kDim);
  const double sine = std::sqrt(std::max(0.0, 1.0 - cosine * cosine));
  for (std::size_t i = 0; i < kDim; ++i) y[i] = cosine * x[i] + sine * noise[i];

  const SignRoundingReduction reduction(kDim, kOutput, &rng);
  const double product =
      kernels::Dot(reduction.Apply(x), reduction.Apply(y)) / kOutput;
  const double expected =
      SignRoundingReduction::ExpectedNormalizedProduct(cosine);
  // Hoeffding: deviation O(1/sqrt(D)); allow 5 sigma.
  EXPECT_NEAR(product, expected, 5.0 / std::sqrt(double(kOutput)) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Cosines, SignReductionCosineSweep,
                         ::testing::Values(-0.8, -0.3, 0.0, 0.4, 0.9, 1.0));

TEST(SignReductionTest, ExpectedProductEndpoints) {
  EXPECT_DOUBLE_EQ(SignRoundingReduction::ExpectedNormalizedProduct(1.0),
                   1.0);
  EXPECT_DOUBLE_EQ(SignRoundingReduction::ExpectedNormalizedProduct(-1.0),
                   -1.0);
  EXPECT_DOUBLE_EQ(SignRoundingReduction::ExpectedNormalizedProduct(0.0),
                   0.0);
}

TEST(SignReductionTest, PackedFormAgreesWithDense) {
  Rng rng(11);
  Matrix points(5, 10);
  for (double& v : points.data()) v = rng.NextGaussian();
  const SignRoundingReduction reduction(10, 100, &rng);
  const SignMatrix packed = reduction.ApplyToRows(points);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto dense = reduction.Apply(points.Row(i));
    for (std::size_t j = i; j < 5; ++j) {
      const auto dense_j = reduction.Apply(points.Row(j));
      EXPECT_EQ(static_cast<double>(packed.DotRows(i, packed, j)),
                kernels::Dot(dense, dense_j));
    }
  }
}

TEST(SignReductionTest, PreservesOrderingOfWellSeparatedProducts) {
  // Monotonicity: among unit vectors, larger inner product => larger
  // expected sign agreement; with D large the empirical agreement must
  // preserve a 0.3-separated ordering.
  Rng rng(13);
  const std::size_t kDim = 12;
  const auto q = RandomUnit(kDim, &rng);
  auto make_at = [&](double cosine) {
    auto noise = RandomUnit(kDim, &rng);
    const double along = kernels::Dot(noise, q);
    for (std::size_t i = 0; i < kDim; ++i) noise[i] -= along * q[i];
    kernels::NormalizeInPlace(noise);
    std::vector<double> v(kDim);
    const double sine = std::sqrt(1.0 - cosine * cosine);
    for (std::size_t i = 0; i < kDim; ++i) v[i] = cosine * q[i] + sine * noise[i];
    return v;
  };
  const SignRoundingReduction reduction(kDim, 8192, &rng);
  const auto fq = reduction.Apply(q);
  double previous = -2.0 * 8192;
  for (double cosine : {-0.6, -0.3, 0.0, 0.3, 0.6, 0.9}) {
    const double agreement = kernels::Dot(reduction.Apply(make_at(cosine)), fq);
    EXPECT_GT(agreement, previous) << "cosine " << cosine;
    previous = agreement;
  }
}

// --- c-MIPS via (cs, s) search ---

TEST(CmipsViaSearchTest, FindsApproximateMaximum) {
  Rng rng(17);
  const std::size_t kDim = 12;
  const Matrix data = MakeUnitBallGaussian(300, kDim, 0.2, &rng);
  const std::vector<double> query = RandomUnit(kDim, &rng);
  // Ground truth.
  double best = 0.0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    best = std::max(best, std::abs(kernels::Dot(data.Row(i), query)));
  }
  // Oracle: exact unsigned (cs, s) threshold search at s = 1.
  const double kS = 1.0;
  const double kC = 0.8;
  const UnsignedSearchOracle oracle =
      [&](std::span<const double> probe) -> std::optional<std::size_t> {
    std::size_t arg = 0;
    double top = 0.0;
    for (std::size_t i = 0; i < data.rows(); ++i) {
      const double v = std::abs(kernels::Dot(data.Row(i), probe));
      if (v > top) {
        top = v;
        arg = i;
      }
    }
    if (top >= kS) return arg;
    return std::nullopt;
  };
  const CmipsResult result =
      SolveCmipsViaSearch(oracle, query, kS, kC, /*gamma=*/1e-3);
  ASSERT_TRUE(result.index.has_value());
  const double recovered = std::abs(kernels::Dot(data.Row(*result.index), query));
  // Within factor c of the maximum (exact oracle => only the threshold
  // granularity c is lost).
  EXPECT_GE(recovered, kC * best - 1e-9);
  EXPECT_GE(result.probes, 1u);
  EXPECT_LE(result.probes, CmipsQueryScalingSteps(kS, kC, 1e-3) + 1);
}

TEST(CmipsViaSearchTest, ImmediateHitUsesOneProbe) {
  const UnsignedSearchOracle oracle =
      [](std::span<const double>) -> std::optional<std::size_t> {
    return 7;
  };
  const std::vector<double> query = {1.0, 0.0};
  const CmipsResult result = SolveCmipsViaSearch(oracle, query, 1.0, 0.5,
                                                 /*gamma=*/0.25);
  EXPECT_EQ(result.probes, 1u);
  EXPECT_EQ(*result.index, 7u);
}

TEST(CmipsViaSearchTest, GivesUpAfterBudget) {
  std::size_t calls = 0;
  const UnsignedSearchOracle oracle =
      [&calls](std::span<const double>) -> std::optional<std::size_t> {
    ++calls;
    return std::nullopt;
  };
  const std::vector<double> query = {0.5};
  const CmipsResult result = SolveCmipsViaSearch(oracle, query, 8.0, 0.5,
                                                 /*gamma=*/1.0);
  EXPECT_FALSE(result.index.has_value());
  EXPECT_EQ(calls, 4u);  // i = 0..3 (ceil(log2 8) = 3 scalings)
}

// --- Bucket join ---

TEST(BucketJoinTest, FindsPlantedPairsOnly) {
  Rng rng(19);
  const std::size_t kDim = 20;
  const PlantedInstance planted =
      MakePlantedInstance(400, 25, kDim, 0.9, 1.0, &rng);
  const DualBallTransform transform(kDim, 1.0);
  const SimHashFamily base(transform.output_dim());
  const Matrix hash_data = transform.TransformDataset(planted.data);
  const Matrix hash_queries = transform.TransformQueries(planted.queries);
  LshTableParams params;
  params.k = 8;
  params.l = 32;
  const BucketJoinResult result = LshBucketJoin(
      base, hash_data, planted.data, hash_queries, planted.queries,
      /*s=*/0.8, /*cs=*/0.6, /*is_signed=*/true, params, &rng);
  ASSERT_EQ(result.per_query.size(), 25u);
  std::size_t matched = 0;
  for (std::size_t qi = 0; qi < 25; ++qi) {
    if (result.per_query[qi].has_value()) {
      ++matched;
      EXPECT_GE(result.per_query[qi]->second, 0.6);
    }
  }
  EXPECT_GE(matched, 22u);  // high recall on near-duplicates
  // Verified pairs are deduplicated: never more than candidates.
  EXPECT_LE(result.metrics.Get("lsh.join.verified_pairs"),
            result.metrics.Get("lsh.join.candidate_pairs"));
  // And far fewer than the full cross product.
  EXPECT_LT(result.metrics.Get("lsh.join.verified_pairs"), 400u * 25u / 4);
}

TEST(BucketJoinTest, RespectsThreshold) {
  Rng rng(23);
  // Orthogonal-ish noise only: nothing should pass a high threshold.
  const Matrix data = MakeUnitBallGaussian(100, 32, 0.2, &rng);
  const Matrix queries = MakeUnitBallGaussian(10, 32, 0.9, &rng);
  const DualBallTransform transform(32, 1.0);
  const SimHashFamily base(transform.output_dim());
  const Matrix hash_data = transform.TransformDataset(data);
  const Matrix hash_queries = transform.TransformQueries(queries);
  LshTableParams params;
  params.k = 2;
  params.l = 8;
  const BucketJoinResult result =
      LshBucketJoin(base, hash_data, data, hash_queries, queries,
                    /*s=*/0.95, /*cs=*/0.9, /*is_signed=*/true, params,
                    &rng);
  for (const auto& match : result.per_query) {
    EXPECT_FALSE(match.has_value());
  }
}

// --- Section 4.2 symmetric index ---

TEST(SymmetricIndexTest, AnswersSelfQueriesExactly) {
  Rng rng(29);
  const Matrix data = MakeUnitBallGaussian(100, 10, 0.5, &rng);
  LshTableParams params;
  params.k = 6;
  params.l = 16;
  const SymmetricMipsIndex index(data, 0.15, params, &rng);
  JoinSpec spec;
  spec.s = 0.2;
  spec.c = 0.9;
  spec.is_signed = true;
  for (std::size_t i = 0; i < 10; ++i) {
    // Query a data vector verbatim: the membership step must fire and
    // return the vector itself with score ||q||^2.
    std::size_t exact = 0;
    ASSERT_TRUE(index.LookupExact(data.Row(i), &exact));
    EXPECT_EQ(exact, i);
    const auto match = index.Search(data.Row(i), spec);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->index, i);
    EXPECT_NEAR(match->value, kernels::SquaredNorm(data.Row(i)), 1e-12);
  }
}

TEST(SymmetricIndexTest, NonMemberQueriesUseLsh) {
  Rng rng(31);
  const std::size_t kDim = 16;
  const PlantedInstance planted =
      MakePlantedInstance(300, 15, kDim, 0.9, 1.0, &rng);
  LshTableParams params;
  params.k = 10;
  params.l = 40;
  const SymmetricMipsIndex index(planted.data, 0.1, params, &rng);
  JoinSpec spec;
  spec.s = 0.75;
  spec.c = 0.7;
  spec.is_signed = true;
  std::size_t exact = 0;
  std::size_t found = 0;
  for (std::size_t qi = 0; qi < planted.queries.rows(); ++qi) {
    EXPECT_FALSE(index.LookupExact(planted.queries.Row(qi), &exact));
    if (index.Search(planted.queries.Row(qi), spec).has_value()) ++found;
  }
  EXPECT_GE(found, 12u);
}

TEST(SymmetricIndexTest, SelfQueryBelowThresholdFallsThrough) {
  Rng rng(37);
  Matrix data(3, 4);
  // A tiny vector whose self-product is far below cs.
  data.At(0, 0) = 0.01;
  data.At(1, 1) = 0.9;
  data.At(2, 2) = 0.8;
  LshTableParams params;
  params.k = 2;
  params.l = 8;
  const SymmetricMipsIndex index(data, 0.2, params, &rng);
  JoinSpec spec;
  spec.s = 0.5;
  spec.c = 0.8;
  spec.is_signed = true;
  // Query = row 0: q^T q = 1e-4 < cs, so the membership shortcut must
  // not return it; any answer must score >= cs or be empty.
  const auto match = index.Search(data.Row(0), spec);
  if (match.has_value()) {
    EXPECT_GE(match->value, spec.cs());
    EXPECT_NE(match->index, 0u);
  }
}

}  // namespace
}  // namespace ips
