// Tests for multiprobe SimHash tables and the bit-parallel sign-domain
// hardness pipeline.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dataset.h"
#include "embed/chebyshev_embedding.h"
#include "embed/sign_embedding.h"
#include "hardness/sign_pipeline.h"
#include "linalg/kernels.h"
#include "lsh/multiprobe.h"
#include "rng/random.h"

namespace ips {
namespace {

TEST(MultiprobeTest, FindsSelfWithZeroProbes) {
  Rng rng(3);
  const Matrix data = MakeUnitBallGaussian(100, 12, 0.5, &rng);
  MultiprobeParams params;
  params.k = 8;
  params.l = 2;
  params.probes = 0;
  const MultiprobeSimHashTables tables(data, params, &rng);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto candidates = tables.Query(data.Row(i));
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), i),
              candidates.end());
  }
}

TEST(MultiprobeTest, ProbingImprovesRecallAtFixedTables) {
  Rng rng(5);
  const std::size_t kDim = 16;
  const PlantedInstance planted =
      MakePlantedInstance(600, 50, kDim, 0.8, 1.0, &rng);
  auto recall_with_probes = [&](std::size_t probes) {
    MultiprobeParams params;
    params.k = 20;
    params.l = 1;  // deliberately a single table
    params.probes = probes;
    Rng local(7);
    const MultiprobeSimHashTables tables(planted.data, params, &local);
    std::size_t hits = 0;
    for (std::size_t qi = 0; qi < planted.queries.rows(); ++qi) {
      const auto candidates = tables.Query(planted.queries.Row(qi));
      if (std::find(candidates.begin(), candidates.end(),
                    planted.plants[qi]) != candidates.end()) {
        ++hits;
      }
    }
    return static_cast<double>(hits) / planted.queries.rows();
  };
  const double base = recall_with_probes(0);
  const double probed = recall_with_probes(24);
  EXPECT_GT(probed, base + 0.1);
  EXPECT_GE(probed, 0.4);
}

TEST(MultiprobeTest, CandidatesSortedUniqueAndBounded) {
  Rng rng(11);
  const Matrix data = MakeUnitBallGaussian(200, 10, 0.4, &rng);
  MultiprobeParams params;
  params.k = 10;
  params.l = 3;
  params.probes = 6;
  const MultiprobeSimHashTables tables(data, params, &rng);
  std::vector<double> q(10);
  for (double& v : q) v = rng.NextGaussian();
  const auto candidates = tables.Query(q);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LT(candidates[i - 1], candidates[i]);
  }
  EXPECT_LE(candidates.size(), data.rows());
}

TEST(SignPipelineTest, PackedEmbeddingMatchesDense) {
  Rng rng(13);
  OvpOptions options;
  options.size_a = 12;
  options.size_b = 12;
  options.dim = 10;
  options.plant_orthogonal_pair = true;
  const OvpInstance instance = GenerateOvpInstance(options, &rng);
  const ChebyshevGapEmbedding embedding(10, 2);
  const auto [sp, sq] = EmbedOvpInstanceSigned(instance, embedding);
  const auto [dp, dq] = EmbedOvpInstance(instance, embedding);
  ASSERT_EQ(sp.rows(), dp.rows());
  ASSERT_EQ(sp.cols(), dp.cols());
  for (std::size_t i = 0; i < sp.rows(); ++i) {
    for (std::size_t j = 0; j < sq.rows(); ++j) {
      EXPECT_DOUBLE_EQ(static_cast<double>(sp.DotRows(i, sq, j)),
                       kernels::Dot(dp.Row(i), dq.Row(j)));
    }
  }
}

TEST(SignPipelineTest, RecoversPlantedPairSignedAndUnsigned) {
  Rng rng(17);
  OvpOptions options;
  options.size_a = 40;
  options.size_b = 40;
  options.dim = 24;
  options.plant_orthogonal_pair = true;
  const OvpInstance instance = GenerateOvpInstance(options, &rng);
  {
    const SignedGapEmbedding embedding(24);
    const ReductionResult result =
        SolveOvpViaSignEmbedding(instance, embedding);
    ASSERT_TRUE(result.pair.has_value());
    EXPECT_TRUE(instance.a.OrthogonalRows(result.pair->first, instance.b,
                                          result.pair->second));
  }
  {
    const ChebyshevGapEmbedding embedding(24, 1);
    const ReductionResult result =
        SolveOvpViaSignEmbedding(instance, embedding);
    ASSERT_TRUE(result.pair.has_value());
  }
}

TEST(SignPipelineTest, RejectsBinaryDomainEmbeddings) {
  Rng rng(19);
  OvpOptions options;
  options.dim = 12;
  const OvpInstance instance = GenerateOvpInstance(options, &rng);
  // BinaryChunkEmbedding maps into {0,1}: the sign pipeline must refuse.
  class FakeBinary : public GapEmbedding {
   public:
    std::string Name() const override { return "fake"; }
    EmbeddingDomain domain() const override {
      return EmbeddingDomain::kBinary;
    }
    std::size_t input_dim() const override { return 12; }
    std::size_t output_dim() const override { return 1; }
    bool IsSigned() const override { return false; }
    double s() const override { return 1; }
    double cs() const override { return 0; }
    std::vector<double> EmbedLeft(std::span<const double>) const override {
      return {1.0};
    }
    std::vector<double> EmbedRight(std::span<const double>) const override {
      return {1.0};
    }
  };
  EXPECT_DEATH(EmbedOvpInstanceSigned(instance, FakeBinary()),
               "sign pipeline");
}

TEST(SignPipelineTest, AgreesWithDensePipelineOnUnplantedInstances) {
  Rng rng(23);
  OvpOptions options;
  options.size_a = 20;
  options.size_b = 20;
  options.dim = 16;
  options.density = 0.4;
  options.plant_orthogonal_pair = false;
  for (int trial = 0; trial < 5; ++trial) {
    const OvpInstance instance = GenerateOvpInstance(options, &rng);
    const SignedGapEmbedding embedding(16);
    const ReductionResult dense = SolveOvpViaEmbedding(instance, embedding);
    const ReductionResult packed =
        SolveOvpViaSignEmbedding(instance, embedding);
    EXPECT_EQ(dense.pair.has_value(), packed.pair.has_value());
  }
}

}  // namespace
}  // namespace ips
