// Tests for src/core: dataset generators, the four MipsIndex
// implementations, join drivers, and the Definition 1 contract verifier.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dataset.h"
#include "core/mips_index.h"
#include "core/similarity_join.h"
#include "linalg/kernels.h"
#include "lsh/simhash.h"
#include "rng/random.h"

namespace ips {
namespace {

TEST(DatasetTest, UnitBallGaussianNorms) {
  Rng rng(3);
  const Matrix points = MakeUnitBallGaussian(200, 16, 0.5, &rng);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    const double norm = kernels::Norm(points.Row(i));
    EXPECT_GE(norm, 0.5 - 1e-9);
    EXPECT_LE(norm, 1.0 + 1e-9);
  }
}

TEST(DatasetTest, LatentFactorNormsDecay) {
  Rng rng(5);
  const Matrix points = MakeLatentFactorVectors(100, 8, 0.5, &rng);
  EXPECT_NEAR(kernels::Norm(points.Row(0)), 1.0, 1e-9);
  EXPECT_GT(kernels::Norm(points.Row(10)), kernels::Norm(points.Row(90)));
  EXPECT_NEAR(kernels::Norm(points.Row(63)), std::pow(64.0, -0.5), 1e-9);
}

TEST(DatasetTest, BinarySetsHaveExactWeight) {
  Rng rng(7);
  const Matrix points = MakeBinarySets(50, 64, 12, &rng);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    double weight = 0.0;
    for (double v : points.Row(i)) {
      EXPECT_TRUE(v == 0.0 || v == 1.0);
      weight += v;
    }
    EXPECT_EQ(weight, 12.0);
  }
}

TEST(DatasetTest, PlantedInstanceHasStrongPairs) {
  Rng rng(11);
  const PlantedInstance instance =
      MakePlantedInstance(300, 20, 32, 0.8, 1.0, &rng);
  for (std::size_t i = 0; i < 20; ++i) {
    const double value = kernels::Dot(instance.data.Row(instance.plants[i]),
                             instance.queries.Row(i));
    EXPECT_GT(value, 0.6);  // close to target 0.8 minus noise
    EXPECT_LE(kernels::Norm(instance.queries.Row(i)), 1.0 + 1e-9);
  }
}

class IndexAgreementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(13);
    data_ = MakeUnitBallGaussian(400, 12, 0.3, &rng);
    queries_ = MakeUnitBallGaussian(30, 12, 0.8, &rng);
  }
  Matrix data_;
  Matrix queries_;
};

TEST_F(IndexAgreementTest, BruteForceFindsTrueMax) {
  const BruteForceIndex index(data_);
  JoinSpec spec;
  spec.s = 0.0;
  spec.c = 0.5;
  spec.is_signed = true;
  for (std::size_t qi = 0; qi < queries_.rows(); ++qi) {
    const auto match = index.Search(queries_.Row(qi), spec);
    ASSERT_TRUE(match.has_value());
    double truth = -1e300;
    for (std::size_t i = 0; i < data_.rows(); ++i) {
      truth = std::max(truth, kernels::Dot(data_.Row(i), queries_.Row(qi)));
    }
    EXPECT_NEAR(match->value, truth, 1e-9);
  }
  EXPECT_EQ(index.InnerProductsEvaluated(),
            queries_.rows() * data_.rows());
}

TEST_F(IndexAgreementTest, TreeAgreesWithBruteForce) {
  Rng rng(17);
  const BruteForceIndex brute(data_);
  const TreeMipsIndex tree(data_, 8, &rng);
  for (const bool is_signed : {true, false}) {
    JoinSpec spec;
    spec.s = 0.0;
    spec.c = 0.9;
    spec.is_signed = is_signed;
    for (std::size_t qi = 0; qi < queries_.rows(); ++qi) {
      const auto brute_match = brute.Search(queries_.Row(qi), spec);
      const auto tree_match = tree.Search(queries_.Row(qi), spec);
      ASSERT_EQ(brute_match.has_value(), tree_match.has_value());
      if (brute_match.has_value()) {
        EXPECT_NEAR(brute_match->value, tree_match->value, 1e-9);
      }
    }
  }
}

TEST_F(IndexAgreementTest, LshIndexFindsPlantedMatches) {
  Rng rng(19);
  const PlantedInstance planted =
      MakePlantedInstance(500, 25, 24, 0.9, 1.0, &rng);
  const DualBallTransform transform(24, 1.0);
  const SimHashFamily base(transform.output_dim());
  LshTableParams params;
  params.k = 8;
  params.l = 32;
  const LshMipsIndex index(planted.data, &transform, base, params, &rng);
  JoinSpec spec;
  spec.s = 0.8;
  spec.c = 0.7;
  spec.is_signed = true;
  std::size_t found = 0;
  for (std::size_t qi = 0; qi < planted.queries.rows(); ++qi) {
    const auto match = index.Search(planted.queries.Row(qi), spec);
    if (match.has_value() && match->value >= spec.cs()) ++found;
  }
  // High recall expected on near-duplicate planted pairs.
  EXPECT_GE(found, 22u);
  EXPECT_GT(index.MeanCandidates(), 0.0);
  EXPECT_LT(index.MeanCandidates(), 250.0);  // prunes most of the data
}

TEST_F(IndexAgreementTest, SketchIndexAnswersUnsignedOnly) {
  Rng rng(23);
  SketchMipsParams params;
  params.copies = 5;
  const SketchIndex index(data_, SketchConfig{params, {}}, &rng);
  JoinSpec spec;
  spec.s = 0.1;
  spec.c = 0.5;
  spec.is_signed = true;
  EXPECT_DEATH(index.Search(queries_.Row(0), spec), "unsigned");
}

TEST(ExactJoinTest, ThresholdRespected) {
  Rng rng(29);
  const PlantedInstance planted =
      MakePlantedInstance(100, 10, 16, 0.9, 1.0, &rng);
  JoinSpec spec;
  spec.s = 0.7;
  spec.c = 0.8;
  spec.is_signed = true;
  const JoinResult result =
      ExactJoin(planted.data, planted.queries, spec, nullptr);
  EXPECT_EQ(result.per_query.size(), 10u);
  EXPECT_EQ(result.NumMatched(), 10u);  // all planted pairs exceed s
  for (const auto& match : result.per_query) {
    ASSERT_TRUE(match.has_value());
    EXPECT_GE(match->value, spec.s);
  }
  EXPECT_EQ(result.inner_products, 100u * 10u);
}

TEST(ExactJoinTest, ParallelMatchesSequential) {
  Rng rng(31);
  const Matrix data = MakeUnitBallGaussian(150, 8, 0.2, &rng);
  const Matrix queries = MakeUnitBallGaussian(40, 8, 0.7, &rng);
  JoinSpec spec;
  spec.s = 0.2;
  spec.c = 0.5;
  spec.is_signed = false;
  ThreadPool pool(4);
  const JoinResult sequential = ExactJoin(data, queries, spec, nullptr);
  const JoinResult parallel = ExactJoin(data, queries, spec, &pool);
  ASSERT_EQ(sequential.per_query.size(), parallel.per_query.size());
  for (std::size_t i = 0; i < sequential.per_query.size(); ++i) {
    ASSERT_EQ(sequential.per_query[i].has_value(),
              parallel.per_query[i].has_value());
    if (sequential.per_query[i].has_value()) {
      EXPECT_EQ(sequential.per_query[i]->data,
                parallel.per_query[i]->data);
    }
  }
}

TEST(IndexJoinTest, BruteForceIndexJoinEqualsExactJoin) {
  Rng rng(37);
  const Matrix data = MakeUnitBallGaussian(120, 8, 0.2, &rng);
  const Matrix queries = MakeUnitBallGaussian(15, 8, 0.9, &rng);
  JoinSpec spec;
  spec.s = 0.3;
  spec.c = 1.0 - 1e-12;  // cs == s: index join must match exact join
  spec.is_signed = true;
  const BruteForceIndex index(data);
  const JoinResult via_index = IndexJoin(index, queries, spec);
  const JoinResult exact = ExactJoin(data, queries, spec, nullptr);
  ASSERT_EQ(via_index.per_query.size(), exact.per_query.size());
  for (std::size_t i = 0; i < exact.per_query.size(); ++i) {
    EXPECT_EQ(via_index.per_query[i].has_value(),
              exact.per_query[i].has_value());
  }
}

TEST(VerifyJoinContractTest, CountsViolations) {
  JoinSpec spec;
  spec.s = 1.0;
  spec.c = 0.5;
  JoinResult truth;
  truth.per_query = {JoinMatch{0, 5, 1.2},   // promised
                     JoinMatch{1, 6, 0.4},   // below s: not promised
                     JoinMatch{2, 7, 2.0},   // promised
                     std::nullopt};          // no match at all
  JoinResult reported;
  reported.per_query = {JoinMatch{0, 5, 0.9},  // >= cs: OK
                        std::nullopt,          // not promised: OK
                        JoinMatch{2, 9, 0.3},  // < cs: violation
                        std::nullopt};
  double recall = 0.0;
  const std::size_t violations =
      VerifyJoinContract(reported, truth, spec, &recall);
  EXPECT_EQ(violations, 1u);
  EXPECT_DOUBLE_EQ(recall, 0.5);
}

TEST(VerifyJoinContractTest, PerfectResultHasNoViolations) {
  JoinSpec spec;
  spec.s = 0.5;
  spec.c = 0.5;
  JoinResult truth;
  truth.per_query = {JoinMatch{0, 1, 0.8}};
  double recall = 0.0;
  EXPECT_EQ(VerifyJoinContract(truth, truth, spec, &recall), 0u);
  EXPECT_DOUBLE_EQ(recall, 1.0);
}

}  // namespace
}  // namespace ips
