// Tests for src/linalg: dense matrices, packed bit/sign matrices, vector
// kernels, and Gaussian projections (including a JL property sweep).

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/bit_matrix.h"
#include "linalg/matrix.h"
#include "linalg/random_projection.h"
#include "linalg/sign_matrix.h"
#include "linalg/kernels.h"
#include "rng/random.h"
#include "util/stats.h"

namespace ips {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.At(1, 2) = 5.0;
  EXPECT_EQ(m.At(1, 2), 5.0);
  EXPECT_EQ(m.Row(1)[2], 5.0);
}

TEST(MatrixTest, FromData) {
  Matrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(m.At(0, 1), 2.0);
  EXPECT_EQ(m.At(1, 0), 3.0);
}

TEST(MatrixTest, AppendRowSetsColumns) {
  Matrix m;
  m.AppendRow(std::vector<double>{1.0, 2.0});
  m.AppendRow(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.At(1, 1), 4.0);
}

TEST(MatrixTest, AppendMismatchedRowDies) {
  Matrix m;
  m.AppendRow(std::vector<double>{1.0, 2.0});
  EXPECT_DEATH(m.AppendRow(std::vector<double>{1.0}), "IPS_CHECK_EQ");
}

TEST(VectorOpsTest, DotAndNorms) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {5.0, 4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(kernels::Dot(x, y), 35.0);
  EXPECT_DOUBLE_EQ(kernels::SquaredNorm(x), 55.0);
  EXPECT_DOUBLE_EQ(kernels::Norm(x), std::sqrt(55.0));
}

TEST(VectorOpsTest, DotHandlesShortVectors) {
  const std::vector<double> x = {2.0};
  const std::vector<double> y = {3.0};
  EXPECT_DOUBLE_EQ(kernels::Dot(x, y), 6.0);
  EXPECT_DOUBLE_EQ(kernels::Dot(std::vector<double>{}, std::vector<double>{}), 0.0);
}

TEST(VectorOpsTest, LpNorms) {
  const std::vector<double> x = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(kernels::LpNorm(x, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(kernels::LpNorm(x, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(kernels::LInfNorm(x), 4.0);
}

TEST(VectorOpsTest, LpNormConvergesToLInf) {
  const std::vector<double> x = {1.0, -7.0, 3.0};
  EXPECT_NEAR(kernels::LpNorm(x, 64.0), kernels::LInfNorm(x), 0.15);
}

TEST(VectorOpsTest, SquaredDistance) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {4.0, 6.0};
  EXPECT_DOUBLE_EQ(kernels::SquaredDistance(x, y), 25.0);
}

TEST(VectorOpsTest, NormalizeMakesUnit) {
  std::vector<double> x = {3.0, 4.0};
  kernels::NormalizeInPlace(x);
  EXPECT_NEAR(kernels::Norm(x), 1.0, 1e-12);
  EXPECT_NEAR(x[0], 0.6, 1e-12);
}

TEST(VectorOpsTest, NormalizeZeroIsNoop) {
  std::vector<double> zero = {0.0, 0.0};
  kernels::NormalizeInPlace(zero);
  EXPECT_EQ(zero[0], 0.0);
}

TEST(VectorOpsTest, CosineSimilarity) {
  const std::vector<double> x = {1.0, 0.0};
  const std::vector<double> y = {1.0, 1.0};
  EXPECT_NEAR(kernels::CosineSimilarity(x, y), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_EQ(kernels::CosineSimilarity(x, std::vector<double>{0.0, 0.0}), 0.0);
}

TEST(BitMatrixTest, SetGetRoundTrip) {
  BitMatrix m(3, 130);  // spans multiple words
  m.Set(1, 0, true);
  m.Set(1, 64, true);
  m.Set(1, 129, true);
  EXPECT_TRUE(m.Get(1, 0));
  EXPECT_TRUE(m.Get(1, 64));
  EXPECT_TRUE(m.Get(1, 129));
  EXPECT_FALSE(m.Get(1, 1));
  EXPECT_EQ(m.RowPopcount(1), 3u);
  m.Set(1, 64, false);
  EXPECT_FALSE(m.Get(1, 64));
  EXPECT_EQ(m.RowPopcount(1), 2u);
}

TEST(BitMatrixTest, DotAndOrthogonality) {
  BitMatrix a(1, 100);
  BitMatrix b(2, 100);
  a.Set(0, 5, true);
  a.Set(0, 70, true);
  b.Set(0, 70, true);  // overlaps
  b.Set(1, 6, true);   // disjoint
  EXPECT_EQ(a.DotRows(0, b, 0), 1u);
  EXPECT_EQ(a.DotRows(0, b, 1), 0u);
  EXPECT_FALSE(a.OrthogonalRows(0, b, 0));
  EXPECT_TRUE(a.OrthogonalRows(0, b, 1));
}

TEST(BitMatrixTest, DenseRoundTrip) {
  Rng rng(3);
  BitMatrix m(4, 37);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 37; ++j) {
      if (rng.NextBernoulli(0.5)) m.Set(i, j, true);
    }
  }
  const BitMatrix back = BitMatrix::FromDense(m.ToDense());
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 37; ++j) {
      EXPECT_EQ(m.Get(i, j), back.Get(i, j));
    }
  }
}

TEST(BitMatrixTest, FromDenseRejectsNonBinary) {
  Matrix dense(1, 2);
  dense.At(0, 0) = 0.5;
  EXPECT_DEATH(BitMatrix::FromDense(dense), "not binary");
}

TEST(SignMatrixTest, DefaultsToMinusOne) {
  SignMatrix m(1, 5);
  for (std::size_t j = 0; j < 5; ++j) EXPECT_EQ(m.Get(0, j), -1);
}

TEST(SignMatrixTest, DotMatchesDense) {
  Rng rng(5);
  const std::size_t kDim = 77;  // exercises the tail-word mask
  SignMatrix a(3, kDim);
  SignMatrix b(3, kDim);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < kDim; ++j) {
      a.Set(i, j, rng.NextSign());
      b.Set(i, j, rng.NextSign());
    }
  }
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const double dense_dot = kernels::Dot(a.RowAsDense(i), b.RowAsDense(j));
      EXPECT_EQ(static_cast<double>(a.DotRows(i, b, j)), dense_dot);
    }
  }
}

TEST(SignMatrixTest, SelfDotIsDimension) {
  SignMatrix m(1, 100);
  for (std::size_t j = 0; j < 100; ++j) m.Set(0, j, j % 2 ? 1 : -1);
  EXPECT_EQ(m.DotRows(0, m, 0), 100);
  EXPECT_EQ(m.HammingRows(0, m, 0), 0u);
}

TEST(SignMatrixTest, DenseRoundTrip) {
  Rng rng(7);
  SignMatrix m(2, 65);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 65; ++j) m.Set(i, j, rng.NextSign());
  }
  const SignMatrix back = SignMatrix::FromDense(m.ToDense());
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 65; ++j) {
      EXPECT_EQ(m.Get(i, j), back.Get(i, j));
    }
  }
}

TEST(GaussianProjectionTest, PreservesNormInExpectation) {
  Rng rng(11);
  const std::size_t kInputDim = 64;
  std::vector<double> x(kInputDim);
  for (double& v : x) v = rng.NextGaussian();
  const double true_norm_sq = kernels::SquaredNorm(x);
  OnlineStats ratio;
  for (int trial = 0; trial < 200; ++trial) {
    GaussianProjection projection(32, kInputDim, &rng);
    ratio.Add(kernels::SquaredNorm(projection.Apply(x)) / true_norm_sq);
  }
  EXPECT_NEAR(ratio.Mean(), 1.0, 0.1);
}

struct JlCase {
  std::size_t input_dim;
  std::size_t output_dim;
  double tolerance;
};

class JlSweepTest : public ::testing::TestWithParam<JlCase> {};

TEST_P(JlSweepTest, PairwiseDistancesApproximatelyPreserved) {
  const JlCase param = GetParam();
  Rng rng(13);
  constexpr std::size_t kPoints = 12;
  Matrix points(kPoints, param.input_dim);
  for (double& v : points.data()) v = rng.NextGaussian();
  GaussianProjection projection(param.output_dim, param.input_dim, &rng);
  const Matrix projected = projection.ApplyToRows(points);
  // Most pairs should have distortion within tolerance; JL is a w.h.p.
  // statement so allow a small number of outliers.
  std::size_t bad = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < kPoints; ++i) {
    for (std::size_t j = i + 1; j < kPoints; ++j) {
      const double original =
          kernels::SquaredDistance(points.Row(i), points.Row(j));
      const double mapped =
          kernels::SquaredDistance(projected.Row(i), projected.Row(j));
      ++total;
      if (std::abs(mapped / original - 1.0) > param.tolerance) ++bad;
    }
  }
  EXPECT_LE(bad, total / 10);
}

INSTANTIATE_TEST_SUITE_P(
    Dimensions, JlSweepTest,
    ::testing::Values(JlCase{128, 256, 0.5}, JlCase{128, 512, 0.35},
                      JlCase{64, 1024, 0.25}, JlCase{256, 2048, 0.2}));

}  // namespace
}  // namespace ips
