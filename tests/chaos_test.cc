// Chaos tests for the failure-hardening layer: every armed failpoint and
// every invalid-input class must surface as a descriptive non-OK Status
// through the public API — never an abort, never std::terminate — and
// the same object/API must accept a subsequent valid request (graceful
// degradation, not poisoned state).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/dataset.h"
#include "core/io.h"
#include "core/mips_index.h"
#include "core/similarity_join.h"
#include "core/symmetric_index.h"
#include "lsh/bucket_join.h"
#include "lsh/simhash.h"
#include "lsh/tables.h"
#include "lsh/transforms.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rng/random.h"
#include "serve/batch_scheduler.h"
#include "serve/engine.h"
#include "serve/sharded_engine.h"
#include "sketch/sketch_mips.h"
#include "storage/blocked_join.h"
#include "storage/snapshot.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace ips {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DisarmAll(); }

  static JoinSpec ValidSpec() {
    JoinSpec spec;
    spec.s = 0.5;
    spec.c = 0.5;
    spec.is_signed = true;
    return spec;
  }
};

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// --- Failpoint framework basics ---

TEST_F(ChaosTest, DisarmedFailpointsAreInvisible) {
  EXPECT_FALSE(Failpoints::AnyArmed());
  EXPECT_TRUE(ParseMatrixCsv("1,2\n3,4\n").ok());
}

TEST_F(ChaosTest, FailpointFiresOnNthHitExactlyOnce) {
  ScopedFailpoint fp("io/parse-line", /*nth=*/2);
  // Line 1 parses; line 2 hits the trigger.
  const auto result = ParseMatrixCsv("1,2\n3,4\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("io/parse-line"),
            std::string::npos);
  EXPECT_EQ(fp.hit_count(), 2u);
  // The site fired once; the same API call now succeeds.
  EXPECT_TRUE(ParseMatrixCsv("1,2\n3,4\n").ok());
}

TEST_F(ChaosTest, FailpointCarriesArmedStatusCode) {
  const std::string path = TempPath("chaos_read.csv");
  IPS_CHECK_OK(SaveMatrixCsv(path, Matrix(2, 2)));
  Failpoints::Arm("io/read", 1,
                  Status::ResourceExhausted("file descriptor limit"));
  const auto result = LoadMatrixCsv(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("file descriptor limit"),
            std::string::npos);
  // Degraded gracefully: the next read succeeds.
  EXPECT_TRUE(LoadMatrixCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(ChaosTest, WriteFailpointSurfacesAndRecovers) {
  const std::string path = TempPath("chaos_write.csv");
  ScopedFailpoint fp("io/write");
  EXPECT_FALSE(SaveMatrixCsv(path, Matrix(1, 1)).ok());
  EXPECT_TRUE(SaveMatrixCsv(path, Matrix(1, 1)).ok());
  std::remove(path.c_str());
}

// --- ThreadPool / ParallelFor under injected and thrown failures ---

TEST_F(ChaosTest, ScheduleFailpointSurfacesAtWaitStatus) {
  ThreadPool pool(4);
  ScopedFailpoint fp("threadpool/schedule", /*nth=*/3);
  const Status status =
      ParallelForStatus(&pool, 100, [](std::size_t, std::size_t) {
        return Status::Ok();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("threadpool/schedule"), std::string::npos);
  // The pool is not poisoned: the next run completes cleanly.
  std::atomic<int> hits{0};
  EXPECT_TRUE(ParallelForStatus(&pool, 100,
                                [&hits](std::size_t begin, std::size_t end) {
                                  hits += static_cast<int>(end - begin);
                                  return Status::Ok();
                                })
                  .ok());
  EXPECT_EQ(hits.load(), 100);
}

TEST_F(ChaosTest, ParallelForBodyThrowPropagatesExactlyOneError) {
  ThreadPool pool(4);
  bool caught = false;
  try {
    ParallelFor(&pool, 1000, [](std::size_t, std::size_t) {
      throw std::runtime_error("poisoned chunk");
    });
  } catch (const std::runtime_error& error) {
    caught = true;
    EXPECT_STREQ(error.what(), "poisoned chunk");
  }
  EXPECT_TRUE(caught);
  // Pool survives for the next job.
  std::atomic<int> covered{0};
  ParallelFor(&pool, 256, [&covered](std::size_t begin, std::size_t end) {
    covered += static_cast<int>(end - begin);
  });
  EXPECT_EQ(covered.load(), 256);
}

TEST_F(ChaosTest, ParallelForStatusCancelsRemainingChunks) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  const Status status = ParallelForStatus(
      &pool, 1 << 20, [&executed](std::size_t begin, std::size_t) {
        if (begin == 0) {
          return Status::FailedPrecondition("first chunk rejects");
        }
        executed.fetch_add(1);
        return Status::Ok();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // 16 chunks were scheduled; cancellation means not all ran (the exact
  // count is timing-dependent, but the failing chunk never counts).
  EXPECT_LT(executed.load(), 16);
}

// --- Validated construction: every invalid-input class ---

TEST_F(ChaosTest, IndexCreateRejectsNanRows) {
  Matrix data(3, 2);
  data.At(1, 1) = std::numeric_limits<double>::quiet_NaN();
  const auto index = BruteForceIndex::Create(data);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(index.status().message().find("row 1"), std::string::npos);
  EXPECT_NE(index.status().message().find("column 1"), std::string::npos);
}

TEST_F(ChaosTest, IndexCreateRejectsEmptyDataset) {
  const Matrix empty;
  EXPECT_FALSE(BruteForceIndex::Create(empty).ok());
  Rng rng(1);
  EXPECT_FALSE(TreeMipsIndex::Create(empty, 8, &rng).ok());
  EXPECT_FALSE(SketchIndex::Create(empty, SketchConfig{}, &rng).ok());
}

TEST_F(ChaosTest, TreeCreateRejectsBadParameters) {
  Rng rng(2);
  const Matrix data = MakeUnitBallGaussian(10, 4, 0.5, &rng);
  EXPECT_FALSE(TreeMipsIndex::Create(data, 0, &rng).ok());
  EXPECT_FALSE(TreeMipsIndex::Create(data, 8, nullptr).ok());
  EXPECT_TRUE(TreeMipsIndex::Create(data, 8, &rng).ok());
}

TEST_F(ChaosTest, LshCreateRejectsDimensionMismatch) {
  Rng rng(3);
  const Matrix data = MakeUnitBallGaussian(10, 4, 0.5, &rng);
  // Transform expects 8-dimensional input, data is 4-dimensional.
  const DualBallTransform transform(8, 1.0);
  const SimHashFamily family(transform.output_dim());
  const auto index =
      LshMipsIndex::Create(data, &transform, family, LshTableParams{}, &rng);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kInvalidArgument);
  // Family hashing a different dimension than the raw data.
  const SimHashFamily narrow(3);
  EXPECT_FALSE(
      LshMipsIndex::Create(data, nullptr, narrow, LshTableParams{}, &rng)
          .ok());
}

TEST_F(ChaosTest, LshCreateRejectsZeroAmplification) {
  Rng rng(4);
  const Matrix data = MakeUnitBallGaussian(10, 4, 0.5, &rng);
  const SimHashFamily family(4);
  LshTableParams params;
  params.k = 0;
  EXPECT_FALSE(
      LshMipsIndex::Create(data, nullptr, family, params, &rng).ok());
  EXPECT_FALSE(LshTables::Create(family, data, params, &rng).ok());
}

TEST_F(ChaosTest, SketchCreateRejectsBadKappa) {
  Rng rng(5);
  const Matrix data = MakeUnitBallGaussian(10, 4, 0.5, &rng);
  SketchConfig config;
  config.argmax.kappa = 1.5;
  const auto index = SketchIndex::Create(data, config, &rng);
  ASSERT_FALSE(index.ok());
  EXPECT_NE(index.status().message().find("kappa"), std::string::npos);
  config.argmax.kappa = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(SketchIndex::Create(data, config, &rng).ok());
  // The one validated factory also vets the filter stage's params.
  config.argmax.kappa = 4.0;
  config.filter.copies = 0;
  EXPECT_FALSE(SketchIndex::Create(data, config, &rng).ok());
  config.filter.copies = 1;
  config.filter.survivor_multiplier = 0.0;
  EXPECT_FALSE(SketchIndex::Create(data, config, &rng).ok());
  config.filter.survivor_multiplier = 16.0;
  EXPECT_TRUE(SketchIndex::Create(data, config, &rng).ok());
}

TEST_F(ChaosTest, SymmetricCreateRejectsBadEpsilonAndNorms) {
  Rng rng(6);
  const Matrix data = MakeUnitBallGaussian(16, 4, 0.5, &rng);
  LshTableParams params;
  EXPECT_FALSE(SymmetricMipsIndex::Create(data, 0.0, params, &rng).ok());
  EXPECT_FALSE(SymmetricMipsIndex::Create(data, 1.5, params, &rng).ok());
  // A row outside the unit ball violates the Section 4.2 precondition.
  Matrix big = data;
  big.At(0, 0) = 3.0;
  const auto index = SymmetricMipsIndex::Create(big, 0.25, params, &rng);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(index.status().message().find("row 0"), std::string::npos);
}

TEST_F(ChaosTest, BucketJoinCheckedRejectsMismatchedSides) {
  Rng rng(7);
  const Matrix data = MakeUnitBallGaussian(10, 4, 0.5, &rng);
  const Matrix queries = MakeUnitBallGaussian(5, 4, 0.5, &rng);
  const Matrix wrong_rows = MakeUnitBallGaussian(9, 4, 0.5, &rng);
  const SimHashFamily family(4);
  const auto mismatch =
      LshBucketJoinChecked(family, wrong_rows, data, queries, queries, 0.5,
                           0.25, true, LshTableParams{}, &rng);
  ASSERT_FALSE(mismatch.ok());
  const auto inverted =
      LshBucketJoinChecked(family, data, data, queries, queries,
                           /*s=*/0.25, /*cs=*/0.5, true, LshTableParams{},
                           &rng);
  ASSERT_FALSE(inverted.ok());
  EXPECT_NE(inverted.status().message().find("exceeds"), std::string::npos);
  EXPECT_TRUE(LshBucketJoinChecked(family, data, data, queries, queries,
                                   0.5, 0.25, true, LshTableParams{}, &rng)
                  .ok());
}

TEST_F(ChaosTest, JoinSpecValidation) {
  JoinSpec spec = ValidSpec();
  EXPECT_TRUE(ValidateJoinSpec(spec).ok());
  spec.c = 1.5;
  EXPECT_FALSE(ValidateJoinSpec(spec).ok());
  spec.c = 0.0;
  EXPECT_FALSE(ValidateJoinSpec(spec).ok());
  spec.c = 0.5;
  spec.s = -1.0;
  EXPECT_FALSE(ValidateJoinSpec(spec).ok());
  spec.s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateJoinSpec(spec).ok());
}

TEST_F(ChaosTest, CheckedJoinsRejectBadInputThenServeGoodInput) {
  Rng rng(8);
  ThreadPool pool(4);
  const Matrix data = MakeUnitBallGaussian(64, 6, 0.9, &rng);
  const Matrix queries = MakeUnitBallGaussian(8, 6, 0.9, &rng);
  const JoinSpec spec = ValidSpec();

  // Dimension mismatch.
  const Matrix narrow = MakeUnitBallGaussian(8, 3, 0.9, &rng);
  EXPECT_FALSE(ExactJoinChecked(data, narrow, spec, &pool).ok());
  // NaN smuggled into a query row.
  Matrix poisoned = queries;
  poisoned.At(2, 0) = std::numeric_limits<double>::quiet_NaN();
  const auto bad = ExactJoinChecked(data, poisoned, spec, &pool);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("row 2"), std::string::npos);
  // Invalid spec.
  JoinSpec bad_spec = spec;
  bad_spec.c = 2.0;
  EXPECT_FALSE(ExactJoinChecked(data, queries, bad_spec, &pool).ok());

  // The same matrices and pool then serve a valid request.
  const auto good = ExactJoinChecked(data, queries, spec, &pool);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->per_query.size(), queries.rows());

  // And the index-driven flavor agrees end to end.
  const auto index = BruteForceIndex::Create(data);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(IndexJoinChecked(**index, poisoned, spec).ok());
  const auto via_index = IndexJoinChecked(**index, queries, spec);
  ASSERT_TRUE(via_index.ok());
  double recall = 1.0;
  EXPECT_EQ(VerifyJoinContract(*via_index, *good, spec, &recall), 0u);
  EXPECT_DOUBLE_EQ(recall, 1.0);
}

// --- Build-path failpoints: armed faults fail the build, not the process ---

TEST_F(ChaosTest, EveryBuildFailpointFailsOnceThenRecovers) {
  Rng rng(9);
  const Matrix data = MakeUnitBallGaussian(32, 4, 0.5, &rng);
  const SimHashFamily family(4);

  {
    ScopedFailpoint fp("core/index-build");
    EXPECT_FALSE(BruteForceIndex::Create(data).ok());
    EXPECT_TRUE(BruteForceIndex::Create(data).ok());
  }
  {
    ScopedFailpoint fp("lsh/tables-build");
    EXPECT_FALSE(LshTables::Create(family, data, LshTableParams{}, &rng).ok());
    EXPECT_TRUE(LshTables::Create(family, data, LshTableParams{}, &rng).ok());
  }
  {
    ScopedFailpoint fp("sketch/build");
    EXPECT_FALSE(SketchIndex::Create(data, SketchConfig{}, &rng).ok());
    EXPECT_TRUE(SketchIndex::Create(data, SketchConfig{}, &rng).ok());
  }
  {
    ScopedFailpoint fp("core/symmetric-build");
    LshTableParams params;
    params.k = 2;
    params.l = 4;
    EXPECT_FALSE(SymmetricMipsIndex::Create(data, 0.25, params, &rng).ok());
    EXPECT_TRUE(SymmetricMipsIndex::Create(data, 0.25, params, &rng).ok());
  }
  {
    ScopedFailpoint fp("lsh/bucket-join");
    EXPECT_FALSE(LshBucketJoinChecked(family, data, data, data, data, 0.5,
                                      0.25, true, LshTableParams{}, &rng)
                     .ok());
    EXPECT_TRUE(LshBucketJoinChecked(family, data, data, data, data, 0.5,
                                     0.25, true, LshTableParams{}, &rng)
                    .ok());
  }
  {
    ScopedFailpoint fp("core/exact-join");
    const JoinSpec spec = ValidSpec();
    EXPECT_FALSE(ExactJoinChecked(data, data, spec).ok());
    EXPECT_TRUE(ExactJoinChecked(data, data, spec).ok());
  }
}

TEST_F(ChaosTest, ExactJoinChunkFailpointCancelsCleanly) {
  Rng rng(10);
  ThreadPool pool(4);
  const Matrix data = MakeUnitBallGaussian(128, 6, 0.9, &rng);
  const JoinSpec spec = ValidSpec();
  {
    ScopedFailpoint fp("core/exact-join-chunk");
    const auto result = ExactJoinChecked(data, data, spec, &pool);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("core/exact-join-chunk"),
              std::string::npos);
  }
  // The pool and inputs serve the next request, and the result matches
  // the single-threaded baseline.
  const auto parallel = ExactJoinChecked(data, data, spec, &pool);
  ASSERT_TRUE(parallel.ok());
  const auto serial = ExactJoinChecked(data, data, spec, nullptr);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(parallel->per_query.size(), serial->per_query.size());
  for (std::size_t qi = 0; qi < serial->per_query.size(); ++qi) {
    ASSERT_EQ(parallel->per_query[qi].has_value(),
              serial->per_query[qi].has_value());
    if (serial->per_query[qi].has_value()) {
      EXPECT_EQ(parallel->per_query[qi]->data, serial->per_query[qi]->data);
    }
  }
}

// --- Serve-path failpoints: plan, schedule, deadline ---

TEST_F(ChaosTest, ServePlanFailpointFailsRequestThenRecovers) {
  Rng rng(11);
  const auto engine = Engine::Create(MakeUnitBallGaussian(64, 6, 0.9, &rng));
  ASSERT_TRUE(engine.ok());
  const std::vector<double> q(6, 0.1);
  {
    ScopedFailpoint fp("serve/plan");
    const auto result = (*engine)->Query({q, {}});
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("serve/plan"),
              std::string::npos);
  }
  // The engine is not poisoned: the next request is served.
  EXPECT_TRUE((*engine)->Query({q, {}}).ok());
}

TEST_F(ChaosTest, ServeScheduleFailpointShedsAtAdmission) {
  Rng rng(12);
  const auto engine = Engine::Create(MakeUnitBallGaussian(64, 6, 0.9, &rng));
  ASSERT_TRUE(engine.ok());
  BatchScheduler scheduler(engine->get());
  {
    Failpoints::Arm("serve/schedule", 1,
                    Status::ResourceExhausted("admission queue fault"));
    auto future =
        scheduler.Submit({std::vector<double>(6, 0.1), {}});
    const auto result = future.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(result.status().message().find("admission queue fault"),
              std::string::npos);
    Failpoints::DisarmAll();
  }
  // The next submission is admitted and served.
  auto good = scheduler.Submit({std::vector<double>(6, 0.1), {}});
  EXPECT_TRUE(good.get().ok());
}

TEST_F(ChaosTest, QosAdmitFailpointShedsAndKeepsTenantPartition) {
  Rng rng(14);
  const auto engine = Engine::Create(MakeUnitBallGaussian(64, 6, 0.9, &rng));
  ASSERT_TRUE(engine.ok());
  BatchScheduler scheduler(engine->get());
  RequestContext context;
  context.tenant_id = "chaos";
  {
    Failpoints::Arm("serve/qos/admit", 1,
                    Status::ResourceExhausted("qos admission fault"));
    auto future =
        scheduler.Submit({std::vector<double>(6, 0.1), {}, context});
    const auto result = future.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(result.status().message().find("qos admission fault"),
              std::string::npos);
    Failpoints::DisarmAll();
  }
  // The injected admission failure is accounted exactly like a real
  // shed: the tenant's partition invariant holds and the next
  // submission from the same tenant is served.
  auto good = scheduler.Submit({std::vector<double>(6, 0.1), {}, context});
  EXPECT_TRUE(good.get().ok());
  scheduler.Drain();
  const TenantCounters tenant = scheduler.tenant_counters("chaos");
  EXPECT_EQ(tenant.submitted, 2u);
  EXPECT_EQ(tenant.shed, 1u);
  EXPECT_EQ(tenant.completed, 1u);
  EXPECT_EQ(tenant.submitted,
            tenant.completed + tenant.shed + tenant.expired);
}

TEST_F(ChaosTest, ServeDeadlineFailpointFailsBatchWithoutLeakingWork) {
  Rng rng(13);
  const auto engine = Engine::Create(MakeUnitBallGaussian(64, 6, 0.9, &rng));
  ASSERT_TRUE(engine.ok());
  BatchSchedulerOptions options;
  options.num_threads = 2;
  options.max_batch = 16;
  BatchScheduler scheduler(engine->get(), options);
  std::vector<std::future<BatchScheduler::Result>> futures;
  {
    ScopedFailpoint fp("serve/deadline");
    for (int i = 0; i < 16; ++i) {
      futures.push_back(
          scheduler.Submit({std::vector<double>(6, 0.1), {}}));
    }
    // Every future resolves — the injected fault cancels the batch, and
    // unexecuted requests are answered with the batch error, not leaked.
    std::size_t failed = 0;
    for (auto& future : futures) {
      const auto result = future.get();
      if (!result.ok()) ++failed;
    }
    EXPECT_GE(failed, 1u);
  }
  // Subsequent requests are served normally.
  auto good = scheduler.Submit({std::vector<double>(6, 0.1), {}});
  EXPECT_TRUE(good.get().ok());
}

// --- Serve-path failpoints under batched execution ---

TEST_F(ChaosTest, ServePlanFailpointFailsBatchQueryThenRecovers) {
  Rng rng(15);
  const auto engine = Engine::Create(MakeUnitBallGaussian(64, 6, 0.9, &rng));
  ASSERT_TRUE(engine.ok());
  const Matrix queries = MakeUnitBallGaussian(4, 6, 0.9, &rng);
  {
    ScopedFailpoint fp("serve/plan");
    const auto result = (*engine)->BatchQuery(queries, {}, {});
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("serve/plan"),
              std::string::npos);
  }
  const auto good = (*engine)->BatchQuery(queries, {}, {});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->size(), queries.rows());
}

TEST_F(ChaosTest, ServePlanFailpointFailsScheduledBatchGroupThenRecovers) {
  Rng rng(16);
  const auto engine = Engine::Create(MakeUnitBallGaussian(64, 6, 0.9, &rng));
  ASSERT_TRUE(engine.ok());
  BatchSchedulerOptions options;
  options.num_threads = 2;
  options.max_batch = 8;
  options.use_batch_execution = true;
  BatchScheduler scheduler(engine->get(), options);
  {
    // Repeating: every grouped Engine::BatchQuery's plan step fails, so
    // each submitted request resolves with the plan error.
    Failpoints::Arm("serve/plan", Status::Internal("planner wedged"),
                    FireEvery{1});
    std::vector<std::future<BatchScheduler::Result>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(
          scheduler.Submit({std::vector<double>(6, 0.1), {}}));
    }
    for (auto& future : futures) {
      const auto result = future.get();
      ASSERT_FALSE(result.ok());
      EXPECT_NE(result.status().message().find("planner wedged"),
                std::string::npos);
    }
    Failpoints::DisarmAll();
  }
  auto good = scheduler.Submit({std::vector<double>(6, 0.1), {}});
  EXPECT_TRUE(good.get().ok());
}

TEST_F(ChaosTest, ServeDeadlineFailpointFailsPerQueryPathToo) {
  // Same injection as ServeDeadlineFailpointFailsBatchWithoutLeakingWork
  // but with batched execution explicitly OFF: the sequential
  // per-request path must cancel just as cleanly.
  Rng rng(17);
  const auto engine = Engine::Create(MakeUnitBallGaussian(64, 6, 0.9, &rng));
  ASSERT_TRUE(engine.ok());
  BatchSchedulerOptions options;
  options.num_threads = 2;
  options.max_batch = 16;
  options.use_batch_execution = false;
  BatchScheduler scheduler(engine->get(), options);
  std::vector<std::future<BatchScheduler::Result>> futures;
  {
    ScopedFailpoint fp("serve/deadline");
    for (int i = 0; i < 16; ++i) {
      futures.push_back(
          scheduler.Submit({std::vector<double>(6, 0.1), {}}));
    }
    std::size_t failed = 0;
    for (auto& future : futures) {
      if (!future.get().ok()) ++failed;
    }
    EXPECT_GE(failed, 1u);
  }
  auto good = scheduler.Submit({std::vector<double>(6, 0.1), {}});
  EXPECT_TRUE(good.get().ok());
}

// --- Sharded scatter-gather failpoints ---

StatusOr<std::unique_ptr<ShardedEngine>> MakeShardedFixture(
    Rng* rng, ShardedEngineOptions options = {}) {
  return ShardedEngine::Create(MakeUnitBallGaussian(64, 6, 0.9, rng),
                               options);
}

TEST_F(ChaosTest, ShardQueryFailpointYieldsPartialResult) {
  Rng rng(18);
  const auto engine = MakeShardedFixture(&rng);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const std::vector<double> q(6, 0.1);
  {
    // One-shot kInternal: exactly one shard call fails, is not retried,
    // and the query degrades instead of failing.
    ScopedFailpoint fp("serve/shard/query");
    const auto result = (*engine)->Query({q, {}});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->partial);
    EXPECT_EQ(result->stats.shards_total, 4u);
    EXPECT_EQ(result->stats.shards_ok, 3u);
    EXPECT_EQ(result->stats.shards_failed, 1u);
    EXPECT_FALSE(result->matches.empty());
  }
  // The fleet is not poisoned: the next query is whole.
  const auto clean = (*engine)->Query({q, {}});
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->partial);
  EXPECT_EQ(clean->stats.shards_ok, 4u);
}

TEST_F(ChaosTest, AllShardsDownSurfacesUniformStatusThenRecovers) {
  Rng rng(19);
  ShardedEngineOptions options;
  options.retry.backoff_seconds = 1e-4;
  const auto engine = MakeShardedFixture(&rng, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const std::vector<double> q(6, 0.1);
  {
    // Every attempt on every shard fails kUnavailable: retries are spent
    // (3 attempts x 4 shards), then the whole query fails with the
    // uniform code — the only case Query returns a Status.
    Failpoints::Arm("serve/shard/query",
                    Status::Unavailable("backend down"), FireEvery{1});
    const auto result = (*engine)->Query({q, {}});
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
    EXPECT_EQ(Failpoints::HitCount("serve/shard/query"), 12u);
    Failpoints::DisarmAll();
  }
  // One lost call per shard stays below the trip threshold (3), so no
  // breaker opened: the next query recovers the whole fleet at once.
  const auto recovered = (*engine)->Query({q, {}});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->partial);
  EXPECT_EQ(recovered->stats.shards_ok, 4u);
}

TEST_F(ChaosTest, CircuitBreakerTripsSkipsAndRecovers) {
  Rng rng(20);
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 2;
  options.breaker.open_seconds = 0.05;
  const auto engine = MakeShardedFixture(&rng, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const std::vector<double> q(6, 0.1);
  Failpoints::Arm("serve/shard/query/1",
                  Status::Unavailable("shard 1 flapping"), FireEvery{1});
  // Two consecutive failures trip shard 1's breaker.
  for (int i = 0; i < 2; ++i) {
    const auto result = (*engine)->Query({q, {}});
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->partial);
  }
  EXPECT_EQ((*engine)->breaker_state(1), ShardedEngine::BreakerState::kOpen);
  const std::size_t hits_when_tripped =
      Failpoints::HitCount("serve/shard/query/1");
  // While open, shard 1 is ejected from the scatter set: still partial
  // answers, but the shard is never called (hit count stays flat).
  const auto skipped = (*engine)->Query({q, {}});
  ASSERT_TRUE(skipped.ok());
  EXPECT_TRUE(skipped->partial);
  EXPECT_EQ(Failpoints::HitCount("serve/shard/query/1"), hits_when_tripped);
  // Fault cleared + cooldown elapsed: the half-open probe succeeds and
  // closes the breaker; the fleet serves whole answers again.
  Failpoints::DisarmAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ((*engine)->breaker_state(1),
            ShardedEngine::BreakerState::kHalfOpen);
  const auto probe = (*engine)->Query({q, {}});
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_FALSE(probe->partial);
  EXPECT_EQ((*engine)->breaker_state(1),
            ShardedEngine::BreakerState::kClosed);
}

TEST_F(ChaosTest, SlowShardStragglerIsHedgedAroundNotFailed) {
  Rng rng(37);
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.hedge.min_samples = 1;
  options.hedge.latency_factor = 0.5;
  options.hedge.chaos_slow_seconds = 0.05;
  const auto engine = MakeShardedFixture(&rng, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  QueryOptions request;
  request.k = 3;
  RequestContext context;
  context.deadline_seconds = 0.01;
  const std::vector<double> q(6, 0.1);
  // A straggling shard is a *slowness* fault, not a failure: the 50 ms
  // injected stall blows the 5 ms shard budget, so after one observed
  // stall the predictor routes shard 0 through the hedge fallback —
  // answers stay whole, nothing is marked failed, no breaker trips.
  Failpoints::Arm("serve/shard/slow", Status::Internal("straggler"),
                  FireEvery{1});
  const auto first = (*engine)->Query({q, request, context});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const auto hedged = (*engine)->Query({q, request, context});
  ASSERT_TRUE(hedged.ok()) << hedged.status().ToString();
  EXPECT_GE(hedged->stats.shards_hedged, 1u);
  EXPECT_FALSE(hedged->partial);
  EXPECT_EQ(hedged->stats.shards_failed, 0u);
  Failpoints::DisarmAll();
  // Stall cleared: the fleet serves un-hedged again once the latency
  // window drains the stalled samples out.
  EXPECT_EQ((*engine)->breaker_state(0), ShardedEngine::BreakerState::kClosed);
  EXPECT_EQ((*engine)->breaker_state(1), ShardedEngine::BreakerState::kClosed);
}

TEST_F(ChaosTest, ShardBuildFailpointFailsCreateThenRecovers) {
  Rng rng(21);
  const Matrix data = MakeUnitBallGaussian(64, 6, 0.9, &rng);
  {
    ScopedFailpoint fp("serve/shard/build");
    EXPECT_FALSE(ShardedEngine::Create(data, ShardedEngineOptions{}).ok());
  }
  {
    // Per-shard variant: only shard 2's build slot fires.
    ScopedFailpoint fp("serve/shard/build/2", /*nth=*/1,
                       Status::ResourceExhausted("shard 2 oom"));
    const auto failed = ShardedEngine::Create(data, ShardedEngineOptions{});
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_TRUE(ShardedEngine::Create(data, ShardedEngineOptions{}).ok());
}

TEST_F(ChaosTest, ShardFailpointUnderBatchQueryDegradesEveryMember) {
  Rng rng(22);
  const auto engine = MakeShardedFixture(&rng);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const Matrix queries = MakeUnitBallGaussian(5, 6, 0.9, &rng);
  {
    // Losing one shard's whole batch call marks every member partial —
    // no member silently pretends full coverage.
    ScopedFailpoint fp("serve/shard/query/0", /*nth=*/1,
                       Status::Internal("mid-batch fault"));
    const auto result = (*engine)->BatchQuery(queries, {}, {});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->size(), queries.rows());
    for (const QueryResult& member : *result) {
      EXPECT_TRUE(member.partial);
      EXPECT_EQ(member.stats.shards_failed, 1u);
      EXPECT_EQ(member.stats.shards_ok, 3u);
    }
  }
  const auto clean = (*engine)->BatchQuery(queries, {}, {});
  ASSERT_TRUE(clean.ok());
  for (const QueryResult& member : *clean) EXPECT_FALSE(member.partial);
}

TEST_F(ChaosTest, ShardFailpointUnderScheduledBatchExecution) {
  Rng rng(23);
  ShardedEngineOptions options;
  options.num_shards = 2;
  // The injected fault repeats across scheduled batches; keep the
  // breaker out of the picture so the clean query after DisarmAll is
  // served immediately (no cooldown to wait out).
  options.breaker.failure_threshold = 100;
  const auto engine = MakeShardedFixture(&rng, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  BatchSchedulerOptions scheduler_options;
  scheduler_options.num_threads = 2;
  scheduler_options.use_batch_execution = true;
  BatchScheduler scheduler(engine->get(), scheduler_options);
  {
    Failpoints::Arm("serve/shard/query/1",
                    Status::Internal("shard 1 down"), FireEvery{1});
    std::vector<std::future<BatchScheduler::Result>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(
          scheduler.Submit({std::vector<double>(6, 0.1), {}}));
    }
    for (auto& future : futures) {
      const auto result = future.get();
      // Scheduled sharded traffic degrades exactly like direct calls.
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(result->partial);
      EXPECT_EQ(result->stats.shards_failed, 1u);
    }
    Failpoints::DisarmAll();
  }
  auto good = scheduler.Submit({std::vector<double>(6, 0.1), {}});
  const auto clean = good.get();
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->partial);
}

// --- Storage failpoints: every I/O fault is a Status, never torn state ---

TEST_F(ChaosTest, StorageFailpointsFailOnceThenRecover) {
  Rng rng(24);
  const Matrix data = MakeUnitBallGaussian(32, 4, 0.5, &rng);
  const std::string path = TempPath("chaos_storage.ips");

  for (const char* point : {"storage/open-write", "storage/write",
                            "storage/rename"}) {
    ScopedFailpoint fp(point);
    EXPECT_FALSE(storage::SaveMatrixSnapshot(data, path).ok()) << point;
    EXPECT_TRUE(storage::SaveMatrixSnapshot(data, path).ok()) << point;
  }
  for (const char* point : {"storage/open-read", "storage/read"}) {
    ScopedFailpoint fp(point);
    EXPECT_FALSE(storage::LoadMatrixSnapshot(path).ok()) << point;
    EXPECT_TRUE(storage::LoadMatrixSnapshot(path).ok()) << point;
  }
  {
    ScopedFailpoint fp("storage/mmap");
    EXPECT_FALSE(storage::MapMatrixSnapshot(path).ok());
    EXPECT_TRUE(storage::MapMatrixSnapshot(path).ok());
  }
  {
    const SimHashFamily family(4);
    storage::BlockedJoinOptions options;
    options.s_threshold = 0.5;
    options.cs_threshold = 0.25;
    ScopedFailpoint fp("storage/blocked-join");
    EXPECT_FALSE(
        storage::BlockedBucketJoin(family, path, path, options).ok());
    EXPECT_TRUE(
        storage::BlockedBucketJoin(family, path, path, options).ok());
  }
  std::remove(path.c_str());
}

TEST_F(ChaosTest, EngineSnapshotFailpointsFailOnceThenRecover) {
  Rng rng(25);
  const auto engine = Engine::Create(MakeUnitBallGaussian(64, 6, 0.9, &rng));
  ASSERT_TRUE(engine.ok());
  const std::string dir = TempPath("chaos_engine_snap");
  {
    ScopedFailpoint fp("serve/snapshot-save");
    EXPECT_FALSE((*engine)->SaveSnapshot(dir).ok());
  }
  ASSERT_TRUE((*engine)->SaveSnapshot(dir).ok());
  {
    ScopedFailpoint fp("serve/snapshot-load");
    EXPECT_FALSE(Engine::CreateFromSnapshot(dir).ok());
  }
  const auto warm = Engine::CreateFromSnapshot(dir);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  // A fault in the middle of reading the snapshot surfaces too: the
  // nth-hit trigger lands inside the section reads, not at open.
  {
    ScopedFailpoint fp("storage/read", /*nth=*/3);
    EXPECT_FALSE(Engine::CreateFromSnapshot(dir).ok());
  }
  EXPECT_TRUE(Engine::CreateFromSnapshot(dir).ok());
}

// --- Observability failpoints ---

TEST_F(ChaosTest, ObsExportFailpointNeverPoisonsQueryResults) {
  Rng rng(14);
  const auto engine = Engine::Create(MakeUnitBallGaussian(64, 6, 0.9, &rng));
  ASSERT_TRUE(engine.ok());
  const std::vector<double> q(6, 0.1);
  QueryOptions traced;
  traced.trace = true;
  {
    ScopedFailpoint fp("obs/export");
    // An armed export failpoint never touches the query path — even a
    // traced query that publishes to the very ring being exported.
    const auto result = (*engine)->Query({q, traced});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NE(result->stats.trace, nullptr);
    EXPECT_FALSE(MetricsRegistry::Global().ExportJson().ok());
  }
  {
    ScopedFailpoint fp("obs/export");
    EXPECT_FALSE(TraceRing::Global().ExportJson().ok());
    // The export fault does not poison subsequent query results either.
    const auto result = (*engine)->Query({q, traced});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NE(result->stats.trace, nullptr);
  }
  // Disarmed: exports succeed and see the recorded trace and metrics.
  const auto metrics_json = MetricsRegistry::Global().ExportJson();
  ASSERT_TRUE(metrics_json.ok());
  EXPECT_NE(metrics_json->find("counters"), std::string::npos);
  const auto traces_json = TraceRing::Global().ExportJson();
  ASSERT_TRUE(traces_json.ok());
  EXPECT_TRUE((*engine)->Query({q, traced}).ok());
}

}  // namespace
}  // namespace ips
