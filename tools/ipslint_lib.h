// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// ipslint: the repo-specific linter behind `scripts/check.sh static`,
// enforcing project invariants the compiler cannot see (see DESIGN.md
// §9). Rules live in a file-backed table (tools/ipslint.rules) — one
// TAB-separated line per rule — so adding a rule is a one-liner:
//
//   name<TAB>include-prefixes<TAB>exclude-prefixes<TAB>regex<TAB>message
//
// A rule fires when its regex matches a source line of a file whose
// repo-relative path starts with an include prefix (comma-separated;
// empty or "-" = every scanned file) and no exclude prefix. Comments,
// string and character literals are stripped before matching, so quoting
// a banned construct (or testing the linter itself) never trips a rule.
//
// Escape hatch: `// ipslint:allow(<rule>)` on the offending line
// suppresses that rule for that line. An allow-comment naming a rule
// that is not in the table is itself reported (built-in rule
// "stale-allow"), so suppressions cannot silently outlive the rules
// they once silenced.
//
// `^` in a rule regex matches at the start of a *statement*, not of any
// physical line: lines continuing a statement wrapped from the previous
// line are excluded from `^`-anchored matches.

#ifndef IPS_TOOLS_IPSLINT_LIB_H_
#define IPS_TOOLS_IPSLINT_LIB_H_

#include <cstddef>
#include <regex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ips {
namespace lint {

/// Reserved name of the built-in rule that flags allow-comments naming
/// a rule absent from the table.
inline constexpr std::string_view kStaleAllowRule = "stale-allow";

/// Reserved names of the whole-program analysis passes (see
/// ipslint_analysis.h). Allow-comments may name them (to suppress one
/// finding at its site), so they are "known" to the stale-allow check,
/// and the rule table may not redefine them.
inline constexpr std::string_view kLayeringRule = "layering";
inline constexpr std::string_view kLockOrderRule = "lock-order";
inline constexpr std::string_view kFailpointCoverageRule =
    "failpoint-coverage";

/// True for every reserved built-in rule/pass name above.
bool IsBuiltinRule(std::string_view name);

/// One scanned source file, loaded into memory. The whole-program
/// passes (layering, lock-order, failpoint coverage) need the full
/// corpus at once, so the tree is loaded once and shared.
struct SourceFile {
  std::string path;  // forward-slash path as given to the loader
  std::string text;
};

/// One row of the rule table.
struct LintRule {
  std::string name;
  /// Path prefixes the rule applies to; empty = every scanned file.
  std::vector<std::string> include_prefixes;
  /// Path prefixes exempt from the rule (checked after includes).
  std::vector<std::string> exclude_prefixes;
  /// ECMAScript regex matched against each comment/string-stripped line.
  std::string pattern;
  std::string message;
  std::regex compiled;
};

/// One violation: `file:line` plus the rule that fired.
struct LintFinding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
  std::string excerpt;  // trimmed source line
};

/// Parses a rule table (the contents of tools/ipslint.rules). Rejects
/// malformed lines, duplicate or reserved rule names, and invalid
/// regexes with a descriptive kInvalidArgument.
[[nodiscard]] StatusOr<std::vector<LintRule>> ParseRules(
    std::string_view text);

/// Reads and parses a rule table file.
[[nodiscard]] StatusOr<std::vector<LintRule>> LoadRules(
    const std::string& path);

/// True when `rule` applies to the (forward-slash, repo-relative) path.
bool RuleAppliesTo(const LintRule& rule, std::string_view path);

/// Lints one file's contents; `path` scopes the rules and labels the
/// findings. Deterministic: findings are in (line, rule-table) order.
[[nodiscard]] std::vector<LintFinding> LintText(
    const std::vector<LintRule>& rules, std::string_view path,
    std::string_view text);

/// Loads every C++ source (.h/.hpp/.cc/.cpp) under `roots` (files or
/// directories), sorted and deduplicated. Fails on an unreadable root.
[[nodiscard]] StatusOr<std::vector<SourceFile>> LoadSourceTree(
    const std::vector<std::string>& roots);

/// Lints an already-loaded corpus (the rules pass of the multi-pass
/// driver).
[[nodiscard]] std::vector<LintFinding> LintFiles(
    const std::vector<LintRule>& rules, const std::vector<SourceFile>& files);

/// Lints every C++ source (.h/.hpp/.cc/.cpp) under `roots` (files or
/// directories, repo-relative). Fails on an unreadable root.
[[nodiscard]] StatusOr<std::vector<LintFinding>> LintTree(
    const std::vector<LintRule>& rules, const std::vector<std::string>& roots);

/// "path:line: [rule] message" (plus the offending excerpt).
std::string FormatFinding(const LintFinding& finding);

namespace internal {

/// Splits `text` into per-line code and comment channels: `code[i]` is
/// line i with comments and string/char-literal contents replaced by
/// spaces (columns preserved), `comments[i]` the comment text of line i.
/// Handles //, /* */ (multi-line), "…" with escapes, '…', and R"(…)"
/// raw strings. When `strings` is non-null it receives a third channel:
/// the string/char-literal *contents* of line i, column-aligned with
/// `code[i]` (everything else is spaces), so passes that must read a
/// literal — an #include path, a failpoint name — can merge the two
/// channels without re-tokenizing.
void SplitCodeAndComments(std::string_view text,
                          std::vector<std::string>* code,
                          std::vector<std::string>* comments,
                          std::vector<std::string>* strings = nullptr);

/// Merges a code line with its column-aligned string-literal contents:
/// code wins where non-space, literal contents fill the blanks. The
/// whole-program passes match against merged lines.
std::string MergeCodeAndStrings(const std::string& code,
                                const std::string& strings);

/// Trims ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// Rules (by name) the allow-comments of line i suppress, harvested
/// from the comment channel of `text`. Index 0 = line 1.
std::vector<std::set<std::string>> AllowedRulesByLine(std::string_view text);

}  // namespace internal
}  // namespace lint
}  // namespace ips

#endif  // IPS_TOOLS_IPSLINT_LIB_H_
