// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// CLI for the project linter. Usage:
//
//   ipslint [--rules tools/ipslint.rules] [root...]
//
// Roots default to the library and consumer trees (src tests examples
// bench tools). Run from the repo root so rule path prefixes line up
// with the scanned paths. Exit code: 0 clean, 1 findings, 2 usage or
// I/O error. Wired into `scripts/check.sh static`.

#include <cstdio>
#include <string>
#include <vector>

#include "ipslint_lib.h"

namespace {

constexpr const char* kDefaultRules = "tools/ipslint.rules";
const char* const kDefaultRoots[] = {"src", "tests", "examples", "bench",
                                     "tools"};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--rules FILE] [root...]\n"
               "  Lints C++ sources (.h/.hpp/.cc/.cpp) under each root\n"
               "  against the TAB-separated rule table (default %s).\n"
               "  Defaults roots: src tests examples bench tools.\n",
               argv0, kDefaultRules);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string rules_path = kDefaultRules;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      if (i + 1 >= argc) return Usage(argv[0]);
      rules_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      return Usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    roots.assign(std::begin(kDefaultRoots), std::end(kDefaultRoots));
  }

  const auto rules = ips::lint::LoadRules(rules_path);
  if (!rules.ok()) {
    std::fprintf(stderr, "ipslint: %s\n", rules.status().ToString().c_str());
    return 2;
  }

  const auto findings = ips::lint::LintTree(*rules, roots);
  if (!findings.ok()) {
    std::fprintf(stderr, "ipslint: %s\n", findings.status().ToString().c_str());
    return 2;
  }

  for (const auto& finding : *findings) {
    std::printf("%s\n", ips::lint::FormatFinding(finding).c_str());
  }
  if (!findings->empty()) {
    std::printf("ipslint: %zu finding(s) in %zu rule check(s)\n",
                findings->size(), rules->size());
    return 1;
  }
  std::printf("ipslint: clean (%zu rules)\n", rules->size());
  return 0;
}
