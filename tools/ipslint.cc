// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// CLI for the project linter/analyzer. Usage:
//
//   ipslint [--rules tools/ipslint.rules] [--layers tools/ipslint.layers]
//           [--chaos tests/chaos_test.cc] [--passes a,b,...] [root...]
//
// Runs four passes over the scanned tree (see DESIGN.md §9):
//
//   rules               per-line regex rules from the rule table
//   layering            src/ include edges vs. the declared layer DAG
//   lock-order          mutex acquisition graph, deadlock cycles
//   failpoint-coverage  every literal failpoint site armed by chaos tests
//
// The rules pass scans every root; the whole-program passes scan the
// src/ portion of the corpus (plus --chaos for coverage). Run from the
// repo root so rule path prefixes line up with the scanned paths.
// `--passes` selects a comma-separated subset. Exit code: 0 clean,
// 1 findings, 2 usage or I/O error. Wired into `scripts/check.sh
// static` and the CI `lint` job, which gate on the per-pass summary
// table this prints.

#include <cstdio>
#include <string>
#include <vector>

#include "ipslint_analysis.h"
#include "ipslint_lib.h"

namespace {

constexpr const char* kDefaultRules = "tools/ipslint.rules";
constexpr const char* kDefaultLayers = "tools/ipslint.layers";
constexpr const char* kDefaultChaos = "tests/chaos_test.cc";
const char* const kDefaultRoots[] = {"src", "tests", "examples", "bench",
                                     "tools"};
const char* const kAllPasses[] = {"rules", "layering", "lock-order",
                                 "failpoint-coverage"};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--rules FILE] [--layers FILE] [--chaos FILE]\n"
      "          [--passes LIST] [root...]\n"
      "  Lints C++ sources (.h/.hpp/.cc/.cpp) under each root against\n"
      "  the rule table (default %s), then runs the\n"
      "  whole-program passes over src/: layering (default table\n"
      "  %s), lock-order, and failpoint-coverage\n"
      "  (chaos suite default %s).\n"
      "  --passes takes a comma list of rules,layering,lock-order,\n"
      "  failpoint-coverage. Default roots: src tests examples bench\n"
      "  tools.\n",
      argv0, kDefaultRules, kDefaultLayers, kDefaultChaos);
  return 2;
}

bool ParsePasses(const std::string& list, std::vector<std::string>* passes) {
  passes->clear();
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    const std::string pass = list.substr(start, end - start);
    if (!pass.empty()) {
      bool known = false;
      for (const char* candidate : kAllPasses) known |= pass == candidate;
      if (!known) return false;
      passes->push_back(pass);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !passes->empty();
}

bool WantPass(const std::vector<std::string>& passes, const char* name) {
  for (const std::string& pass : passes) {
    if (pass == name) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string rules_path = kDefaultRules;
  std::string layers_path = kDefaultLayers;
  std::string chaos_path = kDefaultChaos;
  std::vector<std::string> passes(std::begin(kAllPasses),
                                  std::end(kAllPasses));
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      if (i + 1 >= argc) return Usage(argv[0]);
      rules_path = argv[++i];
    } else if (arg == "--layers") {
      if (i + 1 >= argc) return Usage(argv[0]);
      layers_path = argv[++i];
    } else if (arg == "--chaos") {
      if (i + 1 >= argc) return Usage(argv[0]);
      chaos_path = argv[++i];
    } else if (arg == "--passes") {
      if (i + 1 >= argc || !ParsePasses(argv[++i], &passes)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      return Usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    roots.assign(std::begin(kDefaultRoots), std::end(kDefaultRoots));
  }

  const auto files = ips::lint::LoadSourceTree(roots);
  if (!files.ok()) {
    std::fprintf(stderr, "ipslint: %s\n", files.status().ToString().c_str());
    return 2;
  }

  // Per-pass summary rows: name, findings, scope description.
  struct Row {
    std::string pass;
    std::size_t findings = 0;
    std::string scope;
  };
  std::vector<Row> summary;
  std::size_t total_findings = 0;
  auto report = [&](const char* pass,
                    const std::vector<ips::lint::LintFinding>& findings,
                    std::string scope) {
    for (const auto& finding : findings) {
      std::printf("%s\n", ips::lint::FormatFinding(finding).c_str());
    }
    summary.push_back({pass, findings.size(), std::move(scope)});
    total_findings += findings.size();
  };

  if (WantPass(passes, "rules")) {
    const auto rules = ips::lint::LoadRules(rules_path);
    if (!rules.ok()) {
      std::fprintf(stderr, "ipslint: %s\n", rules.status().ToString().c_str());
      return 2;
    }
    report("rules", ips::lint::LintFiles(*rules, *files),
           std::to_string(rules->size()) + " rules, " +
               std::to_string(files->size()) + " files");
  }

  if (WantPass(passes, "layering")) {
    const auto table = ips::lint::LoadLayerTable(layers_path);
    if (!table.ok()) {
      std::fprintf(stderr, "ipslint: %s\n", table.status().ToString().c_str());
      return 2;
    }
    const auto layering = ips::lint::AnalyzeLayering(*table, *files);
    report("layering", layering.findings,
           std::to_string(table->order.size()) + " layers, " +
               std::to_string(layering.files_checked) + " files, " +
               std::to_string(layering.edges_checked) + " edges");
  }

  if (WantPass(passes, "lock-order")) {
    const auto locks = ips::lint::AnalyzeLockOrder(*files);
    report("lock-order", locks.findings,
           std::to_string(locks.locks) + " locks, " +
               std::to_string(locks.edges) + " edges");
  }

  if (WantPass(passes, "failpoint-coverage")) {
    // The chaos suite is part of the scanned corpus when tests/ is a
    // root; load it separately so `ipslint src` still cross-references.
    const auto chaos = ips::lint::LoadSourceTree({chaos_path});
    if (!chaos.ok()) {
      std::fprintf(stderr, "ipslint: %s\n", chaos.status().ToString().c_str());
      return 2;
    }
    const auto coverage = ips::lint::AnalyzeFailpointCoverage(*files, *chaos);
    report("failpoint-coverage", coverage.findings,
           std::to_string(coverage.sites) + " sites, " +
               std::to_string(coverage.armed) + " armed, " +
               std::to_string(coverage.dynamic_sites) + " dynamic");
  }

  std::printf("pass                 findings  scope\n");
  std::printf("-------------------  --------  -----\n");
  for (const Row& row : summary) {
    std::printf("%-19s  %8zu  %s\n", row.pass.c_str(), row.findings,
                row.scope.c_str());
  }
  if (total_findings > 0) {
    std::printf("ipslint: %zu finding(s)\n", total_findings);
    return 1;
  }
  std::printf("ipslint: clean (%zu pass(es), %zu files)\n", summary.size(),
              files->size());
  return 0;
}
