// Validates a metrics JSON export (MetricsRegistry::ExportJson written
// by `IPS_METRICS_JSON=... serve_quickstart` or any other producer):
// the document must be a JSON object with the three top-level sections
// "counters", "gauges", and "histograms", each itself an object, with
// balanced braces/brackets and no trailing garbage. Used by the
// scripts/check.sh metrics smoke step.
//
//   $ metrics_json_check /tmp/metrics.json
//
// Exits 0 when the file validates, 1 with a diagnostic otherwise. The
// check is a structural lint, not a full JSON parser: it verifies the
// export contract without pulling a JSON dependency into the repo.

#include <cctype>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace {

// Returns the index just past the matching close of the brace/bracket
// at `open`, skipping strings, or std::string::npos on imbalance.
std::size_t SkipBalanced(const std::string& text, std::size_t open) {
  const char open_char = text[open];
  const char close_char = open_char == '{' ? '}' : ']';
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == open_char) {
      ++depth;
    } else if (c == close_char) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

bool Fail(const std::string& message) {
  std::cerr << "metrics_json_check: " << message << "\n";
  return false;
}

bool Validate(const std::string& text) {
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos || text[first] != '{') {
    return Fail("document is not a JSON object");
  }
  const std::size_t end = SkipBalanced(text, first);
  if (end == std::string::npos) return Fail("unbalanced braces");
  if (text.find_first_not_of(" \t\r\n", end) != std::string::npos) {
    return Fail("trailing garbage after the top-level object");
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const std::string key = std::string("\"") + section + "\"";
    const std::size_t at = text.find(key);
    if (at == std::string::npos) {
      return Fail(std::string("missing top-level section ") + key);
    }
    std::size_t cursor = text.find_first_not_of(" \t\r\n", at + key.size());
    if (cursor == std::string::npos || text[cursor] != ':') {
      return Fail(key + " is not followed by a value");
    }
    cursor = text.find_first_not_of(" \t\r\n", cursor + 1);
    if (cursor == std::string::npos || text[cursor] != '{') {
      return Fail(key + " is not an object");
    }
    if (SkipBalanced(text, cursor) == std::string::npos) {
      return Fail(key + " object is unbalanced");
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: metrics_json_check <metrics.json>\n";
    return 1;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "metrics_json_check: cannot open " << argv[1] << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!Validate(buffer.str())) return 1;
  std::cout << "metrics_json_check: " << argv[1] << " OK\n";
  return 0;
}
