// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.

#include "ipslint_analysis.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

namespace ips {
namespace lint {
namespace {

using internal::AllowedRulesByLine;
using internal::MergeCodeAndStrings;
using internal::SplitCodeAndComments;
using internal::Trim;

void SortFindings(std::vector<LintFinding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const LintFinding& a, const LintFinding& b) {
              return std::tie(a.file, a.line, a.message) <
                     std::tie(b.file, b.line, b.message);
            });
}

/// Splits a comma-separated field into trimmed, non-empty pieces.
std::vector<std::string> SplitCommas(std::string_view field) {
  std::vector<std::string> out;
  std::size_t start = 0;
  const std::string text(field);
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    std::string piece = Trim(std::string_view(text).substr(start, end - start));
    if (!piece.empty()) out.push_back(std::move(piece));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// The layer of a path shaped `.../src/<layer>/...`, or "" if the path
/// is not inside a layer directory under src/.
std::string LayerOfPath(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::size_t end = slash == std::string_view::npos ? path.size()
                                                            : slash;
    parts.push_back(path.substr(start, end - start));
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  for (std::size_t i = 0; i + 2 < parts.size(); ++i) {
    // Need a component after the layer (the file, or a deeper dir).
    if (parts[i] == "src") return std::string(parts[i + 1]);
  }
  return std::string();
}

}  // namespace

// --- Layering -------------------------------------------------------------

StatusOr<LayerTable> ParseLayerTable(std::string_view text) {
  LayerTable table;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
    std::string_view line = text.substr(start, end - start);
    ++line_number;
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    const std::size_t tab = line.find('\t');
    if (tab == std::string_view::npos) {
      return Status::InvalidArgument(
          "layer table line " + std::to_string(line_number) +
          ": expected 2 TAB-separated fields (layer, deps)");
    }
    const std::string layer = Trim(line.substr(0, tab));
    const std::string deps_field = Trim(line.substr(tab + 1));
    if (layer.empty()) {
      return Status::InvalidArgument("layer table line " +
                                     std::to_string(line_number) +
                                     ": empty layer name");
    }
    if (table.deps.count(layer) > 0) {
      return Status::InvalidArgument("layer table line " +
                                     std::to_string(line_number) +
                                     ": duplicate layer '" + layer + "'");
    }
    std::set<std::string> deps;
    std::set<std::string> closure;
    if (deps_field != "-") {
      for (const std::string& dep : SplitCommas(deps_field)) {
        if (dep == layer) {
          return Status::InvalidArgument("layer table line " +
                                         std::to_string(line_number) +
                                         ": layer '" + layer +
                                         "' depends on itself");
        }
        // Deps must already be declared: the table reads top-down from
        // the bottom layer, and a cycle would need a forward reference.
        const auto it = table.closure.find(dep);
        if (it == table.closure.end()) {
          return Status::InvalidArgument(
              "layer table line " + std::to_string(line_number) + ": layer '" +
              layer + "' depends on '" + dep +
              "', which is not declared above it (the table must be "
              "topologically ordered, lowest layer first)");
        }
        deps.insert(dep);
        closure.insert(dep);
        closure.insert(it->second.begin(), it->second.end());
      }
    }
    table.order.push_back(layer);
    table.deps.emplace(layer, std::move(deps));
    table.closure.emplace(layer, std::move(closure));
  }
  if (table.order.empty()) {
    return Status::InvalidArgument("layer table declares no layers");
  }
  return table;
}

StatusOr<LayerTable> LoadLayerTable(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open layer table: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto table = ParseLayerTable(buffer.str());
  if (!table.ok()) {
    return Status(table.status().code(),
                  path + ": " + table.status().message());
  }
  return table;
}

LayeringReport AnalyzeLayering(const LayerTable& table,
                               const std::vector<SourceFile>& files) {
  LayeringReport report;
  static const std::regex include_re(
      R"(^\s*#\s*include\s+([A-Za-z0-9_][A-Za-z0-9_./-]*))");
  for (const SourceFile& file : files) {
    const std::string layer = LayerOfPath(file.path);
    if (layer.empty()) continue;  // not under src/<layer>/
    ++report.files_checked;

    if (table.closure.count(layer) == 0) {
      LintFinding finding;
      finding.file = file.path;
      finding.line = 1;
      finding.rule = std::string(kLayeringRule);
      finding.message = "layer '" + layer +
                        "' is not declared in the layer table; add it to "
                        "tools/ipslint.layers below everything it uses";
      report.findings.push_back(std::move(finding));
      continue;
    }
    const std::set<std::string>& allowed_layers = table.closure.at(layer);

    std::vector<std::string> code;
    std::vector<std::string> comments;
    std::vector<std::string> strings;
    SplitCodeAndComments(file.text, &code, &comments, &strings);
    const auto allows = AllowedRulesByLine(file.text);

    for (std::size_t i = 0; i < code.size(); ++i) {
      const std::string merged = MergeCodeAndStrings(code[i], strings[i]);
      std::smatch match;
      if (!std::regex_search(merged, match, include_re)) continue;
      const std::string target = match[1].str();
      const std::size_t slash = target.find('/');
      if (slash == std::string::npos) continue;  // same-dir include
      const std::string target_layer = target.substr(0, slash);
      if (target_layer == layer) continue;
      if (table.closure.count(target_layer) == 0) continue;  // not a layer
      ++report.edges_checked;
      if (allowed_layers.count(target_layer) > 0) continue;
      if (i < allows.size() && allows[i].count(std::string(kLayeringRule))) {
        continue;
      }
      LintFinding finding;
      finding.file = file.path;
      finding.line = i + 1;
      finding.rule = std::string(kLayeringRule);
      const auto target_closure = table.closure.find(target_layer);
      if (target_closure != table.closure.end() &&
          target_closure->second.count(layer) > 0) {
        finding.message = "back-edge " + layer + " -> " + target_layer +
                          " creates a layer cycle ('" + target_layer +
                          "' already depends on '" + layer + "')";
      } else {
        finding.message = "undeclared layer dependency " + layer + " -> " +
                          target_layer +
                          "; declare it in tools/ipslint.layers or break "
                          "the edge";
      }
      finding.excerpt = Trim(merged);
      report.findings.push_back(std::move(finding));
    }
  }
  SortFindings(&report.findings);
  return report;
}

// --- Lock order -----------------------------------------------------------

namespace {

/// A mutex member declaration, qualified by its declaring class.
struct MutexDecl {
  std::string cls;
  std::string member;
  std::string file;
  /// Enclosing class names, outermost first, `cls` last — so a method
  /// of ShardedEngine can resolve `shard.mutex` to the nested
  /// ShardedEngine::Shard's member.
  std::vector<std::string> enclosing;
};

/// A raw IPS_ACQUIRED_BEFORE/AFTER record, resolved after the member
/// harvest is complete.
struct OrderDecl {
  std::string cls;     // declaring class of the annotated mutex
  std::string member;  // annotated mutex member
  std::vector<std::string> args;
  bool before = true;  // false: IPS_ACQUIRED_AFTER (reverse edges)
  std::string file;
  std::size_t line = 0;
  bool allowed = false;  // ipslint:allow(lock-order) on the line
};

/// One lexical acquisition site, with enough context to resolve the
/// lock expression once all declarations are known.
struct Acquisition {
  std::string expr;                 // final member name of the lock expr
  std::vector<std::string> classes;  // enclosing class stack, innermost last
  std::string file;
  std::size_t line = 0;
  bool allowed = false;
};

/// An observed nesting: `held` was lexically live when `taken` was
/// acquired in the same function body.
struct RawEdge {
  std::size_t held = 0;   // index into acquisitions
  std::size_t taken = 0;  // index into acquisitions
};

struct Corpus {
  std::vector<MutexDecl> decls;
  std::vector<OrderDecl> order_decls;
  std::vector<Acquisition> acquisitions;
  std::vector<RawEdge> raw_edges;
};

enum class ScopeKind { kClass, kMethod, kLambda, kOther };

struct Scope {
  ScopeKind kind = ScopeKind::kOther;
  std::string name;  // class name for kClass/kMethod
  std::size_t depth = 0;
};

/// Classifies the statement header preceding an opening brace.
Scope ClassifyHeader(const std::string& header, std::size_t depth) {
  static const std::regex class_re(R"(\b(?:class|struct)\s+([A-Za-z_]\w*))");
  static const std::regex lambda_re(
      R"(\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\b|constexpr\b|noexcept\b|->\s*[^{]*)?\s*$)");
  static const std::regex method_re(
      R"(([A-Za-z_]\w*)\s*::\s*~?[A-Za-z_]\w*\s*\()");
  Scope scope;
  scope.depth = depth;
  if (std::regex_search(header, lambda_re)) {
    scope.kind = ScopeKind::kLambda;
    return scope;
  }
  // The *last* class/struct keyword names the scope (skips `template
  // <class T>` and base-class lists); a '(' after it means it was a
  // parameter or an elaborated type in a function header instead.
  std::smatch match;
  std::string last_class;
  std::size_t last_class_end = 0;
  for (auto it = std::sregex_iterator(header.begin(), header.end(), class_re),
            end = std::sregex_iterator();
       it != end; ++it) {
    last_class = (*it)[1].str();
    last_class_end = it->position(0) + it->length(0);
  }
  if (!last_class.empty() &&
      header.find('(', last_class_end) == std::string::npos) {
    scope.kind = ScopeKind::kClass;
    scope.name = last_class;
    return scope;
  }
  // `Ret Class::Method(...) {` — the last qualified-call match is the
  // method (earlier ones are qualified return types).
  std::string method_class;
  for (auto it = std::sregex_iterator(header.begin(), header.end(), method_re),
            end = std::sregex_iterator();
       it != end; ++it) {
    method_class = (*it)[1].str();
  }
  if (!method_class.empty()) {
    scope.kind = ScopeKind::kMethod;
    scope.name = method_class;
  }
  return scope;
}

/// Final member name of a lock expression: `shard.mutex` -> `mutex`,
/// `this->mutex_` -> `mutex_`, `*mu` -> `mu`.
std::string FinalMember(std::string_view expr) {
  std::string out = Trim(expr);
  while (!out.empty() && (out.front() == '&' || out.front() == '*')) {
    out.erase(out.begin());
  }
  std::size_t pos = out.find_last_of('.');
  const std::size_t arrow = out.rfind("->");
  if (arrow != std::string::npos && (pos == std::string::npos || arrow > pos)) {
    pos = arrow + 1;
  }
  if (pos != std::string::npos) out = out.substr(pos + 1);
  return Trim(out);
}

/// Scans one file: class scopes, mutex members, order annotations, and
/// lexically nested acquisitions (lambda bodies are barriers).
void ScanFileForLocks(const SourceFile& file, Corpus* corpus) {
  std::vector<std::string> code;
  std::vector<std::string> comments;
  SplitCodeAndComments(file.text, &code, &comments);
  const auto allows = AllowedRulesByLine(file.text);
  const std::string lock_order_rule(kLockOrderRule);

  static const std::regex member_re(
      R"(\b(?:(?:std\s*::\s*)(?:mutex|recursive_mutex|shared_mutex|timed_mutex)|Mutex)\s+([A-Za-z_]\w*)\s*(?=;|IPS_ACQUIRED_|\{))");
  static const std::regex order_re(R"(IPS_ACQUIRED_(BEFORE|AFTER)\s*\(([^()]*)\))");
  static const std::regex acquire_re(
      R"(\b(?:MutexLock|std\s*::\s*scoped_lock|std\s*::\s*lock_guard|std\s*::\s*unique_lock)\s*(?:<[^<>]*>)?\s+[A-Za-z_]\w*\s*[({]([^;(){}]*)[)}])");

  std::size_t depth = 0;
  std::vector<Scope> scopes;
  std::string header;  // statement text since the last '{', '}' or ';'

  // RAII acquisitions live until their enclosing scope closes.
  struct LiveLock {
    std::size_t acquisition = 0;  // index into corpus->acquisitions
    std::size_t depth = 0;
  };
  std::vector<LiveLock> held;

  auto class_stack = [&]() {
    std::vector<std::string> classes;
    for (const Scope& scope : scopes) {
      if (scope.kind == ScopeKind::kClass || scope.kind == ScopeKind::kMethod) {
        classes.push_back(scope.name);
      }
    }
    return classes;
  };
  auto innermost_lambda_depth = [&]() -> std::size_t {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == ScopeKind::kLambda) return it->depth;
    }
    return 0;
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    const bool line_allowed =
        i < allows.size() && allows[i].count(lock_order_rule) > 0;

    // Events on this line, processed in column order so one-line
    // scopes (`{ MutexLock l(a); }`) nest correctly.
    struct Event {
      std::size_t col = 0;
      enum Kind { kOpen, kClose, kSemi, kMember, kAcquire } kind = kOpen;
      std::string payload;  // member name or lock expression
    };
    std::vector<Event> events;
    for (std::size_t c = 0; c < line.size(); ++c) {
      if (line[c] == '{') events.push_back({c, Event::kOpen, ""});
      if (line[c] == '}') events.push_back({c, Event::kClose, ""});
      if (line[c] == ';') events.push_back({c, Event::kSemi, ""});
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), member_re),
              end = std::sregex_iterator();
         it != end; ++it) {
      events.push_back({static_cast<std::size_t>(it->position(0)),
                        Event::kMember, (*it)[1].str()});
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), acquire_re),
              end = std::sregex_iterator();
         it != end; ++it) {
      events.push_back({static_cast<std::size_t>(it->position(0)),
                        Event::kAcquire, (*it)[1].str()});
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.col < b.col; });

    std::size_t consumed = 0;  // header text already flushed
    for (const Event& event : events) {
      header += line.substr(consumed, event.col - consumed);
      consumed = event.col;
      switch (event.kind) {
        case Event::kOpen: {
          ++depth;
          const Scope scope = ClassifyHeader(header, depth);
          if (scope.kind != ScopeKind::kOther) scopes.push_back(scope);
          header.clear();
          ++consumed;  // the '{' itself
          break;
        }
        case Event::kClose: {
          while (!scopes.empty() && scopes.back().depth == depth) {
            scopes.pop_back();
          }
          while (!held.empty() && held.back().depth >= depth) {
            held.pop_back();
          }
          if (depth > 0) --depth;
          header.clear();
          ++consumed;
          break;
        }
        case Event::kSemi: {
          header.clear();
          ++consumed;
          break;
        }
        case Event::kMember: {
          // Only class-scope declarations are mutex *members*; locals
          // in a function body are not lock-order nodes.
          if (!scopes.empty() && scopes.back().kind == ScopeKind::kClass) {
            const std::string cls = scopes.back().name;
            corpus->decls.push_back(
                {cls, event.payload, file.path, class_stack()});
            // An order annotation on the declaration line binds to it.
            std::smatch order;
            std::string rest = line.substr(event.col);
            if (std::regex_search(rest, order, order_re)) {
              OrderDecl decl;
              decl.cls = cls;
              decl.member = event.payload;
              decl.args = SplitCommas(order[2].str());
              decl.before = order[1].str() == "BEFORE";
              decl.file = file.path;
              decl.line = i + 1;
              decl.allowed = line_allowed;
              corpus->order_decls.push_back(std::move(decl));
            }
          }
          break;
        }
        case Event::kAcquire: {
          // scoped_lock may name several locks; each is an acquisition.
          const std::vector<std::string> exprs = SplitCommas(event.payload);
          const std::size_t lambda_floor = innermost_lambda_depth();
          static const std::regex identifier_re(R"(^[A-Za-z_]\w*$)");
          for (const std::string& expr : exprs) {
            const std::string member = FinalMember(expr);
            // Skip non-lock arguments (std::defer_lock, adopt tags,
            // computed expressions a lexical pass cannot name).
            if (!std::regex_match(member, identifier_re)) continue;
            Acquisition acq;
            acq.expr = member;
            acq.classes = class_stack();
            acq.file = file.path;
            acq.line = i + 1;
            acq.allowed = line_allowed;
            const std::size_t index = corpus->acquisitions.size();
            corpus->acquisitions.push_back(std::move(acq));
            // Locks acquired outside a lambda body are not held when
            // the lambda later runs, so they do not order against it.
            for (const LiveLock& live : held) {
              if (live.depth < lambda_floor) continue;
              corpus->raw_edges.push_back({live.acquisition, index});
            }
            held.push_back({index, depth});
          }
          break;
        }
      }
    }
    header += line.substr(consumed);
    header += ' ';  // newline separates tokens
  }
}

}  // namespace

LockOrderReport AnalyzeLockOrder(const std::vector<SourceFile>& files) {
  Corpus corpus;
  for (const SourceFile& file : files) {
    ScanFileForLocks(file, &corpus);
  }

  // member name -> declaring (class, file) pairs.
  std::map<std::string, std::vector<const MutexDecl*>> by_member;
  for (const MutexDecl& decl : corpus.decls) {
    by_member[decl.member].push_back(&decl);
  }

  // Resolves a lock to its graph node name. Preference order: the
  // innermost enclosing class that declares it, a unique same-file
  // declaration, a globally unique declaration, else file-local.
  auto resolve = [&](const std::string& member,
                     const std::vector<std::string>& classes,
                     const std::string& file) -> std::string {
    const auto it = by_member.find(member);
    if (it != by_member.end()) {
      for (auto cls = classes.rbegin(); cls != classes.rend(); ++cls) {
        for (const MutexDecl* decl : it->second) {
          if (decl->cls == *cls) return decl->cls + "::" + member;
        }
        // A class *nested* in the enclosing one (ShardedEngine::Shard
        // from a ShardedEngine method), if it is the only such match.
        const MutexDecl* nested = nullptr;
        bool nested_unique = true;
        for (const MutexDecl* decl : it->second) {
          const auto& outer = decl->enclosing;
          if (std::find(outer.begin(), outer.end(), *cls) == outer.end()) {
            continue;
          }
          if (nested != nullptr && nested->cls != decl->cls) {
            nested_unique = false;
          }
          if (nested == nullptr) nested = decl;
        }
        if (nested != nullptr && nested_unique) {
          return nested->cls + "::" + member;
        }
      }
      const MutexDecl* same_file = nullptr;
      bool same_file_unique = true;
      for (const MutexDecl* decl : it->second) {
        if (decl->file != file) continue;
        if (same_file != nullptr && same_file->cls != decl->cls) {
          same_file_unique = false;
        }
        if (same_file == nullptr) same_file = decl;
      }
      if (same_file != nullptr && same_file_unique) {
        return same_file->cls + "::" + member;
      }
      std::set<std::string> classes_declaring;
      for (const MutexDecl* decl : it->second) {
        classes_declaring.insert(decl->cls);
      }
      if (classes_declaring.size() == 1) {
        return *classes_declaring.begin() + "::" + member;
      }
    }
    return file + "::" + member;
  };

  struct EdgeSite {
    std::string file;
    std::size_t line = 0;
  };
  // from -> to -> first site that witnessed the edge.
  std::map<std::string, std::map<std::string, EdgeSite>> graph;
  std::set<std::string> nodes;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, std::size_t line) {
    nodes.insert(from);
    nodes.insert(to);
    graph[from].emplace(to, EdgeSite{file, line});
  };

  LockOrderReport report;

  // Declared edges (IPS_ACQUIRED_BEFORE / _AFTER).
  for (const OrderDecl& decl : corpus.order_decls) {
    if (decl.allowed) continue;
    const std::string self = decl.cls + "::" + decl.member;
    for (const std::string& arg : decl.args) {
      std::string other;
      if (arg.find("::") != std::string::npos) {
        other = arg;
      } else {
        other = resolve(FinalMember(arg), {decl.cls}, decl.file);
      }
      if (decl.before) {
        add_edge(self, other, decl.file, decl.line);
      } else {
        add_edge(other, self, decl.file, decl.line);
      }
    }
  }

  // Observed lexical-nesting edges. A self-edge (the same lock, or two
  // instances of the same member, nested) is an immediate finding.
  for (const RawEdge& raw : corpus.raw_edges) {
    const Acquisition& held = corpus.acquisitions[raw.held];
    const Acquisition& taken = corpus.acquisitions[raw.taken];
    if (taken.allowed) continue;
    const std::string from = resolve(held.expr, held.classes, held.file);
    const std::string to = resolve(taken.expr, taken.classes, taken.file);
    if (from == to) {
      LintFinding finding;
      finding.file = taken.file;
      finding.line = taken.line;
      finding.rule = std::string(kLockOrderRule);
      finding.message = "lock '" + to +
                        "' acquired while an instance of it is already "
                        "held (self-deadlock unless the instances are "
                        "provably distinct and ordered)";
      report.findings.push_back(std::move(finding));
      continue;
    }
    add_edge(from, to, taken.file, taken.line);
  }

  report.locks = nodes.size();
  for (const auto& [from, out] : graph) report.edges += out.size();

  // Cycle detection: iterative three-color DFS; each back edge closes
  // one cycle, reported with the full lock path and an edge witness.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;  // canonical cycle keys, deduped
  for (const std::string& start : nodes) {
    if (color[start] != 0) continue;
    // (node, next-edge iterator index) — materialized adjacency.
    std::vector<std::pair<std::string, std::size_t>> frames;
    frames.emplace_back(start, 0);
    color[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      auto& [node, next] = frames.back();
      const auto adj_it = graph.find(node);
      std::vector<std::string> targets;
      if (adj_it != graph.end()) {
        for (const auto& [to, site] : adj_it->second) targets.push_back(to);
      }
      if (next >= targets.size()) {
        color[node] = 2;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const std::string to = targets[next++];
      if (color[to] == 1) {
        // Back edge: the cycle is the stack suffix from `to`.
        const auto cycle_begin =
            std::find(stack.begin(), stack.end(), to);
        std::vector<std::string> cycle(cycle_begin, stack.end());
        // Canonical key: rotate to the smallest element.
        const auto min_it = std::min_element(cycle.begin(), cycle.end());
        std::vector<std::string> canon(min_it, cycle.end());
        canon.insert(canon.end(), cycle.begin(), min_it);
        std::string key;
        for (const std::string& n : canon) key += n + "|";
        if (reported.insert(key).second) {
          std::string path;
          EdgeSite first_site;
          for (std::size_t k = 0; k < cycle.size(); ++k) {
            const std::string& from = cycle[k];
            const std::string& target = cycle[(k + 1) % cycle.size()];
            const EdgeSite& site = graph.at(from).at(target);
            if (k == 0) first_site = site;
            path += from + " -> " + target + " (" + site.file + ":" +
                    std::to_string(site.line) + ")";
            if (k + 1 < cycle.size()) path += ", ";
          }
          LintFinding finding;
          finding.file = first_site.file;
          finding.line = first_site.line;
          finding.rule = std::string(kLockOrderRule);
          finding.message = "potential deadlock: lock-order cycle " + path;
          report.findings.push_back(std::move(finding));
        }
      } else if (color[to] == 0) {
        color[to] = 1;
        stack.push_back(to);
        frames.emplace_back(to, 0);
      }
    }
  }

  SortFindings(&report.findings);
  return report;
}

// --- Failpoint coverage ---------------------------------------------------

FailpointReport AnalyzeFailpointCoverage(
    const std::vector<SourceFile>& src_files,
    const std::vector<SourceFile>& chaos_files) {
  FailpointReport report;
  static const std::regex site_re(
      R"(\b(?:IPS_FAILPOINT_THROW|IPS_FAILPOINT|Failpoints\s*::\s*Hit|HitShardSite)\s*\(\s*([A-Za-z0-9_][A-Za-z0-9_./-]*))");
  static const std::regex name_re(
      R"([A-Za-z0-9_]+(?:/[A-Za-z0-9_.-]+)+)");
  static const std::regex define_re(R"(^\s*#\s*define\b)");

  // Every failpoint-shaped string literal in the chaos suite counts as
  // an arm: ScopedFailpoint, Failpoints::Arm, and the name vectors that
  // drive them all mention the name literally.
  std::set<std::string> armed;
  for (const SourceFile& file : chaos_files) {
    std::vector<std::string> code;
    std::vector<std::string> comments;
    std::vector<std::string> strings;
    SplitCodeAndComments(file.text, &code, &comments, &strings);
    for (const std::string& line : strings) {
      for (auto it = std::sregex_iterator(line.begin(), line.end(), name_re),
                end = std::sregex_iterator();
           it != end; ++it) {
        armed.insert(it->str());
      }
    }
  }
  report.armed = armed.size();

  auto covered = [&](const std::string& site) {
    if (armed.count(site) > 0) return true;
    // A scoped variant ("serve/shard/query/1") exercises its base site.
    const std::string prefix = site + "/";
    const auto it = armed.lower_bound(prefix);
    return it != armed.end() && it->compare(0, prefix.size(), prefix) == 0;
  };

  std::set<std::string> distinct_sites;
  for (const SourceFile& file : src_files) {
    if (LayerOfPath(file.path).empty()) continue;  // sites live in src/
    std::vector<std::string> code;
    std::vector<std::string> comments;
    std::vector<std::string> strings;
    SplitCodeAndComments(file.text, &code, &comments, &strings);
    const auto allows = AllowedRulesByLine(file.text);
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (std::regex_search(code[i], define_re)) continue;  // macro defs
      const std::string merged = MergeCodeAndStrings(code[i], strings[i]);
      for (auto it = std::sregex_iterator(merged.begin(), merged.end(),
                                          site_re),
                end = std::sregex_iterator();
           it != end; ++it) {
        const std::string name = (*it)[1].str();
        if (name.find('/') == std::string::npos) {
          // A computed name (`Failpoints::Hit(site)`) or a parameter
          // declaration — not statically checkable.
          if (name != "const" && name != "char") ++report.dynamic_sites;
          continue;
        }
        distinct_sites.insert(name);
        if (covered(name)) continue;
        if (i < allows.size() &&
            allows[i].count(std::string(kFailpointCoverageRule)) > 0) {
          continue;
        }
        LintFinding finding;
        finding.file = file.path;
        finding.line = i + 1;
        finding.rule = std::string(kFailpointCoverageRule);
        finding.message =
            "failpoint '" + name +
            "' is never armed by the chaos suite; add a chaos_test case "
            "(or suppress with ipslint:allow(failpoint-coverage))";
        finding.excerpt = Trim(merged);
        report.findings.push_back(std::move(finding));
      }
    }
  }
  report.sites = distinct_sites.size();
  SortFindings(&report.findings);
  return report;
}

}  // namespace lint
}  // namespace ips
