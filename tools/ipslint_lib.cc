// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.

#include "ipslint_lib.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

namespace ips {
namespace lint {
namespace {

using internal::Trim;

std::vector<std::string> SplitPrefixes(std::string_view field) {
  std::vector<std::string> out;
  const std::string trimmed = Trim(field);
  if (trimmed.empty() || trimmed == "-") return out;
  std::size_t start = 0;
  while (start <= trimmed.size()) {
    const std::size_t comma = trimmed.find(',', start);
    const std::size_t end = comma == std::string::npos ? trimmed.size() : comma;
    std::string piece = Trim(std::string_view(trimmed).substr(start, end - start));
    if (!piece.empty()) out.push_back(std::move(piece));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<std::string_view> SplitTabs(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return fields;
}

bool HasCppExtension(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

/// Matches allow-directives (the `allow(...)` suffix form) in comments.
const std::regex& AllowDirectiveRegex() {
  static const std::regex re(R"(ipslint:allow\(([A-Za-z0-9_-]+)\))");
  return re;
}

/// True when line `i` of `code` begins a new statement rather than
/// continuing one spilled from the previous line: the previous non-blank
/// code line ended in `;`, `{`, `}` or `:` (labels, access specifiers),
/// or was a preprocessor directive, or there is none. `^` in a rule
/// regex therefore means "start of statement", so a wrapped call like
/// `auto x =\n    Foo::Create(...);` does not look like a bare
/// discarded call on its second line.
bool StartsStatement(const std::vector<std::string>& code, std::size_t i) {
  for (std::size_t j = i; j-- > 0;) {
    const std::string& prev = code[j];
    const std::size_t last = prev.find_last_not_of(" \t\r");
    if (last == std::string::npos) continue;  // blank (or comment-only) line
    const char c = prev[last];
    if (c == ';' || c == '{' || c == '}' || c == ':') return true;
    const std::size_t first = prev.find_first_not_of(" \t\r");
    // A directive ends at its line unless continued with a backslash.
    return prev[first] == '#' && c != '\\';
  }
  return true;  // first code line of the file
}

}  // namespace

namespace internal {

std::string Trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

void SplitCodeAndComments(std::string_view text,
                          std::vector<std::string>* code,
                          std::vector<std::string>* comments,
                          std::vector<std::string>* strings) {
  code->clear();
  comments->clear();
  if (strings != nullptr) strings->clear();
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string code_line;
  std::string comment_line;
  std::string string_line;  // literal contents, column-aligned with code
  std::string raw_delim;    // the ")delim" terminator of a raw string
  std::size_t i = 0;
  const std::size_t n = text.size();
  // Keeps the string channel column-aligned: every append to the code
  // channel is mirrored here, as literal contents or as padding.
  auto emit = [&](std::string_view code_part, std::string_view string_part) {
    code_line += code_part;
    string_line += string_part;
    string_line.resize(code_line.size(), ' ');
  };
  auto flush_line = [&] {
    code->push_back(code_line);
    comments->push_back(comment_line);
    if (strings != nullptr) strings->push_back(string_line);
    code_line.clear();
    comment_line.clear();
    string_line.clear();
  };
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      // Line comments end at the newline; strings and block comments
      // keep their state across it.
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      ++i;
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          state = State::kLineComment;
          emit("  ", "");
          i += 2;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          state = State::kBlockComment;
          emit("  ", "");
          i += 2;
        } else if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
          // Raw string literal: R"delim( ... )delim".
          std::size_t j = i + 2;
          std::string delim;
          while (j < n && text[j] != '(' && text[j] != '\n' &&
                 delim.size() <= 16) {
            delim += text[j];
            ++j;
          }
          if (j < n && text[j] == '(') {
            raw_delim = ")" + delim + "\"";
            state = State::kRawString;
            emit(std::string(j + 1 - i, ' '), "");
            i = j + 1;
          } else {
            // Not a well-formed raw string opener; treat R as code.
            emit(std::string_view(&c, 1), "");
            ++i;
          }
        } else if (c == '"') {
          state = State::kString;
          emit(" ", "");
          ++i;
        } else if (c == '\'') {
          state = State::kChar;
          emit(" ", "");
          ++i;
        } else {
          emit(std::string_view(&c, 1), "");
          ++i;
        }
        break;
      }
      case State::kLineComment: {
        comment_line += c;
        emit(" ", "");
        ++i;
        break;
      }
      case State::kBlockComment: {
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          state = State::kCode;
          emit("  ", "");
          i += 2;
        } else {
          comment_line += c;
          emit(" ", "");
          ++i;
        }
        break;
      }
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < n) {
          emit("  ", text.substr(i, 2));
          i += 2;
        } else if (c == quote) {
          state = State::kCode;
          emit(" ", "");
          ++i;
        } else {
          emit(" ", text.substr(i, 1));
          ++i;
        }
        break;
      }
      case State::kRawString: {
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          emit(std::string(raw_delim.size(), ' '), "");
          i += raw_delim.size();
          state = State::kCode;
        } else {
          emit(" ", text.substr(i, 1));
          ++i;
        }
        break;
      }
    }
  }
  if (!code_line.empty() || !comment_line.empty() || text.empty() ||
      text.back() != '\n') {
    flush_line();
  }
}

std::string MergeCodeAndStrings(const std::string& code,
                                const std::string& strings) {
  std::string merged = code;
  const std::size_t n = std::min(merged.size(), strings.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (merged[i] == ' ' && strings[i] != ' ') merged[i] = strings[i];
  }
  return merged;
}

std::vector<std::set<std::string>> AllowedRulesByLine(std::string_view text) {
  std::vector<std::string> code;
  std::vector<std::string> comments;
  SplitCodeAndComments(text, &code, &comments);
  std::vector<std::set<std::string>> allowed(comments.size());
  static const std::regex re(R"(ipslint:allow\(([A-Za-z0-9_-]+)\))");
  for (std::size_t i = 0; i < comments.size(); ++i) {
    for (std::sregex_iterator it(comments[i].begin(), comments[i].end(), re),
         end;
         it != end; ++it) {
      allowed[i].insert((*it)[1].str());
    }
  }
  return allowed;
}

}  // namespace internal

bool IsBuiltinRule(std::string_view name) {
  return name == kStaleAllowRule || name == kLayeringRule ||
         name == kLockOrderRule || name == kFailpointCoverageRule;
}

StatusOr<std::vector<LintRule>> ParseRules(std::string_view text) {
  std::vector<LintRule> rules;
  std::set<std::string> names;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
    std::string_view line = text.substr(start, end - start);
    ++line_number;
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    const std::vector<std::string_view> fields = SplitTabs(line);
    if (fields.size() != 5) {
      return Status::InvalidArgument(
          "rule table line " + std::to_string(line_number) + ": expected 5 "
          "TAB-separated fields (name, includes, excludes, regex, message), "
          "got " + std::to_string(fields.size()));
    }
    LintRule rule;
    rule.name = Trim(fields[0]);
    if (rule.name.empty()) {
      return Status::InvalidArgument("rule table line " +
                                     std::to_string(line_number) +
                                     ": empty rule name");
    }
    if (IsBuiltinRule(rule.name)) {
      return Status::InvalidArgument(
          "rule table line " + std::to_string(line_number) + ": '" +
          rule.name + "' is a reserved built-in rule name");
    }
    if (!names.insert(rule.name).second) {
      return Status::InvalidArgument("rule table line " +
                                     std::to_string(line_number) +
                                     ": duplicate rule '" + rule.name + "'");
    }
    rule.include_prefixes = SplitPrefixes(fields[1]);
    rule.exclude_prefixes = SplitPrefixes(fields[2]);
    rule.pattern = Trim(fields[3]);
    rule.message = Trim(fields[4]);
    if (rule.pattern.empty()) {
      return Status::InvalidArgument("rule table line " +
                                     std::to_string(line_number) +
                                     ": empty regex for rule '" + rule.name +
                                     "'");
    }
    if (rule.message.empty()) {
      return Status::InvalidArgument("rule table line " +
                                     std::to_string(line_number) +
                                     ": empty message for rule '" + rule.name +
                                     "'");
    }
    try {
      rule.compiled =
          std::regex(rule.pattern, std::regex::ECMAScript | std::regex::optimize);
    } catch (const std::regex_error& e) {
      return Status::InvalidArgument("rule table line " +
                                     std::to_string(line_number) +
                                     ": invalid regex for rule '" + rule.name +
                                     "': " + e.what());
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

StatusOr<std::vector<LintRule>> LoadRules(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open rule table: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto rules = ParseRules(buffer.str());
  if (!rules.ok()) {
    return Status(rules.status().code(),
                  path + ": " + rules.status().message());
  }
  return rules;
}

bool RuleAppliesTo(const LintRule& rule, std::string_view path) {
  auto matches_prefix = [&](const std::string& prefix) {
    return path.size() >= prefix.size() &&
           path.compare(0, prefix.size(), prefix) == 0;
  };
  if (!rule.include_prefixes.empty() &&
      std::none_of(rule.include_prefixes.begin(), rule.include_prefixes.end(),
                   matches_prefix)) {
    return false;
  }
  return std::none_of(rule.exclude_prefixes.begin(),
                      rule.exclude_prefixes.end(), matches_prefix);
}

std::vector<LintFinding> LintText(const std::vector<LintRule>& rules,
                                  std::string_view path,
                                  std::string_view text) {
  std::vector<LintFinding> findings;
  std::vector<const LintRule*> applicable;
  for (const LintRule& rule : rules) {
    if (RuleAppliesTo(rule, path)) applicable.push_back(&rule);
  }

  std::vector<std::string> code;
  std::vector<std::string> comments;
  internal::SplitCodeAndComments(text, &code, &comments);

  std::vector<std::string> raw_lines;
  {
    std::size_t start = 0;
    while (start <= text.size()) {
      const std::size_t nl = text.find('\n', start);
      const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
      raw_lines.emplace_back(text.substr(start, end - start));
      if (nl == std::string_view::npos) break;
      start = nl + 1;
    }
  }

  for (std::size_t i = 0; i < code.size(); ++i) {
    // Allow-directives on this line, harvested from comment text only.
    std::set<std::string> allowed;
    const std::string& comment = comments[i];
    for (std::sregex_iterator it(comment.begin(), comment.end(),
                                 AllowDirectiveRegex()),
         end;
         it != end; ++it) {
      allowed.insert((*it)[1].str());
    }

    const std::string excerpt =
        i < raw_lines.size() ? Trim(raw_lines[i]) : std::string();
    // Continuation lines get a sentinel prefix so `^`-anchored rules
    // only fire at statement starts; unanchored rules are unaffected.
    const std::string matchable =
        StartsStatement(code, i) ? code[i] : "\x01" + code[i];
    for (const LintRule* rule : applicable) {
      if (!std::regex_search(matchable, rule->compiled)) continue;
      if (allowed.count(rule->name) > 0) continue;
      LintFinding finding;
      finding.file = std::string(path);
      finding.line = i + 1;
      finding.rule = rule->name;
      finding.message = rule->message;
      finding.excerpt = excerpt;
      findings.push_back(std::move(finding));
    }

    // Built-in: an allow-comment naming a rule absent from the table is
    // stale and must be deleted along with the rule it once silenced.
    // Built-in pass names (layering, lock-order, failpoint-coverage)
    // are always known: their findings are suppressed at the site by
    // the analysis passes themselves.
    for (const std::string& name : allowed) {
      const bool known =
          IsBuiltinRule(name) ||
          std::any_of(rules.begin(), rules.end(),
                      [&](const LintRule& rule) { return rule.name == name; });
      if (known) continue;
      LintFinding finding;
      finding.file = std::string(path);
      finding.line = i + 1;
      finding.rule = std::string(kStaleAllowRule);
      finding.message =
          "allow-comment references unknown rule '" + name + "'";
      finding.excerpt = excerpt;
      findings.push_back(std::move(finding));
    }
  }
  return findings;
}

StatusOr<std::vector<SourceFile>> LoadSourceTree(
    const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    const fs::file_status status = fs::status(root, ec);
    if (ec) {
      return Status::NotFound("cannot stat lint root: " + root + ": " +
                              ec.message());
    }
    if (fs::is_regular_file(status)) {
      paths.push_back(fs::path(root).generic_string());
      continue;
    }
    if (!fs::is_directory(status)) {
      return Status::InvalidArgument("lint root is neither file nor "
                                     "directory: " + root);
    }
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        return Status::Internal("walking " + root + ": " + ec.message());
      }
      if (it->is_regular_file() && HasCppExtension(it->path())) {
        paths.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::Internal("cannot read source file: " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    files.push_back(SourceFile{path, buffer.str()});
  }
  return files;
}

std::vector<LintFinding> LintFiles(const std::vector<LintRule>& rules,
                                   const std::vector<SourceFile>& files) {
  std::vector<LintFinding> findings;
  for (const SourceFile& file : files) {
    std::vector<LintFinding> file_findings =
        LintText(rules, file.path, file.text);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

StatusOr<std::vector<LintFinding>> LintTree(
    const std::vector<LintRule>& rules, const std::vector<std::string>& roots) {
  auto files = LoadSourceTree(roots);
  if (!files.ok()) return files.status();
  return LintFiles(rules, *files);
}

std::string FormatFinding(const LintFinding& finding) {
  std::string out = finding.file + ":" + std::to_string(finding.line) +
                    ": [" + finding.rule + "] " + finding.message;
  if (!finding.excerpt.empty()) {
    out += "\n    " + finding.excerpt;
  }
  return out;
}

}  // namespace lint
}  // namespace ips
