// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// ipslint v2: whole-program analyses over the comment/string-stripped
// token stream (see DESIGN.md §9). Where ipslint_lib.h matches one line
// at a time, the three passes here need the whole corpus:
//
//  * layering — every `#include "<layer>/..."` edge inside src/ is
//    checked against the declared DAG in tools/ipslint.layers; cycles
//    in the table and back-edges in the code are findings.
//  * lock-order — `Mutex` members, `IPS_ACQUIRED_BEFORE` declarations
//    (src/util/thread_annotations.h), and lexically nested
//    `MutexLock`/`std::lock_guard` acquisitions build one lock graph;
//    any cycle is a potential deadlock.
//  * failpoint-coverage — every literal `IPS_FAILPOINT("...")` /
//    `Failpoints::Hit("...")` site in src/ must be armed by the chaos
//    suite (tests/chaos_test.cc), so no injection point can silently
//    rot into dead, untested error handling.
//
// Each pass emits LintFindings under its reserved rule name
// (`layering`, `lock-order`, `failpoint-coverage`); a finding is
// suppressible at its site with `// ipslint:allow(<pass>)`, exactly
// like a table rule. All passes are deterministic: findings are sorted
// by (file, line, message).

#ifndef IPS_TOOLS_IPSLINT_ANALYSIS_H_
#define IPS_TOOLS_IPSLINT_ANALYSIS_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ipslint_lib.h"
#include "util/status.h"

namespace ips {
namespace lint {

// --- Layering -------------------------------------------------------------

/// The declared layer DAG (tools/ipslint.layers). One TAB-separated
/// line per layer: `name<TAB>deps` with deps a comma list of layers
/// declared on *earlier* lines (or "-"). Requiring deps to be already
/// declared makes the table acyclic by construction — the file reads
/// top-down from `util` to `serve`, and adding a layer is one line
/// placed below everything it uses.
struct LayerTable {
  /// Declaration order (a topological order of the DAG).
  std::vector<std::string> order;
  /// Direct dependencies, as declared.
  std::map<std::string, std::set<std::string>> deps;
  /// Transitive closure of `deps` (what an include may legally target).
  std::map<std::string, std::set<std::string>> closure;
};

/// Parses a layer table; rejects duplicate layers, unknown or
/// not-yet-declared deps (which is how a cycle would have to be
/// written), and malformed lines.
[[nodiscard]] StatusOr<LayerTable> ParseLayerTable(std::string_view text);

/// Reads and parses a layer table file.
[[nodiscard]] StatusOr<LayerTable> LoadLayerTable(const std::string& path);

struct LayeringReport {
  std::vector<LintFinding> findings;
  std::size_t files_checked = 0;  // src/<layer>/ files seen
  std::size_t edges_checked = 0;  // cross-layer include edges
};

/// Checks every quoted #include in files under a `src/<layer>/`
/// directory against the table. A back-edge (the included layer
/// already depends on the including one) is reported as a cycle; any
/// other undeclared edge as a missing declaration. Files outside
/// src/<known-layer>/ are skipped; a src/ file in an undeclared layer
/// is itself a finding.
[[nodiscard]] LayeringReport AnalyzeLayering(
    const LayerTable& table, const std::vector<SourceFile>& files);

// --- Lock order -----------------------------------------------------------

struct LockOrderReport {
  std::vector<LintFinding> findings;
  std::size_t locks = 0;  // distinct annotated/observed mutexes
  std::size_t edges = 0;  // declared + observed order edges
};

/// Builds the lock graph and flags potential-deadlock cycles.
///
/// Nodes are mutex members harvested from class bodies
/// (`Mutex name;` / `std::mutex name;`), qualified as `Class::name`.
/// Edges come from two sources:
///  * declared: `IPS_ACQUIRED_BEFORE(other...)` on a mutex member
///    (unqualified args resolve against the declaring class first);
///    `IPS_ACQUIRED_AFTER` declares the reverse edge.
///  * observed: a `MutexLock` / `std::scoped_lock` / `std::lock_guard`
///    / `std::unique_lock` acquisition while another acquisition is
///    lexically live in an enclosing scope of the same function body.
///    Lambda bodies are barriers (they run later, not under the
///    enclosing locks).
///
/// A lock expression such as `shard.mutex` resolves by its final
/// member name: the innermost enclosing class wins, then a class in
/// the same file, then a globally unique declaring class; otherwise
/// the lock is file-local. Any cycle in declared ∪ observed edges —
/// including an observed edge contradicting a declared order — is a
/// finding at the first edge's site, suppressible with
/// `// ipslint:allow(lock-order)` on that acquisition line.
[[nodiscard]] LockOrderReport AnalyzeLockOrder(
    const std::vector<SourceFile>& files);

// --- Failpoint coverage ---------------------------------------------------

struct FailpointReport {
  std::vector<LintFinding> findings;
  std::size_t sites = 0;          // literal-named sites in src/
  std::size_t dynamic_sites = 0;  // computed names (not checkable)
  std::size_t armed = 0;          // distinct names armed by the chaos files
};

/// Cross-references every literal failpoint site in `src_files`
/// (`IPS_FAILPOINT`, `IPS_FAILPOINT_THROW`, `Failpoints::Hit`, and the
/// sharded helper `HitShardSite`) against the failpoint-shaped string
/// literals of `chaos_files` (any literal is an arm: `ScopedFailpoint`,
/// `Failpoints::Arm`, or a name list driving either). A site is covered
/// when its exact name is armed, or a scoped variant `<name>/...` is.
/// Sites with computed names are counted but not checkable.
[[nodiscard]] FailpointReport AnalyzeFailpointCoverage(
    const std::vector<SourceFile>& src_files,
    const std::vector<SourceFile>& chaos_files);

}  // namespace lint
}  // namespace ips

#endif  // IPS_TOOLS_IPSLINT_ANALYSIS_H_
