// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Snapshot inspector (DESIGN.md §12): dumps the header and section
// table of a snapshot file, and verifies every section checksum with a
// bounded-memory streaming pass.
//
//   $ ipssnap snapshot.ips            # header + section table dump
//   $ ipssnap --verify snapshot.ips   # CRC-check every section
//
// Exits 0 on success; 1 on a malformed or damaged snapshot (with a
// diagnostic on stderr), so scripts can gate on `ipssnap --verify`.

#include <cinttypes>
#include <cstdio>
#include <string>

#include "storage/format.h"
#include "storage/snapshot.h"
#include "util/status.h"

namespace {

int Fail(const ips::Status& status) {
  std::fprintf(stderr, "ipssnap: %s\n", status.ToString().c_str());
  return 1;
}

int Run(const std::string& path, bool verify) {
  auto reader = ips::storage::SnapshotReader::Open(path);
  if (!reader.ok()) return Fail(reader.status());

  std::printf("%s: format version %u, %zu section(s)\n", path.c_str(),
              ips::storage::kFormatVersion, reader->sections().size());
  std::printf("%-8s %3s %12s %12s %10s\n", "SECTION", "VER", "OFFSET",
              "SIZE", "CRC32");
  for (const ips::storage::SectionEntry& entry : reader->sections()) {
    std::printf("%-8s %3u %12" PRIu64 " %12" PRIu64 " 0x%08x",
                ips::storage::SectionName(entry.id).c_str(), entry.version,
                entry.offset, entry.size, entry.crc32);
    if (entry.id == ips::storage::kSectionDataset) {
      auto info = ips::storage::ParseMatrixSection(*reader, entry);
      if (info.ok()) {
        std::printf("  (%" PRIu64 " x %" PRIu64 " matrix)", info->rows,
                    info->cols);
      } else {
        std::printf("  (bad matrix subheader)");
      }
    }
    std::printf("\n");
  }

  if (verify) {
    const ips::Status status = reader->VerifyAllSections();
    if (!status.ok()) return Fail(status);
    std::printf("all %zu section checksum(s) OK\n",
                reader->sections().size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      verify = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: ipssnap [--verify] <snapshot file>\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ipssnap: unknown flag %s\n", arg.c_str());
      return 1;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "ipssnap: more than one path given\n");
      return 1;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: ipssnap [--verify] <snapshot file>\n");
    return 1;
  }
  return Run(path, verify);
}
