// Serving quickstart: stand up an Engine over a skewed dataset, push
// 1000 concurrent top-k requests with a deadline through the
// BatchScheduler, and report per-algorithm selection counts, the
// within-deadline completion rate, and the process-wide metrics
// registry dashboard.
//
//   $ ./build/examples/serve_quickstart
//   $ IPS_METRICS_JSON=/tmp/metrics.json ./build/examples/serve_quickstart
//
// With IPS_METRICS_JSON set, the final registry snapshot is also
// written to that path as JSON (the scripts/check.sh smoke step feeds
// it to tools/metrics_json_check). Exits non-zero if fewer than 95% of
// requests complete within the deadline (the serving SLO this example
// demonstrates).

#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <limits>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "core/query.h"
#include "obs/metrics.h"
#include "rng/random.h"
#include "serve/batch_scheduler.h"
#include "serve/engine.h"
#include "serve/serve_stats.h"
#include "serve/sharded_engine.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace {

// Unwraps a StatusOr or exits with the status printed, so a rejected
// input is diagnosable instead of a raw abort.
template <typename T>
T OrDie(ips::StatusOr<T> result) {
  if (!result.ok()) {
    std::cerr << "fatal: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  ips::Rng rng(2026);

  // 1. Data: latent-factor vectors with popularity-skewed norms -- the
  //    regime where planner choices actually differ per request.
  constexpr std::size_t kDim = 24;
  constexpr std::size_t kN = 4000;
  const ips::Matrix data =
      ips::MakeLatentFactorVectors(kN, kDim, /*skew=*/1.0, &rng);

  // 2. The engine calibrates its planner on a subsample at startup and
  //    builds per-algorithm indexes lazily on first use.
  ips::EngineOptions options;
  options.seed = 7;
  const auto engine = OrDie(ips::Engine::Create(data, options));
  std::cout << "engine ready: n=" << engine->profile().n
            << " d=" << engine->profile().dim
            << " norm spread=" << engine->profile().NormSpread() << "\n";

  // 3. 1000 concurrent requests with mixed recall targets and a 5 s
  //    deadline each, coalesced into batches by the scheduler.
  constexpr std::size_t kRequests = 1000;
  constexpr double kDeadlineSeconds = 5.0;
  // Provision the queue for the burst: fill-level admission control
  // sheds kBatch submissions once the queue passes
  // qos.batch_shed_fill (0.5) of max_queue, so a server expecting a
  // 1000-request burst needs max_queue > 2x that or its batch tenants
  // get kResourceExhausted instead of answers.
  ips::BatchSchedulerOptions sched_options;
  sched_options.max_queue = 4096;
  ips::BatchScheduler scheduler(engine.get(), sched_options);

  std::vector<std::future<ips::BatchScheduler::Result>> futures;
  futures.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    std::vector<double> query(kDim);
    for (double& v : query) v = rng.NextGaussian();
    ips::QueryOptions request;
    request.k = 5;
    // A mix of cheap approximate and exact requests.
    request.recall_target = (i % 3 == 0) ? 1.0 : (i % 3 == 1) ? 0.9 : 0.7;
    // Transport-level QoS rides in the RequestContext: who is asking
    // (tenant), how urgent (priority lane), and the 5 s deadline.
    ips::RequestContext context;
    context.tenant_id = (i % 4 == 0) ? "analytics" : "search";
    context.priority = (i % 4 == 0) ? ips::RequestPriority::kBatch
                                    : ips::RequestPriority::kInteractive;
    context.deadline_seconds = kDeadlineSeconds;
    futures.push_back(scheduler.Submit({query, request, context}));
  }

  // 4. Collect answers; every future resolves (deadline, shed, or OK).
  ips::ServeMetrics metrics;
  std::size_t ok_count = 0, within_deadline = 0, failed = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    if (!result.ok()) {
      ++failed;
      continue;
    }
    ++ok_count;
    metrics.Record(result->stats);
    if (result->stats.deadline_met) ++within_deadline;
  }
  scheduler.Drain();

  const double within_fraction =
      static_cast<double>(within_deadline) / static_cast<double>(kRequests);
  std::cout << "\nserved " << ok_count << "/" << kRequests << " requests ("
            << failed << " failed), " << within_deadline
            << " within the " << kDeadlineSeconds << " s deadline ("
            << 100.0 * within_fraction << "%)\n\n";

  // 5. Per-algorithm selection counts and latency, via util/table.
  metrics.ToTable().PrintMarkdown(std::cout);
  const auto latency = metrics.LatencySummaryMillis();
  std::cout << "\nlatency (ms): mean=" << latency.mean
            << " min=" << latency.min << " max=" << latency.max << "\n";

  const ips::SchedulerCounters counters = scheduler.counters();
  std::cout << "scheduler: " << counters.batches << " batches, max queue depth "
            << counters.max_queue_depth << ", " << counters.shed << " shed, "
            << counters.expired << " expired\n";
  for (const std::string& tenant : scheduler.tenants()) {
    const ips::TenantCounters tc = scheduler.tenant_counters(tenant);
    std::cout << "tenant " << tenant << ": " << tc.completed << "/"
              << tc.submitted << " completed, " << tc.shed << " shed, p99 "
              << tc.p99_seconds * 1e3 << " ms\n";
  }

  // 6. The process-wide metrics registry accumulated every counter the
  //    serving path touched; print the dashboard and optionally export
  //    the same snapshot as JSON.
  std::cout << "\nmetrics registry:\n";
  ips::MetricsRegistry::Global().ToTable().PrintMarkdown(std::cout);
  if (const char* json_path = std::getenv("IPS_METRICS_JSON")) {
    const auto json = ips::MetricsRegistry::Global().ExportJson();
    if (!json.ok()) {
      std::cerr << "metrics export failed: " << json.status().ToString()
                << "\n";
      return 1;
    }
    std::ofstream out(json_path);
    out << *json;
    if (!out) {
      std::cerr << "could not write " << json_path << "\n";
      return 1;
    }
    std::cout << "\nwrote metrics JSON to " << json_path << "\n";
  }

  if (within_fraction < 0.95) {
    std::cerr << "FAIL: fewer than 95% of requests met the deadline\n";
    return 1;
  }
  std::cout << "\nOK: >=95% of requests completed within the deadline\n";

  // 7. Graceful degradation: the same workload against a 4-shard
  //    scatter-gather engine with shard 2's query path wedged by a
  //    failpoint. Every answer still arrives (the merged top-k of the
  //    surviving shards), the deadline SLO holds, and the lost coverage
  //    is visible -- not hidden -- as partial answers and failed-shard
  //    counts. After three lost calls the shard's circuit breaker
  //    trips and ejects it from the scatter set.
  std::cout << "\n=== degraded mode: 4 shards, shard 2 down ===\n";
  ips::ShardedEngineOptions sharded_options;
  sharded_options.num_shards = 4;
  sharded_options.engine.seed = 7;
  const auto sharded =
      OrDie(ips::ShardedEngine::Create(data, sharded_options));
  ips::Failpoints::Arm("serve/shard/query/2",
                       ips::Status::Internal("shard 2 wedged"),
                       ips::FireEvery{1});

  constexpr std::size_t kDegradedRequests = 200;
  ips::ServeMetrics degraded_metrics;
  std::size_t degraded_ok = 0, degraded_within = 0;
  for (std::size_t i = 0; i < kDegradedRequests; ++i) {
    std::vector<double> query(kDim);
    for (double& v : query) v = rng.NextGaussian();
    ips::QueryOptions request;
    request.k = 5;
    request.recall_target = (i % 3 == 0) ? 1.0 : (i % 3 == 1) ? 0.9 : 0.7;
    ips::RequestContext context;
    context.deadline_seconds = kDeadlineSeconds;
    const auto result = sharded->Query({query, request, context});
    if (!result.ok()) continue;
    ++degraded_ok;
    // RecordResult counts partial answers separately from clean ones,
    // so the dashboard distinguishes "fast" from "fast but degraded".
    degraded_metrics.RecordResult(*result);
    if (result->stats.deadline_met) ++degraded_within;
  }
  ips::Failpoints::Disarm("serve/shard/query/2");

  const double degraded_within_fraction =
      static_cast<double>(degraded_within) /
      static_cast<double>(kDegradedRequests);
  std::cout << "served " << degraded_ok << "/" << kDegradedRequests
            << " requests, " << degraded_within << " within the deadline ("
            << 100.0 * degraded_within_fraction << "%)\n"
            << "partial answers: " << degraded_metrics.PartialCount()
            << ", shard calls lost: " << degraded_metrics.ShardsFailedTotal()
            << ", hedged: " << degraded_metrics.ShardsHedgedTotal() << "\n"
            << "shard 2 breaker: "
            << (sharded->breaker_state(2) ==
                        ips::ShardedEngine::BreakerState::kOpen
                    ? "open (ejected from the scatter set)"
                    : "closed")
            << "\n";

  if (degraded_ok < kDegradedRequests ||
      degraded_within_fraction < 0.95) {
    std::cerr << "FAIL: degraded mode broke the serving SLO\n";
    return 1;
  }
  if (degraded_metrics.PartialCount() != kDegradedRequests) {
    std::cerr << "FAIL: lost shard coverage was not surfaced as partial\n";
    return 1;
  }
  std::cout << "OK: one dead shard degraded answers (partial=true), not "
               "availability\n";
  return 0;
}
