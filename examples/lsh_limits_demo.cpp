// The lower-bound story of the paper as a runnable demo: why asymmetric
// LSH for inner products cannot work for unbounded query domains. We
// build the Theorem 3 staircase sequences for growing query radii U,
// measure a real ALSH family's collision probabilities on them, and
// watch the achievable gap P1 - P2 get squeezed under the shrinking
// Lemma 4 ceiling.
//
//   $ ./build/examples/lsh_limits_demo

#include <cmath>
#include <iostream>

#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "theory/gap_bounds.h"
#include "theory/hard_sequences.h"
#include "theory/lemma4.h"
#include "util/table.h"

int main() {
  ips::Rng rng(8);
  std::cout
      << "Theorem 3 in action: the ALSH gap P1 - P2 vs the query radius U\n"
      << "(case 1 staircases, dual-ball + SimHash, 2000 samples each)\n\n";

  ips::TablePrinter table({"U", "staircase n", "measured P1", "measured P2",
                           "measured gap", "Lemma 4 ceiling"});
  constexpr double kS = 0.25;
  constexpr double kC = 0.7;
  for (double radius : {10.0, 40.0, 160.0, 640.0}) {
    const ips::HardSequences sequences =
        ips::MakeCase1Sequences(4, radius, kS, kC);
    const ips::SequenceCheck check = ips::VerifyHardSequences(sequences);
    if (!check.staircase_ok || !check.norms_ok) {
      std::cerr << "staircase construction failed!\n";
      return 1;
    }
    const ips::DualBallTransform transform(sequences.data.cols(),
                                           sequences.U);
    const ips::SimHashFamily base(transform.output_dim());
    const ips::TransformedLshFamily family(&transform, &base);
    const ips::CollisionMatrix matrix(family, sequences, 2000, &rng);
    const std::size_t n = sequences.data.rows();
    table.AddRow({ips::Format(radius), ips::Format(n),
                  ips::FormatFixed(matrix.EmpiricalP1(), 4),
                  ips::FormatFixed(matrix.EmpiricalP2(), 4),
                  ips::FormatFixed(matrix.EmpiricalGap(), 4),
                  ips::FormatFixed(ips::Lemma4GapBound(n), 4)});
  }
  table.PrintMarkdown(std::cout);

  std::cout
      << "\nAs U grows the staircase gets longer (n rows) and the Lemma 4\n"
         "ceiling 1/(8 log n) contracts toward zero -- so does any valid\n"
         "family's gap, which is why no asymmetric LSH exists for\n"
         "unbounded query domains. Here even the measured gap of a real\n"
         "family hovers at or below zero: on these sequences the\n"
         "supposedly-similar pairs collide no more often than the\n"
         "dissimilar ones.\n\n"
         "The closed-form ceilings for all three constructions:\n";
  ips::TablePrinter bounds({"U", "case 1", "case 2", "case 3"});
  for (double radius : {1e2, 1e4, 1e6, 1e8}) {
    bounds.AddRow({ips::FormatSci(radius, 0),
                   ips::FormatFixed(ips::Case1GapBound(4, radius, kS, kC), 5),
                   ips::FormatFixed(ips::Case2GapBound(4, radius,
                                                       kS / 100.0, kC),
                                    5),
                   ips::FormatFixed(ips::Case3GapBound(radius, kS), 5)});
  }
  bounds.PrintMarkdown(std::cout);
  return 0;
}
