// Quickstart: build a MIPS index over random vectors, run approximate
// (cs, s) searches, and verify the Definition 1 contract against brute
// force.
//
//   $ ./build/examples/quickstart

#include <cstdlib>
#include <iostream>
#include <utility>

#include "core/dataset.h"
#include "core/mips_index.h"
#include "core/similarity_join.h"
#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "util/status.h"

namespace {

// Unwraps a StatusOr or exits with the status printed, so a rejected
// input is diagnosable instead of a raw abort.
template <typename T>
T OrDie(ips::StatusOr<T> result) {
  if (!result.ok()) {
    std::cerr << "fatal: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  ips::Rng rng(2026);

  // 1. Data: 2000 vectors in the unit ball of R^32, queries in the ball
  //    of radius U = 1 with one strong planted match each.
  constexpr std::size_t kDim = 32;
  const ips::PlantedInstance instance =
      ips::MakePlantedInstance(/*num_data=*/2000, /*num_queries=*/10, kDim,
                               /*target=*/0.9, /*query_radius=*/1.0, &rng);

  // 2. The join specification: report a pair with p^T q >= c*s whenever
  //    some pair reaches s (Definition 1 in the paper).
  ips::JoinSpec spec;
  spec.s = 0.8;
  spec.c = 0.75;
  spec.is_signed = true;

  // 3. An ALSH index: the paper's Section 4.1 reduction (both sides
  //    lifted to the unit sphere) with SimHash as the sphere hash.
  const ips::DualBallTransform transform(kDim, /*query_radius=*/1.0);
  const ips::SimHashFamily sphere_hash(transform.output_dim());
  ips::LshTableParams params;
  params.k = 10;  // hash concatenations per table
  params.l = 32;  // tables
  const auto index = OrDie(ips::LshMipsIndex::Create(
      instance.data, &transform, sphere_hash, params, &rng));

  // 4. Search.
  std::cout << "query -> (data index, inner product)\n";
  for (std::size_t qi = 0; qi < instance.queries.rows(); ++qi) {
    const auto match = index->Search(instance.queries.Row(qi), spec);
    if (match.has_value()) {
      std::cout << "  q" << qi << " -> (p" << match->index << ", "
                << match->value << ")";
      std::cout << (match->index == instance.plants[qi] ? "  [planted]"
                                                        : "")
                << "\n";
    } else {
      std::cout << "  q" << qi << " -> no candidate above cs\n";
    }
  }

  // 5. Verify the (cs, s) contract against the exact join (through the
  //    validated drivers: a malformed spec or query batch would come
  //    back as a printed Status, not a crash).
  const ips::JoinResult truth =
      OrDie(ips::ExactJoinChecked(instance.data, instance.queries, spec));
  const ips::JoinResult approx =
      OrDie(ips::IndexJoinChecked(*index, instance.queries, spec));
  double recall = 0.0;
  const std::size_t violations =
      ips::VerifyJoinContract(approx, truth, spec, &recall);
  std::cout << "\nrecall over promised queries: " << recall
            << "  contract violations: " << violations << "\n"
            << "exact inner products evaluated: " << approx.inner_products
            << " (brute force would use " << truth.inner_products << ")\n";
  return 0;
}
