// The hardness story of the paper as a runnable demo: why a fast IPS
// join would break the Orthogonal Vectors conjecture. We generate an
// OVP instance with one planted orthogonal pair, push it through each of
// the three Lemma 3 gap embeddings, solve the resulting (cs, s) join,
// and watch the orthogonal pair fall out.
//
//   $ ./build/examples/ovp_hardness_demo

#include <iostream>

#include "embed/binary_embedding.h"
#include "embed/chebyshev_embedding.h"
#include "embed/sign_embedding.h"
#include "hardness/ovp.h"
#include "hardness/reduction.h"
#include "rng/random.h"
#include "util/table.h"

int main() {
  ips::Rng rng(16);

  // An OVP instance: two sets of 64 dense binary vectors in {0,1}^24.
  // At density 1/2 a random pair is orthogonal with probability
  // (3/4)^24 ~ 1e-3, so the planted pair is (almost surely) the only one.
  ips::OvpOptions options;
  options.size_a = 64;
  options.size_b = 64;
  options.dim = 24;
  options.density = 0.5;
  options.plant_orthogonal_pair = true;
  const ips::OvpInstance instance = ips::GenerateOvpInstance(options, &rng);
  std::cout << "planted orthogonal pair: (a" << instance.planted->first
            << ", b" << instance.planted->second << ")\n"
            << "orthogonal pairs in total: "
            << ips::CountOrthogonalPairs(instance) << "\n\n";

  ips::TablePrinter table({"embedding", "domain", "d2'", "s", "cs",
                           "embed ms", "join ms", "recovered pair"});

  auto run = [&](const ips::GapEmbedding& embedding, const char* domain) {
    const ips::ReductionResult result =
        ips::SolveOvpViaEmbedding(instance, embedding);
    std::string pair = "none";
    if (result.pair.has_value()) {
      pair = "(a" + ips::Format(result.pair->first) + ", b" +
             ips::Format(result.pair->second) + ")";
    }
    table.AddRow({embedding.Name(), domain, ips::Format(result.embedded_dim),
                  ips::Format(embedding.s()), ips::Format(embedding.cs()),
                  ips::FormatFixed(result.embed_seconds * 1e3, 2),
                  ips::FormatFixed(result.join_seconds * 1e3, 2), pair});
  };

  // Embedding 1: signed join over {-1,1}; orthogonal pairs score exactly
  // 4, everything else <= 0, so ANY approximation factor c > 0 detects
  // them -- the strongest row of Table 1.
  run(ips::SignedGapEmbedding(options.dim), "{-1,1} signed");

  // Embedding 2: the deterministic Chebyshev amplifier; q = 2 separates
  // orthogonal from non-orthogonal by a factor T_2(1 + 1/d).
  run(ips::ChebyshevGapEmbedding(options.dim, 2), "{-1,1} unsigned");

  // Embedding 3: the chopped-product embedding into {0,1}; k chunks give
  // the gap (k-1 vs k), i.e. c = 1 - 1/k.
  run(ips::BinaryChunkEmbedding(options.dim, 6), "{0,1} unsigned");

  table.PrintMarkdown(std::cout);
  std::cout << "\nEvery embedding recovers the planted pair. Because the\n"
               "embeddings cost time linear in their output dimension and\n"
               "blow the dimension up to only n^o(1) (for d = omega(log n)\n"
               "chosen suitably), a truly subquadratic (cs, s) join in the\n"
               "listed (c, domain) regimes would solve OVP in subquadratic\n"
               "time and refute SETH-hardness -- Theorem 1 of the paper.\n";
  return 0;
}
