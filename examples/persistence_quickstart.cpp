// Persistence quickstart: the storage subsystem end to end
// (DESIGN.md §12).
//
//   1. Build an Engine, serve one query cold, snapshot everything to
//      disk with Engine::SaveSnapshot.
//   2. Warm-start a second engine from the snapshot — once onto the
//      heap, once zero-copy via mmap — and check both serve the exact
//      answer the cold engine gave.
//   3. Stream two matrix snapshots through the out-of-core
//      BlockedBucketJoin under a small memory budget and show the
//      block accounting.
//
//   $ ./build/examples/persistence_quickstart
//
// Exits non-zero if a warm-started engine disagrees with the cold one
// (the bitwise round-trip guarantee tests/storage_test.cc pins down).

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <utility>

#include "core/dataset.h"
#include "core/query.h"
#include "linalg/matrix.h"
#include "lsh/simhash.h"
#include "rng/random.h"
#include "serve/engine.h"
#include "storage/blocked_join.h"
#include "storage/snapshot.h"
#include "util/status.h"

namespace {

template <typename T>
T OrDie(ips::StatusOr<T> result) {
  if (!result.ok()) {
    std::cerr << "fatal: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void DieIf(const ips::Status& status) {
  if (!status.ok()) {
    std::cerr << "fatal: " << status.ToString() << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  ips::Rng rng(2026);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ips_persistence_quickstart";
  std::filesystem::create_directories(dir);

  // 1. Cold start: profile + calibrate, build two indexes, serve once.
  constexpr std::size_t kDim = 16;
  const ips::Matrix data =
      ips::MakeLatentFactorVectors(/*n=*/2000, kDim, /*skew=*/1.0, &rng);
  const ips::Matrix probes =
      ips::MakeLatentFactorVectors(/*n=*/4, kDim, /*skew=*/1.0, &rng);

  auto cold = OrDie(ips::Engine::Create(data));
  DieIf(cold->EnsureIndex(ips::QueryAlgo::kBallTree));
  DieIf(cold->EnsureIndex(ips::QueryAlgo::kLsh));
  ips::QueryOptions query;
  query.k = 5;
  const auto cold_answer = OrDie(cold->Query({probes.Row(0), query}));
  std::cout << "cold engine:   top hit " << cold_answer.matches[0].index
            << " (ip " << cold_answer.matches[0].value << ")\n";

  // 2. Snapshot, then warm-start twice. The mmap flavor never copies
  //    the dataset: queries read the mapped file directly.
  DieIf(cold->SaveSnapshot(dir.string()));
  for (const bool use_mmap : {false, true}) {
    ips::SnapshotLoadOptions load;
    load.use_mmap = use_mmap;
    auto warm = OrDie(ips::Engine::CreateFromSnapshot(dir.string(), load));
    const auto answer = OrDie(warm->Query({probes.Row(0), query}));
    std::cout << (use_mmap ? "warm (mmap):   " : "warm (heap):   ")
              << "top hit " << answer.matches[0].index << " (ip "
              << answer.matches[0].value << ")\n";
    if (answer.matches[0].index != cold_answer.matches[0].index ||
        answer.matches[0].value != cold_answer.matches[0].value) {
      std::cerr << "fatal: warm-started engine disagrees with cold\n";
      return 1;
    }
  }

  // 3. Out-of-core join: both sides live in matrix snapshot files and
  //    are streamed in blocks that fit the budget; the result equals a
  //    monolithic in-memory LshBucketJoin with the same seed.
  const std::string data_path = (dir / "join_data.ips").string();
  const std::string queries_path = (dir / "join_queries.ips").string();
  DieIf(ips::storage::SaveMatrixSnapshot(
      ips::MakeLatentFactorVectors(/*n=*/4096, kDim, /*skew=*/1.0, &rng),
      data_path));
  DieIf(ips::storage::SaveMatrixSnapshot(
      ips::MakeLatentFactorVectors(/*n=*/512, kDim, /*skew=*/1.0, &rng),
      queries_path));

  const ips::SimHashFamily family(kDim);
  ips::storage::BlockedJoinOptions options;
  options.memory_budget_bytes = 2u << 20;  // far below the data size
  options.params = {.k = 4, .l = 12};
  options.s_threshold = 0.04;
  options.cs_threshold = 0.02;
  ips::storage::BlockedJoinStats stats;
  const auto join = OrDie(ips::storage::BlockedBucketJoin(
      family, data_path, queries_path, options, &stats));
  std::size_t matched = 0;
  for (const auto& best : join.per_query) matched += best.has_value();
  std::cout << "blocked join:  " << matched << "/" << join.per_query.size()
            << " queries matched across " << stats.block_pairs
            << " block pairs (" << stats.data_blocks << " data x "
            << stats.query_blocks << " query blocks of "
            << stats.block_rows << " rows, "
            << stats.bytes_read / (1u << 10) << " KiB streamed)\n";

  std::filesystem::remove_all(dir);
  std::cout << "persistence quickstart OK\n";
  return 0;
}
