// Binary set data scenario: near-containment search over sets encoded
// as 0/1 vectors, where the inner product |x & q| is the natural
// similarity. Compares MH-ALSH (asymmetric minwise hashing [46], the
// binary-data specialist) against the Section 4.1 dual-ball ALSH on the
// same workload -- the comparison behind Figure 2's MH-ALSH curve.
//
//   $ ./build/examples/set_containment

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <utility>

#include "core/dataset.h"
#include "linalg/kernels.h"
#include "lsh/minhash.h"
#include "lsh/simhash.h"
#include "lsh/tables.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "util/status.h"
#include "util/table.h"

namespace {

// Unwraps a StatusOr or exits with the status printed, so a rejected
// input is diagnosable instead of a raw abort.
template <typename T>
T OrDie(ips::StatusOr<T> result) {
  if (!result.ok()) {
    std::cerr << "fatal: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  ips::Rng rng(99);
  constexpr std::size_t kUniverse = 256;  // universe size (dimension)
  constexpr std::size_t kSets = 2000;
  constexpr std::size_t kWeight = 24;  // elements per set
  constexpr std::size_t kQueries = 60;

  // Data sets: random kWeight-subsets of the universe.
  const ips::Matrix sets = ips::MakeBinarySets(kSets, kUniverse, kWeight, &rng);

  // Queries: perturbed copies of random data sets (drop 4 elements, add
  // 4 fresh ones) => intersection ~ kWeight - 4 with their source.
  ips::Matrix queries(kQueries, kUniverse);
  std::vector<std::size_t> sources(kQueries);
  for (std::size_t qi = 0; qi < kQueries; ++qi) {
    const std::size_t source = rng.NextBounded(kSets);
    sources[qi] = source;
    std::vector<std::size_t> members;
    for (std::size_t j = 0; j < kUniverse; ++j) {
      if (sets.At(source, j) == 1.0) members.push_back(j);
    }
    // Keep all but 4 members, then add 4 random fresh elements.
    for (std::size_t t = 0; t < members.size(); ++t) {
      if (t >= 4) queries.At(qi, members[t]) = 1.0;
    }
    for (int added = 0; added < 4;) {
      const std::size_t j = rng.NextBounded(kUniverse);
      if (queries.At(qi, j) == 0.0 && sets.At(source, j) == 0.0) {
        queries.At(qi, j) = 1.0;
        ++added;
      }
    }
  }

  ips::TablePrinter table(
      {"engine", "recall of source set", "mean candidates/query"});

  // Engine A: MH-ALSH -- pad sets to weight kWeight, minhash.
  {
    const ips::MinHashAlshTransform transform(kUniverse, kWeight);
    const ips::MinHashFamily base(transform.output_dim());
    const ips::Matrix padded = transform.TransformDataset(sets);
    ips::LshTableParams params;
    params.k = 2;
    params.l = 32;
    const auto tables = OrDie(ips::LshTables::Create(base, padded, params,
                                                     &rng));
    std::size_t hits = 0;
    std::size_t candidates = 0;
    for (std::size_t qi = 0; qi < kQueries; ++qi) {
      const auto probe = transform.TransformQuery(queries.Row(qi));
      const auto found = tables->Query(probe);
      candidates += found.size();
      for (std::size_t index : found) {
        if (index == sources[qi]) {
          ++hits;
          break;
        }
      }
    }
    table.AddRow({"mh-alsh (minhash)",
                  ips::FormatFixed(static_cast<double>(hits) / kQueries, 3),
                  ips::FormatFixed(static_cast<double>(candidates) / kQueries,
                                   1)});
  }

  // Engine B: dual-ball ALSH with SimHash after normalizing the binary
  // vectors into the unit ball (divide by sqrt(kWeight)).
  {
    ips::Matrix scaled_sets = sets;
    ips::kernels::ScaleInPlace(std::span<double>(scaled_sets.data()),
                      1.0 / std::sqrt(static_cast<double>(kWeight)));
    ips::Matrix scaled_queries = queries;
    const double query_norm = std::sqrt(static_cast<double>(kWeight));
    ips::kernels::ScaleInPlace(std::span<double>(scaled_queries.data()),
                      1.0 / query_norm);
    const ips::DualBallTransform transform(kUniverse, 1.0);
    const ips::SimHashFamily base(transform.output_dim());
    const ips::Matrix lifted = transform.TransformDataset(scaled_sets);
    ips::LshTableParams params;
    params.k = 12;
    params.l = 32;
    const auto tables = OrDie(ips::LshTables::Create(base, lifted, params,
                                                     &rng));
    std::size_t hits = 0;
    std::size_t candidates = 0;
    for (std::size_t qi = 0; qi < kQueries; ++qi) {
      const auto probe = transform.TransformQuery(scaled_queries.Row(qi));
      const auto found = tables->Query(probe);
      candidates += found.size();
      for (std::size_t index : found) {
        if (index == sources[qi]) {
          ++hits;
          break;
        }
      }
    }
    table.AddRow({"dual-ball + simhash",
                  ips::FormatFixed(static_cast<double>(hits) / kQueries, 3),
                  ips::FormatFixed(static_cast<double>(candidates) / kQueries,
                                   1)});
  }

  table.PrintMarkdown(std::cout);
  std::cout << "\nBoth engines find the perturbed source sets; MH-ALSH is\n"
               "tailored to binary data (its collision probability is a\n"
               "function of |x & q| directly), matching the paper's remark\n"
               "that [46] is strong on binary inputs for some (c, s) while\n"
               "the Section 4.1 construction wins elsewhere (Figure 2).\n";
  return 0;
}
