// Recommender-system scenario (the Teflioudi et al. [50] motivation):
// latent-factor item vectors with popularity-skewed norms, user vectors
// as queries, and top-1 retrieval by inner product. Compares four
// engines -- brute force, exact ball tree, the Section 4.1 ALSH, and the
// Section 4.3 sketch (unsigned) -- on accuracy and work.
//
//   $ ./build/examples/recommender

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <utility>

#include "core/dataset.h"
#include "core/mips_index.h"
#include "core/norm_range_index.h"
#include "core/similarity_join.h"
#include "linalg/kernels.h"
#include "lsh/simhash.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

// Unwraps a StatusOr or exits with the status printed, so a rejected
// input is diagnosable instead of a raw abort.
template <typename T>
T OrDie(ips::StatusOr<T> result) {
  if (!result.ok()) {
    std::cerr << "fatal: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  ips::Rng rng(7);
  constexpr std::size_t kFactors = 32;
  constexpr std::size_t kItems = 4000;
  constexpr std::size_t kUsers = 100;

  // Item factors: Gaussian directions with Zipf-decaying norms (popular
  // items have larger norms -- the reason plain cosine LSH fails and
  // asymmetric constructions are needed).
  const ips::Matrix items =
      ips::MakeLatentFactorVectors(kItems, kFactors, 0.35, &rng);
  const ips::Matrix users =
      ips::MakeUnitBallGaussian(kUsers, kFactors, 0.8, &rng);

  // Ground truth top-1 by brute force.
  std::vector<std::size_t> truth(kUsers);
  for (std::size_t u = 0; u < kUsers; ++u) {
    double best = -1e300;
    for (std::size_t i = 0; i < kItems; ++i) {
      const double score = ips::kernels::Dot(items.Row(i), users.Row(u));
      if (score > best) {
        best = score;
        truth[u] = i;
      }
    }
  }

  ips::JoinSpec spec;
  spec.s = 0.0;  // pure MIPS: always report the best candidate
  spec.c = 0.5;
  spec.is_signed = true;

  ips::TablePrinter table({"engine", "top-1 accuracy", "mean products/query",
                           "query ms (total)"});

  auto evaluate = [&](const ips::MipsIndex& index, bool unsigned_scores) {
    std::size_t correct = 0;
    const std::size_t before = index.InnerProductsEvaluated();
    ips::WallTimer timer;
    for (std::size_t u = 0; u < kUsers; ++u) {
      ips::JoinSpec engine_spec = spec;
      engine_spec.is_signed = !unsigned_scores;
      const auto match = index.Search(users.Row(u), engine_spec);
      if (match.has_value() && match->index == truth[u]) ++correct;
    }
    const double ms = timer.Millis();
    const double products =
        static_cast<double>(index.InnerProductsEvaluated() - before) /
        kUsers;
    table.AddRow({index.Name(),
                  ips::FormatFixed(static_cast<double>(correct) / kUsers, 3),
                  ips::FormatFixed(products, 1), ips::FormatFixed(ms, 2)});
  };

  // Every engine with a validated factory is built through it: a bad
  // dataset or parameter set exits with a printed Status here instead of
  // failing deep inside a build.
  const auto brute = OrDie(ips::BruteForceIndex::Create(items));
  evaluate(*brute, false);

  const auto tree = OrDie(ips::TreeMipsIndex::Create(items, 16, &rng));
  evaluate(*tree, false);

  const ips::SimpleMipsTransform transform(kFactors, 1.0);
  const ips::SimHashFamily sphere_hash(transform.output_dim());
  ips::LshTableParams params;
  params.k = 8;
  params.l = 96;
  const auto alsh = OrDie(ips::LshMipsIndex::Create(items, &transform,
                                                    sphere_hash, params, &rng));
  evaluate(*alsh, false);

  ips::NormRangeParams lemp_params;
  lemp_params.bucket_size = 128;
  const ips::NormRangeIndex lemp(items, lemp_params, &rng);
  evaluate(lemp, false);

  ips::SketchMipsParams sketch_params;
  sketch_params.kappa = 4.0;
  sketch_params.copies = 9;
  const auto sketch = OrDie(ips::SketchIndex::Create(
      items, ips::SketchConfig{sketch_params, {}}, &rng));
  evaluate(*sketch, true);  // the Section 4.3 structure is unsigned

  table.PrintMarkdown(std::cout);
  std::cout << "\nNotes: ALSH accuracy is approximate by design (it must\n"
               "only satisfy the (cs, s) contract, not exact top-1); the\n"
               "sketch engine answers the unsigned problem, so it may\n"
               "legitimately disagree when the best signed and unsigned\n"
               "items differ.\n";
  return 0;
}
