// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Lemma 3, embedding 2: the deterministic Chebyshev gap embedding into
// {-1,1}. Starting from the coordinate-wise gadget translated by d+2
// appended ones -- a (d, 4d+2, 2d-2, 2d+2) unsigned embedding with
// u := <x_bar, y_bar> = 2d + 2 - 4 x^T y -- the recursion
//   f_0 = (1)                g_0 = (1)
//   f_1 = x_bar              g_1 = y_bar
//   f_q = (x_bar (*) f_{q-1})^2 ++ f_{q-2}^((2d)^2)
//   g_q = (y_bar (*) g_{q-1})^2 ++ (-g_{q-2})^((2d)^2)
// realizes <f_q, g_q> = (2d)^q T_q(u / 2d) on +-1 vectors. Orthogonal
// inputs give u = 2d+2, hence inner product (2d)^q T_q(1 + 1/d) >=
// (2d)^q e^(q/sqrt(d)); non-orthogonal inputs give |u| <= 2d-2, hence
// magnitude at most (2d)^q. Unlike Valiant's Chebyshev embedding [51]
// this construction is deterministic.

#ifndef IPS_EMBED_CHEBYSHEV_EMBEDDING_H_
#define IPS_EMBED_CHEBYSHEV_EMBEDDING_H_

#include "embed/gap_embedding.h"

namespace ips {

/// The unsigned (d, <=(9d)^q, (2d)^q, (2d)^q T_q(1+1/d)) embedding.
class ChebyshevGapEmbedding : public GapEmbedding {
 public:
  /// `q` is the Chebyshev order. Output dimension grows like (9d)^q; the
  /// constructor checks it stays below 2^40 to avoid accidental OOM.
  ChebyshevGapEmbedding(std::size_t input_dim, unsigned q);

  std::string Name() const override { return "chebyshev"; }
  EmbeddingDomain domain() const override { return EmbeddingDomain::kSign; }
  std::size_t input_dim() const override { return input_dim_; }
  std::size_t output_dim() const override { return output_dim_; }
  bool IsSigned() const override { return false; }

  /// (2d)^q T_q(1 + 1/d): the guaranteed magnitude for orthogonal pairs.
  double s() const override;

  /// (2d)^q: the magnitude bound for non-orthogonal pairs.
  double cs() const override;

  unsigned q() const { return q_; }

  /// Inner product value <f(x), g(y)> predicted for inputs with the given
  /// binary inner product t = x^T y (exact; used by property tests).
  double PredictedInnerProduct(std::size_t t) const;

  std::vector<double> EmbedLeft(std::span<const double> x) const override;
  std::vector<double> EmbedRight(std::span<const double> y) const override;

 private:
  /// Builds f_q (left = true) or g_q (left = false).
  std::vector<double> Build(std::span<const double> input, bool left) const;

  std::size_t input_dim_;
  unsigned q_;
  std::size_t output_dim_;
};

}  // namespace ips

#endif  // IPS_EMBED_CHEBYSHEV_EMBEDDING_H_
