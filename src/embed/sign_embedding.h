// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Lemma 3, embedding 1: the signed (d, 4d-4, 0, 4)-gap embedding into
// {-1,1}. Coordinate-wise gadget
//   f^(0) = ( 1,-1,-1)   g^(0) = ( 1, 1,-1)
//   f^(1) = ( 1, 1, 1)   g^(1) = (-1,-1,-1)
// contributes +1 for input pairs (0,0), (0,1), (1,0) and -3 for (1,1),
// so after the gadgets <f, g> = d - 4 x^T y; appending 1^(d-4) to f and
// (-1)^(d-4) to g translates this to 4 - 4 x^T y: exactly 4 for
// orthogonal pairs and <= 0 otherwise.

#ifndef IPS_EMBED_SIGN_EMBEDDING_H_
#define IPS_EMBED_SIGN_EMBEDDING_H_

#include "embed/gap_embedding.h"

namespace ips {

/// The signed (d, 4d-4, 0, 4) embedding. Requires d >= 4.
class SignedGapEmbedding : public GapEmbedding {
 public:
  explicit SignedGapEmbedding(std::size_t input_dim);

  std::string Name() const override { return "signed-gadget"; }
  EmbeddingDomain domain() const override { return EmbeddingDomain::kSign; }
  std::size_t input_dim() const override { return input_dim_; }
  std::size_t output_dim() const override { return 4 * input_dim_ - 4; }
  bool IsSigned() const override { return true; }
  double s() const override { return 4.0; }
  double cs() const override { return 0.0; }

  std::vector<double> EmbedLeft(std::span<const double> x) const override;
  std::vector<double> EmbedRight(std::span<const double> y) const override;

 private:
  std::size_t input_dim_;
};

/// The shared coordinate-wise gadget, also used (with the positive
/// translation) by the Chebyshev embedding: emits the 3d-dimensional
/// gadget part only, before any translation.
std::vector<double> SignGadgetLeft(std::span<const double> x);
std::vector<double> SignGadgetRight(std::span<const double> y);

}  // namespace ips

#endif  // IPS_EMBED_SIGN_EMBEDDING_H_
