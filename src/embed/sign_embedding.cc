#include "embed/sign_embedding.h"

#include "embed/combinators.h"
#include "util/check.h"

namespace ips {
namespace {

void CheckBinary(std::span<const double> x) {
  for (double v : x) {
    IPS_CHECK(v == 0.0 || v == 1.0) << "gap embeddings take 0/1 inputs";
  }
}

}  // namespace

std::vector<double> SignGadgetLeft(std::span<const double> x) {
  CheckBinary(x);
  std::vector<double> out;
  out.reserve(3 * x.size());
  for (double v : x) {
    if (v == 0.0) {
      out.insert(out.end(), {1.0, -1.0, -1.0});
    } else {
      out.insert(out.end(), {1.0, 1.0, 1.0});
    }
  }
  return out;
}

std::vector<double> SignGadgetRight(std::span<const double> y) {
  CheckBinary(y);
  std::vector<double> out;
  out.reserve(3 * y.size());
  for (double v : y) {
    if (v == 0.0) {
      out.insert(out.end(), {1.0, 1.0, -1.0});
    } else {
      out.insert(out.end(), {-1.0, -1.0, -1.0});
    }
  }
  return out;
}

SignedGapEmbedding::SignedGapEmbedding(std::size_t input_dim)
    : input_dim_(input_dim) {
  IPS_CHECK_GE(input_dim, 4u);
}

std::vector<double> SignedGapEmbedding::EmbedLeft(
    std::span<const double> x) const {
  IPS_CHECK_EQ(x.size(), input_dim_);
  return AppendConstant(SignGadgetLeft(x), 1.0, input_dim_ - 4);
}

std::vector<double> SignedGapEmbedding::EmbedRight(
    std::span<const double> y) const {
  IPS_CHECK_EQ(y.size(), input_dim_);
  return AppendConstant(SignGadgetRight(y), -1.0, input_dim_ - 4);
}

}  // namespace ips
