#include "embed/sign_reduction.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "linalg/kernels.h"
#include "util/check.h"

namespace ips {

SignRoundingReduction::SignRoundingReduction(std::size_t input_dim,
                                             std::size_t output_dim,
                                             Rng* rng)
    : input_dim_(input_dim), directions_(output_dim, input_dim) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GT(input_dim, 0u);
  IPS_CHECK_GT(output_dim, 0u);
  for (double& entry : directions_.data()) entry = rng->NextGaussian();
}

std::vector<double> SignRoundingReduction::Apply(
    std::span<const double> x) const {
  IPS_CHECK_EQ(x.size(), input_dim_);
  std::vector<double> out(directions_.rows());
  for (std::size_t t = 0; t < directions_.rows(); ++t) {
    out[t] = kernels::Dot(directions_.Row(t), x) >= 0.0 ? 1.0 : -1.0;
  }
  return out;
}

SignMatrix SignRoundingReduction::ApplyToRows(const Matrix& points) const {
  SignMatrix result(points.rows(), directions_.rows());
  for (std::size_t i = 0; i < points.rows(); ++i) {
    const std::vector<double> signs = Apply(points.Row(i));
    for (std::size_t t = 0; t < signs.size(); ++t) {
      result.Set(i, t, signs[t] > 0 ? 1 : -1);
    }
  }
  return result;
}

double SignRoundingReduction::ExpectedNormalizedProduct(double cosine) {
  const double clamped = std::clamp(cosine, -1.0, 1.0);
  return 1.0 - 2.0 * std::acos(clamped) / std::numbers::pi;
}

}  // namespace ips
