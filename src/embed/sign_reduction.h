// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Randomized reduction from real vectors to the {-1,1}^D domain by sign
// rounding (Charikar hyperplane rounding, used by Valiant [51] to reduce
// general IPS join to the {-1,1} case): coordinate t of the image is
// sign(<g_t, x>) for an i.i.d. Gaussian g_t. For unit vectors x, y,
//   E[ f(x)^T f(y) ] = D * (1 - 2 angle(x, y) / pi),
// a strictly increasing function of the inner product, and the sum of D
// independent +-1 terms concentrates within O(sqrt(D)). The reduction
// is symmetric (same map for both sides).

#ifndef IPS_EMBED_SIGN_REDUCTION_H_
#define IPS_EMBED_SIGN_REDUCTION_H_

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sign_matrix.h"
#include "rng/random.h"

namespace ips {

/// One sampled sign-rounding map R^d -> {-1,1}^D.
class SignRoundingReduction {
 public:
  SignRoundingReduction(std::size_t input_dim, std::size_t output_dim,
                        Rng* rng);

  std::size_t input_dim() const { return directions_.rows() ? input_dim_ : 0; }
  std::size_t output_dim() const { return directions_.rows(); }

  /// f(x): the vector of projection signs, as +-1 doubles.
  std::vector<double> Apply(std::span<const double> x) const;

  /// Packs f of every row of `points` into a SignMatrix (so downstream
  /// code can use the XOR/popcount inner-product kernel).
  SignMatrix ApplyToRows(const Matrix& points) const;

  /// The expected normalized agreement f(x)^T f(y) / D for unit vectors
  /// at angle theta: 1 - 2 theta / pi.
  static double ExpectedNormalizedProduct(double cosine);

 private:
  std::size_t input_dim_;
  Matrix directions_;  // D x d Gaussian rows
};

}  // namespace ips

#endif  // IPS_EMBED_SIGN_REDUCTION_H_
