// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Chebyshev polynomials of the first kind:
//   T_0(x) = 1, T_1(x) = x, T_q(x) = 2x T_{q-1}(x) - T_{q-2}(x),
// and the integer-scaled variant W_q(u; b) = b^q T_q(u/b) satisfying
//   W_0 = 1, W_1 = u, W_q = 2u W_{q-1} - b^2 W_{q-2},
// which is what the paper's deterministic Chebyshev gap embedding
// realizes on {-1,1} vectors. Key growth properties used by Theorem 1:
//   |T_q(x)| <= 1 for |x| <= 1,  and
//   T_q(1+eps) = cosh(q arccosh(1+eps)) >= e^(q sqrt(eps)) / 2 for
//   0 < eps <= 1/2 (the 1/2 is the paper's "/2" in the embedding's s).

#ifndef IPS_EMBED_CHEBYSHEV_H_
#define IPS_EMBED_CHEBYSHEV_H_

#include <cstdint>

namespace ips {

/// T_q(x) by the three-term recurrence.
double ChebyshevT(unsigned q, double x);

/// b^q T_q(u/b) computed without division (exact over the integers when
/// u and b are integers and the result fits a double's 53-bit mantissa).
double ScaledChebyshev(unsigned q, double b, double u);

}  // namespace ips

#endif  // IPS_EMBED_CHEBYSHEV_H_
