// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Lemma 3, embedding 3: the unsigned (d, k 2^(d/k), k-1, k)-gap embedding
// into {0,1}. The polynomial
//   sum_{i=0}^{k-1}  prod_{j in chunk_i} (1 - x_j y_j)
// counts how many of the k coordinate chunks are orthogonal; each factor
// is realized over {0,1} by the rank-one identity
//   1 - x y = (1-x, 1)^T (y, 1-y),
// and products/sums become tensors/concatenations. Orthogonal input
// pairs score exactly k, non-orthogonal ones at most k-1 (the chunk
// containing a common 1 contributes 0). Chopping into k chunks keeps the
// output dimension at k 2^(ceil(d/k)) instead of the naive 2^d.

#ifndef IPS_EMBED_BINARY_EMBEDDING_H_
#define IPS_EMBED_BINARY_EMBEDDING_H_

#include <utility>

#include "embed/gap_embedding.h"

namespace ips {

/// The unsigned chopped-product embedding into {0,1}. Requires
/// 1 <= k <= d and a manageable output dimension (checked).
class BinaryChunkEmbedding : public GapEmbedding {
 public:
  BinaryChunkEmbedding(std::size_t input_dim, std::size_t k);

  std::string Name() const override { return "binary-chunk"; }
  EmbeddingDomain domain() const override { return EmbeddingDomain::kBinary; }
  std::size_t input_dim() const override { return input_dim_; }
  std::size_t output_dim() const override { return output_dim_; }
  bool IsSigned() const override { return false; }
  double s() const override { return static_cast<double>(k_); }
  double cs() const override { return static_cast<double>(k_ - 1); }

  std::size_t k() const { return k_; }

  /// Number of chunks whose coordinates are all pairwise non-conflicting,
  /// i.e. the exact embedded inner product for inputs x, y.
  std::size_t OrthogonalChunks(std::span<const double> x,
                               std::span<const double> y) const;

  std::vector<double> EmbedLeft(std::span<const double> x) const override;
  std::vector<double> EmbedRight(std::span<const double> y) const override;

 private:
  /// Half-open coordinate range of chunk `i`.
  std::pair<std::size_t, std::size_t> ChunkRange(std::size_t i) const;

  std::vector<double> Build(std::span<const double> input, bool left) const;

  std::size_t input_dim_;
  std::size_t k_;
  std::size_t output_dim_;
};

}  // namespace ips

#endif  // IPS_EMBED_BINARY_EMBEDDING_H_
