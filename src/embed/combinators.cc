#include "embed/combinators.h"

namespace ips {

std::vector<double> Concat(std::span<const double> x,
                           std::span<const double> y) {
  std::vector<double> out;
  out.reserve(x.size() + y.size());
  out.insert(out.end(), x.begin(), x.end());
  out.insert(out.end(), y.begin(), y.end());
  return out;
}

std::vector<double> Repeat(std::span<const double> x, std::size_t n) {
  std::vector<double> out;
  out.reserve(x.size() * n);
  for (std::size_t i = 0; i < n; ++i) {
    out.insert(out.end(), x.begin(), x.end());
  }
  return out;
}

std::vector<double> Tensor(std::span<const double> x,
                           std::span<const double> y) {
  std::vector<double> out;
  out.reserve(x.size() * y.size());
  for (double xi : x) {
    for (double yj : y) {
      out.push_back(xi * yj);
    }
  }
  return out;
}

std::vector<double> Negate(std::span<const double> x) {
  std::vector<double> out(x.begin(), x.end());
  for (double& v : out) v = -v;
  return out;
}

std::vector<double> AppendConstant(std::span<const double> x, double value,
                                   std::size_t count) {
  std::vector<double> out(x.begin(), x.end());
  out.insert(out.end(), count, value);
  return out;
}

}  // namespace ips
