// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The vector-combinator algebra the paper's gap embeddings are built
// from. With `+` and `*` acting on inner products:
//
//   Concat (x ++ y):   <x1 ++ x2, y1 ++ y2> = <x1, y1> + <x2, y2>
//   Tensor (x (*) y):  <x1 (*) x2, y1 (*) y2> = <x1, y1> * <x2, y2>
//   Repeat (x^n):      <x^n, y^n> = n * <x, y>
//
// (the paper's footnote 4: concatenation and tensoring are dual to + and
// x on the embedded inner products). These identities are verified as
// property tests in tests/embed_test.cc.

#ifndef IPS_EMBED_COMBINATORS_H_
#define IPS_EMBED_COMBINATORS_H_

#include <span>
#include <vector>

namespace ips {

/// x ++ y, dimension |x| + |y|.
std::vector<double> Concat(std::span<const double> x,
                           std::span<const double> y);

/// x repeated n times, dimension n * |x|.
std::vector<double> Repeat(std::span<const double> x, std::size_t n);

/// Flattened outer product x y^T (row-major), dimension |x| * |y|.
std::vector<double> Tensor(std::span<const double> x,
                           std::span<const double> y);

/// Elementwise negation.
std::vector<double> Negate(std::span<const double> x);

/// Appends `count` copies of `value`.
std::vector<double> AppendConstant(std::span<const double> x, double value,
                                   std::size_t count);

}  // namespace ips

#endif  // IPS_EMBED_COMBINATORS_H_
