#include "embed/binary_embedding.h"

#include "embed/combinators.h"
#include "util/check.h"

namespace ips {
namespace {

constexpr std::size_t kDimLimit = 1ULL << 32;

std::size_t BinaryChunkDim(std::size_t d, std::size_t k) {
  // Sum of 2^(chunk size) over k balanced chunks.
  const std::size_t base = d / k;
  const std::size_t extra = d % k;  // first `extra` chunks get base+1.
  IPS_CHECK_LT(base + 1, 63u) << "chunk too large";
  std::size_t dim = 0;
  for (std::size_t i = 0; i < k; ++i) {
    dim += 1ULL << (base + (i < extra ? 1 : 0));
    IPS_CHECK_LT(dim, kDimLimit) << "binary embedding dimension overflow";
  }
  return dim;
}

}  // namespace

BinaryChunkEmbedding::BinaryChunkEmbedding(std::size_t input_dim,
                                           std::size_t k)
    : input_dim_(input_dim), k_(k), output_dim_(BinaryChunkDim(input_dim, k)) {
  IPS_CHECK_GE(k, 1u);
  IPS_CHECK_LE(k, input_dim);
}

std::pair<std::size_t, std::size_t> BinaryChunkEmbedding::ChunkRange(
    std::size_t i) const {
  const std::size_t base = input_dim_ / k_;
  const std::size_t extra = input_dim_ % k_;
  // Chunks 0..extra-1 have size base+1; the rest have size base.
  const std::size_t begin =
      i < extra ? i * (base + 1) : extra * (base + 1) + (i - extra) * base;
  const std::size_t size = base + (i < extra ? 1 : 0);
  return {begin, begin + size};
}

std::size_t BinaryChunkEmbedding::OrthogonalChunks(
    std::span<const double> x, std::span<const double> y) const {
  IPS_CHECK_EQ(x.size(), input_dim_);
  IPS_CHECK_EQ(y.size(), input_dim_);
  std::size_t count = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    const auto [begin, end] = ChunkRange(i);
    bool orthogonal = true;
    for (std::size_t j = begin; j < end; ++j) {
      if (x[j] != 0.0 && y[j] != 0.0) {
        orthogonal = false;
        break;
      }
    }
    if (orthogonal) ++count;
  }
  return count;
}

std::vector<double> BinaryChunkEmbedding::Build(std::span<const double> input,
                                                bool left) const {
  IPS_CHECK_EQ(input.size(), input_dim_);
  for (double v : input) {
    IPS_CHECK(v == 0.0 || v == 1.0) << "gap embeddings take 0/1 inputs";
  }
  std::vector<double> out;
  out.reserve(output_dim_);
  for (std::size_t i = 0; i < k_; ++i) {
    const auto [begin, end] = ChunkRange(i);
    std::vector<double> chunk = {1.0};
    for (std::size_t j = begin; j < end; ++j) {
      // 1 - x y = (1-x, 1)^T (y, 1-y); same tensor order on both sides.
      const double v = input[j];
      const std::vector<double> gadget =
          left ? std::vector<double>{1.0 - v, 1.0}
               : std::vector<double>{v, 1.0 - v};
      chunk = Tensor(chunk, gadget);
    }
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  IPS_CHECK_EQ(out.size(), output_dim_);
  return out;
}

std::vector<double> BinaryChunkEmbedding::EmbedLeft(
    std::span<const double> x) const {
  return Build(x, /*left=*/true);
}

std::vector<double> BinaryChunkEmbedding::EmbedRight(
    std::span<const double> y) const {
  return Build(y, /*left=*/false);
}

}  // namespace ips
