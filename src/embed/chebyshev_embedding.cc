#include "embed/chebyshev_embedding.h"

#include <cmath>

#include "embed/chebyshev.h"
#include "embed/combinators.h"
#include "embed/sign_embedding.h"
#include "util/check.h"

namespace ips {
namespace {

// Dimension recurrence D_q = 2 (4d+2) D_{q-1} + (2d)^2 D_{q-2}, with
// overflow guard (the practical evaluation limit is far below 2^40).
std::size_t ChebyshevDim(std::size_t d, unsigned q) {
  const std::size_t kLimit = 1ULL << 40;
  std::size_t prev2 = 1;           // D_0
  std::size_t prev1 = 4 * d + 2;   // D_1
  if (q == 0) return prev2;
  if (q == 1) return prev1;
  for (unsigned i = 2; i <= q; ++i) {
    const std::size_t term1 = 2 * (4 * d + 2) * prev1;
    const std::size_t term2 = (2 * d) * (2 * d) * prev2;
    IPS_CHECK_LT(term1, kLimit);
    IPS_CHECK_LT(term2, kLimit);
    const std::size_t current = term1 + term2;
    IPS_CHECK_LT(current, kLimit) << "Chebyshev embedding dimension overflow";
    prev2 = prev1;
    prev1 = current;
  }
  return prev1;
}

}  // namespace

ChebyshevGapEmbedding::ChebyshevGapEmbedding(std::size_t input_dim,
                                             unsigned q)
    : input_dim_(input_dim), q_(q), output_dim_(ChebyshevDim(input_dim, q)) {
  IPS_CHECK_GE(input_dim, 2u);
  IPS_CHECK_GE(q, 1u);
}

double ChebyshevGapEmbedding::PredictedInnerProduct(std::size_t t) const {
  const double d = static_cast<double>(input_dim_);
  const double u = 2.0 * d + 2.0 - 4.0 * static_cast<double>(t);
  return ScaledChebyshev(q_, 2.0 * d, u);
}

double ChebyshevGapEmbedding::s() const { return PredictedInnerProduct(0); }

double ChebyshevGapEmbedding::cs() const {
  const double d = static_cast<double>(input_dim_);
  return std::pow(2.0 * d, static_cast<double>(q_));
}

std::vector<double> ChebyshevGapEmbedding::Build(std::span<const double> input,
                                                 bool left) const {
  IPS_CHECK_EQ(input.size(), input_dim_);
  // Base vector: gadget + d+2 appended ones (both sides).
  const std::vector<double> base = AppendConstant(
      left ? SignGadgetLeft(input) : SignGadgetRight(input), 1.0,
      input_dim_ + 2);
  if (q_ == 1) return base;
  const std::size_t b_squared = (2 * input_dim_) * (2 * input_dim_);
  std::vector<double> prev2 = {1.0};  // f_0 / g_0
  std::vector<double> prev1 = base;   // f_1 / g_1
  for (unsigned i = 2; i <= q_; ++i) {
    const std::vector<double> tensored = Tensor(base, prev1);
    std::vector<double> current = Concat(tensored, tensored);
    const std::vector<double> tail =
        left ? Repeat(prev2, b_squared) : Repeat(Negate(prev2), b_squared);
    current = Concat(current, tail);
    prev2 = std::move(prev1);
    prev1 = std::move(current);
  }
  IPS_CHECK_EQ(prev1.size(), output_dim_);
  return prev1;
}

std::vector<double> ChebyshevGapEmbedding::EmbedLeft(
    std::span<const double> x) const {
  return Build(x, /*left=*/true);
}

std::vector<double> ChebyshevGapEmbedding::EmbedRight(
    std::span<const double> y) const {
  return Build(y, /*left=*/false);
}

}  // namespace ips
