#include "embed/chebyshev.h"

namespace ips {

double ChebyshevT(unsigned q, double x) {
  if (q == 0) return 1.0;
  if (q == 1) return x;
  double prev2 = 1.0;
  double prev1 = x;
  for (unsigned i = 2; i <= q; ++i) {
    const double current = 2.0 * x * prev1 - prev2;
    prev2 = prev1;
    prev1 = current;
  }
  return prev1;
}

double ScaledChebyshev(unsigned q, double b, double u) {
  if (q == 0) return 1.0;
  if (q == 1) return u;
  double prev2 = 1.0;
  double prev1 = u;
  const double b_squared = b * b;
  for (unsigned i = 2; i <= q; ++i) {
    const double current = 2.0 * u * prev1 - b_squared * prev2;
    prev2 = prev1;
    prev1 = current;
  }
  return prev1;
}

}  // namespace ips
