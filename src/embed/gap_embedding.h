// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Gap embeddings (Definition 4): a pair of maps (f, g) from {0,1}^d1 into
// A^d2 such that for all x, y in {0,1}^d1
//   |f(x)^T g(y)| >= s   when x^T y = 0  (orthogonal pair), and
//   |f(x)^T g(y)| <= cs  when x^T y >= 1,
// with the absolute values dropped for *signed* embeddings. These expand
// the orthogonal/non-orthogonal gap of OVP instances so that a (cs, s)
// IPS join can detect orthogonality -- the engine of Theorems 1 and 2.

#ifndef IPS_EMBED_GAP_EMBEDDING_H_
#define IPS_EMBED_GAP_EMBEDDING_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ips {

/// Output alphabet of a gap embedding.
enum class EmbeddingDomain {
  kSign,    // {-1, +1}
  kBinary,  // {0, 1}
};

/// Common interface of the three Lemma 3 constructions. Inputs are dense
/// 0/1 vectors of dimension input_dim().
class GapEmbedding {
 public:
  virtual ~GapEmbedding() = default;

  virtual std::string Name() const = 0;
  virtual EmbeddingDomain domain() const = 0;

  /// d1: dimension of the binary inputs.
  virtual std::size_t input_dim() const = 0;

  /// d2': dimension of the embedded vectors.
  virtual std::size_t output_dim() const = 0;

  /// True for signed embeddings (the gap promise has no absolute values).
  virtual bool IsSigned() const = 0;

  /// Threshold guaranteed for orthogonal input pairs.
  virtual double s() const = 0;

  /// Bound guaranteed for non-orthogonal input pairs (cs < s).
  virtual double cs() const = 0;

  /// The approximation factor cs()/s().
  double c() const { return cs() / s(); }

  /// f: embedding of the left (data, P-side) vector.
  virtual std::vector<double> EmbedLeft(std::span<const double> x) const = 0;

  /// g: embedding of the right (query, Q-side) vector.
  virtual std::vector<double> EmbedRight(std::span<const double> y) const = 0;
};

}  // namespace ips

#endif  // IPS_EMBED_GAP_EMBEDDING_H_
