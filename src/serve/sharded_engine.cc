#include "serve/sharded_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <utility>

#include "linalg/validate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace ips {
namespace {

void SleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

// Hits the generic chaos site and then its per-shard variant
// ("<site>/<shard index>"), so tests can fail every shard or target one
// shard deterministically.
Status HitShardSite(const char* site, std::size_t shard_index) {
  IPS_RETURN_IF_ERROR(Failpoints::Hit(site));
  const std::string scoped =
      std::string(site) + "/" + std::to_string(shard_index);
  return Failpoints::Hit(scoped.c_str());
}

// One shard's contribution to one logical query during the gather.
struct ShardAnswer {
  const QueryResult* result = nullptr;  // null when the shard was lost
  const Status* error = nullptr;        // set when the shard was lost
  bool hedged = false;
};

// Merges one logical query's per-shard answers under the deterministic
// gather ordering (score descending, then *global* row index
// ascending), fills the shards_* accounting, and flags the result
// partial when shards were lost. Fails only when every shard failed: a
// uniform failure keeps its Status, mixed failures collapse to a
// kUnavailable summary.
StatusOr<QueryResult> MergeShardAnswers(
    const std::vector<ShardAnswer>& answers,
    const std::vector<std::size_t>& offsets, std::size_t k,
    std::size_t retries_total) {
  QueryResult merged;
  std::vector<SearchMatch> pool;
  std::vector<const Status*> errors;
  std::size_t ok = 0;
  std::size_t hedged = 0;
  for (std::size_t i = 0; i < answers.size(); ++i) {
    const ShardAnswer& answer = answers[i];
    if (answer.result == nullptr) {
      errors.push_back(answer.error);
      continue;
    }
    if (answer.hedged) ++hedged;
    if (ok == 0) {
      merged.stats.algorithm = answer.result->stats.algorithm;
      merged.plan = answer.result->plan;
    }
    ++ok;
    for (const SearchMatch& match : answer.result->matches) {
      pool.push_back({match.index + offsets[i], match.value});
    }
    merged.stats.candidates += answer.result->stats.candidates;
    merged.stats.dot_products += answer.result->stats.dot_products;
    for (const auto& [key, value] : answer.result->stats.metrics.items()) {
      merged.stats.metrics.Add(key, value);
    }
  }
  if (ok == 0) {
    bool uniform = true;
    for (const Status* error : errors) {
      if (error->code() != errors.front()->code()) uniform = false;
    }
    if (uniform) return *errors.front();
    return Status::Unavailable("all " + std::to_string(answers.size()) +
                               " shards failed; first: " +
                               errors.front()->ToString());
  }
  std::sort(pool.begin(), pool.end(),
            [](const SearchMatch& a, const SearchMatch& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.index < b.index;
            });
  if (pool.size() > k) pool.resize(k);
  merged.matches = std::move(pool);
  merged.stats.shards_total = answers.size();
  merged.stats.shards_ok = ok;
  merged.stats.shards_failed = answers.size() - ok;
  merged.stats.shards_hedged = hedged;
  merged.partial = merged.stats.shards_failed > 0;
  if (retries_total > 0) {
    merged.stats.metrics.Add("serve.shard.retries", retries_total);
  }
  return merged;
}

// Post-gather trace children: shard calls run concurrently, so they
// cannot write the (single-writer) Trace; the coordinator records one
// already-measured child per shard while the root span is still open.
template <typename Outcome>
void RecordShardSpans(Trace* trace, const std::vector<Outcome>& calls) {
  if (trace == nullptr) return;
  for (std::size_t i = 0; i < calls.size(); ++i) {
    const std::size_t span = trace->RecordSpan(
        "serve/shard/" + std::to_string(i), calls[i].seconds);
    trace->AddCount(span, "ok", calls[i].result.ok() ? 1 : 0);
    if (calls[i].hedged) trace->AddCount(span, "hedged", 1);
    if (calls[i].skipped) trace->AddCount(span, "skipped", 1);
    if (calls[i].retries > 0) {
      trace->AddCount(span, "retries", calls[i].retries);
    }
  }
}

}  // namespace

bool IsRetryableShardStatus(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

ShardedEngine::ShardedEngine(ShardedEngineOptions options, std::size_t dim)
    : options_(options),
      dim_(dim),
      pool_(options.num_threads != 0 ? options.num_threads
                                     : options.num_shards) {}

Status ShardedEngine::ValidateOptions(const ShardedEngineOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("sharded engine num_shards must be >= 1");
  }
  if (!(options.shard_budget_fraction > 0.0) ||
      options.shard_budget_fraction > 1.0) {
    return Status::InvalidArgument(
        "sharded engine shard_budget_fraction must be in (0, 1]");
  }
  if (options.retry.max_attempts < 1) {
    return Status::InvalidArgument(
        "sharded engine retry.max_attempts must be >= 1");
  }
  if (options.retry.backoff_seconds < 0.0 ||
      options.retry.backoff_multiplier < 1.0) {
    return Status::InvalidArgument(
        "sharded engine retry backoff_seconds must be >= 0 with "
        "backoff_multiplier >= 1");
  }
  if (options.breaker.failure_threshold < 1 ||
      options.breaker.open_seconds < 0.0) {
    return Status::InvalidArgument(
        "sharded engine breaker needs failure_threshold >= 1 and "
        "open_seconds >= 0");
  }
  if (options.hedge.latency_factor <= 0.0 ||
      options.hedge.chaos_slow_seconds < 0.0) {
    return Status::InvalidArgument(
        "sharded engine hedge needs latency_factor > 0 and "
        "chaos_slow_seconds >= 0");
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    Matrix data, ShardedEngineOptions options) {
  IPS_RETURN_IF_ERROR(ValidateNonEmpty(data, "sharded engine data"));
  IPS_RETURN_IF_ERROR(ValidateFinite(data, "sharded engine data"));
  IPS_RETURN_IF_ERROR(ValidateOptions(options));
  if (options.num_shards > data.rows()) {
    return Status::InvalidArgument(
        "sharded engine num_shards (" + std::to_string(options.num_shards) +
        ") exceeds data rows (" + std::to_string(data.rows()) + ")");
  }

  std::unique_ptr<ShardedEngine> sharded(
      new ShardedEngine(options, data.cols()));
  const std::size_t rows = data.rows();
  const std::size_t base = rows / options.num_shards;
  const std::size_t remainder = rows % options.num_shards;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < options.num_shards; ++i) {
    if (Failpoints::AnyArmed()) {
      IPS_RETURN_IF_ERROR(HitShardSite("serve/shard/build", i));
    }
    const std::size_t shard_rows = base + (i < remainder ? 1 : 0);
    Matrix slice(shard_rows, data.cols());
    for (std::size_t r = 0; r < shard_rows; ++r) {
      const auto src = data.Row(offset + r);
      std::copy(src.begin(), src.end(), slice.Row(r).begin());
    }
    // Per-shard seeds stay decorrelated so shards do not share index
    // randomness (LSH hyperplanes, tree pivots).
    EngineOptions engine_options = options.engine;
    engine_options.seed = options.engine.seed + i;
    auto engine = Engine::Create(std::move(slice), engine_options);
    if (!engine.ok()) {
      return Status(engine.status().code(),
                    "shard " + std::to_string(i) +
                        " build failed: " + engine.status().message());
    }
    auto shard = std::make_unique<Shard>();
    shard->engine = std::move(engine).value();
    shard->offset = offset;
    sharded->shards_.push_back(std::move(shard));
    offset += shard_rows;
  }
  return sharded;
}

StatusOr<QueryResult> ShardedEngine::Query(const Request& request) const {
  static Counter* const requests =
      MetricsRegistry::Global().GetCounter("serve.shard.queries");
  static Counter* const partial_count =
      MetricsRegistry::Global().GetCounter("serve.shard.partial");
  static Counter* const traced =
      MetricsRegistry::Global().GetCounter("serve.shard.traced");
  static Histogram* const exec_seconds =
      MetricsRegistry::Global().GetHistogram("serve.shard.exec_seconds");
  static Gauge* const open_breakers =
      MetricsRegistry::Global().GetGauge("serve.shard.open_breakers");

  const std::span<const double> query = request.query;
  const QueryOptions& options = request.options;
  IPS_RETURN_IF_ERROR(ValidateQueryOptions(options));
  IPS_RETURN_IF_ERROR(ValidateRequestContext(request.context));
  IPS_RETURN_IF_ERROR(ValidateVectorDims(query, dim_, "sharded query"));
  IPS_RETURN_IF_ERROR(ValidateVectorFinite(query, "sharded query"));
  requests->Increment();

  std::unique_ptr<Trace> trace;
  if (options.trace) trace = std::make_unique<Trace>("serve.sharded");

  WallTimer timer;
  const std::size_t num = shards_.size();
  StatusOr<QueryResult> outcome = [&]() -> StatusOr<QueryResult> {
    TraceSpan root(trace.get(), "serve/sharded_query");
    std::vector<Outcome<QueryResult>> calls(num);
    IPS_RETURN_IF_ERROR(ParallelForStatus(
        &pool_, num, [&](std::size_t begin, std::size_t end) -> Status {
          for (std::size_t i = begin; i < end; ++i) {
            calls[i] = CallShard(i, query, options, request.context);
          }
          return Status::Ok();
        }));
    RecordShardSpans(trace.get(), calls);

    std::vector<ShardAnswer> answers(num);
    std::vector<std::size_t> offsets(num);
    std::size_t retries_total = 0;
    for (std::size_t i = 0; i < num; ++i) {
      offsets[i] = shards_[i]->offset;
      retries_total += calls[i].retries;
      if (calls[i].result.ok()) {
        answers[i].result = &calls[i].result.value();
        answers[i].hedged = calls[i].hedged;
      } else {
        answers[i].error = &calls[i].result.status();
      }
    }
    return MergeShardAnswers(answers, offsets, options.k, retries_total);
  }();
  open_breakers->Set(OpenBreakerCount());
  IPS_RETURN_IF_ERROR(outcome.status());
  QueryResult result = std::move(outcome).value();
  result.stats.exec_seconds = timer.Seconds();
  result.stats.deadline_met =
      result.stats.exec_seconds <= request.context.deadline_seconds;
  exec_seconds->Observe(result.stats.exec_seconds);
  if (result.partial) partial_count->Increment();
  if (trace != nullptr) {
    traced->Increment();
    std::shared_ptr<const Trace> shared(std::move(trace));
    TraceRing::Global().Record(shared);
    result.stats.trace = std::move(shared);
  }
  return result;
}

StatusOr<std::vector<QueryResult>> ShardedEngine::BatchQuery(
    const Matrix& queries, const QueryOptions& options,
    const RequestContext& context) const {
  static Counter* const batch_requests =
      MetricsRegistry::Global().GetCounter("serve.shard.batch.requests");
  static Counter* const batch_queries =
      MetricsRegistry::Global().GetCounter("serve.shard.batch.queries");
  static Counter* const partial_count =
      MetricsRegistry::Global().GetCounter("serve.shard.partial");
  static Counter* const traced =
      MetricsRegistry::Global().GetCounter("serve.shard.traced");
  static Histogram* const batch_exec = MetricsRegistry::Global().GetHistogram(
      "serve.shard.batch.exec_seconds");
  static Gauge* const open_breakers =
      MetricsRegistry::Global().GetGauge("serve.shard.open_breakers");

  IPS_RETURN_IF_ERROR(ValidateQueryOptions(options));
  IPS_RETURN_IF_ERROR(ValidateRequestContext(context));
  const std::size_t m = queries.rows();
  if (m == 0) return std::vector<QueryResult>();
  IPS_RETURN_IF_ERROR(
      ValidateDims(queries, dim_, "sharded batch queries"));
  IPS_RETURN_IF_ERROR(ValidateFinite(queries, "sharded batch queries"));
  batch_requests->Increment();
  batch_queries->Add(m);

  std::unique_ptr<Trace> trace;
  if (options.trace) trace = std::make_unique<Trace>("serve.sharded.batch");

  WallTimer timer;
  const std::size_t num = shards_.size();
  StatusOr<std::vector<QueryResult>> outcome =
      [&]() -> StatusOr<std::vector<QueryResult>> {
    TraceSpan root(trace.get(), "serve/sharded_batch_query");
    root.AddCount("batch_queries", m);
    std::vector<Outcome<std::vector<QueryResult>>> calls(num);
    IPS_RETURN_IF_ERROR(ParallelForStatus(
        &pool_, num, [&](std::size_t begin, std::size_t end) -> Status {
          for (std::size_t i = begin; i < end; ++i) {
            calls[i] = CallShardBatch(i, queries, options, context);
          }
          return Status::Ok();
        }));
    RecordShardSpans(trace.get(), calls);

    // A shard that answered with the wrong member count is a broken
    // Engine contract (results come back in row order); treat it as a
    // lost shard rather than misaligning the gather.
    std::vector<Status> degraded(num, Status::Ok());
    std::size_t retries_total = 0;
    std::vector<std::size_t> offsets(num);
    for (std::size_t i = 0; i < num; ++i) {
      offsets[i] = shards_[i]->offset;
      retries_total += calls[i].retries;
      if (calls[i].result.ok() && calls[i].result.value().size() != m) {
        degraded[i] = Status::Internal(
            "shard " + std::to_string(i) + " returned " +
            std::to_string(calls[i].result.value().size()) + " of " +
            std::to_string(m) + " batch answers");
      }
    }

    std::vector<QueryResult> merged;
    merged.reserve(m);
    for (std::size_t q = 0; q < m; ++q) {
      std::vector<ShardAnswer> answers(num);
      for (std::size_t i = 0; i < num; ++i) {
        if (!calls[i].result.ok()) {
          answers[i].error = &calls[i].result.status();
        } else if (!degraded[i].ok()) {
          answers[i].error = &degraded[i];
        } else {
          answers[i].result = &calls[i].result.value()[q];
          answers[i].hedged = calls[i].hedged;
        }
      }
      // The batch's retry total is a call-level fact; it is attached to
      // the first member only so Merge()-ing the batch's stats counts
      // each retry once.
      auto one = MergeShardAnswers(answers, offsets, options.k,
                                   q == 0 ? retries_total : 0);
      IPS_RETURN_IF_ERROR(one.status());
      merged.push_back(std::move(one).value());
    }
    return merged;
  }();
  open_breakers->Set(OpenBreakerCount());
  IPS_RETURN_IF_ERROR(outcome.status());
  std::vector<QueryResult> results = std::move(outcome).value();
  const double total_seconds = timer.Seconds();
  const double amortized = total_seconds / static_cast<double>(m);
  std::size_t partial_members = 0;
  for (QueryResult& result : results) {
    result.stats.exec_seconds = amortized;
    result.stats.deadline_met = amortized <= context.deadline_seconds;
    if (result.partial) ++partial_members;
  }
  if (partial_members > 0) partial_count->Add(partial_members);
  batch_exec->Observe(total_seconds);
  if (trace != nullptr) {
    traced->Increment();
    TraceRing::Global().Record(
        std::shared_ptr<const Trace>(std::move(trace)));
  }
  return results;
}

Status ShardedEngine::EnsureIndex(QueryAlgo algo) const {
  for (const auto& shard : shards_) {
    IPS_RETURN_IF_ERROR(shard->engine->EnsureIndex(algo));
  }
  return Status::Ok();
}

std::size_t ShardedEngine::shard_offset(std::size_t i) const {
  return shards_.at(i)->offset;
}

const Engine& ShardedEngine::shard(std::size_t i) const {
  return *shards_.at(i)->engine;
}

ShardedEngine::BreakerState ShardedEngine::breaker_state(
    std::size_t i) const {
  Shard& shard = *shards_.at(i);
  MutexLock lock(shard.mutex);
  if (!shard.open) return BreakerState::kClosed;
  if (shard.probing ||
      Clock::now() - shard.opened_at >=
          std::chrono::duration<double>(options_.breaker.open_seconds)) {
    return BreakerState::kHalfOpen;
  }
  return BreakerState::kOpen;
}

ShardedEngine::Outcome<QueryResult> ShardedEngine::CallShard(
    std::size_t shard_index, std::span<const double> query,
    const QueryOptions& options, const RequestContext& context) const {
  const Engine& engine = *shards_[shard_index]->engine;
  return CallShardImpl<QueryResult>(
      shard_index, options, context, /*queries_per_call=*/1,
      [&](const QueryOptions& shard_options,
          const RequestContext& shard_context) {
        return engine.Query(  // ipslint:allow(shard-call)
            Request{query, shard_options, shard_context});
      });
}

ShardedEngine::Outcome<std::vector<QueryResult>> ShardedEngine::CallShardBatch(
    std::size_t shard_index, const Matrix& queries,
    const QueryOptions& options, const RequestContext& context) const {
  const Engine& engine = *shards_[shard_index]->engine;
  return CallShardImpl<std::vector<QueryResult>>(
      shard_index, options, context, /*queries_per_call=*/queries.rows(),
      [&](const QueryOptions& shard_options,
          const RequestContext& shard_context) {
        return engine.BatchQuery(  // ipslint:allow(shard-call)
            queries, shard_options, shard_context);
      });
}

template <typename T, typename Invoke>
ShardedEngine::Outcome<T> ShardedEngine::CallShardImpl(
    std::size_t shard_index, const QueryOptions& options,
    const RequestContext& context, std::size_t queries_per_call,
    const Invoke& invoke) const {
  static Counter* const calls =
      MetricsRegistry::Global().GetCounter("serve.shard.calls");
  static Counter* const failed =
      MetricsRegistry::Global().GetCounter("serve.shard.failed");
  static Counter* const skipped =
      MetricsRegistry::Global().GetCounter("serve.shard.skipped");
  static Counter* const retried =
      MetricsRegistry::Global().GetCounter("serve.shard.retries");
  static Counter* const hedge_count =
      MetricsRegistry::Global().GetCounter("serve.shard.hedged");
  static Histogram* const call_seconds =
      MetricsRegistry::Global().GetHistogram("serve.shard.call_seconds");

  Shard& shard = *shards_[shard_index];
  Outcome<T> outcome;
  WallTimer timer;

  const Admission admission = Admit(shard);
  if (admission == Admission::kSkip) {
    skipped->Increment();
    outcome.skipped = true;
    outcome.result = Status::Unavailable(
        "shard " + std::to_string(shard_index) +
        " ejected by open circuit breaker");
    outcome.seconds = timer.Seconds();
    return outcome;
  }
  calls->Increment();

  // Shard calls never trace: the (single-writer) Trace belongs to the
  // coordinator, which records per-shard children post-gather. The
  // context is inherited (tenant, priority) with the deadline cut to
  // this shard's budget.
  QueryOptions shard_options = options;
  shard_options.trace = false;
  RequestContext shard_context = context;
  double budget = std::numeric_limits<double>::infinity();
  if (std::isfinite(context.deadline_seconds)) {
    budget = context.deadline_seconds * options_.shard_budget_fraction;
    shard_context.deadline_seconds = budget;
  }

  // Hedge prediction: regular serves only (a breaker probe must
  // exercise the primary path it is probing), only under a finite
  // budget, and never against an explicitly forced path.
  bool hedge = false;
  if (admission == Admission::kServe && options_.hedge.enabled &&
      std::isfinite(budget) && !options.force_algorithm.has_value()) {
    hedge = TrackedP99(shard) > options_.hedge.latency_factor * budget;
  }
  if (hedge) {
    outcome.hedged = true;
    hedge_count->Increment();
    shard_options.force_algorithm = QueryAlgo::kBruteForce;
  }

  const std::size_t max_attempts = hedge ? 1 : options_.retry.max_attempts;
  Status error = Status::Ok();
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      const double backoff =
          options_.retry.backoff_seconds *
          std::pow(options_.retry.backoff_multiplier,
                   static_cast<double>(attempt - 1));
      // Never sleep past the shard's deadline budget.
      if (timer.Seconds() + backoff >= budget) break;
      SleepSeconds(backoff);
      ++outcome.retries;
      retried->Increment();
    }
    Status injected = Status::Ok();
    if (Failpoints::AnyArmed()) {
      injected = HitShardSite("serve/shard/query", shard_index);
      if (injected.ok() && !hedge) {
        // The injected straggler stalls the primary path only — the
        // hedge fallback is the detour around exactly this stall.
        const Status slow = HitShardSite("serve/shard/slow", shard_index);
        if (!slow.ok()) SleepSeconds(options_.hedge.chaos_slow_seconds);
      }
    }
    if (injected.ok()) {
      StatusOr<T> answer = invoke(shard_options, shard_context);
      if (answer.ok()) {
        outcome.seconds = timer.Seconds();
        call_seconds->Observe(outcome.seconds);
        OnShardSuccess(shard,
                       outcome.seconds /
                           static_cast<double>(std::max<std::size_t>(
                               1, queries_per_call)),
                       hedge);
        outcome.result = std::move(answer);
        return outcome;
      }
      error = answer.status();
    } else {
      error = std::move(injected);
    }
    if (!IsRetryableShardStatus(error.code())) break;
  }
  OnShardFailure(shard);
  failed->Increment();
  outcome.seconds = timer.Seconds();
  call_seconds->Observe(outcome.seconds);
  outcome.result = std::move(error);
  return outcome;
}

ShardedEngine::Admission ShardedEngine::Admit(Shard& shard) const {
  MutexLock lock(shard.mutex);
  if (!shard.open) return Admission::kServe;
  if (!shard.probing &&
      Clock::now() - shard.opened_at >=
          std::chrono::duration<double>(options_.breaker.open_seconds)) {
    shard.probing = true;
    return Admission::kProbe;
  }
  return Admission::kSkip;
}

void ShardedEngine::OnShardSuccess(Shard& shard, double seconds_per_query,
                                   bool hedged) const {
  static Counter* const recoveries = MetricsRegistry::Global().GetCounter(
      "serve.shard.breaker.recoveries");
  bool recovered = false;
  {
    MutexLock lock(shard.mutex);
    recovered = shard.open;
    shard.open = false;
    shard.probing = false;
    shard.consecutive_failures = 0;
    // The hedge fallback's latency says nothing about the primary
    // path, so only primary successes feed the predictor.
    if (!hedged) {
      shard.latency[shard.latency_count % kLatencyWindow] =
          seconds_per_query;
      ++shard.latency_count;
    }
  }
  // Outside the breaker lock on purpose: metrics tolerate a racing
  // reader, and the shard.mutex -> Counter::mutex_ order (header) stays
  // a declaration, not a hot-path dependency.
  if (recovered) recoveries->Increment();
}

void ShardedEngine::OnShardFailure(Shard& shard) const {
  static Counter* const trips =
      MetricsRegistry::Global().GetCounter("serve.shard.breaker.trips");
  bool tripped = false;
  {
    MutexLock lock(shard.mutex);
    shard.probing = false;
    ++shard.consecutive_failures;
    if (shard.open) {
      // A failed half-open probe restarts the cooldown.
      shard.opened_at = Clock::now();
    } else if (shard.consecutive_failures >=
               options_.breaker.failure_threshold) {
      shard.open = true;
      shard.opened_at = Clock::now();
      tripped = true;
    }
  }
  if (tripped) trips->Increment();
}

double ShardedEngine::TrackedP99(const Shard& shard) const {
  std::array<double, kLatencyWindow> window;
  std::size_t n = 0;
  {
    MutexLock lock(shard.mutex);
    if (shard.latency_count <
        std::max<std::size_t>(1, options_.hedge.min_samples)) {
      return 0.0;
    }
    n = std::min(shard.latency_count, kLatencyWindow);
    std::copy(shard.latency.begin(), shard.latency.begin() + n,
              window.begin());
  }
  std::sort(window.begin(), window.begin() + n);
  const auto rank = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(n)));
  return window[std::min(n, std::max<std::size_t>(1, rank)) - 1];
}

double ShardedEngine::OpenBreakerCount() const {
  double open = 0.0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    if (shard->open) open += 1.0;
  }
  return open;
}

}  // namespace ips
