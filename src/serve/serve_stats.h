// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Thread-safe aggregation of per-request accounting for the online
// serving engine: turns a stream of core::QueryStats into the
// operational summary (per-algorithm selection counts, latency
// percentiles, work totals) surfaced by examples and benchmarks.
//
// The per-request types themselves now live in core/query.h: the old
// serve-private ServeAlgo / ServeStats are aliases of core::QueryAlgo /
// core::QueryStats, kept for one PR so existing callers migrate
// incrementally.

#ifndef IPS_SERVE_SERVE_STATS_H_
#define IPS_SERVE_SERVE_STATS_H_

#include <array>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/query.h"
#include "util/stats.h"
#include "util/table.h"

namespace ips {

/// Deprecated aliases (one-PR migration shims): the four answer paths
/// and the per-request accounting are now the unified core types.
using ServeAlgo = QueryAlgo;
using ServeStats = QueryStats;

inline constexpr std::size_t kNumServeAlgos = kNumQueryAlgos;

/// Short stable name of `algo` ("brute", "tree", "lsh", "sketch").
inline std::string_view ServeAlgoName(ServeAlgo algo) {
  return QueryAlgoName(algo);
}

/// Thread-safe aggregation of QueryStats across requests.
class ServeMetrics {
 public:
  /// Folds one completed request into the aggregate.
  void Record(const QueryStats& stats);

  /// Requests recorded so far.
  std::size_t TotalRequests() const;

  /// Requests answered by `algo`.
  std::size_t SelectionCount(QueryAlgo algo) const;

  /// Requests that met their deadline.
  std::size_t DeadlineMetCount() const;

  /// Total exact inner products across all recorded requests.
  std::size_t TotalDotProducts() const;

  /// Batch summary of end-to-end latency (queue + exec) in milliseconds.
  Summary LatencySummaryMillis() const;

  /// Per-algorithm table: requests, mean candidates, mean dots, mean
  /// latency — the operational dashboard of a serving run.
  TablePrinter ToTable() const;

 private:
  struct PerAlgo {
    std::size_t requests = 0;
    std::size_t candidates = 0;
    std::size_t dot_products = 0;
    OnlineStats latency_ms;
  };

  mutable std::mutex mutex_;
  std::array<PerAlgo, kNumQueryAlgos> per_algo_;
  std::vector<double> latencies_ms_;
  std::size_t deadline_met_ = 0;
};

}  // namespace ips

#endif  // IPS_SERVE_SERVE_STATS_H_
