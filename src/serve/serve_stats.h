// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Per-request accounting for the online serving engine, plus a
// thread-safe aggregator that turns a stream of requests into the
// operational summary (per-algorithm selection counts, latency
// percentiles, work totals) surfaced by examples and benchmarks.

#ifndef IPS_SERVE_SERVE_STATS_H_
#define IPS_SERVE_SERVE_STATS_H_

#include <array>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.h"
#include "util/table.h"

namespace ips {

/// The four answer paths the serving engine can dispatch a request to.
enum class ServeAlgo {
  kBruteForce = 0,
  kBallTree = 1,
  kLsh = 2,
  kSketch = 3,
};

inline constexpr std::size_t kNumServeAlgos = 4;

/// Short stable name of `algo` ("brute", "tree", "lsh", "sketch").
std::string_view ServeAlgoName(ServeAlgo algo);

/// What one request cost and how it was answered.
struct ServeStats {
  ServeAlgo algorithm = ServeAlgo::kBruteForce;
  /// Candidate data points whose exact score was computed.
  std::size_t candidates = 0;
  /// Exact inner products evaluated (dot-product-equivalent work for the
  /// sketch path, which spends its time on sketch-row products).
  std::size_t dot_products = 0;
  /// Engine execution time (planning + search), excluding queue time.
  double exec_seconds = 0.0;
  /// Time spent queued in the batch scheduler; 0 for direct engine calls.
  double queue_seconds = 0.0;
  /// False when the request finished after its deadline (scheduler only).
  bool deadline_met = true;

  double TotalSeconds() const { return exec_seconds + queue_seconds; }
};

/// Thread-safe aggregation of ServeStats across requests.
class ServeMetrics {
 public:
  /// Folds one completed request into the aggregate.
  void Record(const ServeStats& stats);

  /// Requests recorded so far.
  std::size_t TotalRequests() const;

  /// Requests answered by `algo`.
  std::size_t SelectionCount(ServeAlgo algo) const;

  /// Requests that met their deadline.
  std::size_t DeadlineMetCount() const;

  /// Total exact inner products across all recorded requests.
  std::size_t TotalDotProducts() const;

  /// Batch summary of end-to-end latency (queue + exec) in milliseconds.
  Summary LatencySummaryMillis() const;

  /// Per-algorithm table: requests, mean candidates, mean dots, mean
  /// latency — the operational dashboard of a serving run.
  TablePrinter ToTable() const;

 private:
  struct PerAlgo {
    std::size_t requests = 0;
    std::size_t candidates = 0;
    std::size_t dot_products = 0;
    OnlineStats latency_ms;
  };

  mutable std::mutex mutex_;
  std::array<PerAlgo, kNumServeAlgos> per_algo_;
  std::vector<double> latencies_ms_;
  std::size_t deadline_met_ = 0;
};

}  // namespace ips

#endif  // IPS_SERVE_SERVE_STATS_H_
