// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Thread-safe aggregation of per-request accounting for the online
// serving engine: turns a stream of core::QueryStats into the
// operational summary (per-algorithm selection counts, latency
// percentiles, work totals) surfaced by examples and benchmarks. The
// per-request types themselves live in core/query.h.

#ifndef IPS_SERVE_SERVE_STATS_H_
#define IPS_SERVE_SERVE_STATS_H_

#include <array>
#include <cstddef>
#include <vector>

#include "core/query.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_annotations.h"

namespace ips {

/// Thread-safe aggregation of QueryStats across requests.
class ServeMetrics {
 public:
  /// Folds one completed request into the aggregate.
  void Record(const QueryStats& stats) IPS_EXCLUDES(mutex_);

  /// Folds one completed request into the aggregate, including its
  /// degradation accounting (QueryResult::partial and the shard
  /// counters) — the entry point for scatter-gather traffic.
  void RecordResult(const QueryResult& result) IPS_EXCLUDES(mutex_);

  /// Requests recorded so far.
  std::size_t TotalRequests() const IPS_EXCLUDES(mutex_);

  /// Requests answered by `algo`.
  std::size_t SelectionCount(QueryAlgo algo) const IPS_EXCLUDES(mutex_);

  /// Requests that met their deadline.
  std::size_t DeadlineMetCount() const IPS_EXCLUDES(mutex_);

  /// Requests answered partially (degraded scatter-gather answers,
  /// counted separately from clean answers in SLO accounting).
  std::size_t PartialCount() const IPS_EXCLUDES(mutex_);

  /// Shard calls lost (failed / breaker-skipped) across all recorded
  /// requests.
  std::size_t ShardsFailedTotal() const IPS_EXCLUDES(mutex_);

  /// Shard calls answered through the hedge fallback.
  std::size_t ShardsHedgedTotal() const IPS_EXCLUDES(mutex_);

  /// Total exact inner products across all recorded requests.
  std::size_t TotalDotProducts() const IPS_EXCLUDES(mutex_);

  /// Batch summary of end-to-end latency (queue + exec) in milliseconds.
  Summary LatencySummaryMillis() const IPS_EXCLUDES(mutex_);

  /// Per-algorithm table: requests, mean candidates, mean dots, mean
  /// latency — the operational dashboard of a serving run.
  TablePrinter ToTable() const IPS_EXCLUDES(mutex_);

 private:
  struct PerAlgo {
    std::size_t requests = 0;
    std::size_t candidates = 0;
    std::size_t dot_products = 0;
    OnlineStats latency_ms;
  };

  mutable Mutex mutex_;
  std::array<PerAlgo, kNumQueryAlgos> per_algo_ IPS_GUARDED_BY(mutex_);
  std::vector<double> latencies_ms_ IPS_GUARDED_BY(mutex_);
  std::size_t deadline_met_ IPS_GUARDED_BY(mutex_) = 0;
  std::size_t partial_ IPS_GUARDED_BY(mutex_) = 0;
  std::size_t shards_failed_ IPS_GUARDED_BY(mutex_) = 0;
  std::size_t shards_hedged_ IPS_GUARDED_BY(mutex_) = 0;
};

}  // namespace ips

#endif  // IPS_SERVE_SERVE_STATS_H_
