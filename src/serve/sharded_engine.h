// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Scatter-gather serving across S shards with failure isolation (see
// DESIGN.md §11). ShardedEngine partitions the dataset into contiguous
// row ranges, stands up one Engine per shard, fans Query/BatchQuery out
// over a private thread pool, and merges the per-shard top-k lists
// under the project-wide deterministic ordering (score descending, then
// *global* row index ascending).
//
// The robustness layer is the point — one slow or failing shard must
// not take down the query:
//
//  * Per-shard deadline budgets: each shard call gets
//    `deadline * shard_budget_fraction` of the request's deadline; the
//    retry loop never sleeps past its budget.
//  * Bounded retry with exponential backoff on *transient* failures.
//    Only kUnavailable is retryable (IsRetryableShardStatus);
//    kResourceExhausted is deliberate shedding and is never retried.
//  * Hedged requests: every shard tracks a ring of recent primary-path
//    latencies. When the tracked p99 predicts a deadline-budget miss,
//    the coordinator skips the planner path and fires the cheap
//    fallback (a forced brute scan of the shard slice — fixed,
//    predictable cost, no index build or planner variance) and the
//    result is counted in QueryStats::shards_hedged.
//  * Per-shard circuit breaker: `failure_threshold` consecutive
//    failures trip the breaker and eject the shard from the scatter
//    set; after `open_seconds` one half-open probe is let through —
//    success closes the breaker, failure re-opens it.
//  * Graceful degradation: a query that loses shards still returns the
//    merged top-k of the survivors, flagged QueryResult::partial with
//    shards_total/ok/failed/hedged accounting in its stats. Only when
//    *every* shard fails does Query return a Status.
//
// Observability: "serve.shard.*" registry metrics, and (with
// options.trace) one child span per shard under the
// "serve/sharded_query" root, annotated with ok/hedged/retries.
//
// Failpoints: "serve/shard/build" (Create), "serve/shard/query"
// (shard call, fails it), "serve/shard/slow" (shard call, stalls it by
// hedge.chaos_slow_seconds). Each also has a per-shard variant
// "<site>/<shard index>" so chaos tests can target one shard
// deterministically.

#ifndef IPS_SERVE_SHARDED_ENGINE_H_
#define IPS_SERVE_SHARDED_ENGINE_H_

#include <array>
#include <chrono>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/query.h"
#include "linalg/matrix.h"
#include "serve/engine.h"
#include "serve/query_engine.h"
#include "serve/request.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace ips {

/// True for status codes a shard call may retry (transient transport /
/// shard faults). kResourceExhausted is deliberate shedding and
/// kDeadlineExceeded is already late — neither is retried.
bool IsRetryableShardStatus(StatusCode code);

/// Bounded retry-with-backoff for transient shard failures.
struct ShardRetryPolicy {
  /// Total attempts per shard call, including the first (>= 1).
  std::size_t max_attempts = 3;
  /// Sleep before the first retry; doubles (backoff_multiplier) after.
  double backoff_seconds = 0.0002;
  double backoff_multiplier = 2.0;
};

/// Consecutive-failure circuit breaker, one per shard.
struct ShardBreakerOptions {
  /// Consecutive shard-call failures that trip the breaker (>= 1).
  std::size_t failure_threshold = 3;
  /// Cooldown after tripping before one half-open probe is admitted.
  double open_seconds = 0.1;
};

/// Straggler hedging: predict a deadline-budget miss from tracked
/// latency and answer through the cheap fallback instead.
struct ShardHedgeOptions {
  bool enabled = true;
  /// Primary-path latency samples required before predicting.
  std::size_t min_samples = 8;
  /// Hedge when tracked p99 > latency_factor * shard deadline budget.
  double latency_factor = 0.5;
  /// Stall injected when the "serve/shard/slow" failpoint fires — a
  /// chaos-testing knob (simulated straggler), not a serving control.
  double chaos_slow_seconds = 0.02;
};

/// ShardedEngine construction knobs.
struct ShardedEngineOptions {
  /// Shards the dataset is partitioned into (1 <= S <= rows).
  std::size_t num_shards = 4;
  /// Fan-out pool threads (0 = one per shard).
  std::size_t num_threads = 0;
  /// Per-shard engine knobs; each shard's seed is offset by its index.
  EngineOptions engine;
  /// Fraction of the request's RequestContext::deadline_seconds each
  /// shard call gets as its own budget, in (0, 1].
  double shard_budget_fraction = 0.9;
  ShardRetryPolicy retry;
  ShardBreakerOptions breaker;
  ShardHedgeOptions hedge;
};

/// Scatter-gather engine over S shard Engines. Create once, serve
/// concurrently (Query/BatchQuery are thread-safe).
class ShardedEngine : public QueryEngine {
 public:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  /// Validates the options, partitions `data` into contiguous balanced
  /// row ranges, and builds one calibrated Engine per shard.
  /// Failpoint: "serve/shard/build" (and "serve/shard/build/<i>").
  [[nodiscard]] static StatusOr<std::unique_ptr<ShardedEngine>> Create(
      Matrix data, ShardedEngineOptions options = {});

  /// Persists the shard manifest (`<dir>/sharded.ips`: shard count,
  /// dimension, partition offsets) and every shard engine's own
  /// snapshot (`<dir>/shard_<i>/snapshot.ips`). Each file is written
  /// atomically; the manifest is written last, so a crash mid-save
  /// leaves any previous complete snapshot loadable.
  [[nodiscard]] Status SaveSnapshot(const std::string& dir) const;

  /// Warm start from a SaveSnapshot directory. The partition geometry
  /// and per-shard engine configuration come from the snapshot
  /// (`options.num_shards` and `options.engine` are ignored); the
  /// serving policy — pool size, deadline budgets, retry, breaker,
  /// hedging — comes from `options`, so a reload can change how the
  /// shards are driven without rebuilding them.
  [[nodiscard]] static StatusOr<std::unique_ptr<ShardedEngine>>
  CreateFromSnapshot(const std::string& dir,
                     ShardedEngineOptions options = {},
                     const SnapshotLoadOptions& load = {});

  /// Scatter-gather top-k: fans the request to every shard whose
  /// breaker admits it, merges the surviving shards' answers
  /// deterministically, and degrades gracefully (partial = true) when
  /// shards are lost. Fails only when every shard fails. Each shard
  /// call inherits request.context with its deadline scaled to
  /// `deadline * shard_budget_fraction`.
  [[nodiscard]] StatusOr<QueryResult> Query(
      const Request& request) const override;

  /// Batched scatter-gather: every shard answers the whole query
  /// matrix over its slice; per-query merge identical to Query. A lost
  /// shard marks every member partial.
  [[nodiscard]] StatusOr<std::vector<QueryResult>> BatchQuery(
      const Matrix& queries, const QueryOptions& options,
      const RequestContext& context) const override;

  /// Eagerly builds `algo`'s index on every shard.
  [[nodiscard]] Status EnsureIndex(QueryAlgo algo) const;

  std::size_t dim() const override { return dim_; }
  std::size_t num_shards() const { return shards_.size(); }
  /// Global index of shard i's local row 0 (contiguous partition).
  std::size_t shard_offset(std::size_t i) const;
  const Engine& shard(std::size_t i) const;
  const ShardedEngineOptions& options() const { return options_; }
  /// Breaker state of shard i (tests, dashboards).
  BreakerState breaker_state(std::size_t i) const;

 private:
  using Clock = std::chrono::steady_clock;

  static constexpr std::size_t kLatencyWindow = 64;

  struct Shard {
    std::unique_ptr<Engine> engine;
    std::size_t offset = 0;

    // OnShardSuccess/OnShardFailure release it *before* bumping breaker
    // counters (metrics are not latency-critical), but the declared
    // order keeps a future under-lock increment from deadlocking
    // against a metric export.
    mutable Mutex mutex IPS_ACQUIRED_BEFORE(Counter::mutex_);
    // Circuit breaker (consecutive-failure trip, half-open probe).
    std::size_t consecutive_failures IPS_GUARDED_BY(mutex) = 0;
    bool open IPS_GUARDED_BY(mutex) = false;
    bool probing IPS_GUARDED_BY(mutex) = false;
    Clock::time_point opened_at IPS_GUARDED_BY(mutex);
    // Ring of recent primary-path latencies (seconds per query) the
    // hedge predictor reads its p99 from.
    std::array<double, kLatencyWindow> latency IPS_GUARDED_BY(mutex){};
    std::size_t latency_count IPS_GUARDED_BY(mutex) = 0;
  };

  /// How the breaker admitted a shard call.
  enum class Admission { kServe, kProbe, kSkip };

  /// Outcome of one budgeted shard call (single query or whole batch).
  template <typename T>
  struct Outcome {
    StatusOr<T> result = Status::Internal("shard call never ran");
    bool hedged = false;
    bool skipped = false;
    std::size_t retries = 0;
    double seconds = 0.0;
  };

  ShardedEngine(ShardedEngineOptions options, std::size_t dim);

  /// Policy-option validation shared by Create and CreateFromSnapshot
  /// (everything except the data-dependent shard-count bound).
  static Status ValidateOptions(const ShardedEngineOptions& options);

  /// The budgeted, instrumented shard-call helper — the only code that
  /// talks to a shard Engine (enforced by the ipslint rule
  /// "shard-call"). Applies breaker admission, hedge prediction, chaos
  /// failpoints, retry-with-backoff, and latency tracking.
  Outcome<QueryResult> CallShard(std::size_t shard_index,
                                 std::span<const double> query,
                                 const QueryOptions& options,
                                 const RequestContext& context) const;
  Outcome<std::vector<QueryResult>> CallShardBatch(
      std::size_t shard_index, const Matrix& queries,
      const QueryOptions& options, const RequestContext& context) const;

  /// Shared scaffolding of the two CallShard flavors: admission,
  /// hedging, chaos, retries around `invoke(shard_options,
  /// shard_context)` — the shard context is the request's with its
  /// deadline cut to the per-shard budget. `queries_per_call` amortizes
  /// the call's wall time into the per-query latency samples the hedge
  /// predictor tracks.
  template <typename T, typename Invoke>
  Outcome<T> CallShardImpl(std::size_t shard_index,
                           const QueryOptions& options,
                           const RequestContext& context,
                           std::size_t queries_per_call,
                           const Invoke& invoke) const;

  Admission Admit(Shard& shard) const IPS_EXCLUDES(shard.mutex);
  void OnShardSuccess(Shard& shard, double seconds_per_query,
                      bool hedged) const IPS_EXCLUDES(shard.mutex);
  void OnShardFailure(Shard& shard) const IPS_EXCLUDES(shard.mutex);
  /// Tracked p99 of the shard's primary-path latency ring, or 0 with
  /// fewer than hedge.min_samples samples.
  double TrackedP99(const Shard& shard) const IPS_EXCLUDES(shard.mutex);
  /// Count of currently-open breakers (mirrors the
  /// "serve.shard.open_breakers" gauge).
  double OpenBreakerCount() const;

  ShardedEngineOptions options_;
  std::size_t dim_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable ThreadPool pool_;
};

}  // namespace ips

#endif  // IPS_SERVE_SHARDED_ENGINE_H_
