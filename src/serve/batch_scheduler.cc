#include "serve/batch_scheduler.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "util/failpoint.h"

namespace ips {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration SecondsToDuration(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

// Registry mirror of SchedulerCounters plus the live queue depth.
struct SchedulerMetrics {
  Counter* submitted;
  Counter* completed;
  Counter* shed;
  Counter* expired;
  Counter* batches;
  Counter* batch_groups;
  Counter* batched_queries;
  Gauge* queue_depth;

  static const SchedulerMetrics& Get() {
    static const SchedulerMetrics metrics = {
        MetricsRegistry::Global().GetCounter("serve.scheduler.submitted"),
        MetricsRegistry::Global().GetCounter("serve.scheduler.completed"),
        MetricsRegistry::Global().GetCounter("serve.scheduler.shed"),
        MetricsRegistry::Global().GetCounter("serve.scheduler.expired"),
        MetricsRegistry::Global().GetCounter("serve.scheduler.batches"),
        MetricsRegistry::Global().GetCounter("serve.scheduler.batch_groups"),
        MetricsRegistry::Global().GetCounter(
            "serve.scheduler.batched_queries"),
        MetricsRegistry::Global().GetGauge("serve.scheduler.queue_depth")};
    return metrics;
  }
};

// Members sharing one Engine::BatchQuery call must agree on everything
// the engine plans and executes from; only the deadline stays
// per-member (judged from each request's own wall clock below).
bool CompatibleOptions(const QueryOptions& a, const QueryOptions& b) {
  return a.k == b.k && a.recall_target == b.recall_target &&
         a.candidate_budget == b.candidate_budget &&
         a.is_signed == b.is_signed && a.trace == b.trace &&
         a.force_algorithm == b.force_algorithm;
}

}  // namespace

BatchScheduler::BatchScheduler(const QueryEngine* engine,
                               BatchSchedulerOptions options)
    : engine_(engine),
      options_(options),
      pool_(options.num_threads) {
  // Construction-time preconditions, not a query path.
  IPS_CHECK(engine_ != nullptr);           // ipslint:allow(check-in-query)
  IPS_CHECK_GE(options_.max_batch, 1u);    // ipslint:allow(check-in-query)
  IPS_CHECK_GE(options_.max_queue, 1u);    // ipslint:allow(check-in-query)
  // The dispatcher must outlive pool shutdown ordering and joins in the
  // destructor, so it cannot live in the ThreadPool it feeds.
  dispatcher_ = std::thread([this] { DispatchLoop(); });  // ipslint:allow(naked-thread)
}

BatchScheduler::~BatchScheduler() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  dispatcher_.join();
}

std::future<BatchScheduler::Result> BatchScheduler::Submit(
    std::vector<double> query, QueryOptions options) {
  const SchedulerMetrics& metrics = SchedulerMetrics::Get();
  std::promise<Result> promise;
  std::future<Result> future = promise.get_future();

  // Admission failpoint: an injected admission failure answers the
  // request immediately with the armed status.
  if (Failpoints::AnyArmed()) {
    const Status injected = Failpoints::Hit("serve/schedule");
    if (!injected.ok()) {
      promise.set_value(injected);
      return future;
    }
  }
  if (std::isnan(options.deadline_seconds) ||
      options.deadline_seconds <= 0.0) {
    promise.set_value(Status::InvalidArgument(
        "deadline must be positive (use +infinity for no deadline)"));
    return future;
  }

  Pending pending;
  pending.query = std::move(query);
  pending.submitted_at = Clock::now();
  pending.has_deadline = std::isfinite(options.deadline_seconds);
  if (pending.has_deadline) {
    pending.deadline =
        pending.submitted_at + SecondsToDuration(options.deadline_seconds);
  }
  pending.options = std::move(options);
  pending.promise = std::move(promise);

  {
    // Counter::Increment can take Counter::mutex_ (first touch per
    // thread) under the scheduler lock — the order declared on mutex_
    // in the header. Nothing may call back into the scheduler from a
    // metric lock.
    MutexLock lock(mutex_);
    ++counters_.submitted;
    metrics.submitted->Increment();
    if (shutting_down_ || queue_.size() >= options_.max_queue) {
      ++counters_.shed;
      metrics.shed->Increment();
      // Deliberate shedding, not a transient fault: kResourceExhausted
      // here means "back off", never "retry" (see header; transient
      // faults are kUnavailable).
      pending.promise.set_value(Status::ResourceExhausted(
          shutting_down_ ? "scheduler is shutting down"
                         : "serve queue full (" +
                               std::to_string(options_.max_queue) +
                               " requests queued)"));
      return future;
    }
    queue_.push_back(std::move(pending));
    counters_.max_queue_depth =
        std::max(counters_.max_queue_depth, queue_.size());
    metrics.queue_depth->Set(static_cast<double>(queue_.size()));
  }
  work_available_.NotifyOne();
  return future;
}

void BatchScheduler::DispatchLoop() {
  const SchedulerMetrics& metrics = SchedulerMetrics::Get();
  for (;;) {
    std::vector<Pending> batch;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(mutex_);
      if (queue_.empty() && shutting_down_) return;
      const std::size_t take = std::min(options_.max_batch, queue_.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++counters_.batches;
      metrics.batches->Increment();
      metrics.queue_depth->Set(static_cast<double>(queue_.size()));
      in_flight_ += batch.size();
      if (shutting_down_) {
        // Fail the drained batch instead of executing it: shutdown must
        // not block on engine work, but every promise must be answered.
        // These requests never executed, so they count as shed.
        for (Pending& pending : batch) {
          pending.promise.set_value(
              Status::ResourceExhausted("scheduler is shutting down"));
          ++counters_.shed;
          metrics.shed->Increment();
        }
        in_flight_ -= batch.size();
        continue;
      }
    }
    RunBatch(std::move(batch));
  }
}

std::vector<std::vector<std::size_t>> BatchScheduler::GroupCompatible(
    const std::vector<Pending>& batch) const {
  const std::size_t dim = engine_->dim();
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // Wrong-dimension requests stay singletons so the per-query path
    // reports the same validation Status it always has.
    if (batch[i].query.size() == dim) {
      bool placed = false;
      for (auto& group : groups) {
        if (batch[group.front()].query.size() == dim &&
            CompatibleOptions(batch[group.front()].options,
                              batch[i].options)) {
          group.push_back(i);
          placed = true;
          break;
        }
      }
      if (placed) continue;
    }
    groups.push_back({i});
  }
  return groups;
}

void BatchScheduler::RunBatch(std::vector<Pending> batch) {
  // Chunks write disjoint index ranges; plain bytes (not the bit-packed
  // vector<bool>) keep those writes race-free.
  std::vector<unsigned char> answered(batch.size(), 0);
  std::vector<unsigned char> expired(batch.size(), 0);

  // Coalesced execution plan: compatible members share one
  // Engine::BatchQuery call; with batching off (or nothing compatible)
  // every group is a singleton on the per-query path.
  std::vector<std::vector<std::size_t>> groups;
  if (options_.use_batch_execution) {
    groups = GroupCompatible(batch);
  } else {
    groups.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) groups.push_back({i});
  }

  std::atomic<std::size_t> batch_groups{0};
  std::atomic<std::size_t> batched_queries{0};

  // Answers every not-yet-expired member of one group. Members of a
  // group write disjoint batch indices, so groups can run on different
  // pool threads without synchronization.
  auto run_group = [&](const std::vector<std::size_t>& group) {
    const Clock::time_point start = Clock::now();
    std::vector<std::size_t> live;
    live.reserve(group.size());
    for (std::size_t i : group) {
      Pending& pending = batch[i];
      if (pending.has_deadline && start >= pending.deadline) {
        pending.promise.set_value(Status::DeadlineExceeded(
            "deadline passed before execution started"));
        answered[i] = 1;
        expired[i] = 1;
        continue;
      }
      live.push_back(i);
    }
    if (live.empty()) return;

    if (live.size() == 1) {
      Pending& pending = batch[live.front()];
      Result result = engine_->Query(pending.query, pending.options);
      if (result.ok()) {
        const Clock::time_point done = Clock::now();
        QueryStats& stats = result.value().stats;
        stats.queue_seconds =
            std::chrono::duration<double>(start - pending.submitted_at)
                .count();
        stats.deadline_met =
            !pending.has_deadline || done <= pending.deadline;
      }
      pending.promise.set_value(std::move(result));
      answered[live.front()] = 1;
      return;
    }

    Matrix group_queries(live.size(), batch[live.front()].query.size());
    for (std::size_t j = 0; j < live.size(); ++j) {
      const std::vector<double>& q = batch[live[j]].query;
      std::copy(q.begin(), q.end(), group_queries.Row(j).begin());
    }
    auto results = engine_->BatchQuery(group_queries,
                                       batch[live.front()].options);
    const Clock::time_point done = Clock::now();
    batch_groups.fetch_add(1, std::memory_order_relaxed);
    if (!results.ok()) {
      for (std::size_t i : live) {
        batch[i].promise.set_value(results.status());
        answered[i] = 1;
      }
      return;
    }
    std::vector<QueryResult> out = std::move(results).value();
    batched_queries.fetch_add(live.size(), std::memory_order_relaxed);
    for (std::size_t j = 0; j < live.size(); ++j) {
      Pending& pending = batch[live[j]];
      QueryResult result = std::move(out[j]);
      result.stats.queue_seconds =
          std::chrono::duration<double>(start - pending.submitted_at)
              .count();
      result.stats.deadline_met =
          !pending.has_deadline || done <= pending.deadline;
      pending.promise.set_value(std::move(result));
      answered[live[j]] = 1;
    }
  };

  const Status batch_status = ParallelForStatus(
      &pool_, groups.size(),
      [&](std::size_t begin, std::size_t end) -> Status {
        // Deadline-machinery failpoint: firing fails this chunk, and
        // ParallelForStatus cancels the chunks that have not started —
        // the dispatcher then answers every unanswered request below.
        IPS_FAILPOINT("serve/deadline");
        for (std::size_t g = begin; g < end; ++g) run_group(groups[g]);
        return Status::Ok();
      });

  // Cancelled or failed chunks leave requests unanswered; answer them
  // with the batch's status so no queued work is ever leaked.
  std::size_t expired_count = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (answered[i] == 0) {
      batch[i].promise.set_value(
          batch_status.ok()
              ? Status::Internal("batch finished without answering request")
              : batch_status);
    }
    if (expired[i] != 0) ++expired_count;
  }

  const SchedulerMetrics& metrics = SchedulerMetrics::Get();
  {
    MutexLock lock(mutex_);
    // Partition invariant: expired requests are not also completed.
    counters_.completed += batch.size() - expired_count;
    counters_.expired += expired_count;
    counters_.batch_groups += batch_groups.load(std::memory_order_relaxed);
    counters_.batched_queries +=
        batched_queries.load(std::memory_order_relaxed);
    metrics.completed->Add(batch.size() - expired_count);
    metrics.expired->Add(expired_count);
    metrics.batch_groups->Add(batch_groups.load(std::memory_order_relaxed));
    metrics.batched_queries->Add(
        batched_queries.load(std::memory_order_relaxed));
    in_flight_ -= batch.size();
    if (queue_.empty() && in_flight_ == 0) queue_drained_.NotifyAll();
  }
}

void BatchScheduler::Drain() {
  MutexLock lock(mutex_);
  while (!(queue_.empty() && in_flight_ == 0)) queue_drained_.Wait(mutex_);
}

SchedulerCounters BatchScheduler::counters() const {
  MutexLock lock(mutex_);
  return counters_;
}

}  // namespace ips
