#include "serve/batch_scheduler.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string_view>
#include <utility>

#include "obs/metrics.h"
#include "util/failpoint.h"

namespace ips {

namespace {

using Clock = std::chrono::steady_clock;

// Completions per tenant whose latency feeds the rolling p99.
constexpr std::size_t kTenantLatencyWindow = 128;

Clock::duration SecondsToDuration(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

// Registry mirror of SchedulerCounters plus the live queue depth.
struct SchedulerMetrics {
  Counter* submitted;
  Counter* completed;
  Counter* shed;
  Counter* expired;
  Counter* batches;
  Counter* batch_groups;
  Counter* batched_queries;
  Gauge* queue_depth;

  static const SchedulerMetrics& Get() {
    static const SchedulerMetrics metrics = {
        MetricsRegistry::Global().GetCounter("serve.scheduler.submitted"),
        MetricsRegistry::Global().GetCounter("serve.scheduler.completed"),
        MetricsRegistry::Global().GetCounter("serve.scheduler.shed"),
        MetricsRegistry::Global().GetCounter("serve.scheduler.expired"),
        MetricsRegistry::Global().GetCounter("serve.scheduler.batches"),
        MetricsRegistry::Global().GetCounter("serve.scheduler.batch_groups"),
        MetricsRegistry::Global().GetCounter(
            "serve.scheduler.batched_queries"),
        MetricsRegistry::Global().GetGauge("serve.scheduler.queue_depth")};
    return metrics;
  }
};

// Members sharing one Engine::BatchQuery call must agree on everything
// the engine plans and executes from; the RequestContext stays
// per-member (each deadline is judged from its own wall clock below).
bool CompatibleOptions(const QueryOptions& a, const QueryOptions& b) {
  return a.k == b.k && a.recall_target == b.recall_target &&
         a.candidate_budget == b.candidate_budget &&
         a.is_signed == b.is_signed && a.trace == b.trace &&
         a.precision == b.precision &&
         a.force_algorithm == b.force_algorithm;
}

// p99 over the valid prefix/ring of a tenant's latency window.
double RingP99(const std::array<double, kTenantLatencyWindow>& ring,
               std::size_t count) {
  const std::size_t n = std::min(count, ring.size());
  if (n == 0) return 0.0;
  std::array<double, kTenantLatencyWindow> sorted = ring;
  std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n));
  const std::size_t rank = (n * 99 + 99) / 100;  // ceil(0.99 n), 1-based
  return sorted[std::min(rank, n) - 1];
}

}  // namespace

// Token bucket, counter slice, and latency ring of one tenant. Metric
// handles are resolved once at creation so the admission path never
// concatenates metric names.
struct BatchScheduler::TenantState {
  TenantQuota quota;
  double tokens = 0.0;
  Clock::time_point last_refill;

  TenantCounters counters;  // p99_seconds filled from the ring on read

  std::array<double, kTenantLatencyWindow> latency{};
  std::size_t latency_count = 0;

  Counter* m_submitted;
  Counter* m_admitted;
  Counter* m_shed;
  Counter* m_expired;
  Counter* m_completed;
  Gauge* m_p99;
};

BatchScheduler::BatchScheduler(const QueryEngine* engine,
                               BatchSchedulerOptions options)
    : engine_(engine),
      options_(options),
      pool_(options.num_threads) {
  // Construction-time preconditions, not a query path.
  IPS_CHECK(engine_ != nullptr);           // ipslint:allow(check-in-query)
  IPS_CHECK_GE(options_.max_batch, 1u);    // ipslint:allow(check-in-query)
  IPS_CHECK_GE(options_.max_queue, 1u);    // ipslint:allow(check-in-query)
  // The dispatcher must outlive pool shutdown ordering and joins in the
  // destructor, so it cannot live in the ThreadPool it feeds.
  dispatcher_ = std::thread([this] { DispatchLoop(); });  // ipslint:allow(naked-thread)
}

BatchScheduler::~BatchScheduler() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  dispatcher_.join();
}

BatchScheduler::TenantState& BatchScheduler::Tenant(
    const RequestContext& context) {
  const std::string_view id = RequestTenant(context);
  auto it = tenants_.find(id);
  if (it != tenants_.end()) return *it->second;

  auto state = std::make_unique<TenantState>();
  auto quota_it = options_.qos.tenant_quotas.find(std::string(id));
  state->quota = quota_it != options_.qos.tenant_quotas.end()
                     ? quota_it->second
                     : options_.qos.default_quota;
  if (state->quota.burst <= 0.0) {
    state->quota.burst = state->quota.tokens_per_second;
  }
  state->tokens = state->quota.burst;  // bucket starts full
  state->last_refill = Clock::now();
  const std::string prefix = "serve.qos." + std::string(id) + ".";
  MetricsRegistry& registry = MetricsRegistry::Global();
  state->m_submitted = registry.GetCounter(prefix + "submitted");
  state->m_admitted = registry.GetCounter(prefix + "admitted");
  state->m_shed = registry.GetCounter(prefix + "shed");
  state->m_expired = registry.GetCounter(prefix + "expired");
  state->m_completed = registry.GetCounter(prefix + "completed");
  state->m_p99 = registry.GetGauge(prefix + "p99");
  it = tenants_.emplace(std::string(id), std::move(state)).first;
  return *it->second;
}

bool BatchScheduler::SpendToken(TenantState& tenant) {
  if (tenant.quota.tokens_per_second <= 0.0) return true;  // unlimited
  const Clock::time_point now = Clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - tenant.last_refill).count();
  tenant.last_refill = now;
  tenant.tokens = std::min(
      tenant.quota.burst,
      tenant.tokens + elapsed * tenant.quota.tokens_per_second);
  if (tenant.tokens < 1.0) return false;
  tenant.tokens -= 1.0;
  return true;
}

std::size_t BatchScheduler::QueuedTotal() const {
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane.size();
  return total;
}

bool BatchScheduler::AdmitFill(RequestPriority priority) const {
  const std::size_t queued = QueuedTotal();
  if (queued >= options_.max_queue) return false;  // full: everyone sheds
  const double fill =
      static_cast<double>(queued) / static_cast<double>(options_.max_queue);
  switch (priority) {
    case RequestPriority::kBatch:
      return fill < options_.qos.batch_shed_fill;
    case RequestPriority::kStandard:
      return fill < options_.qos.standard_shed_fill;
    case RequestPriority::kInteractive:
      return true;
  }
  return true;
}

std::future<BatchScheduler::Result> BatchScheduler::Submit(
    const Request& request) {
  const SchedulerMetrics& metrics = SchedulerMetrics::Get();
  std::promise<Result> promise;
  std::future<Result> future = promise.get_future();

  // Scheduling failpoint: an injected failure here answers the request
  // before it is ever accounted (chaos for the submission transport).
  if (Failpoints::AnyArmed()) {
    const Status injected = Failpoints::Hit("serve/schedule");
    if (!injected.ok()) {
      promise.set_value(injected);
      return future;
    }
  }
  const Status context_status = ValidateRequestContext(request.context);
  if (!context_status.ok()) {
    promise.set_value(context_status);
    return future;
  }

  Pending pending;
  pending.query.assign(request.query.begin(), request.query.end());
  pending.submitted_at = Clock::now();
  pending.has_deadline = std::isfinite(request.context.deadline_seconds);
  if (pending.has_deadline) {
    pending.deadline = pending.submitted_at +
                       SecondsToDuration(request.context.deadline_seconds);
  }
  pending.options = request.options;
  pending.context = request.context;
  pending.promise = std::move(promise);

  {
    // Counter::Increment can take Counter::mutex_ (first touch per
    // thread) under the scheduler lock — the order declared on mutex_
    // in the header. Nothing may call back into the scheduler from a
    // metric lock.
    MutexLock lock(mutex_);
    TenantState& tenant = Tenant(pending.context);
    ++counters_.submitted;
    ++tenant.counters.submitted;
    metrics.submitted->Increment();
    tenant.m_submitted->Increment();

    // Sheds this submission with whatever status the chaos test armed.
    // Placed after the submission is counted so an injected admission
    // failure is accounted exactly like a real shed and the per-tenant
    // partition invariant (shed + expired + completed == submitted)
    // holds under chaos.
    auto shed = [&](Status status) {
      ++counters_.shed;
      ++tenant.counters.shed;
      metrics.shed->Increment();
      tenant.m_shed->Increment();
      pending.promise.set_value(std::move(status));
    };
    if (Failpoints::AnyArmed()) {
      const Status injected = Failpoints::Hit("serve/qos/admit");
      if (!injected.ok()) {
        shed(injected);
        return future;
      }
    }
    // Deliberate shedding, not a transient fault: kResourceExhausted
    // here means "back off", never "retry" (see header; transient
    // faults are kUnavailable).
    if (shutting_down_) {
      shed(Status::ResourceExhausted("scheduler is shutting down"));
      return future;
    }
    if (!SpendToken(tenant)) {
      shed(Status::ResourceExhausted(
          "tenant \"" + std::string(RequestTenant(pending.context)) +
          "\" is over its admission rate"));
      return future;
    }
    if (!AdmitFill(pending.context.priority)) {
      shed(Status::ResourceExhausted(
          QueuedTotal() >= options_.max_queue
              ? "serve queue full (" + std::to_string(options_.max_queue) +
                    " requests queued)"
              : "queue too full for priority \"" +
                    std::string(RequestPriorityName(
                        pending.context.priority)) +
                    "\""));
      return future;
    }

    const std::size_t lane =
        static_cast<std::size_t>(pending.context.priority);
    lanes_[lane].push_back(std::move(pending));
    tenant.m_admitted->Increment();
    counters_.max_queue_depth =
        std::max(counters_.max_queue_depth, QueuedTotal());
    metrics.queue_depth->Set(static_cast<double>(QueuedTotal()));
  }
  work_available_.NotifyOne();
  return future;
}

void BatchScheduler::DispatchLoop() {
  const SchedulerMetrics& metrics = SchedulerMetrics::Get();
  for (;;) {
    std::vector<Pending> batch;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && (QueuedTotal() == 0 || paused_)) {
        work_available_.Wait(mutex_);
      }
      if (QueuedTotal() == 0 && shutting_down_) return;
      batch = TakeBatch();
      ++counters_.batches;
      metrics.batches->Increment();
      metrics.queue_depth->Set(static_cast<double>(QueuedTotal()));
      in_flight_ += batch.size();
      if (shutting_down_) {
        // Fail the drained batch instead of executing it: shutdown must
        // not block on engine work, but every promise must be answered.
        // These requests never executed, so they count as shed.
        for (Pending& pending : batch) {
          TenantState& tenant = Tenant(pending.context);
          pending.promise.set_value(
              Status::ResourceExhausted("scheduler is shutting down"));
          ++counters_.shed;
          ++tenant.counters.shed;
          metrics.shed->Increment();
          tenant.m_shed->Increment();
        }
        in_flight_ -= batch.size();
        if (QueuedTotal() == 0 && in_flight_ == 0) {
          queue_drained_.NotifyAll();
        }
        continue;
      }
    }
    RunBatch(std::move(batch));
  }
}

std::vector<BatchScheduler::Pending> BatchScheduler::TakeBatch() {
  std::vector<Pending> batch;
  batch.reserve(std::min(options_.max_batch, QueuedTotal()));
  std::size_t total_weight = 0;
  for (std::size_t w : options_.qos.lane_weights) total_weight += w;
  if (total_weight == 0) total_weight = 1;

  // First pass: each lane gets its weighted share of the batch,
  // highest priority first.
  for (std::size_t p = kNumRequestPriorities; p-- > 0;) {
    std::deque<Pending>& lane = lanes_[p];
    if (lane.empty()) continue;
    const std::size_t share = std::max<std::size_t>(
        1, options_.max_batch * options_.qos.lane_weights[p] / total_weight);
    std::size_t take = std::min(share, lane.size());
    take = std::min(take, options_.max_batch - batch.size());
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(lane.front()));
      lane.pop_front();
    }
    if (batch.size() >= options_.max_batch) return batch;
  }
  // Second pass: slots a lighter (or empty) lane left unused fall
  // through, still highest priority first.
  for (std::size_t p = kNumRequestPriorities; p-- > 0;) {
    std::deque<Pending>& lane = lanes_[p];
    while (!lane.empty() && batch.size() < options_.max_batch) {
      batch.push_back(std::move(lane.front()));
      lane.pop_front();
    }
    if (batch.size() >= options_.max_batch) break;
  }
  return batch;
}

std::vector<std::vector<std::size_t>> BatchScheduler::GroupCompatible(
    const std::vector<Pending>& batch) const {
  const std::size_t dim = engine_->dim();
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // Wrong-dimension requests stay singletons so the per-query path
    // reports the same validation Status it always has.
    if (batch[i].query.size() == dim) {
      bool placed = false;
      for (auto& group : groups) {
        if (batch[group.front()].query.size() == dim &&
            CompatibleOptions(batch[group.front()].options,
                              batch[i].options)) {
          group.push_back(i);
          placed = true;
          break;
        }
      }
      if (placed) continue;
    }
    groups.push_back({i});
  }
  return groups;
}

void BatchScheduler::RunBatch(std::vector<Pending> batch) {
  // Chunks write disjoint index ranges; plain bytes (not the bit-packed
  // vector<bool>) keep those writes race-free.
  std::vector<unsigned char> answered(batch.size(), 0);
  std::vector<unsigned char> expired(batch.size(), 0);
  // End-to-end latency (submit -> answer) per member, for the tenant
  // p99 rings; members answered late (cancelled chunks) are stamped in
  // the accounting loop below.
  std::vector<double> latency(batch.size(), 0.0);

  // Coalesced execution plan: compatible members share one
  // Engine::BatchQuery call; with batching off (or nothing compatible)
  // every group is a singleton on the per-query path.
  std::vector<std::vector<std::size_t>> groups;
  if (options_.use_batch_execution) {
    groups = GroupCompatible(batch);
  } else {
    groups.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) groups.push_back({i});
  }

  std::atomic<std::size_t> batch_groups{0};
  std::atomic<std::size_t> batched_queries{0};

  // Answers every not-yet-expired member of one group. Members of a
  // group write disjoint batch indices, so groups can run on different
  // pool threads without synchronization.
  auto run_group = [&](const std::vector<std::size_t>& group) {
    const Clock::time_point start = Clock::now();
    std::vector<std::size_t> live;
    live.reserve(group.size());
    for (std::size_t i : group) {
      Pending& pending = batch[i];
      if (pending.has_deadline && start >= pending.deadline) {
        pending.promise.set_value(Status::DeadlineExceeded(
            "deadline passed before execution started"));
        answered[i] = 1;
        expired[i] = 1;
        continue;
      }
      live.push_back(i);
    }
    if (live.empty()) return;

    if (live.size() == 1) {
      Pending& pending = batch[live.front()];
      Result result = engine_->Query(
          Request{pending.query, pending.options, pending.context});
      const Clock::time_point done = Clock::now();
      if (result.ok()) {
        QueryStats& stats = result.value().stats;
        stats.queue_seconds =
            std::chrono::duration<double>(start - pending.submitted_at)
                .count();
        stats.deadline_met =
            !pending.has_deadline || done <= pending.deadline;
      }
      latency[live.front()] =
          std::chrono::duration<double>(done - pending.submitted_at).count();
      pending.promise.set_value(std::move(result));
      answered[live.front()] = 1;
      return;
    }

    Matrix group_queries(live.size(), batch[live.front()].query.size());
    for (std::size_t j = 0; j < live.size(); ++j) {
      const std::vector<double>& q = batch[live[j]].query;
      std::copy(q.begin(), q.end(), group_queries.Row(j).begin());
    }
    // The engine gets the first live member's context (the group shares
    // one QueryOptions; context differences are re-judged per member
    // right below, so which member's context rides along is cosmetic).
    auto results =
        engine_->BatchQuery(group_queries, batch[live.front()].options,
                            batch[live.front()].context);
    const Clock::time_point done = Clock::now();
    batch_groups.fetch_add(1, std::memory_order_relaxed);
    if (!results.ok()) {
      for (std::size_t i : live) {
        latency[i] =
            std::chrono::duration<double>(done - batch[i].submitted_at)
                .count();
        batch[i].promise.set_value(results.status());
        answered[i] = 1;
      }
      return;
    }
    std::vector<QueryResult> out = std::move(results).value();
    batched_queries.fetch_add(live.size(), std::memory_order_relaxed);
    for (std::size_t j = 0; j < live.size(); ++j) {
      Pending& pending = batch[live[j]];
      QueryResult result = std::move(out[j]);
      result.stats.queue_seconds =
          std::chrono::duration<double>(start - pending.submitted_at)
              .count();
      result.stats.deadline_met =
          !pending.has_deadline || done <= pending.deadline;
      latency[live[j]] =
          std::chrono::duration<double>(done - pending.submitted_at).count();
      pending.promise.set_value(std::move(result));
      answered[live[j]] = 1;
    }
  };

  const Status batch_status = ParallelForStatus(
      &pool_, groups.size(),
      [&](std::size_t begin, std::size_t end) -> Status {
        // Deadline-machinery failpoint: firing fails this chunk, and
        // ParallelForStatus cancels the chunks that have not started —
        // the dispatcher then answers every unanswered request below.
        IPS_FAILPOINT("serve/deadline");
        for (std::size_t g = begin; g < end; ++g) run_group(groups[g]);
        return Status::Ok();
      });

  // Cancelled or failed chunks leave requests unanswered; answer them
  // with the batch's status so no queued work is ever leaked.
  const Clock::time_point cleanup = Clock::now();
  std::size_t expired_count = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (answered[i] == 0) {
      latency[i] =
          std::chrono::duration<double>(cleanup - batch[i].submitted_at)
              .count();
      batch[i].promise.set_value(
          batch_status.ok()
              ? Status::Internal("batch finished without answering request")
              : batch_status);
    }
    if (expired[i] != 0) ++expired_count;
  }

  const SchedulerMetrics& metrics = SchedulerMetrics::Get();
  {
    MutexLock lock(mutex_);
    // Partition invariant: expired requests are not also completed.
    counters_.completed += batch.size() - expired_count;
    counters_.expired += expired_count;
    counters_.batch_groups += batch_groups.load(std::memory_order_relaxed);
    counters_.batched_queries +=
        batched_queries.load(std::memory_order_relaxed);
    metrics.completed->Add(batch.size() - expired_count);
    metrics.expired->Add(expired_count);
    metrics.batch_groups->Add(batch_groups.load(std::memory_order_relaxed));
    metrics.batched_queries->Add(
        batched_queries.load(std::memory_order_relaxed));
    for (std::size_t i = 0; i < batch.size(); ++i) {
      TenantState& tenant = Tenant(batch[i].context);
      if (expired[i] != 0) {
        ++tenant.counters.expired;
        tenant.m_expired->Increment();
      } else {
        ++tenant.counters.completed;
        tenant.m_completed->Increment();
        tenant.latency[tenant.latency_count % kTenantLatencyWindow] =
            latency[i];
        ++tenant.latency_count;
        tenant.m_p99->Set(RingP99(tenant.latency, tenant.latency_count));
      }
    }
    in_flight_ -= batch.size();
    if (QueuedTotal() == 0 && in_flight_ == 0) queue_drained_.NotifyAll();
  }
}

void BatchScheduler::Drain() {
  MutexLock lock(mutex_);
  while (!(QueuedTotal() == 0 && in_flight_ == 0)) {
    queue_drained_.Wait(mutex_);
  }
}

void BatchScheduler::Pause() {
  MutexLock lock(mutex_);
  paused_ = true;
}

void BatchScheduler::Resume() {
  {
    MutexLock lock(mutex_);
    paused_ = false;
  }
  work_available_.NotifyAll();
}

SchedulerCounters BatchScheduler::counters() const {
  MutexLock lock(mutex_);
  return counters_;
}

TenantCounters BatchScheduler::tenant_counters(
    const std::string& tenant_id) const {
  MutexLock lock(mutex_);
  const std::string& key = tenant_id.empty() ? "default" : tenant_id;
  auto it = tenants_.find(key);
  if (it == tenants_.end()) return {};
  TenantCounters counters = it->second->counters;
  counters.p99_seconds =
      RingP99(it->second->latency, it->second->latency_count);
  return counters;
}

std::vector<std::string> BatchScheduler::tenants() const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [id, state] : tenants_) out.push_back(id);
  return out;
}

}  // namespace ips
