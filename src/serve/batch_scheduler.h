// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Deadline-aware batch scheduling on top of ThreadPool: concurrent TopK
// requests are coalesced into batches by a dispatcher thread and fanned
// out over the pool with the cancellable ParallelForStatus, so one
// injected or internal failure cancels the rest of the batch and every
// queued request still gets an answer (a Status, never silence).
//
// Admission and deadline semantics:
//  * Submit sheds load with kResourceExhausted when the queue is full.
//    Shedding is deliberate back-pressure, NOT a transient fault:
//    kResourceExhausted from this scheduler must not be retried
//    blindly (retrying amplifies the overload that caused it).
//    Transient shard/transport faults use kUnavailable, the one code
//    the sharded retry policy (serve/sharded_engine.h) classifies as
//    retryable.
//  * A request whose deadline (options.deadline_seconds, relative to
//    submission) has passed before execution starts fails with
//    kDeadlineExceeded without burning engine work.
//  * A request that starts in time but finishes late still returns its
//    answer, flagged with stats.deadline_met = false.
//  * Shutdown fails all still-queued requests with kResourceExhausted;
//    no future is ever abandoned.
//
// Every submission lands in exactly one of {shed, expired, completed},
// so shed + expired + completed == submitted at any quiescent point
// (after Drain, or destruction). The same counters are mirrored into
// the MetricsRegistry as "serve.scheduler.*", with the live queue depth
// on the "serve.scheduler.queue_depth" gauge.
//
// Failpoints: "serve/schedule" (admission), "serve/deadline" (batch
// execution; firing cancels the batch's remaining chunks).

#ifndef IPS_SERVE_BATCH_SCHEDULER_H_
#define IPS_SERVE_BATCH_SCHEDULER_H_

#include <chrono>
#include <cstddef>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "serve/query_engine.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace ips {

/// Scheduler tuning.
struct BatchSchedulerOptions {
  /// Worker threads executing batches (0 = inline execution).
  std::size_t num_threads = ThreadPool::DefaultThreadCount();
  /// Submissions beyond this queue depth are shed with
  /// kResourceExhausted.
  std::size_t max_queue = 1024;
  /// Requests coalesced into one batch (one ParallelForStatus fan-out).
  std::size_t max_batch = 64;
  /// Hand compatible members of a coalesced batch (identical options
  /// apart from the deadline, which stays per-member) to one
  /// Engine::BatchQuery call instead of one Engine::Query each. Off
  /// reproduces the sequential per-request execution (the bench A/B
  /// baseline).
  bool use_batch_execution = true;
};

/// Monotonic counters of a scheduler's lifetime (snapshot). Partition
/// invariant: every submitted request ends up in exactly one of
/// shed / expired / completed.
struct SchedulerCounters {
  std::size_t submitted = 0;
  /// Answered through batch execution (a response, an engine error, or
  /// a batch cancellation) — not shed, not expired.
  std::size_t completed = 0;
  /// Rejected without execution: queue full, or scheduler shutdown.
  std::size_t shed = 0;
  /// Deadline passed before execution started.
  std::size_t expired = 0;
  std::size_t batches = 0;
  std::size_t max_queue_depth = 0;
  /// Engine::BatchQuery calls issued (groups of >= 2 compatible
  /// requests executed as one batch).
  std::size_t batch_groups = 0;
  /// Requests answered through those batched calls (subset of
  /// completed).
  std::size_t batched_queries = 0;
};

/// Coalescing scheduler over one QueryEngine (a single-node Engine or a
/// ShardedEngine). Thread-safe.
class BatchScheduler {
 public:
  using Result = StatusOr<QueryResult>;

  /// `engine` must outlive the scheduler.
  BatchScheduler(const QueryEngine* engine,
                 BatchSchedulerOptions options = {});

  /// Fails every still-queued request, then joins the workers.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueues one request; options.deadline_seconds is the relative
  /// deadline (infinity = none). The returned future always becomes
  /// ready: with the response, or with the Status of shedding / expiry /
  /// cancellation / engine failure. Discarding the future leaks the
  /// request's outcome, hence [[nodiscard]].
  [[nodiscard]] std::future<Result> Submit(std::vector<double> query,
                                           QueryOptions options)
      IPS_EXCLUDES(mutex_);

  /// Blocks until every submitted request has been answered.
  void Drain() IPS_EXCLUDES(mutex_);

  SchedulerCounters counters() const IPS_EXCLUDES(mutex_);

 private:
  struct Pending {
    std::vector<double> query;
    QueryOptions options;
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point submitted_at;
    bool has_deadline = false;
    std::promise<Result> promise;
  };

  void DispatchLoop() IPS_EXCLUDES(mutex_);
  void RunBatch(std::vector<Pending> batch) IPS_EXCLUDES(mutex_);

  /// Partitions batch indices into groups whose members can share one
  /// Engine::BatchQuery call; incompatible or wrong-dimension requests
  /// become singleton groups on the per-query path.
  std::vector<std::vector<std::size_t>> GroupCompatible(
      const std::vector<Pending>& batch) const;

  const QueryEngine* engine_;
  BatchSchedulerOptions options_;
  ThreadPool pool_;

  // Submit/RunBatch bump serve metrics while holding it (a Counter's
  // first touch per thread takes Counter::mutex_ inside Add), so the
  // scheduler lock is ordered before the metric lock.
  mutable Mutex mutex_ IPS_ACQUIRED_BEFORE(Counter::mutex_);
  CondVar work_available_;
  CondVar queue_drained_;
  std::deque<Pending> queue_ IPS_GUARDED_BY(mutex_);
  SchedulerCounters counters_ IPS_GUARDED_BY(mutex_);
  std::size_t in_flight_ IPS_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ IPS_GUARDED_BY(mutex_) = false;
  // The one deliberate thread outside util::ThreadPool: the dispatcher
  // must block on the queue while the pool executes batches.
  std::thread dispatcher_;  // ipslint:allow(naked-thread)
};

}  // namespace ips

#endif  // IPS_SERVE_BATCH_SCHEDULER_H_
