// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Deadline-aware, QoS-enforcing batch scheduling on top of ThreadPool:
// concurrent serve Requests are admitted through per-tenant token
// buckets and priority-aware admission control, queued into weighted
// priority lanes, coalesced into batches by a dispatcher thread, and
// fanned out over the pool with the cancellable ParallelForStatus — so
// one injected or internal failure cancels the rest of the batch and
// every queued request still gets an answer (a Status, never silence).
//
// Admission and deadline semantics (DESIGN.md §14):
//  * Per-tenant token buckets: a tenant with a quota spends one token
//    per submission; an empty bucket sheds THAT tenant's request with
//    kResourceExhausted while other tenants are untouched — a 10x
//    overload from one tenant cannot queue ahead of anyone else.
//  * Priority lanes: requests queue into one lane per RequestPriority.
//    The dispatcher drains lanes by weight (qos.lane_weights),
//    highest-priority first, so interactive traffic overtakes batch
//    traffic that arrived earlier.
//  * Admission control sheds low-priority load BEFORE deadlines blow:
//    above qos.batch_shed_fill of max_queue, kBatch submissions are
//    shed; above qos.standard_shed_fill, kStandard too. kInteractive is
//    only shed by a completely full queue.
//  * Shedding is deliberate back-pressure, NOT a transient fault:
//    kResourceExhausted from this scheduler must not be retried
//    blindly (retrying amplifies the overload that caused it).
//    Transient shard/transport faults use kUnavailable, the one code
//    the sharded retry policy (serve/sharded_engine.h) classifies as
//    retryable.
//  * A request whose deadline (context.deadline_seconds, relative to
//    submission) has passed before execution starts fails with
//    kDeadlineExceeded without burning engine work.
//  * A request that starts in time but finishes late still returns its
//    answer, flagged with stats.deadline_met = false.
//  * Shutdown fails all still-queued requests with kResourceExhausted;
//    no future is ever abandoned.
//
// Every submission lands in exactly one of {shed, expired, completed},
// so shed + expired + completed == submitted at any quiescent point
// (after Drain, or destruction) — globally AND per tenant. The global
// counters are mirrored into the MetricsRegistry as "serve.scheduler.*"
// (live queue depth on "serve.scheduler.queue_depth"); per-tenant
// counters as "serve.qos.<tenant>.{submitted,admitted,shed,expired,
// completed}" with the rolling p99 latency (seconds) on the
// "serve.qos.<tenant>.p99" gauge.
//
// Failpoints: "serve/schedule" (before admission; an injected failure
// answers the promise without touching counters), "serve/qos/admit"
// (inside admission, after the submission is counted; an injected
// failure is accounted as a shed — the partition invariant holds under
// chaos), "serve/deadline" (batch execution; firing cancels the
// batch's remaining chunks).

#ifndef IPS_SERVE_BATCH_SCHEDULER_H_
#define IPS_SERVE_BATCH_SCHEDULER_H_

#include <array>
#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/query_engine.h"
#include "serve/request.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace ips {

/// Per-tenant rate limit. The bucket starts full (at `burst`), refills
/// continuously at tokens_per_second, and each submission spends one
/// token; an empty bucket sheds the submission.
struct TenantQuota {
  /// Sustained admission rate; 0 = unlimited (no bucket).
  double tokens_per_second = 0.0;
  /// Bucket capacity — the burst a tenant may submit instantaneously.
  /// 0 picks tokens_per_second (one second of burst).
  double burst = 0.0;
};

/// Multi-tenant QoS policy of the scheduler.
struct QosOptions {
  /// Quota applied to tenants without an explicit entry. Default:
  /// unlimited (single-tenant deployments see no behavior change).
  TenantQuota default_quota;
  /// Per-tenant overrides, keyed by tenant id ("" = "default").
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Dispatch slots per lane per batch, indexed by RequestPriority.
  /// The dispatcher fills the batch highest-priority-first, each lane
  /// capped at weight/total of max_batch (unused slots fall through to
  /// lower lanes, so an idle high lane costs nothing).
  std::array<std::size_t, kNumRequestPriorities> lane_weights = {1, 4, 16};
  /// Queue-fill fraction above which kBatch submissions are shed.
  double batch_shed_fill = 0.5;
  /// Queue-fill fraction above which kStandard submissions are shed.
  double standard_shed_fill = 0.85;
};

/// Scheduler tuning.
struct BatchSchedulerOptions {
  /// Worker threads executing batches (0 = inline execution).
  std::size_t num_threads = ThreadPool::DefaultThreadCount();
  /// Submissions beyond this total queue depth (all lanes) are shed
  /// with kResourceExhausted.
  std::size_t max_queue = 1024;
  /// Requests coalesced into one batch (one ParallelForStatus fan-out).
  std::size_t max_batch = 64;
  /// Hand compatible members of a coalesced batch (identical
  /// QueryOptions; the RequestContext stays per-member) to one
  /// Engine::BatchQuery call instead of one Engine::Query each. Off
  /// reproduces the sequential per-request execution (the bench A/B
  /// baseline).
  bool use_batch_execution = true;
  /// Multi-tenant QoS: token buckets, priority lanes, admission control.
  QosOptions qos;
};

/// Monotonic counters of a scheduler's lifetime (snapshot). Partition
/// invariant: every submitted request ends up in exactly one of
/// shed / expired / completed.
struct SchedulerCounters {
  std::size_t submitted = 0;
  /// Answered through batch execution (a response, an engine error, or
  /// a batch cancellation) — not shed, not expired.
  std::size_t completed = 0;
  /// Rejected without execution: queue full, admission control, an
  /// empty token bucket, or scheduler shutdown.
  std::size_t shed = 0;
  /// Deadline passed before execution started.
  std::size_t expired = 0;
  std::size_t batches = 0;
  std::size_t max_queue_depth = 0;
  /// Engine::BatchQuery calls issued (groups of >= 2 compatible
  /// requests executed as one batch).
  std::size_t batch_groups = 0;
  /// Requests answered through those batched calls (subset of
  /// completed).
  std::size_t batched_queries = 0;
};

/// One tenant's slice of the lifetime counters (same partition
/// invariant as SchedulerCounters, per tenant), plus its rolling
/// latency percentile.
struct TenantCounters {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::size_t expired = 0;
  /// p99 of end-to-end latency (submit -> answer, seconds) over the
  /// tenant's most recent completions (bounded window); 0 before the
  /// first completion.
  double p99_seconds = 0.0;
};

/// Coalescing QoS scheduler over one QueryEngine (a single-node Engine
/// or a ShardedEngine). Thread-safe.
class BatchScheduler {
 public:
  using Result = StatusOr<QueryResult>;

  /// `engine` must outlive the scheduler.
  BatchScheduler(const QueryEngine* engine,
                 BatchSchedulerOptions options = {});

  /// Fails every still-queued request, then joins the workers.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueues one request. request.query is copied into owned storage
  /// before Submit returns; context.deadline_seconds is the relative
  /// deadline (infinity = none). The returned future always becomes
  /// ready: with the response, or with the Status of shedding / expiry /
  /// cancellation / engine failure. Discarding the future leaks the
  /// request's outcome, hence [[nodiscard]].
  [[nodiscard]] std::future<Result> Submit(const Request& request)
      IPS_EXCLUDES(mutex_);

  /// Blocks until every submitted request has been answered.
  void Drain() IPS_EXCLUDES(mutex_);

  /// Holds dispatch (submissions still enqueue) until Resume. Tests use
  /// the pair to observe lane ordering deterministically.
  void Pause() IPS_EXCLUDES(mutex_);
  void Resume() IPS_EXCLUDES(mutex_);

  SchedulerCounters counters() const IPS_EXCLUDES(mutex_);

  /// Counters of one tenant ("" = "default"); zeros for a tenant never
  /// seen.
  TenantCounters tenant_counters(const std::string& tenant_id) const
      IPS_EXCLUDES(mutex_);
  /// Every tenant that has submitted at least once.
  std::vector<std::string> tenants() const IPS_EXCLUDES(mutex_);

 private:
  struct Pending {
    std::vector<double> query;
    QueryOptions options;
    RequestContext context;
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point submitted_at;
    bool has_deadline = false;
    std::promise<Result> promise;
  };

  /// Token bucket + counters + latency ring of one tenant, created on
  /// first submission. Latency samples feed the p99 the registry gauge
  /// "serve.qos.<tenant>.p99" mirrors.
  struct TenantState;

  void DispatchLoop() IPS_EXCLUDES(mutex_);
  void RunBatch(std::vector<Pending> batch) IPS_EXCLUDES(mutex_);

  /// The tenant's state, created on first touch (registry counters are
  /// resolved once here, so the hot path never builds metric names).
  TenantState& Tenant(const RequestContext& context) IPS_REQUIRES(mutex_);

  /// Spends one token from the tenant's bucket (refilled by wall
  /// clock); false = empty bucket, shed.
  bool SpendToken(TenantState& tenant) IPS_REQUIRES(mutex_);

  /// Priority-aware fill-level admission: false when the queue is too
  /// full for this lane.
  bool AdmitFill(RequestPriority priority) const IPS_REQUIRES(mutex_);

  /// Takes up to max_batch requests off the lanes by weight,
  /// highest-priority first.
  std::vector<Pending> TakeBatch() IPS_REQUIRES(mutex_);

  std::size_t QueuedTotal() const IPS_REQUIRES(mutex_);

  /// Partitions batch indices into groups whose members can share one
  /// Engine::BatchQuery call; incompatible or wrong-dimension requests
  /// become singleton groups on the per-query path.
  std::vector<std::vector<std::size_t>> GroupCompatible(
      const std::vector<Pending>& batch) const;

  const QueryEngine* engine_;
  BatchSchedulerOptions options_;
  ThreadPool pool_;

  // Submit/RunBatch bump serve metrics while holding it (a Counter's
  // first touch per thread takes Counter::mutex_ inside Add), so the
  // scheduler lock is ordered before the metric lock.
  mutable Mutex mutex_ IPS_ACQUIRED_BEFORE(Counter::mutex_);
  CondVar work_available_;
  CondVar queue_drained_;
  /// One FIFO lane per RequestPriority, indexed by its integer value.
  std::array<std::deque<Pending>, kNumRequestPriorities> lanes_
      IPS_GUARDED_BY(mutex_);
  SchedulerCounters counters_ IPS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<TenantState>, std::less<>> tenants_
      IPS_GUARDED_BY(mutex_);
  std::size_t in_flight_ IPS_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ IPS_GUARDED_BY(mutex_) = false;
  bool paused_ IPS_GUARDED_BY(mutex_) = false;
  // The one deliberate thread outside util::ThreadPool: the dispatcher
  // must block on the queue while the pool executes batches.
  std::thread dispatcher_;  // ipslint:allow(naked-thread)
};

}  // namespace ips

#endif  // IPS_SERVE_BATCH_SCHEDULER_H_
