#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/top_k.h"
#include "linalg/validate.h"
#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace ips {
namespace {

// Sketch descent touches two node sketches per level, a geometric sum
// dominated by the root, plus the exact rescan of one leaf.
double SketchCostModel(std::size_t n, const SketchMipsParams& params) {
  const double rows =
      static_cast<double>(params.copies) * params.bucket_multiplier *
      std::pow(static_cast<double>(n),
               1.0 - 2.0 / std::max(params.kappa, 2.0));
  return 2.0 * std::max(1.0, rows) + static_cast<double>(params.leaf_size);
}

// Samples `count` distinct row indices of `data` (all rows when count
// >= rows).
std::vector<std::size_t> SampleRows(const Matrix& data, std::size_t count,
                                    Rng* rng) {
  std::vector<std::size_t> indices(data.rows());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  if (count >= indices.size()) return indices;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng->NextBounded(indices.size() - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

// True when the plan's executed path can return a wrong top-k even
// though the calibration said it would not: every non-exact precision,
// plus the candidate-generating algorithms (LSH, sketch) whose recall
// depends on the query distribution. The audit cadence keys off this
// rather than `expected_recall < 1.0` so a path whose warmup recall
// calibrated to exactly 1.0 (common for quantized re-rank on
// well-scaled data) still gets shadow-audited — otherwise a
// distribution shift that breaks it would never be observed.
bool PlanCanMiss(const PlanDecision& plan) {
  return plan.precision != QueryPrecision::kExact ||
         plan.algorithm == QueryAlgo::kLsh ||
         plan.algorithm == QueryAlgo::kSketch;
}

Matrix GatherRows(const Matrix& data, const std::vector<std::size_t>& rows) {
  Matrix out(rows.size(), data.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto src = data.Row(rows[i]);
    std::copy(src.begin(), src.end(), out.Row(i).begin());
  }
  return out;
}

}  // namespace

Engine::Engine(Matrix data, EngineOptions options)
    : data_(std::move(data)),
      options_(options),
      profile_(DatasetProfile::FromData(data_)),
      build_rng_(options.seed) {}

Engine::Engine(Matrix data, EngineOptions options, DatasetProfile profile,
               std::unique_ptr<Planner> planner)
    : data_(std::move(data)),
      options_(options),
      profile_(profile),
      planner_(std::move(planner)),
      build_rng_(options.seed) {
  feedback_ =
      std::make_unique<FeedbackPlanner>(planner_.get(), options_.feedback);
}

StatusOr<std::unique_ptr<Engine>> Engine::Create(Matrix data,
                                                 EngineOptions options) {
  IPS_RETURN_IF_ERROR(ValidateNonEmpty(data, "engine data"));
  IPS_RETURN_IF_ERROR(ValidateFinite(data, "engine data"));
  if (options.tree_leaf_size < 1) {
    return Status::InvalidArgument("engine tree_leaf_size must be >= 1");
  }
  if (options.lsh_params.k < 1 || options.lsh_params.l < 1) {
    return Status::InvalidArgument("engine lsh k and l must be >= 1");
  }
  IPS_RETURN_IF_ERROR(ValidateFilterParams(options.sketch_filter));
  IPS_RETURN_IF_ERROR(ValidateFeedbackOptions(options.feedback));
  std::unique_ptr<Engine> engine(
      new Engine(std::move(data), options));
  IPS_RETURN_IF_ERROR(engine->Calibrate());
  return engine;
}

Status Engine::Calibrate() {
  // Calibration runs during Create, before the engine is shared, but
  // it draws from build_rng_, so it takes the build lock like any
  // other index-building path.
  MutexLock lock(build_mutex_);
  PlannerCalibration calib;
  calib.recall_margin = options_.recall_margin;
  calib.sketch_cost = SketchCostModel(profile_.n, options_.sketch_params);
  calib.lsh_probe_overhead = static_cast<double>(options_.lsh_params.k) *
                             static_cast<double>(options_.lsh_params.l);
  calib.quant_cost_ratio = kQuantEstimateDotEquivalent;
  calib.filter_survivor_multiplier =
      options_.sketch_filter.survivor_multiplier;
  calib.filter_survivor_floor = options_.sketch_filter.survivor_floor;

  const std::size_t probes =
      std::min(options_.probe_queries, profile_.n);
  if (probes == 0) {
    planner_ = std::make_unique<Planner>(profile_, calib);
    feedback_ =
        std::make_unique<FeedbackPlanner>(planner_.get(), options_.feedback);
    return Status::Ok();
  }

  // Probe indexes are built on a subsample so warmup stays cheap; the
  // measured fractions extrapolate to the full dataset.
  const std::size_t sample_size =
      std::max<std::size_t>(1, std::min(options_.probe_sample, profile_.n));
  const Matrix sample =
      GatherRows(data_, SampleRows(data_, sample_size, &build_rng_));
  const DatasetProfile sample_profile = DatasetProfile::FromData(sample);
  const std::vector<std::size_t> query_rows =
      SampleRows(data_, probes, &build_rng_);

  // Probe requests go through the same unified Query paths that serve
  // traffic, so the cost model is calibrated from the exact QueryStats
  // bookkeeping it will later be judged against.
  const QueryOptions signed_probe;  // k=1, signed defaults
  QueryOptions unsigned_probe;
  unsigned_probe.is_signed = false;

  // Tree probe: pruning fraction of the subsample tree.
  auto probe_tree =
      TreeMipsIndex::Create(sample, options_.tree_leaf_size, &build_rng_);
  IPS_RETURN_IF_ERROR(probe_tree.status());
  double tree_evaluated = 0.0;
  for (std::size_t row : query_rows) {
    QueryStats stats;
    auto matches = (*probe_tree)->Query(data_.Row(row), signed_probe, &stats);
    IPS_RETURN_IF_ERROR(matches.status());
    tree_evaluated += static_cast<double>(stats.dot_products);
  }
  calib.tree_fraction = tree_evaluated / static_cast<double>(probes) /
                        static_cast<double>(sample.rows());

  // LSH probe: candidate fraction and recall@1 against the exact answer.
  // Skipped (recall stays 0) when the data is all-zero, where the
  // Simple-LSH lift is undefined.
  if (sample_profile.max_norm > 0.0) {
    const SimpleMipsTransform probe_transform(profile_.dim,
                                              sample_profile.max_norm);
    const SimHashFamily probe_family(probe_transform.output_dim());
    auto probe_lsh =
        LshMipsIndex::Create(sample, &probe_transform, probe_family,
                             options_.lsh_params, &build_rng_);
    IPS_RETURN_IF_ERROR(probe_lsh.status());
    double candidate_total = 0.0;
    std::size_t lsh_hits = 0;
    std::size_t lsh_topk_hits = 0;
    std::size_t sketch_hits = 0;
    auto probe_sketch = SketchIndex::Create(
        sample, SketchConfig{options_.sketch_params, options_.sketch_filter},
        &build_rng_);
    IPS_RETURN_IF_ERROR(probe_sketch.status());
    // Two-stage probes: recall@5 of the quantized and filtered scans
    // against the exact top-5, measured through the same top_k.cc
    // entry points serving traffic takes.
    const QuantizedMatrix probe_quant = QuantizedMatrix::Quantize(sample);
    const InnerProductFilter probe_filter(sample, options_.sketch_filter,
                                          &build_rng_);
    calib.filter_cost_ratio = probe_filter.CostRatio();
    QueryOptions rerank_probe;
    rerank_probe.k = std::min<std::size_t>(5, sample.rows());
    std::size_t quant_hits = 0;
    std::size_t filter_hits = 0;
    std::size_t rerank_total = 0;
    for (std::size_t row : query_rows) {
      const auto q = data_.Row(row);
      const auto exact_signed =
          TopKBruteForce(sample, q, 1, /*is_signed=*/true);
      const auto exact_unsigned =
          TopKBruteForce(sample, q, 1, /*is_signed=*/false);
      const auto exact_topk =
          TopKBruteForce(sample, q, rerank_probe.k, /*is_signed=*/true);
      // One k=5 LSH probe measures both depths: its first element is
      // the k=1 answer (recall@1), and its overlap with the exact top-5
      // is the recall@5 that governs k > 1 eligibility. The candidate
      // set LSH retrieves is independent of k, so one call suffices.
      QueryStats lsh_stats;
      auto lsh_top = (*probe_lsh)->Query(q, rerank_probe, &lsh_stats);
      IPS_RETURN_IF_ERROR(lsh_top.status());
      candidate_total += static_cast<double>(lsh_stats.candidates);
      if (!(*lsh_top).empty() && !exact_signed.empty() &&
          (*lsh_top)[0].index == exact_signed[0].index) {
        ++lsh_hits;
      }
      for (const SearchMatch& truth : exact_topk) {
        for (const SearchMatch& got : *lsh_top) {
          if (got.index == truth.index) {
            ++lsh_topk_hits;
            break;
          }
        }
      }
      QueryStats sketch_stats;
      auto sketch_top =
          (*probe_sketch)->Query(q, unsigned_probe, &sketch_stats);
      IPS_RETURN_IF_ERROR(sketch_top.status());
      if (!(*sketch_top).empty() && !exact_unsigned.empty() &&
          (*sketch_top)[0].index == exact_unsigned[0].index) {
        ++sketch_hits;
      }
      const auto quant_topk =
          QueryQuantizedRerank(sample, probe_quant, q, rerank_probe);
      const auto filter_topk =
          QueryFilteredRerank(sample, probe_filter, q, rerank_probe);
      rerank_total += exact_topk.size();
      for (const SearchMatch& truth : exact_topk) {
        for (const SearchMatch& got : quant_topk) {
          if (got.index == truth.index) {
            ++quant_hits;
            break;
          }
        }
        for (const SearchMatch& got : filter_topk) {
          if (got.index == truth.index) {
            ++filter_hits;
            break;
          }
        }
      }
    }
    calib.lsh_candidate_fraction = candidate_total /
                                   static_cast<double>(probes) /
                                   static_cast<double>(sample.rows());
    calib.lsh_recall =
        static_cast<double>(lsh_hits) / static_cast<double>(probes);
    calib.sketch_recall =
        static_cast<double>(sketch_hits) / static_cast<double>(probes);
    if (rerank_total > 0) {
      calib.lsh_topk_recall = static_cast<double>(lsh_topk_hits) /
                              static_cast<double>(rerank_total);
      calib.quant_recall = static_cast<double>(quant_hits) /
                           static_cast<double>(rerank_total);
      calib.filter_recall = static_cast<double>(filter_hits) /
                            static_cast<double>(rerank_total);
    }
  }

  calib.probe_queries = probes;
  planner_ = std::make_unique<Planner>(profile_, calib);
  feedback_ =
      std::make_unique<FeedbackPlanner>(planner_.get(), options_.feedback);
  return Status::Ok();
}

Status Engine::EnsureIndex(QueryAlgo algo) const {
  MutexLock lock(build_mutex_);
  switch (algo) {
    case QueryAlgo::kBruteForce: {
      if (brute_index_ != nullptr) return Status::Ok();
      auto built = BruteForceIndex::Create(data_);
      IPS_RETURN_IF_ERROR(built.status());
      brute_index_ = std::move(built).value();
      return Status::Ok();
    }
    case QueryAlgo::kBallTree: {
      if (tree_index_ != nullptr) return Status::Ok();
      auto built =
          TreeMipsIndex::Create(data_, options_.tree_leaf_size, &build_rng_);
      IPS_RETURN_IF_ERROR(built.status());
      tree_index_ = std::move(built).value();
      return Status::Ok();
    }
    case QueryAlgo::kLsh: {
      if (lsh_index_ != nullptr) return Status::Ok();
      if (profile_.max_norm <= 0.0) {
        return Status::FailedPrecondition(
            "lsh path unavailable: all data vectors are zero");
      }
      if (lsh_transform_ == nullptr) {
        lsh_transform_ = std::make_unique<SimpleMipsTransform>(
            profile_.dim, profile_.max_norm);
        lsh_family_ =
            std::make_unique<SimHashFamily>(lsh_transform_->output_dim());
      }
      // Pin the rng state the build starts from: snapshots persist it
      // so a load can replay the hash-function draws bit-identically
      // instead of re-hashing the dataset.
      lsh_prebuild_state_ = build_rng_.SaveState();
      lsh_prebuild_valid_ = true;
      auto built =
          LshMipsIndex::Create(data_, lsh_transform_.get(), *lsh_family_,
                               options_.lsh_params, &build_rng_);
      IPS_RETURN_IF_ERROR(built.status());
      lsh_index_ = std::move(built).value();
      return Status::Ok();
    }
    case QueryAlgo::kSketch: {
      if (sketch_index_ != nullptr) return Status::Ok();
      // Pinned for snapshots: a load re-runs this build from the same
      // state, which reproduces the index deterministically.
      sketch_prebuild_state_ = build_rng_.SaveState();
      sketch_prebuild_valid_ = true;
      auto built = SketchIndex::Create(
          data_,
          SketchConfig{options_.sketch_params, options_.sketch_filter},
          &build_rng_);
      IPS_RETURN_IF_ERROR(built.status());
      sketch_index_ = std::move(built).value();
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown serve algorithm");
}

StatusOr<QueryResult> Engine::Query(const Request& request) const {
  static Counter* const requests =
      MetricsRegistry::Global().GetCounter("serve.engine.requests");
  static Counter* const traced =
      MetricsRegistry::Global().GetCounter("serve.engine.traced");
  static Counter* const selected[kNumQueryAlgos] = {
      MetricsRegistry::Global().GetCounter("serve.engine.selected.brute"),
      MetricsRegistry::Global().GetCounter("serve.engine.selected.tree"),
      MetricsRegistry::Global().GetCounter("serve.engine.selected.lsh"),
      MetricsRegistry::Global().GetCounter("serve.engine.selected.sketch")};
  static Histogram* const exec_seconds =
      MetricsRegistry::Global().GetHistogram("serve.engine.exec_seconds");

  const std::span<const double> query = request.query;
  const QueryOptions& options = request.options;
  IPS_RETURN_IF_ERROR(ValidateRequestContext(request.context));
  IPS_RETURN_IF_ERROR(
      ValidateVectorDims(query, profile_.dim, "serve query"));
  IPS_RETURN_IF_ERROR(ValidateVectorFinite(query, "serve query"));
  requests->Increment();

  std::unique_ptr<Trace> trace;
  if (options.trace) trace = std::make_unique<Trace>("serve");

  WallTimer timer;
  // The span scope: serve/query -> serve/plan, then the algorithm's own
  // spans nested by Execute. The lambda closes the root span before the
  // trace is published below.
  StatusOr<QueryResult> outcome = [&]() -> StatusOr<QueryResult> {
    TraceSpan root(trace.get(), "serve/query");
    auto planned = MakePlan(options, trace.get());
    IPS_RETURN_IF_ERROR(planned.status());
    PlanDecision plan = std::move(planned).value();
    IPS_RETURN_IF_ERROR(EnsureIndex(plan.algorithm));
    return Execute(plan.algorithm, query, options, std::move(plan),
                   trace.get());
  }();
  IPS_RETURN_IF_ERROR(outcome.status());
  QueryResult result = std::move(outcome).value();
  // Shadow audit (feedback loop): planner-chosen paths that can miss —
  // forced paths are A/B probes and explicit precisions pin the
  // caller's mode, and a truly exact plan has nothing to learn. Note
  // the gate is PlanCanMiss, not expected_recall < 1.0: a path whose
  // warmup recall calibrated to exactly 1.0 must still be audited or
  // the feedback loop is blind to it degrading under shift. The
  // audit's brute scan is billed to this request (it ran here) and its
  // wall time lands in exec_seconds below.
  if (options_.feedback.enabled && !options.force_algorithm.has_value() &&
      options.precision == QueryPrecision::kAuto &&
      PlanCanMiss(result.plan) && feedback_->BeginAudit(options)) {
    AuditResult(query, options, &result);
  }
  result.stats.exec_seconds = timer.Seconds();
  result.stats.deadline_met =
      result.stats.exec_seconds <= request.context.deadline_seconds;
  selected[static_cast<std::size_t>(result.stats.algorithm)]->Increment();
  exec_seconds->Observe(result.stats.exec_seconds);
  if (trace != nullptr) {
    traced->Increment();
    std::shared_ptr<const Trace> shared(std::move(trace));
    TraceRing::Global().Record(shared);
    result.stats.trace = std::move(shared);
  }
  return result;
}

StatusOr<PlanDecision> Engine::MakePlan(const QueryOptions& options,
                                        Trace* trace) const {
  TraceSpan plan_span(trace, "serve/plan");
  PlanDecision plan;
  if (options.force_algorithm.has_value()) {
    IPS_RETURN_IF_ERROR(ValidateQueryOptions(options));
    const QueryAlgo forced = *options.force_algorithm;
    if (forced == QueryAlgo::kBallTree && !options.is_signed) {
      return Status::InvalidArgument(
          "ball-tree top-k answers signed queries only");
    }
    plan.algorithm = forced;
    // A forced path keeps the request's precision verbatim (kAuto runs
    // the path's native mode); the index rejects combinations it
    // cannot honor.
    plan.precision = options.precision;
    plan.expected_dot_products =
        planner_->ExpectedDotProducts(forced, options.precision, options);
    plan.expected_recall = 0.0;
    plan.reason =
        std::string("forced ") + std::string(QueryAlgoName(forced));
    return plan;
  }
  // The adaptive layer: live re-fit estimates override the warmup
  // calibration per workload segment (a straight pass-through to the
  // base planner while feedback is disabled).
  auto decision = feedback_->Plan(options);
  IPS_RETURN_IF_ERROR(decision.status());
  return std::move(decision).value();
}

void Engine::AuditResult(std::span<const double> query,
                         const QueryOptions& options,
                         QueryResult* result) const {
  const auto exact =
      TopKBruteForce(data_, query, options.k, options.is_signed);
  std::size_t hits = 0;
  for (const SearchMatch& truth : exact) {
    for (const SearchMatch& got : result->matches) {
      if (got.index == truth.index) {
        ++hits;
        break;
      }
    }
  }
  const double observed_recall =
      exact.empty() ? 1.0
                    : static_cast<double>(hits) /
                          static_cast<double>(exact.size());
  // The served path's own cost is what the re-fit curves price; the
  // audit scan is accounted separately below.
  feedback_->RecordAudit(options, result->plan.algorithm,
                         result->plan.precision, observed_recall,
                         static_cast<double>(result->stats.dot_products));
  result->stats.dot_products += data_.rows();
  result->stats.metrics.Add("serve.feedback.audit_dots",
                            static_cast<double>(data_.rows()));
  if (observed_recall < options.recall_target) {
    // Predicted-miss hedging, audit flavor: the exact answer is already
    // in hand, so the caller gets it instead of the miss. The miss
    // still trained the curves above, which is what evicts the path.
    feedback_->NoteHedge();
    result->matches = exact;
    result->plan.reason +=
        "; feedback-hedged to exact (observed recall " +
        std::to_string(observed_recall) + " below target " +
        std::to_string(options.recall_target) + ")";
  }
}

const MipsIndex* Engine::PinIndex(QueryAlgo algo) const {
  MutexLock lock(build_mutex_);
  switch (algo) {
    case QueryAlgo::kBruteForce:
      return brute_index_.get();
    case QueryAlgo::kBallTree:
      return tree_index_.get();
    case QueryAlgo::kLsh:
      return lsh_index_.get();
    case QueryAlgo::kSketch:
      return sketch_index_.get();
  }
  return nullptr;
}

StatusOr<std::vector<QueryResult>> Engine::BatchQuery(
    const Matrix& queries, const QueryOptions& options,
    const RequestContext& context) const {
  static Counter* const batch_requests =
      MetricsRegistry::Global().GetCounter("serve.engine.batch.requests");
  static Counter* const batch_queries =
      MetricsRegistry::Global().GetCounter("serve.engine.batch.queries");
  static Counter* const traced =
      MetricsRegistry::Global().GetCounter("serve.engine.traced");
  static Counter* const selected[kNumQueryAlgos] = {
      MetricsRegistry::Global().GetCounter("serve.engine.selected.brute"),
      MetricsRegistry::Global().GetCounter("serve.engine.selected.tree"),
      MetricsRegistry::Global().GetCounter("serve.engine.selected.lsh"),
      MetricsRegistry::Global().GetCounter("serve.engine.selected.sketch")};
  static Histogram* const batch_exec = MetricsRegistry::Global().GetHistogram(
      "serve.engine.batch.exec_seconds");

  IPS_RETURN_IF_ERROR(ValidateQueryOptions(options));
  IPS_RETURN_IF_ERROR(ValidateRequestContext(context));
  const std::size_t m = queries.rows();
  if (m == 0) return std::vector<QueryResult>();
  IPS_RETURN_IF_ERROR(
      ValidateDims(queries, profile_.dim, "serve batch queries"));
  IPS_RETURN_IF_ERROR(ValidateFinite(queries, "serve batch queries"));
  batch_requests->Increment();
  batch_queries->Add(m);

  std::unique_ptr<Trace> trace;
  if (options.trace) trace = std::make_unique<Trace>("serve.batch");

  WallTimer timer;
  StatusOr<std::vector<QueryResult>> outcome =
      [&]() -> StatusOr<std::vector<QueryResult>> {
    TraceSpan root(trace.get(), "serve/batch_query");
    root.AddCount("batch_queries", m);
    auto planned = MakePlan(options, trace.get());
    IPS_RETURN_IF_ERROR(planned.status());
    PlanDecision plan = std::move(planned).value();
    IPS_RETURN_IF_ERROR(EnsureIndex(plan.algorithm));
    const MipsIndex* index = PinIndex(plan.algorithm);
    if (index == nullptr) {
      return Status::Internal(
          std::string("index not built for algorithm ") +
          std::string(QueryAlgoName(plan.algorithm)));
    }
    QueryOptions planned_options = options;
    planned_options.precision = plan.precision;
    auto results = index->BatchQuery(queries, planned_options);
    IPS_RETURN_IF_ERROR(results.status());
    std::vector<QueryResult> out = std::move(results).value();
    for (QueryResult& result : out) result.plan = plan;
    return out;
  }();
  IPS_RETURN_IF_ERROR(outcome.status());
  std::vector<QueryResult> results = std::move(outcome).value();
  const double total_seconds = timer.Seconds();
  const double amortized = total_seconds / static_cast<double>(m);
  for (QueryResult& result : results) {
    result.stats.exec_seconds = amortized;
    // Per-member deadline inheritance (RequestContext::deadline_seconds
    // of the shared context): judged against the amortized share here;
    // the scheduler replaces this with queue-aware wall clock for
    // scheduled traffic.
    result.stats.deadline_met = amortized <= context.deadline_seconds;
    selected[static_cast<std::size_t>(result.stats.algorithm)]->Increment();
  }
  batch_exec->Observe(total_seconds);
  if (trace != nullptr) {
    traced->Increment();
    // The engine-level trace (plan + batch dispatch) goes to the ring;
    // each result keeps the index-level batch trace in its stats.
    TraceRing::Global().Record(
        std::shared_ptr<const Trace>(std::move(trace)));
  }
  return results;
}

StatusOr<QueryResult> Engine::Execute(QueryAlgo algo,
                                      std::span<const double> query,
                                      const QueryOptions& options,
                                      PlanDecision plan, Trace* trace) const {
  const MipsIndex* index = PinIndex(algo);
  if (index == nullptr) {
    // EnsureIndex ran before Execute, so a missing index is an internal
    // invariant break; hot query paths report it as a Status, not a
    // process abort (ipslint: check-in-query).
    return Status::Internal(std::string("index not built for algorithm ") +
                            std::string(QueryAlgoName(algo)));
  }

  QueryResult response;
  // The plan committed to a precision (the request's own when explicit
  // or forced); the index runs exactly what was planned.
  QueryOptions planned_options = options;
  planned_options.precision = plan.precision;
  auto matches =
      index->Query(query, planned_options, &response.stats, trace);
  IPS_RETURN_IF_ERROR(matches.status());
  response.matches = std::move(matches).value();
  response.plan = std::move(plan);
  return response;
}

}  // namespace ips
