#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/top_k.h"
#include "linalg/validate.h"
#include "linalg/vector_ops.h"
#include "util/check.h"
#include "util/timer.h"

namespace ips {
namespace {

// Sketch descent touches two node sketches per level, a geometric sum
// dominated by the root, plus the exact rescan of one leaf.
double SketchCostModel(std::size_t n, const SketchMipsParams& params) {
  const double rows =
      static_cast<double>(params.copies) * params.bucket_multiplier *
      std::pow(static_cast<double>(n),
               1.0 - 2.0 / std::max(params.kappa, 2.0));
  return 2.0 * std::max(1.0, rows) + static_cast<double>(params.leaf_size);
}

// Samples `count` distinct row indices of `data` (all rows when count
// >= rows).
std::vector<std::size_t> SampleRows(const Matrix& data, std::size_t count,
                                    Rng* rng) {
  std::vector<std::size_t> indices(data.rows());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  if (count >= indices.size()) return indices;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng->NextBounded(indices.size() - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

Matrix GatherRows(const Matrix& data, const std::vector<std::size_t>& rows) {
  Matrix out(rows.size(), data.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto src = data.Row(rows[i]);
    std::copy(src.begin(), src.end(), out.Row(i).begin());
  }
  return out;
}

}  // namespace

Engine::Engine(Matrix data, EngineOptions options)
    : data_(std::move(data)),
      options_(options),
      profile_(DatasetProfile::FromData(data_)),
      build_rng_(options.seed) {}

StatusOr<std::unique_ptr<Engine>> Engine::Create(Matrix data,
                                                 EngineOptions options) {
  IPS_RETURN_IF_ERROR(ValidateNonEmpty(data, "engine data"));
  IPS_RETURN_IF_ERROR(ValidateFinite(data, "engine data"));
  if (options.tree_leaf_size < 1) {
    return Status::InvalidArgument("engine tree_leaf_size must be >= 1");
  }
  if (options.lsh_params.k < 1 || options.lsh_params.l < 1) {
    return Status::InvalidArgument("engine lsh k and l must be >= 1");
  }
  std::unique_ptr<Engine> engine(
      new Engine(std::move(data), options));
  IPS_RETURN_IF_ERROR(engine->Calibrate());
  return engine;
}

Status Engine::Calibrate() {
  PlannerCalibration calib;
  calib.recall_margin = options_.recall_margin;
  calib.sketch_cost = SketchCostModel(profile_.n, options_.sketch_params);
  calib.lsh_probe_overhead = static_cast<double>(options_.lsh_params.k) *
                             static_cast<double>(options_.lsh_params.l);

  const std::size_t probes =
      std::min(options_.probe_queries, profile_.n);
  if (probes == 0) {
    planner_ = std::make_unique<Planner>(profile_, calib);
    return Status::Ok();
  }

  // Probe indexes are built on a subsample so warmup stays cheap; the
  // measured fractions extrapolate to the full dataset.
  const std::size_t sample_size =
      std::max<std::size_t>(1, std::min(options_.probe_sample, profile_.n));
  const Matrix sample =
      GatherRows(data_, SampleRows(data_, sample_size, &build_rng_));
  const DatasetProfile sample_profile = DatasetProfile::FromData(sample);
  const std::vector<std::size_t> query_rows =
      SampleRows(data_, probes, &build_rng_);

  // Tree probe: pruning fraction of the subsample tree.
  auto probe_tree =
      TreeMipsIndex::Create(sample, options_.tree_leaf_size, &build_rng_);
  IPS_RETURN_IF_ERROR(probe_tree.status());
  double tree_evaluated = 0.0;
  for (std::size_t row : query_rows) {
    std::size_t evaluated = 0;
    (*probe_tree)->tree().QueryTopK(data_.Row(row), 1, &evaluated);
    tree_evaluated += static_cast<double>(evaluated);
  }
  calib.tree_fraction = tree_evaluated / static_cast<double>(probes) /
                        static_cast<double>(sample.rows());

  // LSH probe: candidate fraction and recall@1 against the exact answer.
  // Skipped (recall stays 0) when the data is all-zero, where the
  // Simple-LSH lift is undefined.
  if (sample_profile.max_norm > 0.0) {
    const SimpleMipsTransform probe_transform(profile_.dim,
                                              sample_profile.max_norm);
    const SimHashFamily probe_family(probe_transform.output_dim());
    auto probe_lsh =
        LshMipsIndex::Create(sample, &probe_transform, probe_family,
                             options_.lsh_params, &build_rng_);
    IPS_RETURN_IF_ERROR(probe_lsh.status());
    double candidate_total = 0.0;
    std::size_t lsh_hits = 0;
    std::size_t sketch_hits = 0;
    auto probe_sketch =
        SketchIndex::Create(sample, options_.sketch_params, &build_rng_);
    IPS_RETURN_IF_ERROR(probe_sketch.status());
    for (std::size_t row : query_rows) {
      const auto q = data_.Row(row);
      const auto exact_signed =
          TopKBruteForce(sample, q, 1, /*is_signed=*/true);
      const auto exact_unsigned =
          TopKBruteForce(sample, q, 1, /*is_signed=*/false);
      const auto candidates = (*probe_lsh)->Candidates(q);
      candidate_total += static_cast<double>(candidates.size());
      const auto lsh_top =
          TopKFromCandidates(sample, q, candidates, 1, /*is_signed=*/true);
      if (!lsh_top.empty() && !exact_signed.empty() &&
          lsh_top[0].index == exact_signed[0].index) {
        ++lsh_hits;
      }
      const std::size_t recovered =
          (*probe_sketch)->sketch().RecoverArgmax(q);
      if (!exact_unsigned.empty() && recovered == exact_unsigned[0].index) {
        ++sketch_hits;
      }
    }
    calib.lsh_candidate_fraction = candidate_total /
                                   static_cast<double>(probes) /
                                   static_cast<double>(sample.rows());
    calib.lsh_recall =
        static_cast<double>(lsh_hits) / static_cast<double>(probes);
    calib.sketch_recall =
        static_cast<double>(sketch_hits) / static_cast<double>(probes);
  }

  calib.probe_queries = probes;
  planner_ = std::make_unique<Planner>(profile_, calib);
  return Status::Ok();
}

Status Engine::EnsureIndex(ServeAlgo algo) const {
  std::lock_guard<std::mutex> lock(build_mutex_);
  switch (algo) {
    case ServeAlgo::kBruteForce:
      return Status::Ok();
    case ServeAlgo::kBallTree: {
      if (tree_index_ != nullptr) return Status::Ok();
      auto built =
          TreeMipsIndex::Create(data_, options_.tree_leaf_size, &build_rng_);
      IPS_RETURN_IF_ERROR(built.status());
      tree_index_ = std::move(built).value();
      return Status::Ok();
    }
    case ServeAlgo::kLsh: {
      if (lsh_index_ != nullptr) return Status::Ok();
      if (profile_.max_norm <= 0.0) {
        return Status::FailedPrecondition(
            "lsh path unavailable: all data vectors are zero");
      }
      if (lsh_transform_ == nullptr) {
        lsh_transform_ = std::make_unique<SimpleMipsTransform>(
            profile_.dim, profile_.max_norm);
        lsh_family_ =
            std::make_unique<SimHashFamily>(lsh_transform_->output_dim());
      }
      auto built =
          LshMipsIndex::Create(data_, lsh_transform_.get(), *lsh_family_,
                               options_.lsh_params, &build_rng_);
      IPS_RETURN_IF_ERROR(built.status());
      lsh_index_ = std::move(built).value();
      return Status::Ok();
    }
    case ServeAlgo::kSketch: {
      if (sketch_index_ != nullptr) return Status::Ok();
      auto built =
          SketchIndex::Create(data_, options_.sketch_params, &build_rng_);
      IPS_RETURN_IF_ERROR(built.status());
      sketch_index_ = std::move(built).value();
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown serve algorithm");
}

StatusOr<TopKResponse> Engine::TopK(std::span<const double> query,
                                    const TopKRequest& request) const {
  IPS_RETURN_IF_ERROR(
      ValidateVectorDims(query, profile_.dim, "serve query"));
  IPS_RETURN_IF_ERROR(ValidateVectorFinite(query, "serve query"));

  PlanDecision plan;
  if (request.force_algorithm.has_value()) {
    PlanRequest plan_request{request.k, request.recall_target,
                             request.candidate_budget, request.is_signed};
    IPS_RETURN_IF_ERROR(ValidatePlanRequest(plan_request));
    const ServeAlgo forced = *request.force_algorithm;
    if (forced == ServeAlgo::kBallTree && !request.is_signed) {
      return Status::InvalidArgument(
          "ball-tree top-k answers signed queries only");
    }
    if (forced == ServeAlgo::kSketch &&
        (request.is_signed || request.k != 1)) {
      return Status::InvalidArgument(
          "sketch path answers unsigned k=1 queries only");
    }
    plan.algorithm = forced;
    plan.expected_dot_products =
        planner_->ExpectedDotProducts(forced, plan_request);
    plan.expected_recall = 0.0;
    plan.reason = std::string("forced ") + std::string(ServeAlgoName(forced));
  } else {
    PlanRequest plan_request{request.k, request.recall_target,
                             request.candidate_budget, request.is_signed};
    auto decision = planner_->Plan(plan_request);
    IPS_RETURN_IF_ERROR(decision.status());
    plan = std::move(decision).value();
  }

  IPS_RETURN_IF_ERROR(EnsureIndex(plan.algorithm));
  return Execute(plan.algorithm, query, request, std::move(plan));
}

StatusOr<TopKResponse> Engine::Execute(ServeAlgo algo,
                                       std::span<const double> query,
                                       const TopKRequest& request,
                                       PlanDecision plan) const {
  WallTimer timer;
  TopKResponse response;
  response.stats.algorithm = algo;
  switch (algo) {
    case ServeAlgo::kBruteForce: {
      response.matches =
          TopKBruteForce(data_, query, request.k, request.is_signed);
      response.stats.candidates = data_.rows();
      response.stats.dot_products = data_.rows();
      break;
    }
    case ServeAlgo::kBallTree: {
      const MipsBallTree* tree = nullptr;
      {
        std::lock_guard<std::mutex> lock(build_mutex_);
        tree = &tree_index_->tree();
      }
      std::size_t evaluated = 0;
      for (const auto& [index, value] :
           tree->QueryTopK(query, request.k, &evaluated)) {
        response.matches.push_back({index, value});
      }
      response.stats.candidates = evaluated;
      response.stats.dot_products = evaluated;
      break;
    }
    case ServeAlgo::kLsh: {
      const LshMipsIndex* lsh = nullptr;
      {
        std::lock_guard<std::mutex> lock(build_mutex_);
        lsh = lsh_index_.get();
      }
      const std::vector<std::size_t> candidates = lsh->Candidates(query);
      response.matches = TopKFromCandidates(data_, query, candidates,
                                            request.k, request.is_signed);
      response.stats.candidates = candidates.size();
      response.stats.dot_products = candidates.size();
      break;
    }
    case ServeAlgo::kSketch: {
      const SketchIndex* sketch = nullptr;
      {
        std::lock_guard<std::mutex> lock(build_mutex_);
        sketch = sketch_index_.get();
      }
      const std::size_t index = sketch->sketch().RecoverArgmax(query);
      const double value = std::abs(Dot(data_.Row(index), query));
      response.matches.push_back({index, value});
      response.stats.candidates = 1;
      response.stats.dot_products =
          2 * sketch->sketch().RootSketchRows() +
          options_.sketch_params.leaf_size;
      break;
    }
  }
  response.stats.exec_seconds = timer.Seconds();
  response.plan = std::move(plan);
  return response;
}

}  // namespace ips
