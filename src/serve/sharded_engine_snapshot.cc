// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// ShardedEngine persistence: a manifest file recording the partition
// geometry plus one per-shard Engine snapshot directory. The shard
// snapshots are written first and the manifest last, so a reader that
// finds a valid manifest finds valid shards beneath it.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/engine.h"
#include "serve/sharded_engine.h"
#include "storage/file.h"
#include "storage/format.h"
#include "storage/snapshot.h"
#include "util/failpoint.h"

namespace ips {
namespace {

constexpr char kManifestFile[] = "/sharded.ips";

std::string ShardDir(const std::string& dir, std::size_t i) {
  return dir + "/shard_" + std::to_string(i);
}

struct Manifest {
  std::uint64_t num_shards = 0;
  std::uint64_t dim = 0;
  std::vector<std::uint64_t> offsets;
};

Status DecodeManifest(std::span<const unsigned char> bytes,
                      Manifest* manifest) {
  storage::PayloadReader r(bytes, "META");
  IPS_RETURN_IF_ERROR(r.GetU64(&manifest->num_shards));
  IPS_RETURN_IF_ERROR(r.GetU64(&manifest->dim));
  if (manifest->num_shards * 8 > r.remaining()) {
    return Status::DataLoss("sharded manifest claims " +
                            std::to_string(manifest->num_shards) +
                            " shards but holds only " +
                            std::to_string(r.remaining()) + " bytes");
  }
  manifest->offsets.resize(static_cast<std::size_t>(manifest->num_shards));
  for (std::uint64_t& offset : manifest->offsets) {
    IPS_RETURN_IF_ERROR(r.GetU64(&offset));
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("sharded manifest has " +
                            std::to_string(r.remaining()) +
                            " trailing bytes");
  }
  return Status::Ok();
}

}  // namespace

Status ShardedEngine::SaveSnapshot(const std::string& dir) const {
  IPS_FAILPOINT("serve/snapshot-save");
  IPS_RETURN_IF_ERROR(storage::EnsureDirectory(dir));
  // Shards first, manifest last: the manifest is the commit point a
  // loader starts from.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    IPS_RETURN_IF_ERROR(shards_[i]->engine->SaveSnapshot(ShardDir(dir, i)));
  }
  storage::PayloadWriter w;
  w.PutU64(shards_.size());
  w.PutU64(dim_);
  for (const auto& shard : shards_) w.PutU64(shard->offset);
  auto created = storage::SnapshotWriter::Create(dir + kManifestFile);
  IPS_RETURN_IF_ERROR(created.status());
  storage::SnapshotWriter writer = std::move(created).value();
  IPS_RETURN_IF_ERROR(
      writer.WriteSection(storage::kSectionMeta, 1, w.bytes()));
  return writer.Finish();
}

StatusOr<std::unique_ptr<ShardedEngine>> ShardedEngine::CreateFromSnapshot(
    const std::string& dir, ShardedEngineOptions options,
    const SnapshotLoadOptions& load) {
  IPS_FAILPOINT("serve/snapshot-load");
  auto opened = storage::SnapshotReader::Open(dir + kManifestFile);
  IPS_RETURN_IF_ERROR(opened.status());
  auto bytes = opened->ReadSection(storage::kSectionMeta);
  IPS_RETURN_IF_ERROR(bytes.status());
  Manifest manifest;
  IPS_RETURN_IF_ERROR(DecodeManifest(*bytes, &manifest));
  if (manifest.num_shards < 1) {
    return Status::DataLoss(dir + kManifestFile + ": zero shards");
  }

  // The snapshot dictates the partition; the caller dictates the
  // serving policy around it.
  options.num_shards = static_cast<std::size_t>(manifest.num_shards);
  IPS_RETURN_IF_ERROR(ValidateOptions(options));

  std::unique_ptr<ShardedEngine> sharded(new ShardedEngine(
      options, static_cast<std::size_t>(manifest.dim)));
  std::size_t expected_offset = 0;
  for (std::size_t i = 0; i < options.num_shards; ++i) {
    auto engine = Engine::CreateFromSnapshot(ShardDir(dir, i), load);
    if (!engine.ok()) {
      return Status(engine.status().code(),
                    "shard " + std::to_string(i) +
                        " load failed: " + engine.status().message());
    }
    if ((*engine)->dim() != sharded->dim_) {
      return Status::DataLoss(
          "shard " + std::to_string(i) + " snapshot is " +
          std::to_string((*engine)->dim()) +
          "-dimensional but the manifest says " +
          std::to_string(sharded->dim_));
    }
    if (manifest.offsets[i] != expected_offset) {
      return Status::DataLoss(
          "shard " + std::to_string(i) + " manifest offset " +
          std::to_string(manifest.offsets[i]) +
          " does not match the " + std::to_string(expected_offset) +
          " rows of the preceding shards");
    }
    auto shard = std::make_unique<Shard>();
    shard->engine = std::move(engine).value();
    shard->offset = expected_offset;
    expected_offset += shard->engine->data().rows();
    sharded->shards_.push_back(std::move(shard));
  }
  return sharded;
}

}  // namespace ips
