// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The cost-model planner behind the serving engine: given dataset
// statistics and a per-request (k, recall target, candidate budget), it
// picks the cheapest (algorithm, precision) variant expected to reach
// the target. The choice is genuinely workload-dependent — the
// Neyshabur–Srebro and Shrivastava ALSH analyses show the winner flips
// with norm distribution and recall target — so the model is calibrated
// from cheap micro-probes at engine warmup instead of hardcoded:
//
//   brute+exact   : recall 1, cost n
//   brute+quant   : measured rerank recall, cost n * quant ratio + survivors
//   tree+exact    : recall 1 (signed only), cost n * pruning fraction
//   lsh+exact     : measured probe recall, cost n * candidate fraction
//   lsh+quant     : compounded recall, quantized verification of candidates
//   sketch (§4.3) : measured argmax recall (unsigned k=1), cost ~ sketch rows
//   sketch+filter : measured filter recall, cost n * filter ratio + survivors
//
// Eligible variants are those whose calibrated recall clears the
// request's target plus a safety margin (exact paths need no margin);
// among the eligible, the planner returns the one with the fewest
// expected dot-equivalents (preferring ones inside the request's
// candidate budget when it is set). An explicit request precision
// restricts the enumeration to variants of that mode.

#ifndef IPS_SERVE_PLANNER_H_
#define IPS_SERVE_PLANNER_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <string>

#include "linalg/matrix.h"
#include "serve/serve_stats.h"
#include "util/status.h"

namespace ips {

/// Dataset statistics the cost model conditions on.
struct DatasetProfile {
  std::size_t n = 0;
  std::size_t dim = 0;
  double min_norm = 0.0;
  double max_norm = 0.0;
  double mean_norm = 0.0;

  /// max/min norm ratio; large values indicate the skewed-norm regime
  /// where asymmetric LSH transforms degrade.
  double NormSpread() const;

  /// Scans `data` once for n, dim, and the norm distribution.
  static DatasetProfile FromData(const Matrix& data);
};

/// Micro-probe measurements taken at engine warmup (on a subsample, so
/// warmup stays cheap; fractions extrapolate to the full dataset).
struct PlannerCalibration {
  /// Fraction of points the ball tree scored per probe query (<= 1).
  double tree_fraction = 1.0;
  /// Mean LSH candidates per probe query as a fraction of n (<= 1).
  double lsh_candidate_fraction = 1.0;
  /// Per-query hashing overhead of the LSH path in dot-equivalents.
  double lsh_probe_overhead = 0.0;
  /// Measured recall@1 of the LSH path on the probe queries.
  double lsh_recall = 0.0;
  /// Measured recall@5 of the LSH path on the probe queries (overlap
  /// with the exact top-5, averaged). This is the eligibility number
  /// for k > 1 requests: a bucket set that usually contains the single
  /// argmax can still miss most of a top-5 on skewed-norm data, so
  /// pricing k > 1 off recall@1 kept LSH eligible for workloads it
  /// demonstrably failed (BENCH_serve targets_met 0.07).
  double lsh_topk_recall = 0.0;
  /// Measured unsigned recall@1 of the sketch path on the probe queries.
  double sketch_recall = 0.0;
  /// Per-query sketch work in dot-equivalents.
  double sketch_cost = 0.0;
  /// Measured recall@5 of the quantized-rerank scan on the probe
  /// queries (intersection with the exact top-5, averaged).
  double quant_recall = 0.0;
  /// Billing rate of one int8 row estimate in exact-dot equivalents
  /// (kQuantEstimateDotEquivalent; kept in the calibration so snapshots
  /// pin the prices a warm start serves with).
  double quant_cost_ratio = 0.25;
  /// Measured recall@5 of the sketch-filtered scan on the probe queries.
  double filter_recall = 0.0;
  /// Cost of one CountSketch row estimate in exact-dot equivalents
  /// (sketch_dim / d of the engine's filter).
  double filter_cost_ratio = 1.0;
  /// Survivor policy of the filtered scan, copied from the engine's
  /// SketchFilterParams so expected costs price the same oversampling
  /// the index actually runs.
  double filter_survivor_multiplier = 16.0;
  std::size_t filter_survivor_floor = 64;
  /// Probe queries the calibration averaged over (0 = uncalibrated:
  /// approximate paths are considered recall-0 and never selected).
  std::size_t probe_queries = 0;
  /// Safety margin: an approximate path is eligible only when its
  /// calibrated recall >= target + margin.
  double recall_margin = 0.05;
};

/// A live (recall, cost) estimate for one (algo, precision) variant,
/// substituted for the warmup-calibrated numbers when a VariantOverride
/// supplies it (the FeedbackPlanner's re-fit hook, serve/feedback.h).
struct VariantEstimate {
  double recall = 0.0;
  double cost = 0.0;
};

/// Hook consulted per variant during Plan: return a live estimate to
/// replace the warmup calibration for that variant, or nullopt to keep
/// it. Must be safe to call concurrently.
using VariantOverride = std::function<std::optional<VariantEstimate>(
    QueryAlgo, QueryPrecision)>;

/// Immutable per-dataset planner; thread-safe (Plan is const and pure).
class Planner {
 public:
  Planner(DatasetProfile profile, PlannerCalibration calibration);

  /// Picks an (algorithm, precision) variant for `request`. Failpoint:
  /// "serve/plan". When `request.precision` is explicit the enumeration
  /// is restricted to that mode and the recall bar becomes advisory —
  /// the cheapest matching variant is returned with the shortfall noted
  /// in the decision's reason.
  [[nodiscard]] StatusOr<PlanDecision> Plan(const QueryOptions& request) const {
    return Plan(request, nullptr);
  }

  /// Plan with per-variant live estimates: where `live` returns one,
  /// its recall/cost replace the warmup calibration for that variant
  /// (eligibility and ranking both use the live numbers — a variant
  /// whose live recall undershoots the target is evicted from the
  /// plan). Exact paths (expected recall >= 1) keep the no-margin rule.
  [[nodiscard]] StatusOr<PlanDecision> Plan(const QueryOptions& request,
                                            const VariantOverride& live) const;

  /// Expected dot-equivalents if (`algo`, `precision`) answered
  /// `request`; used for A/B accounting by benches. kAuto prices the
  /// algorithm's native mode (exact for brute/tree/lsh, the argmax
  /// descent or filtered scan for sketch).
  double ExpectedDotProducts(QueryAlgo algo, QueryPrecision precision,
                             const QueryOptions& request) const;
  double ExpectedDotProducts(QueryAlgo algo,
                             const QueryOptions& request) const {
    return ExpectedDotProducts(algo, QueryPrecision::kAuto, request);
  }

  const DatasetProfile& profile() const { return profile_; }
  const PlannerCalibration& calibration() const { return calibration_; }

  /// Calibrated recall the model expects of (`algo`, `precision`) for
  /// `request`; 0 when the variant cannot answer the request at all
  /// (e.g. signed queries on the sketch argmax path). Public so the
  /// FeedbackPlanner can seed its live estimates from the warmup prior.
  double ExpectedRecall(QueryAlgo algo, QueryPrecision precision,
                        const QueryOptions& request) const;

 private:
  DatasetProfile profile_;
  PlannerCalibration calibration_;
};

}  // namespace ips

#endif  // IPS_SERVE_PLANNER_H_
