// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The cost-model planner behind the serving engine: given dataset
// statistics and a per-request (k, recall target, candidate budget), it
// picks the cheapest of the four answer paths expected to reach the
// target. The choice is genuinely workload-dependent — the
// Neyshabur–Srebro and Shrivastava ALSH analyses show the winner flips
// with norm distribution and recall target — so the model is calibrated
// from cheap micro-probes at engine warmup instead of hardcoded:
//
//   brute  : recall 1, cost n
//   tree   : recall 1 (signed only), cost n * measured pruning fraction
//   lsh    : measured probe recall, cost n * measured candidate fraction
//   sketch : measured probe recall (unsigned k=1 only), cost ~ sketch rows
//
// Eligible algorithms are those whose calibrated recall clears the
// request's target plus a safety margin; among the eligible, the planner
// returns the one with the fewest expected dot products (preferring ones
// inside the request's candidate budget when it is set).

#ifndef IPS_SERVE_PLANNER_H_
#define IPS_SERVE_PLANNER_H_

#include <cstddef>
#include <string>

#include "linalg/matrix.h"
#include "serve/serve_stats.h"
#include "util/status.h"

namespace ips {

/// Dataset statistics the cost model conditions on.
struct DatasetProfile {
  std::size_t n = 0;
  std::size_t dim = 0;
  double min_norm = 0.0;
  double max_norm = 0.0;
  double mean_norm = 0.0;

  /// max/min norm ratio; large values indicate the skewed-norm regime
  /// where asymmetric LSH transforms degrade.
  double NormSpread() const;

  /// Scans `data` once for n, dim, and the norm distribution.
  static DatasetProfile FromData(const Matrix& data);
};

/// Micro-probe measurements taken at engine warmup (on a subsample, so
/// warmup stays cheap; fractions extrapolate to the full dataset).
struct PlannerCalibration {
  /// Fraction of points the ball tree scored per probe query (<= 1).
  double tree_fraction = 1.0;
  /// Mean LSH candidates per probe query as a fraction of n (<= 1).
  double lsh_candidate_fraction = 1.0;
  /// Per-query hashing overhead of the LSH path in dot-equivalents.
  double lsh_probe_overhead = 0.0;
  /// Measured recall@1 of the LSH path on the probe queries.
  double lsh_recall = 0.0;
  /// Measured unsigned recall@1 of the sketch path on the probe queries.
  double sketch_recall = 0.0;
  /// Per-query sketch work in dot-equivalents.
  double sketch_cost = 0.0;
  /// Probe queries the calibration averaged over (0 = uncalibrated:
  /// approximate paths are considered recall-0 and never selected).
  std::size_t probe_queries = 0;
  /// Safety margin: an approximate path is eligible only when its
  /// calibrated recall >= target + margin.
  double recall_margin = 0.05;
};

/// Immutable per-dataset planner; thread-safe (Plan is const and pure).
class Planner {
 public:
  Planner(DatasetProfile profile, PlannerCalibration calibration);

  /// Picks an algorithm for `request`. Failpoint: "serve/plan".
  [[nodiscard]] StatusOr<PlanDecision> Plan(const QueryOptions& request) const;

  /// Expected exact dot products if `algo` answered `request`; used for
  /// A/B accounting by benches.
  double ExpectedDotProducts(QueryAlgo algo,
                             const QueryOptions& request) const;

  const DatasetProfile& profile() const { return profile_; }
  const PlannerCalibration& calibration() const { return calibration_; }

 private:
  /// Calibrated recall the model expects of `algo` for `request`;
  /// 0 when the path cannot answer the request at all (e.g. signed
  /// queries on the sketch path).
  double ExpectedRecall(QueryAlgo algo, const QueryOptions& request) const;

  DatasetProfile profile_;
  PlannerCalibration calibration_;
};

}  // namespace ips

#endif  // IPS_SERVE_PLANNER_H_
