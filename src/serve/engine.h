// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The online serving facade: an Engine owns a dataset plus lazily-built,
// cached per-algorithm indexes (constructed through the validated
// StatusOr Create factories), a micro-probe-calibrated Planner, and a
// thread-safe TopK entry point that dispatches each request to the
// planner-selected answer path and accounts for the work it did.
//
// Thread safety: TopK may be called concurrently. Index construction is
// serialized behind a mutex; queries go through the counter-free const
// primitives (TopKBruteForce, MipsBallTree::QueryTopK,
// LshMipsIndex::Candidates, SketchMipsIndex::RecoverArgmax), so a built
// engine serves parallel traffic without locking the hot path.

#ifndef IPS_SERVE_ENGINE_H_
#define IPS_SERVE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/mips_index.h"
#include "core/types.h"
#include "linalg/matrix.h"
#include "lsh/simhash.h"
#include "lsh/tables.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "serve/planner.h"
#include "serve/serve_stats.h"
#include "sketch/sketch_mips.h"
#include "util/status.h"

namespace ips {

/// Engine construction knobs.
struct EngineOptions {
  /// (K, L) amplification of the lazily-built LSH index.
  LshTableParams lsh_params{.k = 8, .l = 32};
  /// Parameters of the lazily-built Section 4.3 sketch index.
  SketchMipsParams sketch_params;
  /// Leaf size of the lazily-built ball tree.
  std::size_t tree_leaf_size = 16;
  /// Warmup micro-probes: queries sampled from the data itself.
  std::size_t probe_queries = 16;
  /// Warmup subsample size the probe indexes are built on (clamped to n).
  std::size_t probe_sample = 512;
  /// Safety margin the planner adds to approximate-path recall targets.
  double recall_margin = 0.05;
  /// Seed of the engine's private Rng (index builds, warmup).
  std::uint64_t seed = 2026;
};

/// One top-k serving request.
struct TopKRequest {
  std::size_t k = 1;
  double recall_target = 0.9;
  /// Soft cap on exact dot products (0 = unbounded).
  std::size_t candidate_budget = 0;
  bool is_signed = true;
  /// Bypass the planner and force an answer path (A/B comparisons,
  /// benchmarks). The forced path must be able to answer the request
  /// (e.g. tree is signed-only) or TopK returns kInvalidArgument.
  std::optional<ServeAlgo> force_algorithm;
};

/// One served answer: ranked matches plus what they cost.
struct TopKResponse {
  std::vector<SearchMatch> matches;
  ServeStats stats;
  PlanDecision plan;
};

/// The serving engine. Create once, serve concurrently.
class Engine {
 public:
  /// Validates `data` (via BruteForceIndex::Create), computes the
  /// dataset profile, runs the warmup micro-probes, and calibrates the
  /// planner. Takes ownership of the data.
  static StatusOr<std::unique_ptr<Engine>> Create(Matrix data,
                                                  EngineOptions options = {});

  /// Answers one top-k request; thread-safe. Failpoint: "serve/plan"
  /// (inside the planner). An index build failure surfaces as the
  /// build's Status; the engine is not poisoned and the next request
  /// retries the build.
  StatusOr<TopKResponse> TopK(std::span<const double> query,
                              const TopKRequest& request) const;

  /// Eagerly builds the index behind `algo` (normally lazy; benches use
  /// this to exclude build cost from serving measurements).
  Status EnsureIndex(ServeAlgo algo) const;

  const Planner& planner() const { return *planner_; }
  const DatasetProfile& profile() const { return profile_; }
  const Matrix& data() const { return data_; }
  const EngineOptions& options() const { return options_; }

 private:
  Engine(Matrix data, EngineOptions options);

  /// Warmup: build subsample-scale indexes and measure pruning fraction,
  /// candidate fraction, and probe recall for the planner's cost model.
  Status Calibrate();

  /// Executes `request` on `algo` (indexes already built).
  StatusOr<TopKResponse> Execute(ServeAlgo algo,
                                 std::span<const double> query,
                                 const TopKRequest& request,
                                 PlanDecision plan) const;

  Matrix data_;
  EngineOptions options_;
  DatasetProfile profile_;
  std::unique_ptr<Planner> planner_;

  // Lazily-built indexes (and the LSH path's transform + base family,
  // which must outlive its index); guarded by build_mutex_, immutable
  // once built.
  mutable std::mutex build_mutex_;
  mutable std::unique_ptr<VectorTransform> lsh_transform_;
  mutable std::unique_ptr<SimHashFamily> lsh_family_;
  mutable std::unique_ptr<TreeMipsIndex> tree_index_;
  mutable std::unique_ptr<LshMipsIndex> lsh_index_;
  mutable std::unique_ptr<SketchIndex> sketch_index_;
  mutable Rng build_rng_;
};

}  // namespace ips

#endif  // IPS_SERVE_ENGINE_H_
