// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The online serving facade: an Engine owns a dataset plus lazily-built,
// cached per-algorithm indexes (constructed through the validated
// StatusOr Create factories), a micro-probe-calibrated Planner, and a
// thread-safe Query entry point that dispatches each request to the
// planner-selected answer path and accounts for the work it did.
//
// Requests and responses are the unified core types (core/query.h):
// Query takes a core::QueryOptions and returns a core::QueryResult whose
// stats carry per-request work counts and — when options.trace is set —
// the span tree serve/query -> serve/plan -> <algorithm>, also published
// to the process-wide TraceRing. Engine-level traffic lands in the
// MetricsRegistry under "serve.engine.*".
//
// Thread safety: Query may be called concurrently. Index construction is
// serialized behind a mutex; queries go through the counter-free const
// MipsIndex::Query primitives, so a built engine serves parallel traffic
// without locking the hot path.

#ifndef IPS_SERVE_ENGINE_H_
#define IPS_SERVE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/mips_index.h"
#include "core/query.h"
#include "core/types.h"
#include "linalg/matrix.h"
#include "lsh/simhash.h"
#include "lsh/tables.h"
#include "lsh/transforms.h"
#include "rng/random.h"
#include "serve/feedback.h"
#include "serve/planner.h"
#include "serve/query_engine.h"
#include "serve/request.h"
#include "serve/serve_stats.h"
#include "sketch/filter.h"
#include "sketch/sketch_mips.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace ips {

/// Engine construction knobs.
struct EngineOptions {
  /// (K, L) amplification of the lazily-built LSH index.
  LshTableParams lsh_params{.k = 8, .l = 32};
  /// Parameters of the lazily-built Section 4.3 sketch index.
  SketchMipsParams sketch_params;
  /// Parameters of the sketch index's CountSketch prefilter (the
  /// kSketchFilter two-stage path; DESIGN.md §13).
  SketchFilterParams sketch_filter;
  /// Leaf size of the lazily-built ball tree.
  std::size_t tree_leaf_size = 16;
  /// Warmup micro-probes: queries sampled from the data itself.
  std::size_t probe_queries = 16;
  /// Warmup subsample size the probe indexes are built on (clamped to n).
  std::size_t probe_sample = 512;
  /// Safety margin the planner adds to approximate-path recall targets.
  double recall_margin = 0.05;
  /// Seed of the engine's private Rng (index builds, warmup).
  std::uint64_t seed = 2026;
  /// Online re-fit loop layered over the warmup calibration
  /// (serve/feedback.h): shadow audits, per-segment live curves,
  /// eviction, and predicted-miss hedging.
  FeedbackOptions feedback;
};

/// How Engine::CreateFromSnapshot materializes the dataset.
struct SnapshotLoadOptions {
  /// Serve the dataset zero-copy out of the mapped snapshot file
  /// instead of copying it onto the heap — the warm start never pays
  /// an O(n d) read before the first query.
  bool use_mmap = false;
  /// Verify every section CRC32 up front. On the mmap path this
  /// touches every page once; turning it off keeps the load O(1) and
  /// lets pages fault in lazily (damage then surfaces only where it
  /// is touched, without a kDataLoss diagnosis).
  bool verify_checksums = true;
};

/// The serving engine. Create once, serve concurrently.
class Engine : public QueryEngine {
 public:
  /// Validates `data`, computes the dataset profile, runs the warmup
  /// micro-probes (through the same unified MipsIndex::Query paths that
  /// serve traffic), and calibrates the planner. Takes ownership of the
  /// data.
  [[nodiscard]] static StatusOr<std::unique_ptr<Engine>> Create(
      Matrix data, EngineOptions options = {});

  /// Persists the dataset, profile, planner calibration, and the build
  /// artifacts of every index built so far to `<dir>/snapshot.ips`
  /// (DESIGN.md §12). The write is atomic: a crash mid-save leaves any
  /// previous snapshot in the directory untouched. Indexes not yet
  /// built are simply absent from the snapshot and rebuild lazily
  /// after a load.
  [[nodiscard]] Status SaveSnapshot(const std::string& dir) const
      IPS_EXCLUDES(build_mutex_);

  /// Warm start: reconstructs an engine from a SaveSnapshot directory,
  /// skipping dataset profiling and the calibration micro-probes (both
  /// read back from the snapshot) and installing every persisted index
  /// from its artifacts — the tree verbatim, the LSH tables by rng
  /// replay of the hash-function draws, the sketch by deterministic
  /// rebuild from its pinned pre-build rng state. With
  /// `load.use_mmap` the dataset is served zero-copy from the mapped
  /// file, which the engine keeps alive for its lifetime.
  [[nodiscard]] static StatusOr<std::unique_ptr<Engine>> CreateFromSnapshot(
      const std::string& dir, const SnapshotLoadOptions& load = {});

  /// Answers one request; thread-safe. Failpoint: "serve/plan" (inside
  /// the planner). An index build failure surfaces as the build's
  /// Status; the engine is not poisoned and the next request retries
  /// the build. request.options.force_algorithm bypasses the planner;
  /// the forced path must be able to answer the request (e.g. tree is
  /// signed-only) or Query returns kInvalidArgument. deadline_met is
  /// judged against request.context.deadline_seconds; tenant and
  /// priority are scheduler-level and ignored here. With feedback
  /// enabled, planner-chosen approximate answers are periodically
  /// shadow-audited against the exact answer, and an audited miss is
  /// hedged: the exact answer (already computed) is returned instead.
  [[nodiscard]] StatusOr<QueryResult> Query(const Request& request)
      const override IPS_EXCLUDES(build_mutex_);

  /// Answers every row of `queries` under one shared `options` and
  /// `context`: one planner decision (or forced path), one EnsureIndex,
  /// and one MipsIndex::BatchQuery call for the whole batch — the
  /// coalesced fast path the BatchScheduler hands its compatible groups
  /// to. Results come back in row order; per-member exec_seconds is the
  /// batch's wall time amortized over its members, and each member's
  /// deadline_met is judged against that amortized time (the scheduler
  /// overrides it with real queue-aware wall clock). Engine-level
  /// traffic lands under "serve.engine.batch.*". An empty batch returns
  /// an empty vector without planning.
  [[nodiscard]] StatusOr<std::vector<QueryResult>> BatchQuery(
      const Matrix& queries, const QueryOptions& options,
      const RequestContext& context) const override
      IPS_EXCLUDES(build_mutex_);

  /// Eagerly builds the index behind `algo` (normally lazy; benches use
  /// this to exclude build cost from serving measurements).
  [[nodiscard]] Status EnsureIndex(QueryAlgo algo) const
      IPS_EXCLUDES(build_mutex_);

  std::size_t dim() const override { return profile_.dim; }

  const Planner& planner() const { return *planner_; }
  /// The online re-fit layer (always constructed; inert when
  /// options().feedback.enabled is false).
  const FeedbackPlanner& feedback() const { return *feedback_; }
  const DatasetProfile& profile() const { return profile_; }
  const Matrix& data() const { return data_; }
  const EngineOptions& options() const { return options_; }

 private:
  Engine(Matrix data, EngineOptions options);

  /// Warm-start ctor (CreateFromSnapshot only): trusts a persisted
  /// profile and planner instead of re-deriving them from the data.
  Engine(Matrix data, EngineOptions options, DatasetProfile profile,
         std::unique_ptr<Planner> planner);

  /// Warmup: build subsample-scale indexes and measure pruning fraction,
  /// candidate fraction, and probe recall for the planner's cost model —
  /// all read off the unified QueryStats of probe-index Query calls.
  Status Calibrate() IPS_EXCLUDES(build_mutex_);

  /// Executes `options` on `algo` (indexes already built), filling the
  /// result's stats through the index's Query and nesting its spans
  /// under `trace` when non-null.
  StatusOr<QueryResult> Execute(QueryAlgo algo, std::span<const double> query,
                                const QueryOptions& options,
                                PlanDecision plan, Trace* trace) const
      IPS_EXCLUDES(build_mutex_);

  /// The shared plan step of Query and BatchQuery: a validated forced
  /// path, or the planner's decision. Records a "serve/plan" span.
  StatusOr<PlanDecision> MakePlan(const QueryOptions& options,
                                  Trace* trace) const;

  /// The (immutable once built) index behind `algo`, or null when
  /// EnsureIndex has not built it.
  const MipsIndex* PinIndex(QueryAlgo algo) const IPS_EXCLUDES(build_mutex_);

  /// Runs the exact shadow audit for an approximate planner-chosen
  /// answer: measures observed recall against the brute-force truth,
  /// trains the feedback curves, and hedges an audited miss by
  /// replacing the matches with the exact answer.
  void AuditResult(std::span<const double> query, const QueryOptions& options,
                   QueryResult* result) const;

  Matrix data_;
  /// Keeps the mmap backing of a zero-copy data_ view alive for the
  /// engine's lifetime (null when data_ owns its storage).
  std::shared_ptr<const void> data_keepalive_;
  EngineOptions options_;
  DatasetProfile profile_;
  std::unique_ptr<Planner> planner_;
  std::unique_ptr<FeedbackPlanner> feedback_;

  // Lazily-built indexes (and the LSH path's transform + base family,
  // which must outlive its index); guarded by build_mutex_, immutable
  // once built.
  mutable Mutex build_mutex_;
  mutable std::unique_ptr<VectorTransform> lsh_transform_
      IPS_GUARDED_BY(build_mutex_);
  mutable std::unique_ptr<SimHashFamily> lsh_family_
      IPS_GUARDED_BY(build_mutex_);
  mutable std::unique_ptr<BruteForceIndex> brute_index_
      IPS_GUARDED_BY(build_mutex_);
  mutable std::unique_ptr<TreeMipsIndex> tree_index_
      IPS_GUARDED_BY(build_mutex_);
  mutable std::unique_ptr<LshMipsIndex> lsh_index_
      IPS_GUARDED_BY(build_mutex_);
  mutable std::unique_ptr<SketchIndex> sketch_index_
      IPS_GUARDED_BY(build_mutex_);
  mutable Rng build_rng_ IPS_GUARDED_BY(build_mutex_);
  // Pre-build rng states of the replayable index builds, captured by
  // EnsureIndex so SaveSnapshot can persist them (see the LSHT/SKCH
  // sections in DESIGN.md §12). `valid` is false until the index has
  // been built at least once.
  mutable Rng::State lsh_prebuild_state_ IPS_GUARDED_BY(build_mutex_);
  mutable bool lsh_prebuild_valid_ IPS_GUARDED_BY(build_mutex_) = false;
  mutable Rng::State sketch_prebuild_state_ IPS_GUARDED_BY(build_mutex_);
  mutable bool sketch_prebuild_valid_ IPS_GUARDED_BY(build_mutex_) = false;
};

}  // namespace ips

#endif  // IPS_SERVE_ENGINE_H_
