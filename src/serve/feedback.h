// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The online re-fitter behind the adaptive planner (DESIGN.md §14).
// Warmup calibration prices every (algo, precision) variant once, from
// micro-probes on a data subsample — but achievable recall/cost depends
// on the *live* traffic's shape (k, signedness, norm regime; the
// Neyshabur–Srebro reductions make this unavoidable statically), which
// shifts at run time. The FeedbackPlanner closes the loop:
//
//  * Traffic is bucketed into workload segments keyed by (k bucket,
//    signedness). Norm-spread band and dim are per-dataset constants —
//    they select the warmup calibration itself — so within one engine
//    the segment key is the per-request shape.
//  * Every audit_every-th query per segment runs an exact shadow audit:
//    the engine computes the true top-k by brute force, measures the
//    approximate answer's observed recall, and feeds (recall, cost)
//    into per-(segment, algo, precision) exponentially-decayed
//    estimates.
//  * Once a variant has min_observations audits in a segment, its live
//    estimate replaces the warmup number inside Planner::Plan (the
//    VariantOverride hook): a path whose observed recall undershoots
//    target + margin is evicted from the eligibility table for that
//    segment, and costs re-rank on measured dot-equivalents.
//  * Predicted-miss hedging: when the audit shows the served answer
//    missed its recall target, the engine substitutes the exact answer
//    it just computed (the audit already paid for it) — the caller
//    never sees the miss, and the miss still trains the curves.
//
// Counters land in the registry as "serve.feedback.{audits, evictions,
// hedged}". Thread-safe: estimates live behind one mutex; Plan copies
// the segment's state once and prices lock-free.

#ifndef IPS_SERVE_FEEDBACK_H_
#define IPS_SERVE_FEEDBACK_H_

#include <array>
#include <cstddef>

#include "core/query.h"
#include "serve/planner.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace ips {

/// Tuning of the online re-fit loop.
struct FeedbackOptions {
  /// Master switch: off reproduces the static warmup-calibrated planner.
  bool enabled = true;
  /// One exact shadow audit per this many planned queries per segment
  /// (>= 1). Audits cost one brute-force scan each, so the loop's
  /// overhead is ~n/audit_every extra dots per query on average.
  std::size_t audit_every = 16;
  /// Weight the previous estimate keeps at each audit, in [0, 1);
  /// 1 - decay is the step toward the new observation.
  double decay = 0.9;
  /// Audits required before a (segment, variant) live estimate
  /// overrides the warmup calibration.
  std::size_t min_observations = 4;
};

Status ValidateFeedbackOptions(const FeedbackOptions& options);

/// Lifetime counters of the loop (snapshot; mirrored in the registry).
struct FeedbackCounters {
  /// Exact shadow audits run.
  std::size_t audits = 0;
  /// Eligibility flips observed->ineligible: an audit pushed a
  /// variant's live recall below the target + margin bar its segment
  /// had been clearing.
  std::size_t evictions = 0;
  /// Audited answers that missed their recall target and were replaced
  /// by the exact answer before returning.
  std::size_t hedged = 0;
};

/// The adaptive planning layer the Engine consults instead of the raw
/// Planner when feedback is enabled. Owns no indexes and runs no
/// queries itself — the Engine drives audits and reports observations.
/// Thread-safe.
class FeedbackPlanner {
 public:
  /// `base` must outlive this object.
  FeedbackPlanner(const Planner* base, FeedbackOptions options);

  /// Plans `request` with the segment's live estimates overriding the
  /// warmup calibration (variants under min_observations keep their
  /// warmup numbers). Failpoint: "serve/plan" (inside the base planner).
  [[nodiscard]] StatusOr<PlanDecision> Plan(const QueryOptions& request) const
      IPS_EXCLUDES(mutex_);

  /// True when this request should run an exact shadow audit (bumps
  /// the segment's query counter; first query of a segment audits, then
  /// every audit_every-th).
  bool BeginAudit(const QueryOptions& request) const IPS_EXCLUDES(mutex_);

  /// Feeds one audit observation into the (segment of `request`,
  /// `algo`, `precision`) estimate: recall in [0, 1], cost in
  /// dot-equivalents. Detects eligibility flips against the request's
  /// target + the base calibration margin.
  void RecordAudit(const QueryOptions& request, QueryAlgo algo,
                   QueryPrecision precision, double observed_recall,
                   double observed_cost) const IPS_EXCLUDES(mutex_);

  /// The engine substituted the exact answer for an audited miss.
  void NoteHedge() const IPS_EXCLUDES(mutex_);

  FeedbackCounters counters() const IPS_EXCLUDES(mutex_);

  /// Live recall estimate of (segment of `request`, algo, precision),
  /// or the warmup expectation while under min_observations (tests,
  /// dashboards).
  double LiveRecall(const QueryOptions& request, QueryAlgo algo,
                    QueryPrecision precision) const IPS_EXCLUDES(mutex_);

  const Planner& base() const { return *base_; }
  const FeedbackOptions& options() const { return options_; }

  /// Segment index of `request` (k bucket x signedness); exposed for
  /// tests that pin the bucketing.
  static std::size_t SegmentOf(const QueryOptions& request);
  static constexpr std::size_t kNumSegments = 6;

 private:
  struct VariantState {
    double recall_ewma = 0.0;
    double cost_ewma = 0.0;
    std::size_t observations = 0;
    /// Last eligibility verdict (live recall vs target + margin); the
    /// eviction counter fires on true -> false flips.
    bool eligible = true;
  };

  struct SegmentState {
    std::size_t planned = 0;
    std::array<std::array<VariantState, kNumQueryPrecisions>, kNumQueryAlgos>
        variants{};
  };

  const Planner* base_;
  FeedbackOptions options_;

  mutable Mutex mutex_;
  mutable std::array<SegmentState, kNumSegments> segments_
      IPS_GUARDED_BY(mutex_);
  mutable FeedbackCounters counters_ IPS_GUARDED_BY(mutex_);
};

}  // namespace ips

#endif  // IPS_SERVE_FEEDBACK_H_
