#include "serve/request.h"

#include <cmath>

namespace ips {

std::string_view RequestPriorityName(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kBatch:
      return "batch";
    case RequestPriority::kStandard:
      return "standard";
    case RequestPriority::kInteractive:
      return "interactive";
  }
  return "unknown";
}

Status ValidateRequestContext(const RequestContext& context) {
  if (std::isnan(context.deadline_seconds) ||
      context.deadline_seconds <= 0.0) {
    return Status::InvalidArgument(
        "deadline must be positive (infinity = none), got " +
        std::to_string(context.deadline_seconds));
  }
  switch (context.priority) {
    case RequestPriority::kBatch:
    case RequestPriority::kStandard:
    case RequestPriority::kInteractive:
      break;
    default:
      return Status::InvalidArgument(
          "unknown request priority " +
          std::to_string(static_cast<int>(context.priority)));
  }
  return Status::Ok();
}

std::string_view RequestTenant(const RequestContext& context) {
  return context.tenant_id.empty() ? std::string_view("default")
                                   : std::string_view(context.tenant_id);
}

}  // namespace ips
