// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The serving-layer query interface: anything that can answer a top-k
// request — the single-node Engine or the scatter-gather ShardedEngine
// — implements QueryEngine, so the BatchScheduler (and any future
// router/replica layer) is agnostic to whether it is driving one index
// stack or a sharded fleet.

#ifndef IPS_SERVE_QUERY_ENGINE_H_
#define IPS_SERVE_QUERY_ENGINE_H_

#include <cstddef>
#include <vector>

#include "core/query.h"
#include "linalg/matrix.h"
#include "serve/request.h"
#include "util/status.h"

namespace ips {

/// Abstract top-k answer surface. Implementations must be safe for
/// concurrent Query/BatchQuery calls (the scheduler fans out over a
/// thread pool). Requests arrive in the serve::Request envelope: the
/// QueryOptions drive planning and execution, the RequestContext drives
/// transport semantics (deadline_met is judged against
/// context.deadline_seconds; tenant and priority are scheduler-level
/// and ignored by direct engine calls).
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// Dimensionality every query vector must have.
  virtual std::size_t dim() const = 0;

  /// Answers one request; thread-safe. `request.query` is borrowed for
  /// the duration of the call.
  [[nodiscard]] virtual StatusOr<QueryResult> Query(
      const Request& request) const = 0;

  /// Answers every row of `queries` under one shared `options` and one
  /// shared `context`; results in row order, semantically one Query per
  /// row. The scheduler passes the context of the group's first member
  /// (members coalesce on identical QueryOptions only) and re-judges
  /// deadlines per member afterwards.
  [[nodiscard]] virtual StatusOr<std::vector<QueryResult>> BatchQuery(
      const Matrix& queries, const QueryOptions& options,
      const RequestContext& context) const = 0;
};

}  // namespace ips

#endif  // IPS_SERVE_QUERY_ENGINE_H_
