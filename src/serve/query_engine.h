// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The serving-layer query interface: anything that can answer a top-k
// request — the single-node Engine or the scatter-gather ShardedEngine
// — implements QueryEngine, so the BatchScheduler (and any future
// router/replica layer) is agnostic to whether it is driving one index
// stack or a sharded fleet.

#ifndef IPS_SERVE_QUERY_ENGINE_H_
#define IPS_SERVE_QUERY_ENGINE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/query.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace ips {

/// Abstract top-k answer surface. Implementations must be safe for
/// concurrent Query/BatchQuery calls (the scheduler fans out over a
/// thread pool).
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// Dimensionality every query vector must have.
  virtual std::size_t dim() const = 0;

  /// Answers one request; thread-safe.
  [[nodiscard]] virtual StatusOr<QueryResult> Query(
      std::span<const double> query, const QueryOptions& options) const = 0;

  /// Answers every row of `queries` under one shared `options`; results
  /// in row order, semantically one Query per row.
  [[nodiscard]] virtual StatusOr<std::vector<QueryResult>> BatchQuery(
      const Matrix& queries, const QueryOptions& options) const = 0;
};

}  // namespace ips

#endif  // IPS_SERVE_QUERY_ENGINE_H_
