#include "serve/feedback.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace ips {

namespace {

// Registry mirror of FeedbackCounters.
struct FeedbackMetrics {
  Counter* audits;
  Counter* evictions;
  Counter* hedged;

  static const FeedbackMetrics& Get() {
    static const FeedbackMetrics metrics = {
        MetricsRegistry::Global().GetCounter("serve.feedback.audits"),
        MetricsRegistry::Global().GetCounter("serve.feedback.evictions"),
        MetricsRegistry::Global().GetCounter("serve.feedback.hedged")};
    return metrics;
  }
};

}  // namespace

Status ValidateFeedbackOptions(const FeedbackOptions& options) {
  if (options.audit_every < 1) {
    return Status::InvalidArgument("feedback audit_every must be >= 1");
  }
  if (!(options.decay >= 0.0) || options.decay >= 1.0) {
    return Status::InvalidArgument("feedback decay must lie in [0, 1)");
  }
  if (options.min_observations < 1) {
    return Status::InvalidArgument(
        "feedback min_observations must be >= 1");
  }
  return Status::Ok();
}

FeedbackPlanner::FeedbackPlanner(const Planner* base, FeedbackOptions options)
    : base_(base), options_(options) {
  // Construction-time precondition, not a query path.
  IPS_CHECK(base_ != nullptr);  // ipslint:allow(check-in-query)
}

std::size_t FeedbackPlanner::SegmentOf(const QueryOptions& request) {
  // k buckets: {1}, {2..8}, {9..}. Finer buckets would fragment the
  // audit stream; the planner's recall cliffs sit at k == 1 (argmax
  // paths) and "deep" k (bucket-set coverage), which this captures.
  std::size_t k_bucket = 0;
  if (request.k > 1) k_bucket = request.k <= 8 ? 1 : 2;
  return k_bucket * 2 + (request.is_signed ? 0 : 1);
}

StatusOr<PlanDecision> FeedbackPlanner::Plan(
    const QueryOptions& request) const {
  if (!options_.enabled) return base_->Plan(request);
  // One lock, one copy: the override lambda prices from the snapshot so
  // the base planner's variant loop never touches the mutex.
  SegmentState snapshot;
  {
    MutexLock lock(mutex_);
    snapshot = segments_[SegmentOf(request)];
  }
  const std::size_t min_obs = options_.min_observations;
  return base_->Plan(
      request,
      [&snapshot, min_obs](QueryAlgo algo, QueryPrecision precision)
          -> std::optional<VariantEstimate> {
        const VariantState& state =
            snapshot.variants[static_cast<std::size_t>(algo)]
                             [static_cast<std::size_t>(precision)];
        if (state.observations < min_obs) return std::nullopt;
        return VariantEstimate{state.recall_ewma, state.cost_ewma};
      });
}

bool FeedbackPlanner::BeginAudit(const QueryOptions& request) const {
  if (!options_.enabled) return false;
  MutexLock lock(mutex_);
  SegmentState& segment = segments_[SegmentOf(request)];
  const bool audit = segment.planned % options_.audit_every == 0;
  ++segment.planned;
  return audit;
}

void FeedbackPlanner::RecordAudit(const QueryOptions& request, QueryAlgo algo,
                                  QueryPrecision precision,
                                  double observed_recall,
                                  double observed_cost) const {
  const FeedbackMetrics& metrics = FeedbackMetrics::Get();
  observed_recall = std::clamp(observed_recall, 0.0, 1.0);
  observed_cost = std::max(observed_cost, 0.0);
  bool evicted = false;
  {
    MutexLock lock(mutex_);
    VariantState& state =
        segments_[SegmentOf(request)]
            .variants[static_cast<std::size_t>(algo)]
                     [static_cast<std::size_t>(precision)];
    if (state.observations == 0) {
      // Seed the estimate from the warmup prior so early audits move a
      // calibrated number instead of averaging against zero.
      state.recall_ewma = base_->ExpectedRecall(algo, precision, request);
      state.cost_ewma = base_->ExpectedDotProducts(algo, precision, request);
    }
    const double step = 1.0 - options_.decay;
    state.recall_ewma =
        options_.decay * state.recall_ewma + step * observed_recall;
    state.cost_ewma = options_.decay * state.cost_ewma + step * observed_cost;
    ++state.observations;
    // Eviction = the live estimate crossing below the eligibility bar
    // this segment's traffic is asking for (target + margin, the same
    // bar Plan applies to approximate paths). Eligibility commits only
    // once the estimate is live (>= min_observations) — the same
    // threshold at which Plan starts trusting it — so the first live
    // audit of a failing path counts as the flip instead of silently
    // pre-marking the variant ineligible during the warmup samples.
    const double bar =
        request.recall_target + base_->calibration().recall_margin;
    const bool live = state.observations >= options_.min_observations;
    const bool eligible = state.recall_ewma >= bar;
    if (live && state.eligible && !eligible) evicted = true;
    if (live) state.eligible = eligible;
    ++counters_.audits;
    if (evicted) ++counters_.evictions;
  }
  metrics.audits->Increment();
  if (evicted) metrics.evictions->Increment();
}

void FeedbackPlanner::NoteHedge() const {
  {
    MutexLock lock(mutex_);
    ++counters_.hedged;
  }
  FeedbackMetrics::Get().hedged->Increment();
}

FeedbackCounters FeedbackPlanner::counters() const {
  MutexLock lock(mutex_);
  return counters_;
}

double FeedbackPlanner::LiveRecall(const QueryOptions& request,
                                   QueryAlgo algo,
                                   QueryPrecision precision) const {
  {
    MutexLock lock(mutex_);
    const VariantState& state =
        segments_[SegmentOf(request)]
            .variants[static_cast<std::size_t>(algo)]
                     [static_cast<std::size_t>(precision)];
    if (state.observations >= options_.min_observations) {
      return state.recall_ewma;
    }
  }
  return base_->ExpectedRecall(algo, precision, request);
}

}  // namespace ips
