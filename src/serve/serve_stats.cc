#include "serve/serve_stats.h"

#include "util/check.h"

namespace ips {

void ServeMetrics::Record(const QueryStats& stats) {
  const auto slot = static_cast<std::size_t>(stats.algorithm);
  IPS_CHECK(slot < kNumQueryAlgos);
  const double latency_ms = stats.TotalSeconds() * 1e3;
  MutexLock lock(mutex_);
  PerAlgo& algo = per_algo_[slot];
  ++algo.requests;
  algo.candidates += stats.candidates;
  algo.dot_products += stats.dot_products;
  algo.latency_ms.Add(latency_ms);
  latencies_ms_.push_back(latency_ms);
  if (stats.deadline_met) ++deadline_met_;
  shards_failed_ += stats.shards_failed;
  shards_hedged_ += stats.shards_hedged;
}

void ServeMetrics::RecordResult(const QueryResult& result) {
  Record(result.stats);
  if (result.partial) {
    MutexLock lock(mutex_);
    ++partial_;
  }
}

std::size_t ServeMetrics::TotalRequests() const {
  MutexLock lock(mutex_);
  return latencies_ms_.size();
}

std::size_t ServeMetrics::SelectionCount(QueryAlgo algo) const {
  MutexLock lock(mutex_);
  return per_algo_[static_cast<std::size_t>(algo)].requests;
}

std::size_t ServeMetrics::DeadlineMetCount() const {
  MutexLock lock(mutex_);
  return deadline_met_;
}

std::size_t ServeMetrics::PartialCount() const {
  MutexLock lock(mutex_);
  return partial_;
}

std::size_t ServeMetrics::ShardsFailedTotal() const {
  MutexLock lock(mutex_);
  return shards_failed_;
}

std::size_t ServeMetrics::ShardsHedgedTotal() const {
  MutexLock lock(mutex_);
  return shards_hedged_;
}

std::size_t ServeMetrics::TotalDotProducts() const {
  MutexLock lock(mutex_);
  std::size_t total = 0;
  for (const PerAlgo& algo : per_algo_) total += algo.dot_products;
  return total;
}

Summary ServeMetrics::LatencySummaryMillis() const {
  std::vector<double> samples;
  {
    MutexLock lock(mutex_);
    samples = latencies_ms_;
  }
  return Summarize(std::move(samples));
}

TablePrinter ServeMetrics::ToTable() const {
  TablePrinter table({"algorithm", "requests", "mean candidates",
                      "mean dots", "mean latency (ms)"});
  MutexLock lock(mutex_);
  for (std::size_t slot = 0; slot < kNumQueryAlgos; ++slot) {
    const PerAlgo& algo = per_algo_[slot];
    if (algo.requests == 0) continue;
    const double requests = static_cast<double>(algo.requests);
    table.AddRow({std::string(QueryAlgoName(static_cast<QueryAlgo>(slot))),
                  Format(algo.requests),
                  FormatFixed(static_cast<double>(algo.candidates) / requests,
                              1),
                  FormatFixed(
                      static_cast<double>(algo.dot_products) / requests, 1),
                  FormatFixed(algo.latency_ms.Mean(), 3)});
  }
  return table;
}

}  // namespace ips
