// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The serving-layer request envelope (DESIGN.md §14). A serve Request
// separates what the answer must look like (core::QueryOptions — k,
// recall target, precision: algorithmic knobs every index understands)
// from how the serving layer must treat the caller (RequestContext —
// tenant, priority, deadline: transport-level QoS fields no index ever
// reads). The split is load-bearing: the BatchScheduler coalesces
// requests whose QueryOptions agree into one Engine::BatchQuery call
// while each member keeps its own RequestContext for admission,
// deadline accounting, and per-tenant counters.

#ifndef IPS_SERVE_REQUEST_H_
#define IPS_SERVE_REQUEST_H_

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <string_view>

#include "core/query.h"
#include "util/status.h"

namespace ips {

/// Scheduling lanes, lowest to highest. Under pressure the scheduler
/// sheds lower lanes first (admission control) and drains higher lanes
/// first (weighted dispatch); see BatchSchedulerOptions::qos.
enum class RequestPriority {
  /// Offline / best-effort traffic: first to be shed, last to drain.
  kBatch = 0,
  /// The default lane for interactive-but-not-latency-critical load.
  kStandard = 1,
  /// Latency-critical traffic: never shed by fill-level admission
  /// control (only a completely full queue rejects it).
  kInteractive = 2,
};

inline constexpr std::size_t kNumRequestPriorities = 3;

/// Short stable name of `priority` ("batch", "standard", "interactive");
/// metric label segment and bench JSON key.
std::string_view RequestPriorityName(RequestPriority priority);

/// Transport-level context of one request: who is asking and how the
/// serving layer must treat them. Carried per request — never folded
/// into QueryOptions, so batch coalescing stays per-member on these
/// fields.
struct RequestContext {
  /// Accounting / QoS principal. Empty means the "default" tenant.
  std::string tenant_id;
  RequestPriority priority = RequestPriority::kStandard;
  /// Relative deadline in seconds from submission (infinity = none).
  /// Must be positive. The scheduler expires requests whose deadline
  /// passes before execution starts; engines judge
  /// QueryStats::deadline_met against it.
  double deadline_seconds = std::numeric_limits<double>::infinity();
};

/// Validates the context: deadline positive (infinity allowed; NaN and
/// non-positive rejected), priority a known lane.
Status ValidateRequestContext(const RequestContext& context);

/// One serving-layer request: the query vector, the algorithmic options
/// every index understands, and the transport context only the serving
/// layer reads. The span is a borrow — it must stay alive for the
/// duration of the call (BatchScheduler::Submit copies it into owned
/// storage before returning).
struct Request {
  std::span<const double> query = {};
  /// Defaulted so call sites spell only what they need:
  /// `engine.Query({q})`, `{q, options}`, or `{q, options, context}`.
  QueryOptions options = {};
  RequestContext context = {};
};

/// Canonical tenant key of `context` ("default" for an empty id).
std::string_view RequestTenant(const RequestContext& context);

}  // namespace ips

#endif  // IPS_SERVE_REQUEST_H_
