#include "serve/planner.h"

#include <cmath>
#include <limits>

#include "core/top_k.h"
#include "linalg/kernels.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace ips {
namespace {

/// The answer-path variants the planner prices. kAuto on the sketch row
/// is the §4.3 argmax descent (the index's native mode, taken when the
/// request reaches it with precision kAuto).
struct PlanVariant {
  QueryAlgo algo;
  QueryPrecision precision;
};

constexpr PlanVariant kVariants[] = {
    {QueryAlgo::kBruteForce, QueryPrecision::kExact},
    {QueryAlgo::kBruteForce, QueryPrecision::kQuantizedRerank},
    {QueryAlgo::kBallTree, QueryPrecision::kExact},
    {QueryAlgo::kLsh, QueryPrecision::kExact},
    {QueryAlgo::kLsh, QueryPrecision::kQuantizedRerank},
    {QueryAlgo::kSketch, QueryPrecision::kAuto},
    {QueryAlgo::kSketch, QueryPrecision::kSketchFilter},
};

bool MatchesRequestedPrecision(QueryPrecision variant,
                               QueryPrecision requested) {
  if (requested == QueryPrecision::kAuto) return true;
  return variant == requested;
}

std::string VariantName(QueryAlgo algo, QueryPrecision precision) {
  std::string name(QueryAlgoName(algo));
  if (precision != QueryPrecision::kExact &&
      precision != QueryPrecision::kAuto) {
    name += "+";
    name += QueryPrecisionName(precision);
  }
  return name;
}

}  // namespace

double DatasetProfile::NormSpread() const {
  if (min_norm <= 0.0) return std::numeric_limits<double>::infinity();
  return max_norm / min_norm;
}

DatasetProfile DatasetProfile::FromData(const Matrix& data) {
  DatasetProfile profile;
  profile.n = data.rows();
  profile.dim = data.cols();
  if (data.rows() == 0) return profile;
  profile.min_norm = std::numeric_limits<double>::infinity();
  double total = 0.0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const double norm = kernels::Norm(data.Row(i));
    profile.min_norm = std::min(profile.min_norm, norm);
    profile.max_norm = std::max(profile.max_norm, norm);
    total += norm;
  }
  profile.mean_norm = total / static_cast<double>(data.rows());
  return profile;
}

Planner::Planner(DatasetProfile profile, PlannerCalibration calibration)
    : profile_(profile), calibration_(calibration) {
  // Construction-time precondition, not a query path.
  IPS_CHECK_GT(profile_.n, 0u);  // ipslint:allow(check-in-query)
}

double Planner::ExpectedRecall(QueryAlgo algo, QueryPrecision precision,
                               const QueryOptions& request) const {
  const bool calibrated = calibration_.probe_queries > 0;
  switch (algo) {
    case QueryAlgo::kBruteForce:
      if (precision == QueryPrecision::kQuantizedRerank) {
        return calibrated ? calibration_.quant_recall : 0.0;
      }
      return 1.0;
    case QueryAlgo::kBallTree:
      // The tree's top-k branch-and-bound is exact but signed-only.
      return request.is_signed ? 1.0 : 0.0;
    case QueryAlgo::kLsh: {
      if (!calibrated) return 0.0;
      // k = 1 is judged on the warmup recall@1; anything deeper on the
      // warmup recall@5 — a bucket set that usually holds the argmax
      // can still miss most of a top-5 on skewed-norm data, and pricing
      // all k off recall@1 is exactly the stale-eligibility bug
      // BENCH_serve exposed (targets_met 0.07 at k=5).
      const double base = request.k > 1 ? calibration_.lsh_topk_recall
                                        : calibration_.lsh_recall;
      if (precision == QueryPrecision::kQuantizedRerank) {
        // Two independent approximations compound: the candidate set
        // must contain the answer AND the estimate pass must keep it.
        return base * calibration_.quant_recall;
      }
      return base;
    }
    case QueryAlgo::kSketch:
      if (precision == QueryPrecision::kSketchFilter) {
        return calibrated ? calibration_.filter_recall : 0.0;
      }
      // The Section 4.3 argmax descent recovers a single unsigned best.
      if (request.is_signed || request.k != 1) return 0.0;
      return calibrated ? calibration_.sketch_recall : 0.0;
  }
  return 0.0;
}

double Planner::ExpectedDotProducts(QueryAlgo algo, QueryPrecision precision,
                                    const QueryOptions& request) const {
  const double n = static_cast<double>(profile_.n);
  switch (algo) {
    case QueryAlgo::kBruteForce: {
      if (precision == QueryPrecision::kQuantizedRerank) {
        const double survivors = static_cast<double>(
            SurvivorCount(request.k, profile_.n, request.candidate_budget,
                          kQuantSurvivorMultiplier, kQuantSurvivorFloor));
        return n * calibration_.quant_cost_ratio + survivors;
      }
      return n;
    }
    case QueryAlgo::kBallTree:
      // Pruning measured on the warmup subsample; clamp to the full scan.
      return std::min(n, std::max(static_cast<double>(request.k),
                                  n * calibration_.tree_fraction));
    case QueryAlgo::kLsh: {
      const double candidates =
          std::min(n, n * calibration_.lsh_candidate_fraction);
      if (precision == QueryPrecision::kQuantizedRerank) {
        const double survivors = static_cast<double>(
            SurvivorCount(request.k, profile_.n, request.candidate_budget,
                          kQuantSurvivorMultiplier, kQuantSurvivorFloor));
        return candidates * calibration_.quant_cost_ratio +
               std::min(candidates, survivors) +
               calibration_.lsh_probe_overhead;
      }
      return candidates + calibration_.lsh_probe_overhead;
    }
    case QueryAlgo::kSketch: {
      if (precision == QueryPrecision::kSketchFilter ||
          (precision == QueryPrecision::kAuto &&
           (request.is_signed || request.k != 1))) {
        const double survivors = static_cast<double>(SurvivorCount(
            request.k, profile_.n, request.candidate_budget,
            calibration_.filter_survivor_multiplier,
            calibration_.filter_survivor_floor));
        return n * calibration_.filter_cost_ratio + survivors;
      }
      return calibration_.sketch_cost;
    }
  }
  return n;
}

StatusOr<PlanDecision> Planner::Plan(const QueryOptions& request,
                                     const VariantOverride& live) const {
  IPS_FAILPOINT("serve/plan");
  IPS_RETURN_IF_ERROR(ValidateQueryOptions(request));

  const double budget = request.candidate_budget == 0
                            ? std::numeric_limits<double>::infinity()
                            : static_cast<double>(request.candidate_budget);

  // Two-tier selection: cheapest eligible variant inside the budget,
  // falling back to the cheapest eligible overall. Exact paths need no
  // margin; approximate paths must clear target + margin.
  PlanDecision best;
  bool found = false;
  bool best_in_budget = false;
  // When the request pins a precision, the recall bar turns advisory:
  // the cheapest answerable variant of that mode wins and the shortfall
  // is reported in the reason.
  PlanDecision fallback;
  bool fallback_found = false;
  for (const PlanVariant& variant : kVariants) {
    if (!MatchesRequestedPrecision(variant.precision, request.precision)) {
      continue;
    }
    double recall = ExpectedRecall(variant.algo, variant.precision, request);
    double cost =
        ExpectedDotProducts(variant.algo, variant.precision, request);
    if (live != nullptr && recall > 0.0) {
      // Live re-fit numbers replace the warmup calibration, but only
      // for variants the warmup deemed answerable at all (recall 0
      // means "cannot answer this request shape", not "bad recall").
      if (const auto estimate = live(variant.algo, variant.precision)) {
        recall = estimate->recall;
        cost = estimate->cost;
      }
    }
    if (request.precision != QueryPrecision::kAuto && recall > 0.0 &&
        (!fallback_found || cost < fallback.expected_dot_products)) {
      fallback.algorithm = variant.algo;
      fallback.precision = variant.precision;
      fallback.expected_dot_products = cost;
      fallback.expected_recall = recall;
      fallback_found = true;
    }
    const double required =
        recall >= 1.0 ? request.recall_target
                      : request.recall_target + calibration_.recall_margin;
    if (recall < required) continue;
    const bool in_budget = cost <= budget;
    const bool better =
        !found ||
        (in_budget && !best_in_budget) ||
        (in_budget == best_in_budget && cost < best.expected_dot_products);
    if (better) {
      best.algorithm = variant.algo;
      best.precision = variant.precision;
      best.expected_dot_products = cost;
      best.expected_recall = recall;
      found = true;
      best_in_budget = in_budget;
    }
  }
  bool recall_shortfall = false;
  if (!found && fallback_found) {
    best = fallback;
    found = true;
    best_in_budget = best.expected_dot_products <= budget;
    recall_shortfall = true;
  }
  if (!found) {
    if (request.precision != QueryPrecision::kAuto) {
      return Status::FailedPrecondition(
          std::string("no calibrated ") +
          std::string(QueryPrecisionName(request.precision)) +
          " path can answer this request (uncalibrated engine or "
          "unsupported query shape)");
    }
    // Unreachable: brute+exact has recall 1 and is always eligible. A
    // hot query path still reports the broken invariant as a Status
    // instead of aborting (ipslint: check-in-query).
    return Status::Internal("planner found no eligible variant");
  }

  best.reason = VariantName(best.algorithm, best.precision) + ": ~" +
                std::to_string(static_cast<std::size_t>(
                    best.expected_dot_products)) +
                " dots at recall>=" + std::to_string(best.expected_recall);
  if (recall_shortfall) {
    best.reason += " (recall target " +
                   std::to_string(request.recall_target) +
                   " not met by the requested precision)";
  }
  if (!best_in_budget) {
    best.reason += " (candidate budget " +
                   std::to_string(request.candidate_budget) + " exceeded)";
  }
  return best;
}

}  // namespace ips
