#include "serve/planner.h"

#include <cmath>
#include <limits>

#include "linalg/kernels.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace ips {

double DatasetProfile::NormSpread() const {
  if (min_norm <= 0.0) return std::numeric_limits<double>::infinity();
  return max_norm / min_norm;
}

DatasetProfile DatasetProfile::FromData(const Matrix& data) {
  DatasetProfile profile;
  profile.n = data.rows();
  profile.dim = data.cols();
  if (data.rows() == 0) return profile;
  profile.min_norm = std::numeric_limits<double>::infinity();
  double total = 0.0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const double norm = kernels::Norm(data.Row(i));
    profile.min_norm = std::min(profile.min_norm, norm);
    profile.max_norm = std::max(profile.max_norm, norm);
    total += norm;
  }
  profile.mean_norm = total / static_cast<double>(data.rows());
  return profile;
}

Planner::Planner(DatasetProfile profile, PlannerCalibration calibration)
    : profile_(profile), calibration_(calibration) {
  // Construction-time precondition, not a query path.
  IPS_CHECK_GT(profile_.n, 0u);  // ipslint:allow(check-in-query)
}

double Planner::ExpectedRecall(QueryAlgo algo,
                               const QueryOptions& request) const {
  switch (algo) {
    case QueryAlgo::kBruteForce:
      return 1.0;
    case QueryAlgo::kBallTree:
      // The tree's top-k branch-and-bound is exact but signed-only.
      return request.is_signed ? 1.0 : 0.0;
    case QueryAlgo::kLsh:
      return calibration_.probe_queries == 0 ? 0.0 : calibration_.lsh_recall;
    case QueryAlgo::kSketch:
      // The Section 4.3 sketch recovers a single unsigned argmax.
      if (request.is_signed || request.k != 1) return 0.0;
      return calibration_.probe_queries == 0 ? 0.0
                                             : calibration_.sketch_recall;
  }
  return 0.0;
}

double Planner::ExpectedDotProducts(QueryAlgo algo,
                                    const QueryOptions& request) const {
  const double n = static_cast<double>(profile_.n);
  switch (algo) {
    case QueryAlgo::kBruteForce:
      return n;
    case QueryAlgo::kBallTree:
      // Pruning measured on the warmup subsample; clamp to the full scan.
      return std::min(n, std::max(static_cast<double>(request.k),
                                  n * calibration_.tree_fraction));
    case QueryAlgo::kLsh:
      return std::min(n, n * calibration_.lsh_candidate_fraction) +
             calibration_.lsh_probe_overhead;
    case QueryAlgo::kSketch:
      return calibration_.sketch_cost;
  }
  return n;
}

StatusOr<PlanDecision> Planner::Plan(const QueryOptions& request) const {
  IPS_FAILPOINT("serve/plan");
  IPS_RETURN_IF_ERROR(ValidateQueryOptions(request));

  constexpr QueryAlgo kAll[] = {QueryAlgo::kBruteForce, QueryAlgo::kBallTree,
                                QueryAlgo::kLsh, QueryAlgo::kSketch};
  const double budget = request.candidate_budget == 0
                            ? std::numeric_limits<double>::infinity()
                            : static_cast<double>(request.candidate_budget);

  // Two-tier selection: cheapest eligible algorithm inside the budget,
  // falling back to the cheapest eligible overall. Exact paths need no
  // margin; approximate paths must clear target + margin.
  PlanDecision best;
  bool found = false;
  bool best_in_budget = false;
  for (QueryAlgo algo : kAll) {
    const double recall = ExpectedRecall(algo, request);
    const double required =
        recall >= 1.0 ? request.recall_target
                      : request.recall_target + calibration_.recall_margin;
    if (recall < required) continue;
    const double cost = ExpectedDotProducts(algo, request);
    const bool in_budget = cost <= budget;
    const bool better =
        !found ||
        (in_budget && !best_in_budget) ||
        (in_budget == best_in_budget && cost < best.expected_dot_products);
    if (better) {
      best.algorithm = algo;
      best.expected_dot_products = cost;
      best.expected_recall = recall;
      found = true;
      best_in_budget = in_budget;
    }
  }
  if (!found) {
    // Unreachable: brute force has recall 1 and is always eligible. A
    // hot query path still reports the broken invariant as a Status
    // instead of aborting (ipslint: check-in-query).
    return Status::Internal("planner found no eligible algorithm");
  }

  best.reason = std::string(QueryAlgoName(best.algorithm)) + ": ~" +
                std::to_string(static_cast<std::size_t>(
                    best.expected_dot_products)) +
                " dots at recall>=" + std::to_string(best.expected_recall);
  if (!best_in_budget) {
    best.reason += " (candidate budget " +
                   std::to_string(request.candidate_budget) + " exceeded)";
  }
  return best;
}

}  // namespace ips
