// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Engine persistence (DESIGN.md §12): SaveSnapshot serializes the
// dataset, profile, planner calibration, and the build artifacts of
// every index built so far into one sectioned snapshot file;
// CreateFromSnapshot reverses it without re-profiling, re-calibrating,
// or re-building — the tree is restored verbatim, the LSH tables by
// replaying the hash-function draws from the pinned pre-build rng
// state, and the sketch by deterministically re-running its build from
// its own pinned state.

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "serve/engine.h"
#include "storage/file.h"
#include "storage/format.h"
#include "storage/snapshot.h"
#include "tree/mips_tree.h"
#include "util/failpoint.h"

namespace ips {
namespace {

/// File name inside the snapshot directory.
constexpr char kSnapshotFile[] = "/snapshot.ips";

void PutRngState(storage::PayloadWriter* w, const Rng::State& state) {
  for (std::uint64_t word : state.words) w->PutU64(word);
  w->PutU64(state.has_spare_gaussian);
  w->PutDouble(state.spare_gaussian);
}

Status GetRngState(storage::PayloadReader* r, Rng::State* state) {
  for (std::uint64_t& word : state->words) IPS_RETURN_IF_ERROR(r->GetU64(&word));
  IPS_RETURN_IF_ERROR(r->GetU64(&state->has_spare_gaussian));
  return r->GetDouble(&state->spare_gaussian);
}

Status ExpectAtEnd(const storage::PayloadReader& r, const char* section) {
  if (!r.AtEnd()) {
    return Status::DataLoss(std::string("section ") + section + " has " +
                            std::to_string(r.remaining()) +
                            " trailing bytes");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Section payloads (bump the per-section version on any layout change).
// META and CALB are at version 3: META grew the feedback-loop options
// and CALB the k>1 LSH recall curve (lsh_topk_recall, DESIGN.md §14),
// on top of the version-2 sketch-filter params and two-stage
// calibration fields (DESIGN.md §13). This build reads only the
// current layout — older snapshots fail to decode with a
// DataLoss/truncation status rather than silently misparse.
// ---------------------------------------------------------------------

std::vector<unsigned char> EncodeMeta(const EngineOptions& options) {
  storage::PayloadWriter w;
  w.PutU64(options.lsh_params.k);
  w.PutU64(options.lsh_params.l);
  w.PutDouble(options.sketch_params.kappa);
  w.PutU64(options.sketch_params.copies);
  w.PutDouble(options.sketch_params.bucket_multiplier);
  w.PutU64(options.sketch_params.leaf_size);
  w.PutU64(options.sketch_filter.buckets);
  w.PutU64(options.sketch_filter.copies);
  w.PutDouble(options.sketch_filter.survivor_multiplier);
  w.PutU64(options.sketch_filter.survivor_floor);
  w.PutU64(options.tree_leaf_size);
  w.PutU64(options.probe_queries);
  w.PutU64(options.probe_sample);
  w.PutDouble(options.recall_margin);
  w.PutU64(options.seed);
  w.PutU64(options.feedback.enabled ? 1 : 0);
  w.PutU64(options.feedback.audit_every);
  w.PutDouble(options.feedback.decay);
  w.PutU64(options.feedback.min_observations);
  return std::vector<unsigned char>(w.bytes().begin(), w.bytes().end());
}

Status DecodeMeta(std::span<const unsigned char> bytes,
                  EngineOptions* options) {
  storage::PayloadReader r(bytes, "META");
  std::uint64_t u = 0;
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  options->lsh_params.k = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  options->lsh_params.l = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(r.GetDouble(&options->sketch_params.kappa));
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  options->sketch_params.copies = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(
      r.GetDouble(&options->sketch_params.bucket_multiplier));
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  options->sketch_params.leaf_size = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  options->sketch_filter.buckets = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  options->sketch_filter.copies = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(
      r.GetDouble(&options->sketch_filter.survivor_multiplier));
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  options->sketch_filter.survivor_floor = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  options->tree_leaf_size = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  options->probe_queries = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  options->probe_sample = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(r.GetDouble(&options->recall_margin));
  IPS_RETURN_IF_ERROR(r.GetU64(&options->seed));
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  options->feedback.enabled = u != 0;
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  options->feedback.audit_every = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(r.GetDouble(&options->feedback.decay));
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  options->feedback.min_observations = static_cast<std::size_t>(u);
  return ExpectAtEnd(r, "META");
}

std::vector<unsigned char> EncodeProfile(const DatasetProfile& profile) {
  storage::PayloadWriter w;
  w.PutU64(profile.n);
  w.PutU64(profile.dim);
  w.PutDouble(profile.min_norm);
  w.PutDouble(profile.max_norm);
  w.PutDouble(profile.mean_norm);
  return std::vector<unsigned char>(w.bytes().begin(), w.bytes().end());
}

Status DecodeProfile(std::span<const unsigned char> bytes,
                     DatasetProfile* profile) {
  storage::PayloadReader r(bytes, "PROF");
  std::uint64_t u = 0;
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  profile->n = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  profile->dim = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(r.GetDouble(&profile->min_norm));
  IPS_RETURN_IF_ERROR(r.GetDouble(&profile->max_norm));
  IPS_RETURN_IF_ERROR(r.GetDouble(&profile->mean_norm));
  return ExpectAtEnd(r, "PROF");
}

std::vector<unsigned char> EncodeCalibration(
    const PlannerCalibration& calib) {
  storage::PayloadWriter w;
  w.PutDouble(calib.tree_fraction);
  w.PutDouble(calib.lsh_candidate_fraction);
  w.PutDouble(calib.lsh_probe_overhead);
  w.PutDouble(calib.lsh_recall);
  w.PutDouble(calib.lsh_topk_recall);
  w.PutDouble(calib.sketch_recall);
  w.PutDouble(calib.sketch_cost);
  w.PutDouble(calib.quant_recall);
  w.PutDouble(calib.quant_cost_ratio);
  w.PutDouble(calib.filter_recall);
  w.PutDouble(calib.filter_cost_ratio);
  w.PutDouble(calib.filter_survivor_multiplier);
  w.PutU64(calib.filter_survivor_floor);
  w.PutU64(calib.probe_queries);
  w.PutDouble(calib.recall_margin);
  return std::vector<unsigned char>(w.bytes().begin(), w.bytes().end());
}

Status DecodeCalibration(std::span<const unsigned char> bytes,
                         PlannerCalibration* calib) {
  storage::PayloadReader r(bytes, "CALB");
  IPS_RETURN_IF_ERROR(r.GetDouble(&calib->tree_fraction));
  IPS_RETURN_IF_ERROR(r.GetDouble(&calib->lsh_candidate_fraction));
  IPS_RETURN_IF_ERROR(r.GetDouble(&calib->lsh_probe_overhead));
  IPS_RETURN_IF_ERROR(r.GetDouble(&calib->lsh_recall));
  IPS_RETURN_IF_ERROR(r.GetDouble(&calib->lsh_topk_recall));
  IPS_RETURN_IF_ERROR(r.GetDouble(&calib->sketch_recall));
  IPS_RETURN_IF_ERROR(r.GetDouble(&calib->sketch_cost));
  IPS_RETURN_IF_ERROR(r.GetDouble(&calib->quant_recall));
  IPS_RETURN_IF_ERROR(r.GetDouble(&calib->quant_cost_ratio));
  IPS_RETURN_IF_ERROR(r.GetDouble(&calib->filter_recall));
  IPS_RETURN_IF_ERROR(r.GetDouble(&calib->filter_cost_ratio));
  IPS_RETURN_IF_ERROR(r.GetDouble(&calib->filter_survivor_multiplier));
  std::uint64_t u = 0;
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  calib->filter_survivor_floor = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(r.GetU64(&u));
  calib->probe_queries = static_cast<std::size_t>(u);
  IPS_RETURN_IF_ERROR(r.GetDouble(&calib->recall_margin));
  return ExpectAtEnd(r, "CALB");
}

std::vector<unsigned char> EncodeTree(const MipsBallTree& tree,
                                      std::size_t cols) {
  storage::PayloadWriter w;
  w.PutU64(cols);
  w.PutI32(tree.root());
  w.PutU64(tree.nodes().size());
  for (const MipsBallTree::Node& node : tree.nodes()) {
    w.PutU64(node.begin);
    w.PutU64(node.end);
    w.PutI32(node.left);
    w.PutI32(node.right);
    w.PutDouble(node.radius);
    w.PutDoubles(node.center);
  }
  w.PutU64(tree.point_order().size());
  for (std::size_t p : tree.point_order()) w.PutU64(p);
  return std::vector<unsigned char>(w.bytes().begin(), w.bytes().end());
}

StatusOr<MipsBallTree> DecodeTree(std::span<const unsigned char> bytes,
                                  const Matrix& data) {
  storage::PayloadReader r(bytes, "TREE");
  std::uint64_t cols = 0;
  IPS_RETURN_IF_ERROR(r.GetU64(&cols));
  if (cols != data.cols()) {
    return Status::DataLoss("TREE section was built over " +
                            std::to_string(cols) +
                            "-dimensional data but the dataset has " +
                            std::to_string(data.cols()) + " columns");
  }
  std::int32_t root = 0;
  IPS_RETURN_IF_ERROR(r.GetI32(&root));
  std::uint64_t num_nodes = 0;
  IPS_RETURN_IF_ERROR(r.GetU64(&num_nodes));
  // Per-node payload is >= 32 bytes + the center doubles, so a huge
  // node count in a damaged-but-CRC-valid payload fails the bounds
  // check below before any large allocation.
  const std::uint64_t node_bytes = 8 + 8 + 4 + 4 + 8 + cols * 8;
  if (num_nodes * node_bytes > r.remaining()) {
    return Status::DataLoss("TREE section claims " +
                            std::to_string(num_nodes) +
                            " nodes but holds only " +
                            std::to_string(r.remaining()) + " bytes");
  }
  std::vector<MipsBallTree::Node> nodes(
      static_cast<std::size_t>(num_nodes));
  for (MipsBallTree::Node& node : nodes) {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    IPS_RETURN_IF_ERROR(r.GetU64(&begin));
    IPS_RETURN_IF_ERROR(r.GetU64(&end));
    node.begin = static_cast<std::size_t>(begin);
    node.end = static_cast<std::size_t>(end);
    std::int32_t left = 0;
    std::int32_t right = 0;
    IPS_RETURN_IF_ERROR(r.GetI32(&left));
    IPS_RETURN_IF_ERROR(r.GetI32(&right));
    node.left = left;
    node.right = right;
    IPS_RETURN_IF_ERROR(r.GetDouble(&node.radius));
    node.center.resize(static_cast<std::size_t>(cols));
    IPS_RETURN_IF_ERROR(r.GetDoubles(node.center));
  }
  std::uint64_t order_size = 0;
  IPS_RETURN_IF_ERROR(r.GetU64(&order_size));
  if (order_size * 8 > r.remaining()) {
    return Status::DataLoss("TREE section claims " +
                            std::to_string(order_size) +
                            " point-order entries but holds only " +
                            std::to_string(r.remaining()) + " bytes");
  }
  std::vector<std::size_t> point_order(
      static_cast<std::size_t>(order_size));
  for (std::size_t& p : point_order) {
    std::uint64_t v = 0;
    IPS_RETURN_IF_ERROR(r.GetU64(&v));
    p = static_cast<std::size_t>(v);
  }
  IPS_RETURN_IF_ERROR(ExpectAtEnd(r, "TREE"));
  return MipsBallTree::Restore(data, std::move(nodes),
                               std::move(point_order), root);
}

std::vector<unsigned char> EncodeLshTables(const Rng::State& prebuild_state,
                                           const LshTables& tables) {
  storage::PayloadWriter w;
  PutRngState(&w, prebuild_state);
  w.PutU64(tables.params().k);
  w.PutU64(tables.params().l);
  for (std::size_t t = 0; t < tables.num_tables(); ++t) {
    const auto& buckets = tables.table_buckets(t);
    w.PutU64(buckets.size());
    for (const auto& [key, bucket] : buckets) {
      w.PutU64(key);
      w.PutU64(bucket.size());
      for (std::uint32_t i : bucket) w.PutU32(i);
    }
  }
  return std::vector<unsigned char>(w.bytes().begin(), w.bytes().end());
}

struct DecodedLshTables {
  Rng::State prebuild_state;
  LshTableParams params;
  std::vector<std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>>
      buckets;
};

StatusOr<DecodedLshTables> DecodeLshTables(
    std::span<const unsigned char> bytes) {
  storage::PayloadReader r(bytes, "LSHT");
  DecodedLshTables decoded;
  IPS_RETURN_IF_ERROR(GetRngState(&r, &decoded.prebuild_state));
  std::uint64_t k = 0;
  std::uint64_t l = 0;
  IPS_RETURN_IF_ERROR(r.GetU64(&k));
  IPS_RETURN_IF_ERROR(r.GetU64(&l));
  decoded.params.k = static_cast<std::size_t>(k);
  decoded.params.l = static_cast<std::size_t>(l);
  if (l > r.remaining() / 8 + 1) {
    return Status::DataLoss("LSHT section claims " + std::to_string(l) +
                            " tables but holds only " +
                            std::to_string(r.remaining()) + " bytes");
  }
  decoded.buckets.resize(static_cast<std::size_t>(l));
  for (auto& table : decoded.buckets) {
    std::uint64_t num_buckets = 0;
    IPS_RETURN_IF_ERROR(r.GetU64(&num_buckets));
    if (num_buckets * 16 > r.remaining()) {
      return Status::DataLoss("LSHT section claims " +
                              std::to_string(num_buckets) +
                              " buckets but holds only " +
                              std::to_string(r.remaining()) + " bytes");
    }
    table.reserve(static_cast<std::size_t>(num_buckets));
    for (std::uint64_t b = 0; b < num_buckets; ++b) {
      std::uint64_t key = 0;
      std::uint64_t count = 0;
      IPS_RETURN_IF_ERROR(r.GetU64(&key));
      IPS_RETURN_IF_ERROR(r.GetU64(&count));
      if (count * 4 > r.remaining()) {
        return Status::DataLoss("LSHT bucket claims " +
                                std::to_string(count) +
                                " entries but the section holds only " +
                                std::to_string(r.remaining()) + " bytes");
      }
      std::vector<std::uint32_t>& bucket = table[key];
      bucket.resize(static_cast<std::size_t>(count));
      IPS_RETURN_IF_ERROR(r.GetU32s(bucket));
    }
  }
  IPS_RETURN_IF_ERROR(ExpectAtEnd(r, "LSHT"));
  return decoded;
}

std::vector<unsigned char> EncodeSketch(const Rng::State& prebuild_state) {
  storage::PayloadWriter w;
  PutRngState(&w, prebuild_state);
  return std::vector<unsigned char>(w.bytes().begin(), w.bytes().end());
}

Status DecodeSketch(std::span<const unsigned char> bytes,
                    Rng::State* prebuild_state) {
  storage::PayloadReader r(bytes, "SKCH");
  IPS_RETURN_IF_ERROR(GetRngState(&r, prebuild_state));
  return ExpectAtEnd(r, "SKCH");
}

}  // namespace

Status Engine::SaveSnapshot(const std::string& dir) const {
  IPS_FAILPOINT("serve/snapshot-save");
  static Counter* const saves =
      MetricsRegistry::Global().GetCounter("serve.engine.snapshot.saves");
  IPS_RETURN_IF_ERROR(storage::EnsureDirectory(dir));
  auto created = storage::SnapshotWriter::Create(dir + kSnapshotFile);
  IPS_RETURN_IF_ERROR(created.status());
  storage::SnapshotWriter writer = std::move(created).value();

  MutexLock lock(build_mutex_);
  {
    const auto meta = EncodeMeta(options_);
    IPS_RETURN_IF_ERROR(writer.WriteSection(storage::kSectionMeta, 3, meta));
  }
  {
    // The dataset streams through the section writer exactly like
    // MatrixSnapshotWriter lays it out, so every matrix reader in the
    // storage layer (heap load, mmap view, block reader) understands
    // the engine snapshot's DSET section too.
    IPS_RETURN_IF_ERROR(writer.BeginSection(storage::kSectionDataset, 1));
    unsigned char subheader[storage::kMatrixSubheaderBytes] = {};
    const std::uint64_t cols64 = data_.cols();
    std::memcpy(subheader, &cols64, sizeof(cols64));
    IPS_RETURN_IF_ERROR(writer.Append({subheader, sizeof(subheader)}));
    IPS_RETURN_IF_ERROR(writer.Append(
        {reinterpret_cast<const unsigned char*>(data_.raw()),
         data_.rows() * data_.cols() * sizeof(double)}));
    IPS_RETURN_IF_ERROR(writer.EndSection());
  }
  {
    const auto prof = EncodeProfile(profile_);
    IPS_RETURN_IF_ERROR(
        writer.WriteSection(storage::kSectionProfile, 1, prof));
  }
  {
    const auto calib = EncodeCalibration(planner_->calibration());
    IPS_RETURN_IF_ERROR(
        writer.WriteSection(storage::kSectionCalibration, 3, calib));
  }
  if (tree_index_ != nullptr) {
    const auto tree = EncodeTree(tree_index_->tree(), data_.cols());
    IPS_RETURN_IF_ERROR(writer.WriteSection(storage::kSectionTree, 1, tree));
  }
  if (lsh_index_ != nullptr && lsh_prebuild_valid_) {
    const auto lsh =
        EncodeLshTables(lsh_prebuild_state_, lsh_index_->tables());
    IPS_RETURN_IF_ERROR(
        writer.WriteSection(storage::kSectionLshTables, 1, lsh));
  }
  if (sketch_index_ != nullptr && sketch_prebuild_valid_) {
    const auto sketch = EncodeSketch(sketch_prebuild_state_);
    IPS_RETURN_IF_ERROR(
        writer.WriteSection(storage::kSectionSketch, 1, sketch));
  }
  IPS_RETURN_IF_ERROR(writer.Finish());
  saves->Increment();
  return Status::Ok();
}

StatusOr<std::unique_ptr<Engine>> Engine::CreateFromSnapshot(
    const std::string& dir, const SnapshotLoadOptions& load) {
  IPS_FAILPOINT("serve/snapshot-load");
  static Counter* const loads =
      MetricsRegistry::Global().GetCounter("serve.engine.snapshot.loads");
  const std::string path = dir + kSnapshotFile;

  // The structured sections are tiny; they are always copied out and
  // (except on the unverified mmap path) CRC-checked. Only the bulk
  // dataset differs between the heap and mmap paths.
  std::shared_ptr<storage::MappedSnapshot> mapped;
  std::unique_ptr<storage::SnapshotReader> reader;
  auto has_section = [&](std::uint32_t id) {
    return mapped != nullptr ? mapped->Find(id) != nullptr
                             : reader->Find(id) != nullptr;
  };
  auto read_section =
      [&](std::uint32_t id) -> StatusOr<std::vector<unsigned char>> {
    if (mapped != nullptr) {
      const storage::SectionEntry* entry = mapped->Find(id);
      if (entry == nullptr) {
        return Status::NotFound(path + " has no " +
                                storage::SectionName(id) + " section");
      }
      const auto bytes = mapped->SectionBytes(*entry);
      return std::vector<unsigned char>(bytes.begin(), bytes.end());
    }
    return reader->ReadSection(id);
  };

  Matrix data;
  if (load.use_mmap) {
    auto snap = storage::MappedSnapshot::Map(path, load.verify_checksums);
    IPS_RETURN_IF_ERROR(snap.status());
    mapped = std::move(snap).value();
    auto view = mapped->MapMatrixSection(storage::kSectionDataset);
    IPS_RETURN_IF_ERROR(view.status());
    data = std::move(view).value();
  } else {
    auto opened = storage::SnapshotReader::Open(path);
    IPS_RETURN_IF_ERROR(opened.status());
    reader = std::make_unique<storage::SnapshotReader>(
        std::move(opened).value());
    auto loaded = storage::LoadMatrixSnapshot(path);
    IPS_RETURN_IF_ERROR(loaded.status());
    data = std::move(loaded).value();
  }

  EngineOptions options;
  {
    auto meta = read_section(storage::kSectionMeta);
    IPS_RETURN_IF_ERROR(meta.status());
    IPS_RETURN_IF_ERROR(DecodeMeta(*meta, &options));
  }
  DatasetProfile profile;
  {
    auto prof = read_section(storage::kSectionProfile);
    IPS_RETURN_IF_ERROR(prof.status());
    IPS_RETURN_IF_ERROR(DecodeProfile(*prof, &profile));
  }
  if (profile.n != data.rows() || profile.dim != data.cols()) {
    return Status::DataLoss(
        path + ": PROF says " + std::to_string(profile.n) + "x" +
        std::to_string(profile.dim) + " but the DSET section holds " +
        std::to_string(data.rows()) + "x" + std::to_string(data.cols()));
  }
  PlannerCalibration calibration;
  {
    auto calib = read_section(storage::kSectionCalibration);
    IPS_RETURN_IF_ERROR(calib.status());
    IPS_RETURN_IF_ERROR(DecodeCalibration(*calib, &calibration));
  }

  std::unique_ptr<Engine> engine(new Engine(
      std::move(data), options, profile,
      std::make_unique<Planner>(profile, calibration)));
  engine->data_keepalive_ = mapped;

  // Install every persisted index eagerly: the warm start's first
  // query must not pay a lazy build.
  MutexLock lock(engine->build_mutex_);
  if (has_section(storage::kSectionTree)) {
    auto bytes = read_section(storage::kSectionTree);
    IPS_RETURN_IF_ERROR(bytes.status());
    auto tree = DecodeTree(*bytes, engine->data_);
    IPS_RETURN_IF_ERROR(tree.status());
    auto index =
        TreeMipsIndex::Restore(engine->data_, std::move(tree).value());
    IPS_RETURN_IF_ERROR(index.status());
    engine->tree_index_ = std::move(index).value();
  }
  if (has_section(storage::kSectionLshTables)) {
    if (profile.max_norm <= 0.0) {
      return Status::DataLoss(
          path + ": LSHT section present but PROF.max_norm is not "
                 "positive (the lsh path cannot have been built)");
    }
    auto bytes = read_section(storage::kSectionLshTables);
    IPS_RETURN_IF_ERROR(bytes.status());
    auto decoded = DecodeLshTables(*bytes);
    IPS_RETURN_IF_ERROR(decoded.status());
    engine->lsh_transform_ = std::make_unique<SimpleMipsTransform>(
        profile.dim, profile.max_norm);
    engine->lsh_family_ = std::make_unique<SimHashFamily>(
        engine->lsh_transform_->output_dim());
    engine->lsh_prebuild_state_ = decoded->prebuild_state;
    engine->lsh_prebuild_valid_ = true;
    engine->build_rng_.RestoreState(decoded->prebuild_state);
    auto index = LshMipsIndex::CreateFromBuckets(
        engine->data_, engine->lsh_transform_.get(), *engine->lsh_family_,
        decoded->params, &engine->build_rng_, std::move(decoded->buckets));
    IPS_RETURN_IF_ERROR(index.status());
    engine->lsh_index_ = std::move(index).value();
  }
  if (has_section(storage::kSectionSketch)) {
    auto bytes = read_section(storage::kSectionSketch);
    IPS_RETURN_IF_ERROR(bytes.status());
    Rng::State prebuild_state;
    IPS_RETURN_IF_ERROR(DecodeSketch(*bytes, &prebuild_state));
    engine->sketch_prebuild_state_ = prebuild_state;
    engine->sketch_prebuild_valid_ = true;
    engine->build_rng_.RestoreState(prebuild_state);
    auto index = SketchIndex::Create(
        engine->data_,
        SketchConfig{options.sketch_params, options.sketch_filter},
        &engine->build_rng_);
    IPS_RETURN_IF_ERROR(index.status());
    engine->sketch_index_ = std::move(index).value();
  }
  loads->Increment();
  return engine;
}

}  // namespace ips
