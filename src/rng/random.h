// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Deterministic, platform-stable random number generation.
//
// The standard <random> distributions are implementation-defined, so two
// compilers can disagree on the exact stream; experiment reproducibility
// therefore uses our own xoshiro256** generator and hand-rolled samplers
// (Box-Muller Gaussian, inversion exponential / Cauchy).

#ifndef IPS_RNG_RANDOM_H_
#define IPS_RNG_RANDOM_H_

#include <cstdint>
#include <vector>

namespace ips {

/// SplitMix64 step; used to seed xoshiro and as a cheap stateless mixer.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 generator (Blackman & Vigna). Deterministic across
/// platforms, 2^256-1 period, passes BigCrush.
class Rng {
 public:
  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x1234abcd5678ef90ULL);

  /// Next 64 uniformly random bits.
  std::uint64_t NextUint64();

  /// Uniform in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform integer in [0, bound) without modulo bias. Requires bound > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal N(0,1) via Box-Muller (with cached spare).
  double NextGaussian();

  /// Exponential with rate 1 (mean 1) via inversion.
  double NextExponential();

  /// Standard Cauchy via inversion.
  double NextCauchy();

  /// Fair coin: +1 or -1.
  int NextSign();

  /// Bernoulli(p).
  bool NextBernoulli(double p);

  /// Derives an independent generator (stream split) from this one.
  Rng Split();

  /// The complete generator state: the four xoshiro words plus the
  /// Box-Muller spare. Capturing and restoring it replays the stream
  /// bit-identically — the storage snapshot layer records the state at
  /// index-build time so loaded indexes re-derive the same randomness.
  struct State {
    std::uint64_t words[4] = {0, 0, 0, 0};
    std::uint64_t has_spare_gaussian = 0;  // bool, fixed-width on disk
    double spare_gaussian = 0.0;
  };

  State SaveState() const;
  void RestoreState(const State& state);

  /// Fills `out` with a uniformly random permutation of [0, n).
  void Permutation(std::size_t n, std::vector<std::size_t>* out);

 private:
  std::uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace ips

#endif  // IPS_RNG_RANDOM_H_
