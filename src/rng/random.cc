#include "rng/random.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace ips {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  IPS_CHECK_GT(bound, 0u);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  IPS_CHECK_LE(lo, hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<std::int64_t>(NextUint64());
  }
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box-Muller; u1 in (0,1] avoids log(0).
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_gaussian_ = radius * std::sin(angle);
  has_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::NextExponential() {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u);
}

double Rng::NextCauchy() {
  // Inverse CDF: tan(pi*(u - 1/2)). Reject u==0.5 exactly? tan(0)=0 is fine;
  // reject endpoints where tan diverges.
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0 || u >= 1.0);
  return std::tan(std::numbers::pi * (u - 0.5));
}

int Rng::NextSign() { return (NextUint64() & 1ULL) ? 1 : -1; }

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

Rng Rng::Split() { return Rng(NextUint64() ^ 0x5851f42d4c957f2dULL); }

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.words[i] = state_[i];
  state.has_spare_gaussian = has_spare_gaussian_ ? 1 : 0;
  state.spare_gaussian = spare_gaussian_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  has_spare_gaussian_ = state.has_spare_gaussian != 0;
  spare_gaussian_ = state.spare_gaussian;
}

void Rng::Permutation(std::size_t n, std::vector<std::size_t>* out) {
  IPS_CHECK(out != nullptr);
  out->resize(n);
  for (std::size_t i = 0; i < n; ++i) (*out)[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(NextBounded(i));
    std::swap((*out)[i - 1], (*out)[j]);
  }
}

}  // namespace ips
