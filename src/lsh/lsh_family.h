// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The (asymmetric) LSH abstraction of Definition 2 in the paper: a family
// H of pairs (h_p, h_q) of hash functions, where data vectors are hashed
// with h_p and query vectors with h_q. A family is
// (s, cs, P1, P2)-asymmetric-LSH for a similarity `sim` when
//   sim(p, q) >= s   =>  Pr_H[h_p(p) = h_q(q)] >= P1, and
//   sim(p, q) <  cs  =>  Pr_H[h_p(p) = h_q(q)] <= P2.
// Symmetric families simply use h_p = h_q.

#ifndef IPS_LSH_LSH_FAMILY_H_
#define IPS_LSH_LSH_FAMILY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rng/random.h"
#include "util/stats.h"

namespace ips {

/// One sampled hash-function pair (h_p, h_q) from a family.
class LshFunction {
 public:
  virtual ~LshFunction() = default;

  /// h_p: hash of a data vector.
  virtual std::uint64_t HashData(std::span<const double> p) const = 0;

  /// h_q: hash of a query vector. Symmetric families forward to HashData.
  virtual std::uint64_t HashQuery(std::span<const double> q) const = 0;
};

/// A distribution over hash-function pairs (Definition 2).
class LshFamily {
 public:
  virtual ~LshFamily() = default;

  /// Human-readable family name ("simhash", "e2lsh(w=4)", ...).
  virtual std::string Name() const = 0;

  /// Dimension of vectors the family hashes.
  virtual std::size_t dim() const = 0;

  /// Samples a fresh (h_p, h_q) pair.
  virtual std::unique_ptr<LshFunction> Sample(Rng* rng) const = 0;

  /// True when h_p == h_q by construction.
  virtual bool IsSymmetric() const { return false; }
};

/// Convenience base for symmetric families: implement HashData only.
class SymmetricLshFunction : public LshFunction {
 public:
  std::uint64_t HashQuery(std::span<const double> q) const final {
    return HashData(q);
  }
};

/// Monte-Carlo estimate of Pr_H[h_p(p) = h_q(q)] from `trials` fresh
/// samples of the family.
BernoulliEstimate EstimateCollisionProbability(const LshFamily& family,
                                               std::span<const double> p,
                                               std::span<const double> q,
                                               std::size_t trials, Rng* rng);

/// A (h_p, h_q) pair formed by concatenating `k` independent draws;
/// collides iff all k constituents collide (AND-amplification).
/// Collision probability is P^k when the base collides w.p. P.
class ConcatenatedLshFunction : public LshFunction {
 public:
  ConcatenatedLshFunction(const LshFamily& family, std::size_t k, Rng* rng);

  std::uint64_t HashData(std::span<const double> p) const override;
  std::uint64_t HashQuery(std::span<const double> q) const override;

 private:
  std::vector<std::unique_ptr<LshFunction>> functions_;
};

}  // namespace ips

#endif  // IPS_LSH_LSH_FAMILY_H_
