// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// p-stable LSH for Euclidean distance (Datar-Immorlica-Indyk-Mirrokni,
// the scheme behind E2LSH): h(x) = floor((<a, x> + b) / w) with Gaussian
// a and uniform offset b in [0, w). The collision probability for two
// points at distance r is
//   p(r) = 1 - 2*Phi(-w/r) - (2r/(sqrt(2 pi) w)) (1 - exp(-w^2/(2 r^2))).
// Base hash for the L2-ALSH of Shrivastava-Li [45].

#ifndef IPS_LSH_E2LSH_H_
#define IPS_LSH_E2LSH_H_

#include <cstddef>

#include "lsh/lsh_family.h"

namespace ips {

/// Family of Gaussian-projection bucket hashes with bucket width `w`.
class E2LshFamily : public LshFamily {
 public:
  E2LshFamily(std::size_t dim, double bucket_width);

  std::string Name() const override;
  std::size_t dim() const override { return dim_; }
  std::unique_ptr<LshFunction> Sample(Rng* rng) const override;
  bool IsSymmetric() const override { return true; }

  double bucket_width() const { return bucket_width_; }

  /// Analytic collision probability at Euclidean distance `r > 0` for
  /// bucket width `w` (1.0 when r == 0).
  static double CollisionProbability(double r, double w);

 private:
  std::size_t dim_;
  double bucket_width_;
};

}  // namespace ips

#endif  // IPS_LSH_E2LSH_H_
