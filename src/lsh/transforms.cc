#include "lsh/transforms.h"

#include <cmath>

#include "linalg/kernels.h"
#include "util/check.h"

namespace ips {
namespace {

// sqrt(max(0, 1 - t)) with a tolerance for tiny negative values caused by
// floating-point rounding of ||x||^2 near 1.
double SqrtComplement(double t) {
  const double complement = 1.0 - t;
  IPS_CHECK_GE(complement, -1e-9) << "vector norm exceeds the ball radius";
  return complement > 0.0 ? std::sqrt(complement) : 0.0;
}

}  // namespace

Matrix VectorTransform::TransformDataset(const Matrix& points) const {
  Matrix result;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    const std::vector<double> transformed = TransformData(points.Row(i));
    result.AppendRow(transformed);
  }
  return result;
}

Matrix VectorTransform::TransformQueries(const Matrix& points) const {
  Matrix result;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    const std::vector<double> transformed = TransformQuery(points.Row(i));
    result.AppendRow(transformed);
  }
  return result;
}

DualBallTransform::DualBallTransform(std::size_t dim, double query_radius)
    : dim_(dim), query_radius_(query_radius) {
  IPS_CHECK_GT(dim, 0u);
  IPS_CHECK_GT(query_radius, 0.0);
}

std::vector<double> DualBallTransform::TransformData(
    std::span<const double> p) const {
  IPS_CHECK_EQ(p.size(), dim_);
  std::vector<double> out(p.begin(), p.end());
  out.push_back(SqrtComplement(kernels::SquaredNorm(p)));
  out.push_back(0.0);
  return out;
}

std::vector<double> DualBallTransform::TransformQuery(
    std::span<const double> q) const {
  IPS_CHECK_EQ(q.size(), dim_);
  std::vector<double> out(q.begin(), q.end());
  kernels::ScaleInPlace(out, 1.0 / query_radius_);
  const double scaled_norm_sq = kernels::SquaredNorm(out);
  out.push_back(0.0);
  out.push_back(SqrtComplement(scaled_norm_sq));
  return out;
}

SimpleMipsTransform::SimpleMipsTransform(std::size_t dim,
                                         double max_data_norm)
    : dim_(dim), max_data_norm_(max_data_norm) {
  IPS_CHECK_GT(dim, 0u);
  IPS_CHECK_GT(max_data_norm, 0.0);
}

std::vector<double> SimpleMipsTransform::TransformData(
    std::span<const double> p) const {
  IPS_CHECK_EQ(p.size(), dim_);
  std::vector<double> out(p.begin(), p.end());
  kernels::ScaleInPlace(out, 1.0 / max_data_norm_);
  const double scaled_norm_sq = kernels::SquaredNorm(out);
  out.push_back(SqrtComplement(scaled_norm_sq));
  return out;
}

std::vector<double> SimpleMipsTransform::TransformQuery(
    std::span<const double> q) const {
  IPS_CHECK_EQ(q.size(), dim_);
  std::vector<double> out = kernels::Normalized(q);
  out.push_back(0.0);
  return out;
}

XboxTransform::XboxTransform(std::size_t dim, double max_data_norm)
    : dim_(dim), max_data_norm_(max_data_norm) {
  IPS_CHECK_GT(dim, 0u);
  IPS_CHECK_GT(max_data_norm, 0.0);
}

std::vector<double> XboxTransform::TransformData(
    std::span<const double> p) const {
  IPS_CHECK_EQ(p.size(), dim_);
  const double norm_sq = kernels::SquaredNorm(p);
  const double m_sq = max_data_norm_ * max_data_norm_;
  IPS_CHECK_LE(norm_sq, m_sq * (1.0 + 1e-9));
  std::vector<double> out(p.begin(), p.end());
  const double lift = m_sq - norm_sq;
  out.push_back(lift > 0.0 ? std::sqrt(lift) : 0.0);
  return out;
}

std::vector<double> XboxTransform::TransformQuery(
    std::span<const double> q) const {
  IPS_CHECK_EQ(q.size(), dim_);
  std::vector<double> out(q.begin(), q.end());
  out.push_back(0.0);
  return out;
}

L2AlshTransform::L2AlshTransform(std::size_t dim, std::size_t m,
                                 double u_scale, double max_data_norm)
    : dim_(dim), m_(m), u_scale_(u_scale), max_data_norm_(max_data_norm) {
  IPS_CHECK_GT(dim, 0u);
  IPS_CHECK_GE(m, 1u);
  IPS_CHECK_GT(u_scale, 0.0);
  IPS_CHECK_LT(u_scale, 1.0);
  IPS_CHECK_GT(max_data_norm, 0.0);
}

std::vector<double> L2AlshTransform::TransformData(
    std::span<const double> p) const {
  IPS_CHECK_EQ(p.size(), dim_);
  std::vector<double> out(p.begin(), p.end());
  kernels::ScaleInPlace(out, u_scale_ / max_data_norm_);
  double power = kernels::SquaredNorm(out);  // ||x'||^2
  for (std::size_t i = 0; i < m_; ++i) {
    out.push_back(power);
    power *= power;  // ||x'||^(2^(i+1)) -> next squared power
  }
  return out;
}

std::vector<double> L2AlshTransform::TransformQuery(
    std::span<const double> q) const {
  IPS_CHECK_EQ(q.size(), dim_);
  std::vector<double> out = kernels::Normalized(q);
  out.insert(out.end(), m_, 0.5);
  return out;
}

MinHashAlshTransform::MinHashAlshTransform(std::size_t dim,
                                           std::size_t max_weight)
    : dim_(dim), max_weight_(max_weight) {
  IPS_CHECK_GT(dim, 0u);
  IPS_CHECK_GE(max_weight, 1u);
}

std::vector<double> MinHashAlshTransform::TransformData(
    std::span<const double> p) const {
  IPS_CHECK_EQ(p.size(), dim_);
  std::size_t weight = 0;
  for (double v : p) {
    IPS_CHECK(v == 0.0 || v == 1.0) << "mh-alsh requires binary vectors";
    if (v == 1.0) ++weight;
  }
  IPS_CHECK_LE(weight, max_weight_);
  std::vector<double> out(p.begin(), p.end());
  out.resize(dim_ + max_weight_, 0.0);
  // Pad with ones so every transformed data vector has weight exactly
  // max_weight_; queries are zero here, so intersections are unchanged.
  for (std::size_t i = 0; i < max_weight_ - weight; ++i) {
    out[dim_ + i] = 1.0;
  }
  return out;
}

std::vector<double> MinHashAlshTransform::TransformQuery(
    std::span<const double> q) const {
  IPS_CHECK_EQ(q.size(), dim_);
  std::vector<double> out(q.begin(), q.end());
  out.resize(dim_ + max_weight_, 0.0);
  return out;
}

SymmetricIncoherentTransform::SymmetricIncoherentTransform(
    std::size_t dim, double epsilon, std::size_t fingerprint_bits)
    : dim_(dim),
      fingerprint_bits_(fingerprint_bits),
      family_(fingerprint_bits >= 64
                  ? ~0ULL
                  : (1ULL << fingerprint_bits),
              epsilon) {
  IPS_CHECK_GT(dim, 0u);
  IPS_CHECK_GE(fingerprint_bits, 1u);
  IPS_CHECK_LE(fingerprint_bits, 64u);
}

std::uint64_t SymmetricIncoherentTransform::Fingerprint(
    std::span<const double> x) const {
  // Hash the exact bit pattern of the coordinates: equal vectors (the
  // finite-precision encodings of Section 4.2) get equal fingerprints.
  std::uint64_t state = 0x61c8864680b583ebULL;
  for (double v : x) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    state ^= bits;
    state = SplitMix64(state);
  }
  return state % family_.size();
}

std::vector<double> SymmetricIncoherentTransform::TransformData(
    std::span<const double> p) const {
  IPS_CHECK_EQ(p.size(), dim_);
  std::vector<double> out(p.begin(), p.end());
  out.resize(dim_ + family_.dim(), 0.0);
  const double lift = SqrtComplement(kernels::SquaredNorm(p));
  if (lift > 0.0) {
    const std::uint64_t index = Fingerprint(p);
    const double value =
        lift / std::sqrt(static_cast<double>(family_.q()));
    for (std::size_t coord : family_.Support(index)) {
      out[dim_ + coord] = value;
    }
  }
  return out;
}

std::vector<double> SymmetricIncoherentTransform::TransformQuery(
    std::span<const double> q) const {
  return TransformData(q);
}

TransformedLshFamily::TransformedLshFamily(const VectorTransform* transform,
                                           const LshFamily* base)
    : transform_(transform), base_(base) {
  IPS_CHECK(transform != nullptr);
  IPS_CHECK(base != nullptr);
  IPS_CHECK_EQ(transform->output_dim(), base->dim());
}

std::string TransformedLshFamily::Name() const {
  return transform_->Name() + "+" + base_->Name();
}

namespace {

class TransformedLshFunction : public LshFunction {
 public:
  TransformedLshFunction(const VectorTransform* transform,
                         std::unique_ptr<LshFunction> base)
      : transform_(transform), base_(std::move(base)) {}

  std::uint64_t HashData(std::span<const double> p) const override {
    return base_->HashData(transform_->TransformData(p));
  }

  std::uint64_t HashQuery(std::span<const double> q) const override {
    return base_->HashQuery(transform_->TransformQuery(q));
  }

 private:
  const VectorTransform* transform_;
  std::unique_ptr<LshFunction> base_;
};

}  // namespace

std::unique_ptr<LshFunction> TransformedLshFamily::Sample(Rng* rng) const {
  return std::make_unique<TransformedLshFunction>(transform_,
                                                  base_->Sample(rng));
}

}  // namespace ips
