#include "lsh/rho.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace ips {

double RhoFromProbabilities(double p1, double p2) {
  IPS_CHECK_GT(p1, 0.0);
  IPS_CHECK_LT(p1, 1.0);
  IPS_CHECK_GT(p2, 0.0);
  IPS_CHECK_LT(p2, 1.0);
  return std::log(p1) / std::log(p2);
}

double RhoDataDep(double s, double c) {
  IPS_CHECK_GT(s, 0.0);
  IPS_CHECK_LE(s, 1.0);
  IPS_CHECK_GT(c, 0.0);
  IPS_CHECK_LT(c, 1.0);
  return (1.0 - s) / (1.0 + (1.0 - 2.0 * c) * s);
}

double RhoSimpleLsh(double s, double c) {
  IPS_CHECK_GT(s, 0.0);
  IPS_CHECK_LT(s, 1.0);
  IPS_CHECK_GT(c, 0.0);
  IPS_CHECK_LT(c, 1.0);
  const double p1 = 1.0 - std::acos(s) / std::numbers::pi;
  const double p2 = 1.0 - std::acos(c * s) / std::numbers::pi;
  return RhoFromProbabilities(p1, p2);
}

double RhoMhAlsh(double s, double c) {
  IPS_CHECK_GT(s, 0.0);
  IPS_CHECK_LE(s, 1.0);
  IPS_CHECK_GT(c, 0.0);
  IPS_CHECK_LT(c, 1.0);
  const double p1 = s / (2.0 - s);
  const double p2 = (c * s) / (2.0 - c * s);
  return RhoFromProbabilities(p1, p2);
}

double RhoSphereAnn(double approximation) {
  IPS_CHECK_GT(approximation, 1.0);
  return 1.0 / (2.0 * approximation * approximation - 1.0);
}

namespace {

// E2LSH collision probability at distance r, width w (duplicated from
// e2lsh.cc's closed form to keep this translation unit header-light).
double E2Probability(double r, double w) {
  if (r <= 0.0) return 1.0;
  const double ratio = w / r;
  const double phi = 0.5 * std::erfc(ratio / std::numbers::sqrt2);
  return 1.0 - 2.0 * phi -
         (2.0 / (std::sqrt(2.0 * std::numbers::pi) * ratio)) *
             (1.0 - std::exp(-ratio * ratio / 2.0));
}

}  // namespace

double RhoL2AlshNumeric(double s, double c) {
  IPS_CHECK_GT(s, 0.0);
  IPS_CHECK_LE(s, 1.0);
  IPS_CHECK_GT(c, 0.0);
  IPS_CHECK_LT(c, 1.0);
  double best = 1.0;
  for (int m = 1; m <= 3; ++m) {
    const double tail_exponent = std::pow(2.0, m + 1);
    for (double u = 0.5; u < 0.96; u += 0.05) {
      const double tail = std::pow(u, tail_exponent);
      const double near_sq = 1.0 + m / 4.0 - 2.0 * u * s + tail;
      const double far_sq = 1.0 + m / 4.0 - 2.0 * u * c * s + tail;
      if (near_sq <= 0.0 || far_sq <= near_sq) continue;
      const double near = std::sqrt(near_sq);
      const double far = std::sqrt(far_sq);
      for (double w = 0.5; w <= 6.0; w += 0.25) {
        const double p1 = E2Probability(near, w);
        const double p2 = E2Probability(far, w);
        if (p1 <= 0.0 || p1 >= 1.0 || p2 <= 0.0 || p2 >= 1.0) continue;
        best = std::min(best, std::log(p1) / std::log(p2));
      }
    }
  }
  return best;
}

}  // namespace ips
