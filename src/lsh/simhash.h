// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// SimHash / hyperplane LSH (Charikar [15,16]): h(x) = sign(<g, x>) for a
// Gaussian g. For unit vectors, Pr[h(x) = h(y)] = 1 - angle(x, y)/pi.
// This is the base hash used by the SIMP-ALSH of Neyshabur-Srebro [39]
// and by Valiant's reduction of R^d to {-1,1}^d.

#ifndef IPS_LSH_SIMHASH_H_
#define IPS_LSH_SIMHASH_H_

#include <cstddef>

#include "lsh/lsh_family.h"

namespace ips {

/// Family of sign-of-random-projection hash functions.
class SimHashFamily : public LshFamily {
 public:
  explicit SimHashFamily(std::size_t dim);

  std::string Name() const override { return "simhash"; }
  std::size_t dim() const override { return dim_; }
  std::unique_ptr<LshFunction> Sample(Rng* rng) const override;
  bool IsSymmetric() const override { return true; }

  /// Analytic collision probability 1 - acos(cosine)/pi for two vectors
  /// with the given cosine similarity.
  static double CollisionProbability(double cosine);

 private:
  std::size_t dim_;
};

}  // namespace ips

#endif  // IPS_LSH_SIMHASH_H_
