// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The {0,1}-domain LSH the paper alludes to in Table 1 and Section 1.1
// ("we can achieve runtime n^(1 + log(s/d)/log(cs/d)) using LSH for
// {0,1}^d"): sample a uniform coordinate i and declare a collision
// exactly when BOTH the data and the query vector have a 1 there. Then
//   Pr[collision] = |p AND q| / d = p^T q / d,
// so pairs above threshold s collide with probability P1 = s/d and
// pairs below cs with P2 <= cs/d, giving
//   rho = log(s/d) / log(cs/d)
// directly -- the permissible-range counterpart of the {0,1} hardness
// row. The family is asymmetric only in the trivial sense that the
// non-collision sentinel values differ between the two sides.

#ifndef IPS_LSH_BIT_SAMPLE_H_
#define IPS_LSH_BIT_SAMPLE_H_

#include <cstddef>

#include "lsh/lsh_family.h"

namespace ips {

/// Coordinate-sampling family for binary vectors.
class BitSampleFamily : public LshFamily {
 public:
  explicit BitSampleFamily(std::size_t dim);

  std::string Name() const override { return "bit-sample"; }
  std::size_t dim() const override { return dim_; }
  std::unique_ptr<LshFunction> Sample(Rng* rng) const override;

  /// Analytic collision probability: t / d for binary vectors with
  /// inner product t.
  static double CollisionProbability(std::size_t inner_product,
                                     std::size_t dim);

  /// The data structure's query exponent: log(s/d)/log(cs/d).
  static double Rho(double s, double cs, std::size_t dim);

 private:
  std::size_t dim_;
};

}  // namespace ips

#endif  // IPS_LSH_BIT_SAMPLE_H_
