// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The LSH *bucket join*: instead of probing an index once per query,
// hash both point sets into the same (K, L) tables and enumerate
// colliding (data, query) pairs bucket by bucket -- the classic
// similarity-join operator built on LSH (cf. the I/O-efficient joins of
// [41]). Each candidate pair passes a lossless int8 prefilter (skipped
// only when its quantized estimate plus the rigorous rounding-error
// bound cannot reach cs), is then verified with one exact inner
// product, and for every query the best verified pair above cs is
// reported. The prefilter never changes the result set — it only
// replaces full-precision dots with one-byte-per-entry estimates for
// pairs that cannot qualify.

#ifndef IPS_LSH_BUCKET_JOIN_H_
#define IPS_LSH_BUCKET_JOIN_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/matrix.h"
#include "lsh/lsh_family.h"
#include "lsh/tables.h"
#include "obs/metrics.h"
#include "rng/random.h"
#include "util/status.h"

namespace ips {

/// Result of a bucket join: per-query best match (index into `data`,
/// exact score), or nullopt when no colliding pair scored >= cs.
/// Accounting lives in `metrics` under the run's registry metric names
/// (unified QueryStats-style labels, not bespoke fields):
///   "lsh.join.candidate_pairs" -- pairs enumerated across all tables
///                                 (before dedup);
///   "lsh.join.verified_pairs"  -- distinct pairs verified with an exact
///                                 inner product (each pair at most once
///                                 even when it collides in several
///                                 tables);
///   "lsh.join.duplicate_pairs" -- pairs skipped by cross-table
///                                 deduplication;
///   "lsh.join.pairs_prefiltered" -- distinct pairs the lossless int8
///                                 bound proved below cs, skipped before
///                                 exact verification. candidate ==
///                                 verified + duplicate + prefiltered.
struct BucketJoinResult {
  std::vector<std::optional<std::pair<std::size_t, double>>> per_query;
  MetricSet metrics;
};

/// Runs the (cs, s) bucket join of `data` and `queries` under `family`
/// (typically a TransformedLshFamily for IPS; pre-transform both sides
/// and pass the base family for speed). Scores are signed or absolute
/// inner products of the *original* rows per `is_signed`; hashing uses
/// HashData on `data` rows and HashQuery on `queries` rows.
///
/// `hash_data` / `hash_queries` are the representations to hash (must
/// have family.dim() columns); `data` / `queries` are the originals to
/// verify on. Pass the same matrix twice when no transform is involved.
BucketJoinResult LshBucketJoin(const LshFamily& family,
                               const Matrix& hash_data, const Matrix& data,
                               const Matrix& hash_queries,
                               const Matrix& queries, double s_threshold,
                               double cs_threshold, bool is_signed,
                               LshTableParams params, Rng* rng);

/// Validated flavor of LshBucketJoin for untrusted input: rejects empty
/// or non-finite matrices, row/column mismatches between the hash-space
/// and original matrices, k/l of zero, a null rng, and non-finite or
/// inverted thresholds (cs > s) with a Status instead of aborting.
/// Failpoint: "lsh/bucket-join".
StatusOr<BucketJoinResult> LshBucketJoinChecked(
    const LshFamily& family, const Matrix& hash_data, const Matrix& data,
    const Matrix& hash_queries, const Matrix& queries, double s_threshold,
    double cs_threshold, bool is_signed, LshTableParams params, Rng* rng);

}  // namespace ips

#endif  // IPS_LSH_BUCKET_JOIN_H_
