// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Multiprobe SimHash tables: one table keyed by K SimHash bits, where a
// query additionally probes the buckets reachable by flipping its
// least-confident bits (smallest projection margins |<g_t, q>|). A probe
// sequence of length T recovers much of the recall that plain (K, L)
// tables buy with extra tables, at a fraction of the memory -- the
// classic multiprobe trade-off (Lv et al.), applied to the IPS setting
// through any of the library's data/query transforms.

#ifndef IPS_LSH_MULTIPROBE_H_
#define IPS_LSH_MULTIPROBE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.h"
#include "rng/random.h"

namespace ips {

/// Parameters of a multiprobe SimHash index.
struct MultiprobeParams {
  /// Hash bits per table (key width); at most 63.
  std::size_t k = 12;
  /// Number of tables.
  std::size_t l = 4;
  /// Number of additional buckets probed per table (0 = exact-key only).
  std::size_t probes = 8;
};

/// L tables of K-bit SimHash keys with margin-ordered probing.
class MultiprobeSimHashTables {
 public:
  /// Builds over `data` (rows are points, hashed directly -- apply any
  /// ALSH transform beforehand). `data` must outlive the index.
  MultiprobeSimHashTables(const Matrix& data, MultiprobeParams params,
                          Rng* rng);

  /// Candidate rows from the exact bucket plus `params.probes` flipped
  /// buckets per table (deduplicated, ascending).
  std::vector<std::size_t> Query(std::span<const double> q) const;

  const MultiprobeParams& params() const { return params_; }

 private:
  struct Table {
    Matrix directions;  // k x dim Gaussian rows
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  };

  /// Key and per-bit margins of `q` under `table`.
  std::uint64_t KeyWithMargins(const Table& table, std::span<const double> q,
                               std::vector<double>* margins) const;

  const Matrix* data_;
  MultiprobeParams params_;
  std::vector<Table> tables_;
  mutable std::vector<std::uint32_t> last_seen_;
  mutable std::uint32_t query_epoch_ = 0;
};

}  // namespace ips

#endif  // IPS_LSH_MULTIPROBE_H_
