#include "lsh/multiprobe.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace ips {

MultiprobeSimHashTables::MultiprobeSimHashTables(const Matrix& data,
                                                 MultiprobeParams params,
                                                 Rng* rng)
    : data_(&data), params_(params), last_seen_(data.rows(), 0) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GE(params.k, 1u);
  IPS_CHECK_LE(params.k, 63u);
  IPS_CHECK_GE(params.l, 1u);
  tables_.resize(params.l);
  std::vector<double> margins;
  for (Table& table : tables_) {
    table.directions = Matrix(params.k, data.cols());
    for (double& entry : table.directions.data()) {
      entry = rng->NextGaussian();
    }
    for (std::size_t i = 0; i < data.rows(); ++i) {
      const std::uint64_t key =
          KeyWithMargins(table, data.Row(i), &margins);
      table.buckets[key].push_back(static_cast<std::uint32_t>(i));
    }
  }
}

std::uint64_t MultiprobeSimHashTables::KeyWithMargins(
    const Table& table, std::span<const double> q,
    std::vector<double>* margins) const {
  IPS_CHECK(margins != nullptr);
  margins->resize(params_.k);
  std::uint64_t key = 0;
  for (std::size_t bit = 0; bit < params_.k; ++bit) {
    const double projection = kernels::Dot(table.directions.Row(bit), q);
    if (projection >= 0.0) key |= 1ULL << bit;
    (*margins)[bit] = std::abs(projection);
  }
  return key;
}

std::vector<std::size_t> MultiprobeSimHashTables::Query(
    std::span<const double> q) const {
  static Counter* const queries =
      MetricsRegistry::Global().GetCounter("lsh.multiprobe.queries");
  static Counter* const buckets_probed =
      MetricsRegistry::Global().GetCounter("lsh.multiprobe.buckets_probed");
  static Counter* const candidates_out =
      MetricsRegistry::Global().GetCounter("lsh.multiprobe.candidates");
  std::size_t probed = 0;
  ++query_epoch_;
  std::vector<std::size_t> candidates;
  std::vector<double> margins;
  std::vector<std::size_t> order(params_.k);
  for (const Table& table : tables_) {
    const std::uint64_t key = KeyWithMargins(table, q, &margins);
    // Probe sequence: the exact key, then single flips of the
    // least-confident bits, then the pair of the two least-confident --
    // a margin-greedy prefix of the Lv et al. probing order.
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return margins[a] < margins[b];
    });
    std::vector<std::uint64_t> probe_keys;
    probe_keys.push_back(key);
    for (std::size_t t = 0;
         t < order.size() && probe_keys.size() <= params_.probes; ++t) {
      probe_keys.push_back(key ^ (1ULL << order[t]));
    }
    for (std::size_t a = 0;
         a < order.size() && probe_keys.size() <= params_.probes; ++a) {
      for (std::size_t b = a + 1;
           b < order.size() && probe_keys.size() <= params_.probes; ++b) {
        probe_keys.push_back(key ^ (1ULL << order[a]) ^ (1ULL << order[b]));
      }
    }
    probed += probe_keys.size();
    for (const std::uint64_t probe : probe_keys) {
      const auto it = table.buckets.find(probe);
      if (it == table.buckets.end()) continue;
      for (std::uint32_t index : it->second) {
        if (last_seen_[index] != query_epoch_) {
          last_seen_[index] = query_epoch_;
          candidates.push_back(index);
        }
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  queries->Increment();
  buckets_probed->Add(probed);
  candidates_out->Add(candidates.size());
  return candidates;
}

}  // namespace ips
