#include "lsh/bit_sample.h"

#include <cmath>

#include "util/check.h"

namespace ips {
namespace {

class BitSampleFunction : public LshFunction {
 public:
  BitSampleFunction(std::size_t dim, Rng* rng)
      : coordinate_(static_cast<std::size_t>(rng->NextBounded(dim))) {}

  std::uint64_t HashData(std::span<const double> p) const override {
    IPS_DCHECK(coordinate_ < p.size());
    IPS_DCHECK(p[coordinate_] == 0.0 || p[coordinate_] == 1.0);
    // Data with a 0 at the coordinate gets sentinel 2, queries sentinel
    // 3: a collision therefore requires a shared 1.
    return p[coordinate_] == 1.0 ? 1 : 2;
  }

  std::uint64_t HashQuery(std::span<const double> q) const override {
    IPS_DCHECK(coordinate_ < q.size());
    IPS_DCHECK(q[coordinate_] == 0.0 || q[coordinate_] == 1.0);
    return q[coordinate_] == 1.0 ? 1 : 3;
  }

 private:
  std::size_t coordinate_;
};

}  // namespace

BitSampleFamily::BitSampleFamily(std::size_t dim) : dim_(dim) {
  IPS_CHECK_GT(dim, 0u);
}

std::unique_ptr<LshFunction> BitSampleFamily::Sample(Rng* rng) const {
  IPS_CHECK(rng != nullptr);
  return std::make_unique<BitSampleFunction>(dim_, rng);
}

double BitSampleFamily::CollisionProbability(std::size_t inner_product,
                                             std::size_t dim) {
  IPS_CHECK_GT(dim, 0u);
  IPS_CHECK_LE(inner_product, dim);
  return static_cast<double>(inner_product) / static_cast<double>(dim);
}

double BitSampleFamily::Rho(double s, double cs, std::size_t dim) {
  IPS_CHECK_GT(cs, 0.0);
  IPS_CHECK_GT(s, cs);
  const double d = static_cast<double>(dim);
  IPS_CHECK_LT(s, d);
  return std::log(s / d) / std::log(cs / d);
}

}  // namespace ips
