#include "lsh/simhash.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "linalg/kernels.h"
#include "util/check.h"

namespace ips {
namespace {

class SimHashFunction : public SymmetricLshFunction {
 public:
  SimHashFunction(std::size_t dim, Rng* rng) : direction_(dim) {
    for (double& entry : direction_) entry = rng->NextGaussian();
  }

  std::uint64_t HashData(std::span<const double> p) const override {
    return kernels::Dot(direction_, p) >= 0.0 ? 1 : 0;
  }

 private:
  std::vector<double> direction_;
};

}  // namespace

SimHashFamily::SimHashFamily(std::size_t dim) : dim_(dim) {
  IPS_CHECK_GT(dim, 0u);
}

std::unique_ptr<LshFunction> SimHashFamily::Sample(Rng* rng) const {
  IPS_CHECK(rng != nullptr);
  return std::make_unique<SimHashFunction>(dim_, rng);
}

double SimHashFamily::CollisionProbability(double cosine) {
  const double clamped = std::clamp(cosine, -1.0, 1.0);
  return 1.0 - std::acos(clamped) / std::numbers::pi;
}

}  // namespace ips
