#include "lsh/cross_polytope.h"

#include <cmath>

#include "linalg/matrix.h"
#include "linalg/kernels.h"
#include "util/check.h"

namespace ips {
namespace {

class CrossPolytopeFunction : public SymmetricLshFunction {
 public:
  CrossPolytopeFunction(std::size_t dim, Rng* rng) : rotation_(dim, dim) {
    for (double& entry : rotation_.data()) entry = rng->NextGaussian();
  }

  std::uint64_t HashData(std::span<const double> p) const override {
    IPS_DCHECK(p.size() == rotation_.cols());
    std::size_t best_index = 0;
    double best_value = 0.0;
    double best_magnitude = -1.0;
    for (std::size_t i = 0; i < rotation_.rows(); ++i) {
      const double value = kernels::Dot(rotation_.Row(i), p);
      const double magnitude = std::abs(value);
      if (magnitude > best_magnitude) {
        best_magnitude = magnitude;
        best_value = value;
        best_index = i;
      }
    }
    return 2 * best_index + (best_value >= 0.0 ? 0 : 1);
  }

 private:
  Matrix rotation_;
};

}  // namespace

CrossPolytopeFamily::CrossPolytopeFamily(std::size_t dim) : dim_(dim) {
  IPS_CHECK_GT(dim, 0u);
}

std::unique_ptr<LshFunction> CrossPolytopeFamily::Sample(Rng* rng) const {
  IPS_CHECK(rng != nullptr);
  return std::make_unique<CrossPolytopeFunction>(dim_, rng);
}

}  // namespace ips
