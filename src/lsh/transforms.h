// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Asymmetric (and symmetric) vector transforms that reduce inner product
// similarity to angular / Euclidean similarity, turning any sphere LSH
// into an (A)LSH for IPS:
//
//  * DualBallTransform      -- the paper's Section 4.1 map (from [39,12]):
//       data p -> (p, sqrt(1-||p||^2), 0), query q -> (q/U, 0,
//       sqrt(1-||q/U||^2)); both land on the unit sphere and inner
//       products are preserved up to the factor 1/U.
//  * SimpleMipsTransform    -- "Simple-LSH" of Neyshabur-Srebro [39]:
//       data p -> (p/M, sqrt(1-||p/M||^2)), query q -> (q/||q||, 0).
//  * XboxTransform          -- Bachrach et al. [12]: like SimpleMips but
//       the query keeps its length (only data is lifted).
//  * L2AlshTransform        -- Shrivastava-Li [45]: append norm powers
//       ||x||^2, ||x||^4, ..., ||x||^(2^m) to data and 1/2's to queries;
//       use with E2LSH.
//  * MinHashAlshTransform   -- asymmetric minwise hashing [46] for binary
//       vectors: pad data with ones up to weight M, queries with zeros;
//       use with MinHash.
//  * SymmetricIncoherentTransform -- Section 4.2: the *symmetric* map
//       x -> (x, sqrt(1-||x||^2) * v_u(x)) with v from an explicit
//       Reed-Solomon incoherent family; preserves inner products up to
//       +-epsilon for all pairs x != y (no guarantee when x == y).
//
// TransformedLshFamily composes a transform with any base LshFamily.

#ifndef IPS_LSH_TRANSFORMS_H_
#define IPS_LSH_TRANSFORMS_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "codes/incoherent.h"
#include "linalg/matrix.h"
#include "lsh/lsh_family.h"

namespace ips {

/// A pair of maps (data transform, query transform) into a common space.
class VectorTransform {
 public:
  virtual ~VectorTransform() = default;

  virtual std::string Name() const = 0;
  virtual std::size_t input_dim() const = 0;
  virtual std::size_t output_dim() const = 0;

  /// Map applied to data vectors.
  virtual std::vector<double> TransformData(
      std::span<const double> p) const = 0;

  /// Map applied to query vectors.
  virtual std::vector<double> TransformQuery(
      std::span<const double> q) const = 0;

  /// True when TransformData == TransformQuery pointwise.
  virtual bool IsSymmetric() const { return false; }

  /// Applies TransformData to every row.
  Matrix TransformDataset(const Matrix& points) const;

  /// Applies TransformQuery to every row.
  Matrix TransformQueries(const Matrix& points) const;
};

/// Section 4.1: both sides land on the unit sphere in d+2 dimensions.
/// Requires ||p|| <= 1 and ||q|| <= U.
class DualBallTransform : public VectorTransform {
 public:
  DualBallTransform(std::size_t dim, double query_radius);

  std::string Name() const override { return "dual-ball"; }
  std::size_t input_dim() const override { return dim_; }
  std::size_t output_dim() const override { return dim_ + 2; }
  std::vector<double> TransformData(std::span<const double> p) const override;
  std::vector<double> TransformQuery(std::span<const double> q) const override;

 private:
  std::size_t dim_;
  double query_radius_;
};

/// Neyshabur-Srebro "Simple-LSH" [39]. Requires ||p|| <= max_data_norm.
class SimpleMipsTransform : public VectorTransform {
 public:
  SimpleMipsTransform(std::size_t dim, double max_data_norm);

  std::string Name() const override { return "simple-mips"; }
  std::size_t input_dim() const override { return dim_; }
  std::size_t output_dim() const override { return dim_ + 1; }
  std::vector<double> TransformData(std::span<const double> p) const override;
  std::vector<double> TransformQuery(std::span<const double> q) const override;

 private:
  std::size_t dim_;
  double max_data_norm_;
};

/// Bachrach et al. [12] Euclidean lift; queries untouched (zero-padded).
class XboxTransform : public VectorTransform {
 public:
  XboxTransform(std::size_t dim, double max_data_norm);

  std::string Name() const override { return "xbox"; }
  std::size_t input_dim() const override { return dim_; }
  std::size_t output_dim() const override { return dim_ + 1; }
  std::vector<double> TransformData(std::span<const double> p) const override;
  std::vector<double> TransformQuery(std::span<const double> q) const override;

 private:
  std::size_t dim_;
  double max_data_norm_;
};

/// Shrivastava-Li L2-ALSH [45] with m appended norm powers and data
/// pre-scaled so max norm is `u_scale` < 1. Queries are normalized to
/// unit length and padded with 1/2 entries.
class L2AlshTransform : public VectorTransform {
 public:
  L2AlshTransform(std::size_t dim, std::size_t m, double u_scale,
                  double max_data_norm);

  std::string Name() const override { return "l2-alsh"; }
  std::size_t input_dim() const override { return dim_; }
  std::size_t output_dim() const override { return dim_ + m_; }
  std::vector<double> TransformData(std::span<const double> p) const override;
  std::vector<double> TransformQuery(std::span<const double> q) const override;

  std::size_t m() const { return m_; }

 private:
  std::size_t dim_;
  std::size_t m_;
  double u_scale_;
  double max_data_norm_;
};

/// Asymmetric minwise hashing [46] for 0/1 vectors: data padded with
/// ones up to weight `max_weight` in a dedicated padding region, queries
/// padded with zeros. Use with MinHashFamily.
class MinHashAlshTransform : public VectorTransform {
 public:
  MinHashAlshTransform(std::size_t dim, std::size_t max_weight);

  std::string Name() const override { return "mh-alsh"; }
  std::size_t input_dim() const override { return dim_; }
  std::size_t output_dim() const override { return dim_ + max_weight_; }
  std::vector<double> TransformData(std::span<const double> p) const override;
  std::vector<double> TransformQuery(std::span<const double> q) const override;

 private:
  std::size_t dim_;
  std::size_t max_weight_;
};

/// Section 4.2: symmetric lift onto the unit sphere through an explicit
/// incoherent family. Inner products of *distinct* vectors are preserved
/// up to +-epsilon; identical vectors map to the same point (inner
/// product 1), which is exactly the case the relaxed LSH definition
/// disregards. Requires ||x|| <= 1.
class SymmetricIncoherentTransform : public VectorTransform {
 public:
  /// `fingerprint_bits` controls the size of the underlying family
  /// (2^fingerprint_bits vectors); 32 is plenty for experiments.
  SymmetricIncoherentTransform(std::size_t dim, double epsilon,
                               std::size_t fingerprint_bits = 32);

  std::string Name() const override { return "symmetric-incoherent"; }
  std::size_t input_dim() const override { return dim_; }
  std::size_t output_dim() const override { return dim_ + family_.dim(); }
  std::vector<double> TransformData(std::span<const double> p) const override;
  std::vector<double> TransformQuery(std::span<const double> q) const override;
  bool IsSymmetric() const override { return true; }

  const RsIncoherentFamily& family() const { return family_; }

  /// The 64-bit fingerprint (mod family size) identifying x's incoherent
  /// companion vector; equal vectors get equal fingerprints.
  std::uint64_t Fingerprint(std::span<const double> x) const;

 private:
  std::size_t dim_;
  std::size_t fingerprint_bits_;
  RsIncoherentFamily family_;
};

/// An LshFamily that first applies a transform, then a base family
/// sampled in the transform's output space.
class TransformedLshFamily : public LshFamily {
 public:
  /// Both pointers must outlive the family.
  TransformedLshFamily(const VectorTransform* transform,
                       const LshFamily* base);

  std::string Name() const override;
  std::size_t dim() const override { return transform_->input_dim(); }
  std::unique_ptr<LshFunction> Sample(Rng* rng) const override;
  bool IsSymmetric() const override {
    return transform_->IsSymmetric() && base_->IsSymmetric();
  }

 private:
  const VectorTransform* transform_;
  const LshFamily* base_;
};

}  // namespace ips

#endif  // IPS_LSH_TRANSFORMS_H_
