#include "lsh/lsh_family.h"

#include "util/check.h"

namespace ips {

BernoulliEstimate EstimateCollisionProbability(const LshFamily& family,
                                               std::span<const double> p,
                                               std::span<const double> q,
                                               std::size_t trials, Rng* rng) {
  IPS_CHECK(rng != nullptr);
  std::size_t collisions = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::unique_ptr<LshFunction> h = family.Sample(rng);
    if (h->HashData(p) == h->HashQuery(q)) ++collisions;
  }
  return EstimateBernoulli(collisions, trials);
}

ConcatenatedLshFunction::ConcatenatedLshFunction(const LshFamily& family,
                                                 std::size_t k, Rng* rng) {
  IPS_CHECK_GE(k, 1u);
  functions_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) functions_.push_back(family.Sample(rng));
}

std::uint64_t ConcatenatedLshFunction::HashData(
    std::span<const double> p) const {
  std::uint64_t state = 0x8000000080001111ULL;
  for (const auto& function : functions_) {
    state ^= function->HashData(p) + 0x9e3779b97f4a7c15ULL + (state << 6) +
             (state >> 2);
  }
  return state;
}

std::uint64_t ConcatenatedLshFunction::HashQuery(
    std::span<const double> q) const {
  std::uint64_t state = 0x8000000080001111ULL;
  for (const auto& function : functions_) {
    state ^= function->HashQuery(q) + 0x9e3779b97f4a7c15ULL + (state << 6) +
             (state >> 2);
  }
  return state;
}

}  // namespace ips
