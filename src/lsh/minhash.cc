#include "lsh/minhash.h"

#include <limits>

#include "util/check.h"

namespace ips {
namespace {

class MinHashFunction : public SymmetricLshFunction {
 public:
  explicit MinHashFunction(Rng* rng) : seed_(rng->NextUint64()) {}

  std::uint64_t HashData(std::span<const double> p) const override {
    // min over the support of a pseudo-random 64-bit priority per index;
    // equivalent to a random permutation up to negligible ties.
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p[i] == 0.0) continue;
      std::uint64_t mixed = seed_ ^ (0x9e3779b97f4a7c15ULL * (i + 1));
      mixed = SplitMix64(mixed);
      if (mixed < best) best = mixed;
    }
    return best;
  }

 private:
  std::uint64_t seed_;
};

}  // namespace

MinHashFamily::MinHashFamily(std::size_t dim) : dim_(dim) {
  IPS_CHECK_GT(dim, 0u);
}

std::unique_ptr<LshFunction> MinHashFamily::Sample(Rng* rng) const {
  IPS_CHECK(rng != nullptr);
  return std::make_unique<MinHashFunction>(rng);
}

double MinHashFamily::Jaccard(std::span<const double> x,
                              std::span<const double> y) {
  IPS_CHECK_EQ(x.size(), y.size());
  std::size_t intersection = 0;
  std::size_t unified = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool in_x = x[i] != 0.0;
    const bool in_y = y[i] != 0.0;
    if (in_x && in_y) ++intersection;
    if (in_x || in_y) ++unified;
  }
  return unified == 0 ? 0.0
                      : static_cast<double>(intersection) /
                            static_cast<double>(unified);
}

}  // namespace ips
