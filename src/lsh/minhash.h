// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// MinHash (minwise hashing) for binary vectors viewed as sets: with a
// random hash pi over coordinates, h(x) = min_{i : x_i != 0} pi(i).
// Pr[h(x) = h(y)] = Jaccard(x, y) = |x & y| / |x | y|. Base hash of the
// asymmetric minwise hashing (MH-ALSH) of Shrivastava-Li [46].

#ifndef IPS_LSH_MINHASH_H_
#define IPS_LSH_MINHASH_H_

#include <cstddef>

#include "lsh/lsh_family.h"

namespace ips {

/// Family of minwise hashes over the supports of 0/1 vectors.
class MinHashFamily : public LshFamily {
 public:
  explicit MinHashFamily(std::size_t dim);

  std::string Name() const override { return "minhash"; }
  std::size_t dim() const override { return dim_; }
  std::unique_ptr<LshFunction> Sample(Rng* rng) const override;
  bool IsSymmetric() const override { return true; }

  /// Jaccard similarity of the supports of two dense 0/1 vectors.
  static double Jaccard(std::span<const double> x, std::span<const double> y);

 private:
  std::size_t dim_;
};

}  // namespace ips

#endif  // IPS_LSH_MINHASH_H_
