#include "lsh/bucket_join.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "linalg/validate.h"
#include "linalg/kernels.h"
#include "linalg/quantized.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace ips {

BucketJoinResult LshBucketJoin(const LshFamily& family,
                               const Matrix& hash_data, const Matrix& data,
                               const Matrix& hash_queries,
                               const Matrix& queries, double s_threshold,
                               double cs_threshold, bool is_signed,
                               LshTableParams params, Rng* rng) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_EQ(hash_data.cols(), family.dim());
  IPS_CHECK_EQ(hash_queries.cols(), family.dim());
  IPS_CHECK_EQ(hash_data.rows(), data.rows());
  IPS_CHECK_EQ(hash_queries.rows(), queries.rows());
  IPS_CHECK_LE(cs_threshold, s_threshold);
  (void)s_threshold;  // the contract's promise level; joins filter at cs

  BucketJoinResult result;
  result.per_query.resize(queries.rows());
  std::size_t candidate_pairs = 0;
  std::size_t verified_pairs = 0;
  std::size_t duplicate_pairs = 0;
  std::size_t prefiltered_pairs = 0;
  // Lossless quantized prefilter: a pair is skipped only when its int8
  // estimate plus the rigorous rounding-error bound stays below the cs
  // threshold, so no pair that could pass verification is ever dropped.
  const QuantizedMatrix qdata = QuantizedMatrix::Quantize(data);
  std::vector<QuantizedVector> qqueries;
  qqueries.reserve(queries.rows());
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    qqueries.push_back(QuantizeVector(queries.Row(qi)));
  }
  // Pairs already verified, keyed by query-major 64-bit id.
  std::unordered_set<std::uint64_t> verified;
  for (std::size_t table = 0; table < params.l; ++table) {
    const ConcatenatedLshFunction function(family, params.k, rng);
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
    for (std::size_t i = 0; i < hash_data.rows(); ++i) {
      buckets[function.HashData(hash_data.Row(i))].push_back(
          static_cast<std::uint32_t>(i));
    }
    for (std::size_t qi = 0; qi < hash_queries.rows(); ++qi) {
      const auto it = buckets.find(function.HashQuery(hash_queries.Row(qi)));
      if (it == buckets.end()) continue;
      for (std::uint32_t di : it->second) {
        ++candidate_pairs;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(qi) << 32) | di;
        if (!verified.insert(key).second) {
          ++duplicate_pairs;
          continue;
        }
        const QuantizedVector& qq = qqueries[qi];
        const double est =
            static_cast<double>(kernels::DotI8(
                {qdata.RowCodes(di), data.cols()}, qq.codes)) *
            qdata.RowScale(di) * qq.scale;
        const double bound = qdata.ErrorBound(di, qq);
        const double ceiling = is_signed ? est + bound : std::abs(est) + bound;
        if (ceiling < cs_threshold) {
          ++prefiltered_pairs;
          continue;
        }
        ++verified_pairs;
        const double raw = kernels::Dot(data.Row(di), queries.Row(qi));
        const double score = is_signed ? raw : std::abs(raw);
        if (score < cs_threshold) continue;
        auto& best = result.per_query[qi];
        // Ties break toward the smaller data index so results are
        // deterministic regardless of table enumeration order.
        if (!best.has_value() || score > best->second ||
            (score == best->second && di < best->first)) {
          best = std::make_pair(static_cast<std::size_t>(di), score);
        }
      }
    }
  }
  result.metrics.Set("lsh.join.candidate_pairs", candidate_pairs);
  result.metrics.Set("lsh.join.verified_pairs", verified_pairs);
  result.metrics.Set("lsh.join.duplicate_pairs", duplicate_pairs);
  result.metrics.Set("lsh.join.pairs_prefiltered", prefiltered_pairs);
  static Counter* const joins =
      MetricsRegistry::Global().GetCounter("lsh.join.runs");
  static Counter* const candidate_counter =
      MetricsRegistry::Global().GetCounter("lsh.join.candidate_pairs");
  static Counter* const verified_counter =
      MetricsRegistry::Global().GetCounter("lsh.join.verified_pairs");
  static Counter* const duplicate_counter =
      MetricsRegistry::Global().GetCounter("lsh.join.duplicate_pairs");
  static Counter* const prefiltered_counter =
      MetricsRegistry::Global().GetCounter("lsh.join.pairs_prefiltered");
  joins->Increment();
  candidate_counter->Add(candidate_pairs);
  verified_counter->Add(verified_pairs);
  duplicate_counter->Add(duplicate_pairs);
  prefiltered_counter->Add(prefiltered_pairs);
  return result;
}

StatusOr<BucketJoinResult> LshBucketJoinChecked(
    const LshFamily& family, const Matrix& hash_data, const Matrix& data,
    const Matrix& hash_queries, const Matrix& queries, double s_threshold,
    double cs_threshold, bool is_signed, LshTableParams params, Rng* rng) {
  IPS_FAILPOINT("lsh/bucket-join");
  if (rng == nullptr) {
    return Status::InvalidArgument("LshBucketJoin requires a non-null rng");
  }
  if (params.k < 1 || params.l < 1) {
    return Status::InvalidArgument(
        "LshBucketJoin needs k >= 1 and l >= 1, got k=" +
        std::to_string(params.k) + ", l=" + std::to_string(params.l));
  }
  if (!std::isfinite(s_threshold) || !std::isfinite(cs_threshold)) {
    return Status::InvalidArgument("join thresholds must be finite");
  }
  if (cs_threshold > s_threshold) {
    return Status::InvalidArgument(
        "cs threshold " + std::to_string(cs_threshold) +
        " exceeds s threshold " + std::to_string(s_threshold));
  }
  IPS_RETURN_IF_ERROR(ValidateNonEmpty(data, "data"));
  IPS_RETURN_IF_ERROR(ValidateNonEmpty(queries, "queries"));
  IPS_RETURN_IF_ERROR(ValidateFinite(data, "data"));
  IPS_RETURN_IF_ERROR(ValidateFinite(queries, "queries"));
  IPS_RETURN_IF_ERROR(ValidateFinite(hash_data, "hash-space data"));
  IPS_RETURN_IF_ERROR(ValidateFinite(hash_queries, "hash-space queries"));
  IPS_RETURN_IF_ERROR(ValidateDims(hash_data, family.dim(),
                                   "hash-space data"));
  IPS_RETURN_IF_ERROR(ValidateDims(hash_queries, family.dim(),
                                   "hash-space queries"));
  if (hash_data.rows() != data.rows()) {
    return Status::InvalidArgument(
        "hash-space data has " + std::to_string(hash_data.rows()) +
        " rows but the original has " + std::to_string(data.rows()));
  }
  if (hash_queries.rows() != queries.rows()) {
    return Status::InvalidArgument(
        "hash-space queries have " + std::to_string(hash_queries.rows()) +
        " rows but the original has " + std::to_string(queries.rows()));
  }
  if (data.cols() != queries.cols()) {
    return Status::InvalidArgument(
        "data dimension " + std::to_string(data.cols()) +
        " != query dimension " + std::to_string(queries.cols()));
  }
  return LshBucketJoin(family, hash_data, data, hash_queries, queries,
                       s_threshold, cs_threshold, is_signed, params, rng);
}

}  // namespace ips
