#include "lsh/bucket_join.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "linalg/vector_ops.h"
#include "util/check.h"

namespace ips {

BucketJoinResult LshBucketJoin(const LshFamily& family,
                               const Matrix& hash_data, const Matrix& data,
                               const Matrix& hash_queries,
                               const Matrix& queries, double s_threshold,
                               double cs_threshold, bool is_signed,
                               LshTableParams params, Rng* rng) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_EQ(hash_data.cols(), family.dim());
  IPS_CHECK_EQ(hash_queries.cols(), family.dim());
  IPS_CHECK_EQ(hash_data.rows(), data.rows());
  IPS_CHECK_EQ(hash_queries.rows(), queries.rows());
  IPS_CHECK_LE(cs_threshold, s_threshold);
  (void)s_threshold;  // the contract's promise level; joins filter at cs

  BucketJoinResult result;
  result.per_query.resize(queries.rows());
  // Pairs already verified, keyed by query-major 64-bit id.
  std::unordered_set<std::uint64_t> verified;
  for (std::size_t table = 0; table < params.l; ++table) {
    const ConcatenatedLshFunction function(family, params.k, rng);
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
    for (std::size_t i = 0; i < hash_data.rows(); ++i) {
      buckets[function.HashData(hash_data.Row(i))].push_back(
          static_cast<std::uint32_t>(i));
    }
    for (std::size_t qi = 0; qi < hash_queries.rows(); ++qi) {
      const auto it = buckets.find(function.HashQuery(hash_queries.Row(qi)));
      if (it == buckets.end()) continue;
      for (std::uint32_t di : it->second) {
        ++result.stats.candidate_pairs;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(qi) << 32) | di;
        if (!verified.insert(key).second) continue;
        ++result.stats.verified_pairs;
        const double raw = Dot(data.Row(di), queries.Row(qi));
        const double score = is_signed ? raw : std::abs(raw);
        if (score < cs_threshold) continue;
        auto& best = result.per_query[qi];
        if (!best.has_value() || score > best->second) {
          best = std::make_pair(static_cast<std::size_t>(di), score);
        }
      }
    }
  }
  return result;
}

}  // namespace ips
