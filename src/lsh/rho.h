// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Analytic rho values (query exponent of the LSH data structure,
// rho = log P1 / log P2) for the MIPS LSH constructions compared in
// Figure 2 of the paper. Inner products are normalized: s, cs in (0, 1)
// are the thresholds relative to the maximum possible product U (data in
// the unit ball, queries in the radius-U ball).

#ifndef IPS_LSH_RHO_H_
#define IPS_LSH_RHO_H_

#include <cstddef>

namespace ips {

/// rho = log(p1)/log(p2); requires 0 < p1, p2 < 1. (Well-defined output
/// even when p1 <= p2, in which case the value is >= 1 and the scheme is
/// useless but the formula still reports it.)
double RhoFromProbabilities(double p1, double p2);

/// The paper's Section 4.1 bound (equation (3)) from plugging the
/// optimal sphere data structure [9] into the dual-ball reduction:
///   rho = (1 - s) / (1 + (1 - 2c) s).
/// Labeled DATA-DEP in Figure 2.
double RhoDataDep(double s, double c);

/// Neyshabur-Srebro SIMPLE-LSH [39]: SimHash collision probabilities
/// after the sphere lift, p(t) = 1 - acos(t)/pi:
///   rho = log(1 - acos(s)/pi) / log(1 - acos(cs)/pi).
/// Labeled SIMP in Figure 2.
double RhoSimpleLsh(double s, double c);

/// Shrivastava-Li asymmetric minwise hashing [46] for binary vectors,
/// with data and query weights normalized to the padding weight M:
/// collision probability of a pair at (normalized) inner product t is
/// t/(2 - t), so rho = log(s/(2-s)) / log(cs/(2-cs)).
/// Labeled MH-ALSH in Figure 2 (binary data only).
double RhoMhAlsh(double s, double c);

/// Balanced LSH exponent for Euclidean ANN on the sphere with distance
/// threshold r and approximation c' > 1 (the [9] bound
/// rho = 1/(2 c'^2 - 1)); helper behind RhoDataDep.
double RhoSphereAnn(double approximation);

/// Numerically optimized rho of the original L2-ALSH of Shrivastava-Li
/// [45]: data transformed by appending m norm powers at scale u, queries
/// normalized; both thresholds map to Euclidean distances
///   dist^2(t) = 1 + m/4 - 2 u t + u^(2^(m+1))
/// hashed with E2LSH at bucket width w. Returns
///   min over (m, u, w) of log p(dist(s)) / log p(dist(cs)),
/// searched over a standard grid (m in {1,2,3}, u, w discretized).
double RhoL2AlshNumeric(double s, double c);

}  // namespace ips

#endif  // IPS_LSH_RHO_H_
