// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The classic (K, L) LSH index: L hash tables, each keyed by the
// concatenation of K draws from a family (AND-amplification inside a
// table, OR-amplification across tables). A query retrieves the union of
// its L buckets as candidates. With base gap (P1, P2), choosing
// K = log n / log(1/P2) and L = n^rho gives the usual sublinear search.

#ifndef IPS_LSH_TABLES_H_
#define IPS_LSH_TABLES_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.h"
#include "lsh/lsh_family.h"
#include "obs/trace.h"
#include "rng/random.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace ips {

/// Per-query accounting of one LshTables::Query call, for callers that
/// fold the numbers into a core::QueryStats (which this layer cannot
/// see — core depends on lsh, not the other way around).
struct LshQueryInfo {
  /// Tables whose bucket was looked up (always params().l).
  std::size_t tables_probed = 0;
  /// Tables whose query bucket was non-empty.
  std::size_t buckets_hit = 0;
  /// Bucket entries gathered before cross-table deduplication.
  std::size_t raw_candidates = 0;
  /// Distinct data rows returned; raw - unique were duplicates.
  std::size_t unique_candidates = 0;
};

/// Amplification parameters of an LSH index.
struct LshTableParams {
  /// Number of concatenated hash functions per table (AND).
  std::size_t k = 4;
  /// Number of tables (OR).
  std::size_t l = 8;

  /// Standard theory-driven choice: k = ceil(ln n / ln(1/p2)),
  /// l = ceil(n^rho) with rho = ln p1 / ln p2.
  static LshTableParams FromGap(std::size_t n, double p1, double p2);
};

/// L hash tables over a fixed data matrix.
class LshTables {
 public:
  /// Builds the index. `family` must outlive the index; `data` is
  /// referenced, not copied, and must outlive the index as well.
  /// Preconditions are IPS_CHECKed; prefer Create for untrusted input.
  LshTables(const LshFamily& family, const Matrix& data,
            LshTableParams params, Rng* rng);

  /// Validated construction: rejects an empty or non-finite `data`,
  /// a dimension mismatch with `family`, k or l of zero, and a null
  /// `rng` with a descriptive Status instead of aborting. Failpoint:
  /// "lsh/tables-build".
  [[nodiscard]] static StatusOr<std::unique_ptr<LshTables>> Create(
      const LshFamily& family, const Matrix& data, LshTableParams params,
      Rng* rng);

  /// Restores an index from persisted buckets, skipping the O(n k l)
  /// re-hash of every data row — the expensive part of Create. `rng`
  /// must be positioned at the same state the building rng had (the
  /// storage layer saves Rng::State alongside the buckets), so the
  /// per-table function draws replay bit-identically and the saved
  /// buckets stay consistent with the functions. `buckets[t]` is
  /// installed as table t; entries are validated against `num_rows`.
  /// Takes the row count rather than the hashed matrix: the buckets
  /// already encode every data hash, so the restore path never needs
  /// the (possibly transformed) dataset at all.
  [[nodiscard]] static StatusOr<std::unique_ptr<LshTables>> CreateFromBuckets(
      const LshFamily& family, std::size_t num_rows, LshTableParams params,
      Rng* rng,
      std::vector<std::unordered_map<std::uint64_t,
                                     std::vector<std::uint32_t>>> buckets);

  /// Indices of data rows sharing at least one bucket with `q`
  /// (deduplicated, ascending). Thread-safe: uses no per-query shared
  /// scratch, so a built index may serve concurrent queries.
  [[nodiscard]] std::vector<std::size_t> Query(std::span<const double> q)
      const {
    return Query(q, nullptr, nullptr);
  }

  /// Instrumented flavor: when `trace` is non-null, records the
  /// hash -> bucket -> dedup stage spans under the trace's open span;
  /// when `info` is non-null, fills the per-query accounting. Both may
  /// be null. Every call bumps the "lsh.tables.*" registry counters.
  [[nodiscard]] std::vector<std::size_t> Query(std::span<const double> q,
                                               Trace* trace,
                                               LshQueryInfo* info) const;

  /// Number of candidates Query would return, without materializing them.
  [[nodiscard]] std::size_t CountCandidates(std::span<const double> q) const;

  const LshTableParams& params() const { return params_; }

  /// Bucket map of table `t` (immutable once built), for snapshotting.
  std::size_t num_tables() const { return tables_.size(); }
  const std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>&
  table_buckets(std::size_t t) const {
    return tables_[t].buckets;
  }

  /// Average bucket occupancy across tables (diagnostic). The tables are
  /// immutable after construction, so the O(#buckets) scan is computed
  /// once and memoized behind stats_mutex_; safe to call concurrently
  /// with queries.
  double MeanBucketSize() const IPS_EXCLUDES(stats_mutex_);

 private:
  LshTables() = default;  // CreateFromBuckets fills the members.

  struct Table {
    std::unique_ptr<ConcatenatedLshFunction> function;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  };

  LshTableParams params_;
  std::vector<Table> tables_;
  // Lazily-memoized MeanBucketSize (negative = not yet computed).
  mutable Mutex stats_mutex_;
  mutable double mean_bucket_size_ IPS_GUARDED_BY(stats_mutex_) = -1.0;
};

}  // namespace ips

#endif  // IPS_LSH_TABLES_H_
