// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Cross-polytope LSH for angular distance (Andoni, Indyk, Kapralov,
// Laarhoven, Razenshteyn, Schmidt [7]): apply a random rotation (here a
// dense Gaussian matrix, the classic variant) and hash to the closest
// signed standard basis vector, i.e. (argmax_i |y_i|, sign(y_argmax)).
//
// This is the practical stand-in for the optimal data-dependent sphere
// LSH [9] that Section 4.1 plugs into the MIPS reduction -- the paper
// itself recommends [7] for practice.

#ifndef IPS_LSH_CROSS_POLYTOPE_H_
#define IPS_LSH_CROSS_POLYTOPE_H_

#include <cstddef>

#include "lsh/lsh_family.h"

namespace ips {

/// Family of Gaussian-rotation cross-polytope hashes with 2*dim buckets.
class CrossPolytopeFamily : public LshFamily {
 public:
  explicit CrossPolytopeFamily(std::size_t dim);

  std::string Name() const override { return "cross-polytope"; }
  std::size_t dim() const override { return dim_; }
  std::unique_ptr<LshFunction> Sample(Rng* rng) const override;
  bool IsSymmetric() const override { return true; }

 private:
  std::size_t dim_;
};

}  // namespace ips

#endif  // IPS_LSH_CROSS_POLYTOPE_H_
