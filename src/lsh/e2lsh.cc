#include "lsh/e2lsh.h"

#include <cmath>
#include <numbers>
#include <sstream>
#include <vector>

#include "linalg/kernels.h"
#include "util/check.h"

namespace ips {
namespace {

// Standard normal CDF.
double Phi(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

class E2LshFunction : public SymmetricLshFunction {
 public:
  E2LshFunction(std::size_t dim, double w, Rng* rng)
      : direction_(dim), width_(w), offset_(rng->NextDouble() * w) {
    for (double& entry : direction_) entry = rng->NextGaussian();
  }

  std::uint64_t HashData(std::span<const double> p) const override {
    const double projected = kernels::Dot(direction_, p) + offset_;
    const double bucket = std::floor(projected / width_);
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(bucket));
  }

 private:
  std::vector<double> direction_;
  double width_;
  double offset_;
};

}  // namespace

E2LshFamily::E2LshFamily(std::size_t dim, double bucket_width)
    : dim_(dim), bucket_width_(bucket_width) {
  IPS_CHECK_GT(dim, 0u);
  IPS_CHECK_GT(bucket_width, 0.0);
}

std::string E2LshFamily::Name() const {
  std::ostringstream name;
  name << "e2lsh(w=" << bucket_width_ << ")";
  return name.str();
}

std::unique_ptr<LshFunction> E2LshFamily::Sample(Rng* rng) const {
  IPS_CHECK(rng != nullptr);
  return std::make_unique<E2LshFunction>(dim_, bucket_width_, rng);
}

double E2LshFamily::CollisionProbability(double r, double w) {
  IPS_CHECK_GE(r, 0.0);
  IPS_CHECK_GT(w, 0.0);
  if (r == 0.0) return 1.0;
  const double ratio = w / r;
  return 1.0 - 2.0 * Phi(-ratio) -
         (2.0 / (std::sqrt(2.0 * std::numbers::pi) * ratio)) *
             (1.0 - std::exp(-ratio * ratio / 2.0));
}

}  // namespace ips
