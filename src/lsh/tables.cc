#include "lsh/tables.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "linalg/validate.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace ips {

LshTableParams LshTableParams::FromGap(std::size_t n, double p1, double p2) {
  IPS_CHECK_GT(n, 1u);
  IPS_CHECK_GT(p1, 0.0);
  IPS_CHECK_LT(p2, 1.0);
  IPS_CHECK_GT(p2, 0.0);
  IPS_CHECK_GE(p1, p2);
  LshTableParams params;
  const double ln_n = std::log(static_cast<double>(n));
  params.k = static_cast<std::size_t>(
      std::max(1.0, std::ceil(ln_n / std::log(1.0 / p2))));
  const double rho = std::log(p1) / std::log(p2);
  // Success probability per table is ~p1^k = n^-rho; use 3 n^rho tables
  // for a constant success probability per query around 1 - e^-3.
  params.l = static_cast<std::size_t>(
      std::max(1.0, std::ceil(3.0 * std::pow(static_cast<double>(n), rho))));
  return params;
}

LshTables::LshTables(const LshFamily& family, const Matrix& data,
                     LshTableParams params, Rng* rng)
    : data_(&data), params_(params) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GE(params.k, 1u);
  IPS_CHECK_GE(params.l, 1u);
  IPS_CHECK_EQ(family.dim(), data.cols());
  tables_.resize(params_.l);
  for (auto& table : tables_) {
    table.function =
        std::make_unique<ConcatenatedLshFunction>(family, params_.k, rng);
    for (std::size_t i = 0; i < data.rows(); ++i) {
      const std::uint64_t key = table.function->HashData(data.Row(i));
      table.buckets[key].push_back(static_cast<std::uint32_t>(i));
    }
  }
}

StatusOr<std::unique_ptr<LshTables>> LshTables::Create(
    const LshFamily& family, const Matrix& data, LshTableParams params,
    Rng* rng) {
  IPS_FAILPOINT("lsh/tables-build");
  if (rng == nullptr) {
    return Status::InvalidArgument("LshTables requires a non-null rng");
  }
  if (params.k < 1 || params.l < 1) {
    return Status::InvalidArgument(
        "LshTables needs k >= 1 and l >= 1, got k=" +
        std::to_string(params.k) + ", l=" + std::to_string(params.l));
  }
  IPS_RETURN_IF_ERROR(ValidateNonEmpty(data, "lsh data"));
  IPS_RETURN_IF_ERROR(ValidateFinite(data, "lsh data"));
  IPS_RETURN_IF_ERROR(ValidateDims(data, family.dim(), "lsh data"));
  return std::make_unique<LshTables>(family, data, params, rng);
}

std::vector<std::size_t> LshTables::Query(std::span<const double> q) const {
  std::vector<std::size_t> candidates;
  for (const auto& table : tables_) {
    const std::uint64_t key = table.function->HashQuery(q);
    const auto it = table.buckets.find(key);
    if (it == table.buckets.end()) continue;
    candidates.insert(candidates.end(), it->second.begin(), it->second.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

std::size_t LshTables::CountCandidates(std::span<const double> q) const {
  return Query(q).size();
}

double LshTables::MeanBucketSize() const {
  std::size_t total_entries = 0;
  std::size_t total_buckets = 0;
  for (const auto& table : tables_) {
    total_buckets += table.buckets.size();
    for (const auto& [key, bucket] : table.buckets) {
      (void)key;
      total_entries += bucket.size();
    }
  }
  return total_buckets == 0 ? 0.0
                            : static_cast<double>(total_entries) /
                                  static_cast<double>(total_buckets);
}

}  // namespace ips
