#include "lsh/tables.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "linalg/validate.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace ips {

LshTableParams LshTableParams::FromGap(std::size_t n, double p1, double p2) {
  IPS_CHECK_GT(n, 1u);
  IPS_CHECK_GT(p1, 0.0);
  IPS_CHECK_LT(p2, 1.0);
  IPS_CHECK_GT(p2, 0.0);
  IPS_CHECK_GE(p1, p2);
  LshTableParams params;
  const double ln_n = std::log(static_cast<double>(n));
  params.k = static_cast<std::size_t>(
      std::max(1.0, std::ceil(ln_n / std::log(1.0 / p2))));
  const double rho = std::log(p1) / std::log(p2);
  // Success probability per table is ~p1^k = n^-rho; use 3 n^rho tables
  // for a constant success probability per query around 1 - e^-3.
  params.l = static_cast<std::size_t>(
      std::max(1.0, std::ceil(3.0 * std::pow(static_cast<double>(n), rho))));
  return params;
}

LshTables::LshTables(const LshFamily& family, const Matrix& data,
                     LshTableParams params, Rng* rng)
    : params_(params) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GE(params.k, 1u);
  IPS_CHECK_GE(params.l, 1u);
  IPS_CHECK_EQ(family.dim(), data.cols());
  tables_.resize(params_.l);
  for (auto& table : tables_) {
    table.function =
        std::make_unique<ConcatenatedLshFunction>(family, params_.k, rng);
    for (std::size_t i = 0; i < data.rows(); ++i) {
      const std::uint64_t key = table.function->HashData(data.Row(i));
      table.buckets[key].push_back(static_cast<std::uint32_t>(i));
    }
  }
}

StatusOr<std::unique_ptr<LshTables>> LshTables::Create(
    const LshFamily& family, const Matrix& data, LshTableParams params,
    Rng* rng) {
  IPS_FAILPOINT("lsh/tables-build");
  if (rng == nullptr) {
    return Status::InvalidArgument("LshTables requires a non-null rng");
  }
  if (params.k < 1 || params.l < 1) {
    return Status::InvalidArgument(
        "LshTables needs k >= 1 and l >= 1, got k=" +
        std::to_string(params.k) + ", l=" + std::to_string(params.l));
  }
  IPS_RETURN_IF_ERROR(ValidateNonEmpty(data, "lsh data"));
  IPS_RETURN_IF_ERROR(ValidateFinite(data, "lsh data"));
  IPS_RETURN_IF_ERROR(ValidateDims(data, family.dim(), "lsh data"));
  return std::make_unique<LshTables>(family, data, params, rng);
}

StatusOr<std::unique_ptr<LshTables>> LshTables::CreateFromBuckets(
    const LshFamily& family, std::size_t num_rows, LshTableParams params,
    Rng* rng,
    std::vector<std::unordered_map<std::uint64_t,
                                   std::vector<std::uint32_t>>> buckets) {
  IPS_FAILPOINT("lsh/tables-build");
  if (rng == nullptr) {
    return Status::InvalidArgument("LshTables requires a non-null rng");
  }
  if (params.k < 1 || params.l < 1) {
    return Status::InvalidArgument(
        "LshTables needs k >= 1 and l >= 1, got k=" +
        std::to_string(params.k) + ", l=" + std::to_string(params.l));
  }
  if (num_rows == 0) {
    return Status::InvalidArgument("lsh artifact restore with zero rows");
  }
  if (buckets.size() != params.l) {
    return Status::DataLoss("lsh artifact holds " +
                            std::to_string(buckets.size()) +
                            " tables but params say l=" +
                            std::to_string(params.l));
  }
  for (const auto& table : buckets) {
    for (const auto& [key, bucket] : table) {
      (void)key;
      for (std::uint32_t i : bucket) {
        if (i >= num_rows) {
          return Status::DataLoss(
              "lsh artifact bucket entry " + std::to_string(i) +
              " is outside the dataset of " + std::to_string(num_rows) +
              " rows");
        }
      }
    }
  }
  std::unique_ptr<LshTables> tables(new LshTables());
  tables->params_ = params;
  tables->tables_.resize(params.l);
  for (std::size_t t = 0; t < params.l; ++t) {
    // Replaying the function draws (instead of persisting hyperplanes)
    // keeps the artifact family-agnostic; determinism of Rng plus the
    // saved pre-build state makes the replay bit-identical.
    tables->tables_[t].function =
        std::make_unique<ConcatenatedLshFunction>(family, params.k, rng);
    tables->tables_[t].buckets = std::move(buckets[t]);
  }
  return tables;
}

std::vector<std::size_t> LshTables::Query(std::span<const double> q,
                                          Trace* trace,
                                          LshQueryInfo* info) const {
  // Registry handles resolved once per process; the per-query cost is a
  // handful of relaxed per-thread increments, not map lookups.
  static Counter* const queries =
      MetricsRegistry::Global().GetCounter("lsh.tables.queries");
  static Counter* const buckets_probed =
      MetricsRegistry::Global().GetCounter("lsh.tables.buckets_probed");
  static Counter* const raw =
      MetricsRegistry::Global().GetCounter("lsh.tables.candidates_raw");
  static Counter* const unique =
      MetricsRegistry::Global().GetCounter("lsh.tables.candidates_unique");

  LshQueryInfo local;
  std::vector<std::uint64_t> keys(tables_.size());
  {
    TraceSpan span(trace, "hash");
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      keys[t] = tables_[t].function->HashQuery(q);
    }
    span.AddCount("tables", tables_.size());
  }
  std::vector<std::size_t> candidates;
  {
    TraceSpan span(trace, "bucket");
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const auto it = tables_[t].buckets.find(keys[t]);
      if (it == tables_[t].buckets.end()) continue;
      ++local.buckets_hit;
      candidates.insert(candidates.end(), it->second.begin(),
                        it->second.end());
    }
    span.AddCount("buckets_hit", local.buckets_hit);
    span.AddCount("raw_candidates", candidates.size());
  }
  local.tables_probed = tables_.size();
  local.raw_candidates = candidates.size();
  {
    TraceSpan span(trace, "dedup");
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    span.AddCount("unique_candidates", candidates.size());
    span.AddCount("duplicates", local.raw_candidates - candidates.size());
  }
  local.unique_candidates = candidates.size();

  queries->Increment();
  buckets_probed->Add(local.tables_probed);
  raw->Add(local.raw_candidates);
  unique->Add(local.unique_candidates);
  if (info != nullptr) *info = local;
  return candidates;
}

std::size_t LshTables::CountCandidates(std::span<const double> q) const {
  return Query(q).size();
}

double LshTables::MeanBucketSize() const {
  MutexLock lock(stats_mutex_);
  if (mean_bucket_size_ >= 0.0) return mean_bucket_size_;
  std::size_t total_entries = 0;
  std::size_t total_buckets = 0;
  for (const auto& table : tables_) {
    total_buckets += table.buckets.size();
    for (const auto& [key, bucket] : table.buckets) {
      (void)key;
      total_entries += bucket.size();
    }
  }
  mean_bucket_size_ = total_buckets == 0
                          ? 0.0
                          : static_cast<double>(total_entries) /
                                static_cast<double>(total_buckets);
  return mean_bucket_size_;
}

}  // namespace ips
