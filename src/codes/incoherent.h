// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Incoherent unit-vector families: collections v_1, ..., v_N of unit
// vectors with |<v_i, v_j>| <= epsilon for all i != j.
//
// Two constructions:
//  * Deterministic (Nelson-Nguyen-Woodruff [38], via Reed-Solomon codes):
//    codeword m maps to the vector with value 1/sqrt(q) at coordinate
//    (a, c_m(a)) for each evaluation point a in GF(q). Distinct degree-<k
//    polynomials agree <= k-1 times, so |<v_i, v_j>| <= (k-1)/q <= epsilon.
//    This is the "strongly explicit" family required by the symmetric LSH
//    of Section 4.2 -- v_u is computable directly from the bit string u.
//  * Randomized (Johnson-Lindenstrauss): normalized Gaussian vectors in
//    dimension O(eps^-2 log N), incoherent with high probability. Used by
//    the Theorem 3 (case 3) hard-sequence construction.

#ifndef IPS_CODES_INCOHERENT_H_
#define IPS_CODES_INCOHERENT_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "codes/reed_solomon.h"
#include "linalg/matrix.h"
#include "rng/random.h"

namespace ips {

/// Deterministic Reed-Solomon incoherent family.
class RsIncoherentFamily {
 public:
  /// Family with at least `min_vectors` members and coherence <= `epsilon`.
  /// Picks the smallest prime q with (k-1)/q <= epsilon where k =
  /// ceil(log_q(min_vectors)); resulting dimension is q^2.
  RsIncoherentFamily(std::uint64_t min_vectors, double epsilon);

  /// Ambient dimension q^2 of the unit vectors.
  std::size_t dim() const;

  /// Number of distinct vectors, q^k >= min_vectors.
  std::uint64_t size() const;

  /// Guaranteed coherence bound (k-1)/q.
  double coherence() const;

  std::uint64_t q() const { return code_.q(); }
  std::size_t k() const { return code_.message_symbols(); }

  /// The sparse support of vector `index`: exactly q coordinates, each of
  /// value 1/sqrt(q). Coordinates are a*q + c(a) for evaluation points a.
  std::vector<std::size_t> Support(std::uint64_t index) const;

  /// Dense representation of vector `index` (length dim()).
  std::vector<double> Vector(std::uint64_t index) const;

  /// Exact inner product <v_i, v_j> = agreements(i, j)/q.
  double Dot(std::uint64_t i, std::uint64_t j) const;

 private:
  ReedSolomonCode code_;
};

/// Randomized incoherent family: rows are normalized Gaussian vectors.
/// With dim = O(eps^-2 log N) the coherence is <= eps w.h.p.; the
/// constructor retries (fresh randomness) until the realized coherence
/// meets the bound, so the returned family always satisfies it.
class RandomIncoherentFamily {
 public:
  RandomIncoherentFamily(std::size_t num_vectors, double epsilon, Rng* rng);

  std::size_t size() const { return vectors_.rows(); }
  std::size_t dim() const { return vectors_.cols(); }

  /// The realized maximum |<v_i, v_j>| over i != j.
  double realized_coherence() const { return realized_coherence_; }

  std::span<const double> Vector(std::size_t index) const {
    return vectors_.Row(index);
  }

  const Matrix& vectors() const { return vectors_; }

  /// Suggested ambient dimension for `num_vectors` at coherence `epsilon`.
  static std::size_t SuggestedDim(std::size_t num_vectors, double epsilon);

 private:
  Matrix vectors_;
  double realized_coherence_ = 0.0;
};

}  // namespace ips

#endif  // IPS_CODES_INCOHERENT_H_
