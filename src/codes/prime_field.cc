#include "codes/prime_field.h"

#include "util/check.h"

namespace ips {

bool IsPrime(std::uint64_t n) {
  if (n < 2) return false;
  if (n < 4) return true;
  if (n % 2 == 0) return false;
  for (std::uint64_t f = 3; f * f <= n; f += 2) {
    if (n % f == 0) return false;
  }
  return true;
}

std::uint64_t NextPrime(std::uint64_t n) {
  IPS_CHECK_GE(n, 2u);
  std::uint64_t candidate = n;
  while (!IsPrime(candidate)) ++candidate;
  return candidate;
}

PrimeField::PrimeField(std::uint64_t modulus) : modulus_(modulus) {
  IPS_CHECK(IsPrime(modulus)) << "modulus must be prime:" << modulus;
  IPS_CHECK_LT(modulus, 1ULL << 31);
}

std::uint64_t PrimeField::Pow(std::uint64_t a, std::uint64_t e) const {
  std::uint64_t base = a % modulus_;
  std::uint64_t result = 1;
  while (e > 0) {
    if (e & 1) result = Mul(result, base);
    base = Mul(base, base);
    e >>= 1;
  }
  return result;
}

std::uint64_t PrimeField::Inv(std::uint64_t a) const {
  IPS_CHECK_NE(a % modulus_, 0u);
  // Fermat: a^(p-2) = a^{-1} mod p.
  return Pow(a, modulus_ - 2);
}

std::uint64_t PrimeField::EvalPoly(const std::uint64_t* coeffs,
                                   std::size_t degree_bound,
                                   std::uint64_t x) const {
  std::uint64_t value = 0;
  for (std::size_t i = degree_bound; i-- > 0;) {
    value = Add(Mul(value, x), coeffs[i] % modulus_);
  }
  return value;
}

}  // namespace ips
