// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Full-length Reed-Solomon codes over GF(q): codeword m |-> (p_m(0), ...,
// p_m(q-1)) where p_m is the degree-< k polynomial whose coefficients are
// the base-q digits of the message index m. Two distinct codewords agree
// in at most k-1 positions -- the distance property the incoherent vector
// construction of Nelson-Nguyen-Woodruff [38] relies on.

#ifndef IPS_CODES_REED_SOLOMON_H_
#define IPS_CODES_REED_SOLOMON_H_

#include <cstdint>
#include <vector>

#include "codes/prime_field.h"

namespace ips {

/// Evaluation-style Reed-Solomon encoder over GF(q), block length q.
class ReedSolomonCode {
 public:
  /// Code over GF(q) (q prime) with `k` message symbols (polynomial
  /// degree < k). Requires 1 <= k <= q.
  ReedSolomonCode(std::uint64_t q, std::size_t k);

  std::uint64_t q() const { return field_.modulus(); }
  std::size_t message_symbols() const { return k_; }

  /// Number of codewords, q^k (checked to fit in 64 bits).
  std::uint64_t NumCodewords() const;

  /// Encodes message index `m` (< NumCodewords()): returns the q symbol
  /// evaluations p_m(0), ..., p_m(q-1).
  std::vector<std::uint64_t> Encode(std::uint64_t m) const;

  /// Number of positions where codewords for m1 and m2 agree.
  /// At most k-1 for m1 != m2; exactly q for m1 == m2.
  std::size_t Agreements(std::uint64_t m1, std::uint64_t m2) const;

 private:
  /// Base-q digits of m, little-endian, padded to k entries.
  std::vector<std::uint64_t> Digits(std::uint64_t m) const;

  PrimeField field_;
  std::size_t k_;
};

}  // namespace ips

#endif  // IPS_CODES_REED_SOLOMON_H_
