#include "codes/incoherent.h"

#include <cmath>

#include "linalg/kernels.h"
#include "util/check.h"

namespace ips {
namespace {

// Smallest k with q^k >= min_vectors.
std::size_t SymbolsFor(std::uint64_t q, std::uint64_t min_vectors) {
  std::size_t k = 1;
  std::uint64_t count = q;
  while (count < min_vectors) {
    count *= q;
    ++k;
  }
  return k;
}

ReedSolomonCode MakeRsCode(std::uint64_t min_vectors, double epsilon) {
  IPS_CHECK_GE(min_vectors, 1u);
  IPS_CHECK_GT(epsilon, 0.0);
  IPS_CHECK_LE(epsilon, 1.0);
  // Find the smallest prime q such that with k = SymbolsFor(q, min_vectors)
  // we get (k-1)/q <= epsilon. Growing q only shrinks k, so scan upward.
  std::uint64_t q = NextPrime(2);
  for (;;) {
    const std::size_t k = SymbolsFor(q, min_vectors);
    if (static_cast<double>(k - 1) <= epsilon * static_cast<double>(q)) {
      return ReedSolomonCode(q, k);
    }
    q = NextPrime(q + 1);
  }
}

}  // namespace

RsIncoherentFamily::RsIncoherentFamily(std::uint64_t min_vectors,
                                       double epsilon)
    : code_(MakeRsCode(min_vectors, epsilon)) {}

std::size_t RsIncoherentFamily::dim() const {
  return static_cast<std::size_t>(q() * q());
}

std::uint64_t RsIncoherentFamily::size() const { return code_.NumCodewords(); }

double RsIncoherentFamily::coherence() const {
  return static_cast<double>(k() - 1) / static_cast<double>(q());
}

std::vector<std::size_t> RsIncoherentFamily::Support(
    std::uint64_t index) const {
  const std::vector<std::uint64_t> codeword = code_.Encode(index);
  std::vector<std::size_t> support(codeword.size());
  for (std::size_t a = 0; a < codeword.size(); ++a) {
    support[a] = static_cast<std::size_t>(a * q() + codeword[a]);
  }
  return support;
}

std::vector<double> RsIncoherentFamily::Vector(std::uint64_t index) const {
  std::vector<double> dense(dim(), 0.0);
  const double value = 1.0 / std::sqrt(static_cast<double>(q()));
  for (std::size_t coord : Support(index)) dense[coord] = value;
  return dense;
}

double RsIncoherentFamily::Dot(std::uint64_t i, std::uint64_t j) const {
  return static_cast<double>(code_.Agreements(i, j)) /
         static_cast<double>(q());
}

std::size_t RandomIncoherentFamily::SuggestedDim(std::size_t num_vectors,
                                                 double epsilon) {
  IPS_CHECK_GT(epsilon, 0.0);
  const double n = static_cast<double>(std::max<std::size_t>(num_vectors, 2));
  return static_cast<std::size_t>(
      std::ceil(8.0 * std::log(n) / (epsilon * epsilon)));
}

RandomIncoherentFamily::RandomIncoherentFamily(std::size_t num_vectors,
                                               double epsilon, Rng* rng) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GE(num_vectors, 1u);
  const std::size_t dim = SuggestedDim(num_vectors, epsilon);
  for (int attempt = 0; attempt < 64; ++attempt) {
    Matrix candidate(num_vectors, dim);
    for (double& entry : candidate.data()) entry = rng->NextGaussian();
    for (std::size_t i = 0; i < num_vectors; ++i) {
      kernels::NormalizeInPlace(candidate.Row(i));
    }
    double coherence = 0.0;
    for (std::size_t i = 0; i < num_vectors && coherence <= epsilon; ++i) {
      for (std::size_t j = i + 1; j < num_vectors; ++j) {
        coherence = std::max(
            coherence,
            std::abs(kernels::Dot(candidate.Row(i), candidate.Row(j))));
        if (coherence > epsilon) break;
      }
    }
    if (coherence <= epsilon) {
      vectors_ = std::move(candidate);
      realized_coherence_ = coherence;
      return;
    }
  }
  IPS_CHECK(false) << "failed to sample an incoherent family; dimension "
                   << dim << " too small for coherence " << epsilon;
}

}  // namespace ips
