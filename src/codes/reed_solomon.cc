#include "codes/reed_solomon.h"

#include <limits>

#include "util/check.h"

namespace ips {

ReedSolomonCode::ReedSolomonCode(std::uint64_t q, std::size_t k)
    : field_(q), k_(k) {
  IPS_CHECK_GE(k, 1u);
  IPS_CHECK_LE(k, q);
}

std::uint64_t ReedSolomonCode::NumCodewords() const {
  std::uint64_t count = 1;
  for (std::size_t i = 0; i < k_; ++i) {
    IPS_CHECK_LE(count, std::numeric_limits<std::uint64_t>::max() / q());
    count *= q();
  }
  return count;
}

std::vector<std::uint64_t> ReedSolomonCode::Digits(std::uint64_t m) const {
  std::vector<std::uint64_t> digits(k_, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    digits[i] = m % q();
    m /= q();
  }
  IPS_CHECK_EQ(m, 0u) << "message index out of range";
  return digits;
}

std::vector<std::uint64_t> ReedSolomonCode::Encode(std::uint64_t m) const {
  const std::vector<std::uint64_t> coeffs = Digits(m);
  std::vector<std::uint64_t> codeword(q());
  for (std::uint64_t x = 0; x < q(); ++x) {
    codeword[x] = field_.EvalPoly(coeffs.data(), coeffs.size(), x);
  }
  return codeword;
}

std::size_t ReedSolomonCode::Agreements(std::uint64_t m1,
                                        std::uint64_t m2) const {
  const std::vector<std::uint64_t> c1 = Encode(m1);
  const std::vector<std::uint64_t> c2 = Encode(m2);
  std::size_t agreements = 0;
  for (std::uint64_t x = 0; x < q(); ++x) {
    if (c1[x] == c2[x]) ++agreements;
  }
  return agreements;
}

}  // namespace ips
