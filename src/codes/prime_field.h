// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Arithmetic in the prime field GF(p), plus small primality helpers.
// Substrate for Reed-Solomon codes (codes/reed_solomon.h).

#ifndef IPS_CODES_PRIME_FIELD_H_
#define IPS_CODES_PRIME_FIELD_H_

#include <cstdint>

namespace ips {

/// True iff `n` is prime (deterministic trial division; n is small here).
bool IsPrime(std::uint64_t n);

/// Smallest prime >= n (n >= 2).
std::uint64_t NextPrime(std::uint64_t n);

/// The field GF(p) for a prime modulus p < 2^31 (products fit in 64 bits).
class PrimeField {
 public:
  /// Requires `modulus` prime and < 2^31.
  explicit PrimeField(std::uint64_t modulus);

  std::uint64_t modulus() const { return modulus_; }

  std::uint64_t Add(std::uint64_t a, std::uint64_t b) const {
    const std::uint64_t sum = a + b;
    return sum >= modulus_ ? sum - modulus_ : sum;
  }

  std::uint64_t Sub(std::uint64_t a, std::uint64_t b) const {
    return a >= b ? a - b : a + modulus_ - b;
  }

  std::uint64_t Mul(std::uint64_t a, std::uint64_t b) const {
    return (a * b) % modulus_;
  }

  /// a^e mod p by square-and-multiply.
  std::uint64_t Pow(std::uint64_t a, std::uint64_t e) const;

  /// Multiplicative inverse; requires a != 0 (mod p).
  std::uint64_t Inv(std::uint64_t a) const;

  /// Horner evaluation of the polynomial with coefficients `coeffs`
  /// (coeffs[0] = constant term) at point `x`.
  std::uint64_t EvalPoly(const std::uint64_t* coeffs, std::size_t degree_bound,
                         std::uint64_t x) const;

 private:
  std::uint64_t modulus_;
};

}  // namespace ips

#endif  // IPS_CODES_PRIME_FIELD_H_
