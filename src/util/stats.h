// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Summary statistics for experiment measurements: online moments and
// batch percentiles. Used by the benchmark harness and by statistical
// tests of collision probabilities.

#ifndef IPS_UTIL_STATS_H_
#define IPS_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ips {

/// Streaming mean/variance accumulator (Welford's algorithm).
class OnlineStats {
 public:
  /// Folds `value` into the running moments.
  void Add(double value);

  /// Number of samples added so far.
  std::size_t count() const { return count_; }

  /// Arithmetic mean; 0 when empty.
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance; 0 with fewer than two samples.
  double Variance() const;

  /// sqrt(Variance()).
  double StdDev() const;

  /// Standard error of the mean: StdDev()/sqrt(count).
  double StdError() const;

  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch summary over a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  /// One-line human-readable rendering.
  std::string ToString() const;
};

/// Computes a Summary of `samples`. Leaves `samples` unmodified.
Summary Summarize(std::vector<double> samples);

/// Linear-interpolation percentile of `sorted` (must be sorted ascending),
/// `q` in [0, 1]. Returns 0 for an empty vector.
double Percentile(const std::vector<double>& sorted, double q);

/// Fraction of `trials` Bernoulli successes, with a convenience for the
/// +-z*sqrt(p(1-p)/n) normal-approximation half-width used by statistical
/// tests of collision probabilities.
struct BernoulliEstimate {
  double p_hat = 0.0;
  std::size_t trials = 0;

  /// Normal-approximation half-width of a confidence interval at `z`
  /// standard deviations (z=3 for approximately 99.7% coverage).
  double HalfWidth(double z) const;
};

/// Counts successes/trials into a BernoulliEstimate.
BernoulliEstimate EstimateBernoulli(std::size_t successes, std::size_t trials);

}  // namespace ips

#endif  // IPS_UTIL_STATS_H_
