// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// A fixed-size thread pool and a blocking ParallelFor helper used by the
// brute-force join and index construction. On single-core machines the
// pool degrades gracefully to inline execution.

#ifndef IPS_UTIL_THREAD_POOL_H_
#define IPS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ips {

/// Fixed-size worker pool executing enqueued closures FIFO.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means inline (synchronous) execution.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; runs inline when the pool has no workers.
  void Schedule(std::function<void()> task);

  /// Blocks until all scheduled tasks have finished.
  void Wait();

  std::size_t num_threads() const { return threads_.size(); }

  /// std::thread::hardware_concurrency() with a floor of 1.
  static std::size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Splits [0, count) into contiguous chunks and runs
/// `body(begin, end)` for each chunk, blocking until all complete.
/// With `pool == nullptr` or a worker-less pool, runs inline.
void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace ips

#endif  // IPS_UTIL_THREAD_POOL_H_
