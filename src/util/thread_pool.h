// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// A fixed-size thread pool and a blocking ParallelFor helper used by the
// brute-force join and index construction. On single-core machines the
// pool degrades gracefully to inline execution.
//
// Failure semantics: a task that throws does NOT terminate the process.
// The pool catches the exception, stores the first one, and rethrows it
// from the next Wait() (or converts it to a Status in WaitStatus()).
// ParallelFor additionally cancels: once one chunk fails, chunks that
// have not started yet become no-ops, so a poisoned input stops burning
// CPU. ParallelForStatus is the non-throwing flavor for bodies that
// report recoverable failures through Status.

#ifndef IPS_UTIL_THREAD_POOL_H_
#define IPS_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace ips {

/// Fixed-size worker pool executing enqueued closures FIFO.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means inline (synchronous) execution.
  explicit ThreadPool(std::size_t num_threads);

  /// Drains the queue (running still-queued tasks), then joins the
  /// workers. Exceptions captured during the drain are swallowed.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; runs inline when the pool has no workers. A task
  /// that throws has its exception captured (first wins), not leaked.
  void Schedule(std::function<void()> task) IPS_EXCLUDES(mutex_);

  /// Blocks until all scheduled tasks have finished, then rethrows the
  /// first exception any task threw since the last drain (if any). With
  /// concurrent Wait() callers exactly one of them receives it.
  void Wait() IPS_EXCLUDES(mutex_);

  /// As Wait(), but converts a captured exception to a Status instead of
  /// rethrowing: a FailpointError keeps its armed code, any other
  /// std::exception maps to kInternal with its what() message.
  [[nodiscard]] Status WaitStatus() IPS_EXCLUDES(mutex_);

  std::size_t num_threads() const { return threads_.size(); }

  /// std::thread::hardware_concurrency() with a floor of 1.
  static std::size_t DefaultThreadCount();

 private:
  void WorkerLoop() IPS_EXCLUDES(mutex_);
  void RunTask(std::function<void()>& task);
  void CaptureException(std::exception_ptr exception) IPS_EXCLUDES(mutex_);
  std::exception_ptr TakeFirstException() IPS_EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar work_available_;
  CondVar work_done_;
  std::queue<std::function<void()>> queue_ IPS_GUARDED_BY(mutex_);
  std::vector<std::thread> threads_;
  std::size_t in_flight_ IPS_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ IPS_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_exception_ IPS_GUARDED_BY(mutex_);
};

/// Splits [0, count) into contiguous chunks and runs
/// `body(begin, end)` for each chunk, blocking until all complete.
/// With `pool == nullptr` or a worker-less pool, runs inline. If a chunk
/// throws, not-yet-started chunks are cancelled and the first exception
/// is rethrown here after all in-flight chunks finish — exactly one
/// error reaches the caller, never std::terminate.
void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t, std::size_t)>& body);

/// As ParallelFor, for bodies that fail recoverably: the first non-OK
/// Status (or thrown exception, converted as in WaitStatus) cancels the
/// remaining chunks and is returned. Returns OK when every chunk did.
Status ParallelForStatus(
    ThreadPool* pool, std::size_t count,
    const std::function<Status(std::size_t, std::size_t)>& body);

}  // namespace ips

#endif  // IPS_UTIL_THREAD_POOL_H_
