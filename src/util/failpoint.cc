#include "util/failpoint.h"

#include <mutex>
#include <unordered_map>
#include <utility>

namespace ips {
namespace {

struct ArmedSite {
  std::size_t nth = 1;      // fire on this hit (1-based)
  std::size_t hits = 0;     // hits since arming
  bool fired = false;       // each arming fires exactly once
  Status status;            // what a fired site yields
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, ArmedSite> sites;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

std::atomic<std::size_t> Failpoints::armed_count_{0};

void Failpoints::Arm(const std::string& name, std::size_t nth,
                     Status status) {
  IPS_CHECK_GE(nth, 1u);
  IPS_CHECK(!status.ok()) << "failpoints must be armed with a non-OK status";
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto [it, inserted] = registry.sites.try_emplace(name);
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
  it->second = ArmedSite{nth, 0, false, std::move(status)};
}

void Failpoints::Disarm(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (registry.sites.erase(name) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  armed_count_.fetch_sub(registry.sites.size(), std::memory_order_relaxed);
  registry.sites.clear();
}

std::size_t Failpoints::HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.sites.find(name);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

Status Failpoints::Hit(const char* name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.sites.find(name);
  if (it == registry.sites.end()) return Status::Ok();
  ArmedSite& site = it->second;
  ++site.hits;
  if (site.fired || site.hits != site.nth) return Status::Ok();
  site.fired = true;
  return Status(site.status.code(), "failpoint '" + std::string(name) +
                                        "' fired: " + site.status.message());
}

void Failpoints::HitOrThrow(const char* name) {
  Status status = Hit(name);
  if (!status.ok()) throw FailpointError(std::move(status));
}

}  // namespace ips
