#include "util/failpoint.h"

#include <mutex>
#include <unordered_map>
#include <utility>

namespace ips {
namespace {

enum class FireMode {
  kOnce,      // fire exactly once, on the nth hit
  kEveryNth,  // fire on every nth hit, repeatedly
  kProb,      // fire each hit with probability p, deterministically
};

// splitmix64 (Steele et al.), inlined here so util does not depend on
// src/rng; the stream is a pure function of the arm-time seed, keeping
// probabilistic chaos runs replayable.
std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct ArmedSite {
  FireMode mode = FireMode::kOnce;
  std::size_t nth = 1;      // kOnce/kEveryNth period (1-based)
  std::size_t hits = 0;     // hits since arming
  bool fired = false;       // kOnce: each arming fires exactly once
  double prob = 1.0;        // kProb firing probability
  std::uint64_t rng = 0;    // kProb splitmix64 state
  Status status;            // what a fired site yields

  bool ShouldFire() {
    ++hits;
    switch (mode) {
      case FireMode::kOnce:
        if (fired || hits != nth) return false;
        fired = true;
        return true;
      case FireMode::kEveryNth:
        return hits % nth == 0;
      case FireMode::kProb: {
        const double draw =
            static_cast<double>(SplitMix64(&rng) >> 11) * 0x1.0p-53;
        return draw < prob;
      }
    }
    return false;
  }
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, ArmedSite> sites;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

std::atomic<std::size_t> Failpoints::armed_count_{0};

namespace {

void ArmSite(const std::string& name, ArmedSite site,
             std::atomic<std::size_t>* armed_count) {
  IPS_CHECK(!site.status.ok())
      << "failpoints must be armed with a non-OK status";
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto [it, inserted] = registry.sites.try_emplace(name);
  if (inserted) armed_count->fetch_add(1, std::memory_order_relaxed);
  it->second = std::move(site);
}

}  // namespace

void Failpoints::Arm(const std::string& name, std::size_t nth,
                     Status status) {
  IPS_CHECK_GE(nth, 1u);
  ArmedSite site;
  site.mode = FireMode::kOnce;
  site.nth = nth;
  site.status = std::move(status);
  ArmSite(name, std::move(site), &armed_count_);
}

void Failpoints::Arm(const std::string& name, Status status,
                     FireEvery every) {
  IPS_CHECK_GE(every.n, 1u);
  ArmedSite site;
  site.mode = FireMode::kEveryNth;
  site.nth = every.n;
  site.status = std::move(status);
  ArmSite(name, std::move(site), &armed_count_);
}

void Failpoints::Arm(const std::string& name, Status status,
                     FireWithProb prob) {
  IPS_CHECK_GE(prob.p, 0.0);
  IPS_CHECK_LE(prob.p, 1.0);
  ArmedSite site;
  site.mode = FireMode::kProb;
  site.prob = prob.p;
  site.rng = prob.seed;
  site.status = std::move(status);
  ArmSite(name, std::move(site), &armed_count_);
}

void Failpoints::Disarm(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (registry.sites.erase(name) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  armed_count_.fetch_sub(registry.sites.size(), std::memory_order_relaxed);
  registry.sites.clear();
}

std::size_t Failpoints::HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.sites.find(name);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

Status Failpoints::Hit(const char* name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.sites.find(name);
  if (it == registry.sites.end()) return Status::Ok();
  ArmedSite& site = it->second;
  if (!site.ShouldFire()) return Status::Ok();
  return Status(site.status.code(), "failpoint '" + std::string(name) +
                                        "' fired: " + site.status.message());
}

void Failpoints::HitOrThrow(const char* name) {
  Status status = Hit(name);
  if (!status.ok()) throw FailpointError(std::move(status));
}

}  // namespace ips
